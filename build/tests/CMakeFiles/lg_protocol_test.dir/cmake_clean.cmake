file(REMOVE_RECURSE
  "CMakeFiles/lg_protocol_test.dir/lg_protocol_test.cc.o"
  "CMakeFiles/lg_protocol_test.dir/lg_protocol_test.cc.o.d"
  "lg_protocol_test"
  "lg_protocol_test.pdb"
  "lg_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
