# Empty compiler generated dependencies file for lg_protocol_test.
# This may be replaced when dependencies are built.
