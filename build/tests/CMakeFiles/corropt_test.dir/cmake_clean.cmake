file(REMOVE_RECURSE
  "CMakeFiles/corropt_test.dir/corropt_test.cc.o"
  "CMakeFiles/corropt_test.dir/corropt_test.cc.o.d"
  "corropt_test"
  "corropt_test.pdb"
  "corropt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corropt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
