# Empty compiler generated dependencies file for corropt_test.
# This may be replaced when dependencies are built.
