file(REMOVE_RECURSE
  "CMakeFiles/lg_extensions_test.dir/lg_extensions_test.cc.o"
  "CMakeFiles/lg_extensions_test.dir/lg_extensions_test.cc.o.d"
  "lg_extensions_test"
  "lg_extensions_test.pdb"
  "lg_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
