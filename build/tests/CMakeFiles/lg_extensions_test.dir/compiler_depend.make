# Empty compiler generated dependencies file for lg_extensions_test.
# This may be replaced when dependencies are built.
