# Empty compiler generated dependencies file for wharf_test.
# This may be replaced when dependencies are built.
