file(REMOVE_RECURSE
  "CMakeFiles/wharf_test.dir/wharf_test.cc.o"
  "CMakeFiles/wharf_test.dir/wharf_test.cc.o.d"
  "wharf_test"
  "wharf_test.pdb"
  "wharf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wharf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
