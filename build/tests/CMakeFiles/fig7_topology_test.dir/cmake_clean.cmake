file(REMOVE_RECURSE
  "CMakeFiles/fig7_topology_test.dir/fig7_topology_test.cc.o"
  "CMakeFiles/fig7_topology_test.dir/fig7_topology_test.cc.o.d"
  "fig7_topology_test"
  "fig7_topology_test.pdb"
  "fig7_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
