# Empty dependencies file for seqno_test.
# This may be replaced when dependencies are built.
