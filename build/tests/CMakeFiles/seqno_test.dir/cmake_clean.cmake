file(REMOVE_RECURSE
  "CMakeFiles/seqno_test.dir/seqno_test.cc.o"
  "CMakeFiles/seqno_test.dir/seqno_test.cc.o.d"
  "seqno_test"
  "seqno_test.pdb"
  "seqno_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqno_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
