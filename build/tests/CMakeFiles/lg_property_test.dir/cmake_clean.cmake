file(REMOVE_RECURSE
  "CMakeFiles/lg_property_test.dir/lg_property_test.cc.o"
  "CMakeFiles/lg_property_test.dir/lg_property_test.cc.o.d"
  "lg_property_test"
  "lg_property_test.pdb"
  "lg_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lg_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
