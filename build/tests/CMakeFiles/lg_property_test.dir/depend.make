# Empty dependencies file for lg_property_test.
# This may be replaced when dependencies are built.
