# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/seqno_test[1]_include.cmake")
include("/root/repo/build/tests/lg_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/wharf_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/corropt_test[1]_include.cmake")
include("/root/repo/build/tests/lg_property_test[1]_include.cmake")
include("/root/repo/build/tests/lg_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fig7_topology_test[1]_include.cmake")
include("/root/repo/build/tests/net_extra_test[1]_include.cmake")
