# Empty compiler generated dependencies file for fct_experiment.
# This may be replaced when dependencies are built.
