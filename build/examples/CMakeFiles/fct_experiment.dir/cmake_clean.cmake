file(REMOVE_RECURSE
  "CMakeFiles/fct_experiment.dir/fct_experiment.cpp.o"
  "CMakeFiles/fct_experiment.dir/fct_experiment.cpp.o.d"
  "fct_experiment"
  "fct_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fct_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
