# Empty dependencies file for fabric_deployment.
# This may be replaced when dependencies are built.
