file(REMOVE_RECURSE
  "CMakeFiles/fabric_deployment.dir/fabric_deployment.cpp.o"
  "CMakeFiles/fabric_deployment.dir/fabric_deployment.cpp.o.d"
  "fabric_deployment"
  "fabric_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
