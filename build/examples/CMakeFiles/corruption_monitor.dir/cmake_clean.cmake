file(REMOVE_RECURSE
  "CMakeFiles/corruption_monitor.dir/corruption_monitor.cpp.o"
  "CMakeFiles/corruption_monitor.dir/corruption_monitor.cpp.o.d"
  "corruption_monitor"
  "corruption_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corruption_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
