# Empty dependencies file for corruption_monitor.
# This may be replaced when dependencies are built.
