file(REMOVE_RECURSE
  "liblgsim_wharf.a"
)
