file(REMOVE_RECURSE
  "CMakeFiles/lgsim_wharf.dir/wharf.cc.o"
  "CMakeFiles/lgsim_wharf.dir/wharf.cc.o.d"
  "liblgsim_wharf.a"
  "liblgsim_wharf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_wharf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
