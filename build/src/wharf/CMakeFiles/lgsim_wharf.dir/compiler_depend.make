# Empty compiler generated dependencies file for lgsim_wharf.
# This may be replaced when dependencies are built.
