# Empty compiler generated dependencies file for lgsim_monitor.
# This may be replaced when dependencies are built.
