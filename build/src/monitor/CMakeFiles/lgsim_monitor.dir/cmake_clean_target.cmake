file(REMOVE_RECURSE
  "liblgsim_monitor.a"
)
