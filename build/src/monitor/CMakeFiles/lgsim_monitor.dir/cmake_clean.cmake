file(REMOVE_RECURSE
  "CMakeFiles/lgsim_monitor.dir/corruptd.cc.o"
  "CMakeFiles/lgsim_monitor.dir/corruptd.cc.o.d"
  "liblgsim_monitor.a"
  "liblgsim_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
