# Empty dependencies file for lgsim_phy.
# This may be replaced when dependencies are built.
