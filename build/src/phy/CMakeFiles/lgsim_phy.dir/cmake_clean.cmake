file(REMOVE_RECURSE
  "CMakeFiles/lgsim_phy.dir/optical.cc.o"
  "CMakeFiles/lgsim_phy.dir/optical.cc.o.d"
  "liblgsim_phy.a"
  "liblgsim_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
