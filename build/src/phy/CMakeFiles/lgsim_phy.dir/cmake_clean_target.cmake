file(REMOVE_RECURSE
  "liblgsim_phy.a"
)
