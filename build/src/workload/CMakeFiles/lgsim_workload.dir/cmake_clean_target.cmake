file(REMOVE_RECURSE
  "liblgsim_workload.a"
)
