# Empty compiler generated dependencies file for lgsim_workload.
# This may be replaced when dependencies are built.
