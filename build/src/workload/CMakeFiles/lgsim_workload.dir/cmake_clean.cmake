file(REMOVE_RECURSE
  "CMakeFiles/lgsim_workload.dir/flow_sizes.cc.o"
  "CMakeFiles/lgsim_workload.dir/flow_sizes.cc.o.d"
  "liblgsim_workload.a"
  "liblgsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
