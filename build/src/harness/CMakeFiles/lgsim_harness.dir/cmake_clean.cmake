file(REMOVE_RECURSE
  "CMakeFiles/lgsim_harness.dir/fct.cc.o"
  "CMakeFiles/lgsim_harness.dir/fct.cc.o.d"
  "CMakeFiles/lgsim_harness.dir/stress.cc.o"
  "CMakeFiles/lgsim_harness.dir/stress.cc.o.d"
  "CMakeFiles/lgsim_harness.dir/timeline.cc.o"
  "CMakeFiles/lgsim_harness.dir/timeline.cc.o.d"
  "liblgsim_harness.a"
  "liblgsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
