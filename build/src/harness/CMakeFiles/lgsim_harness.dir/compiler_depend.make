# Empty compiler generated dependencies file for lgsim_harness.
# This may be replaced when dependencies are built.
