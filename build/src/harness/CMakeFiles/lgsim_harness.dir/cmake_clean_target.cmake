file(REMOVE_RECURSE
  "liblgsim_harness.a"
)
