file(REMOVE_RECURSE
  "CMakeFiles/lgsim_lg.dir/receiver.cc.o"
  "CMakeFiles/lgsim_lg.dir/receiver.cc.o.d"
  "CMakeFiles/lgsim_lg.dir/sender.cc.o"
  "CMakeFiles/lgsim_lg.dir/sender.cc.o.d"
  "liblgsim_lg.a"
  "liblgsim_lg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_lg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
