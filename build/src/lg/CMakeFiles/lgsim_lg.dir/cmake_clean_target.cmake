file(REMOVE_RECURSE
  "liblgsim_lg.a"
)
