# Empty dependencies file for lgsim_lg.
# This may be replaced when dependencies are built.
