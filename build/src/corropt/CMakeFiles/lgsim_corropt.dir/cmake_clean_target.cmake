file(REMOVE_RECURSE
  "liblgsim_corropt.a"
)
