# Empty dependencies file for lgsim_corropt.
# This may be replaced when dependencies are built.
