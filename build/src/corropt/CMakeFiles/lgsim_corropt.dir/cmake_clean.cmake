file(REMOVE_RECURSE
  "CMakeFiles/lgsim_corropt.dir/corropt.cc.o"
  "CMakeFiles/lgsim_corropt.dir/corropt.cc.o.d"
  "liblgsim_corropt.a"
  "liblgsim_corropt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_corropt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
