file(REMOVE_RECURSE
  "liblgsim_fabric.a"
)
