file(REMOVE_RECURSE
  "CMakeFiles/lgsim_fabric.dir/topology.cc.o"
  "CMakeFiles/lgsim_fabric.dir/topology.cc.o.d"
  "liblgsim_fabric.a"
  "liblgsim_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
