# Empty compiler generated dependencies file for lgsim_fabric.
# This may be replaced when dependencies are built.
