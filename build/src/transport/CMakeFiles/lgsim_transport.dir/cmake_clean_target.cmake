file(REMOVE_RECURSE
  "liblgsim_transport.a"
)
