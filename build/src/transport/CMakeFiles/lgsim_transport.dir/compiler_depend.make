# Empty compiler generated dependencies file for lgsim_transport.
# This may be replaced when dependencies are built.
