file(REMOVE_RECURSE
  "CMakeFiles/lgsim_transport.dir/rdma.cc.o"
  "CMakeFiles/lgsim_transport.dir/rdma.cc.o.d"
  "CMakeFiles/lgsim_transport.dir/tcp.cc.o"
  "CMakeFiles/lgsim_transport.dir/tcp.cc.o.d"
  "liblgsim_transport.a"
  "liblgsim_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lgsim_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
