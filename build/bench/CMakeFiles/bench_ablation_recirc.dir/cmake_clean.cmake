file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_recirc.dir/bench_ablation_recirc.cc.o"
  "CMakeFiles/bench_ablation_recirc.dir/bench_ablation_recirc.cc.o.d"
  "bench_ablation_recirc"
  "bench_ablation_recirc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_recirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
