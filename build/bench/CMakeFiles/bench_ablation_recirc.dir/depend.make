# Empty dependencies file for bench_ablation_recirc.
# This may be replaced when dependencies are built.
