# Empty dependencies file for bench_fig20_burst_loss.
# This may be replaced when dependencies are built.
