file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fct_2mb.dir/bench_fig12_fct_2mb.cc.o"
  "CMakeFiles/bench_fig12_fct_2mb.dir/bench_fig12_fct_2mb.cc.o.d"
  "bench_fig12_fct_2mb"
  "bench_fig12_fct_2mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fct_2mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
