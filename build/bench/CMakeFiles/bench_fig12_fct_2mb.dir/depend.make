# Empty dependencies file for bench_fig12_fct_2mb.
# This may be replaced when dependencies are built.
