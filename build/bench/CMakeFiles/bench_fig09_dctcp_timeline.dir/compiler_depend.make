# Empty compiler generated dependencies file for bench_fig09_dctcp_timeline.
# This may be replaced when dependencies are built.
