file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_deployment.dir/bench_fig15_deployment.cc.o"
  "CMakeFiles/bench_fig15_deployment.dir/bench_fig15_deployment.cc.o.d"
  "bench_fig15_deployment"
  "bench_fig15_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
