file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_wharf.dir/bench_tab3_wharf.cc.o"
  "CMakeFiles/bench_tab3_wharf.dir/bench_tab3_wharf.cc.o.d"
  "bench_tab3_wharf"
  "bench_tab3_wharf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_wharf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
