# Empty dependencies file for bench_fig19_retx_delay.
# This may be replaced when dependencies are built.
