file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_retx_delay.dir/bench_fig19_retx_delay.cc.o"
  "CMakeFiles/bench_fig19_retx_delay.dir/bench_fig19_retx_delay.cc.o.d"
  "bench_fig19_retx_delay"
  "bench_fig19_retx_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_retx_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
