# Empty dependencies file for bench_tab1_loss_buckets.
# This may be replaced when dependencies are built.
