# Empty dependencies file for bench_fig01_attenuation.
# This may be replaced when dependencies are built.
