file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_attenuation.dir/bench_fig01_attenuation.cc.o"
  "CMakeFiles/bench_fig01_attenuation.dir/bench_fig01_attenuation.cc.o.d"
  "bench_fig01_attenuation"
  "bench_fig01_attenuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_attenuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
