file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fct_multi.dir/bench_fig11_fct_multi.cc.o"
  "CMakeFiles/bench_fig11_fct_multi.dir/bench_fig11_fct_multi.cc.o.d"
  "bench_fig11_fct_multi"
  "bench_fig11_fct_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fct_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
