
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig21_cubic_bbr.cc" "bench/CMakeFiles/bench_fig21_cubic_bbr.dir/bench_fig21_cubic_bbr.cc.o" "gcc" "bench/CMakeFiles/bench_fig21_cubic_bbr.dir/bench_fig21_cubic_bbr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/lgsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/lgsim_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/lg/CMakeFiles/lgsim_lg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
