file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_cubic_bbr.dir/bench_fig21_cubic_bbr.cc.o"
  "CMakeFiles/bench_fig21_cubic_bbr.dir/bench_fig21_cubic_bbr.cc.o.d"
  "bench_fig21_cubic_bbr"
  "bench_fig21_cubic_bbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_cubic_bbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
