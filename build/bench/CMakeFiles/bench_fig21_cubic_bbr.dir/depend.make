# Empty dependencies file for bench_fig21_cubic_bbr.
# This may be replaced when dependencies are built.
