# Empty compiler generated dependencies file for bench_fig16_deployment_cdf.
# This may be replaced when dependencies are built.
