# Empty compiler generated dependencies file for bench_fig10_fct_1pkt.
# This may be replaced when dependencies are built.
