file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_fct_1pkt.dir/bench_fig10_fct_1pkt.cc.o"
  "CMakeFiles/bench_fig10_fct_1pkt.dir/bench_fig10_fct_1pkt.cc.o.d"
  "bench_fig10_fct_1pkt"
  "bench_fig10_fct_1pkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_fct_1pkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
