file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_recirc.dir/bench_tab4_recirc.cc.o"
  "CMakeFiles/bench_tab4_recirc.dir/bench_tab4_recirc.cc.o.d"
  "bench_tab4_recirc"
  "bench_tab4_recirc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_recirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
