file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_flow_classes.dir/bench_fig13_flow_classes.cc.o"
  "CMakeFiles/bench_fig13_flow_classes.dir/bench_fig13_flow_classes.cc.o.d"
  "bench_fig13_flow_classes"
  "bench_fig13_flow_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_flow_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
