# Empty compiler generated dependencies file for bench_fig13_flow_classes.
# This may be replaced when dependencies are built.
