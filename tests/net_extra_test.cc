// Tests for the Switch abstraction, the PHY-driven attenuation loss model
// and the time-varying loss process.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/switch.h"
#include "phy/attenuation_loss.h"
#include "sim/simulator.h"

namespace lgsim {
namespace {

TEST(Switch, ForwardsByDestination) {
  Simulator sim;
  net::Switch sw(sim, "sw");
  const int p0 = sw.add_port({});
  const int p1 = sw.add_port({});
  std::vector<std::uint32_t> out0, out1;
  sw.connect(p0, [&](net::Packet&& p) { out0.push_back(p.dst); });
  sw.connect(p1, [&](net::Packet&& p) { out1.push_back(p.dst); });
  sw.add_route(10, p0);
  sw.add_route(20, p1);
  for (std::uint32_t d : {10u, 20u, 10u}) {
    net::Packet p;
    p.dst = d;
    p.frame_bytes = 100;
    sw.ingress(std::move(p));
  }
  sim.run();
  EXPECT_EQ(out0, (std::vector<std::uint32_t>{10, 10}));
  EXPECT_EQ(out1, (std::vector<std::uint32_t>{20}));
  EXPECT_EQ(sw.rx_frames(), 3);
}

TEST(Switch, DefaultRouteAndDrops) {
  Simulator sim;
  net::Switch sw(sim, "sw");
  const int p0 = sw.add_port({});
  int fallback = 0;
  sw.connect(p0, [&](net::Packet&&) { ++fallback; });
  net::Packet p;
  p.dst = 42;
  sw.ingress(std::move(p));
  sim.run();
  EXPECT_EQ(sw.dropped_no_route(), 1);
  sw.set_default_route(p0);
  net::Packet q;
  q.dst = 42;
  q.frame_bytes = 64;
  sw.ingress(std::move(q));
  sim.run();
  EXPECT_EQ(fallback, 1);
}

TEST(Switch, PipelineLatencyApplies) {
  Simulator sim;
  net::Switch sw(sim, "sw", nsec(500));
  const int p0 = sw.add_port({.rate = gbps(100), .prop_delay = 0});
  SimTime arrival = -1;
  sw.connect(p0, [&](net::Packet&&) { arrival = sim.now(); });
  sw.add_route(1, p0);
  net::Packet p;
  p.dst = 1;
  p.frame_bytes = 64;
  sw.ingress(std::move(p));
  sim.run();
  // 500 ns pipeline + 84 B at 100G (~6.7 ns).
  EXPECT_GE(arrival, 506);
  EXPECT_LE(arrival, 508);
}

TEST(Switch, EgressOverrideIntercepts) {
  Simulator sim;
  net::Switch sw(sim, "sw");
  const int p0 = sw.add_port({});
  int intercepted = 0;
  sw.add_route(7, p0);
  sw.set_egress_override(p0, [&](net::Packet&&) { ++intercepted; });
  net::Packet p;
  p.dst = 7;
  sw.ingress(std::move(p));
  sim.run();
  EXPECT_EQ(intercepted, 1);
}

TEST(AttenuationLoss, LossRateMatchesPhyModel) {
  auto xcvr = phy::make_25g_sr_nofec();
  // Pick an attenuation where the loss is ~1e-2 for MTU frames.
  double atten = 0;
  for (double a = 9.0; a <= 20.0; a += 0.01) {
    if (xcvr.frame_loss_rate(a, 1518) >= 1e-2) {
      atten = a;
      break;
    }
  }
  ASSERT_GT(atten, 0);
  phy::AttenuationLoss loss(xcvr, atten, Rng(3));
  const double expect = xcvr.frame_loss_rate(atten, 1518);
  net::Packet p;
  p.frame_bytes = 1518;
  int lost = 0;
  const int n = 300'000;
  for (int i = 0; i < n; ++i)
    if (loss.lose(0, p)) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, expect, expect * 0.15);
}

TEST(AttenuationLoss, SmallerFramesSurviveBetter) {
  auto xcvr = phy::make_25g_sr_nofec();
  phy::AttenuationLoss loss(xcvr, 14.0, Rng(5));
  EXPECT_LT(loss.loss_for_size(64), loss.loss_for_size(1518));
}

TEST(AttenuationLoss, ReaimingTheVoaChangesRates) {
  auto xcvr = phy::make_25g_sr_nofec();
  phy::AttenuationLoss loss(xcvr, 10.0, Rng(5));
  const double before = loss.loss_for_size(1518);
  loss.set_attenuation(15.0);
  EXPECT_GT(loss.loss_for_size(1518), before);
}

TEST(TimeVaryingLoss, SegmentsApplyInOrder) {
  net::TimeVaryingLoss loss({{usec(10), 1.0}, {usec(20), 0.0}}, Rng(1));
  net::Packet p;
  EXPECT_FALSE(loss.lose(usec(5), p));   // before onset: rate 0
  EXPECT_TRUE(loss.lose(usec(15), p));   // rate 1
  EXPECT_FALSE(loss.lose(usec(25), p));  // repaired
  EXPECT_DOUBLE_EQ(loss.rate_at(usec(15)), 1.0);
  EXPECT_DOUBLE_EQ(loss.rate_at(usec(25)), 0.0);
}

TEST(TimeVaryingLoss, CursorResetsWhenTimeMovesBackwards) {
  // The monotone segment cursor must fall back to a rescan when a fresh
  // replay drives the same model with earlier timestamps.
  net::TimeVaryingLoss loss({{usec(10), 1.0}, {usec(20), 0.0}}, Rng(1));
  net::Packet p;
  EXPECT_FALSE(loss.lose(usec(25), p));  // cursor past both segments
  EXPECT_TRUE(loss.lose(usec(15), p));   // time went backwards: rate 1 again
  EXPECT_FALSE(loss.lose(usec(5), p));   // and before onset: rate 0
  EXPECT_TRUE(loss.lose(usec(12), p));
}

TEST(TimeVaryingLoss, ManySegmentsResolveToTheRightRate) {
  // Deterministic rates (0/1) across a long segment list exercise the cursor
  // advancing over several segments in one call.
  std::vector<net::TimeVaryingLoss::Segment> segs;
  for (int i = 0; i < 100; ++i)
    segs.push_back({usec(10 * (i + 1)), i % 2 == 0 ? 1.0 : 0.0});
  net::TimeVaryingLoss loss(std::move(segs), Rng(2));
  net::Packet p;
  EXPECT_FALSE(loss.lose(usec(5), p));
  EXPECT_TRUE(loss.lose(usec(10), p));    // segment 0: rate 1
  EXPECT_FALSE(loss.lose(usec(25), p));   // segment 1: rate 0
  EXPECT_TRUE(loss.lose(usec(310), p));   // segment 30: rate 1
  EXPECT_FALSE(loss.lose(usec(2000), p)); // past the end: last seg rate 0
  EXPECT_DOUBLE_EQ(loss.rate_at(usec(310)), 1.0);
}

TEST(ScriptedLoss, CursorHandlesUnsortedAndDuplicateIndices) {
  // Construction sorts the script, and each frame advances the cursor in
  // O(1) amortized; unsorted input with duplicates must still drop exactly
  // the scripted frames.
  net::ScriptedLoss loss({7, 2, 2, 5});
  net::Packet p;
  std::vector<int> lost;
  for (int i = 0; i < 10; ++i)
    if (loss.lose(0, p)) lost.push_back(i);
  EXPECT_EQ(lost, (std::vector<int>{2, 5, 7}));
  EXPECT_EQ(loss.frames_seen(), 10u);
}

TEST(TimeVaryingLoss, StatisticalRate) {
  net::TimeVaryingLoss loss({{0, 0.02}}, Rng(9));
  net::Packet p;
  int lost = 0;
  const int n = 500'000;
  for (int i = 0; i < n; ++i)
    if (loss.lose(usec(1), p)) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.02, 0.002);
}

// Mid-run loss-model mutation through the full EgressPort datapath: the
// fault injector re-aims live models, so a rate change must apply to the
// next frame rolled — no caching anywhere between the model and finish_tx.
TEST(MidRunMutation, BernoulliSetRateAppliesToTheNextFrameOnTheWire) {
  Simulator sim;
  net::EgressPort port(sim, "p", gbps(100), /*prop_delay=*/0);
  const int q = port.add_queue({});
  net::BernoulliLoss loss(0.0, Rng(1));
  port.set_loss_model(&loss);
  std::int64_t delivered = 0;
  port.set_deliver([&](net::Packet&&) { ++delivered; });

  // One frame per microsecond (an MTU frame serializes in ~0.12 us, so every
  // frame's loss roll happens well before the next enqueue).
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(usec(i), [&] {
      net::Packet p;
      p.kind = net::PktKind::kData;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    });
  }
  // Flip from lossless to certain loss between frames 10 and 11.
  sim.schedule_at(usec(10) + nsec(500), [&] { loss.set_rate(1.0); });
  sim.run();

  EXPECT_EQ(delivered, 11);
  EXPECT_EQ(port.counters().delivered_frames, 11);
  EXPECT_EQ(port.counters().corrupted_frames, 9);
}

TEST(MidRunMutation, GilbertSetParamsAppliesAndRestoresThroughDatapath) {
  Simulator sim;
  net::EgressPort port(sim, "p", gbps(100), 0);
  const int q = port.add_queue({});
  // Healthy chain pinned in the good state with deterministic transitions.
  net::GilbertElliottLoss::Params healthy;
  healthy.p_good_to_bad = 0.0;
  healthy.p_bad_to_good = 1.0;
  net::GilbertElliottLoss loss(healthy, Rng(2));
  port.set_loss_model(&loss);
  std::vector<int> fates;  // 1 = delivered
  port.set_deliver([&](net::Packet&&) { fates.push_back(1); });

  for (int i = 0; i < 30; ++i) {
    sim.schedule_at(usec(i), [&] {
      net::Packet p;
      p.kind = net::PktKind::kData;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    });
  }
  // Episode: always-bad chain for frames 10..19, healthy again after.
  net::GilbertElliottLoss::Params awful;
  awful.p_good_to_bad = 1.0;
  awful.p_bad_to_good = 0.0;
  awful.loss_bad = 1.0;
  sim.schedule_at(usec(9) + nsec(500), [&] { loss.set_params(awful); });
  sim.schedule_at(usec(19) + nsec(500), [&] { loss.set_params(healthy); });
  sim.run();

  EXPECT_EQ(port.counters().corrupted_frames, 10);
  EXPECT_EQ(port.counters().delivered_frames, 20);
  EXPECT_FALSE(loss.in_bad_state());  // healthy params pulled it back out
}

TEST(MidRunMutation, DrivenRunsAreDeterministicPerSeed) {
  // The same seed + the same mid-run mutation schedule must reproduce the
  // exact corrupted/delivered split (the fault subsystem's replay contract).
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    net::EgressPort port(sim, "p", gbps(25), 0);
    const int q = port.add_queue({});
    net::BernoulliLoss loss(0.05, Rng(seed));
    port.set_loss_model(&loss);
    for (int i = 0; i < 2000; ++i) {
      sim.schedule_at(usec(i), [&] {
        net::Packet p;
        p.kind = net::PktKind::kData;
        p.frame_bytes = 1518;
        port.enqueue(q, std::move(p));
      });
    }
    sim.schedule_at(usec(500), [&] { loss.drive_rate(0.2); });
    sim.schedule_at(usec(1500), [&] { loss.drive_rate(0.01); });
    sim.run();
    return port.counters().corrupted_frames;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));  // seed actually matters
}

}  // namespace
}  // namespace lgsim
