#include <gtest/gtest.h>

#include "sim/random.h"
#include "workload/flow_sizes.h"

namespace lgsim::workload {
namespace {

const Workload kAll[] = {
    Workload::kMetaKeyValue,   Workload::kGoogleSearchRpc,
    Workload::kGoogleAllRpc,   Workload::kMetaHadoop,
    Workload::kAlibabaStorage, Workload::kDctcpWebSearch,
};

TEST(FlowSizes, CdfMonotoneAndBounded) {
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    double prev = 0.0;
    for (double b = 1; b < 1e8; b *= 2) {
      const double c = d.cdf(b);
      EXPECT_GE(c, prev) << workload_name(w);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
    EXPECT_DOUBLE_EQ(d.cdf(d.max_bytes() * 2), 1.0);
  }
}

TEST(FlowSizes, SamplesWithinSupport) {
  Rng rng(5);
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    for (int i = 0; i < 10'000; ++i) {
      const auto s = static_cast<double>(d.sample(rng));
      EXPECT_GE(s, d.min_bytes() * 0.99) << workload_name(w);
      EXPECT_LE(s, d.max_bytes() * 1.01) << workload_name(w);
    }
  }
}

TEST(FlowSizes, SampleDistributionMatchesCdf) {
  Rng rng(11);
  const auto d = FlowSizeDistribution::make(Workload::kGoogleAllRpc);
  const int n = 200'000;
  int below_1448 = 0;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) <= 1448) ++below_1448;
  }
  EXPECT_NEAR(static_cast<double>(below_1448) / n, d.cdf(1448), 0.01);
}

// Fig. 2's motivating property: most flows in most workloads fit within a
// single packet (or at most a few).
TEST(FlowSizes, MostFlowsAreShort) {
  EXPECT_GT(FlowSizeDistribution::make(Workload::kGoogleAllRpc)
                .single_packet_fraction(),
            0.80);
  EXPECT_GT(FlowSizeDistribution::make(Workload::kMetaKeyValue)
                .single_packet_fraction(),
            0.90);
  EXPECT_GT(FlowSizeDistribution::make(Workload::kGoogleSearchRpc)
                .single_packet_fraction(),
            0.80);
}

// The two flow sizes the paper singles out sit inside the right workloads.
TEST(FlowSizes, PaperAnchorsPresent) {
  const auto rpc = FlowSizeDistribution::make(Workload::kGoogleAllRpc);
  EXPECT_GT(rpc.cdf(143.0), 0.2);
  const auto ws = FlowSizeDistribution::make(Workload::kDctcpWebSearch);
  EXPECT_GT(ws.cdf(24'387.0), 0.3);
  EXPECT_LT(ws.cdf(24'387.0), 0.8);
  const auto ali = FlowSizeDistribution::make(Workload::kAlibabaStorage);
  EXPECT_DOUBLE_EQ(ali.max_bytes(), 2'097'152.0);
}

TEST(FlowSizes, MeanIsFinite) {
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    EXPECT_GT(d.mean_bytes(), d.min_bytes());
    EXPECT_LT(d.mean_bytes(), d.max_bytes());
  }
}

}  // namespace
}  // namespace lgsim::workload
