#include <gtest/gtest.h>

#include "sim/random.h"
#include "workload/flow_sizes.h"

namespace lgsim::workload {
namespace {

const Workload kAll[] = {
    Workload::kMetaKeyValue,   Workload::kGoogleSearchRpc,
    Workload::kGoogleAllRpc,   Workload::kMetaHadoop,
    Workload::kAlibabaStorage, Workload::kDctcpWebSearch,
};

TEST(FlowSizes, CdfMonotoneAndBounded) {
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    double prev = 0.0;
    for (double b = 1; b < 1e8; b *= 2) {
      const double c = d.cdf(b);
      EXPECT_GE(c, prev) << workload_name(w);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      prev = c;
    }
    EXPECT_DOUBLE_EQ(d.cdf(d.max_bytes() * 2), 1.0);
  }
}

TEST(FlowSizes, SamplesWithinSupport) {
  Rng rng(5);
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    for (int i = 0; i < 10'000; ++i) {
      const auto s = static_cast<double>(d.sample(rng));
      EXPECT_GE(s, d.min_bytes() * 0.99) << workload_name(w);
      EXPECT_LE(s, d.max_bytes() * 1.01) << workload_name(w);
    }
  }
}

TEST(FlowSizes, SampleDistributionMatchesCdf) {
  Rng rng(11);
  const auto d = FlowSizeDistribution::make(Workload::kGoogleAllRpc);
  const int n = 200'000;
  int below_1448 = 0;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) <= 1448) ++below_1448;
  }
  EXPECT_NEAR(static_cast<double>(below_1448) / n, d.cdf(1448), 0.01);
}

// Fig. 2's motivating property: most flows in most workloads fit within a
// single packet (or at most a few).
TEST(FlowSizes, MostFlowsAreShort) {
  EXPECT_GT(FlowSizeDistribution::make(Workload::kGoogleAllRpc)
                .single_packet_fraction(),
            0.80);
  EXPECT_GT(FlowSizeDistribution::make(Workload::kMetaKeyValue)
                .single_packet_fraction(),
            0.90);
  EXPECT_GT(FlowSizeDistribution::make(Workload::kGoogleSearchRpc)
                .single_packet_fraction(),
            0.80);
}

// The two flow sizes the paper singles out sit inside the right workloads.
TEST(FlowSizes, PaperAnchorsPresent) {
  const auto rpc = FlowSizeDistribution::make(Workload::kGoogleAllRpc);
  EXPECT_GT(rpc.cdf(143.0), 0.2);
  const auto ws = FlowSizeDistribution::make(Workload::kDctcpWebSearch);
  EXPECT_GT(ws.cdf(24'387.0), 0.3);
  EXPECT_LT(ws.cdf(24'387.0), 0.8);
  const auto ali = FlowSizeDistribution::make(Workload::kAlibabaStorage);
  EXPECT_DOUBLE_EQ(ali.max_bytes(), 2'097'152.0);
}

TEST(FlowSizes, MeanIsFinite) {
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    EXPECT_GT(d.mean_bytes(), d.min_bytes());
    EXPECT_LT(d.mean_bytes(), d.max_bytes());
  }
}

// ---------------------------------------------------------------------------
// Inverse-CDF property tests
// ---------------------------------------------------------------------------

TEST(FlowSizes, QuantileMonotoneInUniformDraw) {
  Rng rng(3);
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    std::int64_t prev = 0;
    for (int i = 0; i <= 10'000; ++i) {
      const double u = static_cast<double>(i) / 10'001.0;
      const std::int64_t q = d.quantile(u);
      EXPECT_GE(q, prev) << workload_name(w) << " u=" << u;
      prev = q;
    }
    // Random pair ordering too, not just the grid.
    for (int i = 0; i < 10'000; ++i) {
      double u1 = rng.uniform(), u2 = rng.uniform();
      if (u1 > u2) std::swap(u1, u2);
      EXPECT_LE(d.quantile(u1), d.quantile(u2)) << workload_name(w);
    }
  }
}

TEST(FlowSizes, SampleIsQuantileOfUniform) {
  const auto d = FlowSizeDistribution::make(Workload::kDctcpWebSearch);
  Rng a(17), b(17);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(d.sample(a), d.quantile(b.uniform()));
  }
}

// The paper's three exactly-representable sizes are genuine atoms: inverse
// sampling returns the exact byte value with the atom's probability mass.
TEST(FlowSizes, AtomsAreHitWithTheirMass) {
  struct Atom {
    Workload w;
    std::int64_t bytes;
    double mass;
  };
  const Atom atoms[] = {
      {Workload::kGoogleAllRpc, 143, 0.15},       // most frequent all-RPC size
      {Workload::kDctcpWebSearch, 24'387, 0.13},  // most frequent web-search
      {Workload::kAlibabaStorage, 2'097'152, 0.02},  // 2 MB storage cap
  };
  Rng rng(29);
  const int n = 1'000'000;
  for (const Atom& a : atoms) {
    const auto d = FlowSizeDistribution::make(a.w);
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      if (d.sample(rng) == a.bytes) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, a.mass, 0.01)
        << workload_name(a.w);
    // The CDF jump brackets the atom: strictly positive mass exactly there.
    EXPECT_GT(d.cdf(static_cast<double>(a.bytes)),
              d.cdf(static_cast<double>(a.bytes) - 0.5) + a.mass / 2)
        << workload_name(a.w);
  }
}

TEST(FlowSizes, EmpiricalMeanMatchesAnalyticMean) {
  Rng rng(41);
  const int n = 1'000'000;
  for (auto w : kAll) {
    const auto d = FlowSizeDistribution::make(w);
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
    const double emp = sum / n;
    const double ana = d.mean_bytes();
    EXPECT_NEAR(emp, ana, 0.03 * ana) << workload_name(w);
  }
}

}  // namespace
}  // namespace lgsim::workload
