// Transport-over-testbed tests: TCP (DCTCP/CUBIC/BBR) and RDMA RC across the
// protected link, with and without LinkGuardian. These validate the
// transport reactions the paper's FCT experiments rest on: RTO on tail loss,
// SACK fast retransmit on mid-flow loss, ECN response, go-back-N on
// reordering, and full masking when LinkGuardian is enabled.
#include <gtest/gtest.h>

#include <memory>

#include "net/loss_model.h"
#include "transport/path.h"
#include "transport/rdma.h"
#include "transport/tcp.h"

namespace lgsim::transport {
namespace {

struct TcpFixture {
  Simulator sim;
  PathConfig pc;
  std::unique_ptr<TestbedPath> path;
  std::unique_ptr<TcpSender> snd;
  std::unique_ptr<TcpReceiver> rcv;
  SimTime fct = -1;

  explicit TcpFixture(TcpCc cc = TcpCc::kDctcp) {
    pc.rate = gbps(100);
    pc.host_delay = usec(12);
    pc.link.rate = gbps(100);
    pc.lg.actual_loss_rate = 1e-3;  // 2 retx copies when enabled
    if (cc == TcpCc::kDctcp) {
      pc.link.ecn_threshold_bytes = 100'000;
    }
    cfg.cc = cc;
    cfg.ecn_capable = (cc == TcpCc::kDctcp);
  }

  void build(bool enable_lg) {
    path = std::make_unique<TestbedPath>(sim, pc);
    snd = std::make_unique<TcpSender>(
        sim, cfg, 1, [this](net::Packet&& p) { path->send_from_a(std::move(p)); },
        [this](SimTime t) { fct = t; });
    rcv = std::make_unique<TcpReceiver>(
        sim, cfg, 1, [this](net::Packet&& p) { path->send_from_b(std::move(p)); });
    path->set_sink_at_b([this](net::Packet&& p) { rcv->on_data(p); });
    path->set_sink_at_a([this](net::Packet&& p) { snd->on_ack(p); });
    if (enable_lg) path->link().enable_lg();
  }

  void drop(std::vector<std::uint64_t> idx) {
    path->link().set_loss_model(std::make_unique<net::ScriptedLoss>(std::move(idx)));
  }

  void run_flow(std::int64_t bytes, SimTime limit = sec(2)) {
    snd->start(bytes);
    sim.run(limit);
  }

  TcpConfig cfg;
};

TEST(TcpPath, SinglePacketFlowCompletesInOneRtt) {
  TcpFixture f;
  f.build(/*lg=*/false);
  f.run_flow(143);
  ASSERT_GE(f.fct, 0);
  // ~30 us RTT testbed: FCT within [20, 45] us.
  EXPECT_GT(f.fct, usec(20));
  EXPECT_LT(f.fct, usec(45));
  EXPECT_EQ(f.snd->stats().rtos, 0);
  EXPECT_EQ(f.snd->stats().retransmissions, 0);
}

TEST(TcpPath, MultiPacketFlowCompletesCleanly) {
  TcpFixture f;
  f.build(false);
  f.run_flow(24'387);
  ASSERT_GE(f.fct, 0);
  EXPECT_LT(f.fct, usec(100));
  EXPECT_EQ(f.snd->stats().retransmissions, 0);
  EXPECT_EQ(f.rcv->bytes_received(), 24'387);
}

TEST(TcpPath, TailLossOfSinglePacketFlowCostsAnRto) {
  TcpFixture f;
  f.build(false);
  f.drop({0});  // the only data packet, first transmission
  f.run_flow(143);
  ASSERT_GE(f.fct, 0);
  // Recovery needs a timeout (TLP is ineffective with no RTT sample /
  // flight of one): millisecond scale, ~50x the no-loss FCT.
  EXPECT_GT(f.fct, msec(1));
  EXPECT_LT(f.fct, msec(10));
  EXPECT_GE(f.snd->stats().rtos + f.snd->stats().tlp_probes, 1);
}

TEST(TcpPath, MidFlowLossRecoversBySackWithoutRto) {
  TcpFixture f;
  f.build(false);
  f.drop({2});  // third segment of a 17-segment flow
  f.run_flow(24'387);
  ASSERT_GE(f.fct, 0);
  EXPECT_EQ(f.snd->stats().rtos, 0);
  EXPECT_GE(f.snd->stats().fast_retransmits, 1);
  EXPECT_GE(f.snd->stats().cwnd_reductions, 1);
  EXPECT_TRUE(f.snd->stats().sacked_over_2mss);
  // Fast recovery adds ~1 RTT, not a timeout: well under a millisecond.
  EXPECT_LT(f.fct, usec(200));
}

TEST(TcpPath, TailLossOfMultiPacketFlowTriggersTimeoutScaleRecovery) {
  TcpFixture f;
  f.build(false);
  f.drop({16});  // last segment of the 17-segment flow
  f.run_flow(24'387);
  ASSERT_GE(f.fct, 0);
  EXPECT_GT(f.fct, msec(1));  // TLP/RTO scale
}

TEST(TcpPath, LinkGuardianMasksTailLoss) {
  TcpFixture f;
  f.build(/*lg=*/true);
  f.drop({0});
  f.run_flow(143);
  ASSERT_GE(f.fct, 0);
  // Indistinguishable from no loss: LG recovers below the RTT.
  EXPECT_LT(f.fct, usec(60));
  EXPECT_EQ(f.snd->stats().rtos, 0);
  EXPECT_EQ(f.snd->stats().tlp_probes, 0);
  EXPECT_EQ(f.snd->stats().retransmissions, 0);  // no end-to-end retx
}

TEST(TcpPath, LinkGuardianMasksMidFlowLossInOrder) {
  TcpFixture f;
  f.build(true);
  f.drop({5});
  f.run_flow(24'387);
  ASSERT_GE(f.fct, 0);
  EXPECT_LT(f.fct, usec(120));
  EXPECT_EQ(f.snd->stats().retransmissions, 0);
  EXPECT_EQ(f.snd->stats().cwnd_reductions, 0);
  EXPECT_FALSE(f.snd->stats().ever_sacked);  // order preserved: no SACKs
}

TEST(TcpPath, LinkGuardianNbMidFlowLossMayReorderButAvoidsRto) {
  TcpFixture f;
  f.pc.lg.preserve_order = false;
  f.build(true);
  f.drop({5});
  f.run_flow(24'387);
  ASSERT_GE(f.fct, 0);
  EXPECT_EQ(f.snd->stats().rtos, 0);
  EXPECT_LT(f.fct, usec(200));
  EXPECT_EQ(f.snd->stats().retransmissions, 0);  // LG retransmitted, not TCP
}

TEST(TcpPath, DctcpEcnKeepsQueueNearThreshold) {
  TcpFixture f;
  // Make the protected link the bottleneck (100G NIC into a 25G link) so the
  // standing queue forms at the switch egress where ECN marks.
  f.pc.link.rate = gbps(25);
  f.pc.link.ecn_threshold_bytes = 100'000;
  f.build(false);
  f.run_flow(20'000'000, msec(10));
  EXPECT_GE(f.snd->stats().ecn_cwnd_reductions, 1);
  // The normal-queue depth stays in the vicinity of the marking threshold
  // rather than filling the 2 MB buffer.
  EXPECT_LT(f.path->link().forward_port().queue_bytes(f.path->link().normal_queue()),
            600'000);
}

TEST(TcpPath, CubicFillsBufferAndRecoversFromCongestionLoss) {
  TcpFixture f(TcpCc::kCubic);
  f.pc.link.rate = gbps(25);               // bottleneck at the switch egress
  f.pc.link.normal_queue_bytes = 400'000;  // small buffer -> tail drops
  f.build(false);
  f.run_flow(50'000'000, msec(20));
  EXPECT_GE(f.snd->stats().cwnd_reductions, 1);
  EXPECT_GE(f.snd->stats().fast_retransmits, 1);
  EXPECT_GT(f.rcv->bytes_received(), 10'000'000);  // still makes progress
}

TEST(TcpPath, BbrIsLossAgnostic) {
  TcpFixture f(TcpCc::kBbr);
  f.build(false);
  f.path->link().set_loss_model(
      std::make_unique<net::BernoulliLoss>(1e-3, Rng(5)));
  f.run_flow(5'000'000, msec(100));
  ASSERT_GE(f.fct, 0);
  // Despite 1e-3 loss, BBR keeps sending: goodput-dominated completion,
  // not RTO-dominated. 5 MB at ~100G is ~0.4 ms + recovery tails.
  EXPECT_LT(f.fct, msec(50));
  EXPECT_GE(f.snd->stats().retransmissions, 1);
}

struct RdmaFixture {
  Simulator sim;
  PathConfig pc;
  std::unique_ptr<TestbedPath> path;
  std::unique_ptr<RdmaSender> snd;
  std::unique_ptr<RdmaReceiver> rcv;
  RdmaConfig cfg;
  SimTime fct = -1;

  RdmaFixture() {
    pc.rate = gbps(100);
    pc.host_delay = usec(2);  // NIC-terminated: no kernel stack
    pc.link.rate = gbps(100);
    pc.lg.actual_loss_rate = 1e-3;
  }

  void build(bool enable_lg) {
    path = std::make_unique<TestbedPath>(sim, pc);
    snd = std::make_unique<RdmaSender>(
        sim, cfg, 7, [this](net::Packet&& p) { path->send_from_a(std::move(p)); },
        [this](SimTime t) { fct = t; });
    rcv = std::make_unique<RdmaReceiver>(
        sim, cfg, 7, [this](net::Packet&& p) { path->send_from_b(std::move(p)); });
    path->set_sink_at_b([this](net::Packet&& p) { rcv->on_data(p); });
    path->set_sink_at_a([this](net::Packet&& p) { snd->on_transport(p); });
    if (enable_lg) path->link().enable_lg();
  }

  void drop(std::vector<std::uint64_t> idx) {
    path->link().set_loss_model(std::make_unique<net::ScriptedLoss>(std::move(idx)));
  }
};

TEST(RdmaPath, WriteCompletesNoLoss) {
  RdmaFixture f;
  f.build(false);
  f.snd->start(143);
  f.sim.run(sec(1));
  ASSERT_GE(f.fct, 0);
  EXPECT_LT(f.fct, usec(15));
  EXPECT_EQ(f.snd->stats().rtos, 0);
}

TEST(RdmaPath, MessageOf24387BytesIs17Packets) {
  RdmaFixture f;
  f.build(false);
  f.snd->start(24'387);
  f.sim.run(sec(1));
  ASSERT_GE(f.fct, 0);
  EXPECT_EQ(f.snd->stats().packets_sent, 17);
  EXPECT_EQ(f.rcv->packets_delivered(), 17);
}

TEST(RdmaPath, TailLossCostsRto) {
  RdmaFixture f;
  f.build(false);
  f.drop({16});
  f.snd->start(24'387);
  f.sim.run(sec(1));
  ASSERT_GE(f.fct, 0);
  EXPECT_GE(f.fct, msec(1));
  EXPECT_GE(f.snd->stats().rtos, 1);
}

TEST(RdmaPath, MidLossTriggersGoBackN) {
  RdmaFixture f;
  f.build(false);
  f.drop({5});
  f.snd->start(24'387);
  f.sim.run(sec(1));
  ASSERT_GE(f.fct, 0);
  EXPECT_GE(f.snd->stats().go_back_n_events, 1);
  EXPECT_GE(f.snd->stats().retransmissions, 1);
  EXPECT_EQ(f.snd->stats().rtos, 0);  // NAK-based, no timeout
  EXPECT_GE(f.rcv->ooo_dropped(), 1);
}

TEST(RdmaPath, LinkGuardianMasksLossCompletely) {
  RdmaFixture f;
  f.build(true);
  f.drop({5});
  f.snd->start(24'387);
  f.sim.run(sec(1));
  ASSERT_GE(f.fct, 0);
  EXPECT_LT(f.fct, usec(30));
  EXPECT_EQ(f.snd->stats().go_back_n_events, 0);
  EXPECT_EQ(f.snd->stats().retransmissions, 0);
  EXPECT_EQ(f.snd->stats().rtos, 0);
}

TEST(RdmaPath, LinkGuardianNbReorderingStillCausesGoBackN) {
  RdmaFixture f;
  f.pc.lg.preserve_order = false;
  f.build(true);
  f.drop({5});
  f.snd->start(24'387);
  f.sim.run(sec(1));
  ASSERT_GE(f.fct, 0);
  // The out-of-order LG retransmission hits RDMA's zero reordering
  // tolerance: go-back-N fires even though the link recovered the packet.
  EXPECT_GE(f.snd->stats().go_back_n_events, 1);
  EXPECT_EQ(f.snd->stats().rtos, 0);  // but the RTO is still avoided
}

TEST(RdmaPath, LinkGuardianNbStillSavesTailRto) {
  RdmaFixture f;
  f.pc.lg.preserve_order = false;
  f.build(true);
  f.drop({16});  // tail packet: recovery is in-order even in NB mode
  f.snd->start(24'387);
  f.sim.run(sec(1));
  ASSERT_GE(f.fct, 0);
  EXPECT_LT(f.fct, usec(40));
  EXPECT_EQ(f.snd->stats().rtos, 0);
  EXPECT_EQ(f.snd->stats().go_back_n_events, 0);
}

}  // namespace
}  // namespace lgsim::transport
