// Tests for the sharded simulation runtime: the SPSC boundary ring and
// channel (sim/boundary.h), the windowed conservative-sync ShardedSimulator
// and run_indexed pool (sim/shard.h), and the pod-block partitioner
// (fabric/partition.h). Every suite name contains "Shard" so the tsan
// preset's filter picks the whole file up (tests/CMakeLists.txt builds it a
// second time as shard_tsan_test).
#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "fabric/partition.h"
#include "sim/boundary.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::sim {
namespace {

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

BoundaryMessage msg(SimTime arrival, std::uint32_t seq) {
  BoundaryMessage m;
  m.arrival = arrival;
  m.seq = seq;
  return m;
}

TEST(ShardRing, FifoOrderAndPowerOfTwoCapacity) {
  SpscRing r(10);  // rounds up
  EXPECT_EQ(r.capacity(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i)
    ASSERT_TRUE(r.try_push(msg(100 + i, i)));
  EXPECT_FALSE(r.try_push(msg(999, 999)));  // full
  BoundaryMessage out;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out.arrival, 100 + static_cast<SimTime>(i));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(r.try_pop(out));  // empty
}

TEST(ShardRing, IndexWraparoundStart) {
  // Free-running head/tail starting 3 short of the uint32 wrap: pushes and
  // pops must stay FIFO straight through it.
  SpscRing r(8, UINT32_MAX - 3);
  BoundaryMessage out;
  for (std::uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(r.try_push(msg(i, i)));
    if (i % 2 == 1) {  // drain two at a time, lagging the producer
      ASSERT_TRUE(r.try_pop(out));
      EXPECT_EQ(out.seq, i - 1);
      ASSERT_TRUE(r.try_pop(out));
      EXPECT_EQ(out.seq, i);
    }
  }
}

// ---------------------------------------------------------------------------
// BoundaryChannel
// ---------------------------------------------------------------------------

TEST(ShardChannel, SeqUnwrapAcrossWrap) {
  // Sequence space starts 4 short of UINT32_MAX; the unwrapped 64-bit
  // sequence must keep increasing across the 32-bit wrap.
  const std::uint32_t start = UINT32_MAX - 3;
  BoundaryChannel ch(/*min_latency=*/10, /*capacity=*/64, start);
  for (int i = 0; i < 10; ++i) ch.post(0, 10 + i, [] {});
  std::vector<std::uint64_t> seqs;
  ch.drain([&](BoundaryMessage&&, std::uint64_t s64) { seqs.push_back(s64); });
  ASSERT_EQ(seqs.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(seqs[i], static_cast<std::uint64_t>(start) + i);
}

TEST(ShardChannel, OverflowSpillDrainsEverything) {
  // Capacity-8 ring, 20 posts in one burst: 8 land in the ring, 12 spill to
  // the overflow vector. One drain must surface all 20 with their true
  // posting indices, even though ring and spill interleave at the consumer.
  BoundaryChannel ch(/*min_latency=*/5, /*capacity=*/8);
  for (int i = 0; i < 20; ++i) ch.post(0, 100 + i, [] {});
  EXPECT_EQ(ch.pushed(), 20u);
  EXPECT_EQ(ch.overflowed(), 12u);
  std::set<std::uint64_t> seqs;
  ch.drain([&](BoundaryMessage&& m, std::uint64_t s64) {
    EXPECT_EQ(m.arrival, 100 + static_cast<SimTime>(s64));
    seqs.insert(s64);
  });
  ASSERT_EQ(seqs.size(), 20u);
  EXPECT_EQ(*seqs.begin(), 0u);
  EXPECT_EQ(*seqs.rbegin(), 19u);
  // Nothing left behind.
  int more = 0;
  ch.drain([&](BoundaryMessage&&, std::uint64_t) { ++more; });
  EXPECT_EQ(more, 0);
}

// ---------------------------------------------------------------------------
// ShardedSimulator
// ---------------------------------------------------------------------------

TEST(ShardedSim, SingleShardMatchesPlainSimulator) {
  // K == 1 is the golden reference path: same events, same log, same clock.
  using Rec = std::pair<SimTime, int>;
  std::vector<Rec> plain, sharded;

  Simulator ref;
  ShardedSimulator ss(1, /*window=*/10);
  const SimTime times[] = {0, 3, 3, 7, 25, 25, 40, 99, 105};
  for (int i = 0; i < 9; ++i) {
    ref.schedule_at(times[i], [&plain, &ref, i] {
      plain.emplace_back(ref.now(), i);
    });
    ss.shard(0).schedule_at(times[i], [&sharded, &ss, i] {
      sharded.emplace_back(ss.shard(0).now(), i);
    });
  }
  ref.run(120);
  ss.run(120, /*workers=*/1);
  EXPECT_EQ(plain, sharded);
  EXPECT_EQ(ref.now(), ss.shard(0).now());
  EXPECT_EQ(ss.shard(0).now(), 120);
}

TEST(ShardedSim, ClockReachesHorizonOnEveryShard) {
  ShardedSimulator ss(3, /*window=*/10);
  ss.connect_all(/*min_latency=*/10);
  ss.run(/*until=*/105, /*workers=*/1);
  for (std::int32_t k = 0; k < 3; ++k) EXPECT_EQ(ss.shard(k).now(), 105);
  // Windows 0..10 inclusive on each shard.
  EXPECT_EQ(ss.stats().windows_executed, 3u * 11u);
}

TEST(ShardedSim, CanonicalCrossShardDeliveryOrder) {
  // Three sources post to shard 0 with identical arrival times; execution
  // order on shard 0 must be (arrival, src, seq) regardless of post order.
  const SimTime w = 10;
  ShardedSimulator ss(4, w);
  for (std::int32_t s = 1; s < 4; ++s) ss.connect(s, 0, w);
  std::vector<std::pair<int, int>> order;  // (src, i) in execution order
  // Post in deliberately scrambled source order, before run().
  for (int i = 0; i < 2; ++i)
    for (std::int32_t s : {3, 1, 2})
      ss.post(s, 0, /*arrival=*/w, [&order, s, i] { order.emplace_back(s, i); });
  ss.run(3 * w, /*workers=*/1);
  const std::vector<std::pair<int, int>> want = {
      {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}, {3, 1}};
  EXPECT_EQ(order, want);
  EXPECT_EQ(ss.stats().messages_posted, 6u);
  EXPECT_EQ(ss.stats().messages_delivered, 6u);
}

// Cross-shard ping-pong around a K-shard ring. Hop h executes on shard
// h % K at time h * W; every shard logs its own hops. Used as the
// worker-count differential: any placement of shards on workers must
// produce the identical merged log.
struct PingRig {
  explicit PingRig(std::int32_t k, SimTime w, int max_hops)
      : ss(k, w), logs(static_cast<std::size_t>(k)), window(w), hops(max_hops) {
    for (std::int32_t s = 0; s < k; ++s)
      ss.connect(s, (s + 1) % k, w);
  }

  void hop(int h) {
    const std::int32_t node = h % ss.n_shards();
    const SimTime now = ss.shard(node).now();
    logs[static_cast<std::size_t>(node)].emplace_back(now, h);
    if (h + 1 < hops) {
      ss.post(node, (node + 1) % ss.n_shards(), now + window,
              [this, h] { hop(h + 1); });
    }
  }

  std::vector<std::pair<SimTime, int>> run(unsigned workers) {
    ss.shard(0).schedule_at(0, [this] { hop(0); });
    ss.run(static_cast<SimTime>(hops) * window + window, workers);
    std::vector<std::pair<SimTime, int>> merged;
    for (const auto& l : logs) merged.insert(merged.end(), l.begin(), l.end());
    std::sort(merged.begin(), merged.end());
    return merged;
  }

  ShardedSimulator ss;
  std::vector<std::vector<std::pair<SimTime, int>>> logs;
  SimTime window;
  int hops;
};

TEST(ShardedSim, PingPongIdenticalAcrossWorkerCounts) {
  const std::int32_t k = 4;
  const int hops = 64;
  const auto ref = PingRig(k, 10, hops).run(1);
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(hops));
  for (int h = 0; h < hops; ++h) {
    EXPECT_EQ(ref[static_cast<std::size_t>(h)].first, 10 * h);
    EXPECT_EQ(ref[static_cast<std::size_t>(h)].second, h);
  }
  for (unsigned workers : {2u, 4u}) {
    EXPECT_EQ(PingRig(k, 10, hops).run(workers), ref) << workers << " workers";
  }
}

TEST(ShardedSim, RunIndexedCoversAllIndicesOnceAnyWorkerCount) {
  for (unsigned workers : {0u, 1u, 3u, 8u}) {
    std::vector<int> hits(257, 0);
    run_indexed(hits.size(), workers, [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::count(hits.begin(), hits.end(), 1),
              static_cast<std::ptrdiff_t>(hits.size()))
        << workers << " workers";
  }
}

// ---------------------------------------------------------------------------
// Storm tests — the TSan targets. Every shard floods every other shard each
// window through deliberately undersized rings (forcing the overflow spill),
// on a multi-worker pool.
// ---------------------------------------------------------------------------

struct StormRig {
  StormRig(std::int32_t k, SimTime w, int rounds, int per_round,
           std::uint32_t seq_start)
      : ss(k, w),
        rx(static_cast<std::size_t>(k)),
        window(w),
        rounds(rounds),
        per_round(per_round) {
    for (std::int32_t s = 0; s < k; ++s)
      for (std::int32_t d = 0; d < k; ++d)
        if (s != d) ss.connect(s, d, w, /*capacity=*/8, seq_start);
  }

  void round(std::int32_t src, int r) {
    const SimTime now = ss.shard(src).now();
    for (std::int32_t d = 0; d < ss.n_shards(); ++d) {
      if (d == src) continue;
      for (int i = 0; i < per_round; ++i) {
        const int val = ((r * ss.n_shards()) + src) * per_round + i;
        ss.post(src, d, now + window,
                [this, d, val] { rx[static_cast<std::size_t>(d)].push_back(val); });
      }
    }
    if (r + 1 < rounds) {
      ss.shard(src).schedule_at(now + window,
                                [this, src, r] { round(src, r + 1); });
    }
  }

  std::vector<std::vector<int>> run(unsigned workers) {
    for (std::int32_t s = 0; s < ss.n_shards(); ++s)
      ss.shard(s).schedule_at(0, [this, s] { round(s, 0); });
    ss.run(static_cast<SimTime>(rounds) * window + window, workers);
    return rx;
  }

  ShardedSimulator ss;
  std::vector<std::vector<int>> rx;
  SimTime window;
  int rounds;
  int per_round;
};

TEST(ShardStorm, FloodIdenticalAcrossWorkerCountsWithOverflow) {
  const std::int32_t k = 4;
  const int rounds = 16, per_round = 12;  // 12 > ring capacity 8 -> spill
  StormRig ref_rig(k, 10, rounds, per_round, 0);
  const auto ref = ref_rig.run(1);
  const std::uint64_t total =
      static_cast<std::uint64_t>(rounds) * k * (k - 1) * per_round;
  EXPECT_EQ(ref_rig.ss.stats().messages_posted, total);
  EXPECT_EQ(ref_rig.ss.stats().messages_delivered, total);
  EXPECT_GT(ref_rig.ss.stats().channel_overflows, 0u);
  for (unsigned workers : {2u, 4u}) {
    StormRig rig(k, 10, rounds, per_round, 0);
    EXPECT_EQ(rig.run(workers), ref) << workers << " workers";
    EXPECT_EQ(rig.ss.stats().messages_delivered, total);
  }
}

TEST(ShardStorm, SeqWraparoundCrossShard) {
  // Same flood with every channel's sequence space starting 5 short of the
  // 32-bit wrap: the canonical (arrival, src, seq64) order must hold across
  // the wrap, so the logs match the seq_start=0 reference exactly.
  const std::int32_t k = 3;
  const int rounds = 12, per_round = 10;
  const auto ref = StormRig(k, 10, rounds, per_round, 0).run(1);
  for (unsigned workers : {1u, 3u}) {
    StormRig rig(k, 10, rounds, per_round, UINT32_MAX - 5);
    EXPECT_EQ(rig.run(workers), ref) << workers << " workers";
  }
}

}  // namespace
}  // namespace lgsim::sim

// ---------------------------------------------------------------------------
// PodPartition
// ---------------------------------------------------------------------------

namespace lgsim::fabric {
namespace {

TEST(ShardPartition, ClampsAndCoversAllPods) {
  TopologyConfig cfg;
  cfg.pods = 10;
  EXPECT_EQ(PodPartition::make(cfg, 0).n_shards(), 1);
  EXPECT_EQ(PodPartition::make(cfg, 99).n_shards(), 10);

  const PodPartition p = PodPartition::make(cfg, 4);
  ASSERT_EQ(p.n_shards(), 4);
  EXPECT_EQ(p.first_pod(0), 0);
  EXPECT_EQ(p.first_pod(4), 10);  // end sentinel
  std::int32_t covered = 0;
  for (std::int32_t s = 0; s < 4; ++s) {
    const std::int32_t n = p.pods_in_shard(s);
    EXPECT_GE(n, 2);  // near-equal blocks of 10/4
    EXPECT_LE(n, 3);
    covered += n;
    for (std::int32_t pod = p.first_pod(s); pod < p.first_pod(s + 1); ++pod)
      EXPECT_EQ(p.shard_of_pod(pod), s);
  }
  EXPECT_EQ(covered, 10);
}

TEST(ShardPartition, LinkAndHostMappingFollowPodBlocks) {
  TopologyConfig cfg;
  cfg.pods = 6;
  cfg.tors_per_pod = 4;
  const std::int32_t hpt = 3;
  const PodPartition p = PodPartition::make(cfg, 2);
  ASSERT_EQ(p.n_shards(), 2);

  Link l;
  l.pod = 2;
  EXPECT_EQ(p.shard_of_link(l), 0);
  l.pod = 3;
  EXPECT_EQ(p.shard_of_link(l), 1);

  EXPECT_EQ(p.first_host(0, cfg, hpt), 0);
  EXPECT_EQ(p.first_host(1, cfg, hpt), 3 * 4 * 3);
  EXPECT_EQ(p.first_host(2, cfg, hpt), 6 * 4 * 3);  // end sentinel
  EXPECT_EQ(p.shard_of_host(p.first_host(1, cfg, hpt) - 1, cfg, hpt), 0);
  EXPECT_EQ(p.shard_of_host(p.first_host(1, cfg, hpt), cfg, hpt), 1);
}

}  // namespace
}  // namespace lgsim::fabric
