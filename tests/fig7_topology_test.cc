// Multi-hop integration test: the paper's Fig. 7 testbed topology built from
// the Switch abstraction, with the corrupting (VOA) link between sw2 and sw6
// spliced through LinkGuardian.
//
//   h4 -> sw4 -> sw2 ==LG/VOA==> sw6 -> sw10 -> h8   (and the reverse path)
//
// Verifies that LinkGuardian is transparent to multi-hop forwarding: packets
// cross three switches each way, the protected link recovers its losses,
// ordering holds end to end, and the reverse path carries the piggybacked
// ACK state through intermediate hops.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lg/link.h"
#include "net/loss_model.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace lgsim {
namespace {

constexpr std::uint32_t kH4 = 4;
constexpr std::uint32_t kH8 = 8;

struct Fig7 {
  Simulator sim;
  net::Switch sw4{sim, "sw4"};
  net::Switch sw2{sim, "sw2"};
  net::Switch sw6{sim, "sw6"};
  net::Switch sw10{sim, "sw10"};
  std::unique_ptr<lg::ProtectedLink> voa;  // the corrupting sw2->sw6 link

  std::vector<net::Packet> at_h8;
  std::vector<net::Packet> at_h4;

  explicit Fig7(const lg::LgConfig& cfg, BitRate rate = gbps(100)) {
    const net::Switch::PortCfg pc{.rate = rate};
    // Forward path ports.
    const int p_sw4_sw2 = sw4.add_port(pc);
    const int p_sw2_sw6 = sw2.add_port(pc);   // spliced through LinkGuardian
    const int p_sw6_sw10 = sw6.add_port(pc);
    const int p_sw10_h8 = sw10.add_port(pc);
    // Reverse path ports.
    const int p_sw10_sw6 = sw10.add_port(pc);
    const int p_sw6_sw2 = sw6.add_port(pc);   // reverse of the VOA link
    const int p_sw2_sw4 = sw2.add_port(pc);
    const int p_sw4_h4 = sw4.add_port(pc);

    // Routing: traffic to h8 goes right, to h4 goes left.
    sw4.add_route(kH8, p_sw4_sw2);
    sw2.add_route(kH8, p_sw2_sw6);
    sw6.add_route(kH8, p_sw6_sw10);
    sw10.add_route(kH8, p_sw10_h8);
    sw10.add_route(kH4, p_sw10_sw6);
    sw6.add_route(kH4, p_sw6_sw2);
    sw2.add_route(kH4, p_sw2_sw4);
    sw4.add_route(kH4, p_sw4_h4);

    // Wire the plain hops.
    sw4.connect(p_sw4_sw2, sw2.ingress_fn());
    sw6.connect(p_sw6_sw10, sw10.ingress_fn());
    sw10.connect(p_sw10_h8, [this](net::Packet&& p) { at_h8.push_back(std::move(p)); });
    sw10.connect(p_sw10_sw6, sw6.ingress_fn());
    sw2.connect(p_sw2_sw4, sw4.ingress_fn());
    sw4.connect(p_sw4_h4, [this](net::Packet&& p) { at_h4.push_back(std::move(p)); });

    // Splice the protected link between sw2 and sw6: forwarding decisions
    // toward those egress ports go through LinkGuardian instead.
    lg::LinkSpec spec;
    spec.rate = rate;
    spec.name = "sw2-sw6(VOA)";
    voa = std::make_unique<lg::ProtectedLink>(sim, spec, cfg);
    sw2.set_egress_override(p_sw2_sw6,
                            [this](net::Packet&& p) { voa->send_forward(std::move(p)); });
    sw6.set_egress_override(p_sw6_sw2,
                            [this](net::Packet&& p) { voa->send_reverse(std::move(p)); });
    voa->set_forward_sink(sw6.ingress_fn());
    voa->set_reverse_sink(sw2.ingress_fn());
    // The unused raw port objects for the spliced hops still exist, unused.
    (void)p_sw2_sw6;
    (void)p_sw6_sw2;
  }

  // Injections are paced at the host line rate so the intermediate switch
  // queues (realistically sized) never see a synthetic infinite burst.
  void send_h4_to_h8(int n, std::int32_t bytes = 1500) {
    const SimTime ser = serialization_time(bytes + 38, gbps(100));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<SimTime>(i) * ser, [this, bytes, i] {
        net::Packet p;
        p.kind = net::PktKind::kData;
        p.frame_bytes = bytes;
        p.src = kH4;
        p.dst = kH8;
        p.uid = static_cast<std::uint64_t>(i + 1);
        sw4.ingress(std::move(p));
      });
    }
  }

  void send_h8_to_h4(int n, std::int32_t bytes = 200) {
    const SimTime ser = serialization_time(bytes + 38, gbps(100));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<SimTime>(i) * ser, [this, bytes, i] {
        net::Packet p;
        p.kind = net::PktKind::kData;
        p.frame_bytes = bytes;
        p.src = kH8;
        p.dst = kH4;
        p.uid = static_cast<std::uint64_t>(1000 + i);
        sw10.ingress(std::move(p));
      });
    }
  }
};

TEST(Fig7Topology, CleanEndToEndForwarding) {
  lg::LgConfig cfg;
  Fig7 net(cfg);
  net.voa->enable_lg();
  net.send_h4_to_h8(100);
  net.send_h8_to_h4(50);
  net.sim.run();
  ASSERT_EQ(net.at_h8.size(), 100u);
  ASSERT_EQ(net.at_h4.size(), 50u);
  for (std::size_t i = 1; i < net.at_h8.size(); ++i)
    EXPECT_GT(net.at_h8[i].uid, net.at_h8[i - 1].uid);
  // The LG header never leaks past the protected link.
  for (const auto& p : net.at_h8) EXPECT_FALSE(p.lg.valid);
}

TEST(Fig7Topology, CorruptionOnVoaLinkMaskedAcrossHops) {
  lg::LgConfig cfg;
  cfg.actual_loss_rate = 1e-2;
  Fig7 net(cfg);
  net.voa->set_loss_model(std::make_unique<net::BernoulliLoss>(1e-2, Rng(21)));
  net.voa->enable_lg();
  net.send_h4_to_h8(20'000);
  net.send_h8_to_h4(5'000);  // reverse traffic carries piggybacked ACKs
  net.sim.run();
  const auto& rs = net.voa->receiver().stats();
  EXPECT_EQ(net.at_h8.size() + static_cast<std::size_t>(rs.effectively_lost),
            20'000u);
  EXPECT_LE(rs.effectively_lost, 2);  // ~1e-2^3 residual
  EXPECT_GT(rs.recovered, 100);
  EXPECT_EQ(net.at_h4.size(), 5'000u);  // reverse traffic unharmed
  for (std::size_t i = 1; i < net.at_h8.size(); ++i)
    ASSERT_GT(net.at_h8[i].uid, net.at_h8[i - 1].uid);
}

TEST(Fig7Topology, WithoutLgTheLossReachesTheEndpoints) {
  lg::LgConfig cfg;
  Fig7 net(cfg);
  net.voa->set_loss_model(std::make_unique<net::BernoulliLoss>(1e-2, Rng(22)));
  net.send_h4_to_h8(20'000);
  net.sim.run();
  EXPECT_LT(net.at_h8.size(), 20'000u);
  EXPECT_GT(net.at_h8.size(), 19'000u);  // ~1% gone
}

TEST(Fig7Topology, UnroutablePacketsAreCountedNotCrashed) {
  lg::LgConfig cfg;
  Fig7 net(cfg);
  net::Packet p;
  p.dst = 99;  // no route anywhere
  net.sw4.ingress(std::move(p));
  net.sim.run();
  EXPECT_EQ(net.sw4.dropped_no_route(), 1);
}

}  // namespace
}  // namespace lgsim
