#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"
#include "net/pipeline.h"
#include "net/port.h"
#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace lgsim::net {
namespace {

Packet data_pkt(std::int32_t frame_bytes, std::uint64_t uid = 0) {
  Packet p;
  p.kind = PktKind::kData;
  p.frame_bytes = frame_bytes;
  p.uid = uid;
  return p;
}

struct Collector {
  std::vector<Packet> pkts;
  std::vector<SimTime> times;
  EgressPort::DeliverFn fn(Simulator& sim) {
    return [this, &sim](Packet&& p) {
      pkts.push_back(std::move(p));
      times.push_back(sim.now());
    };
  }
};

TEST(EgressPort, SerializationAndPropagationDelay) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(100), nsec(100));
  const int q = port.add_queue();
  Collector sink;
  port.set_deliver(sink.fn(sim));
  port.enqueue(q, data_pkt(1518));
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 1u);
  // (1518 + 20) * 8 / 100G = 123.04 ns (truncated; the carry accumulates)
  // + 100 ns propagation.
  EXPECT_EQ(sink.times[0], 223);
}

TEST(EgressPort, BackToBackFramesAreSpacedBySerialization) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(10), 0);
  const int q = port.add_queue();
  Collector sink;
  port.set_deliver(sink.fn(sim));
  port.enqueue(q, data_pkt(1518, 1));
  port.enqueue(q, data_pkt(1518, 2));
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 2u);
  // 1538 B at 10G = 1230.4 ns; frame spacing stays within 1 ns of exact and
  // never drifts (sub-ns carry).
  EXPECT_NEAR(static_cast<double>(sink.times[1] - sink.times[0]), 1230.4, 1.0);
  EXPECT_NEAR(static_cast<double>(sink.times[1]), 2460.8, 1.0);
}

TEST(EgressPort, StrictPriorityPreempts) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(10), 0);
  const int hi = port.add_queue();
  const int lo = port.add_queue();
  Collector sink;
  port.set_deliver(sink.fn(sim));
  // Fill low priority first; then a high-priority frame arrives while the
  // first low frame is serializing. It must jump ahead of the second.
  port.enqueue(lo, data_pkt(1500, 1));
  port.enqueue(lo, data_pkt(1500, 2));
  sim.schedule_at(10, [&] { port.enqueue(hi, data_pkt(100, 99)); });
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 3u);
  EXPECT_EQ(sink.pkts[0].uid, 1u);
  EXPECT_EQ(sink.pkts[1].uid, 99u);
  EXPECT_EQ(sink.pkts[2].uid, 2u);
}

TEST(EgressPort, ByteLimitDropsTail) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(10), 0);
  const int q = port.add_queue({.byte_limit = 3000});
  Collector sink;
  port.set_deliver(sink.fn(sim));
  // First is immediately taken out of the queue into serialization, so three
  // more fit 1500+1500; the fourth enqueue overflows.
  EXPECT_TRUE(port.enqueue(q, data_pkt(1500, 1)));
  EXPECT_TRUE(port.enqueue(q, data_pkt(1500, 2)));
  EXPECT_TRUE(port.enqueue(q, data_pkt(1500, 3)));
  EXPECT_FALSE(port.enqueue(q, data_pkt(1500, 4)));
  EXPECT_EQ(port.queue_counters(q).drop_frames, 1);
  sim.run();
  EXPECT_EQ(sink.pkts.size(), 3u);
}

TEST(EgressPort, QueueCountersConserve) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(10), 0);
  const int q = port.add_queue({.byte_limit = 3000});
  Collector sink;
  port.set_deliver(sink.fn(sim));
  ScriptedLoss loss({2});  // corrupt the 3rd transmitted frame
  port.set_loss_model(&loss);

  EXPECT_TRUE(port.enqueue(q, data_pkt(1500, 1)));  // dequeued immediately
  EXPECT_TRUE(port.enqueue(q, data_pkt(1500, 2)));
  EXPECT_TRUE(port.enqueue(q, data_pkt(1400, 3)));
  EXPECT_FALSE(port.enqueue(q, data_pkt(1500, 4)));  // 2900 + 1500 > limit

  // Mid-flight conservation: accepted == dequeued + still in the fifo, for
  // both frames and bytes; drops live in their own counters.
  const EgressPort::QueueCounters& c = port.queue_counters(q);
  EXPECT_EQ(c.enq_frames,
            c.deq_frames + static_cast<std::int64_t>(port.queue_frames(q)));
  EXPECT_EQ(c.enq_bytes, c.deq_bytes + port.queue_bytes(q));
  EXPECT_EQ(c.enq_frames + c.drop_frames, 4);  // everything offered
  EXPECT_EQ(c.drop_frames, 1);
  EXPECT_EQ(c.drop_bytes, 1500);

  sim.run();

  // Fully drained: the invariant collapses to enq == deq, and every
  // transmitted frame was either corrupted on the wire or delivered.
  EXPECT_EQ(c.enq_frames, c.deq_frames);
  EXPECT_EQ(c.enq_bytes, c.deq_bytes);
  EXPECT_EQ(c.tx_frames, 3);
  EXPECT_EQ(port.counters().tx_frames, 3);
  EXPECT_EQ(port.counters().corrupted_frames, 1);
  EXPECT_EQ(port.counters().corrupted_frames + port.counters().delivered_frames,
            port.counters().tx_frames);

  obs::MetricsRegistry m;
  port.export_metrics(m);
  EXPECT_EQ(m.counter("port.p.q0.enq_frames"), 3);
  EXPECT_EQ(m.counter("port.p.q0.drop_frames"), 1);
  EXPECT_EQ(m.counter("port.p.q0.drop_bytes"), 1500);
  EXPECT_EQ(m.counter("port.p.q0.deq_frames"), 3);
  EXPECT_EQ(m.counter("port.p.q0.queued_frames"), 0);
  EXPECT_EQ(m.counter("port.p.corrupted_frames"), 1);
  EXPECT_EQ(m.counter("port.p.delivered_frames"), 2);
}

TEST(EgressPort, ReplenishCountsAsEnqueueForConservation) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(100), 0);
  const int fill = port.add_queue();
  int generated = 0;
  port.set_replenish(fill, [&]() -> std::optional<Packet> {
    if (generated >= 3) return std::nullopt;
    ++generated;
    return make_control(PktKind::kLgDummy);
  });
  Collector sink;
  port.set_deliver(sink.fn(sim));
  port.enqueue(fill, make_control(PktKind::kLgDummy));
  sim.run();
  const EgressPort::QueueCounters& c = port.queue_counters(fill);
  EXPECT_EQ(c.enq_frames, 4);  // 1 seeded + 3 self-replenished
  EXPECT_EQ(c.enq_frames,
            c.deq_frames + static_cast<std::int64_t>(port.queue_frames(fill)));
  EXPECT_EQ(c.enq_bytes, c.deq_bytes + port.queue_bytes(fill));
}

TEST(EgressPort, PauseHoldsQueueAndResumeReleases) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(10), 0);
  const int hi = port.add_queue();
  const int lo = port.add_queue();
  Collector sink;
  port.set_deliver(sink.fn(sim));
  port.pause_queue(hi);
  port.enqueue(hi, data_pkt(100, 1));
  port.enqueue(lo, data_pkt(100, 2));
  sim.schedule_at(usec(5), [&] { port.resume_queue(hi); });
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 2u);
  // Low priority went first because high was paused.
  EXPECT_EQ(sink.pkts[0].uid, 2u);
  EXPECT_EQ(sink.pkts[1].uid, 1u);
  EXPECT_GE(sink.times[1], usec(5));
}

TEST(EgressPort, EcnMarksAboveThreshold) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(10), 0);
  const int q = port.add_queue({.ecn_threshold = 2000});
  Collector sink;
  port.set_deliver(sink.fn(sim));
  port.enqueue(q, data_pkt(1500, 1));  // immediately serialized, queue empty
  port.enqueue(q, data_pkt(1500, 2));  // queue depth 0 -> no mark
  port.enqueue(q, data_pkt(1500, 3));  // depth 1500 -> no mark
  port.enqueue(q, data_pkt(1500, 4));  // depth 3000 > 2000 -> mark
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 4u);
  EXPECT_FALSE(sink.pkts[1].tcp.ce);
  EXPECT_FALSE(sink.pkts[2].tcp.ce);
  EXPECT_TRUE(sink.pkts[3].tcp.ce);
  EXPECT_EQ(port.queue_counters(q).ecn_marked, 1);
}

TEST(EgressPort, ReplenishKeepsQueueFedUntilGeneratorDeclines) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(100), 0);
  const int normal = port.add_queue();
  const int fill = port.add_queue();
  int generated = 0;
  port.set_replenish(fill, [&]() -> std::optional<Packet> {
    if (generated >= 3) return std::nullopt;
    ++generated;
    return make_control(PktKind::kLgDummy);
  });
  Collector sink;
  port.set_deliver(sink.fn(sim));
  port.enqueue(fill, make_control(PktKind::kLgDummy));
  sim.run();
  // 1 seed + 3 generated.
  EXPECT_EQ(sink.pkts.size(), 4u);
  EXPECT_EQ(port.queue_frames(fill), 0u);
  (void)normal;
}

TEST(EgressPort, TransmitHookCanMutate) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(100), 0);
  const int q = port.add_queue();
  port.set_transmit_hook([](Packet& p, int) { p.lg_ack.valid = true; });
  Collector sink;
  port.set_deliver(sink.fn(sim));
  port.enqueue(q, data_pkt(100));
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 1u);
  EXPECT_TRUE(sink.pkts[0].lg_ack.valid);
}

TEST(EgressPort, LossModelDropsFrames) {
  Simulator sim;
  EgressPort port(sim, "p", gbps(100), 0);
  const int q = port.add_queue();
  ScriptedLoss loss({1, 3});  // drop 2nd and 4th frames
  port.set_loss_model(&loss);
  Collector sink;
  port.set_deliver(sink.fn(sim));
  for (int i = 0; i < 5; ++i) port.enqueue(q, data_pkt(100, i));
  sim.run();
  ASSERT_EQ(sink.pkts.size(), 3u);
  EXPECT_EQ(sink.pkts[0].uid, 0u);
  EXPECT_EQ(sink.pkts[1].uid, 2u);
  EXPECT_EQ(sink.pkts[2].uid, 4u);
  EXPECT_EQ(port.counters().corrupted_frames, 2);
  EXPECT_EQ(port.counters().delivered_frames, 3);
}

TEST(BernoulliLoss, MatchesConfiguredRate) {
  Rng rng(99);
  BernoulliLoss loss(0.01, rng);
  Packet p;
  int lost = 0;
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i)
    if (loss.lose(0, p)) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.01, 0.001);
}

TEST(GilbertElliottLoss, RateAndBurstiness) {
  const double rate = 0.01;
  const double mean_burst = 1.5;
  GilbertElliottLoss loss(GilbertElliottLoss::for_rate(rate, mean_burst), Rng(7));
  Packet p;
  const int n = 3'000'000;
  int lost = 0;
  int bursts = 0;
  int run = 0;
  lgsim::CountHistogram burst_hist;
  for (int i = 0; i < n; ++i) {
    if (loss.lose(0, p)) {
      ++lost;
      ++run;
    } else {
      if (run > 0) {
        ++bursts;
        burst_hist.add(run);
      }
      run = 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, rate, rate * 0.1);
  const double avg_burst = static_cast<double>(lost) / bursts;
  EXPECT_NEAR(avg_burst, mean_burst, 0.15);
  // Single losses dominate; bursts beyond 5 are very rare (Fig. 20 shape).
  EXPECT_GT(burst_hist.cdf_at(1), 0.6);
  EXPECT_GT(burst_hist.cdf_at(5), 0.995);
}

TEST(FilteredLoss, ExemptsFilteredKinds) {
  auto inner = std::make_unique<ScriptedLoss>(std::vector<std::uint64_t>{0, 1, 2});
  FilteredLoss loss(std::move(inner),
                    [](const Packet& p) { return p.kind == PktKind::kData; });
  Packet ctrl = make_control(PktKind::kPfcPause);
  Packet data;
  data.kind = PktKind::kData;
  EXPECT_FALSE(loss.lose(0, ctrl));  // not even counted by inner
  EXPECT_TRUE(loss.lose(0, data));
  EXPECT_TRUE(loss.lose(0, data));
  EXPECT_TRUE(loss.lose(0, data));
  EXPECT_FALSE(loss.lose(0, data));
}

TEST(PipelineDelay, AddsFixedLatency) {
  Simulator sim;
  std::vector<SimTime> arrivals;
  PipelineDelay pipe(sim, nsec(400), [&](Packet&&) { arrivals.push_back(sim.now()); });
  sim.schedule_at(100, [&] { pipe.accept(Packet{}); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 500);
}

}  // namespace
}  // namespace lgsim::net
