// Tests for the §5 extensions: bidirectional corruption handling (reverse
// loss model + control-message redundancy) and automatic fallback.
#include <gtest/gtest.h>

#include <memory>

#include "lg/link.h"
#include "monitor/fallback.h"
#include "net/loss_model.h"

namespace lgsim::lg {
namespace {

struct BidirHarness {
  Simulator sim;
  LgConfig cfg;
  LinkSpec spec;
  std::unique_ptr<ProtectedLink> link;
  std::int64_t delivered = 0;
  std::uint64_t last_uid = 0;
  bool ordered = true;

  BidirHarness() {
    spec.rate = gbps(100);
    spec.normal_queue_bytes = 400'000'000;  // whole run enqueued at t=0
    cfg.actual_loss_rate = 1e-3;
  }

  void make(double fwd_loss, double rev_loss) {
    link = std::make_unique<ProtectedLink>(sim, spec, cfg);
    link->set_loss_model(std::make_unique<net::BernoulliLoss>(fwd_loss, Rng(11)));
    if (rev_loss > 0) {
      link->set_reverse_loss_model(
          std::make_unique<net::BernoulliLoss>(rev_loss, Rng(13)));
    }
    link->set_forward_sink([this](net::Packet&& p) {
      if (delivered > 0 && p.uid <= last_uid) ordered = false;
      last_uid = p.uid;
      ++delivered;
    });
    link->enable_lg();
  }

  void inject(int n) {
    for (int i = 0; i < n; ++i) {
      net::Packet p;
      p.kind = net::PktKind::kData;
      p.frame_bytes = 1518;
      p.uid = static_cast<std::uint64_t>(i + 1);
      link->send_forward(std::move(p));
    }
  }
};

TEST(Bidirectional, ControlRedundancyMasksReverseLoss) {
  BidirHarness h;
  h.cfg.loss_notif_copies = 3;  // §5: multiple copies of control messages
  h.cfg.control_copies = 3;
  h.make(/*fwd=*/1e-3, /*rev=*/1e-3);
  h.inject(100'000);
  h.sim.run();
  const auto& rs = h.link->receiver().stats();
  EXPECT_EQ(h.delivered + rs.effectively_lost, 100'000);
  EXPECT_TRUE(h.ordered);
  // Forward recovery quality is unchanged by the reverse corruption.
  EXPECT_LE(rs.effectively_lost, 2);
  EXPECT_GT(rs.recovered, 50);
}

TEST(Bidirectional, WithoutRedundancyReverseLossHurtsRecovery) {
  // With single-copy notifications and a very lossy reverse channel, some
  // loss notifications vanish and the corresponding packets can only be
  // skipped by the ackNoTimeout (higher effective loss).
  BidirHarness strong;
  strong.cfg.loss_notif_copies = 3;
  strong.cfg.control_copies = 3;
  strong.make(1e-2, 5e-2);
  strong.inject(100'000);
  strong.sim.run();

  BidirHarness weak;
  weak.cfg.loss_notif_copies = 1;
  weak.cfg.control_copies = 1;
  weak.make(1e-2, 5e-2);
  weak.inject(100'000);
  weak.sim.run();

  const auto& rs_s = strong.link->receiver().stats();
  const auto& rs_w = weak.link->receiver().stats();
  EXPECT_LT(rs_s.effectively_lost, rs_w.effectively_lost);
  // Exactly-once still holds in both (nothing is duplicated or stuck).
  EXPECT_EQ(strong.delivered + rs_s.effectively_lost, 100'000);
  EXPECT_EQ(weak.delivered + rs_w.effectively_lost, 100'000);
}

TEST(Bidirectional, PfcRedundancySurvivesReverseLoss) {
  BidirHarness h;
  h.cfg.control_copies = 3;
  h.cfg.recirc_loop = usec(5);  // slow recovery -> backpressure engages
  h.make(1e-2, 1e-2);
  h.inject(200'000);
  h.sim.run();
  const auto& rs = h.link->receiver().stats();
  // Pauses were sent and the buffer never overflowed despite lossy PFC.
  EXPECT_GT(rs.pauses_sent, 0);
  EXPECT_EQ(rs.reorder_drops, 0);
  EXPECT_EQ(h.delivered + rs.effectively_lost, 200'000);
}

TEST(LiveModeSwitch, OrderedToNbAndBackLosesNothingToTheSwitchItself) {
  // Flip a running link ordered -> NB -> ordered mid-stream (what
  // AutoFallback does). The handoff must strand nothing: every injected
  // frame is either forwarded exactly once or accounted as effectively lost.
  BidirHarness h;
  h.make(/*fwd=*/1e-3, /*rev=*/0.0);
  const int n = 100'000;
  h.inject(n);
  // 100k MTU frames at 100G drain in ~12.5 ms; switch modes mid-drain.
  h.sim.schedule_at(msec(4), [&] { h.link->set_preserve_order(false); });
  h.sim.schedule_at(msec(8), [&] { h.link->set_preserve_order(true); });
  h.sim.run();

  const auto& rs = h.link->receiver().stats();
  EXPECT_TRUE(h.link->preserve_order());
  EXPECT_EQ(h.delivered + rs.effectively_lost, n);
  EXPECT_EQ(rs.reorder_drops, 0);
  // Only the NB window and the switch edge may leak losses; the bulk of the
  // corrupted frames were recovered by retransmission.
  EXPECT_GT(rs.recovered, 50);
  EXPECT_LE(rs.effectively_lost, 10);
  EXPECT_FALSE(h.link->receiver().backpressured());
}

TEST(LiveModeSwitch, RedundantFlipIsANoOp) {
  BidirHarness h;
  h.make(1e-3, 0.0);
  h.inject(10'000);
  // Same-mode "switches" must not disturb the reordering state.
  h.sim.schedule_at(msec(1), [&] { h.link->set_preserve_order(true); });
  h.sim.run();
  const auto& rs = h.link->receiver().stats();
  EXPECT_EQ(h.delivered + rs.effectively_lost, 10'000);
  EXPECT_TRUE(h.ordered);
}

}  // namespace
}  // namespace lgsim::lg

namespace lgsim::monitor {
namespace {

TEST(AutoFallback, StepsDownAndRecoversWithHysteresis) {
  Simulator sim;
  FallbackConfig cfg;
  cfg.nb_threshold = 5e-3;
  cfg.off_threshold = 5e-2;
  cfg.period = msec(10);
  double measured = 1e-4;
  std::vector<LgMode> applied;
  AutoFallback fb(sim, cfg, [&] { return measured; },
                  [&](LgMode m) { applied.push_back(m); });
  fb.start();

  // Healthy-ish -> stays ordered.
  sim.run(msec(25));
  EXPECT_EQ(fb.mode(), LgMode::kOrdered);
  EXPECT_TRUE(applied.empty());

  // Degrades past the NB threshold.
  measured = 1e-2;
  sim.run(msec(45));
  EXPECT_EQ(fb.mode(), LgMode::kNonBlocking);

  // Catastrophic: disable entirely.
  measured = 1e-1;
  sim.run(msec(65));
  EXPECT_EQ(fb.mode(), LgMode::kOff);

  // Partial recovery: not enough to re-enable (hysteresis)...
  measured = 4e-2;
  sim.run(msec(85));
  EXPECT_EQ(fb.mode(), LgMode::kOff);
  // ...but a solid recovery steps back to NB, then ordered.
  measured = 1e-2;
  sim.run(msec(105));
  EXPECT_EQ(fb.mode(), LgMode::kNonBlocking);
  measured = 1e-4;
  sim.run(msec(125));
  EXPECT_EQ(fb.mode(), LgMode::kOrdered);
  fb.stop();

  ASSERT_EQ(applied.size(), 4u);
  EXPECT_EQ(applied[0], LgMode::kNonBlocking);
  EXPECT_EQ(applied[1], LgMode::kOff);
  EXPECT_EQ(applied[2], LgMode::kNonBlocking);
  EXPECT_EQ(applied[3], LgMode::kOrdered);
  EXPECT_EQ(fb.changes().size(), 4u);
}

TEST(AutoFallback, RestartIsIdempotentAndDoesNotStackEvaluationChains) {
  Simulator sim;
  FallbackConfig cfg;
  cfg.period = msec(1);
  int evals = 0;
  AutoFallback fb(sim, cfg, [&] { ++evals; return 1e-4; },
                  [](LgMode) {});
  fb.start();
  fb.start();  // double start must replace, not stack, the chain
  sim.run(msec(10) + usec(1));
  EXPECT_EQ(evals, 10);
  EXPECT_TRUE(fb.running());
  fb.stop();
  fb.stop();  // idempotent
  EXPECT_FALSE(fb.running());
}

TEST(AutoFallback, StopThenRestartResumesEvaluation) {
  Simulator sim;
  FallbackConfig cfg;
  cfg.period = msec(1);
  int evals = 0;
  AutoFallback fb(sim, cfg, [&] { ++evals; return 1e-4; },
                  [](LgMode) {});
  fb.start();
  sim.run(msec(3) + usec(1));
  fb.stop();
  sim.run(msec(8));  // dormant: the armed fire was cancelled
  EXPECT_EQ(evals, 3);
  fb.start();
  sim.run(msec(12) + usec(1));
  EXPECT_EQ(evals, 7);
  fb.stop();
}

TEST(AutoFallback, OscillationAroundThresholdDoesNotFlap) {
  // Loss bouncing just around nb_threshold: the first crossing demotes to
  // NB, but stepping back up needs loss < nb_threshold * recover_factor —
  // hysteresis holds the mode through the oscillation.
  Simulator sim;
  FallbackConfig cfg;
  cfg.nb_threshold = 5e-3;
  cfg.recover_factor = 0.5;
  cfg.period = msec(1);
  bool high = false;
  AutoFallback fb(
      sim, cfg,
      [&] {
        high = !high;
        return high ? 5.1e-3 : 4.9e-3;
      },
      [](LgMode) {});
  fb.start();
  sim.run(msec(20) + usec(1));
  fb.stop();

  ASSERT_EQ(fb.changes().size(), 1u);
  EXPECT_EQ(fb.changes()[0].to, LgMode::kNonBlocking);
  EXPECT_EQ(fb.mode(), LgMode::kNonBlocking);
}

TEST(AutoFallback, ModeNames) {
  EXPECT_STREQ(lg_mode_name(LgMode::kOrdered), "LinkGuardian");
  EXPECT_STREQ(lg_mode_name(LgMode::kNonBlocking), "LinkGuardianNB");
  EXPECT_STREQ(lg_mode_name(LgMode::kOff), "off");
}

}  // namespace
}  // namespace lgsim::monitor
