// Tests for the optical attenuation -> BER -> frame loss model (Fig. 1).
#include <gtest/gtest.h>

#include <cmath>

#include "phy/optical.h"

namespace lgsim::phy {
namespace {

TEST(Fec, Parameters) {
  EXPECT_EQ(fec_params(FecCode::kNone).n, 0);
  const auto kr4 = fec_params(FecCode::kRs528_514);
  EXPECT_EQ(kr4.n, 528);
  EXPECT_EQ(kr4.k, 514);
  EXPECT_EQ(kr4.t, 7);
  const auto kp4 = fec_params(FecCode::kRs544_514);
  EXPECT_EQ(kp4.n, 544);
  EXPECT_EQ(kp4.t, 15);
}

TEST(RawBer, DecreasesWithQ) {
  EXPECT_GT(raw_ber(Modulation::kNrz, 3.0), raw_ber(Modulation::kNrz, 5.0));
  EXPECT_GT(raw_ber(Modulation::kNrz, 5.0), raw_ber(Modulation::kNrz, 7.0));
}

TEST(RawBer, Pam4NeedsHigherQ) {
  // Same Q: PAM4 is much worse (one-third eye opening).
  EXPECT_GT(raw_ber(Modulation::kPam4, 7.0), raw_ber(Modulation::kNrz, 7.0) * 100);
}

TEST(RawBer, KnownValue) {
  // Q = 7.034 is the classic BER 1e-12 point for NRZ.
  EXPECT_NEAR(std::log10(raw_ber(Modulation::kNrz, 7.034)), -12.0, 0.1);
}

TEST(CodewordError, ZeroAtZeroBer) {
  EXPECT_DOUBLE_EQ(codeword_error_prob(FecCode::kRs528_514, 0.0), 0.0);
}

TEST(CodewordError, MonotoneInBer) {
  double prev = 0.0;
  for (double ber = 1e-8; ber < 2e-2; ber *= 10) {
    const double e = codeword_error_prob(FecCode::kRs528_514, ber);
    EXPECT_GE(e, prev);
    prev = e;
  }
  // At BER 1e-2 the symbol error rate is ~10%, i.e. ~50 expected symbol
  // errors per 528-symbol codeword against a correction budget of 7: the
  // codeword almost surely fails.
  EXPECT_GT(prev, 0.9);
}

TEST(CodewordError, Kp4StrongerThanKr4) {
  const double ber = 3e-5;
  EXPECT_LT(codeword_error_prob(FecCode::kRs544_514, ber),
            codeword_error_prob(FecCode::kRs528_514, ber));
}

TEST(Transceiver, CalibrationHitsThreshold) {
  const auto t = make_25g_sr_nofec();
  const double loss = t.frame_loss_rate(12.5, 1518);
  EXPECT_NEAR(std::log10(loss), -8.0, 0.05);
}

TEST(Transceiver, CalibrationHitsThresholdWithFec) {
  const auto t = make_50g_sr();
  const double loss = t.frame_loss_rate(10.5, 1518);
  EXPECT_NEAR(std::log10(loss), -8.0, 0.05);
}

TEST(Transceiver, LossMonotoneInAttenuation) {
  for (const auto& t : {make_10g_sr(), make_25g_sr_nofec(), make_25g_sr_fec(),
                        make_50g_sr()}) {
    double prev = 0.0;
    for (double a = 9.0; a <= 18.0; a += 0.5) {
      const double loss = t.frame_loss_rate(a, 1518);
      EXPECT_GE(loss, prev) << t.name << " at " << a << " dB";
      EXPECT_GE(loss, 0.0);
      EXPECT_LE(loss, 1.0);
      prev = loss;
    }
  }
}

// The ordering observed in Fig. 1: the attenuation at which each transceiver
// crosses the healthy-link loss rate (1e-8) increases in the order
// 50G(FEC) < 25G < 25G(FEC) < 10G — denser modulation and higher baudrate
// lose margin; FEC buys some of it back.
TEST(Transceiver, Fig1ThresholdOrdering) {
  auto threshold = [](const Transceiver& t) {
    for (double a = 5.0; a <= 25.0; a += 0.01)
      if (t.frame_loss_rate(a, 1518) >= 1e-8) return a;
    return 25.0;
  };
  const double a50 = threshold(make_50g_sr());
  const double a25 = threshold(make_25g_sr_nofec());
  const double a25f = threshold(make_25g_sr_fec());
  const double a10 = threshold(make_10g_sr());
  EXPECT_LT(a50, a25);
  EXPECT_LT(a25, a25f);
  EXPECT_LT(a25f, a10);
}

// FEC makes the cliff steeper: the attenuation span between loss=1e-8 and
// loss=0.5 is narrower with FEC than without for the same 25G optics.
TEST(Transceiver, FecSteepensCliff) {
  const auto nofec = make_25g_sr_nofec();
  const auto fec = make_25g_sr_fec();
  auto span = [](const Transceiver& t) {
    double lo = 0, hi = 0;
    for (double a = 9.0; a <= 25.0; a += 0.01) {
      const double l = t.frame_loss_rate(a, 1518);
      if (lo == 0 && l >= 1e-8) lo = a;
      if (hi == 0 && l >= 0.5) {
        hi = a;
        break;
      }
    }
    return hi - lo;
  };
  EXPECT_LT(span(fec), span(nofec));
}

// Footnote 2: frame loss 1e-8 for MTU frames corresponds to BER ~1e-12,
// the healthy-link criterion. Our model should agree near the threshold.
TEST(Transceiver, HealthyLinkBerAtThreshold) {
  const auto t = make_25g_sr_nofec();
  const double ber = t.ber_at(12.5);
  EXPECT_NEAR(std::log10(ber), -12.0, 0.2);
}

TEST(Transceiver, BiggerFramesLoseMore) {
  const auto t = make_25g_sr_nofec();
  EXPECT_GT(t.frame_loss_rate(13.0, 1518), t.frame_loss_rate(13.0, 64));
}

TEST(CalibrateQ0, RoundTrips) {
  const double q0 = calibrate_q0(Modulation::kNrz, FecCode::kNone, 15.0, 1e-6);
  Transceiver t{.name = "t", .modulation = Modulation::kNrz,
                .fec = FecCode::kNone, .q0 = q0};
  EXPECT_NEAR(std::log10(t.frame_loss_rate(15.0, 1518)), -6.0, 0.05);
}

}  // namespace
}  // namespace lgsim::phy
