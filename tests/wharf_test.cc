#include <gtest/gtest.h>

#include <memory>

#include "lg/config.h"
#include "net/loss_model.h"
#include "net/packet.h"
#include "net/protection.h"
#include "wharf/wharf.h"

namespace lgsim::wharf {
namespace {

TEST(WharfParams, CapacityFraction) {
  EXPECT_NEAR((WharfParams{25, 1}.capacity_fraction()), 25.0 / 26.0, 1e-12);
  EXPECT_NEAR((WharfParams{5, 1}.capacity_fraction()), 5.0 / 6.0, 1e-12);
}

TEST(WharfParams, SelectionMatchesTable3Shape) {
  // Light redundancy (~96% capacity) up to 1e-3, heavy (~83%) at 1e-2 —
  // matching Wharf's goodput of 9.13 and 7.91 Gb/s on a 10G link.
  EXPECT_NEAR(wharf_params_for(1e-5).capacity_fraction(), 0.9615, 1e-3);
  EXPECT_NEAR(wharf_params_for(1e-3).capacity_fraction(), 0.9615, 1e-3);
  EXPECT_NEAR(wharf_params_for(1e-2).capacity_fraction(), 0.8333, 1e-3);
}

TEST(WharfResidual, ZeroAtZeroLoss) {
  EXPECT_DOUBLE_EQ(wharf_residual_loss({25, 1}, 0.0), 0.0);
}

TEST(WharfResidual, QuadraticSuppressionForR1) {
  // With r = 1 parity the residual is ~ q^2 * (k+r-1): two losses must land
  // in one block.
  const double q = 1e-3;
  const double res = wharf_residual_loss(WharfParams{25, 1}, q);
  EXPECT_NEAR(res, q * (1.0 - std::pow(1.0 - q, 25)), res * 0.05);
  EXPECT_LT(res, q);      // always better than raw loss
  EXPECT_GT(res, q * q);  // but not a free lunch
}

TEST(WharfResidual, MoreParityHelps) {
  EXPECT_LT(wharf_residual_loss(WharfParams{24, 2}, 1e-3),
            wharf_residual_loss(WharfParams{25, 1}, 1e-3));
}

TEST(WharfLossModel, RecoversWithinBudgetLosesBeyond) {
  // Measure the empirical residual loss of the block model against the
  // analytic expression.
  const WharfParams params{5, 1};
  const double q = 0.02;
  WharfLossModel model(params, q, Rng(3));
  net::Packet p;
  p.kind = net::PktKind::kData;
  const int n = 2'000'000;
  int lost = 0;
  for (int i = 0; i < n; ++i)
    if (model.lose(0, p)) ++lost;
  const double measured = static_cast<double>(lost) / n;
  const double analytic = wharf_residual_loss(params, q);
  EXPECT_NEAR(measured, analytic, analytic * 0.15);
  EXPECT_GT(model.recovered_frames(), 0);
  EXPECT_GT(model.blocks(), n / (params.k + params.r));
}

TEST(WharfLossModel, NoLossPassesEverything) {
  WharfLossModel model(WharfParams{25, 1}, 0.0, Rng(1));
  net::Packet p;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(model.lose(0, p));
  EXPECT_EQ(model.unrecovered_frames(), 0);
}

// Differential pin for the ProtectionScheme port: WharfScheme::residual must
// reproduce the exact lose() decision sequence of the pre-port inline model
// (WharfLossModel constructed from a raw rate + Rng(5), as bench_tab3_wharf
// used to build it). Byte-identical Table 3 output depends on this.
TEST(WharfScheme, ResidualMatchesLegacyInlineModel) {
  for (double q : {1e-4, 1e-3, 1e-2}) {
    WharfLossModel legacy(wharf_params_for(q), q, Rng(5));

    WharfScheme scheme;
    net::LossSpec spec;
    spec.rate = q;
    spec.seed = 5;
    net::ResidualLoss ported = scheme.residual(spec);

    net::Packet p;
    for (int i = 0; i < 200'000; ++i)
      ASSERT_EQ(legacy.lose(0, p), ported.model->lose(0, p)) << "q=" << q
                                                             << " i=" << i;
  }
}

TEST(WharfScheme, PathKnobsTrackParamsForRate) {
  WharfScheme scheme;
  net::LossSpec spec;
  spec.rate = 1e-3;
  EXPECT_STREQ(scheme.name(), "wharf");
  EXPECT_DOUBLE_EQ(scheme.capacity_fraction(spec),
                   wharf_params_for(1e-3).capacity_fraction());
  spec.rate = 1e-2;
  EXPECT_DOUBLE_EQ(scheme.capacity_fraction(spec),
                   wharf_params_for(1e-2).capacity_fraction());
  EXPECT_EQ(scheme.added_latency(), 0);
  EXPECT_TRUE(scheme.preserves_order());
}

// Wharf wrapped around a bursty raw process: the block code recovers far
// less of a Gilbert-Elliott process than of i.i.d. loss at the same marginal
// rate — a whole burst lands inside one block and exceeds the parity budget.
TEST(WharfScheme, GilbertElliottBurstsBeatTheParityBudget) {
  const double q = 1e-2;
  auto count_losses = [&](std::unique_ptr<net::DrivableLoss> raw) {
    WharfLossModel model(wharf_params_for(q), std::move(raw));
    net::Packet p;
    int lost = 0;
    for (int i = 0; i < 500'000; ++i)
      if (model.lose(0, p)) ++lost;
    return lost;
  };
  const int iid = count_losses(std::make_unique<net::BernoulliLoss>(q, Rng(5)));
  const int bursty = count_losses(std::make_unique<net::GilbertElliottLoss>(
      net::GilbertElliottLoss::for_rate(q, 4.0), Rng(5)));
  EXPECT_GT(bursty, 2 * iid);
  EXPECT_GT(iid, 0);
}

// The Table 3 zero-loss column used to configure LG with a fake 1e-4 floor
// because actual_loss_rate doubled as "some rate, any rate". Pin the fact
// that makes the explicit 0 equivalent — and therefore the fix safe: Eq. 2
// sizes one reTx copy both for "no losses observed" and for any actual rate
// at or below the target.
TEST(LgSizing, ZeroLossNeedsNoFakeFloor) {
  EXPECT_EQ(lg::retx_copies(0.0, 1e-8), 1);
  EXPECT_EQ(lg::retx_copies(1e-4, 1e-8), 1);
}

}  // namespace
}  // namespace lgsim::wharf
