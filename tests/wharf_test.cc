#include <gtest/gtest.h>

#include "net/packet.h"
#include "wharf/wharf.h"

namespace lgsim::wharf {
namespace {

TEST(WharfParams, CapacityFraction) {
  EXPECT_NEAR((WharfParams{25, 1}.capacity_fraction()), 25.0 / 26.0, 1e-12);
  EXPECT_NEAR((WharfParams{5, 1}.capacity_fraction()), 5.0 / 6.0, 1e-12);
}

TEST(WharfParams, SelectionMatchesTable3Shape) {
  // Light redundancy (~96% capacity) up to 1e-3, heavy (~83%) at 1e-2 —
  // matching Wharf's goodput of 9.13 and 7.91 Gb/s on a 10G link.
  EXPECT_NEAR(wharf_params_for(1e-5).capacity_fraction(), 0.9615, 1e-3);
  EXPECT_NEAR(wharf_params_for(1e-3).capacity_fraction(), 0.9615, 1e-3);
  EXPECT_NEAR(wharf_params_for(1e-2).capacity_fraction(), 0.8333, 1e-3);
}

TEST(WharfResidual, ZeroAtZeroLoss) {
  EXPECT_DOUBLE_EQ(wharf_residual_loss({25, 1}, 0.0), 0.0);
}

TEST(WharfResidual, QuadraticSuppressionForR1) {
  // With r = 1 parity the residual is ~ q^2 * (k+r-1): two losses must land
  // in one block.
  const double q = 1e-3;
  const double res = wharf_residual_loss(WharfParams{25, 1}, q);
  EXPECT_NEAR(res, q * (1.0 - std::pow(1.0 - q, 25)), res * 0.05);
  EXPECT_LT(res, q);      // always better than raw loss
  EXPECT_GT(res, q * q);  // but not a free lunch
}

TEST(WharfResidual, MoreParityHelps) {
  EXPECT_LT(wharf_residual_loss(WharfParams{24, 2}, 1e-3),
            wharf_residual_loss(WharfParams{25, 1}, 1e-3));
}

TEST(WharfLossModel, RecoversWithinBudgetLosesBeyond) {
  // Measure the empirical residual loss of the block model against the
  // analytic expression.
  const WharfParams params{5, 1};
  const double q = 0.02;
  WharfLossModel model(params, q, Rng(3));
  net::Packet p;
  p.kind = net::PktKind::kData;
  const int n = 2'000'000;
  int lost = 0;
  for (int i = 0; i < n; ++i)
    if (model.lose(0, p)) ++lost;
  const double measured = static_cast<double>(lost) / n;
  const double analytic = wharf_residual_loss(params, q);
  EXPECT_NEAR(measured, analytic, analytic * 0.15);
  EXPECT_GT(model.recovered_frames(), 0);
  EXPECT_GT(model.blocks(), n / (params.k + params.r));
}

TEST(WharfLossModel, NoLossPassesEverything) {
  WharfLossModel model(WharfParams{25, 1}, 0.0, Rng(1));
  net::Packet p;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(model.lose(0, p));
  EXPECT_EQ(model.unrecovered_frames(), 0);
}

}  // namespace
}  // namespace lgsim::wharf
