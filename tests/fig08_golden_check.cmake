# Differential golden check for the event kernel, run as a ctest.
#
# Runs bench_fig08_stress at a fixed reduced scale with --trace and compares
# the SHA-256 of both its stdout rows and the Chrome-trace bytes against
# hashes recorded from the pre-overhaul kernel (std::function callbacks +
# std::priority_queue + lazy remembered-id cancellation). The trace embeds
# the sim.* event-loop counters, so this pins three things at once: the
# (time, sequence) execution order, the per-event trace stream, and the
# counter arithmetic (cancel_backlog / cancelled_skipped / peak_heap_depth).
# Any kernel change that reorders same-timestamp events or drifts a counter
# shows up as a hash mismatch here long before it corrupts a figure.
#
# Usage:
#   cmake -DBENCH=<bench_fig08_stress> -DJOBS=<n> -DWORKDIR=<dir>
#         -DSTDOUT_SHA=<sha256> -DTRACE_SHA=<sha256> -P fig08_golden_check.cmake

foreach(var BENCH JOBS WORKDIR STDOUT_SHA TRACE_SHA)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "fig08_golden_check: ${var} not set")
  endif()
endforeach()

set(ENV{LGSIM_BENCH_SCALE} 0.05)
set(ENV{LGSIM_BENCH_JOBS} ${JOBS})
set(stdout_file ${WORKDIR}/fig08_golden_j${JOBS}.stdout)
set(trace_file ${WORKDIR}/fig08_golden_j${JOBS}.trace.json)

execute_process(
    COMMAND ${BENCH} --trace=${trace_file}
    OUTPUT_FILE ${stdout_file}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig08_golden_check: ${BENCH} exited with ${rc}")
endif()

file(SHA256 ${stdout_file} stdout_sha)
file(SHA256 ${trace_file} trace_sha)

if(NOT stdout_sha STREQUAL STDOUT_SHA)
  message(FATAL_ERROR "fig08_golden_check (jobs=${JOBS}): stdout diverged from "
      "the pre-overhaul golden\n  expected ${STDOUT_SHA}\n  got      "
      "${stdout_sha}\n  kept: ${stdout_file}")
endif()
if(NOT trace_sha STREQUAL TRACE_SHA)
  message(FATAL_ERROR "fig08_golden_check (jobs=${JOBS}): trace bytes diverged "
      "from the pre-overhaul golden (event order or sim.* counters drifted)\n"
      "  expected ${TRACE_SHA}\n  got      ${trace_sha}\n  kept: ${trace_file}")
endif()
message(STATUS "fig08 golden (jobs=${JOBS}): stdout+trace byte-identical")
