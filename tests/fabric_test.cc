// Tests for the Facebook-fabric topology model and the CorrOpt capacity
// predicates (§2's link A / link B example, §4.8 metrics), plus the
// randomized differential pin of the incremental capacity engine against the
// scan-based NaiveFabricMetrics reference (DESIGN.md §11).
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "fabric/naive_metrics.h"
#include "fabric/topology.h"
#include "sim/random.h"

namespace lgsim::fabric {
namespace {

using Kind = LinkTransition::Kind;

TopologyConfig small() {
  return TopologyConfig{.pods = 2, .tors_per_pod = 48, .fabrics_per_pod = 4,
                        .spines_per_plane = 48};
}

void set_down(FabricTopology& t, std::int64_t id) {
  t.apply({Kind::kDisable, id});
}

TEST(Fabric, LinkCountsMatchGeometry) {
  FabricTopology t(small());
  // Per pod: 48*4 ToR-fabric + 4*48 fabric-spine = 384.
  EXPECT_EQ(t.n_links(), 2 * 384);
  // The paper's scale: ~260 pods for ~100K links.
  FabricTopology big({.pods = 260, .tors_per_pod = 48, .fabrics_per_pod = 4,
                      .spines_per_plane = 48});
  EXPECT_NEAR(static_cast<double>(big.n_links()), 100'000, 1'000);
}

TEST(Fabric, ConfigValidationRejectsBadDimensions) {
  // fabrics_per_pod is capped at kMaxFabricsPerPod (the fast-checker scratch
  // array bound in NaiveFabricMetrics); all dimensions must be positive.
  EXPECT_THROW(FabricTopology({.pods = 1, .tors_per_pod = 1,
                               .fabrics_per_pod = 65, .spines_per_plane = 1}),
               std::invalid_argument);
  EXPECT_THROW(FabricTopology({.pods = 0, .tors_per_pod = 48,
                               .fabrics_per_pod = 4, .spines_per_plane = 48}),
               std::invalid_argument);
  EXPECT_THROW(FabricTopology({.pods = 1, .tors_per_pod = -3,
                               .fabrics_per_pod = 4, .spines_per_plane = 48}),
               std::invalid_argument);
  EXPECT_THROW(FabricTopology({.pods = 1, .tors_per_pod = 48,
                               .fabrics_per_pod = 0, .spines_per_plane = 48}),
               std::invalid_argument);
  EXPECT_THROW(FabricTopology({.pods = 1, .tors_per_pod = 48,
                               .fabrics_per_pod = 4, .spines_per_plane = 0}),
               std::invalid_argument);
  // The boundary itself is accepted.
  EXPECT_NO_THROW(FabricTopology({.pods = 1, .tors_per_pod = 2,
                                  .fabrics_per_pod = 64,
                                  .spines_per_plane = 2}));
}

TEST(Fabric, FullTopologyHasMaxPaths) {
  FabricTopology t(small());
  EXPECT_EQ(t.max_paths_per_tor(), 192);
  EXPECT_EQ(t.paths_per_tor(0, 0), 192);
  EXPECT_DOUBLE_EQ(t.least_paths_per_tor_frac(), 1.0);
  EXPECT_DOUBLE_EQ(t.least_capacity_per_pod_frac(), 1.0);
}

TEST(Fabric, TorFabricLinkDownCostsOneFabricWorth) {
  FabricTopology t(small());
  set_down(t, t.tor_fabric_link(0, 7, 2));
  // ToR 7 of pod 0 loses the 48 paths through fabric 2.
  EXPECT_EQ(t.paths_per_tor(0, 7), 144);
  EXPECT_EQ(t.paths_per_tor(0, 8), 192);  // others unaffected
  EXPECT_DOUBLE_EQ(t.least_paths_per_tor_frac(), 144.0 / 192.0);
}

TEST(Fabric, FabricSpineLinkDownCostsOnePathPerTor) {
  FabricTopology t(small());
  set_down(t, t.fabric_spine_link(1, 3, 17));
  for (int tor = 0; tor < 48; ++tor) EXPECT_EQ(t.paths_per_tor(1, tor), 191);
  EXPECT_EQ(t.paths_per_tor(0, 0), 192);
}

// The paper's §2 example: with a 75% constraint, the first ToR-fabric link
// (A) can be disabled, but a second link (B) on the same ToR cannot.
TEST(Fabric, Section2LinkAThenLinkBExample) {
  FabricTopology t(small());
  const auto link_a = t.tor_fabric_link(0, 0, 0);
  const auto link_b = t.tor_fabric_link(0, 0, 1);
  EXPECT_TRUE(t.can_disable(link_a, 0.75));
  set_down(t, link_a);
  // ToR 0 now has 144/192 = 75%; disabling B would drop it to 50%.
  EXPECT_FALSE(t.can_disable(link_b, 0.75));
  EXPECT_TRUE(t.can_disable(link_b, 0.50));
}

TEST(Fabric, CanDisableFabricSpineRespectsPodWideImpact) {
  FabricTopology t(small());
  // Take down many spine links of fabric 0 in pod 0: each costs every ToR
  // one path.
  for (int s = 0; s < 40; ++s) set_down(t, t.fabric_spine_link(0, 0, s));
  // 152/192 = 79%: one more is fine at 75%...
  EXPECT_TRUE(t.can_disable(t.fabric_spine_link(0, 0, 40), 0.75));
  for (int s = 40; s < 48; ++s) set_down(t, t.fabric_spine_link(0, 0, s));
  // All fabric-0 spine links down: 144/192 = 75%. Any ToR-fabric link to
  // another fabric now costs 48 paths -> 96/192 = 50%.
  EXPECT_FALSE(t.can_disable(t.tor_fabric_link(0, 5, 1), 0.75));
}

TEST(Fabric, LeastCapacityReflectsLgSpeedReduction) {
  FabricTopology t(small());
  const auto id = t.tor_fabric_link(0, 0, 0);
  t.apply({Kind::kCorrupt, id, 1e-3});
  t.apply({Kind::kEnableLg, id, 0.0, 0.92});
  // One of 192 ToR-fabric links in the pod at 92%: tiny capacity dip.
  const double expect = (191.0 + 0.92) / 192.0;
  EXPECT_NEAR(t.least_capacity_per_pod_frac(), expect, 1e-9);
}

TEST(Fabric, TotalPenaltyWithAndWithoutLg) {
  FabricTopology t(small());
  t.apply({Kind::kCorrupt, 5, 1e-3});
  t.apply({Kind::kCorrupt, 400, 1e-4});
  EXPECT_NEAR(t.total_penalty(1e-8), 1.1e-3, 1e-9);
  // LinkGuardian on the worse link: its contribution collapses to 1e-9
  // (two retx copies).
  t.apply({Kind::kEnableLg, 5, 0.0, 0.92});
  EXPECT_NEAR(t.total_penalty(1e-8), 1e-4 + 1e-9, 1e-9);
}

TEST(Fabric, DisabledLinksDoNotCountTowardPenalty) {
  FabricTopology t(small());
  t.apply({Kind::kCorrupt, 5, 1e-3});
  set_down(t, 5);
  EXPECT_DOUBLE_EQ(t.total_penalty(1e-8), 0.0);
}

TEST(Fabric, MaxLgPerSwitchCountsSenders) {
  FabricTopology t(small());
  // Two LG links transmitting from the same fabric switch (pod 0, fabric 1).
  t.apply({Kind::kEnableLg, t.fabric_spine_link(0, 1, 3), 0.0, 0.999});
  t.apply({Kind::kEnableLg, t.fabric_spine_link(0, 1, 9), 0.0, 0.999});
  t.apply({Kind::kEnableLg, t.fabric_spine_link(0, 2, 1), 0.0, 0.999});
  EXPECT_EQ(t.max_lg_links_per_switch(), 2);
}

TEST(Fabric, RepairRestoresFreshLink) {
  FabricTopology t(small());
  const auto id = t.tor_fabric_link(0, 3, 1);
  t.apply({Kind::kCorrupt, id, 1e-3});
  t.apply({Kind::kEnableLg, id, 0.0, 0.92});
  set_down(t, id);
  EXPECT_EQ(t.disabled_links(), 1);
  EXPECT_EQ(t.corrupting_up_links(), 0);
  EXPECT_EQ(t.lg_up_links(), 0);
  t.apply({Kind::kRepair, id});
  EXPECT_EQ(t.disabled_links(), 0);
  EXPECT_FALSE(t.link(id).corrupting);
  EXPECT_FALSE(t.link(id).lg_enabled);
  EXPECT_DOUBLE_EQ(t.link(id).effective_speed, 1.0);
  EXPECT_EQ(t.paths_per_tor(0, 3), 192);
  EXPECT_DOUBLE_EQ(t.least_capacity_per_pod_frac(), 1.0);
}

// ---------------------------------------------------------------------------
// Randomized differential: every maintained aggregate must stay bit-identical
// to the scan-based NaiveFabricMetrics reference across long random
// up/down/LG/speed transition sequences on asymmetric topologies.

bool bits_equal(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

void check_against_naive(const FabricTopology& t, Rng& rng, int step) {
  const auto& cfg = t.config();
  ASSERT_TRUE(bits_equal(t.least_paths_per_tor_frac(),
                         NaiveFabricMetrics::least_paths_per_tor_frac(t)))
      << "least_paths diverged at step " << step;
  ASSERT_TRUE(bits_equal(t.least_capacity_per_pod_frac(),
                         NaiveFabricMetrics::least_capacity_per_pod_frac(t)))
      << "least_capacity diverged at step " << step;
  for (const double target : {1e-8, 1e-6}) {
    ASSERT_TRUE(bits_equal(t.total_penalty(target),
                           NaiveFabricMetrics::total_penalty(t, target)))
        << "total_penalty diverged at step " << step;
  }
  ASSERT_EQ(t.max_lg_links_per_switch(),
            NaiveFabricMetrics::max_lg_links_per_switch(t))
      << "max_lg diverged at step " << step;
  // Spot-check the O(1) counters and predicates on random coordinates.
  for (int i = 0; i < 4; ++i) {
    const auto p = static_cast<std::int32_t>(rng.uniform_int(cfg.pods));
    const auto f = static_cast<std::int32_t>(rng.uniform_int(cfg.fabrics_per_pod));
    const auto tor = static_cast<std::int32_t>(rng.uniform_int(cfg.tors_per_pod));
    ASSERT_EQ(t.up_spine_links(p, f), NaiveFabricMetrics::up_spine_links(t, p, f));
    ASSERT_EQ(t.paths_per_tor(p, tor), NaiveFabricMetrics::paths_per_tor(t, p, tor));
    const auto id = static_cast<std::int64_t>(rng.uniform_int(
        static_cast<std::uint64_t>(t.n_links())));
    const double constraint = rng.uniform(0.0, 1.0);
    ASSERT_EQ(t.can_disable(id, constraint),
              NaiveFabricMetrics::can_disable(t, id, constraint))
        << "can_disable diverged at step " << step;
  }
}

void run_differential(const TopologyConfig& cfg, std::uint64_t seed,
                      int steps, int check_every) {
  FabricTopology t(cfg);
  Rng rng(seed);
  std::int64_t up_count = t.n_links();
  for (int step = 0; step < steps; ++step) {
    const auto id = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(t.n_links())));
    const Link& l = t.link(id);
    const double roll = rng.uniform();
    if (!l.up) {
      t.apply({Kind::kRepair, id});
      ++up_count;
    } else if (!l.corrupting && roll < 0.5) {
      // Log-uniform loss in [1e-7, 1e-1].
      const double loss = std::pow(10.0, rng.uniform(-7.0, -1.0));
      t.apply({Kind::kCorrupt, id, loss});
    } else if (roll < 0.7 && !l.lg_enabled) {
      const double speed = 0.85 + 0.15 * rng.uniform();
      t.apply({Kind::kEnableLg, id, 0.0, speed});
    } else if (roll < 0.8 && l.lg_enabled) {
      t.apply({Kind::kDisableLg, id});
    } else if (up_count > t.n_links() / 2) {
      // Keep at least half the fabric up so the topology stays interesting.
      t.apply({Kind::kDisable, id});
      --up_count;
    }
    if (step % check_every == check_every - 1 || step == steps - 1) {
      check_against_naive(t, rng, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(FabricDifferential, AsymmetricSmallTopology) {
  // Odd dimensions shake out any row/column indexing confusion.
  run_differential({.pods = 3, .tors_per_pod = 7, .fabrics_per_pod = 5,
                    .spines_per_plane = 9},
                   1234, 10'000, 1);
}

TEST(FabricDifferential, SinglePodSingleFabric) {
  run_differential({.pods = 1, .tors_per_pod = 3, .fabrics_per_pod = 1,
                    .spines_per_plane = 4},
                   77, 5'000, 1);
}

TEST(FabricDifferential, PaperShapedSlice) {
  // Paper-shaped pods (48 ToRs, 4 fabrics, 48 spines); checks are O(links),
  // so verify on a coarser cadence.
  run_differential({.pods = 4, .tors_per_pod = 48, .fabrics_per_pod = 4,
                    .spines_per_plane = 48},
                   991, 10'000, 97);
}

}  // namespace
}  // namespace lgsim::fabric
