// Tests for the Facebook-fabric topology model and the CorrOpt capacity
// predicates (§2's link A / link B example, §4.8 metrics).
#include <gtest/gtest.h>

#include "fabric/topology.h"

namespace lgsim::fabric {
namespace {

TopologyConfig small() {
  return TopologyConfig{.pods = 2, .tors_per_pod = 48, .fabrics_per_pod = 4,
                        .spines_per_plane = 48};
}

TEST(Fabric, LinkCountsMatchGeometry) {
  FabricTopology t(small());
  // Per pod: 48*4 ToR-fabric + 4*48 fabric-spine = 384.
  EXPECT_EQ(t.n_links(), 2 * 384);
  // The paper's scale: ~260 pods for ~100K links.
  FabricTopology big({.pods = 260, .tors_per_pod = 48, .fabrics_per_pod = 4,
                      .spines_per_plane = 48});
  EXPECT_NEAR(static_cast<double>(big.n_links()), 100'000, 1'000);
}

TEST(Fabric, FullTopologyHasMaxPaths) {
  FabricTopology t(small());
  EXPECT_EQ(t.max_paths_per_tor(), 192);
  EXPECT_EQ(t.paths_per_tor(0, 0), 192);
  EXPECT_DOUBLE_EQ(t.least_paths_per_tor_frac(), 1.0);
  EXPECT_DOUBLE_EQ(t.least_capacity_per_pod_frac(), 1.0);
}

TEST(Fabric, TorFabricLinkDownCostsOneFabricWorth) {
  FabricTopology t(small());
  t.link(t.tor_fabric_link(0, 7, 2)).up = false;
  // ToR 7 of pod 0 loses the 48 paths through fabric 2.
  EXPECT_EQ(t.paths_per_tor(0, 7), 144);
  EXPECT_EQ(t.paths_per_tor(0, 8), 192);  // others unaffected
  EXPECT_DOUBLE_EQ(t.least_paths_per_tor_frac(), 144.0 / 192.0);
}

TEST(Fabric, FabricSpineLinkDownCostsOnePathPerTor) {
  FabricTopology t(small());
  t.link(t.fabric_spine_link(1, 3, 17)).up = false;
  for (int tor = 0; tor < 48; ++tor) EXPECT_EQ(t.paths_per_tor(1, tor), 191);
  EXPECT_EQ(t.paths_per_tor(0, 0), 192);
}

// The paper's §2 example: with a 75% constraint, the first ToR-fabric link
// (A) can be disabled, but a second link (B) on the same ToR cannot.
TEST(Fabric, Section2LinkAThenLinkBExample) {
  FabricTopology t(small());
  const auto link_a = t.tor_fabric_link(0, 0, 0);
  const auto link_b = t.tor_fabric_link(0, 0, 1);
  EXPECT_TRUE(t.can_disable(link_a, 0.75));
  t.link(link_a).up = false;
  // ToR 0 now has 144/192 = 75%; disabling B would drop it to 50%.
  EXPECT_FALSE(t.can_disable(link_b, 0.75));
  EXPECT_TRUE(t.can_disable(link_b, 0.50));
}

TEST(Fabric, CanDisableFabricSpineRespectsPodWideImpact) {
  FabricTopology t(small());
  // Take down many spine links of fabric 0 in pod 0: each costs every ToR
  // one path.
  for (int s = 0; s < 40; ++s) t.link(t.fabric_spine_link(0, 0, s)).up = false;
  // 152/192 = 79%: one more is fine at 75%...
  EXPECT_TRUE(t.can_disable(t.fabric_spine_link(0, 0, 40), 0.75));
  for (int s = 40; s < 48; ++s) t.link(t.fabric_spine_link(0, 0, s)).up = false;
  // All fabric-0 spine links down: 144/192 = 75%. Any ToR-fabric link to
  // another fabric now costs 48 paths -> 96/192 = 50%.
  EXPECT_FALSE(t.can_disable(t.tor_fabric_link(0, 5, 1), 0.75));
}

TEST(Fabric, LeastCapacityReflectsLgSpeedReduction) {
  FabricTopology t(small());
  auto& l = t.link(t.tor_fabric_link(0, 0, 0));
  l.corrupting = true;
  l.lg_enabled = true;
  l.effective_speed = 0.92;
  // One of 192 ToR-fabric links in the pod at 92%: tiny capacity dip.
  const double expect = (191.0 + 0.92) / 192.0;
  EXPECT_NEAR(t.least_capacity_per_pod_frac(), expect, 1e-9);
}

TEST(Fabric, TotalPenaltyWithAndWithoutLg) {
  FabricTopology t(small());
  auto& a = t.link(5);
  a.corrupting = true;
  a.loss_rate = 1e-3;
  auto& b = t.link(400);
  b.corrupting = true;
  b.loss_rate = 1e-4;
  EXPECT_NEAR(t.total_penalty(1e-8), 1.1e-3, 1e-9);
  // LinkGuardian on the worse link: its contribution collapses to 1e-9
  // (two retx copies).
  a.lg_enabled = true;
  EXPECT_NEAR(t.total_penalty(1e-8), 1e-4 + 1e-9, 1e-9);
}

TEST(Fabric, DisabledLinksDoNotCountTowardPenalty) {
  FabricTopology t(small());
  auto& a = t.link(5);
  a.corrupting = true;
  a.loss_rate = 1e-3;
  a.up = false;
  EXPECT_DOUBLE_EQ(t.total_penalty(1e-8), 0.0);
}

TEST(Fabric, MaxLgPerSwitchCountsSenders) {
  FabricTopology t(small());
  // Two LG links transmitting from the same fabric switch (pod 0, fabric 1).
  t.link(t.fabric_spine_link(0, 1, 3)).lg_enabled = true;
  t.link(t.fabric_spine_link(0, 1, 9)).lg_enabled = true;
  t.link(t.fabric_spine_link(0, 2, 1)).lg_enabled = true;
  EXPECT_EQ(t.max_lg_links_per_switch(), 2);
}

}  // namespace
}  // namespace lgsim::fabric
