// Tests for the CorrOpt trace generator and deployment simulation (§4.8).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "corropt/corropt.h"

namespace lgsim::corropt {
namespace {

TEST(Table1, BucketsSumToOne) {
  double sum = 0.0;
  for (const auto& b : table1_buckets()) sum += b.fraction;
  // The paper's Table 1 percentages sum to 99.99% (rounding).
  EXPECT_NEAR(sum, 1.0, 2e-4);
}

TEST(Table1, SamplerMatchesBucketFractions) {
  Rng rng(13);
  const int n = 200'000;
  int bucket_counts[4] = {};
  for (int i = 0; i < n; ++i) {
    const double r = sample_loss_rate(rng);
    if (r < 1e-5) ++bucket_counts[0];
    else if (r < 1e-4) ++bucket_counts[1];
    else if (r < 1e-3) ++bucket_counts[2];
    else ++bucket_counts[3];
  }
  const auto& buckets = table1_buckets();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(bucket_counts[i]) / n, buckets[i].fraction,
                0.01)
        << "bucket " << i;
  }
}

TEST(Table1, NormalizationLeavesNoMassOnHardCap) {
  // The Table 1 fractions sum to 0.9999; before normalization ~1e-4 of all
  // draws fell through every bucket and returned exactly the 10% hard cap.
  // With the draw normalized by the fraction total, a cap return requires
  // floating-point rounding on the final subtraction — out of 500K draws we
  // tolerate at most a couple, where the old code expected ~50.
  Rng rng(4242);
  const int n = 500'000;
  int exactly_cap = 0;
  for (int i = 0; i < n; ++i) {
    if (sample_loss_rate(rng) == 0.1) ++exactly_cap;
  }
  EXPECT_LE(exactly_cap, 2);
}

TEST(TraceGen, EventRateMatchesMttf) {
  Rng rng(17);
  const std::int64_t links = 10'000;
  const double horizon = 8'766;  // one year in hours
  const auto trace = generate_trace(links, horizon, 10'000, rng);
  // Expected events ~ links * horizon / MTTF (renewal process).
  const double expected = links * horizon / 10'000;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, expected * 0.1);
  // Sorted by time and within the horizon.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time_hours, trace[i].time_hours);
  }
  EXPECT_GE(trace.front().time_hours, 0.0);
  EXPECT_LE(trace.back().time_hours, horizon);
}

TEST(TraceGen, PerLinkStreamsAreIndependentOfLinkCount) {
  // Each link's failure/loss sequence is a pure function of (base seed, link
  // id): adding more links to the topology must not perturb the events of the
  // links that were already there. This is what lets CorruptionStream draw
  // events lazily in pop order without replaying a global RNG.
  Rng rng_small(21), rng_big(21);
  const double horizon = 20'000, mttf = 1'000;
  const auto small = generate_trace(10, horizon, mttf, rng_small);
  const auto big = generate_trace(100, horizon, mttf, rng_big);
  std::vector<CorruptionEvent> filtered;
  for (const auto& ev : big) {
    if (ev.link < 10) filtered.push_back(ev);
  }
  ASSERT_EQ(filtered.size(), small.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].link, filtered[i].link);
    EXPECT_DOUBLE_EQ(small[i].time_hours, filtered[i].time_hours);
    EXPECT_DOUBLE_EQ(small[i].loss_rate, filtered[i].loss_rate);
  }
}

TEST(TraceGen, StreamMatchesMaterializedTrace) {
  // Draining a stream by hand yields exactly what generate_trace returns,
  // and next_time_hours() always previews the popped event's time.
  Rng rng_a(33), rng_b(33);
  const auto trace = generate_trace(50, 5'000, 800, rng_a);
  CorruptionStream stream(50, 5'000, 800, rng_b);
  for (const auto& expect : trace) {
    ASSERT_FALSE(stream.done());
    EXPECT_DOUBLE_EQ(stream.next_time_hours(), expect.time_hours);
    const auto got = stream.pop();
    EXPECT_DOUBLE_EQ(got.time_hours, expect.time_hours);
    EXPECT_EQ(got.link, expect.link);
    EXPECT_DOUBLE_EQ(got.loss_rate, expect.loss_rate);
  }
  EXPECT_TRUE(stream.done());
}

TEST(LgEffectiveSpeed, MatchesFig8Shape) {
  EXPECT_GT(lg_effective_speed(1e-5), 0.99);
  EXPECT_NEAR(lg_effective_speed(1e-3), 0.92, 0.01);
  EXPECT_GT(lg_effective_speed(1e-5), lg_effective_speed(1e-3));
}

DeploymentConfig small_cfg(bool lg) {
  DeploymentConfig c;
  c.topo = {.pods = 4, .tors_per_pod = 48, .fabrics_per_pod = 4,
            .spines_per_plane = 48};
  c.duration_hours = 24 * 60;  // two months
  c.mttf_hours = 1'000;        // accelerated failures for test coverage
  c.capacity_constraint = 0.75;
  c.use_linkguardian = lg;
  c.sample_period_hours = 2.0;
  c.seed = 99;
  return c;
}

TEST(Deployment, VanillaCorrOptLeavesResidualPenaltyUnderConstraint) {
  const auto res = run_deployment(small_cfg(false));
  EXPECT_GT(res.corruption_events, 100);
  EXPECT_GT(res.disabled_immediately, 0);
  ASSERT_FALSE(res.samples.empty());
  // The capacity constraint is honoured throughout.
  for (const auto& s : res.samples) {
    EXPECT_GE(s.least_paths_frac, 0.75 - 1e-9);
  }
}

TEST(Deployment, LinkGuardianReducesPenaltyByOrders) {
  const auto vanilla = run_deployment(small_cfg(false));
  const auto with_lg = run_deployment(small_cfg(true));
  // Compare mean total penalty across samples (same trace seed).
  auto mean_penalty = [](const DeploymentResult& r) {
    double s = 0.0;
    for (const auto& x : r.samples) s += x.total_penalty;
    return s / static_cast<double>(r.samples.size());
  };
  const double pv = mean_penalty(vanilla);
  const double pl = mean_penalty(with_lg);
  EXPECT_GT(pv, 0.0);
  // Whenever links cannot be disabled, LG cuts their contribution by ~4+
  // orders of magnitude; the mean must drop by at least 100x.
  EXPECT_LT(pl, pv / 100.0);
}

TEST(Deployment, LgCapacityCostIsSmall) {
  const auto with_lg = run_deployment(small_cfg(true));
  double worst = 1.0;
  for (const auto& s : with_lg.samples) worst = std::min(s.least_capacity_frac, worst);
  // Under 10x-accelerated failures the capacity dip is larger than the
  // paper's realistic regime (<0.25%), but must stay modest; the paper-scale
  // run lives in bench_fig16_deployment_cdf.
  EXPECT_GT(worst, 0.75);
}

TEST(Deployment, OptimizerDisablesWhenCapacityReturns) {
  const auto res = run_deployment(small_cfg(false));
  // With accelerated failures under a 75% constraint, some links could not
  // be disabled immediately; the optimizer should pick up at least part of
  // the backlog when repairs return.
  EXPECT_GT(res.kept_active, 0);
  EXPECT_GT(res.disabled_by_optimizer, 0);
}

TEST(Deployment, MaxLgPerSwitchStaysSmall) {
  const auto res = run_deployment(small_cfg(true));
  // §5: the paper's realistic regime sees at most 2-4 concurrently
  // LG-enabled links per switch pipe (checked at paper scale in the bench).
  // The 10x-accelerated test regime accumulates more but is bounded by the
  // port count.
  EXPECT_GE(res.max_lg_per_switch, 1);
  EXPECT_LE(res.max_lg_per_switch, 48);
}

bool bits_equal(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

void expect_bit_identical(const DeploymentResult& a, const DeploymentResult& b) {
  EXPECT_EQ(a.corruption_events, b.corruption_events);
  EXPECT_EQ(a.disabled_immediately, b.disabled_immediately);
  EXPECT_EQ(a.kept_active, b.kept_active);
  EXPECT_EQ(a.disabled_by_optimizer, b.disabled_by_optimizer);
  EXPECT_EQ(a.max_lg_per_switch, b.max_lg_per_switch);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& sa = a.samples[i];
    const auto& sb = b.samples[i];
    ASSERT_TRUE(bits_equal(sa.time_hours, sb.time_hours)) << "sample " << i;
    ASSERT_TRUE(bits_equal(sa.total_penalty, sb.total_penalty))
        << "sample " << i;
    ASSERT_TRUE(bits_equal(sa.least_paths_frac, sb.least_paths_frac))
        << "sample " << i;
    ASSERT_TRUE(bits_equal(sa.least_capacity_frac, sb.least_capacity_frac))
        << "sample " << i;
    ASSERT_EQ(sa.corrupting_links, sb.corrupting_links) << "sample " << i;
    ASSERT_EQ(sa.disabled_links, sb.disabled_links) << "sample " << i;
    ASSERT_EQ(sa.lg_links, sb.lg_links) << "sample " << i;
  }
}

// The tentpole's correctness pin: the incremental capacity engine and the
// scan-based NaiveFabricMetrics reference must produce bit-identical
// DeploymentResults — same events, same RNG streams, only the per-sample
// metric computation differs.
TEST(DeploymentDifferential, IncrementalMatchesNaiveBitwise) {
  for (const bool lg : {false, true}) {
    auto cfg = small_cfg(lg);
    cfg.naive_metrics = false;
    const auto incremental = run_deployment(cfg);
    cfg.naive_metrics = true;
    const auto naive = run_deployment(cfg);
    expect_bit_identical(incremental, naive);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "diverged with use_linkguardian=" << lg;
      return;
    }
  }
}

// FNV-1a over the per-field bytes of every sample (field-wise to avoid
// struct padding), used by the golden pin below.
std::uint64_t samples_digest(const DeploymentResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& s : r.samples) {
    mix(&s.time_hours, sizeof s.time_hours);
    mix(&s.total_penalty, sizeof s.total_penalty);
    mix(&s.least_paths_frac, sizeof s.least_paths_frac);
    mix(&s.least_capacity_frac, sizeof s.least_capacity_frac);
    mix(&s.corrupting_links, sizeof s.corrupting_links);
    mix(&s.disabled_links, sizeof s.disabled_links);
    mix(&s.lg_links, sizeof s.lg_links);
  }
  return h;
}

// Golden pin of run_deployment at the 16-pod reference scale (the scale
// BENCH_deploy.json's speedup claim is measured at). Any change to the event
// stream, RNG draw order, optimizer order, or metric arithmetic shows up
// here. The values were captured from this implementation; both metric
// engines must reproduce them (the digest covers every sample bit).
TEST(DeploymentGolden, SixteenPodReferenceRun) {
  DeploymentConfig cfg;
  cfg.topo = {.pods = 16, .tors_per_pod = 48, .fabrics_per_pod = 4,
              .spines_per_plane = 48};
  cfg.duration_hours = 24 * 90;
  cfg.mttf_hours = 2'000;
  cfg.use_linkguardian = true;
  cfg.sample_period_hours = 6.0;
  cfg.seed = 12345;
  for (const bool naive : {false, true}) {
    cfg.naive_metrics = naive;
    const auto res = run_deployment(cfg);
    EXPECT_EQ(res.corruption_events, 6611) << "naive=" << naive;
    EXPECT_EQ(res.disabled_immediately, 2627) << "naive=" << naive;
    EXPECT_EQ(res.kept_active, 3387) << "naive=" << naive;
    EXPECT_EQ(res.disabled_by_optimizer, 2809) << "naive=" << naive;
    EXPECT_EQ(res.max_lg_per_switch, 26) << "naive=" << naive;
    ASSERT_EQ(res.samples.size(), 359u) << "naive=" << naive;
    EXPECT_EQ(samples_digest(res), 4305412010910275142ULL) << "naive=" << naive;
  }
}

}  // namespace
}  // namespace lgsim::corropt
