// Tests for the CorrOpt trace generator and deployment simulation (§4.8).
#include <gtest/gtest.h>

#include <cmath>

#include "corropt/corropt.h"

namespace lgsim::corropt {
namespace {

TEST(Table1, BucketsSumToOne) {
  double sum = 0.0;
  for (const auto& b : table1_buckets()) sum += b.fraction;
  // The paper's Table 1 percentages sum to 99.99% (rounding).
  EXPECT_NEAR(sum, 1.0, 2e-4);
}

TEST(Table1, SamplerMatchesBucketFractions) {
  Rng rng(13);
  const int n = 200'000;
  int bucket_counts[4] = {};
  for (int i = 0; i < n; ++i) {
    const double r = sample_loss_rate(rng);
    if (r < 1e-5) ++bucket_counts[0];
    else if (r < 1e-4) ++bucket_counts[1];
    else if (r < 1e-3) ++bucket_counts[2];
    else ++bucket_counts[3];
  }
  const auto& buckets = table1_buckets();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(bucket_counts[i]) / n, buckets[i].fraction,
                0.01)
        << "bucket " << i;
  }
}

TEST(TraceGen, EventRateMatchesMttf) {
  Rng rng(17);
  const std::int64_t links = 10'000;
  const double horizon = 8'766;  // one year in hours
  const auto trace = generate_trace(links, horizon, 10'000, rng);
  // Expected events ~ links * horizon / MTTF (renewal process).
  const double expected = links * horizon / 10'000;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, expected * 0.1);
  // Sorted by time and within the horizon.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time_hours, trace[i].time_hours);
  }
  EXPECT_GE(trace.front().time_hours, 0.0);
  EXPECT_LE(trace.back().time_hours, horizon);
}

TEST(LgEffectiveSpeed, MatchesFig8Shape) {
  EXPECT_GT(lg_effective_speed(1e-5), 0.99);
  EXPECT_NEAR(lg_effective_speed(1e-3), 0.92, 0.01);
  EXPECT_GT(lg_effective_speed(1e-5), lg_effective_speed(1e-3));
}

DeploymentConfig small_cfg(bool lg) {
  DeploymentConfig c;
  c.topo = {.pods = 4, .tors_per_pod = 48, .fabrics_per_pod = 4,
            .spines_per_plane = 48};
  c.duration_hours = 24 * 60;  // two months
  c.mttf_hours = 1'000;        // accelerated failures for test coverage
  c.capacity_constraint = 0.75;
  c.use_linkguardian = lg;
  c.sample_period_hours = 2.0;
  c.seed = 99;
  return c;
}

TEST(Deployment, VanillaCorrOptLeavesResidualPenaltyUnderConstraint) {
  const auto res = run_deployment(small_cfg(false));
  EXPECT_GT(res.corruption_events, 100);
  EXPECT_GT(res.disabled_immediately, 0);
  ASSERT_FALSE(res.samples.empty());
  // The capacity constraint is honoured throughout.
  for (const auto& s : res.samples) {
    EXPECT_GE(s.least_paths_frac, 0.75 - 1e-9);
  }
}

TEST(Deployment, LinkGuardianReducesPenaltyByOrders) {
  const auto vanilla = run_deployment(small_cfg(false));
  const auto with_lg = run_deployment(small_cfg(true));
  // Compare mean total penalty across samples (same trace seed).
  auto mean_penalty = [](const DeploymentResult& r) {
    double s = 0.0;
    for (const auto& x : r.samples) s += x.total_penalty;
    return s / static_cast<double>(r.samples.size());
  };
  const double pv = mean_penalty(vanilla);
  const double pl = mean_penalty(with_lg);
  EXPECT_GT(pv, 0.0);
  // Whenever links cannot be disabled, LG cuts their contribution by ~4+
  // orders of magnitude; the mean must drop by at least 100x.
  EXPECT_LT(pl, pv / 100.0);
}

TEST(Deployment, LgCapacityCostIsSmall) {
  const auto with_lg = run_deployment(small_cfg(true));
  double worst = 1.0;
  for (const auto& s : with_lg.samples) worst = std::min(s.least_capacity_frac, worst);
  // Under 10x-accelerated failures the capacity dip is larger than the
  // paper's realistic regime (<0.25%), but must stay modest; the paper-scale
  // run lives in bench_fig16_deployment_cdf.
  EXPECT_GT(worst, 0.75);
}

TEST(Deployment, OptimizerDisablesWhenCapacityReturns) {
  const auto res = run_deployment(small_cfg(false));
  // With accelerated failures under a 75% constraint, some links could not
  // be disabled immediately; the optimizer should pick up at least part of
  // the backlog when repairs return.
  EXPECT_GT(res.kept_active, 0);
  EXPECT_GT(res.disabled_by_optimizer, 0);
}

TEST(Deployment, MaxLgPerSwitchStaysSmall) {
  const auto res = run_deployment(small_cfg(true));
  // §5: the paper's realistic regime sees at most 2-4 concurrently
  // LG-enabled links per switch pipe (checked at paper scale in the bench).
  // The 10x-accelerated test regime accumulates more but is bounded by the
  // port count.
  EXPECT_GE(res.max_lg_per_switch, 1);
  EXPECT_LE(res.max_lg_per_switch, 48);
}

}  // namespace
}  // namespace lgsim::corropt
