// Property tests for the 16-bit + era-bit sequence arithmetic (§3.5).
//
// The reference model is plain 64-bit integers: wire(v) = (v mod 2^16,
// (v / 2^16) mod 2). Every comparison the protocol makes must agree with the
// 64-bit truth as long as the operands are within N/2 of each other.
#include <gtest/gtest.h>

#include <cstdint>

#include "lg/seqno.h"
#include "sim/random.h"

namespace lgsim::lg {
namespace {

SeqEra wire_of(std::int64_t v) {
  return SeqEra{static_cast<std::uint16_t>(v & 0xFFFF),
                static_cast<std::uint8_t>((v >> 16) & 1)};
}

TEST(SeqNo, NextIncrementsWithinEra) {
  SeqEra s{5, 0};
  s = seq_next(s);
  EXPECT_EQ(s.seq, 6);
  EXPECT_EQ(s.era, 0);
}

TEST(SeqNo, NextTogglesEraOnWrap) {
  SeqEra s{0xFFFF, 0};
  s = seq_next(s);
  EXPECT_EQ(s.seq, 0);
  EXPECT_EQ(s.era, 1);
  // And back again on the next wrap.
  s.seq = 0xFFFF;
  s = seq_next(s);
  EXPECT_EQ(s.seq, 0);
  EXPECT_EQ(s.era, 0);
}

TEST(SeqNo, SameEraDistance) {
  EXPECT_EQ(seq_distance({100, 0}, {40, 0}), 60);
  EXPECT_EQ(seq_distance({40, 0}, {100, 0}), -60);
  EXPECT_EQ(seq_distance({7, 1}, {7, 1}), 0);
}

TEST(SeqNo, CrossEraDistanceNearWrap) {
  // 65530 (era 0) followed by 5 (era 1): forward distance 11.
  EXPECT_EQ(seq_distance({5, 1}, {65530, 0}), 11);
  EXPECT_EQ(seq_distance({65530, 0}, {5, 1}), -11);
}

TEST(SeqNo, ComparisonHelpers) {
  EXPECT_TRUE(seq_less({65530, 0}, {5, 1}));
  EXPECT_TRUE(seq_greater({5, 1}, {65530, 0}));
  EXPECT_TRUE(seq_leq({9, 0}, {9, 0}));
  EXPECT_FALSE(seq_less({9, 0}, {9, 0}));
}

TEST(SeqNo, BeforeFirstPrecedesZero) {
  EXPECT_EQ(seq_next(seq_before_first()), (SeqEra{0, 0}));
  EXPECT_EQ(seq_distance({0, 0}, seq_before_first()), 1);
}

TEST(SeqNo, SeqAddMatchesRepeatedNext) {
  SeqEra s{0xFFFE, 1};
  const SeqEra t = seq_add(s, 3);
  EXPECT_EQ(t.seq, 1);
  EXPECT_EQ(t.era, 0);
}

// Property: for random 64-bit positions and offsets within (-N/2, N/2), the
// wire-format distance equals the integer distance.
TEST(SeqNoProperty, DistanceMatchesReferenceAcrossWraps) {
  Rng rng(1234);
  for (int i = 0; i < 200'000; ++i) {
    const std::int64_t base = static_cast<std::int64_t>(rng.uniform_int(1'000'000'000));
    const std::int32_t off =
        static_cast<std::int32_t>(rng.uniform_int(kSeqSpace - 1)) -
        static_cast<std::int32_t>(kSeqHalf - 1);
    const std::int64_t other = base + off;
    if (other < 0) continue;
    ASSERT_EQ(seq_distance(wire_of(other), wire_of(base)), off)
        << "base=" << base << " off=" << off;
  }
}

// Property: walking seq_next for many steps stays consistent with wire_of.
TEST(SeqNoProperty, NextWalkMatchesReference) {
  SeqEra s = wire_of(0);
  for (std::int64_t v = 0; v < 200'000; ++v) {
    ASSERT_EQ(s.seq, wire_of(v).seq);
    ASSERT_EQ(s.era, wire_of(v).era);
    s = seq_next(s);
  }
}

// The paper's correctness condition: era correction works as long as the two
// sequence numbers are not more than N/2 apart. Verify the boundary.
TEST(SeqNoProperty, HalfWindowBoundary) {
  const std::int64_t base = 3 * kSeqSpace + 7;  // arbitrary, era toggles hit
  // Exactly N/2 - 1 apart: still correct.
  EXPECT_EQ(seq_distance(wire_of(base + kSeqHalf - 1), wire_of(base)),
            kSeqHalf - 1);
  EXPECT_EQ(seq_distance(wire_of(base - (kSeqHalf - 1)), wire_of(base)),
            -(kSeqHalf - 1));
}

}  // namespace
}  // namespace lgsim::lg
