// Tests for the fault-injection subsystem (src/fault): script semantics,
// injector timing against live loss models, control-plane fault hooks
// (pub-sub bus outages/delays, corruptd poll stalls), the phy-backed
// attenuation bridge, and the closed-loop lifecycle experiment.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/lifecycle.h"
#include "fault/scenarios.h"
#include "fault/script.h"
#include "monitor/corruptd.h"
#include "net/loss_model.h"
#include "phy/optical.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace lgsim::fault {
namespace {

TEST(FaultScript, StableSortKeepsAppendOrderForSameTimeEvents) {
  FaultScript s;
  s.ber_step(usec(20), "l", 1e-3);
  s.ber_step(usec(10), "l", 1e-4);   // earlier, appended later
  s.ber_step(usec(10), "l", 1e-5);   // same time: must stay after the 1e-4
  s.stable_sort_by_time();
  const auto& e = s.events();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].at, usec(10));
  EXPECT_DOUBLE_EQ(e[0].a, 1e-4);
  EXPECT_EQ(e[1].at, usec(10));
  EXPECT_DOUBLE_EQ(e[1].a, 1e-5);
  EXPECT_EQ(e[2].at, usec(20));
}

TEST(FaultScript, EndTimeIncludesDurationTails) {
  FaultScript s;
  s.ber_step(msec(1), "l", 1e-3);
  s.gilbert_episode(msec(2), "l", net::GilbertElliottLoss::for_rate(1e-2, 3),
                    msec(30));
  EXPECT_EQ(s.end_time(), msec(32));
}

TEST(FaultScript, LinkFlapEmitsDownThenUp) {
  FaultScript s;
  s.link_flap(usec(10), "l", usec(5));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(s.events()[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(s.events()[1].at, usec(15));
}

TEST(FaultInjector, BerStepAppliesAtExactTime) {
  Simulator sim;
  net::BernoulliLoss loss(0.0, Rng(1));
  FaultScript s;
  s.ber_step(usec(10), "l", 1e-2);
  FaultInjector inj(sim, std::move(s));
  inj.add_link("l", &loss);
  inj.arm();

  double before = -1.0, after = -1.0;
  sim.schedule_at(usec(9), [&] { before = loss.driven_rate(); });
  sim.schedule_at(usec(11), [&] { after = loss.driven_rate(); });
  sim.run();

  EXPECT_DOUBLE_EQ(before, 0.0);
  EXPECT_DOUBLE_EQ(after, 1e-2);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].at, usec(10));
  EXPECT_DOUBLE_EQ(inj.log()[0].value, 1e-2);
  EXPECT_EQ(inj.stats().applied, 1);
  EXPECT_EQ(inj.stats().unbound, 0);
}

TEST(FaultInjector, UnboundTargetIsCountedNotFatal) {
  Simulator sim;
  FaultScript s;
  s.ber_step(usec(1), "nonexistent", 1e-3);
  s.bus_outage(usec(2), "no-bus", usec(1));
  FaultInjector inj(sim, std::move(s));
  inj.arm();
  sim.run();
  EXPECT_EQ(inj.stats().applied, 0);
  EXPECT_EQ(inj.stats().unbound, 3);  // step + outage start + outage end
  EXPECT_TRUE(inj.log().empty());
}

TEST(FaultInjector, LogRampIsMonotonicAndLandsExactlyOnEndpoint) {
  Simulator sim;
  net::BernoulliLoss loss(0.0, Rng(1));
  FaultScript s;
  const SimTime step = usec(10);
  const SimTime duration = usec(100);  // 10 steps
  s.ber_ramp(usec(50), "l", 1e-5, 1e-2, duration, step, RampShape::kLog);
  FaultInjector inj(sim, std::move(s));
  inj.add_link("l", &loss);
  inj.arm();

  std::vector<double> samples;
  for (int k = 0; k <= 10; ++k) {
    // Probe just after each ramp tick.
    sim.schedule_at(usec(50) + step * k + usec(1),
                    [&] { samples.push_back(loss.driven_rate()); });
  }
  sim.run();

  ASSERT_EQ(samples.size(), 11u);
  EXPECT_DOUBLE_EQ(samples.front(), 1e-5);
  EXPECT_DOUBLE_EQ(samples.back(), 1e-2);  // exact endpoint, no float drift
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GT(samples[i], samples[i - 1] * 0.999);
  // Log shape: the midpoint sits at the geometric mean of the endpoints.
  EXPECT_NEAR(samples[5], std::sqrt(1e-5 * 1e-2), std::sqrt(1e-5 * 1e-2) * 0.01);
  // Endpoints are logged; intermediate re-aims are counted as ramp steps.
  EXPECT_EQ(inj.stats().applied, 2);
  EXPECT_EQ(inj.stats().ramp_steps, 9);
}

TEST(FaultInjector, DegenerateRampIsASingleStepToTheEndpoint) {
  Simulator sim;
  net::BernoulliLoss loss(0.0, Rng(1));
  FaultScript s;
  s.ber_ramp(usec(5), "l", 1e-4, 1e-2, /*duration=*/0, /*step=*/0);
  FaultInjector inj(sim, std::move(s));
  inj.add_link("l", &loss);
  inj.arm();
  sim.run();
  EXPECT_DOUBLE_EQ(loss.driven_rate(), 1e-2);
  EXPECT_EQ(inj.stats().applied, 1);
  EXPECT_EQ(inj.stats().ramp_steps, 0);
}

TEST(FaultInjector, LinkFlapLosesEveryFrameWithoutShiftingTheRng) {
  // Down frames must not consume RNG draws: the loss pattern is a function
  // of the *up-frame* index alone, so the k-th up-frame of a flapped link
  // rolls exactly what the k-th frame of an un-flapped one would.
  Simulator sim;
  net::BernoulliLoss flapped(0.1, Rng(7));
  net::BernoulliLoss control(0.1, Rng(7));
  FaultScript s;
  s.link_flap(usec(40), "l", usec(20));  // down for frames at t in [40, 60)
  FaultInjector inj(sim, std::move(s));
  inj.add_link("l", &flapped);
  inj.arm();

  std::vector<int> flapped_lost(100, -1), control_lost(100, -1);
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(usec(i), [&, i] {
      net::Packet p;
      p.frame_bytes = 1518;
      flapped_lost[i] = flapped.lose(sim.now(), p) ? 1 : 0;
      control_lost[i] = control.lose(sim.now(), p) ? 1 : 0;
    });
  }
  sim.run();

  int up = 0;  // up-frame index on the flapped link
  for (int i = 0; i < 100; ++i) {
    if (i >= 40 && i < 60) {
      EXPECT_EQ(flapped_lost[i], 1) << "frame " << i << " during flap";
    } else {
      EXPECT_EQ(flapped_lost[i], control_lost[up]) << "frame " << i;
      ++up;
    }
  }
  EXPECT_FALSE(flapped.link_down());
}

TEST(FaultInjector, GilbertEpisodeAppliesThenRestoresSavedParams) {
  Simulator sim;
  net::GilbertElliottLoss::Params healthy;
  healthy.p_good_to_bad = 0.0;
  healthy.p_bad_to_good = 1.0;
  net::GilbertElliottLoss ge(healthy, Rng(3));
  const auto episode = net::GilbertElliottLoss::for_rate(0.5, 3.0);

  FaultScript s;
  s.gilbert_episode(usec(10), "l", episode, usec(20));
  FaultInjector inj(sim, std::move(s));
  inj.add_link("l", &ge);
  inj.arm();

  double during_b2g = -1.0, after_g2b = -1.0;
  sim.schedule_at(usec(15), [&] { during_b2g = ge.params().p_bad_to_good; });
  sim.schedule_at(usec(35), [&] { after_g2b = ge.params().p_good_to_bad; });
  sim.run();

  EXPECT_DOUBLE_EQ(during_b2g, episode.p_bad_to_good);  // mean burst 3
  EXPECT_DOUBLE_EQ(after_g2b, 0.0);                     // healthy restored
  EXPECT_EQ(inj.stats().applied, 2);  // apply + restore are both logged
}

TEST(FaultInjector, AttenStepReAimsLossThroughThePhyChain) {
  Simulator sim;
  net::BernoulliLoss loss(0.0, Rng(1));
  const phy::Transceiver xcvr = phy::make_25g_sr_nofec();
  FaultScript s;
  s.atten_step(usec(5), "voa", 14.0);
  FaultInjector inj(sim, std::move(s));
  inj.add_attenuator("voa", {xcvr, &loss, 1518});
  inj.arm();
  sim.run();
  EXPECT_DOUBLE_EQ(loss.driven_rate(), xcvr.frame_loss_rate(14.0, 1518));
  EXPECT_GT(loss.driven_rate(), 0.0);
}

TEST(AttenuationProfile, DbAtInterpolatesBetweenKnotsAndClampsOutside) {
  phy::AttenuationProfile prof;
  prof.hold(usec(10), 8.0).ramp_to(usec(20), 12.0);
  EXPECT_DOUBLE_EQ(prof.db_at(0), 8.0);         // before first knot: hold
  EXPECT_DOUBLE_EQ(prof.db_at(usec(15)), 10.0); // linear midpoint
  EXPECT_DOUBLE_EQ(prof.db_at(usec(30)), 12.0); // after last knot: hold
}

TEST(AttenuationProfile, AppendSamplesProfileIntoAttenSteps) {
  phy::AttenuationProfile prof;
  prof.hold(0, 8.0).ramp_to(usec(10), 12.0);
  FaultScript s;
  append_attenuation_profile(s, "voa", prof, usec(5));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].at, 0);
  EXPECT_DOUBLE_EQ(s.events()[0].a, 8.0);
  EXPECT_EQ(s.events()[1].at, usec(5));
  EXPECT_DOUBLE_EQ(s.events()[1].a, 10.0);
  EXPECT_EQ(s.events()[2].at, usec(10));
  EXPECT_DOUBLE_EQ(s.events()[2].a, 12.0);
}

TEST(PubSubBus, DeferredDeliveryHonoursHopPlusInjectedDelay) {
  Simulator sim;
  monitor::PubSubBus bus;
  bus.bind(sim);
  bus.set_delay(usec(50));

  std::vector<SimTime> delivered_at;
  bus.subscribe("t", [&](const monitor::PubSubBus::Notification&) {
    delivered_at.push_back(sim.now());
  });

  FaultScript s;
  s.bus_delay(usec(100), "b", usec(25));
  FaultInjector inj(sim, std::move(s));
  inj.add_bus("b", &bus);
  inj.arm();

  sim.schedule_at(usec(10), [&] { bus.publish({"t", 1e-3, sim.now()}); });
  sim.schedule_at(usec(200), [&] { bus.publish({"t", 1e-3, sim.now()}); });
  sim.run();

  ASSERT_EQ(delivered_at.size(), 2u);
  EXPECT_EQ(delivered_at[0], usec(60));   // hop delay only
  EXPECT_EQ(delivered_at[1], usec(275));  // hop + injected extra
  EXPECT_EQ(bus.counters().deferred, 2);
  EXPECT_EQ(bus.counters().delivered, 2);
}

TEST(PubSubBus, OutageWindowDropsThenRenotifyRecovers) {
  // corruptd keeps publishing every renotify_period while loss persists, so
  // a notification lost to a bus outage is recovered after the window ends.
  Simulator sim;
  monitor::PubSubBus bus;
  bus.bind(sim);
  bus.set_delay(usec(10));

  std::int64_t ok = 0, all = 0;
  monitor::CorruptdConfig mc;
  mc.poll_period = msec(1);
  mc.window_frames = 1'000'000;
  mc.threshold = 1e-4;
  mc.renotify_period = msec(2);
  monitor::Corruptd daemon(sim, mc, bus);
  daemon.add_port({"link", [&] { return ok; }, [&] { return all; }});
  daemon.start();

  // A steadily corrupting link: 1% loss, 1000 frames/ms.
  for (int t = 1; t <= 30; ++t) {
    sim.schedule_at(msec(t) - usec(1), [&] {
      all += 1000;
      ok += 990;
    });
  }

  FaultScript s;
  s.bus_outage(usec(1), "b", msec(10));  // first notifications vanish
  FaultInjector inj(sim, std::move(s));
  inj.add_bus("b", &bus);
  inj.arm();

  std::vector<SimTime> got;
  bus.subscribe("link", [&](const monitor::PubSubBus::Notification&) {
    got.push_back(sim.now());
  });
  sim.run(msec(31));
  daemon.stop();

  EXPECT_GT(bus.counters().dropped, 0);
  ASSERT_FALSE(got.empty());
  // First delivery only after the outage window ends at 10 ms.
  EXPECT_GE(got.front(), msec(10));
  EXPECT_LE(got.front(), msec(14));  // next renotify + hop delay
}

TEST(Corruptd, PollStallIsABlindWindowClearedAsOneDelta) {
  Simulator sim;
  monitor::PubSubBus bus;
  std::int64_t ok = 0, all = 0;
  monitor::CorruptdConfig mc;
  mc.poll_period = msec(1);
  mc.window_frames = 1'000'000;
  mc.threshold = 1e-4;
  monitor::Corruptd daemon(sim, mc, bus);
  daemon.add_port({"link", [&] { return ok; }, [&] { return all; }});
  daemon.start();

  for (int t = 1; t <= 20; ++t) {
    sim.schedule_at(msec(t) - usec(1), [&] {
      all += 1000;
      ok += 990;
    });
  }

  FaultScript s;
  s.poll_stall(usec(1), "m", msec(10));
  FaultInjector inj(sim, std::move(s));
  inj.add_monitor("m", &daemon);
  inj.arm();

  sim.run(msec(21));
  daemon.stop();

  EXPECT_EQ(daemon.stalled_polls(), 10);
  EXPECT_GT(daemon.polls(), daemon.stalled_polls());
  // The blind window's frames arrived as one cumulative delta once the stall
  // cleared, so the estimate converged to the true 1% loss anyway.
  EXPECT_NEAR(daemon.loss_rate("link"), 0.01, 0.001);
  ASSERT_FALSE(bus.history().empty());
  EXPECT_GE(bus.history().front().at, msec(10));  // nothing during the stall
}

TEST(Scenarios, CatalogueBuildsAndUnknownNameThrows) {
  for (const std::string& name : scenario_names()) {
    const Scenario sc = make_scenario(name);
    EXPECT_EQ(sc.name, name);
    EXPECT_FALSE(sc.script.empty()) << name;
    EXPECT_GT(sc.horizon, sc.onset) << name;
    EXPECT_GE(sc.horizon, sc.script.end_time()) << name;
    EXPECT_GT(sc.peak_rate, 0.0) << name;
  }
  EXPECT_THROW(make_scenario("no-such-scenario"), std::invalid_argument);
}

TEST(Lifecycle, OnsetScenarioEngagesAndMasksEveryLossAfterProtection) {
  LifecycleConfig cfg;
  cfg.scenario = "onset";
  cfg.seed = 1;
  const LifecycleResult r = run_lifecycle(cfg);

  // The closed loop ran: detection after onset, engagement after the bus hop.
  ASSERT_GE(r.detected_at, 0);
  ASSERT_GE(r.engaged_at, 0);
  EXPECT_GE(r.detected_at, r.onset_at);
  EXPECT_GE(r.engaged_at, r.detected_at + cfg.bus_delay);
  EXPECT_EQ(r.detection_latency, r.detected_at - r.onset_at);
  EXPECT_GT(r.retx_copies, 1);

  // Ground truth conservation and the headline acceptance number.
  EXPECT_GT(r.offered, 0);
  EXPECT_EQ(r.offered, r.delivered + r.lost_total);
  EXPECT_EQ(r.lost_total, r.lost_before_protection + r.lost_after_protection);
  EXPECT_GT(r.lost_before_protection, 0);  // pre-detection frames do die
  EXPECT_EQ(r.lost_after_protection, 0);   // zero-loss ordered switchover
  EXPECT_TRUE(r.lg_enabled_at_end);
  EXPECT_EQ(r.final_mode, monitor::LgMode::kOrdered);
  EXPECT_GT(r.faults_applied, 0);
}

TEST(Lifecycle, SameSeedReproducesFieldForField) {
  LifecycleConfig cfg;
  cfg.scenario = "ramp";
  cfg.seed = 7;
  const LifecycleResult a = run_lifecycle(cfg);
  const LifecycleResult b = run_lifecycle(cfg);

  EXPECT_EQ(a.detected_at, b.detected_at);
  EXPECT_EQ(a.engaged_at, b.engaged_at);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.lost_before_protection, b.lost_before_protection);
  EXPECT_EQ(a.lost_after_protection, b.lost_after_protection);
  EXPECT_EQ(a.wire_corrupted, b.wire_corrupted);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.ramp_steps, b.ramp_steps);
  ASSERT_EQ(a.mode_changes.size(), b.mode_changes.size());
  for (std::size_t i = 0; i < a.mode_changes.size(); ++i) {
    EXPECT_EQ(a.mode_changes[i].at, b.mode_changes[i].at);
    EXPECT_EQ(a.mode_changes[i].to, b.mode_changes[i].to);
  }
}

TEST(Lifecycle, GridResultsMatchDirectRuns) {
  std::vector<LifecycleConfig> grid;
  for (std::uint64_t seed : {1u, 2u}) {
    LifecycleConfig cfg;
    cfg.scenario = "onset";
    cfg.seed = seed;
    grid.push_back(cfg);
  }
  const std::vector<LifecycleResult> got = run_lifecycle_grid(grid);
  ASSERT_EQ(got.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const LifecycleResult direct = run_lifecycle(grid[i]);
    EXPECT_EQ(got[i].seed, direct.seed);
    EXPECT_EQ(got[i].offered, direct.offered);
    EXPECT_EQ(got[i].delivered, direct.delivered);
    EXPECT_EQ(got[i].engaged_at, direct.engaged_at);
    EXPECT_EQ(got[i].lost_after_protection, direct.lost_after_protection);
  }
}

}  // namespace
}  // namespace lgsim::fault
