// Tests for corruptd (Appendix C): counter polling, moving-window loss
// estimation, pub-sub notification and LinkGuardian activation end-to-end.
#include <gtest/gtest.h>

#include <memory>

#include "lg/link.h"
#include "monitor/corruptd.h"
#include "net/loss_model.h"

namespace lgsim::monitor {
namespace {

struct FakePort {
  std::int64_t ok = 0;
  std::int64_t all = 0;
  PortCounterFn fn(const std::string& topic) {
    return {topic, [this] { return ok; }, [this] { return all; }};
  }
};

TEST(Corruptd, DetectsLossAboveThreshold) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(10);
  cfg.threshold = 1e-4;
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("sw2/eth1"));
  daemon.start();

  // 1M frames per poll with 0.1% loss.
  PeriodicTask feed(sim, msec(10), [&](SimTime) {
    port.all += 1'000'000;
    port.ok += 999'000;
  });
  feed.start(0);
  sim.run(msec(100));
  feed.stop();
  daemon.stop();

  ASSERT_EQ(bus.history().size(), 1u);  // notified exactly once
  EXPECT_EQ(bus.history()[0].topic, "sw2/eth1");
  EXPECT_NEAR(bus.history()[0].loss_rate, 1e-3, 1e-4);
  EXPECT_NEAR(daemon.loss_rate("sw2/eth1"), 1e-3, 1e-4);
}

TEST(Corruptd, HealthyLinkNeverNotifies) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(10);
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("sw2/eth2"));
  daemon.start();
  PeriodicTask feed(sim, msec(10), [&](SimTime) {
    port.all += 1'000'000;
    port.ok += 1'000'000;  // lossless
  });
  feed.start(0);
  sim.run(msec(200));
  feed.stop();
  daemon.stop();
  EXPECT_TRUE(bus.history().empty());
}

TEST(Corruptd, MovingWindowForgetsOldLoss) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(1);
  cfg.window_frames = 3'000'000;  // three polls worth
  cfg.threshold = 1e-2;           // high so no notification interferes
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("t"));
  daemon.start();
  int phase = 0;
  PeriodicTask feed(sim, msec(1), [&](SimTime) {
    port.all += 1'000'000;
    port.ok += (phase++ < 3) ? 999'000 : 1'000'000;  // loss only early
  });
  feed.start(0);
  sim.run(msec(10));
  feed.stop();
  daemon.stop();
  // The lossy polls have rolled out of the window.
  EXPECT_LT(daemon.loss_rate("t"), 2e-4);
}

TEST(Corruptd, ActivatorEnablesLinkGuardianWithEq2Copies) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig mcfg;
  mcfg.poll_period = msec(5);
  mcfg.threshold = 1e-8;
  Corruptd daemon(sim, mcfg, bus);

  // A real protected link carrying traffic with 1e-3 corruption.
  lg::LinkSpec spec;
  spec.rate = gbps(100);
  lg::LgConfig lcfg;
  lg::ProtectedLink link(sim, spec, lcfg);
  link.set_loss_model(std::make_unique<net::BernoulliLoss>(1e-3, Rng(2)));
  std::int64_t fwd = 0;
  link.set_forward_sink([&](net::Packet&&) { ++fwd; });

  // corruptd polls the real port counters of the corrupting link.
  const auto& pc = link.forward_port().counters();
  daemon.add_port({"link0",
                   [&pc] { return pc.delivered_frames; },
                   [&pc] { return pc.delivered_frames + pc.corrupted_frames; }});
  daemon.start();

  LgActivator activator(bus, /*target=*/1e-8);
  activator.watch("link0", [&](int copies) {
    EXPECT_EQ(copies, 2);  // Eq. 2 at ~1e-3 measured loss
    link.enable_lg();
  });

  // Offered load.
  std::int64_t sent = 0;
  PeriodicTask gen(sim, nsec(124), [&](SimTime) {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = 1518;
    link.send_forward(std::move(p));
    ++sent;
  });
  gen.start(0);
  sim.run(msec(50));
  gen.stop();
  daemon.stop();
  sim.run(msec(51));

  ASSERT_EQ(activator.records().size(), 1u);
  EXPECT_NEAR(activator.records()[0].measured_loss, 1e-3, 4e-4);
  EXPECT_TRUE(link.lg_enabled());
  EXPECT_GT(link.sender().stats().protected_sent, 0);
}

}  // namespace
}  // namespace lgsim::monitor
