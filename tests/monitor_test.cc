// Tests for corruptd (Appendix C): counter polling, moving-window loss
// estimation, pub-sub notification and LinkGuardian activation end-to-end.
#include <gtest/gtest.h>

#include <memory>

#include "lg/link.h"
#include "monitor/corruptd.h"
#include "net/loss_model.h"

namespace lgsim::monitor {
namespace {

struct FakePort {
  std::int64_t ok = 0;
  std::int64_t all = 0;
  PortCounterFn fn(const std::string& topic) {
    return {topic, [this] { return ok; }, [this] { return all; }};
  }
};

TEST(Corruptd, DetectsLossAboveThreshold) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(10);
  cfg.threshold = 1e-4;
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("sw2/eth1"));
  daemon.start();

  // 1M frames per poll with 0.1% loss.
  PeriodicTask feed(sim, msec(10), [&](SimTime) {
    port.all += 1'000'000;
    port.ok += 999'000;
  });
  feed.start(0);
  sim.run(msec(100));
  feed.stop();
  daemon.stop();

  ASSERT_EQ(bus.history().size(), 1u);  // notified exactly once
  EXPECT_EQ(bus.history()[0].topic, "sw2/eth1");
  EXPECT_NEAR(bus.history()[0].loss_rate, 1e-3, 1e-4);
  EXPECT_NEAR(daemon.loss_rate("sw2/eth1"), 1e-3, 1e-4);
}

TEST(Corruptd, HealthyLinkNeverNotifies) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(10);
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("sw2/eth2"));
  daemon.start();
  PeriodicTask feed(sim, msec(10), [&](SimTime) {
    port.all += 1'000'000;
    port.ok += 1'000'000;  // lossless
  });
  feed.start(0);
  sim.run(msec(200));
  feed.stop();
  daemon.stop();
  EXPECT_TRUE(bus.history().empty());
}

TEST(Corruptd, MovingWindowForgetsOldLoss) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(1);
  cfg.window_frames = 3'000'000;  // three polls worth
  cfg.threshold = 1e-2;           // high so no notification interferes
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("t"));
  daemon.start();
  int phase = 0;
  PeriodicTask feed(sim, msec(1), [&](SimTime) {
    port.all += 1'000'000;
    port.ok += (phase++ < 3) ? 999'000 : 1'000'000;  // loss only early
  });
  feed.start(0);
  sim.run(msec(10));
  feed.stop();
  daemon.stop();
  // The lossy polls have rolled out of the window.
  EXPECT_LT(daemon.loss_rate("t"), 2e-4);
}

TEST(Corruptd, ActivatorEnablesLinkGuardianWithEq2Copies) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig mcfg;
  mcfg.poll_period = msec(5);
  mcfg.threshold = 1e-8;
  Corruptd daemon(sim, mcfg, bus);

  // A real protected link carrying traffic with 1e-3 corruption.
  lg::LinkSpec spec;
  spec.rate = gbps(100);
  lg::LgConfig lcfg;
  lg::ProtectedLink link(sim, spec, lcfg);
  link.set_loss_model(std::make_unique<net::BernoulliLoss>(1e-3, Rng(2)));
  std::int64_t fwd = 0;
  link.set_forward_sink([&](net::Packet&&) { ++fwd; });

  // corruptd polls the real port counters of the corrupting link.
  const auto& pc = link.forward_port().counters();
  daemon.add_port({"link0",
                   [&pc] { return pc.delivered_frames; },
                   [&pc] { return pc.delivered_frames + pc.corrupted_frames; }});
  daemon.start();

  LgActivator activator(bus, /*target=*/1e-8);
  activator.watch("link0", [&](int copies) {
    EXPECT_EQ(copies, 2);  // Eq. 2 at ~1e-3 measured loss
    link.enable_lg();
  });

  // Offered load.
  std::int64_t sent = 0;
  PeriodicTask gen(sim, nsec(124), [&](SimTime) {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = 1518;
    link.send_forward(std::move(p));
    ++sent;
  });
  gen.start(0);
  sim.run(msec(50));
  gen.stop();
  daemon.stop();
  sim.run(msec(51));

  ASSERT_EQ(activator.records().size(), 1u);
  EXPECT_NEAR(activator.records()[0].measured_loss, 1e-3, 4e-4);
  EXPECT_TRUE(link.lg_enabled());
  EXPECT_GT(link.sender().stats().protected_sent, 0);
}

// --- Window boundary behaviour (time-based eviction, introduced for the
// --- estimator-backed counter feed in src/telemetry) ---

TEST(Corruptd, WindowTauEvictsSampleExactlyAtTau) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(1);
  cfg.window_tau = msec(3);
  cfg.threshold = 2.0;  // unreachable: isolate windowing from notification
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("t"));
  daemon.start();

  // One productive poll at t=1ms (10% loss), idle afterwards. Idle polls add
  // no samples but still drive time-based eviction.
  port.all += 1000;
  port.ok += 900;

  // At the t=3ms poll the sample is 2ms old (< TAU): still in the window.
  sim.run(msec(3));
  auto e = daemon.estimate("t");
  ASSERT_TRUE(e.known);
  EXPECT_EQ(e.frames, 1000);
  EXPECT_EQ(e.age, msec(2));
  EXPECT_DOUBLE_EQ(daemon.loss_rate("t"), 0.1);

  // At the t=4ms poll it is exactly TAU old: evicted (>=, not >), and the
  // window drains completely — the loss rate becomes unknown, not 0%.
  sim.run(msec(4));
  e = daemon.estimate("t");
  EXPECT_FALSE(e.known);
  EXPECT_EQ(e.frames, 0);
  EXPECT_EQ(e.age, -1);
  EXPECT_DOUBLE_EQ(daemon.loss_rate("t"), 0.0);
  daemon.stop();
}

TEST(Corruptd, RenotifyWaitsOutCounterStall) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(1);
  cfg.threshold = 1e-4;
  cfg.renotify_period = msec(5);
  Corruptd daemon(sim, cfg, bus);
  FakePort port;
  daemon.add_port(port.fn("t"));
  daemon.start();
  PeriodicTask feed(sim, msec(1), [&](SimTime) {
    port.all += 1'000'000;
    port.ok += 999'000;  // sustained 1e-3 loss
  });
  feed.start(0);
  // Driver stall spanning the renotify due time (t=6ms): the poll timer
  // keeps firing but reads nothing, so nothing can be published until the
  // driver responds again.
  sim.schedule_at(msec(4) + usec(500), [&] { daemon.set_counter_stall(true); });
  sim.schedule_at(msec(9) + usec(500),
                  [&] { daemon.set_counter_stall(false); });
  sim.run(msec(14));
  feed.stop();
  daemon.stop();

  ASSERT_EQ(bus.history().size(), 2u);
  EXPECT_EQ(bus.history()[0].at, msec(1));   // first detection
  EXPECT_EQ(bus.history()[1].at, msec(10));  // renotify: first poll after stall
  EXPECT_EQ(daemon.stalled_polls(), 5);      // t = 5..9 ms fired blind
}

TEST(Corruptd, ZeroSampleWindowIsUnknownNotZero) {
  Simulator sim;
  PubSubBus bus;
  CorruptdConfig cfg;
  cfg.poll_period = msec(1);
  cfg.window_tau = msec(5);  // the estimator-backed configuration
  Corruptd daemon(sim, cfg, bus);
  FakePort port;  // counters never move: a dead or idle source
  daemon.add_port(port.fn("t"));
  daemon.start();
  sim.run(msec(20));
  daemon.stop();

  const auto e = daemon.estimate("t");
  EXPECT_FALSE(e.known);  // no evidence is not the same as 0% loss
  EXPECT_EQ(e.frames, 0);
  EXPECT_EQ(e.age, -1);
  EXPECT_DOUBLE_EQ(daemon.loss_rate("t"), 0.0);  // legacy accessor stays 0.0
  EXPECT_TRUE(bus.history().empty());
  EXPECT_EQ(daemon.polls(), 20);
  // Unmonitored topic: also unknown, never a divide or 0%-with-confidence.
  EXPECT_FALSE(daemon.estimate("nonexistent").known);
}

}  // namespace
}  // namespace lgsim::monitor
