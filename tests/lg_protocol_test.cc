// Protocol-level tests for LinkGuardian using scripted (deterministic) loss
// patterns on the forward link. Each test checks a mechanism from §3 of the
// paper: gap detection + retransmission, tail-loss detection via dummy
// packets, in-order release, de-duplication, reTxReqs register limits,
// ackNoTimeout fallback, backpressure, and seqNo wrap-around.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lg/link.h"
#include "net/loss_model.h"
#include "sim/simulator.h"

namespace lgsim::lg {
namespace {

using net::Packet;
using net::PktKind;

struct Harness {
  Simulator sim;
  LgConfig cfg;
  LinkSpec spec;
  std::unique_ptr<ProtectedLink> link;
  std::vector<Packet> out;
  std::vector<SimTime> out_times;
  std::vector<Packet> rev_out;

  Harness() {
    spec.rate = gbps(100);
    spec.prop_delay = nsec(100);
    cfg.actual_loss_rate = 1e-4;  // -> 1 retx copy by default
    cfg.target_loss_rate = 1e-8;
  }

  void make(bool enable_lg = true) {
    link = std::make_unique<ProtectedLink>(sim, spec, cfg);
    link->set_forward_sink([this](Packet&& p) {
      out.push_back(std::move(p));
      out_times.push_back(sim.now());
    });
    link->set_reverse_sink([this](Packet&& p) { rev_out.push_back(std::move(p)); });
    if (enable_lg) link->enable_lg();
  }

  void drop_frames(std::vector<std::uint64_t> idx) {
    link->set_loss_model(std::make_unique<net::ScriptedLoss>(std::move(idx)));
  }

  /// Enqueue `n` MTU data packets back-to-back at t=0, uid = index.
  void inject(int n, std::int32_t frame_bytes = 1500) {
    for (int i = 0; i < n; ++i) {
      Packet p;
      p.kind = PktKind::kData;
      p.frame_bytes = frame_bytes;
      p.uid = static_cast<std::uint64_t>(i);
      link->send_forward(std::move(p));
    }
  }

  bool out_is_in_order() const {
    for (std::size_t i = 1; i < out.size(); ++i)
      if (out[i].uid <= out[i - 1].uid) return false;
    return true;
  }
};

TEST(LgProtocol, NoLossDeliversEverythingInOrder) {
  Harness h;
  h.make();
  h.drop_frames({});
  h.inject(50);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 50u);
  EXPECT_TRUE(h.out_is_in_order());
  EXPECT_EQ(h.link->receiver().stats().gaps_detected, 0);
  EXPECT_EQ(h.link->receiver().stats().effectively_lost, 0);
  EXPECT_EQ(h.link->sender().stats().protected_sent, 50);
  // The Tx buffer fully drains once ACKs come back.
  EXPECT_EQ(h.link->sender().tx_buffer_pkts(), 0);
}

TEST(LgProtocol, ForwardedPacketsShedTheLgHeader) {
  Harness h;
  h.make();
  h.inject(3, 1000);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 3u);
  for (const auto& p : h.out) {
    EXPECT_EQ(p.frame_bytes, 1000);
    EXPECT_FALSE(p.lg.valid);
  }
}

TEST(LgProtocol, SingleLossRecoveredInOrder) {
  Harness h;
  h.make();
  h.drop_frames({2});  // third data frame
  h.inject(10);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 10u);
  EXPECT_TRUE(h.out_is_in_order());
  const auto& rs = h.link->receiver().stats();
  EXPECT_EQ(rs.gaps_detected, 1);
  EXPECT_EQ(rs.recovered, 1);
  EXPECT_EQ(rs.effectively_lost, 0);
  EXPECT_EQ(rs.timeouts, 0);
  EXPECT_GE(rs.reorder_buffered, 1);
  const auto& ss = h.link->sender().stats();
  EXPECT_EQ(ss.retx_requests, 1);
  EXPECT_EQ(ss.retx_copies_sent, h.cfg.n_retx_copies());
}

TEST(LgProtocol, SingleLossNonBlockingDeliversOutOfOrderExactlyOnce) {
  Harness h;
  h.cfg.preserve_order = false;
  h.make();
  h.drop_frames({2});
  h.inject(10);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 10u);
  EXPECT_FALSE(h.out_is_in_order());  // uid 2 arrives late
  // Every uid delivered exactly once.
  std::vector<int> seen(10, 0);
  for (const auto& p : h.out) seen[p.uid]++;
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_EQ(h.link->receiver().stats().recovered, 1);
  EXPECT_EQ(h.link->receiver().stats().effectively_lost, 0);
  // NB never uses the reordering buffer.
  EXPECT_EQ(h.link->receiver().stats().reorder_buffered, 0);
}

TEST(LgProtocol, RetxCopiesAreDeduplicated) {
  Harness h;
  h.cfg.actual_loss_rate = 1e-3;  // -> 2 retx copies (Eq. 2)
  ASSERT_EQ(h.cfg.n_retx_copies(), 2);
  h.make();
  h.drop_frames({1});
  h.inject(5);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 5u);
  EXPECT_TRUE(h.out_is_in_order());
  EXPECT_EQ(h.link->sender().stats().retx_copies_sent, 2);
  EXPECT_GE(h.link->receiver().stats().dup_dropped, 1);
}

TEST(LgProtocol, TailLossDetectedByDummyWithoutTimeout) {
  Harness h;
  h.make();
  // Frames on the wire: 0,1,2 = data; 3+ = dummy burst. Drop the tail data.
  h.drop_frames({2});
  h.inject(3);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 3u);
  EXPECT_TRUE(h.out_is_in_order());
  const auto& rs = h.link->receiver().stats();
  EXPECT_GE(rs.dummy_rx, 1);
  EXPECT_EQ(rs.recovered, 1);
  EXPECT_EQ(rs.timeouts, 0);
  // Recovery must happen at sub-RTT (microsecond) timescale, far below any
  // RTO: the last delivery time is within ~20 us of the start.
  EXPECT_LT(h.out_times.back(), usec(20));
}

TEST(LgProtocol, TailLossWithFirstDummyAlsoLost) {
  Harness h;
  h.make();
  // Drop the tail data frame AND the first dummy; the burst's second dummy
  // reveals the gap (§5 "Handling bursty losses").
  h.drop_frames({2, 3});
  h.inject(3);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 3u);
  EXPECT_EQ(h.link->receiver().stats().recovered, 1);
  EXPECT_EQ(h.link->receiver().stats().timeouts, 0);
}

TEST(LgProtocol, TailLossUndetectedWithoutDummies) {
  Harness h;
  h.cfg.tail_loss_detection = false;  // ablation (Table 2 "Tail")
  h.make();
  h.drop_frames({2});
  h.inject(3);
  h.sim.run(msec(5));
  // The tail packet is lost and nothing reveals it: only 2 delivered and the
  // receiver still thinks nothing is missing.
  EXPECT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.link->receiver().stats().gaps_detected, 0);
}

TEST(LgProtocol, ConsecutiveLossesRecovered) {
  Harness h;
  h.make();
  h.drop_frames({2, 3, 4});
  h.inject(10);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 10u);
  EXPECT_TRUE(h.out_is_in_order());
  const auto& rs = h.link->receiver().stats();
  EXPECT_EQ(rs.gaps_detected, 1);
  EXPECT_EQ(rs.reported_lost, 3);
  EXPECT_EQ(rs.recovered, 3);
  EXPECT_EQ(rs.effectively_lost, 0);
  EXPECT_EQ(h.link->sender().stats().retx_requests, 3);
}

TEST(LgProtocol, GapWiderThanRetxRegistersFallsBackToTimeout) {
  Harness h;
  h.cfg.max_consecutive_retx = 5;
  h.make();
  h.drop_frames({1, 2, 3, 4, 5, 6, 7});  // 7 consecutive losses
  h.inject(10);
  h.sim.run();
  // 5 recovered by retx; 2 skipped via ackNoTimeout.
  EXPECT_EQ(h.out.size(), 8u);
  EXPECT_TRUE(h.out_is_in_order());
  const auto& rs = h.link->receiver().stats();
  EXPECT_EQ(rs.recovered, 5);
  EXPECT_EQ(rs.timeouts, 2);
  EXPECT_EQ(rs.effectively_lost, 2);
  EXPECT_EQ(h.link->sender().stats().dropped_requests, 2);
}

TEST(LgProtocol, RetxLossTriggersAckNoTimeoutAndStreamContinues) {
  Harness h;
  ASSERT_EQ(h.cfg.n_retx_copies(), 1);
  h.make();
  // Wire frames: 0,1,2 data; 3,4 dummy burst; 5 = the single retx copy.
  h.drop_frames({1, 5});
  h.inject(3);
  h.sim.run();
  // uid 1 is effectively lost; 0 and 2 still delivered in order.
  ASSERT_EQ(h.out.size(), 2u);
  EXPECT_EQ(h.out[0].uid, 0u);
  EXPECT_EQ(h.out[1].uid, 2u);
  const auto& rs = h.link->receiver().stats();
  EXPECT_EQ(rs.timeouts, 1);
  EXPECT_EQ(rs.effectively_lost, 1);
  // The skip happens at the quantized ackNoTimeout, not multi-millisecond RTO.
  EXPECT_LT(h.out_times.back(), h.cfg.ack_no_timeout + usec(10));
}

TEST(LgProtocol, BackpressurePausesAndResumes) {
  Harness h;
  h.cfg.recirc_loop = usec(5);  // slow recovery -> buffer builds
  h.make();
  h.drop_frames({10});
  h.inject(200);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 200u);
  EXPECT_TRUE(h.out_is_in_order());
  const auto& rs = h.link->receiver().stats();
  EXPECT_GE(rs.pauses_sent, 1);
  EXPECT_GE(rs.resumes_sent, 1);
  EXPECT_EQ(rs.reorder_drops, 0);
  EXPECT_EQ(rs.effectively_lost, 0);
  const auto& ss = h.link->sender().stats();
  // The pause/resume state is refreshed periodically (timer-packet model),
  // so the sender sees at least one frame per episode, possibly repeats.
  EXPECT_GE(ss.pauses_received, rs.pauses_sent);
  EXPECT_GE(ss.resumes_received, rs.resumes_sent);
}

TEST(LgProtocol, NoBackpressureOverflowsSmallBuffer) {
  Harness h;
  h.cfg.recirc_loop = usec(5);
  h.cfg.backpressure = false;       // ablation (Fig. 9b)
  h.cfg.recirc_buffer_bytes = 30'000;
  h.make();
  h.drop_frames({10});
  h.inject(200);
  h.sim.run();
  const auto& rs = h.link->receiver().stats();
  EXPECT_GT(rs.reorder_drops, 0);
  EXPECT_GT(rs.effectively_lost, 0);
  EXPECT_EQ(rs.pauses_sent, 0);
  EXPECT_LT(h.out.size(), 200u);
  EXPECT_TRUE(h.out_is_in_order());  // order still preserved for survivors
}

TEST(LgProtocol, SeqNoWrapAroundWithLossAfterWrap) {
  Harness h;
  // All 70k packets are enqueued at t=0; size the normal queue to hold them
  // (this test is about sequence arithmetic, not congestion).
  h.spec.normal_queue_bytes = 16'000'000;
  h.make();
  // Lose one frame shortly after the 16-bit sequence space wraps. Use small
  // frames to keep the run fast.
  h.drop_frames({66'000});
  h.inject(70'000, 100);
  h.sim.run();
  ASSERT_EQ(h.out.size(), 70'000u);
  EXPECT_TRUE(h.out_is_in_order());
  EXPECT_EQ(h.link->receiver().stats().recovered, 1);
  EXPECT_EQ(h.link->receiver().stats().effectively_lost, 0);
}

TEST(LgProtocol, DisabledLinkIsTransparentPassthrough) {
  Harness h;
  h.make(/*enable_lg=*/false);
  h.drop_frames({1});
  h.inject(5);
  h.sim.run();
  // Loss is NOT recovered when LinkGuardian is dormant.
  EXPECT_EQ(h.out.size(), 4u);
  for (const auto& p : h.out) EXPECT_FALSE(p.lg.valid);
  EXPECT_EQ(h.link->sender().stats().protected_sent, 0);
}

TEST(LgProtocol, EnableMidStreamStartsProtecting) {
  Harness h;
  h.make(/*enable_lg=*/false);
  h.inject(5);
  h.sim.schedule_at(usec(50), [&] {
    h.link->enable_lg();
    h.inject(5);
  });
  h.sim.run();
  EXPECT_EQ(h.out.size(), 10u);
  EXPECT_EQ(h.link->sender().stats().protected_sent, 5);
}

TEST(LgProtocol, ReverseTrafficCarriesPiggybackedAcks) {
  Harness h;
  h.make();
  h.inject(5);
  // Reverse-direction traffic injected after the forward packets land.
  h.sim.schedule_at(usec(30), [&] {
    Packet p;
    p.kind = PktKind::kData;
    p.frame_bytes = 500;
    h.link->send_reverse(std::move(p));
  });
  h.sim.run();
  ASSERT_EQ(h.rev_out.size(), 1u);
  EXPECT_TRUE(h.rev_out[0].lg_ack.valid);  // piggybacked cumulative ACK
  EXPECT_EQ(h.rev_out[0].frame_bytes, 500);
}

TEST(LgProtocol, TxBufferBoundedUnderContinuousTraffic) {
  Harness h;
  h.make();
  h.inject(500);
  SimTime t = 0;
  std::int64_t max_buf = 0;
  // Poll the Tx buffer every microsecond while the run progresses.
  for (int i = 0; i < 200; ++i) {
    t += usec(1);
    h.sim.schedule_at(t, [&] {
      max_buf = std::max(max_buf, h.link->sender().tx_buffer_bytes());
    });
  }
  h.sim.run();
  EXPECT_EQ(h.out.size(), 500u);
  // ACK feedback keeps the buffer to a handful of in-flight packets: the
  // paper measures at most ~90 KB at 100G (Fig. 14). Allow generous slack.
  EXPECT_LT(max_buf, 120'000);
  EXPECT_GT(max_buf, 0);
}

TEST(LgProtocol, RetxDelayWithinMeasuredEnvelope) {
  Harness h;
  h.make();
  h.drop_frames({5});
  h.inject(20);
  h.sim.run();
  const auto& d = h.link->receiver().mutable_stats().retx_delay_us;
  ASSERT_EQ(d.count(), 1);
  // Fig. 19: 2-6 us from detection to successful retransmission at 100G.
  EXPECT_GT(d.min(), 0.1);
  EXPECT_LT(d.max(), 6.0);
}

TEST(LgProtocol, LossNotificationCopiesConfigurable) {
  Harness h;
  h.cfg.loss_notif_copies = 3;
  h.make();
  h.drop_frames({2});
  h.inject(10);
  h.sim.run();
  EXPECT_EQ(h.link->receiver().stats().notifs_sent, 3);
  // Duplicated notifications must not cause duplicate retransmissions.
  EXPECT_EQ(h.link->sender().stats().retx_requests, 1);
  EXPECT_EQ(h.link->sender().stats().retx_copies_sent, h.cfg.n_retx_copies());
  EXPECT_EQ(h.out.size(), 10u);
}

TEST(LgEq2, RetxCopiesMatchesPaperExamples) {
  // §3.4: target 1e-8, actual 1e-4 -> N = 1.
  EXPECT_EQ(retx_copies(1e-4, 1e-8), 1);
  // §4.1: for loss rates 1e-5, 1e-4, 1e-3 -> copies 1, 1, 2.
  EXPECT_EQ(retx_copies(1e-5, 1e-8), 1);
  EXPECT_EQ(retx_copies(1e-3, 1e-8), 2);
  // Harsher: 1e-2 actual needs 3 copies for 1e-8.
  EXPECT_EQ(retx_copies(1e-2, 1e-8), 3);
  // Degenerate inputs clamp to 1 copy.
  EXPECT_EQ(retx_copies(0.0, 1e-8), 1);
  EXPECT_EQ(retx_copies(1e-4, 1e-2), 1);
}

}  // namespace
}  // namespace lgsim::lg
