// Integration tests for the experiment harnesses: these are scaled-down
// versions of the paper's experiments, checking the qualitative shape each
// figure relies on.
#include <gtest/gtest.h>

#include "harness/fct.h"
#include "harness/stress.h"
#include "harness/timeline.h"

namespace lgsim::harness {
namespace {

TEST(Stress, NoLossFullSpeed) {
  StressConfig c;
  c.loss_rate = 0.0;
  c.packets = 20'000;
  StressResult r = run_stress(c);
  EXPECT_EQ(r.forwarded, c.packets);
  EXPECT_EQ(r.effectively_lost, 0);
  // Only the 3-byte header (~0.2%) is lost to protocol overhead.
  EXPECT_GT(r.effective_speed_frac, 0.99);
  EXPECT_LT(r.effective_speed_frac, 1.01);
}

TEST(Stress, LossRecoveredAtLineRate) {
  StressConfig c;
  c.loss_rate = 1e-3;
  c.packets = 100'000;
  c.rate = gbps(100);
  StressResult r = run_stress(c);
  // The measured wire loss matches the configured rate.
  EXPECT_NEAR(r.actual_loss_rate, 1e-3, 4e-4);
  // Everything is recovered: zero (or vanishingly few) effective losses.
  EXPECT_LE(r.effectively_lost, 1);
  // Ordered mode at 100G / 1e-3 costs some effective link speed, but stays
  // above 85% (paper: ~92%).
  EXPECT_GT(r.effective_speed_frac, 0.85);
  EXPECT_LT(r.effective_speed_frac, 1.0);
  // Every loss got N=2 retransmission copies (Eq. 2 at 1e-3 -> 1e-8 target).
  EXPECT_EQ(r.retx_copies_sent, 2 * r.data_frames_lost);
  EXPECT_GT(r.retx_delay_us.count(), 50);
  EXPECT_LT(r.retx_delay_us.max(), 10.0);  // microseconds, sub-RTT
}

TEST(Stress, NonBlockingFasterThanOrdered) {
  StressConfig base;
  base.loss_rate = 1e-3;
  base.packets = 100'000;
  StressResult ordered = run_stress(base);
  StressConfig nb = base;
  nb.lg.preserve_order = false;
  StressResult r_nb = run_stress(nb);
  EXPECT_LE(r_nb.effectively_lost, 1);
  // LG_NB does not pause the link: higher effective speed than ordered LG.
  EXPECT_GT(r_nb.effective_speed_frac, ordered.effective_speed_frac - 0.005);
  EXPECT_GT(r_nb.effective_speed_frac, 0.97);
  // And it uses no RX reorder buffer at all.
  EXPECT_DOUBLE_EQ(r_nb.rx_buffer_bytes.max(), 0.0);
}

TEST(Stress, DisabledLgLosesPackets) {
  StressConfig c;
  c.loss_rate = 1e-3;
  c.packets = 50'000;
  c.enable_lg = false;
  StressResult r = run_stress(c);
  EXPECT_NEAR(r.effective_loss_rate, 1e-3, 5e-4);
}

TEST(Stress, RecirculationOverheadUnderOnePercent) {
  StressConfig c;
  c.loss_rate = 1e-3;
  c.packets = 50'000;
  StressResult r = run_stress(c);
  EXPECT_GT(r.recirc_overhead_tx_frac, 0.0);
  EXPECT_LT(r.recirc_overhead_tx_frac, 0.02);
  EXPECT_LT(r.recirc_overhead_rx_frac, 0.02);
}

TEST(Fct, NoLossBaselineTight) {
  FctConfig c;
  c.trials = 200;
  c.flow_bytes = 143;
  c.protection = Protection::kNoLoss;
  FctResult r = run_fct(c);
  EXPECT_EQ(r.trials_capped, 0);
  EXPECT_LT(r.p(99.9), 60.0);  // microseconds
  EXPECT_GT(r.p(50), 15.0);
}

TEST(Fct, LossInflatesTailByOrdersOfMagnitude) {
  FctConfig c;
  c.trials = 3000;
  c.flow_bytes = 143;
  c.loss_rate = 1e-2;  // higher rate so the tail shows with fewer trials
  c.protection = Protection::kLossOnly;
  FctResult r = run_fct(c);
  EXPECT_GT(r.trials_with_wire_loss, 10);
  // Median unaffected; 99.9th percentile in the milliseconds (RTO).
  EXPECT_LT(r.p(50), 60.0);
  EXPECT_GT(r.p(99.9), 900.0);
}

TEST(Fct, LinkGuardianRestoresNoLossTail) {
  FctConfig c;
  c.trials = 3000;
  c.flow_bytes = 143;
  c.loss_rate = 1e-2;
  c.protection = Protection::kLg;
  FctResult r = run_fct(c);
  EXPECT_GT(r.trials_with_wire_loss, 10);
  EXPECT_EQ(r.trials_with_rto, 0);
  EXPECT_LT(r.p(99.9), 70.0);  // indistinguishable from no loss
}

TEST(Fct, RdmaLossTailAndLgRecovery) {
  FctConfig c;
  c.transport = Transport::kRdmaWrite;
  c.trials = 2000;
  c.flow_bytes = 24'387;
  c.loss_rate = 1e-2;
  c.protection = Protection::kLossOnly;
  FctResult loss = run_fct(c);
  EXPECT_GT(loss.p(99.9), 900.0);

  c.protection = Protection::kLg;
  FctResult lg = run_fct(c);
  EXPECT_EQ(lg.trials_with_rto, 0);
  EXPECT_LT(lg.p(99.9), 100.0);
}

TEST(Fct, NbClassificationPopulatesGroups) {
  FctConfig c;
  c.trials = 4000;
  c.flow_bytes = 24'387;
  c.loss_rate = 1e-2;
  c.protection = Protection::kLgNb;
  FctResult r = run_fct(c);
  EXPECT_GT(r.classes.affected, 10);
  EXPECT_EQ(r.classes.affected, r.classes.group_a + r.classes.group_b +
                                    r.classes.group_c + r.classes.group_d);
}

TEST(Timeline, LgRestoresThroughputAfterCorruption) {
  TimelineConfig c;
  c.rate = gbps(25);
  c.loss_rate = 1e-3;
  c.mean_burst = 1.0;  // Fig. 9a: independent random corruption
  c.t_corruption = msec(60);
  c.t_lg = msec(140);
  c.t_end = msec(240);
  c.sample_period = msec(2);
  TimelineResult r = run_timeline(c);
  const double before = r.goodput_before();
  const double during = r.goodput_during_loss();
  const double after = r.goodput_with_lg();
  EXPECT_GT(before, 20.0);  // near line rate
  // Corruption visibly degrades DCTCP throughput (the textbook loss-rate
  // equilibrium; the paper's kernel stack collapsed even further).
  EXPECT_LT(during, before * 0.8);
  EXPECT_GT(after, before * 0.9);  // LinkGuardian restores it
}

TEST(Timeline, NoBackpressureOverflowsReorderBuffer) {
  // Fig. 9b: without pause/resume the reordering backlog grows to the
  // recovery-stall equilibrium (~ackNoTimeout x line rate) and overflows the
  // recirculation budget; the overflow drops surface as end-to-end
  // retransmissions. With backpressure the buffer is hard-capped at
  // pauseThreshold. Our recovery model bounds the unpaused backlog tighter
  // than the testbed (see EXPERIMENTS.md), so the budget is scaled
  // proportionally (20 KB, thresholds 12/15 KB) to exercise the overflow.
  TimelineConfig c;
  c.rate = gbps(25);
  c.loss_rate = 5e-3;
  c.mean_burst = 2.5;
  c.backpressure = false;
  c.recirc_budget_bytes = 20'000;
  c.resume_threshold_bytes = 12'000;
  c.t_corruption = msec(40);
  c.t_lg = msec(100);
  c.t_end = msec(400);
  c.sample_period = msec(4);
  TimelineResult no_bp = run_timeline(c);
  TimelineConfig c2 = c;
  c2.backpressure = true;
  TimelineResult with_bp = run_timeline(c2);

  EXPECT_GT(no_bp.reorder_drops, 0);
  EXPECT_EQ(with_bp.reorder_drops, 0);
  const double cap = 12'000 + 2.0 * kEthernetMtu + 3.0 * 1521;  // + in-flight
  EXPECT_LE(with_bp.rx_buffer_bytes.max_in(0, c.t_end), cap);
  EXPECT_GT(no_bp.e2e_retx_total, with_bp.e2e_retx_total);
}

}  // namespace
}  // namespace lgsim::harness
