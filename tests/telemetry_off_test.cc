// The telemetry_off contract (ISSUE 6 satellite): probes compiled in but
// *disabled* must be invisible — an oracle-fed lifecycle cell constructs no
// prober, draws no extra RNG, schedules no extra events and emits no extra
// trace records, so the pre-telemetry goldens (fig08_golden_j{1,4}) hold
// byte-for-byte. And when probes ARE enabled, the probe path itself must be
// allocation-free in steady state (the same bar the event kernel's hot path
// meets, measured by the same interposed global operator new that
// bench_micro uses — the one observer heap traffic cannot hide from).
//
// Standalone binary (not lg_add_test): it replaces the global allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "fault/lifecycle.h"
#include "net/loss_model.h"
#include "net/port.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "telemetry/estimator.h"
#include "telemetry/probe.h"

static std::atomic<std::uint64_t> g_heap_allocs{0};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace lgsim {
namespace {

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// RNG neutrality, component level: the exact Bernoulli loss pattern a
// traffic stream sees must be unchanged by a LinkProber that exists but is
// never started. A single extra (or re-ordered) RNG draw anywhere in the
// disabled path would shift which frames are lost and fail the comparison.
std::string loss_pattern(bool construct_idle_prober) {
  Simulator sim;
  Rng rng(42);
  net::EgressPort port(sim, "wire", gbps(25), /*prop_delay=*/0);
  const int q = port.add_queue({});
  net::BernoulliLoss loss(0.05, rng.split());
  port.set_loss_model(&loss);
  std::string pattern;
  std::int64_t delivered = 0;
  port.set_deliver([&](net::Packet&&) { ++delivered; });

  std::unique_ptr<telemetry::LinkProber> prober;
  if (construct_idle_prober) {
    // Constructed, wired, never started: the telemetry-off configuration.
    prober = std::make_unique<telemetry::LinkProber>(
        sim, telemetry::ProberConfig{},
        [&](net::Packet&& p) { port.enqueue(q, std::move(p)); });
  }

  for (int i = 0; i < 2000; ++i) {
    sim.schedule_at(i * usec(1), [&port, q] {
      net::Packet p;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    });
  }
  std::uint64_t events = sim.run();
  pattern += std::to_string(delivered);
  pattern += ":";
  pattern += std::to_string(port.counters().corrupted_frames);
  pattern += ":";
  pattern += std::to_string(events);
  return pattern;
}

TEST(TelemetryOff, IdleProberIsEventAndRngNeutral) {
  EXPECT_EQ(loss_pattern(false), loss_pattern(true));
}

TEST(TelemetryOff, OracleLifecycleConstructsNoProbeState) {
  fault::LifecycleConfig cfg;  // default feed is kOracle
  cfg.scenario = "onset";
  const fault::LifecycleResult r = fault::run_lifecycle(cfg);
  EXPECT_EQ(r.probes_sent, 0);
  EXPECT_EQ(r.probes_rx, 0);
  EXPECT_EQ(r.probes_suppressed, 0);
  EXPECT_FALSE(r.estimate_known);
  EXPECT_GE(r.engaged_at, 0);  // the oracle loop still works as before
}

TEST(TelemetryOn, ProbePathIsAllocationFreeInSteadyState) {
  Simulator sim;
  telemetry::EstimatorConfig ec;
  ec.tau = msec(2);
  ec.period = usec(10);
  ec.window = 256;
  telemetry::SeqWindowEstimator est(ec);  // slots sized here, once
  telemetry::ProberConfig pc;
  pc.period = usec(10);
  telemetry::LinkProber prober(
      sim, pc, [&](net::Packet&& p) {
        est.on_probe(p.probe.seq, p.probe.sent_at, sim.now());
      });
  prober.start();

  // Warm up past every one-time growth in the event kernel, then demand
  // zero heap traffic for the rest of the run: emit + track + estimate.
  // The warm-up must exercise the same shapes as the measured region — a
  // one-shot event firing next to the periodic chain (grows the slot free
  // list once) and a second run() segment (grows the queue once) — so the
  // warm-up fires a throwaway estimate probe and runs two segments.
  telemetry::LossEstimate warm;
  sim.schedule_at(msec(5),
                  [&] { warm = est.estimate(sim.now() - est.config().period); });
  sim.run(msec(8));
  sim.run(msec(10));
  telemetry::LossEstimate mid;
  sim.schedule_at(msec(50), [&] {
    // One period behind now: the tick at exactly `now` has not fired yet
    // (this check was scheduled first), and must not read as a lost probe.
    mid = est.estimate(sim.now() - est.config().period);
  });
  const std::uint64_t before = heap_allocs();
  sim.run(msec(100));
  const std::uint64_t after = heap_allocs();
  EXPECT_EQ(after - before, 0u)
      << "probe path allocated in steady state";
  EXPECT_TRUE(warm.known);
  EXPECT_TRUE(mid.known);
  EXPECT_EQ(mid.rate, 0.0);
  EXPECT_EQ(prober.sent(), 10'000);
}

}  // namespace
}  // namespace lgsim
