// Pins the LGSIM_TRACE_ENABLED=0 configuration: every probe compiles to
// nothing, interning returns the null actor, and instrumented components
// (EgressPort, Simulator) behave identically with tracing removed.
//
// Build note: this binary is compiled with LGSIM_TRACE_ENABLED=0 via a
// target-local definition, and it must link ONLY header-only libraries
// (lgsim_obs/net/sim/util + GTest). Linking any static library whose
// translation units saw LGSIM_TRACE_ENABLED=1 would be an ODR violation on
// obs' inline functions — the one-setting-per-binary rule from obs/trace.h.
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "net/port.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "sim/simulator.h"

#ifndef LGSIM_TRACE_ENABLED
#error "gate macro should be defined by obs/trace.h"
#endif
static_assert(LGSIM_TRACE_ENABLED == 0,
              "this test must be built with -DLGSIM_TRACE_ENABLED=0");
static_assert(!lgsim::obs::kTraceCompiledIn);

namespace lgsim {
namespace {

TEST(ObsCompiledOut, ProbesRecordNothingEvenWithSinkInstalled) {
  obs::TraceSink sink("dead");
  obs::SinkScope scope(&sink);
  // The scope sets the TLS slot, but the compiled-out accessors ignore it.
  EXPECT_EQ(obs::current_sink(), nullptr);
  EXPECT_EQ(obs::intern_actor("anyone"), 0u);
  obs::emit(1, obs::Cat::kPort, obs::Kind::kDrop, 1, 2, 3, 4);
  obs::emit_counter(2, obs::Cat::kSim, 1, 42);
  EXPECT_EQ(sink.ring().size(), 0u);
  EXPECT_EQ(sink.ring().total_pushed(), 0u);
}

TEST(ObsCompiledOut, PortDatapathUnaffected) {
  obs::TraceSink sink("dead");
  obs::SinkScope scope(&sink);

  Simulator sim;
  net::EgressPort port(sim, "p", gbps(100), 0);
  const int q = port.add_queue();
  std::int64_t delivered = 0;
  port.set_deliver([&](net::Packet&&) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    net::Packet p;
    p.frame_bytes = 1518;
    port.enqueue(q, std::move(p));
  }
  sim.run();
  EXPECT_EQ(delivered, 100);
  // Accounting still works (it is unconditional)...
  EXPECT_EQ(port.queue_counters(q).enq_frames, 100);
  EXPECT_EQ(port.queue_counters(q).deq_frames, 100);
  // ...but not a single trace record was produced.
  EXPECT_EQ(sink.ring().total_pushed(), 0u);
}

TEST(ObsCompiledOut, ExporterStillWorksOnManualRecords) {
  // The data structures themselves stay usable (the macro only removes the
  // inline probes), so offline tooling can still build and export traces.
  obs::TraceSink sink("manual", 4);
  sink.push(obs::TraceRecord{10, sink.intern("x"), obs::Cat::kSim,
                             obs::Kind::kPoll, 0, 1, 2});
  std::ostringstream os;
  obs::write_chrome_trace(os, std::vector<const obs::TraceSink*>{&sink});
  EXPECT_NE(os.str().find("\"name\":\"poll\""), std::string::npos);
}

}  // namespace
}  // namespace lgsim
