// Tests for the observability subsystem: metrics registry, trace ring,
// actor interning, the Chrome trace-event exporter (golden file — the byte
// stream is part of the determinism contract), and per-cell sink threading
// through the ParallelRunner. Suites are named Obs* so the tsan ctest preset
// (filter "Parallel|Obs") exercises the multi-threaded sink path under TSan.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/parallel.h"
#include "net/port.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace lgsim {
namespace {

static_assert(obs::kTraceCompiledIn,
              "default test build must have tracing compiled in");
static_assert(obs::kNumCats == 9, "category name table out of sync");
static_assert(obs::kNumKinds == 25, "kind name table out of sync");

// ---------------------------------------------------------------- metrics --

TEST(ObsMetrics, CounterGaugeDistributionSnapshot) {
  obs::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.counter("z.frames") = 7;
  m.counter("z.frames") += 3;
  m.gauge("a.rate") = 0.25;
  auto& d = m.distribution("q.depth");
  d.add(1.0);
  d.add(3.0);
  EXPECT_FALSE(m.empty());

  const auto snap = m.snapshot();
  // Sorted by name; the distribution expands into four derived entries.
  ASSERT_EQ(snap.size(), 6u);
  EXPECT_EQ(snap[0].first, "a.rate");
  EXPECT_DOUBLE_EQ(snap[0].second, 0.25);
  EXPECT_EQ(snap[1].first, "q.depth.count");
  EXPECT_DOUBLE_EQ(snap[1].second, 2.0);
  EXPECT_EQ(snap[2].first, "q.depth.max");
  EXPECT_DOUBLE_EQ(snap[2].second, 3.0);
  EXPECT_EQ(snap[3].first, "q.depth.mean");
  EXPECT_DOUBLE_EQ(snap[3].second, 2.0);
  EXPECT_EQ(snap[4].first, "q.depth.min");
  EXPECT_DOUBLE_EQ(snap[4].second, 1.0);
  EXPECT_EQ(snap[5].first, "z.frames");
  EXPECT_DOUBLE_EQ(snap[5].second, 10.0);
}

TEST(ObsMetrics, FormatValueIsDeterministic) {
  EXPECT_EQ(obs::MetricsRegistry::format_value(3.0), "3");
  EXPECT_EQ(obs::MetricsRegistry::format_value(-42.0), "-42");
  EXPECT_EQ(obs::MetricsRegistry::format_value(0.5), "0.5");
  EXPECT_EQ(obs::MetricsRegistry::format_value(1e18), "1e+18");
}

TEST(ObsMetrics, JsonAndCsvGolden) {
  obs::MetricsRegistry m;
  m.counter("b.count") = 12;
  m.gauge("a.frac") = 0.5;

  std::ostringstream js;
  m.write_json(js);
  EXPECT_EQ(js.str(), R"({"a.frac":0.5,"b.count":12})");

  std::ostringstream csv;
  m.write_csv(csv);
  EXPECT_EQ(csv.str(), "metric,value\na.frac,0.5\nb.count,12\n");
}

// ------------------------------------------------------------------- ring --

TEST(ObsRing, WraparoundEvictsOldestWithoutCorruption) {
  constexpr std::size_t kCap = 8;
  obs::TraceRing ring(kCap);
  for (std::int64_t i = 0; i < 3 * static_cast<std::int64_t>(kCap); ++i) {
    ring.push(obs::TraceRecord{/*ts=*/i, /*actor=*/1, obs::Cat::kPort,
                               obs::Kind::kEnqueue,
                               /*aux=*/static_cast<std::uint16_t>(i), i,
                               2 * i});
  }
  EXPECT_EQ(ring.capacity(), kCap);
  EXPECT_EQ(ring.size(), kCap);
  EXPECT_EQ(ring.total_pushed(), 3 * kCap);
  EXPECT_EQ(ring.evicted(), 2 * kCap);
  // Newest kCap records retained, oldest-first, every field intact.
  for (std::size_t i = 0; i < kCap; ++i) {
    const auto expect = static_cast<std::int64_t>(2 * kCap + i);
    const obs::TraceRecord& r = ring.at(i);
    EXPECT_EQ(r.ts, expect);
    EXPECT_EQ(r.a, expect);
    EXPECT_EQ(r.b, 2 * expect);
    EXPECT_EQ(r.aux, static_cast<std::uint16_t>(expect));
    EXPECT_EQ(r.actor, 1u);
  }
}

TEST(ObsRing, PartiallyFilledKeepsEverything) {
  obs::TraceRing ring(16);
  for (std::int64_t i = 0; i < 5; ++i)
    ring.push(obs::TraceRecord{i, 0, obs::Cat::kSim, obs::Kind::kPoll, 0, i, 0});
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.evicted(), 0u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(ring.at(i).a, static_cast<std::int64_t>(i));
}

// ------------------------------------------------------------ sink + emit --

TEST(ObsSink, InterningIsStableAndDense) {
  obs::TraceSink sink("s");
  const auto a = sink.intern("port0");
  const auto b = sink.intern("port1");
  EXPECT_EQ(a, 1u);  // id 0 reserved for "unknown"
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(sink.intern("port0"), a);
  EXPECT_EQ(sink.actor_name(a), "port0");
  EXPECT_EQ(sink.actor_name(0), "");
  EXPECT_EQ(sink.actor_name(99), "");  // out of range folds to unknown
}

TEST(ObsSink, EmitIsNoOpWithoutSinkAndRoutesWithScope) {
  EXPECT_EQ(obs::current_sink(), nullptr);
  EXPECT_EQ(obs::intern_actor("nobody"), 0u);
  obs::emit(1, obs::Cat::kLg, obs::Kind::kRetx, 1, 2, 3);  // must not crash

  obs::TraceSink sink("run");
  {
    obs::SinkScope scope(&sink);
    EXPECT_EQ(obs::current_sink(), &sink);
    const auto actor = obs::intern_actor("lg/snd");
    EXPECT_EQ(actor, 1u);
    obs::emit(10, obs::Cat::kLg, obs::Kind::kRetx, actor, 5, 6, 7);
    obs::emit_counter(20, obs::Cat::kSim, actor, 42);
  }
  EXPECT_EQ(obs::current_sink(), nullptr);
  ASSERT_EQ(sink.ring().size(), 2u);
  EXPECT_EQ(sink.ring().at(0).kind, obs::Kind::kRetx);
  EXPECT_EQ(sink.ring().at(0).aux, 7);
  EXPECT_EQ(sink.ring().at(1).kind, obs::Kind::kCounter);
  EXPECT_EQ(sink.ring().at(1).a, 42);
}

TEST(ObsSink, ScopesNestAndRestore) {
  obs::TraceSink outer("outer"), inner("inner");
  obs::SinkScope a(&outer);
  {
    obs::SinkScope b(&inner);
    EXPECT_EQ(obs::current_sink(), &inner);
  }
  EXPECT_EQ(obs::current_sink(), &outer);
}

// --------------------------------------------------------- chrome exporter --

TEST(ObsChromeTrace, GoldenExport) {
  obs::TraceSink sink("golden", 4);
  {
    obs::SinkScope scope(&sink);
    const auto port = obs::intern_actor("portA");
    const auto series = obs::intern_actor("series.q");
    obs::emit(1500, obs::Cat::kPort, obs::Kind::kEnqueue, port, 1518, 7);
    obs::emit_counter(2000, obs::Cat::kSim, series, 42);
  }
  sink.metrics().counter("x.frames") = 3;
  sink.metrics().gauge("y.rate") = 0.5;

  std::ostringstream os;
  obs::write_chrome_trace(os, std::vector<const obs::TraceSink*>{&sink});

  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"golden\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"portA\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"series.q\"}},\n"
      "{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":1.500,\"s\":\"t\",\"cat\":\"port\",\"name\":\"enqueue\",\"args\":{\"a\":1518,\"b\":7,\"aux\":0}},\n"
      "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":2.000,\"cat\":\"sim\",\"name\":\"series.q\",\"args\":{\"value\":42}}\n"
      "],\"metrics\":[\n"
      "{\"pid\":0,\"label\":\"golden\",\"evicted_records\":0,\"values\":{\"x.frames\":3,\"y.rate\":0.5}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ObsChromeTrace, EscapesAndSkipsNullSinksKeepingPids) {
  obs::TraceSink sink("we\"ird\\label", 4);
  std::ostringstream os;
  obs::write_chrome_trace(
      os, std::vector<const obs::TraceSink*>{nullptr, &sink});
  const std::string s = os.str();
  EXPECT_NE(s.find("\"pid\":1"), std::string::npos);
  EXPECT_EQ(s.find("\"pid\":0,"), std::string::npos);
  EXPECT_NE(s.find("we\\\"ird\\\\label"), std::string::npos);
}

TEST(ObsChromeTrace, BalancedBracesOutsideStrings) {
  // Structural sanity on a non-trivial export: every brace/bracket outside a
  // JSON string literal must balance (a cheap stand-in for full parsing).
  obs::TraceCollector col(8);
  obs::TraceSink* sink = col.make_sink("cell");
  {
    obs::SinkScope scope(sink);
    const auto a = obs::intern_actor("x");
    for (int i = 0; i < 20; ++i)  // force wraparound in the export too
      obs::emit(i, obs::Cat::kLg, obs::Kind::kAck, a, i, -i);
  }
  sink->metrics().counter("c") = 1;
  std::ostringstream os;
  obs::write_chrome_trace(os, col);
  const std::string s = os.str();
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(s.find("\"evicted_records\":12"), std::string::npos);
}

// -------------------------------------------------------------- collector --

TEST(ObsCollector, InstallUninstallAndSinkOrder) {
  EXPECT_EQ(obs::TraceCollector::active(), nullptr);
  {
    obs::TraceCollector col(16);
    col.install();
    EXPECT_EQ(obs::TraceCollector::active(), &col);
    obs::TraceSink* a = col.make_sink("a");
    obs::TraceSink* b = col.make_sink("b");
    ASSERT_EQ(col.sink_count(), 2u);
    EXPECT_EQ(&col.sink(0), a);  // creation order == export order
    EXPECT_EQ(&col.sink(1), b);
    EXPECT_EQ(col.ring_capacity(), 16u);
    col.uninstall();
    EXPECT_EQ(obs::TraceCollector::active(), nullptr);
    col.install();  // destructor must clear the active slot
  }
  EXPECT_EQ(obs::TraceCollector::active(), nullptr);
}

// ------------------------------------------- parallel per-cell determinism --

std::string export_grid_with_jobs(unsigned jobs) {
  obs::TraceCollector col(64);
  col.install();
  harness::ParallelRunner<int, std::int64_t> runner(
      [](const int& cfg) {
        const std::uint32_t actor = obs::intern_actor("cell-actor");
        std::int64_t acc = 0;
        for (int i = 0; i < 50; ++i) {
          obs::emit(static_cast<SimTime>(i) * 10, obs::Cat::kSim,
                    obs::Kind::kPoll, actor, cfg, i);
          acc += cfg + i;
        }
        if (obs::TraceSink* s = obs::current_sink())
          s->metrics().counter("cell.acc") = acc;
        return acc;
      },
      jobs);
  for (int c = 0; c < 8; ++c) runner.add(1000 + static_cast<unsigned>(c), c);
  const auto rows = runner.run_in_grid_order();
  EXPECT_EQ(rows.size(), 8u);
  col.uninstall();
  std::ostringstream os;
  obs::write_chrome_trace(os, col);
  return os.str();
}

TEST(ObsParallelTrace, ExportBytesIdenticalForAnyJobCount) {
  const std::string serial = export_grid_with_jobs(1);
  const std::string parallel = export_grid_with_jobs(4);
  EXPECT_EQ(serial, parallel);
  // One sink per cell, labelled in grid-submission order.
  EXPECT_NE(serial.find("cell 0 seed=1000"), std::string::npos);
  EXPECT_NE(serial.find("cell 7 seed=1007"), std::string::npos);
  EXPECT_NE(serial.find("\"cell.acc\":"), std::string::npos);
}

TEST(ObsParallelTrace, UntracedRunsAllocateNoSinks) {
  ASSERT_EQ(obs::TraceCollector::active(), nullptr);
  harness::ParallelRunner<int, int> runner(
      [](const int& cfg) {
        EXPECT_EQ(obs::current_sink(), nullptr);
        return cfg * 2;
      },
      2);
  for (int c = 0; c < 4; ++c) runner.add(1, c);
  const auto rows = runner.run_in_grid_order();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[3], 6);
}

}  // namespace
}  // namespace lgsim
