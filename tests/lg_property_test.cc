// Property-based tests of the LinkGuardian protocol under randomized loss
// patterns, traffic shapes and configurations (parameterized sweeps).
//
// The invariants, for every random scenario:
//  (I1) exactly-once: every injected packet is delivered at most once, and
//       every packet not counted as effectively lost is delivered;
//  (I2) ordering: in ordered mode the delivered uid sequence is strictly
//       increasing (NB mode may reorder but never duplicates);
//  (I3) accounting: recovered + effectively_lost == reported_lost when the
//       run quiesces, and the Tx buffer drains to empty;
//  (I4) loss ceiling: with N retransmission copies, the effective loss
//       count is consistent with losing original + all copies.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "lg/link.h"
#include "lg/seqno.h"
#include "net/loss_model.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace lgsim::lg {
namespace {

struct Scenario {
  double loss_rate;
  double mean_burst;
  bool preserve_order;
  BitRate rate;
};

class LgRandomized : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LgRandomized, InvariantsHoldUnderRandomLoss) {
  const int seed = std::get<0>(GetParam());
  const int variant = std::get<1>(GetParam());

  const Scenario scenarios[] = {
      {1e-2, 1.0, true, gbps(100)},  {1e-2, 1.0, false, gbps(100)},
      {3e-2, 2.0, true, gbps(100)},  {3e-2, 2.0, false, gbps(100)},
      {1e-3, 1.5, true, gbps(25)},   {5e-2, 3.0, true, gbps(100)},
  };
  const Scenario sc = scenarios[variant % 6];

  Simulator sim;
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);

  LinkSpec spec;
  spec.rate = sc.rate;
  LgConfig cfg;
  cfg.preserve_order = sc.preserve_order;
  cfg.actual_loss_rate = sc.loss_rate;
  cfg.jitter_seed = static_cast<std::uint64_t>(seed) + 5;
  ProtectedLink link(sim, spec, cfg);
  link.set_loss_model(std::make_unique<net::GilbertElliottLoss>(
      net::GilbertElliottLoss::for_rate(sc.loss_rate, sc.mean_burst),
      rng.split()));

  std::vector<int> delivered_count;
  std::vector<std::uint64_t> order;
  link.set_forward_sink([&](net::Packet&& p) {
    ASSERT_LT(p.uid, delivered_count.size());
    ++delivered_count[p.uid];
    order.push_back(p.uid);
  });
  link.enable_lg();

  // Random traffic: bursts of random length separated by random idle gaps
  // (exercises both gap detection and dummy-packet tail detection).
  const int n_pkts = 3'000;
  delivered_count.assign(n_pkts, 0);
  SimTime t = 0;
  const SimTime ser = serialization_time(1538, sc.rate);
  int sent = 0;
  Rng traffic = rng.split();
  while (sent < n_pkts) {
    const int burst = 1 + static_cast<int>(traffic.uniform_int(40));
    for (int b = 0; b < burst && sent < n_pkts; ++b) {
      sim.schedule_at(t, [&link, sent] {
        net::Packet p;
        p.kind = net::PktKind::kData;
        p.frame_bytes = 1518;
        p.uid = static_cast<std::uint64_t>(sent);
        link.send_forward(std::move(p));
      });
      t += ser;
      ++sent;
    }
    t += static_cast<SimTime>(traffic.uniform_int(30'000));  // idle gap
  }
  sim.run();

  const auto& rs = link.receiver().stats();
  const auto& ss = link.sender().stats();

  // (I1) exactly-once.
  std::int64_t delivered = 0;
  for (int c : delivered_count) {
    EXPECT_LE(c, 1) << "duplicate delivery";
    delivered += c;
  }
  EXPECT_EQ(delivered + rs.effectively_lost, n_pkts);

  // (I2) ordering.
  if (sc.preserve_order) {
    for (std::size_t i = 1; i < order.size(); ++i) {
      ASSERT_GT(order[i], order[i - 1]) << "ordered mode reordered packets";
    }
  }

  // (I3) accounting.
  EXPECT_EQ(rs.recovered + rs.effectively_lost, rs.reported_lost);
  EXPECT_EQ(link.sender().tx_buffer_pkts(), 0) << "Tx buffer leaked";
  EXPECT_EQ(link.receiver().reorder_buffer_bytes(), 0) << "Rx buffer leaked";
  EXPECT_EQ(ss.protected_sent, n_pkts);

  // (I4) effective losses need original + copies lost (or register overflow
  // on >5-wide bursts): bounded by total corrupted frames over copies+1.
  if (rs.effectively_lost > 0) {
    EXPECT_GE(link.forward_port().counters().corrupted_frames,
              rs.effectively_lost);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, LgRandomized,
    ::testing::Combine(::testing::Range(1, 9),      // seeds
                       ::testing::Range(0, 6)),     // scenario variants
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_var" +
             std::to_string(std::get<1>(info.param));
    });

// Property: era-wraparound under random loss. Streams cross the 16-bit
// boundary several times; invariants must be identical to the small case.
class LgWrapAround : public ::testing::TestWithParam<int> {};

TEST_P(LgWrapAround, ExactlyOnceAcrossEras) {
  const int seed = GetParam();
  Simulator sim;
  LinkSpec spec;
  spec.rate = gbps(100);
  spec.normal_queue_bytes = 64'000'000;
  LgConfig cfg;
  cfg.actual_loss_rate = 1e-3;
  ProtectedLink link(sim, spec, cfg);
  link.set_loss_model(
      std::make_unique<net::BernoulliLoss>(1e-3, Rng(seed * 31 + 7)));

  std::int64_t delivered = 0;
  std::uint64_t last_uid = 0;
  bool ordered = true;
  link.set_forward_sink([&](net::Packet&& p) {
    if (delivered > 0 && p.uid <= last_uid) ordered = false;
    last_uid = p.uid;
    ++delivered;
  });
  link.enable_lg();

  const int n = 150'000;  // > 2 eras with 64-byte frames
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = 64;
    p.uid = static_cast<std::uint64_t>(i + 1);
    link.send_forward(std::move(p));
  }
  sim.run();

  const auto& rs = link.receiver().stats();
  EXPECT_EQ(delivered + rs.effectively_lost, n);
  EXPECT_TRUE(ordered);
  EXPECT_EQ(rs.recovered + rs.effectively_lost, rs.reported_lost);
  // At 1e-3 with 2 copies, nearly everything recovers.
  EXPECT_GT(rs.recovered, 100);
  EXPECT_LT(rs.effectively_lost, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LgWrapAround, ::testing::Range(1, 5));

// Property: the receiver's reordering buffer stays correct across >= 2 full
// 16-bit sequence-number wraps (4+ era toggles) under bursty random loss.
// Stronger than ExactlyOnceAcrossEras above: it tracks per-uid delivery
// counts, so a duplicate release from the reordering buffer is caught even
// if the stream stays monotone, and it uses a harsh Gilbert-Elliott process
// so recoveries keep the buffer occupied while the era flips.
class LgWrapAroundReorderBuffer : public ::testing::TestWithParam<int> {};

TEST_P(LgWrapAroundReorderBuffer, NeverReleasesOutOfOrderOrDuplicate) {
  const int seed = GetParam();
  Simulator sim;
  LinkSpec spec;
  spec.rate = gbps(100);
  spec.normal_queue_bytes = 64'000'000;
  LgConfig cfg;
  cfg.preserve_order = true;
  cfg.actual_loss_rate = 1e-2;
  cfg.jitter_seed = static_cast<std::uint64_t>(seed) * 131 + 3;
  ProtectedLink link(sim, spec, cfg);
  link.set_loss_model(std::make_unique<net::GilbertElliottLoss>(
      net::GilbertElliottLoss::for_rate(1e-2, 2.0),
      Rng(static_cast<std::uint64_t>(seed) * 6151 + 11)));

  // > 2 full wraps of the 16-bit sequence space.
  const int n = 2 * static_cast<int>(kSeqSpace) + 9'000;
  std::vector<std::uint8_t> delivered_count(n, 0);
  std::int64_t delivered = 0;
  std::uint64_t last_uid = 0;
  std::int64_t out_of_order = 0;
  std::int64_t duplicates = 0;
  link.set_forward_sink([&](net::Packet&& p) {
    ASSERT_LT(p.uid - 1, delivered_count.size());
    if (delivered > 0 && p.uid <= last_uid) ++out_of_order;
    if (++delivered_count[p.uid - 1] > 1) ++duplicates;
    last_uid = p.uid;
    ++delivered;
  });
  link.enable_lg();

  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = 64;
    p.uid = static_cast<std::uint64_t>(i + 1);
    link.send_forward(std::move(p));
  }
  sim.run();

  const auto& ss = link.sender().stats();
  const auto& rs = link.receiver().stats();
  ASSERT_EQ(ss.protected_sent, n);
  ASSERT_GT(ss.protected_sent, 2 * static_cast<std::int64_t>(kSeqSpace))
      << "stream too short to cross two full eras";

  EXPECT_EQ(duplicates, 0) << "reordering buffer released a duplicate";
  EXPECT_EQ(out_of_order, 0) << "reordering buffer released out of order";
  EXPECT_EQ(delivered + rs.effectively_lost, n);
  EXPECT_EQ(rs.recovered + rs.effectively_lost, rs.reported_lost);
  EXPECT_EQ(link.receiver().reorder_buffer_bytes(), 0) << "Rx buffer leaked";
  // At 1% loss the protocol must be doing real recovery work across the
  // wraps, not coasting through a loss-free run.
  EXPECT_GT(rs.recovered, 500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LgWrapAroundReorderBuffer, ::testing::Range(1, 4));

// Property: the Eq. 2 loss-ceiling holds empirically. Run at a harsh loss
// rate where effective losses are measurable and compare the measured
// effective rate against the analytic actual^(N+1) within sampling noise.
class LgLossCeiling : public ::testing::TestWithParam<double> {};

TEST_P(LgLossCeiling, EffectiveLossTracksAnalytic) {
  const double loss = GetParam();
  Simulator sim;
  LinkSpec spec;
  spec.rate = gbps(100);
  spec.normal_queue_bytes = 256'000'000;  // whole run enqueued at t=0
  LgConfig cfg;
  cfg.actual_loss_rate = loss;
  cfg.target_loss_rate = 1e-4;  // modest target -> small N, measurable misses
  ProtectedLink link(sim, spec, cfg);
  link.set_loss_model(std::make_unique<net::BernoulliLoss>(loss, Rng(77)));
  std::int64_t delivered = 0;
  link.set_forward_sink([&](net::Packet&&) { ++delivered; });
  link.enable_lg();

  const int n = 400'000;
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = 256;
    p.uid = static_cast<std::uint64_t>(i);
    link.send_forward(std::move(p));
  }
  sim.run();

  const auto& rs = link.receiver().stats();
  const int ncopies = cfg.n_retx_copies();
  const double analytic = std::pow(loss, ncopies + 1);
  const double measured =
      static_cast<double>(rs.effectively_lost) / static_cast<double>(n);
  // Within 3 standard deviations of the binomial expectation (loosened for
  // burst effects at the reTxReqs register limit).
  const double sigma = std::sqrt(analytic / n);
  EXPECT_LE(measured, analytic + 4 * sigma + 2.0 / n);
  EXPECT_EQ(delivered + rs.effectively_lost, n);
}

INSTANTIATE_TEST_SUITE_P(Rates, LgLossCeiling, ::testing::Values(3e-2, 1e-2));

}  // namespace
}  // namespace lgsim::lg
