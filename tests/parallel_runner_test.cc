// Tests for the thread-pool replication runner (harness/parallel.h).
//
// The load-bearing property is determinism: the same {seed, config} grid run
// with 1 worker and N workers must produce bit-identical merged rows — the
// formatted strings a bench binary would print — and repeated N-worker runs
// must agree with each other (catches scheduling-dependent merges). A
// ThreadSanitizer build of this same file runs in the tier-1 ctest pass
// (parallel_runner_tsan_test) so data races in the runner fail the build.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/fct.h"
#include "harness/parallel.h"
#include "harness/stress.h"
#include "sim/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace lgsim::harness {
namespace {

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i);
  const auto out = parallel_map(
      items, [](int x, std::size_t) { return x * x; }, 4);
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SingleWorkerMatchesMultiWorker) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 40; ++s) seeds.push_back(s * 7919);
  const auto draw = [](std::uint64_t seed, std::size_t) {
    Rng rng(seed);
    std::uint64_t acc = 0;
    for (int i = 0; i < 1000; ++i) acc ^= rng.next_u64();
    return acc;
  };
  const auto serial = parallel_map(seeds, draw, 1);
  const auto parallel = parallel_map(seeds, draw, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelRunner, SortsMergedResultsOnSeedThenConfigIndex) {
  // Seeds deliberately submitted out of order; run() must sort on
  // (seed, config index) while run_in_grid_order() restores submission order.
  ParallelRunner<std::uint64_t, std::uint64_t> runner(
      [](const std::uint64_t& s) { return s * 10; }, 4);
  const std::uint64_t seeds[] = {5, 1, 3, 1, 2};
  for (std::uint64_t s : seeds) runner.add(s, s);

  const auto sorted = runner.run();
  ASSERT_EQ(sorted.size(), 5u);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_TRUE(sorted[i - 1].key < sorted[i].key ||
                sorted[i - 1].key == sorted[i].key);
  }
  // Duplicate seed 1 appears twice, ordered by config index.
  EXPECT_EQ(sorted[0].key.seed, 1u);
  EXPECT_EQ(sorted[0].key.config_index, 1u);
  EXPECT_EQ(sorted[1].key.seed, 1u);
  EXPECT_EQ(sorted[1].key.config_index, 3u);

  const auto in_order = runner.run_in_grid_order();
  ASSERT_EQ(in_order.size(), 5u);
  for (std::size_t i = 0; i < in_order.size(); ++i) {
    EXPECT_EQ(in_order[i], seeds[i] * 10);
  }
}

TEST(ParallelRunner, AllTasksRunExactlyOnce) {
  std::atomic<int> calls{0};
  ParallelRunner<int, int> runner(
      [&calls](const int& x) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return x + 1;
      },
      8);
  for (int i = 0; i < 200; ++i) runner.add(static_cast<std::uint64_t>(i), i);
  const auto out = runner.run_in_grid_order();
  EXPECT_EQ(calls.load(), 200);
  ASSERT_EQ(out.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ParallelRunner, ExceptionInWorkerPropagates) {
  ParallelRunner<int, int> runner(
      [](const int& x) {
        if (x == 13) throw std::runtime_error("boom");
        return x;
      },
      4);
  for (int i = 0; i < 32; ++i) runner.add(static_cast<std::uint64_t>(i), i);
  EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(BenchJobs, EnvOverridesAndRejectsGarbage) {
  // bench_jobs() reads LGSIM_BENCH_JOBS once per call; exercise the parser
  // through the environment to pin the contract.
  setenv("LGSIM_BENCH_JOBS", "3", 1);
  EXPECT_EQ(bench_jobs(), 3u);
  setenv("LGSIM_BENCH_JOBS", "0", 1);
  EXPECT_GE(bench_jobs(), 1u);  // falls back to hardware_concurrency
  setenv("LGSIM_BENCH_JOBS", "nan", 1);
  EXPECT_GE(bench_jobs(), 1u);
  unsetenv("LGSIM_BENCH_JOBS");
  EXPECT_GE(bench_jobs(), 1u);
}

// ---------------------------------------------------------------------------
// Differential tests: serial vs parallel merged rows must be bit-identical.
// ---------------------------------------------------------------------------

// Formats the fields a bench binary prints from a stress run, so "rows" here
// means the same bytes that would reach stdout.
std::string stress_row(const StressResult& r) {
  return TablePrinter::sci(r.actual_loss_rate) + "|" +
         TablePrinter::sci(r.effective_loss_rate) + "|" +
         TablePrinter::fmt(100.0 * r.effective_speed_frac, 2) + "|" +
         std::to_string(r.forwarded) + "|" +
         std::to_string(r.data_frames_lost) + "|" +
         std::to_string(r.timeouts) + "|" +
         std::to_string(r.retx_copies_sent) + "|" +
         TablePrinter::fmt(r.tx_buffer_bytes.percentile(99), 3) + "|" +
         TablePrinter::fmt(r.retx_delay_us.percentile(50), 3);
}

std::vector<StressConfig> stress_grid() {
  std::vector<StressConfig> grid;
  for (double loss : {1e-3, 1e-2}) {
    for (bool nb : {false, true}) {
      StressConfig c;
      c.rate = gbps(25);
      c.loss_rate = loss;
      c.lg.preserve_order = !nb;
      c.packets = 20'000;
      c.seed = 91 + static_cast<std::uint64_t>(loss * 1e4) + (nb ? 1 : 0);
      grid.push_back(c);
    }
  }
  return grid;
}

std::vector<std::string> run_stress_rows(unsigned jobs) {
  ParallelRunner<StressConfig, StressResult> runner(
      [](const StressConfig& c) { return run_stress(c); }, jobs);
  for (const StressConfig& c : stress_grid()) runner.add(c.seed, c);
  std::vector<std::string> rows;
  for (const StressResult& r : runner.run_in_grid_order()) {
    rows.push_back(stress_row(r));
  }
  return rows;
}

TEST(ParallelDifferential, StressRowsIdenticalAcrossWorkerCounts) {
  const auto serial = run_stress_rows(1);
  const auto parallel = run_stress_rows(4);
  EXPECT_EQ(serial, parallel);
  // Second parallel run: catches scheduling nondeterminism (e.g. results
  // merged in completion order instead of key order).
  const auto parallel2 = run_stress_rows(4);
  EXPECT_EQ(parallel, parallel2);
}

std::string fct_row(const FctResult& r) {
  return TablePrinter::fmt(r.p(50), 1) + "|" + TablePrinter::fmt(r.p(99), 1) +
         "|" + TablePrinter::fmt(r.p(99.9), 1) + "|" +
         TablePrinter::fmt(r.fct_us.max(), 1) + "|" +
         std::to_string(r.trials_with_wire_loss) + "|" +
         std::to_string(r.trials_with_e2e_retx) + "|" +
         std::to_string(r.trials_with_rto);
}

std::vector<std::string> run_fct_rows(unsigned jobs) {
  ParallelRunner<FctConfig, FctResult> runner(
      [](const FctConfig& c) { return run_fct(c); }, jobs);
  for (Protection pr : {Protection::kNoLoss, Protection::kLg,
                        Protection::kLgNb, Protection::kLossOnly}) {
    FctConfig c;
    c.transport = Transport::kDctcp;
    c.protection = pr;
    c.flow_bytes = 143;
    c.trials = 250;
    c.loss_rate = 5e-3;  // harsh so that losses actually land in 250 trials
    c.rate = gbps(100);
    c.seed = 700 + static_cast<std::uint64_t>(pr);
    runner.add(c.seed, c);
  }
  std::vector<std::string> rows;
  for (const FctResult& r : runner.run_in_grid_order()) {
    rows.push_back(fct_row(r));
  }
  return rows;
}

TEST(ParallelDifferential, FctPercentileRowsIdenticalAcrossWorkerCounts) {
  const auto serial = run_fct_rows(1);
  const auto parallel = run_fct_rows(4);
  EXPECT_EQ(serial, parallel);
  const auto parallel2 = run_fct_rows(4);
  EXPECT_EQ(parallel, parallel2);
}

// Loss-bucket histogram sweep (the Table-1 pattern): chunked sampling with
// per-chunk Rngs, merged through the mergeable CountHistogram.
std::vector<std::int64_t> run_bucket_counts(unsigned jobs) {
  struct Chunk {
    std::uint64_t seed;
    std::int64_t samples;
  };
  ParallelRunner<Chunk, CountHistogram> runner(
      [](const Chunk& ch) {
        Rng rng(ch.seed);
        CountHistogram h;
        for (std::int64_t i = 0; i < ch.samples; ++i) {
          // Log-uniform loss rate in [1e-8, 1e-1), bucketed by decade.
          const double r = rng.uniform(-8.0, -1.0);
          h.add(static_cast<std::int64_t>(-r));
        }
        return h;
      },
      jobs);
  Rng base(4242);
  for (int k = 0; k < 16; ++k) {
    const std::uint64_t seed = base.next_u64();
    runner.add(seed, Chunk{seed, 5'000});
  }
  CountHistogram merged;
  for (const CountHistogram& h : runner.run_in_grid_order()) merged.merge(h);
  std::vector<std::int64_t> counts;
  for (std::int64_t b = 0; b <= merged.max_value(); ++b) {
    counts.push_back(merged.count_at(b));
  }
  return counts;
}

TEST(ParallelDifferential, LossBucketCountsIdenticalAcrossWorkerCounts) {
  const auto serial = run_bucket_counts(1);
  const auto parallel = run_bucket_counts(3);
  EXPECT_EQ(serial, parallel);
  const auto parallel2 = run_bucket_counts(3);
  EXPECT_EQ(parallel, parallel2);
}

// run_stress_grid / run_fct_grid (the bench entry points) must agree with
// element-wise serial calls of the underlying runner.
TEST(ParallelDifferential, GridEntryPointsMatchSerialCalls) {
  const auto grid = stress_grid();
  const auto parallel = run_stress_grid(grid);
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(stress_row(run_stress(grid[i])), stress_row(parallel[i]));
  }
}

}  // namespace
}  // namespace lgsim::harness
