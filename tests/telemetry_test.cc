// Test battery for the probe-based loss telemetry subsystem (src/telemetry):
//
//  - property tests of SeqWindowEstimator against a brute-force reference
//    under random loss / reorder / duplication, including 16-bit seqno
//    wraparound and window-boundary eviction;
//  - estimate age / decay / monotone-counter invariants;
//  - LinkProber datapath: probes traverse a real ProtectedLink (LG on and
//    off) and the probe-stall fault hook freezes the sequence;
//  - the differential oracle-vs-estimator run over the full fault-scenario
//    catalogue: identical eventual protection decisions, bounded extra
//    detection latency, zero missed detections;
//  - grid determinism: estimator-fed cells reproduce exactly through
//    harness::ParallelRunner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "fault/lifecycle.h"
#include "fault/scenarios.h"
#include "lg/link.h"
#include "net/loss_model.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "telemetry/drops.h"
#include "telemetry/estimator.h"
#include "telemetry/probe.h"

namespace lgsim::telemetry {
namespace {

// ------------------------------------------------------------- estimator --

// Brute-force reference: the literal definition of the estimate, computed
// from a flat log of every delivered (virtual seq, sent_at) pair.
struct Reference {
  struct Rx {
    std::int64_t virt;
    SimTime sent_at;
  };
  std::vector<Rx> log;
  SimTime last_rx_at = -1;

  void deliver(std::int64_t virt, SimTime sent_at, SimTime now) {
    for (const Rx& r : log)
      if (r.virt == virt) return;  // duplicate
    log.push_back({virt, sent_at});
    last_rx_at = now;
  }

  std::int64_t samples_in(SimTime after, SimTime upto,
                          std::int64_t slots) const {
    // Only the newest `slots` distinct seqs are remembered by the real
    // estimator; older ones were evicted by slot collision.
    std::int64_t max_virt = -1;
    for (const Rx& r : log) max_virt = std::max(max_virt, r.virt);
    std::int64_t n = 0;
    for (const Rx& r : log) {
      if (r.virt <= max_virt - slots) continue;  // evicted by wraparound
      if (r.sent_at > after && r.sent_at <= upto) ++n;
    }
    return n;
  }
};

struct StreamParams {
  double loss;
  double reorder;    // probability a delivery is delayed behind the next
  double duplicate;  // probability a delivered probe arrives twice
};

class EstimatorRandomized
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EstimatorRandomized, MatchesBruteForceUnderLossReorderDuplication) {
  const int seed = std::get<0>(GetParam());
  const int variant = std::get<1>(GetParam());
  const StreamParams params[] = {
      {0.0, 0.0, 0.0},  {0.01, 0.0, 0.0},  {0.2, 0.0, 0.0},
      {0.01, 0.1, 0.0}, {0.01, 0.0, 0.1},  {0.1, 0.2, 0.2},
  };
  const StreamParams pr = params[variant % 6];

  EstimatorConfig cfg;
  cfg.tau = usec(500);
  cfg.period = usec(10);
  cfg.window = 64;  // tau/period = 50 in-window probes, slots = 64
  SeqWindowEstimator est(cfg);
  Reference ref;

  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 6364136223846793005ULL +
                      1442695040888963407ULL);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  // Start the virtual sequence near the 16-bit wrap so every variant also
  // exercises wraparound: virt 0 maps to wire seq 65500.
  const std::uint16_t wire_base = 65500;
  const SimTime path_delay = usec(1);

  struct Pending {
    std::int64_t virt;
    SimTime sent_at;
    SimTime rx_at;
    int copies;
  };
  std::vector<Pending> arrivals;
  const std::int64_t n_probes = 3000;  // ~46 wire-seq wraps past 65535
  for (std::int64_t v = 0; v < n_probes; ++v) {
    const SimTime sent = (v + 1) * cfg.period;  // prober fires at period, 2p..
    if (u(rng) < pr.loss) continue;
    SimTime rx = sent + path_delay;
    if (u(rng) < pr.reorder) rx += cfg.period;  // lands behind the next probe
    const int copies = u(rng) < pr.duplicate ? 2 : 1;
    arrivals.push_back({v, sent, rx, copies});
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.rx_at < b.rx_at;
                   });

  SimTime now = 0;
  std::int64_t checked = 0;
  for (const Pending& a : arrivals) {
    now = a.rx_at;
    const auto wire =
        static_cast<std::uint16_t>(wire_base + static_cast<std::uint16_t>(a.virt));
    for (int c = 0; c < a.copies; ++c) est.on_probe(wire, a.sent_at, now);
    ref.deliver(a.virt, a.sent_at, now);

    const LossEstimate e = est.estimate(now);
    ASSERT_TRUE(est.schedule_known());
    // The recovered origin is exact: sent_at - virt*period == period... but
    // the estimator unwraps from wire_base, so its virt is offset by a
    // constant — the schedule (tick times) is identical either way.
    const std::int64_t want_samples =
        ref.samples_in(now - cfg.tau, now, est.window_slots());
    EXPECT_EQ(e.samples, want_samples) << "virt=" << a.virt << " now=" << now;
    EXPECT_LE(e.samples, e.expected);
    EXPECT_GE(e.rate, 0.0);
    EXPECT_LE(e.rate, 1.0);
    EXPECT_EQ(e.age, 0) << "age must be zero at the receive instant";
    if (e.known) {
      const double want_rate =
          1.0 - static_cast<double>(want_samples) /
                    static_cast<double>(e.expected);
      EXPECT_NEAR(e.rate, std::clamp(want_rate, 0.0, 1.0), 1e-12);
    }
    ++checked;
  }
  ASSERT_GT(checked, 1000);
  // `received` counts distinct probes only; duplicate copies land in the
  // duplicates counter instead.
  EXPECT_EQ(est.received(), static_cast<std::int64_t>(arrivals.size()));
  if (pr.duplicate > 0.0) {
    EXPECT_GT(est.duplicates(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, EstimatorRandomized,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      std::ostringstream os;
      os << "seed" << std::get<0>(info.param) << "_variant"
         << std::get<1>(info.param);
      return os.str();
    });

TEST(Estimator, UnknownBeforeFirstProbeAndZeroExpected) {
  SeqWindowEstimator est({msec(1), usec(10), 128});
  const LossEstimate e = est.estimate(msec(5));
  EXPECT_FALSE(e.known);
  EXPECT_EQ(e.samples, 0);
  EXPECT_EQ(e.expected, 0);
  EXPECT_EQ(e.age, -1);
  EXPECT_EQ(est.cum_expected(msec(5)), 0);
  EXPECT_EQ(est.cum_received(), 0);
}

TEST(Estimator, ExactCountsOnCleanPeriodicStream) {
  EstimatorConfig cfg{msec(1), usec(10), 128};  // 100 probes per tau
  SeqWindowEstimator est(cfg);
  for (std::int64_t v = 0; v < 500; ++v)
    est.on_probe(static_cast<std::uint16_t>(v), (v + 1) * cfg.period,
                 (v + 1) * cfg.period);
  const SimTime now = 500 * cfg.period;
  const LossEstimate e = est.estimate(now);
  ASSERT_TRUE(e.known);
  // Window (now - tau, now] covers ticks 401..500: exactly 100 emissions,
  // all received.
  EXPECT_EQ(e.expected, 100);
  EXPECT_EQ(e.samples, 100);
  EXPECT_EQ(e.rate, 0.0);
  // Cumulative: every emission tick up to now, all received.
  EXPECT_EQ(est.cum_expected(now), 500);
  EXPECT_EQ(est.cum_received(), 500);
}

TEST(Estimator, DeterministicPatternLossIsExact) {
  // Every 10th probe lost -> the windowed rate is exactly 0.1 once the
  // window is full (convergence is deterministic, not statistical).
  EstimatorConfig cfg{msec(1), usec(10), 128};
  SeqWindowEstimator est(cfg);
  for (std::int64_t v = 0; v < 1000; ++v) {
    if (v % 10 == 9) continue;
    est.on_probe(static_cast<std::uint16_t>(v), (v + 1) * cfg.period,
                 (v + 1) * cfg.period);
  }
  const SimTime now = 1000 * cfg.period;
  const LossEstimate e = est.estimate(now);
  ASSERT_TRUE(e.known);
  EXPECT_EQ(e.expected, 100);
  EXPECT_EQ(e.samples, 90);
  EXPECT_NEAR(e.rate, 0.1, 1e-12);
}

TEST(Estimator, AgeGrowsAndWindowDecaysAfterSilence) {
  EstimatorConfig cfg{msec(1), usec(10), 128};
  SeqWindowEstimator est(cfg);
  for (std::int64_t v = 0; v < 200; ++v)
    est.on_probe(static_cast<std::uint16_t>(v), (v + 1) * cfg.period,
                 (v + 1) * cfg.period);
  const SimTime last = 200 * cfg.period;

  // Silence (total loss): age advances linearly, samples decay to zero as
  // the window slides past the last receipt, and the rate climbs to 1.
  SimTime prev_age = -1;
  std::int64_t prev_samples = 1 << 30;
  for (SimTime now = last; now <= last + 3 * cfg.tau; now += cfg.tau / 4) {
    const LossEstimate e = est.estimate(now);
    EXPECT_EQ(e.age, now - last);
    EXPECT_GT(e.age, prev_age);
    prev_age = e.age;
    EXPECT_LE(e.samples, prev_samples) << "samples must decay monotonically";
    prev_samples = e.samples;
    ASSERT_TRUE(e.known);  // the schedule still expects emissions
  }
  const LossEstimate end = est.estimate(last + 3 * cfg.tau);
  EXPECT_EQ(end.samples, 0);
  EXPECT_NEAR(end.rate, 1.0, 1e-12);
}

TEST(Estimator, SeqWrapAtWindowBoundary) {
  // The window straddles the 65535 -> 0 wrap exactly: unwrapping must keep
  // counting as if the sequence were 64-bit.
  EstimatorConfig cfg{msec(1), usec(10), 128};
  SeqWindowEstimator est(cfg);
  const std::int64_t start = 65536 - 50;  // 50 pre-wrap, then wrapped seqs
  for (std::int64_t v = start; v < start + 100; ++v)
    est.on_probe(static_cast<std::uint16_t>(v),
                 (v - start + 1) * cfg.period, (v - start + 1) * cfg.period);
  const SimTime now = 100 * cfg.period;
  const LossEstimate e = est.estimate(now);
  ASSERT_TRUE(e.known);
  EXPECT_EQ(e.expected, 100);
  EXPECT_EQ(e.samples, 100) << "wrap must not lose or double-count probes";
  EXPECT_EQ(e.rate, 0.0);
  EXPECT_EQ(est.received(), 100);
  EXPECT_EQ(est.duplicates(), 0);
}

TEST(Estimator, CumulativeCountersStayMonotoneAcrossSenderStall) {
  // Sender stalls: seq freezes while time runs, so on resume the recovered
  // origin jumps forward. The cumulative counters must never move backwards
  // (corruptd computes deltas from them) and ok must never exceed all.
  EstimatorConfig cfg{msec(1), usec(10), 128};
  SeqWindowEstimator est(cfg);
  std::int64_t v = 0;  // like the prober: seq 0 goes out at t = period
  SimTime t = 0;
  std::int64_t prev_exp = 0;
  auto step = [&](int probes) {
    for (int i = 0; i < probes; ++i) {
      t += cfg.period;
      est.on_probe(static_cast<std::uint16_t>(v), t, t);
      ++v;
      const std::int64_t exp = est.cum_expected(t);
      EXPECT_GE(exp, prev_exp) << "cum_expected went backwards";
      prev_exp = exp;
      EXPECT_LE(est.cum_received(), exp);
    }
  };
  step(300);
  t += msec(2);  // stall: 200 silent periods, seq frozen
  step(300);
  // The stall window contributed nothing: expected counts only real
  // emissions (600), not the 200 silent ticks.
  EXPECT_EQ(est.cum_received(), 600);
  EXPECT_EQ(est.cum_expected(t), 600);
}

// ----------------------------------------------------------- probe + link --

TEST(LinkProber, ProbesTraverseProtectedLinkAndBypassLg) {
  Simulator sim;
  lg::LinkSpec spec;
  spec.rate = gbps(25);
  lg::ProtectedLink link(sim, spec, lg::LgConfig{});

  ProberConfig pc;
  pc.period = usec(10);
  LinkProber prober(sim, pc,
                    [&](net::Packet&& p) { link.send_forward(std::move(p)); });

  EstimatorConfig ec{msec(1), pc.period, 256};
  SeqWindowEstimator est(ec);
  std::int64_t probe_rx = 0;
  link.set_forward_sink([&](net::Packet&& p) {
    if (p.kind != net::PktKind::kProbe) return;
    ASSERT_TRUE(p.probe.valid);
    est.on_probe(p.probe.seq, p.probe.sent_at, sim.now());
    ++probe_rx;
  });

  prober.start();
  sim.schedule_at(msec(1), [&] { link.enable_lg(); });  // probes unaffected
  sim.run(msec(3));

  EXPECT_EQ(prober.sent(), 300);  // fires at 10us..3000us (run is inclusive)
  // Lossless link: everything not still in flight at the cutoff arrived,
  // whether LG was enabled or not (probes are never protected).
  EXPECT_GE(probe_rx, prober.sent() - 2);
  // The windowed estimate extrapolates expectations from the schedule, so
  // evaluate behind a small guard to keep the last in-flight probe from
  // being misread as lost. (The lifecycle counter feed needs no guard: its
  // cumulative counters use sequence-gap accounting instead.)
  const LossEstimate e = est.estimate(sim.now() - usec(50));
  ASSERT_TRUE(e.known);
  EXPECT_EQ(e.rate, 0.0);
}

TEST(LinkProber, StallFreezesSequenceAndSuppressedCountsFires) {
  Simulator sim;
  std::vector<std::uint16_t> seqs;
  ProberConfig pc;
  pc.period = usec(10);
  LinkProber prober(sim, pc,
                    [&](net::Packet&& p) { seqs.push_back(p.probe.seq); });
  prober.start();
  sim.schedule_at(msec(1), [&] { prober.set_stalled(true); });
  sim.schedule_at(msec(2), [&] { prober.set_stalled(false); });
  sim.run(msec(3));

  EXPECT_EQ(prober.suppressed(), 100);  // fires at 1.00ms..1.99ms swallowed
  ASSERT_FALSE(seqs.empty());
  // Sequence continues where it froze: no gap injected by the stall itself.
  for (std::size_t i = 1; i < seqs.size(); ++i)
    EXPECT_EQ(seqs[i], static_cast<std::uint16_t>(seqs[i - 1] + 1));
}

TEST(DropAggregation, SeparatesCongestionFromWireLoss) {
  Simulator sim;
  Rng rng(7);
  net::EgressPort port(sim, "agg", gbps(25), /*prop_delay=*/0);
  const int q = port.add_queue({.byte_limit = 1518 * 10});
  net::BernoulliLoss loss(0.5, rng.split());
  port.set_loss_model(&loss);
  std::int64_t arrived = 0;
  port.set_deliver([&](net::Packet&&) { ++arrived; });

  auto frame = [] {
    net::Packet p;
    p.frame_bytes = 1518;
    return p;
  };
  // Burst at t=0: 100 frames into a 10-frame queue -> known tail drops.
  for (int i = 0; i < 100; ++i) port.enqueue(q, frame());
  // Then paced injection against an idle queue -> zero congestion drops,
  // pure wire loss at the Bernoulli rate.
  for (int i = 0; i < 1000; ++i)
    sim.schedule_at(usec(100) + i * usec(1), [&, q] { port.enqueue(q, frame()); });
  sim.run(msec(10));

  const DropReport r = aggregate_drops(port);
  EXPECT_GT(r.congestion_drops, 0);         // the burst tail
  EXPECT_GT(r.wire_corrupted, 0);           // the Bernoulli losses
  EXPECT_EQ(r.delivered, arrived);
  EXPECT_EQ(r.enq_frames, 1100 - r.congestion_drops);
  EXPECT_EQ(r.deq_frames, r.delivered + r.wire_corrupted);
  EXPECT_EQ(r.in_flight(), 0);              // fully drained
  EXPECT_NEAR(r.wire_loss_rate(), 0.5, 0.07);
}

// ------------------------------------------------- differential catalogue --

fault::LifecycleConfig estimator_cfg(const std::string& scenario,
                                     std::uint64_t seed) {
  fault::LifecycleConfig cfg;
  cfg.scenario = scenario;
  cfg.seed = seed;
  cfg.feed = fault::CounterFeed::kEstimator;
  return cfg;
}

TEST(Differential, OracleAndEstimatorAgreeOnEveryCatalogueScenario) {
  for (const std::string& name : fault::scenario_names()) {
    SCOPED_TRACE(name);
    fault::LifecycleConfig oracle;
    oracle.scenario = name;
    oracle.seed = 1;
    const fault::LifecycleResult o = fault::run_lifecycle(oracle);
    const fault::LifecycleResult e =
        fault::run_lifecycle(estimator_cfg(name, 1));

    // Zero missed detections: every scenario the oracle catches, the
    // estimator catches too.
    ASSERT_GE(o.engaged_at, 0) << "oracle missed " << name;
    ASSERT_GE(e.engaged_at, 0) << "estimator missed " << name;

    // No false activation: nothing engages before corruption starts.
    EXPECT_GE(o.engaged_at, o.onset_at);
    EXPECT_GE(e.engaged_at, e.onset_at);

    // Identical eventual protection decision, allowing bounded extra
    // detection latency for the estimator (probe sampling + the
    // probe-outage blind window are the slow cases).
    EXPECT_EQ(o.lg_enabled_at_end || o.final_mode != monitor::LgMode::kOff,
              e.lg_enabled_at_end || e.final_mode != monitor::LgMode::kOff);
    ASSERT_GE(o.detected_at, 0);
    ASSERT_GE(e.detected_at, 0);
    EXPECT_LE(e.detected_at - o.detected_at, msec(40))
        << "estimator detection lagged the oracle unreasonably";

    // Telemetry bookkeeping only exists on the estimator side.
    EXPECT_EQ(o.probes_sent, 0);
    EXPECT_GT(e.probes_sent, 0);
    EXPECT_GT(e.probes_rx, 0);
    EXPECT_LE(e.probes_rx, e.probes_sent);
    if (name == "probe-outage") {
      EXPECT_GT(e.probes_suppressed, 0) << "stall hook never fired";
      // Detection is blind until the probe stream resumes at 45 ms.
      EXPECT_GE(e.detected_at, msec(45));
    }

    // Convergence: with protection engaged the wire keeps corrupting
    // probes, so the estimator's view stays in the right decade for
    // steady-rate scenarios.
    if (name == "onset") {
      ASSERT_TRUE(e.estimate_known);
      EXPECT_GT(e.estimate_rate, 5e-5);
      EXPECT_LT(e.estimate_rate, 1e-2);
    }
  }
}

TEST(Differential, EstimatorGridIsDeterministicThroughParallelRunner) {
  std::vector<fault::LifecycleConfig> grid;
  for (std::uint64_t seed : {1ULL, 2ULL}) {
    grid.push_back(estimator_cfg("onset", seed));
    grid.push_back(estimator_cfg("probe-outage", seed));
  }
  auto fingerprint = [](const std::vector<fault::LifecycleResult>& rows) {
    std::ostringstream os;
    for (const auto& r : rows) {
      os << r.scenario << ":" << r.seed << ":" << r.detected_at << ":"
         << r.engaged_at << ":" << r.offered << ":" << r.delivered << ":"
         << r.lost_total << ":" << r.probes_sent << ":" << r.probes_rx << ":"
         << r.probes_suppressed << ":" << r.estimate_rate << ":"
         << r.notifications << ";";
    }
    return os.str();
  };
  const auto a = fault::run_lifecycle_grid(grid);
  const auto b = fault::run_lifecycle_grid(grid);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace lgsim::telemetry
