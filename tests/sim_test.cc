#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace lgsim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, StableOrderAtSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_in(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelIsIdempotentAndSafeOnZero) {
  Simulator sim;
  sim.cancel(0);  // no-op
  const auto id = sim.schedule_at(10, [] {});
  sim.cancel(id);
  sim.cancel(id);
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoOpForLaterEvents) {
  // Ids are never reused, so cancelling an id that already fired must not
  // suppress any event scheduled afterwards (lazy deletion keeps the stale
  // id around; it can never match).
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_at(10, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.cancel(id);  // stale: the event already executed
  for (int i = 0; i < 5; ++i) sim.schedule_at(20 + i, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 6);
}

TEST(Simulator, CancelTwiceOnFiredIdStaysNoOp) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_at(5, [&] { ++fired; });
  sim.run();
  sim.cancel(id);
  sim.cancel(id);  // double-cancel of a fired id: still a no-op
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(11, [&] { ++fired; });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelFromEventAtSameTimestampHitsLaterScheduledOnly) {
  // The (time, sequence) contract: events at the same timestamp run in
  // schedule order. A callback can therefore cancel a same-timestamp event
  // scheduled after itself...
  Simulator sim;
  std::vector<int> order;
  Simulator::EventId victim = 0;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.cancel(victim);
  });
  victim = sim.schedule_at(10, [&] { order.push_back(2); });
  sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, CancelOfEarlierEventAtSameTimestampIsTooLate) {
  // ...but cancelling a same-timestamp event scheduled *before* the running
  // one is a no-op: by the sequence ordering it has already fired.
  Simulator sim;
  std::vector<int> order;
  const auto first = sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(10, [&] {
    order.push_back(2);
    sim.cancel(first);  // too late; no effect now or later
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, InterleavedCancelAndScheduleAtSameTimestamp) {
  // A callback that cancels one pending event and schedules a replacement at
  // the very same timestamp: the replacement runs (after all events already
  // queued at that timestamp), the cancelled one does not.
  Simulator sim;
  std::vector<int> order;
  Simulator::EventId stale = 0;
  sim.schedule_at(10, [&] {
    order.push_back(1);
    sim.cancel(stale);
    sim.schedule_at(10, [&] { order.push_back(4); });  // runs last: higher seq
  });
  stale = sim.schedule_at(10, [&] { order.push_back(2); });
  sim.schedule_at(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 4);
}

TEST(Simulator, CountersTrackEventLoopInternals) {
  Simulator sim;
  int fired = 0;
  const auto a = sim.schedule_at(10, [&] { ++fired; });
  const auto b = sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.cancel(b);
  sim.run();
  EXPECT_EQ(fired, 2);

  const Simulator::Counters c = sim.counters();
  EXPECT_EQ(c.scheduled, 3u);
  EXPECT_EQ(c.executed, 2u);
  EXPECT_EQ(c.cancel_requests, 1u);
  EXPECT_EQ(c.cancelled_skipped, 1u);  // the cancelled event drained lazily
  EXPECT_EQ(c.peak_heap_depth, 3u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);

  // A stale cancel (the event already fired) can never drain: it stays in
  // the lazy-deletion backlog and counts as a request but never as skipped.
  sim.cancel(a);
  EXPECT_EQ(sim.cancel_backlog(), 1u);
  EXPECT_EQ(sim.counters().cancel_requests, 2u);
  EXPECT_EQ(sim.counters().cancelled_skipped, 1u);

  obs::MetricsRegistry m;
  sim.export_metrics(m);
  EXPECT_EQ(m.counter("sim.events_scheduled"), 3);
  EXPECT_EQ(m.counter("sim.events_executed"), 2);
  EXPECT_EQ(m.counter("sim.cancel_requests"), 2);
  EXPECT_EQ(m.counter("sim.cancelled_skipped"), 1);
  EXPECT_EQ(m.counter("sim.peak_heap_depth"), 3);
  EXPECT_EQ(m.counter("sim.cancel_backlog"), 1);
  EXPECT_EQ(m.counter("sim.pending"), 0);
}

TEST(Simulator, PeakHeapDepthTracksHighWaterMark) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.counters().peak_heap_depth, 5u);
  sim.run();
  // Re-scheduling fewer events later must not lower the recorded peak.
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_EQ(sim.counters().peak_heap_depth, 5u);
  EXPECT_EQ(sim.counters().scheduled, 6u);
  EXPECT_EQ(sim.counters().executed, 6u);
}

TEST(PeriodicTask, FiresAtPeriodUntilStopped) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 10, [&](SimTime t) { fires.push_back(t); });
  task.start(0);
  sim.schedule_at(35, [&] { task.stop(); });
  sim.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{0, 10, 20, 30}));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(11);
  const double p = 0.001;
  const int n = 2'000'000;
  int hits = 0;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(p)) ++hits;
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, p, p * 0.15);  // within 15% relative
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(13);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-1.0));
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng r(19);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);  // mean of Weibull(1, s) = s
}

TEST(Rng, UniformIntBounds) {
  Rng r(23);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.uniform_int(7), 7u);
  }
  // All values reachable.
  bool seen[7] = {};
  for (int i = 0; i < 1'000; ++i) seen[r.uniform_int(7)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, SplitIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should not equal the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace lgsim
