#include <gtest/gtest.h>

#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timeseries.h"
#include "util/units.h"

namespace lgsim {
namespace {

TEST(Units, SerializationTime) {
  // 1538 B on wire at 100G = 123.04 ns -> rounded up to 124.
  EXPECT_EQ(serialization_time(kMtuFrameOnWire, gbps(100)), 124);
  // At 25G: 492.16 -> 493.
  EXPECT_EQ(serialization_time(kMtuFrameOnWire, gbps(25)), 493);
  // At 10G: 1230.4 -> 1231.
  EXPECT_EQ(serialization_time(kMtuFrameOnWire, gbps(10)), 1231);
  // 64 B + 20 B overhead at 100G = 6.72 -> 7.
  EXPECT_EQ(serialization_time(84, gbps(100)), 7);
}

TEST(Units, TimeConversions) {
  EXPECT_EQ(usec(7), 7'000);
  EXPECT_EQ(msec(1), 1'000'000);
  EXPECT_EQ(sec(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_usec(7'500), 7.5);
  EXPECT_DOUBLE_EQ(to_sec(sec(3)), 3.0);
}

TEST(Units, BytesInTime) {
  // 100G for 1 us = 12500 bytes.
  EXPECT_EQ(bytes_in_time(usec(1), gbps(100)), 12'500);
  EXPECT_EQ(bytes_in_time(usec(1), gbps(25)), 3'125);
}

TEST(RunningStats, Basic) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(PercentileTracker, PercentilesInterpolate) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
  EXPECT_NEAR(t.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(t.percentile(99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 100.0);
}

TEST(PercentileTracker, CdfAt) {
  PercentileTracker t;
  for (int i = 1; i <= 10; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.cdf_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(t.cdf_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.cdf_at(10.0), 1.0);
}

TEST(PercentileTracker, EmptyIsSafe) {
  PercentileTracker t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(PercentileTracker, AddAfterQueryResorts) {
  PercentileTracker t;
  t.add(10.0);
  EXPECT_DOUBLE_EQ(t.percentile(50), 10.0);
  t.add(0.0);
  EXPECT_DOUBLE_EQ(t.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 10.0);
}

TEST(CountHistogram, BasicCounts) {
  CountHistogram h;
  h.add(1);
  h.add(1);
  h.add(3);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.count_at(1), 2);
  EXPECT_EQ(h.count_at(2), 0);
  EXPECT_EQ(h.count_at(3), 1);
  EXPECT_EQ(h.max_value(), 3);
  EXPECT_DOUBLE_EQ(h.cdf_at(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(3), 1.0);
}

TEST(TimeSeries, WindowQueries) {
  TimeSeries ts;
  ts.record(10, 1.0);
  ts.record(20, 3.0);
  ts.record(30, 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(0, 25), 2.0);
  EXPECT_DOUBLE_EQ(ts.max_in(0, 100), 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(100, 200), 0.0);
}

TEST(RateMeter, ComputesGbps) {
  RateMeter m(usec(1));
  // 12500 bytes in 1 us at a steady clip = 100 Gbps.
  m.on_bytes(0, 6250);
  m.on_bytes(nsec(500), 6250);
  m.on_bytes(usec(1), 1250);  // next window
  m.finish(usec(2));
  ASSERT_GE(m.series().size(), 2u);
  EXPECT_DOUBLE_EQ(m.series().samples()[0].value, 100.0);
  EXPECT_DOUBLE_EQ(m.series().samples()[1].value, 10.0);
}

TEST(EnvParse, PositiveDoubleAcceptsNormalValues) {
  EXPECT_DOUBLE_EQ(parse_positive_double("0.1", 1.0), 0.1);
  EXPECT_DOUBLE_EQ(parse_positive_double("10", 1.0), 10.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("2.5e-1", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(parse_positive_double("3 ", 1.0), 3.0);  // trailing space ok
}

TEST(EnvParse, PositiveDoubleRejectsNanAndInf) {
  // std::atof would let these straight into loop bounds (LGSIM_BENCH_SCALE);
  // the parser must fall back instead.
  EXPECT_DOUBLE_EQ(parse_positive_double("nan", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("NaN", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("inf", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("-inf", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("Infinity", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("1e999", 1.0), 1.0);  // overflows to inf
}

TEST(EnvParse, PositiveDoubleRejectsGarbageZeroAndNegative) {
  EXPECT_DOUBLE_EQ(parse_positive_double(nullptr, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("fast", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("0", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("-2", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(parse_positive_double("1.5x", 1.0), 1.0);  // trailing junk
}

TEST(EnvParse, PositiveCount) {
  EXPECT_EQ(parse_positive_count("8", 4), 8u);
  EXPECT_EQ(parse_positive_count("1", 4), 1u);
  EXPECT_EQ(parse_positive_count(nullptr, 4), 4u);
  EXPECT_EQ(parse_positive_count("0", 4), 4u);
  EXPECT_EQ(parse_positive_count("-3", 4), 4u);
  EXPECT_EQ(parse_positive_count("many", 4), 4u);
  EXPECT_EQ(parse_positive_count("7.5", 4), 4u);      // trailing junk
  EXPECT_EQ(parse_positive_count("999999", 4), 1024u);  // capped
}

TEST(RunningStats, MergeMatchesSingleAccumulator) {
  RunningStats all, a, b;
  for (int i = 1; i <= 10; ++i) {
    all.add(i);
    (i <= 4 ? a : b).add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
}

TEST(PercentileTracker, MergeIsOrderIndependent) {
  PercentileTracker all, a, b;
  for (int i = 1; i <= 100; ++i) {
    all.add(i);
    (i % 3 == 0 ? a : b).add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p));
  }
  EXPECT_DOUBLE_EQ(a.cdf_at(50.0), all.cdf_at(50.0));
}

TEST(PercentileTracker, MergeAfterQueryResorts) {
  PercentileTracker a, b;
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.percentile(50), 5.0);  // forces sort
  b.add(1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(a.percentile(100), 5.0);
}

TEST(CountHistogram, MergeSumsBins) {
  CountHistogram a, b;
  a.add(1);
  a.add(3);
  b.add(3);
  b.add(7, 2);
  a.merge(b);
  EXPECT_EQ(a.total(), 5);
  EXPECT_EQ(a.count_at(1), 1);
  EXPECT_EQ(a.count_at(3), 2);
  EXPECT_EQ(a.count_at(7), 2);
  EXPECT_EQ(a.max_value(), 7);
  // Merging the longer histogram into the shorter grew the bins; the other
  // direction must give the same result.
  CountHistogram c, d;
  c.add(7, 2);
  d.add(1);
  c.merge(d);
  EXPECT_EQ(c.total(), 3);
  EXPECT_EQ(c.count_at(1), 1);
  EXPECT_EQ(c.max_value(), 7);
}

TEST(TimeSeries, MergeKeepsTimeOrder) {
  TimeSeries a, b;
  a.record(10, 1.0);
  a.record(30, 3.0);
  b.record(20, 2.0);
  b.record(30, 4.0);
  a.merge(b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.samples()[0].time, 10);
  EXPECT_EQ(a.samples()[1].time, 20);
  EXPECT_EQ(a.samples()[2].time, 30);
  EXPECT_DOUBLE_EQ(a.samples()[2].value, 3.0);  // ties: this series first
  EXPECT_DOUBLE_EQ(a.samples()[3].value, 4.0);
  EXPECT_DOUBLE_EQ(a.mean_in(0, 25), 1.5);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::sci(0.00123, 1), "1.2e-03");
}

}  // namespace
}  // namespace lgsim
