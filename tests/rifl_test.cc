#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"
#include "rifl/rifl.h"
#include "sim/simulator.h"

namespace lgsim::rifl {
namespace {

/// Loses every frame inside [from, to) — a hard outage window.
class WindowLoss final : public net::LossModel {
 public:
  WindowLoss(SimTime from, SimTime to) : from_(from), to_(to) {}
  bool lose(SimTime now, const net::Packet&) override {
    return now >= from_ && now < to_;
  }

 private:
  SimTime from_, to_;
};

struct Harvest {
  std::vector<std::uint64_t> uids;
  bool ordered = true;
  bool duplicate = false;
};

/// Sends `n` uid-stamped frames through a RiflLink over the given loss
/// process and collects the delivered uid stream.
Harvest drive(RiflLink& link, Simulator& sim, int n,
              std::int32_t frame_bytes = 256) {
  Harvest h;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  link.set_sink([&](net::Packet&& p) {
    if (!h.uids.empty() && p.uid <= h.uids.back()) h.ordered = false;
    if (seen[static_cast<std::size_t>(p.uid)]) h.duplicate = true;
    seen[static_cast<std::size_t>(p.uid)] = true;
    h.uids.push_back(p.uid);
  });
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.frame_bytes = frame_bytes;
    p.uid = static_cast<std::uint64_t>(i);
    link.send(p);
  }
  sim.run(sec(30));
  return h;
}

TEST(RiflParams, Efficiency) {
  EXPECT_DOUBLE_EQ(RiflParams{}.efficiency(), 240.0 / 256.0);
  EXPECT_DOUBLE_EQ((RiflParams{.frame_bits = 128, .meta_bits = 32}).efficiency(),
                   0.75);
}

// Brute-force reference under i.i.d. loss: with max_tx = 16 the residual is
// p^16 ~ 1e-16 at p = 0.1, so the reference expectation is simply "every
// offered frame is delivered, exactly once, in offer order".
TEST(RiflLink, ExactlyOnceInOrderUnderBernoulli) {
  Simulator sim;
  RiflLink link(sim, RiflParams{}, gbps(10), nsec(100));
  link.set_loss_model(std::make_unique<net::BernoulliLoss>(0.1, Rng(7)));

  const int n = 20'000;
  const Harvest h = drive(link, sim, n);

  EXPECT_TRUE(h.ordered);
  EXPECT_FALSE(h.duplicate);
  EXPECT_EQ(static_cast<int>(h.uids.size()), n);
  EXPECT_EQ(link.counters().offered, n);
  EXPECT_EQ(link.counters().delivered, n);
  EXPECT_EQ(link.counters().failed, 0);
  EXPECT_GT(link.counters().retx_tx, n / 20);  // ~10% of frames needed retries
  EXPECT_EQ(link.tx_buffered(), 0);            // buffer fully acknowledged
}

TEST(RiflLink, ExactlyOnceInOrderUnderGilbertElliott) {
  Simulator sim;
  RiflLink link(sim, RiflParams{}, gbps(10), nsec(100));
  link.set_loss_model(std::make_unique<net::GilbertElliottLoss>(
      net::GilbertElliottLoss::for_rate(0.05, 4.0), Rng(11)));

  const int n = 20'000;
  const Harvest h = drive(link, sim, n);

  // Bursts can outlive the retry budget, so give-ups are legal — but every
  // offered frame must be accounted for and the delivered stream must stay
  // strictly ordered and duplicate-free.
  EXPECT_TRUE(h.ordered);
  EXPECT_FALSE(h.duplicate);
  EXPECT_EQ(link.counters().delivered + link.counters().failed,
            link.counters().offered);
  EXPECT_EQ(static_cast<std::int64_t>(h.uids.size()),
            link.counters().delivered);
  EXPECT_GT(link.counters().delivered, n * 9 / 10);
}

TEST(RiflLink, OutageExhaustsRetriesAndSkips) {
  Simulator sim;
  RiflLink link(sim, RiflParams{}, gbps(10), nsec(100));
  // Total loss for 200 us in the middle of the stream: frames caught in the
  // window burn all max_tx attempts (16 x 2 us < 200 us) and are skipped;
  // the stream must keep flowing in order around them.
  link.set_loss_model(std::make_unique<WindowLoss>(usec(100), usec(300)));

  const int n = 2'000;
  const Harvest h = drive(link, sim, n);

  EXPECT_TRUE(h.ordered);
  EXPECT_FALSE(h.duplicate);
  EXPECT_GT(link.counters().failed, 0);
  EXPECT_EQ(link.counters().skips, link.counters().failed);
  EXPECT_EQ(link.counters().delivered + link.counters().failed, n);
  EXPECT_EQ(static_cast<std::int64_t>(h.uids.size()),
            link.counters().delivered);
  // Frames before and after the outage window survive.
  EXPECT_EQ(h.uids.front(), 0u);
  EXPECT_EQ(h.uids.back(), static_cast<std::uint64_t>(n - 1));
}

TEST(RiflLink, SeqWraparoundPastSixteenBits) {
  Simulator sim;
  RiflLink link(sim, RiflParams{}, gbps(25), nsec(50));
  link.set_loss_model(std::make_unique<net::BernoulliLoss>(0.01, Rng(3)));

  const int n = 70'000;  // > 65536: every 16-bit sequence number reused
  const Harvest h = drive(link, sim, n, /*frame_bytes=*/64);

  EXPECT_TRUE(h.ordered);
  EXPECT_FALSE(h.duplicate);
  EXPECT_EQ(static_cast<int>(h.uids.size()), n);
  EXPECT_EQ(link.counters().failed, 0);
}

TEST(RiflLossModel, ResidualMatchesRetryAnalytic) {
  // A frame is lost iff all max_tx attempts are corrupted: p^max_tx.
  const RiflParams params{.max_tx = 4};
  RiflLossModel model(params,
                      std::make_unique<net::BernoulliLoss>(0.5, Rng(9)));
  net::Packet p;
  const int n = 500'000;
  int lost = 0;
  for (int i = 0; i < n; ++i)
    if (model.lose(0, p)) ++lost;
  const double measured = static_cast<double>(lost) / n;
  EXPECT_NEAR(measured, 0.5 * 0.5 * 0.5 * 0.5, 0.005);
  EXPECT_EQ(model.frames_failed(), lost);
  EXPECT_GT(model.wire_corruptions(), model.frames_failed());
}

TEST(RiflLossModel, ZeroRawLossIsLossless) {
  RiflLossModel model(RiflParams{},
                      std::make_unique<net::BernoulliLoss>(0.0, Rng(1)));
  net::Packet p;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(model.lose(0, p));
  EXPECT_EQ(model.frames_failed(), 0);
}

TEST(RiflScheme, PathKnobs) {
  RiflScheme scheme;
  net::LossSpec at;
  at.rate = 1e-2;
  EXPECT_STREQ(scheme.name(), "rifl");
  EXPECT_DOUBLE_EQ(scheme.capacity_fraction(at), 0.9375 * 0.99);
  EXPECT_EQ(scheme.added_latency(), scheme.params().framing_latency);
  EXPECT_TRUE(scheme.preserves_order());
  EXPECT_NEAR(scheme.provisioned_capacity_x(at),
              1.0 / (0.9375 * 0.99), 1e-12);

  net::ResidualLoss residual = scheme.residual(at);
  ASSERT_NE(residual.model, nullptr);
  ASSERT_NE(residual.raw, nullptr);
  EXPECT_DOUBLE_EQ(residual.raw->driven_rate(), 1e-2);
}

}  // namespace
}  // namespace lgsim::rifl
