// Tests for the event-kernel hot path: InlineCallback storage, the chunked
// slot/generation event records with O(1) cancellation, the owned 4-ary
// heap's (time, sequence) ordering contract, and the datapath support types
// (RingQueue, PacketPool). The black-box kernel semantics (cancel windows at
// equal timestamps, counter arithmetic) stay pinned by sim_test.cc, which
// predates this kernel and passes unchanged.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/event.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "util/ring.h"

namespace lgsim {
namespace {

// ---------------------------------------------------------------- callbacks

TEST(InlineCallback, ConsumeInvokesAndDestroys) {
  auto token = std::make_shared<int>(7);
  int got = 0;
  sim::InlineCallback cb([token, &got] { got = *token; });
  EXPECT_EQ(token.use_count(), 2);
  ASSERT_TRUE(static_cast<bool>(cb));
  cb.consume();
  EXPECT_EQ(got, 7);
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_EQ(token.use_count(), 1);  // capture destroyed by consume()
}

TEST(InlineCallback, MoveTransfersOwnership) {
  auto token = std::make_shared<int>(1);
  sim::InlineCallback a([token] {});
  EXPECT_EQ(token.use_count(), 2);
  sim::InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(token.use_count(), 2);  // exactly one live copy of the capture
  b.reset();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, ResetWithoutConsumeDestroysCapture) {
  auto token = std::make_shared<int>(1);
  {
    sim::InlineCallback cb([token] { FAIL() << "never invoked"; });
    EXPECT_EQ(token.use_count(), 2);
  }  // dtor path
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, MoveAssignReplacesExistingCapture) {
  auto old_token = std::make_shared<int>(1);
  auto new_token = std::make_shared<int>(2);
  sim::InlineCallback cb([old_token] {});
  cb = sim::InlineCallback([new_token] {});
  EXPECT_EQ(old_token.use_count(), 1);  // replaced capture destroyed
  EXPECT_EQ(new_token.use_count(), 2);
  cb.consume();
  EXPECT_EQ(new_token.use_count(), 1);
}

// -------------------------------------------------------------- ring queue

TEST(RingQueue, FifoAcrossGrowthAndWraparound) {
  util::RingQueue<int> q;
  // Interleave pushes and pops so head walks around the buffer while the
  // queue grows through several capacities.
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 7; ++i) q.push_back(next_push++);
    for (int i = 0; i < 5 && !q.empty(); ++i) {
      EXPECT_EQ(q.front(), next_pop);
      q.pop_front();
      ++next_pop;
    }
  }
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_pop++);
    q.pop_front();
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingQueue, GrowthPreservesWrappedOrder) {
  util::RingQueue<int> q;
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();  // head mid-buffer
  for (int i = 0; i < 40; ++i) q.push_back(100 + i);  // forces growth wrapped
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(q.front(), 100 + i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------------- packet pool

TEST(PacketPool, RecyclesSlotsWithStableAddresses) {
  net::PacketPool pool;
  net::Packet p;
  p.uid = 1;
  net::Packet* a = pool.acquire(std::move(p));
  EXPECT_EQ(pool.capacity(), 1u);
  EXPECT_EQ(pool.in_flight(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.in_flight(), 0u);

  net::Packet q2;
  q2.uid = 2;
  net::Packet* b = pool.acquire(std::move(q2));
  EXPECT_EQ(b, a) << "freelist must recycle the released slot";
  EXPECT_EQ(b->uid, 2u);
  EXPECT_EQ(pool.capacity(), 1u);

  // A second concurrent acquire grows the arena without moving slot b.
  net::Packet r;
  r.uid = 3;
  net::Packet* c = pool.acquire(std::move(r));
  EXPECT_NE(c, b);
  EXPECT_EQ(b->uid, 2u);
  EXPECT_EQ(pool.capacity(), 2u);
  pool.release(b);
  pool.release(c);
}

// ------------------------------------------------------------------ kernel

TEST(SimKernel, SameTimestampFifoAtScale) {
  // 3000 events at one timestamp (spanning several slot chunks) interleaved
  // with events at other times: schedule order must be execution order.
  Simulator sim;
  std::vector<int> order;
  order.reserve(3000);
  for (int i = 0; i < 3000; ++i) {
    const SimTime t = (i % 3 == 0) ? 50 : 100;
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 3000u);
  // All t=50 events (i % 3 == 0) first, in schedule order; then t=100 ones.
  std::size_t k = 0;
  for (int i = 0; i < 3000; i += 3) EXPECT_EQ(order[k++], i);
  for (int i = 0; i < 3000; ++i)
    if (i % 3 != 0) EXPECT_EQ(order[k++], i);
}

TEST(SimKernel, RandomizedTimesPopInStableSortedOrder) {
  Simulator sim;
  Rng rng(99);
  struct Fired {
    SimTime t;
    int seq;
  };
  std::vector<Fired> fired;
  fired.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    // Few distinct timestamps => many ties exercising the sequence tiebreak.
    const SimTime t = static_cast<SimTime>(rng.uniform_int(64));
    sim.schedule_at(t, [&fired, t, i] { fired.push_back({t, i}); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 10000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].t, fired[i].t);
    if (fired[i - 1].t == fired[i].t)
      ASSERT_LT(fired[i - 1].seq, fired[i].seq) << "FIFO tie-break violated";
  }
}

TEST(SimKernel, GenerationReuseKeepsStaleIdsInert) {
  // A cancelled event's slot is recycled immediately; the stale id must
  // never be able to cancel the slot's next tenant, over many reuse cycles.
  Simulator sim;
  int fired = 0;
  for (int round = 0; round < 2000; ++round) {
    const auto stale = sim.schedule_at(10 + round, [&fired] { ++fired; });
    sim.cancel(stale);                      // retires + recycles the slot
    const auto live = sim.schedule_at(10 + round, [&fired] { ++fired; });
    sim.cancel(stale);                      // stale: same slot, older gen
    sim.cancel(stale);                      // still inert
    (void)live;
  }
  sim.run();
  EXPECT_EQ(fired, 2000);
  EXPECT_EQ(sim.counters().cancelled_skipped, 2000u);  // one tombstone/round
}

TEST(SimKernel, CancelOfFiredIdNeverHitsSlotsNextTenant) {
  Simulator sim;
  int fired = 0;
  Simulator::EventId first = 0;
  for (int round = 0; round < 1000; ++round) {
    const auto id = sim.schedule_at(sim.now() + 1, [&fired] { ++fired; });
    if (round == 0) first = id;
    sim.run();
    sim.cancel(first);  // fired long ago; its slot has been recycled
  }
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(sim.counters().cancelled_skipped, 0u);
}

TEST(SimKernel, EventsSpanningManyChunksAllFire) {
  // > 4 chunks of 512 slots concurrently pending.
  Simulator sim;
  std::int64_t sum = 0;
  for (int i = 0; i < 5000; ++i) sim.schedule_at(i, [&sum] { ++sum; });
  EXPECT_EQ(sim.pending(), 5000u);
  EXPECT_EQ(sim.run(), 5000u);
  EXPECT_EQ(sum, 5000);
}

TEST(SimKernel, StepSkipsCancelledAndExecutesNextLive) {
  Simulator sim;
  int fired = 0;
  const auto a = sim.schedule_at(10, [&fired] { fired = 1; });
  sim.schedule_at(20, [&fired] { fired = 2; });
  sim.cancel(a);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_FALSE(sim.step());
}

TEST(SimKernel, RunUntilLeavesTombstonesBeyondHorizonPending) {
  Simulator sim;
  const auto far = sim.schedule_at(100, [] {});
  sim.schedule_at(10, [] {});
  sim.cancel(far);
  sim.run(50);
  // The tombstone at t=100 is beyond the horizon: still in the heap.
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.cancel_backlog(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  EXPECT_EQ(sim.counters().cancelled_skipped, 1u);
}

// Satellite regression: 100k scheduled+cancelled ackNoTimeout-style timers
// must drain in near-linear time. The old kernel's lazy remembered-id list
// made every pop scan the whole cancel backlog — O(n^2) for this pattern
// (~5e9 comparisons at n=100k, i.e. seconds); slot/generation cancellation
// is O(1) per event. The counters prove every tombstone drained at pop time
// and none lingered, and a paired timing at n/10 bounds the growth factor.
double timed_cancel_drain(int n) {
  Simulator sim;
  std::vector<Simulator::EventId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  // Arm n timers in the future (the ackNoTimeout pattern: armed per loss,
  // almost always cancelled by the recovery before firing)...
  for (int i = 0; i < n; ++i)
    ids.push_back(sim.schedule_at(1000 + i, [] { FAIL() << "cancelled"; }));
  // ...cancel all of them, then make the loop pop n live events with the
  // n tombstones still in the heap.
  for (const auto id : ids) sim.cancel(id);
  std::int64_t fired = 0;
  for (int i = 0; i < n; ++i) sim.schedule_at(1000 + i, [&fired] { ++fired; });
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_EQ(fired, n);
  EXPECT_EQ(sim.counters().cancelled_skipped, static_cast<std::uint64_t>(n));
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
  return std::chrono::duration<double>(t1 - t0).count();
}

TEST(SimKernel, HundredThousandCancelledTimersDrainNearLinearly) {
  timed_cancel_drain(10000);  // warm up allocator + branch predictors
  // Best-of-3 per size: the measurements are sub-millisecond, so a single
  // scheduler preemption (ctest -j runs suites concurrently) dwarfs them;
  // the min is the uncontended cost.
  double small = 1e18, big = 1e18;
  for (int t = 0; t < 3; ++t) small = std::min(small, timed_cancel_drain(10000));
  for (int t = 0; t < 3; ++t) big = std::min(big, timed_cancel_drain(100000));
  // Linear scaling gives ~10x; the old quadratic backlog scan gave ~100x
  // (and an absolute cost of seconds — 100k pops each scanning a 100k-id
  // list). Accept either the growth ratio or a generous absolute bound so a
  // loaded CI machine cannot fail a kernel that is actually O(1) per event.
  EXPECT_TRUE(big < small * 40.0 || big < 0.25)
      << "cancel drain scaled superlinearly: " << small << "s -> " << big
      << "s";
}

// ---------------------------------------------------------- periodic tasks

TEST(PeriodicTask, StopFromInsideCallbackLeavesNoStaleCancel) {
  // The firing event's id must be cleared before the user callback runs:
  // a stop() from inside the callback would otherwise cancel the id of the
  // event that is currently executing — a stale request that would sit in
  // the cancel backlog forever.
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, 10, [&](SimTime) {
    if (++fires == 3) task.stop();
  });
  task.start(0);
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(task.running());
  EXPECT_EQ(sim.counters().cancel_requests, 0u);  // stop() saw pending_ == 0
  EXPECT_EQ(sim.cancel_backlog(), 0u);
}

TEST(PeriodicTask, ExternalStopCancelsTheArmedFire) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task(sim, 10, [&](SimTime) { ++fires; });
  task.start(0);
  sim.schedule_at(25, [&] { task.stop(); });
  sim.run();
  EXPECT_EQ(fires, 3);  // t = 0, 10, 20
  EXPECT_EQ(sim.counters().cancel_requests, 1u);
  EXPECT_EQ(sim.counters().cancelled_skipped, 1u);  // tombstone drained
  EXPECT_EQ(sim.cancel_backlog(), 0u);
}

TEST(PeriodicTask, RestartAfterStopReFires) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 10, [&](SimTime t) { fires.push_back(t); });
  task.start(0);
  sim.schedule_at(15, [&] { task.stop(); });
  sim.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{0, 10}));
  task.start(5);  // now() is 15 (the stop event); next fire at 20
  sim.schedule_in(12, [&] { task.stop(); });
  sim.run();
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[2], 20);  // stopped at 15, restarted with delay 5
}

}  // namespace
}  // namespace lgsim
