// Tests for the fabric-scale hybrid-fidelity traffic engine (src/traffic).
#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "corropt/corropt.h"
#include "traffic/engine.h"
#include "traffic/fluid.h"
#include "traffic/path.h"
#include "workload/arrivals.h"

namespace lgsim::traffic {
namespace {

fabric::TopologyConfig small_topo() {
  return {.pods = 2, .tors_per_pod = 4, .fabrics_per_pod = 2,
          .spines_per_plane = 4};
}

EngineConfig small_cfg() {
  EngineConfig c;
  c.topo = small_topo();
  c.hosts_per_tor = 2;
  c.duration_sec = 0.002;
  c.slices = 4;
  c.seeds = {1, 2};
  c.scheme = Scheme::kCorrOptLg;
  c.fidelity = Fidelity::kHybrid;
  c.corrupting_links = 6;
  c.capacity_constraint = 1.0;  // nothing disabled: corrupting links stay hot
  c.forced_loss_rate = 1e-3;
  c.scenario_seed = 5;
  c.arrivals.load_fraction = 0.2;
  return c;
}

bool same_samples(const lgsim::PercentileTracker& a,
                  const lgsim::PercentileTracker& b) {
  const auto& x = a.sorted_samples();
  const auto& y = b.sorted_samples();
  if (x.size() != y.size()) return false;
  return x.empty() ||
         std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

TEST(Arrivals, PoissonRateMatchesLoadDerivation) {
  workload::ArrivalSpec spec;
  spec.load_fraction = 0.1;
  spec.edge_rate = gbps(25);
  const double mean_bytes = 10'000;
  const double rate = workload::flows_per_sec(spec, mean_bytes);
  EXPECT_NEAR(rate, 0.1 * 25e9 / (8 * 10'000), 1e-6);

  workload::ArrivalProcess p(spec, mean_bytes, Rng(7));
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += p.next_gap_sec();
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02 / rate);
}

TEST(Arrivals, LognormalMatchesMeanGap) {
  workload::ArrivalSpec spec;
  spec.process = workload::ArrivalSpec::Process::kLognormal;
  spec.load_fraction = 0.2;
  spec.lognormal_sigma = 1.0;
  const double mean_bytes = 27'000;
  workload::ArrivalProcess p(spec, mean_bytes, Rng(11));
  double sum = 0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) sum += p.next_gap_sec();
  const double want = 1.0 / workload::flows_per_sec(spec, mean_bytes);
  EXPECT_NEAR(sum / n, want, 0.05 * want);
}

TEST(Arrivals, StreamsAreIndependentPerCellAndHost) {
  // Different (seed, cell, host) triples must give different streams; the
  // same triple the same stream.
  Rng a = workload::stream_rng(1, 2, 3);
  Rng a2 = workload::stream_rng(1, 2, 3);
  Rng b = workload::stream_rng(1, 2, 4);
  Rng c = workload::stream_rng(1, 3, 3);
  Rng d = workload::stream_rng(2, 2, 3);
  const std::uint64_t va = a.next_u64();
  EXPECT_EQ(va, a2.next_u64());
  EXPECT_NE(va, b.next_u64());
  EXPECT_NE(va, c.next_u64());
  EXPECT_NE(va, d.next_u64());
}

// ---------------------------------------------------------------------------
// Path resolution
// ---------------------------------------------------------------------------

TEST(PathResolver, ResolvesAllPairClassesOnHealthyFabric) {
  fabric::FabricTopology topo(small_topo());
  PathResolver pr(topo, 2);
  ASSERT_EQ(pr.n_hosts(), 2 * 4 * 2);

  // Same ToR: hosts 0 and 1.
  PathInfo p0 = pr.resolve(0, 1, 12345);
  EXPECT_TRUE(p0.ok);
  EXPECT_EQ(p0.n_links, 0);

  // Intra-pod, different ToR: hosts 0 and 2 (pod 0, tors 0 and 1).
  PathInfo p2 = pr.resolve(0, 2, 999);
  EXPECT_TRUE(p2.ok);
  EXPECT_EQ(p2.n_links, 2);
  for (int i = 0; i < p2.n_links; ++i) {
    EXPECT_EQ(topo.link(p2.links[i]).layer, fabric::LinkLayer::kTorFabric);
  }

  // Inter-pod: host 0 (pod 0) to last host (pod 1).
  PathInfo p4 = pr.resolve(0, pr.n_hosts() - 1, 31337);
  EXPECT_TRUE(p4.ok);
  EXPECT_EQ(p4.n_links, 4);
  EXPECT_EQ(topo.link(p4.links[0]).layer, fabric::LinkLayer::kTorFabric);
  EXPECT_EQ(topo.link(p4.links[1]).layer, fabric::LinkLayer::kFabricSpine);
  EXPECT_EQ(topo.link(p4.links[2]).layer, fabric::LinkLayer::kFabricSpine);
  EXPECT_EQ(topo.link(p4.links[3]).layer, fabric::LinkLayer::kTorFabric);
}

TEST(PathResolver, EcmpHashSpreadsAcrossFabrics) {
  fabric::FabricTopology topo(small_topo());
  PathResolver pr(topo, 2);
  std::set<std::int64_t> first_links;
  for (std::uint64_t h = 0; h < 16; ++h) {
    PathInfo p = pr.resolve(0, pr.n_hosts() - 1, h);
    ASSERT_TRUE(p.ok);
    first_links.insert(p.links[0]);
  }
  // 2 fabrics per pod -> both ToR uplinks must appear across hashes.
  EXPECT_EQ(first_links.size(), 2u);
}

TEST(PathResolver, RoutesAroundDisabledLinksAndStrandsWhenNoneLeft) {
  fabric::FabricTopology topo(small_topo());
  PathResolver pr(topo, 2);
  // Disable ToR 0's uplink to fabric 0; every 0->remote path must then use
  // fabric 1.
  const std::int64_t dead = topo.tor_fabric_link(0, 0, 0);
  topo.apply({fabric::LinkTransition::Kind::kDisable, dead, 0.0, 1.0});
  for (std::uint64_t h = 0; h < 8; ++h) {
    PathInfo p = pr.resolve(0, pr.n_hosts() - 1, h);
    ASSERT_TRUE(p.ok);
    EXPECT_NE(p.links[0], dead);
  }
  // Disable the other uplink too: ToR 0 is cut off from other ToRs.
  topo.apply({fabric::LinkTransition::Kind::kDisable,
              topo.tor_fabric_link(0, 0, 1), 0.0, 1.0});
  PathInfo p = pr.resolve(0, pr.n_hosts() - 1, 3);
  EXPECT_FALSE(p.ok);
  // Same-ToR traffic is unaffected.
  EXPECT_TRUE(pr.resolve(0, 1, 3).ok);
}

// ---------------------------------------------------------------------------
// Fluid model
// ---------------------------------------------------------------------------

TEST(FluidModel, MonotoneInSizeHopsAndLoss) {
  const FluidModel m(FluidConfig{}, gbps(100));
  Rng rng(1);
  const double f_small = m.fct_ns(1'000, 4, 0.0, rng);
  const double f_big = m.fct_ns(1'000'000, 4, 0.0, rng);
  EXPECT_LT(f_small, f_big);
  const double f_near = m.fct_ns(10'000, 0, 0.0, rng);
  const double f_far = m.fct_ns(10'000, 4, 0.0, rng);
  EXPECT_LT(f_near, f_far);
  // Certain loss adds a visible recovery penalty on average.
  double lossy = 0, clean = 0;
  for (int i = 0; i < 200; ++i) {
    lossy += m.fct_ns(100'000, 4, 0.5, rng);
    clean += m.fct_ns(100'000, 4, 0.0, rng);
  }
  EXPECT_GT(lossy, clean);
}

TEST(FluidModel, NoLossFctTracksPacketReferenceDecade) {
  // Coarse agreement band with the packet-level testbed path: a 24,387 B
  // DCTCP flow completes in ~60-70 us there (bench_fig11 no-loss row); the
  // fluid estimate must land within 3x either way.
  FluidConfig fc;
  fc.load = 0.0;
  const FluidModel m(fc, gbps(100));
  Rng rng(1);
  const double us = m.fct_ns(24'387, 1, 0.0, rng) / 1000.0;
  EXPECT_GT(us, 65.0 / 3.0);
  EXPECT_LT(us, 65.0 * 3.0);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

TEST(TrafficEngine, FlowAccountingIsConserved) {
  const TrafficResult r = run_traffic(small_cfg(), 2);
  EXPECT_GT(r.generated, 0);
  EXPECT_EQ(r.generated, r.completed + r.stranded);
  EXPECT_EQ(r.completed, r.packet_flows + r.fluid_flows);
  EXPECT_GT(r.victims, 0);
  EXPECT_EQ(static_cast<std::int64_t>(r.fct_victim_us.count()), r.victims);
  EXPECT_EQ(static_cast<std::int64_t>(r.fct_bg_us.count()),
            r.completed - r.victims);
  // Constraint 1.0 keeps every corrupting link active under LG.
  EXPECT_EQ(r.hot_links.size(), 6u);
  EXPECT_EQ(r.disabled_links, 0);
  for (const HotLink& h : r.hot_links) {
    EXPECT_TRUE(h.lg);
    EXPECT_LT(h.residual, h.loss_rate);
  }
}

TEST(TrafficEngine, CorrOptDisablesWhenConstraintAllows) {
  EngineConfig c = small_cfg();
  c.capacity_constraint = 0.0;  // fast checker always says yes
  const TrafficResult r = run_traffic(c, 1);
  EXPECT_EQ(r.hot_links.size(), 0u);
  EXPECT_EQ(r.disabled_links, 6);
  EXPECT_EQ(r.victims, 0);
}

TEST(TrafficEngine, ByteIdenticalAcrossWorkerCounts) {
  const EngineConfig c = small_cfg();
  const TrafficResult r1 = run_traffic(c, 1);
  const TrafficResult r4 = run_traffic(c, 4);
  const TrafficResult r8 = run_traffic(c, 8);
  for (const TrafficResult* r : {&r4, &r8}) {
    EXPECT_EQ(r1.generated, r->generated);
    EXPECT_EQ(r1.victims, r->victims);
    EXPECT_EQ(r1.stranded, r->stranded);
    EXPECT_TRUE(same_samples(r1.fct_victim_us, r->fct_victim_us));
    EXPECT_TRUE(same_samples(r1.fct_bg_us, r->fct_bg_us));
  }
}

TEST(TrafficEngine, HybridVictimFctsMatchAllPacketReference) {
  EngineConfig hybrid = small_cfg();
  EngineConfig allpkt = small_cfg();
  allpkt.fidelity = Fidelity::kAllPacket;
  const TrafficResult h = run_traffic(hybrid, 2);
  const TrafficResult a = run_traffic(allpkt, 2);
  ASSERT_GT(h.victims, 0);
  EXPECT_EQ(h.victims, a.victims);
  EXPECT_TRUE(same_samples(h.fct_victim_us, a.fct_victim_us));
  // Background switches model (fluid vs packet) but counts must agree.
  EXPECT_EQ(h.generated, a.generated);
  EXPECT_EQ(h.fct_bg_us.count(), a.fct_bg_us.count());
}

TEST(TrafficEngine, FluidBackgroundTracksPacketBackgroundCoarsely) {
  EngineConfig hybrid = small_cfg();
  EngineConfig allpkt = small_cfg();
  allpkt.fidelity = Fidelity::kAllPacket;
  const TrafficResult h = run_traffic(hybrid, 2);
  const TrafficResult a = run_traffic(allpkt, 2);
  ASSERT_GT(h.fct_bg_us.count(), 100);
  // Medians within 3x either way: the fluid model is an approximation, but
  // it must live in the packet reference's decade.
  const double mh = h.p_bg(50), ma = a.p_bg(50);
  EXPECT_GT(mh, ma / 3.0);
  EXPECT_LT(mh, ma * 3.0);
}

TEST(TrafficEngine, LinkGuardianShrinksVictimTail) {
  EngineConfig lg = small_cfg();
  EngineConfig co = small_cfg();
  co.scheme = Scheme::kCorrOptOnly;
  const TrafficResult rl = run_traffic(lg, 2);
  const TrafficResult rc = run_traffic(co, 2);
  ASSERT_GT(rl.victims, 50);
  ASSERT_GT(rc.victims, 50);
  EXPECT_LT(rl.p_victim(99), rc.p_victim(99));
  EXPECT_LT(rl.fct_victim_us.mean(), rc.fct_victim_us.mean());
}

TEST(TrafficEngine, VictimOverflowFallsBackToFluid) {
  EngineConfig c = small_cfg();
  c.max_packet_flows_per_cell = 1;
  const TrafficResult r = run_traffic(c, 1);
  EXPECT_GT(r.victim_fluid_fallback, 0);
  EXPECT_EQ(static_cast<std::int64_t>(r.fct_victim_us.count()), r.victims);
}

TEST(TrafficEngineShard, ShardedRunIsByteIdenticalToUnsharded) {
  // The sharded runtime is a wall-clock knob only: the same configuration at
  // shards 1, 2 and 8 (clamped to the 2 pods) must merge to the same bytes,
  // at any cell-job and shard-worker count.
  const TrafficResult ref = run_traffic(small_cfg(), 2);
  ASSERT_GT(ref.victims, 0);
  for (std::int32_t shards : {2, 8}) {
    EngineConfig c = small_cfg();
    c.shards = shards;
    c.shard_workers = 2;
    const TrafficResult r = run_traffic(c, 2);
    EXPECT_EQ(r.generated, ref.generated) << shards << " shards";
    EXPECT_EQ(r.completed, ref.completed);
    EXPECT_EQ(r.stranded, ref.stranded);
    EXPECT_EQ(r.victims, ref.victims);
    EXPECT_EQ(r.packet_flows, ref.packet_flows);
    EXPECT_EQ(r.fluid_flows, ref.fluid_flows);
    EXPECT_EQ(r.victim_fluid_fallback, ref.victim_fluid_fallback);
    EXPECT_TRUE(same_samples(r.fct_victim_us, ref.fct_victim_us));
    EXPECT_TRUE(same_samples(r.fct_bg_us, ref.fct_bg_us));
  }
}

TEST(TrafficEngineShard, ShardedBudgetFallbackMatchesUnsharded) {
  // The per-cell packet budget is resolved canonically after the sharded
  // generation pass, so even a saturated budget (every decision order-
  // sensitive) must reproduce the legacy fallback accounting.
  EngineConfig base = small_cfg();
  base.max_packet_flows_per_cell = 1;
  const TrafficResult ref = run_traffic(base, 1);
  ASSERT_GT(ref.victim_fluid_fallback, 0);
  EngineConfig c = base;
  c.shards = 2;
  c.shard_workers = 2;
  const TrafficResult r = run_traffic(c, 2);
  EXPECT_EQ(r.victim_fluid_fallback, ref.victim_fluid_fallback);
  EXPECT_EQ(r.packet_flows, ref.packet_flows);
  EXPECT_EQ(r.fluid_flows, ref.fluid_flows);
  EXPECT_TRUE(same_samples(r.fct_victim_us, ref.fct_victim_us));
  EXPECT_TRUE(same_samples(r.fct_bg_us, ref.fct_bg_us));
}

TEST(TrafficEngine, ExportMetricsMirrorsCounters) {
  const TrafficResult r = run_traffic(small_cfg(), 2);
  obs::MetricsRegistry m;
  r.export_metrics(m);
  EXPECT_EQ(m.counter("traffic.flows_generated"), r.generated);
  EXPECT_EQ(m.counter("traffic.flows_victim"), r.victims);
  EXPECT_EQ(m.counter("traffic.flows_fluid"), r.fluid_flows);
  EXPECT_EQ(m.counter("traffic.flows_packet"), r.packet_flows);
  EXPECT_EQ(m.distribution("traffic.fct_victim_us").count(),
            r.fct_victim_us.count());
}

}  // namespace
}  // namespace lgsim::traffic
