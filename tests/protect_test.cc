#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"
#include "protect/protect.h"
#include "sim/simulator.h"

namespace lgsim::protect {
namespace {

TEST(SeqDedup, AcceptsOnceRejectsRepeat) {
  SeqDedup d(16);
  for (std::uint16_t s = 0; s < 10; ++s) EXPECT_TRUE(d.accept(s));
  for (std::uint16_t s = 0; s < 10; ++s) EXPECT_FALSE(d.accept(s));
  EXPECT_EQ(d.accepted(), 10);
  EXPECT_EQ(d.duplicates(), 10);
}

TEST(SeqDedup, WindowRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SeqDedup(10).window(), 16);
  EXPECT_EQ(SeqDedup(4096).window(), 4096);
}

TEST(SeqDedup, OlderThanWindowIsConservativelyDuplicate) {
  SeqDedup d(8);
  for (std::uint16_t s = 0; s < 20; ++s) EXPECT_TRUE(d.accept(s));
  // 0 fell out of the 8-deep window: cannot prove freshness, so reject.
  EXPECT_FALSE(d.accept(0));
  // In-window but unseen-again values are still rejected (they were seen).
  EXPECT_FALSE(d.accept(19));
  EXPECT_FALSE(d.accept(13));
}

TEST(SeqDedup, ExactlyOnceAcrossWraparound) {
  // Three trips around the 16-bit space, each value offered twice (the 1+1
  // traffic pattern): exactly one accept per offer pair.
  SeqDedup d(8192);
  std::uint16_t seq = 0;
  for (int i = 0; i < 200'000; ++i, ++seq) {
    EXPECT_TRUE(d.accept(seq));
    EXPECT_FALSE(d.accept(seq));
  }
  EXPECT_EQ(d.accepted(), 200'000);
  EXPECT_EQ(d.duplicates(), 200'000);
}

TEST(SeqDedup, JumpBeyondWindowClearsState) {
  SeqDedup d(8);
  EXPECT_TRUE(d.accept(0));
  EXPECT_TRUE(d.accept(5000));  // jump far ahead: window slides entirely
  EXPECT_TRUE(d.accept(4999));  // in the new window, never seen
  EXPECT_FALSE(d.accept(4999));
}

struct Harvest {
  std::vector<std::uint64_t> uids;
  std::set<std::uint64_t> seen;
  bool ordered = true;
  bool duplicate = false;
};

Harvest drive(OnePlusOnePath& dup, Simulator& sim, int n) {
  Harvest h;
  dup.set_sink([&](net::Packet&& p) {
    if (!h.uids.empty() && p.uid <= h.uids.back()) h.ordered = false;
    if (!h.seen.insert(p.uid).second) h.duplicate = true;
    h.uids.push_back(p.uid);
  });
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.frame_bytes = 1000;
    p.uid = static_cast<std::uint64_t>(i);
    dup.send(p);
  }
  sim.run(sec(30));
  return h;
}

/// Loses frame i (in roll order == send order) iff i % modulus == 0.
std::unique_ptr<net::ScriptedLoss> every_nth(int modulus, int n) {
  std::vector<std::uint64_t> idx;
  for (int i = 0; i < n; i += modulus) idx.push_back(i);
  return std::make_unique<net::ScriptedLoss>(std::move(idx));
}

TEST(OnePlusOnePath, ExactDeliverySetUnderScriptedLoss) {
  Simulator sim;
  OnePlusOnePath dup(sim, ProtectParams{}, gbps(10), nsec(100));
  const int n = 3'000;
  // A loses multiples of 3, B loses multiples of 5: only multiples of 15
  // lose both copies — the exact brute-force delivery set.
  dup.set_loss_model_a(every_nth(3, n));
  dup.set_loss_model_b(every_nth(5, n));

  const Harvest h = drive(dup, sim, n);

  EXPECT_TRUE(h.ordered);
  EXPECT_FALSE(h.duplicate);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(h.seen.count(static_cast<std::uint64_t>(i)), i % 15 != 0 ? 1u : 0u);
  EXPECT_EQ(dup.counters().sent, n);
  EXPECT_EQ(dup.counters().delivered, n - n / 15);
  EXPECT_EQ(dup.counters().lost_both(), n / 15);
  // Every surviving twin of a delivered frame was dropped by the dedup.
  EXPECT_EQ(dup.counters().dup_dropped, dup.dedup().duplicates());
}

TEST(OnePlusOnePath, BothPathsLossyRandom) {
  Simulator sim;
  OnePlusOnePath dup(sim, ProtectParams{}, gbps(10), nsec(100));
  dup.set_loss_model_a(std::make_unique<net::BernoulliLoss>(0.2, Rng(21)));
  dup.set_loss_model_b(std::make_unique<net::BernoulliLoss>(0.1, Rng(22)));

  const int n = 20'000;
  const Harvest h = drive(dup, sim, n);

  EXPECT_TRUE(h.ordered);
  EXPECT_FALSE(h.duplicate);
  const double survive = static_cast<double>(dup.counters().delivered) / n;
  EXPECT_NEAR(survive, 1.0 - 0.2 * 0.1, 0.01);
  EXPECT_EQ(dup.counters().delivered + dup.counters().lost_both(), n);
  EXPECT_EQ(static_cast<std::int64_t>(h.uids.size()),
            dup.counters().delivered);
}

TEST(OnePlusOnePath, SkewedProtectionPathStillExactlyOnce) {
  Simulator sim;
  ProtectParams params;
  params.path_skew = usec(2);  // B copies arrive a full serialization later
  OnePlusOnePath dup(sim, params, gbps(10), nsec(100));
  dup.set_loss_model_a(std::make_unique<net::BernoulliLoss>(0.3, Rng(5)));

  const int n = 10'000;
  const Harvest h = drive(dup, sim, n);

  // A-losses are masked by late B copies: delivery is complete and
  // duplicate-free; order may break (the scheme reports that knob).
  EXPECT_FALSE(h.duplicate);
  EXPECT_EQ(dup.counters().delivered, n);
  EXPECT_EQ(dup.counters().lost_both(), 0);
}

TEST(OnePlusOnePath, SeqWraparoundPastSixteenBits) {
  Simulator sim;
  OnePlusOnePath dup(sim, ProtectParams{}, gbps(25), nsec(50));
  dup.set_loss_model_a(std::make_unique<net::BernoulliLoss>(0.05, Rng(2)));
  dup.set_loss_model_b(std::make_unique<net::BernoulliLoss>(0.05, Rng(4)));

  const int n = 70'000;  // tunnel sequence numbers wrap
  Harvest h;
  dup.set_sink([&](net::Packet&& p) {
    if (!h.seen.insert(p.uid).second) h.duplicate = true;
    h.uids.push_back(p.uid);
  });
  for (int i = 0; i < n; ++i) {
    net::Packet p;
    p.frame_bytes = 64;
    p.uid = static_cast<std::uint64_t>(i);
    dup.send(p);
  }
  sim.run(sec(30));

  EXPECT_FALSE(h.duplicate);
  EXPECT_EQ(dup.counters().delivered + dup.counters().lost_both(), n);
  EXPECT_EQ(static_cast<std::int64_t>(h.seen.size()),
            dup.counters().delivered);
}

TEST(TwoPathLoss, ResidualIsProductOfIndependentProcesses) {
  TwoPathLoss model(std::make_unique<net::BernoulliLoss>(0.3, Rng(31)),
                    std::make_unique<net::BernoulliLoss>(0.2, Rng(32)));
  net::Packet p;
  const int n = 500'000;
  int lost = 0;
  for (int i = 0; i < n; ++i)
    if (model.lose(0, p)) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.3 * 0.2, 0.005);
}

TEST(TwoPathLoss, HealthyProtectionPathMasksEverything) {
  TwoPathLoss model(std::make_unique<net::BernoulliLoss>(0.5, Rng(1)),
                    std::make_unique<net::BernoulliLoss>(0.0, Rng(2)));
  net::Packet p;
  for (int i = 0; i < 10'000; ++i) EXPECT_FALSE(model.lose(0, p));
}

TEST(OnePlusOneScheme, PathKnobs) {
  OnePlusOneScheme scheme;
  net::LossSpec at;
  at.rate = 1e-2;
  EXPECT_STREQ(scheme.name(), "1+1");
  EXPECT_DOUBLE_EQ(scheme.capacity_fraction(at), 1.0);
  EXPECT_DOUBLE_EQ(scheme.provisioned_capacity_x(at), 2.0);
  EXPECT_EQ(scheme.added_latency(), scheme.params().merge_latency);
  EXPECT_TRUE(scheme.preserves_order());

  ProtectParams skewed;
  skewed.path_skew = usec(1);
  EXPECT_FALSE(OnePlusOneScheme(skewed).preserves_order());

  // The residual masks a lossy working path with the healthy secondary; the
  // drivable handle is the working path (what fault scripts degrade).
  net::ResidualLoss residual = scheme.residual(at);
  ASSERT_NE(residual.raw, nullptr);
  EXPECT_DOUBLE_EQ(residual.raw->driven_rate(), 1e-2);
  net::Packet p;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(residual.model->lose(0, p));
}

}  // namespace
}  // namespace lgsim::protect
