#include "fabric/naive_metrics.h"

#include <algorithm>
#include <vector>

namespace lgsim::fabric {

std::int32_t NaiveFabricMetrics::up_spine_links(const FabricTopology& topo,
                                                std::int32_t pod,
                                                std::int32_t fabric) {
  const auto& cfg = topo.config();
  std::int32_t n = 0;
  for (std::int32_t s = 0; s < cfg.spines_per_plane; ++s) {
    if (topo.link(topo.fabric_spine_link(pod, fabric, s)).up) ++n;
  }
  return n;
}

std::int64_t NaiveFabricMetrics::paths_per_tor(const FabricTopology& topo,
                                               std::int32_t pod,
                                               std::int32_t tor) {
  const auto& cfg = topo.config();
  std::int64_t paths = 0;
  for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
    if (!topo.link(topo.tor_fabric_link(pod, tor, f)).up) continue;
    paths += up_spine_links(topo, pod, f);
  }
  return paths;
}

double NaiveFabricMetrics::least_paths_per_tor_frac(
    const FabricTopology& topo) {
  const auto& cfg = topo.config();
  const double max_paths = static_cast<double>(topo.max_paths_per_tor());
  double least = 1.0;
  for (std::int32_t p = 0; p < cfg.pods; ++p) {
    // up_spine_links is shared by all ToRs of the pod; compute it once.
    // (Safe: the constructor rejects fabrics_per_pod > kMaxFabricsPerPod.)
    std::int32_t up_spines[kMaxFabricsPerPod];
    for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f)
      up_spines[f] = up_spine_links(topo, p, f);
    for (std::int32_t t = 0; t < cfg.tors_per_pod; ++t) {
      std::int64_t paths = 0;
      for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
        if (topo.link(topo.tor_fabric_link(p, t, f)).up) paths += up_spines[f];
      }
      least = std::min(least, static_cast<double>(paths) / max_paths);
    }
  }
  return least;
}

bool NaiveFabricMetrics::can_disable(const FabricTopology& topo,
                                     std::int64_t link_id, double constraint) {
  const auto& cfg = topo.config();
  const Link& l = topo.link(link_id);
  if (!l.up) return true;
  const double max_paths = static_cast<double>(topo.max_paths_per_tor());
  std::int32_t up_spines[kMaxFabricsPerPod];
  for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f)
    up_spines[f] = up_spine_links(topo, l.pod, f);

  if (l.layer == LinkLayer::kTorFabric) {
    // Only this ToR is affected: it loses up_spines[l.fabric] paths.
    std::int64_t paths = 0;
    for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
      if (f == l.fabric) continue;
      if (topo.link(topo.tor_fabric_link(l.pod, l.tor, f)).up)
        paths += up_spines[f];
    }
    return static_cast<double>(paths) / max_paths >= constraint;
  }
  // Fabric-spine: every ToR of the pod connected to this fabric switch loses
  // one path through it.
  up_spines[l.fabric] -= 1;
  for (std::int32_t t = 0; t < cfg.tors_per_pod; ++t) {
    std::int64_t paths = 0;
    for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
      if (topo.link(topo.tor_fabric_link(l.pod, t, f)).up)
        paths += up_spines[f];
    }
    if (static_cast<double>(paths) / max_paths < constraint) return false;
  }
  return true;
}

double NaiveFabricMetrics::least_capacity_per_pod_frac(
    const FabricTopology& topo) {
  const auto& cfg = topo.config();
  double least = 1.0;
  for (std::int32_t p = 0; p < cfg.pods; ++p) {
    double tf = 0.0, fs = 0.0;
    for (std::int32_t t = 0; t < cfg.tors_per_pod; ++t) {
      for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
        const Link& l = topo.link(topo.tor_fabric_link(p, t, f));
        if (l.up) tf += l.effective_speed;
      }
    }
    for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
      for (std::int32_t s = 0; s < cfg.spines_per_plane; ++s) {
        const Link& l = topo.link(topo.fabric_spine_link(p, f, s));
        if (l.up) fs += l.effective_speed;
      }
    }
    const double nominal_tf =
        static_cast<double>(cfg.tors_per_pod) * cfg.fabrics_per_pod;
    const double nominal_fs =
        static_cast<double>(cfg.fabrics_per_pod) * cfg.spines_per_plane;
    // ToR->spine capacity is bounded by the thinner layer.
    const double cap = std::min(tf / nominal_tf, fs / nominal_fs);
    least = std::min(least, cap);
  }
  return least;
}

double NaiveFabricMetrics::total_penalty(const FabricTopology& topo,
                                         double lg_target_loss) {
  double penalty = 0.0;
  for (std::int64_t id = 0; id < topo.n_links(); ++id) {
    const Link& l = topo.link(id);
    if (!l.up || !l.corrupting) continue;
    penalty += link_penalty(l, lg_target_loss);
  }
  return penalty;
}

std::int32_t NaiveFabricMetrics::max_lg_links_per_switch(
    const FabricTopology& topo) {
  const auto& cfg = topo.config();
  // Count LG-enabled links per transmitting switch. For ToR-fabric links
  // corruption is unidirectional: the protecting sender is the ToR (or the
  // fabric switch for fabric-spine links).
  std::vector<std::int32_t> per_fabric(
      static_cast<std::size_t>(cfg.pods) * cfg.fabrics_per_pod, 0);
  std::vector<std::int32_t> per_tor(
      static_cast<std::size_t>(cfg.pods) * cfg.tors_per_pod, 0);
  std::int32_t worst = 0;
  for (std::int64_t id = 0; id < topo.n_links(); ++id) {
    const Link& l = topo.link(id);
    if (!l.lg_enabled || !l.up) continue;
    if (l.layer == LinkLayer::kTorFabric) {
      auto& c =
          per_tor[static_cast<std::size_t>(l.pod) * cfg.tors_per_pod + l.tor];
      worst = std::max(worst, ++c);
    } else {
      auto& c = per_fabric[static_cast<std::size_t>(l.pod) *
                               cfg.fabrics_per_pod +
                           l.fabric];
      worst = std::max(worst, ++c);
    }
  }
  return worst;
}

}  // namespace lgsim::fabric
