// Facebook-fabric datacenter topology model (Fig. 4, §4.8).
//
// Each pod has 48 top-of-rack switches fully meshed to 4 fabric switches;
// fabric switch i of every pod connects to all 48 spine switches of spine
// plane i. With 1:1 oversubscription each pod contributes 192 ToR-fabric
// links and 192 fabric-spine links; ~260 pods give the paper's ~100K optical
// switch-to-switch links.
//
// The capacity metrics follow Zhuo et al. [CorrOpt, SIGCOMM'17]:
//  - paths per ToR: number of valley-free ToR->spine paths,
//    sum over fabric f of up(tor,f) * up_spine_links(f);  max 4*48 = 192.
//  - least paths per ToR: the worst ToR's fraction of its maximum.
//  - least capacity per pod: the worst pod's usable ToR->spine capacity as a
//    fraction of nominal, where a LinkGuardian-protected link contributes
//    its reduced effective speed (Fig. 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lgsim::fabric {

enum class LinkLayer : std::uint8_t { kTorFabric, kFabricSpine };

struct Link {
  LinkLayer layer = LinkLayer::kTorFabric;
  std::int32_t pod = 0;
  std::int32_t tor = -1;     // ToR index within pod (kTorFabric only)
  std::int32_t fabric = 0;   // fabric switch index within pod (= spine plane)
  std::int32_t spine = -1;   // spine switch index within plane (kFabricSpine)

  bool up = true;            // administratively enabled
  bool corrupting = false;
  double loss_rate = 0.0;    // raw corruption loss rate when corrupting
  bool lg_enabled = false;
  /// Relative link speed when LinkGuardian is active (1.0 otherwise).
  double effective_speed = 1.0;
};

struct TopologyConfig {
  std::int32_t pods = 4;
  std::int32_t tors_per_pod = 48;
  std::int32_t fabrics_per_pod = 4;
  std::int32_t spines_per_plane = 48;
};

class FabricTopology {
 public:
  explicit FabricTopology(const TopologyConfig& cfg);

  std::int64_t n_links() const { return static_cast<std::int64_t>(links_.size()); }
  const Link& link(std::int64_t id) const { return links_[id]; }
  Link& link(std::int64_t id) { return links_[id]; }
  const TopologyConfig& config() const { return cfg_; }

  std::int64_t tor_fabric_link(std::int32_t pod, std::int32_t tor,
                               std::int32_t fabric) const;
  std::int64_t fabric_spine_link(std::int32_t pod, std::int32_t fabric,
                                 std::int32_t spine) const;

  /// Number of up fabric-spine links of (pod, fabric).
  std::int32_t up_spine_links(std::int32_t pod, std::int32_t fabric) const;
  /// Valley-free ToR->spine path count for one ToR.
  std::int64_t paths_per_tor(std::int32_t pod, std::int32_t tor) const;
  std::int64_t max_paths_per_tor() const {
    return static_cast<std::int64_t>(cfg_.fabrics_per_pod) * cfg_.spines_per_plane;
  }

  /// Worst-case ToR path fraction across the network ("least paths per ToR").
  double least_paths_per_tor_frac() const;

  /// Simulates disabling `link_id` and reports whether every affected ToR
  /// keeps at least `constraint` of its maximum paths (CorrOpt fast checker
  /// predicate).
  bool can_disable(std::int64_t link_id, double constraint) const;

  /// Usable ToR->spine capacity fraction of the worst pod, counting each up
  /// link at its effective speed ("least capacity per pod").
  double least_capacity_per_pod_frac() const;

  /// Sum of loss rates over corrupting, still-enabled links, where
  /// LinkGuardian-protected links contribute their effective (residual)
  /// loss rate ("total penalty").
  double total_penalty(double lg_target_loss) const;

  /// Highest number of LinkGuardian-enabled links on any single switch
  /// (pipe) — the deployment-feasibility number discussed in §5.
  std::int32_t max_lg_links_per_switch() const;

 private:
  TopologyConfig cfg_;
  std::vector<Link> links_;
  std::int64_t tor_fabric_base_ = 0;
  std::int64_t fabric_spine_base_ = 0;
};

}  // namespace lgsim::fabric
