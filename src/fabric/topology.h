// Facebook-fabric datacenter topology model (Fig. 4, §4.8).
//
// Each pod has 48 top-of-rack switches fully meshed to 4 fabric switches;
// fabric switch i of every pod connects to all 48 spine switches of spine
// plane i. With 1:1 oversubscription each pod contributes 192 ToR-fabric
// links and 192 fabric-spine links; ~260 pods give the paper's ~100K optical
// switch-to-switch links.
//
// The capacity metrics follow Zhuo et al. [CorrOpt, SIGCOMM'17]:
//  - paths per ToR: number of valley-free ToR->spine paths,
//    sum over fabric f of up(tor,f) * up_spine_links(f);  max 4*48 = 192.
//  - least paths per ToR: the worst ToR's fraction of its maximum.
//  - least capacity per pod: the worst pod's usable ToR->spine capacity as a
//    fraction of nominal, where a LinkGuardian-protected link contributes
//    its reduced effective speed (Fig. 8).
//
// Incremental capacity engine (DESIGN.md §11). The year-long deployment
// simulation queries these metrics every sample; recomputing them by scanning
// all ~100K links made the paper-scale run infeasible. The topology therefore
// maintains every aggregate incrementally, and all link mutations flow through
// one entry point, `apply(LinkTransition)`, so the invariants live in one
// place:
//  - `up_spine_[pod][fabric]` and `paths_[pod][tor]` — integer counts updated
//    in O(1) (ToR-fabric flip) or O(tors_per_pod) (fabric-spine flip);
//  - a bucketed min-tracker over the per-ToR path counts (domain is
//    0..max_paths_per_tor(), tiny) answering `least_paths_per_tor_frac()`
//    without a scan;
//  - lazily recomputed per-pod capacity fractions: a mutation dirties its
//    pod, `least_capacity_per_pod_frac()` rescans only dirty pods (bit-exact
//    against the full naive scan because the per-pod summation order is
//    unchanged);
//  - the ordered set of corrupting-up links, so `total_penalty()` sums
//    O(active) contributions in ascending link order — the same FP order the
//    naive full scan uses, keeping the result bit-identical (a running +=/-=
//    accumulator would drift);
//  - per-switch LinkGuardian counts plus a value histogram answering
//    `max_lg_links_per_switch()` in O(1).
// The pre-refactor full-scan implementations live on as
// `NaiveFabricMetrics` (naive_metrics.h); randomized differential tests pin
// the two bit-identical.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "lg/config.h"

namespace lgsim::fabric {

enum class LinkLayer : std::uint8_t { kTorFabric, kFabricSpine };

struct Link {
  LinkLayer layer = LinkLayer::kTorFabric;
  std::int32_t pod = 0;
  std::int32_t tor = -1;     // ToR index within pod (kTorFabric only)
  std::int32_t fabric = 0;   // fabric switch index within pod (= spine plane)
  std::int32_t spine = -1;   // spine switch index within plane (kFabricSpine)

  bool up = true;            // administratively enabled
  bool corrupting = false;
  double loss_rate = 0.0;    // raw corruption loss rate when corrupting
  bool lg_enabled = false;
  /// Relative link speed when LinkGuardian is active (1.0 otherwise).
  double effective_speed = 1.0;
};

/// Penalty contribution of one corrupting, still-enabled link: the residual
/// loss after N-copy retransmission (Eq. 1) when LinkGuardian protects it,
/// the raw loss rate otherwise. Shared by the incremental engine and the
/// naive reference scan so both compute bit-identical doubles.
inline double link_penalty(const Link& l, double lg_target_loss) {
  if (l.lg_enabled) {
    // Never worse than the raw loss.
    const int n = lg::retx_copies(l.loss_rate, lg_target_loss);
    return std::min(l.loss_rate, std::pow(l.loss_rate, n + 1));
  }
  return l.loss_rate;
}

struct TopologyConfig {
  std::int32_t pods = 4;
  std::int32_t tors_per_pod = 48;
  std::int32_t fabrics_per_pod = 4;
  std::int32_t spines_per_plane = 48;
};

/// Hard bound on fabrics_per_pod: the CorrOpt fast-checker scratch in the
/// naive reference implementation is a fixed `up_spines[kMaxFabricsPerPod]`
/// stack array (indexed by fabric), so the constructor rejects anything
/// larger instead of silently overflowing the stack.
inline constexpr std::int32_t kMaxFabricsPerPod = 64;
/// Sanity ceiling on the remaining dimensions (bounds aggregate-array and
/// histogram sizes; far above the paper's 260/48/4/48 scale).
inline constexpr std::int32_t kMaxDimension = 1 << 20;

/// The one mutation entry point of the topology. Each transition mirrors a
/// deployment-simulation state change; `apply()` updates the link record and
/// every incremental aggregate in the same step.
struct LinkTransition {
  enum class Kind : std::uint8_t {
    /// Corruption onset: sets corrupting + loss_rate (link stays up).
    kCorrupt,
    /// LinkGuardian activated: sets lg_enabled + effective_speed.
    kEnableLg,
    /// LinkGuardian deactivated: clears lg_enabled, speed back to 1.0.
    kDisableLg,
    /// CorrOpt disables the link: up=false, LG cleared, speed reset;
    /// corrupting/loss_rate are kept (the fault survives until repair).
    kDisable,
    /// Repair completes: up=true and the link is factory-fresh (corruption,
    /// LG and speed all cleared).
    kRepair,
  };

  Kind kind = Kind::kCorrupt;
  std::int64_t link = 0;
  double loss_rate = 0.0;        // kCorrupt
  double effective_speed = 1.0;  // kEnableLg
};

class FabricTopology {
 public:
  /// Throws std::invalid_argument unless every dimension is in [1,
  /// kMaxDimension] and fabrics_per_pod <= kMaxFabricsPerPod.
  explicit FabricTopology(const TopologyConfig& cfg);

  std::int64_t n_links() const { return static_cast<std::int64_t>(links_.size()); }
  const Link& link(std::int64_t id) const { return links_[id]; }
  const TopologyConfig& config() const { return cfg_; }

  /// Applies one state transition and updates all maintained aggregates.
  /// No-op transitions (e.g. kDisable on a down link) are tolerated.
  void apply(const LinkTransition& tr);

  std::int64_t tor_fabric_link(std::int32_t pod, std::int32_t tor,
                               std::int32_t fabric) const;
  std::int64_t fabric_spine_link(std::int32_t pod, std::int32_t fabric,
                                 std::int32_t spine) const;

  /// Number of up fabric-spine links of (pod, fabric). O(1).
  std::int32_t up_spine_links(std::int32_t pod, std::int32_t fabric) const {
    return up_spine_[static_cast<std::size_t>(pod) * cfg_.fabrics_per_pod +
                     fabric];
  }
  /// Valley-free ToR->spine path count for one ToR. O(1).
  std::int64_t paths_per_tor(std::int32_t pod, std::int32_t tor) const {
    return paths_[static_cast<std::size_t>(pod) * cfg_.tors_per_pod + tor];
  }
  std::int64_t max_paths_per_tor() const {
    return static_cast<std::int64_t>(cfg_.fabrics_per_pod) * cfg_.spines_per_plane;
  }

  /// Worst-case ToR path fraction across the network ("least paths per ToR").
  /// O(1) amortized via the bucketed min-tracker.
  double least_paths_per_tor_frac() const;

  /// Simulates disabling `link_id` and reports whether every affected ToR
  /// keeps at least `constraint` of its maximum paths (CorrOpt fast checker
  /// predicate). O(1) for ToR-fabric links, O(tors_per_pod) for fabric-spine.
  bool can_disable(std::int64_t link_id, double constraint) const;

  /// Usable ToR->spine capacity fraction of the worst pod, counting each up
  /// link at its effective speed ("least capacity per pod"). O(dirty pods *
  /// pod size + pods) — only pods touched since the last call are rescanned.
  double least_capacity_per_pod_frac() const;

  /// Sum of loss rates over corrupting, still-enabled links, where
  /// LinkGuardian-protected links contribute their effective (residual)
  /// loss rate ("total penalty"). O(corrupting-up links), summed in
  /// ascending link order — bit-identical to the naive full scan.
  double total_penalty(double lg_target_loss) const;

  /// Highest number of LinkGuardian-enabled links on any single switch
  /// (pipe) — the deployment-feasibility number discussed in §5. O(1).
  std::int32_t max_lg_links_per_switch() const { return lg_max_; }

  // Maintained counters the deployment sampler reads instead of scanning.
  std::int64_t disabled_links() const { return disabled_links_; }
  std::int64_t corrupting_up_links() const {
    return static_cast<std::int64_t>(corrupting_up_.size());
  }
  std::int64_t lg_up_links() const { return lg_up_links_; }

 private:
  // Re-derives every aggregate delta from an old/new link-record pair; the
  // single place where the maintained-state invariants are written down.
  void reconcile(std::int64_t id, const Link& before, const Link& after);
  void shift_tor_paths(std::int32_t pod, std::int32_t tor, std::int64_t delta);
  void bump_lg_switch_count(std::int32_t* slot, std::int32_t delta);
  void mark_pod_dirty(std::int32_t pod) const;
  // The per-pod capacity scan shared (verbatim summation order) with
  // NaiveFabricMetrics::least_capacity_per_pod_frac.
  double scan_pod_capacity_frac(std::int32_t pod) const;

  TopologyConfig cfg_;
  std::vector<Link> links_;
  std::int64_t tor_fabric_base_ = 0;
  std::int64_t fabric_spine_base_ = 0;

  // --- incremental aggregates -------------------------------------------
  std::vector<std::int32_t> up_spine_;   // [pods * fabrics_per_pod]
  std::vector<std::int64_t> paths_;      // [pods * tors_per_pod]
  // Bucketed min-tracker over paths_: paths_hist_[v] counts ToRs with v
  // paths; min_paths_hint_ is a lower bound on the true min, advanced lazily.
  std::vector<std::int64_t> paths_hist_;  // [max_paths_per_tor() + 1]
  mutable std::int64_t min_paths_hint_ = 0;

  // Lazy per-pod capacity cache.
  mutable std::vector<double> pod_cap_;        // [pods]
  mutable std::vector<std::uint8_t> pod_dirty_;  // [pods]
  mutable std::vector<std::int32_t> dirty_pods_;

  // Corrupting && up links, ascending id (the penalty summation order).
  std::vector<std::int64_t> corrupting_up_;

  // LinkGuardian sender-side counts: ToR switches own ToR-fabric links,
  // fabric switches own fabric-spine links.
  std::vector<std::int32_t> lg_per_tor_;     // [pods * tors_per_pod]
  std::vector<std::int32_t> lg_per_fabric_;  // [pods * fabrics_per_pod]
  std::vector<std::int64_t> lg_hist_;        // [max(fabrics, spines) + 1]
  std::int32_t lg_max_ = 0;
  std::int64_t lg_up_links_ = 0;

  std::int64_t disabled_links_ = 0;
};

}  // namespace lgsim::fabric
