#include "fabric/topology.h"

#include <algorithm>
#include <stdexcept>

namespace lgsim::fabric {

namespace {

void validate(const TopologyConfig& cfg) {
  const auto dim_ok = [](std::int32_t v) { return v >= 1 && v <= kMaxDimension; };
  if (!dim_ok(cfg.pods) || !dim_ok(cfg.tors_per_pod) ||
      !dim_ok(cfg.fabrics_per_pod) || !dim_ok(cfg.spines_per_plane)) {
    throw std::invalid_argument(
        "TopologyConfig: all dimensions must be in [1, 2^20]");
  }
  if (cfg.fabrics_per_pod > kMaxFabricsPerPod) {
    throw std::invalid_argument(
        "TopologyConfig: fabrics_per_pod exceeds kMaxFabricsPerPod (64)");
  }
}

}  // namespace

FabricTopology::FabricTopology(const TopologyConfig& cfg) : cfg_(cfg) {
  validate(cfg);
  tor_fabric_base_ = 0;
  const std::int64_t n_tf = static_cast<std::int64_t>(cfg.pods) *
                            cfg.tors_per_pod * cfg.fabrics_per_pod;
  fabric_spine_base_ = n_tf;
  const std::int64_t n_fs = static_cast<std::int64_t>(cfg.pods) *
                            cfg.fabrics_per_pod * cfg.spines_per_plane;
  links_.resize(n_tf + n_fs);
  for (std::int32_t p = 0; p < cfg.pods; ++p) {
    for (std::int32_t t = 0; t < cfg.tors_per_pod; ++t) {
      for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
        Link& l = links_[tor_fabric_link(p, t, f)];
        l.layer = LinkLayer::kTorFabric;
        l.pod = p;
        l.tor = t;
        l.fabric = f;
      }
    }
    for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
      for (std::int32_t s = 0; s < cfg.spines_per_plane; ++s) {
        Link& l = links_[fabric_spine_link(p, f, s)];
        l.layer = LinkLayer::kFabricSpine;
        l.pod = p;
        l.fabric = f;
        l.spine = s;
      }
    }
  }

  // All links start up, uncorrupted, unprotected.
  const std::size_t n_pf =
      static_cast<std::size_t>(cfg.pods) * cfg.fabrics_per_pod;
  const std::size_t n_pt =
      static_cast<std::size_t>(cfg.pods) * cfg.tors_per_pod;
  up_spine_.assign(n_pf, cfg.spines_per_plane);
  paths_.assign(n_pt, max_paths_per_tor());
  paths_hist_.assign(static_cast<std::size_t>(max_paths_per_tor()) + 1, 0);
  paths_hist_.back() = static_cast<std::int64_t>(n_pt);
  min_paths_hint_ = max_paths_per_tor();
  pod_cap_.assign(static_cast<std::size_t>(cfg.pods), 1.0);
  pod_dirty_.assign(static_cast<std::size_t>(cfg.pods), 0);
  lg_per_tor_.assign(n_pt, 0);
  lg_per_fabric_.assign(n_pf, 0);
  lg_hist_.assign(static_cast<std::size_t>(
                      std::max(cfg.fabrics_per_pod, cfg.spines_per_plane)) + 1,
                  0);
  lg_hist_[0] = static_cast<std::int64_t>(n_pt + n_pf);
}

std::int64_t FabricTopology::tor_fabric_link(std::int32_t pod, std::int32_t tor,
                                             std::int32_t fabric) const {
  return tor_fabric_base_ +
         (static_cast<std::int64_t>(pod) * cfg_.tors_per_pod + tor) *
             cfg_.fabrics_per_pod +
         fabric;
}

std::int64_t FabricTopology::fabric_spine_link(std::int32_t pod,
                                               std::int32_t fabric,
                                               std::int32_t spine) const {
  return fabric_spine_base_ +
         (static_cast<std::int64_t>(pod) * cfg_.fabrics_per_pod + fabric) *
             cfg_.spines_per_plane +
         spine;
}

void FabricTopology::apply(const LinkTransition& tr) {
  Link& l = links_[tr.link];
  const Link before = l;
  switch (tr.kind) {
    case LinkTransition::Kind::kCorrupt:
      l.corrupting = true;
      l.loss_rate = tr.loss_rate;
      break;
    case LinkTransition::Kind::kEnableLg:
      l.lg_enabled = true;
      l.effective_speed = tr.effective_speed;
      break;
    case LinkTransition::Kind::kDisableLg:
      l.lg_enabled = false;
      l.effective_speed = 1.0;
      break;
    case LinkTransition::Kind::kDisable:
      l.up = false;
      l.lg_enabled = false;
      l.effective_speed = 1.0;
      break;
    case LinkTransition::Kind::kRepair:
      l.up = true;
      l.corrupting = false;
      l.loss_rate = 0.0;
      l.lg_enabled = false;
      l.effective_speed = 1.0;
      break;
  }
  reconcile(tr.link, before, l);
}

void FabricTopology::shift_tor_paths(std::int32_t pod, std::int32_t tor,
                                     std::int64_t delta) {
  if (delta == 0) return;
  std::int64_t& p = paths_[static_cast<std::size_t>(pod) * cfg_.tors_per_pod + tor];
  --paths_hist_[static_cast<std::size_t>(p)];
  p += delta;
  ++paths_hist_[static_cast<std::size_t>(p)];
  if (p < min_paths_hint_) min_paths_hint_ = p;
}

void FabricTopology::bump_lg_switch_count(std::int32_t* slot,
                                          std::int32_t delta) {
  --lg_hist_[static_cast<std::size_t>(*slot)];
  *slot += delta;
  ++lg_hist_[static_cast<std::size_t>(*slot)];
  if (*slot > lg_max_) lg_max_ = *slot;
  while (lg_max_ > 0 && lg_hist_[static_cast<std::size_t>(lg_max_)] == 0)
    --lg_max_;
}

void FabricTopology::mark_pod_dirty(std::int32_t pod) const {
  if (pod_dirty_[static_cast<std::size_t>(pod)]) return;
  pod_dirty_[static_cast<std::size_t>(pod)] = 1;
  dirty_pods_.push_back(pod);
}

void FabricTopology::reconcile(std::int64_t id, const Link& before,
                               const Link& after) {
  const std::int32_t p = after.pod;

  if (before.up != after.up) {
    const std::int64_t sign = after.up ? 1 : -1;
    disabled_links_ -= sign;
    if (after.layer == LinkLayer::kTorFabric) {
      // This ToR gains/loses all paths through the link's fabric plane.
      shift_tor_paths(p, after.tor,
                      sign * up_spine_links(p, after.fabric));
    } else {
      // Every ToR of the pod with an up link to this fabric switch
      // gains/loses one path.
      up_spine_[static_cast<std::size_t>(p) * cfg_.fabrics_per_pod +
                after.fabric] += static_cast<std::int32_t>(sign);
      for (std::int32_t t = 0; t < cfg_.tors_per_pod; ++t) {
        if (links_[tor_fabric_link(p, t, after.fabric)].up)
          shift_tor_paths(p, t, sign);
      }
    }
  }

  const bool was_counted = before.up && before.corrupting;
  const bool now_counted = after.up && after.corrupting;
  if (was_counted != now_counted) {
    const auto it =
        std::lower_bound(corrupting_up_.begin(), corrupting_up_.end(), id);
    if (now_counted) {
      corrupting_up_.insert(it, id);
    } else {
      corrupting_up_.erase(it);
    }
  }

  const bool was_lg = before.up && before.lg_enabled;
  const bool now_lg = after.up && after.lg_enabled;
  if (was_lg != now_lg) {
    const std::int32_t delta = now_lg ? 1 : -1;
    lg_up_links_ += delta;
    // Corruption is unidirectional: the protecting sender is the ToR for
    // ToR-fabric links, the fabric switch for fabric-spine links.
    std::int32_t* slot =
        after.layer == LinkLayer::kTorFabric
            ? &lg_per_tor_[static_cast<std::size_t>(p) * cfg_.tors_per_pod +
                           after.tor]
            : &lg_per_fabric_[static_cast<std::size_t>(p) *
                                  cfg_.fabrics_per_pod +
                              after.fabric];
    bump_lg_switch_count(slot, delta);
  }

  if (before.up != after.up || before.effective_speed != after.effective_speed)
    mark_pod_dirty(p);
}

double FabricTopology::least_paths_per_tor_frac() const {
  while (paths_hist_[static_cast<std::size_t>(min_paths_hint_)] == 0)
    ++min_paths_hint_;
  // min(x_i / M) == min(x_i) / M: division by a positive constant is
  // monotone, so this matches the naive per-ToR divide-then-min bit for bit.
  return static_cast<double>(min_paths_hint_) /
         static_cast<double>(max_paths_per_tor());
}

bool FabricTopology::can_disable(std::int64_t link_id, double constraint) const {
  const Link& l = links_[link_id];
  if (!l.up) return true;
  const double max_paths = static_cast<double>(max_paths_per_tor());

  if (l.layer == LinkLayer::kTorFabric) {
    // Only this ToR is affected: it loses up_spine_links(pod, fabric) paths.
    const std::int64_t paths =
        paths_per_tor(l.pod, l.tor) - up_spine_links(l.pod, l.fabric);
    return static_cast<double>(paths) / max_paths >= constraint;
  }
  // Fabric-spine: every ToR of the pod connected to this fabric switch loses
  // one path through it.
  for (std::int32_t t = 0; t < cfg_.tors_per_pod; ++t) {
    const std::int64_t paths =
        paths_per_tor(l.pod, t) -
        (links_[tor_fabric_link(l.pod, t, l.fabric)].up ? 1 : 0);
    if (static_cast<double>(paths) / max_paths < constraint) return false;
  }
  return true;
}

double FabricTopology::scan_pod_capacity_frac(std::int32_t p) const {
  double tf = 0.0, fs = 0.0;
  for (std::int32_t t = 0; t < cfg_.tors_per_pod; ++t) {
    for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
      const Link& l = links_[tor_fabric_link(p, t, f)];
      if (l.up) tf += l.effective_speed;
    }
  }
  for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
    for (std::int32_t s = 0; s < cfg_.spines_per_plane; ++s) {
      const Link& l = links_[fabric_spine_link(p, f, s)];
      if (l.up) fs += l.effective_speed;
    }
  }
  const double nominal_tf =
      static_cast<double>(cfg_.tors_per_pod) * cfg_.fabrics_per_pod;
  const double nominal_fs =
      static_cast<double>(cfg_.fabrics_per_pod) * cfg_.spines_per_plane;
  // ToR->spine capacity is bounded by the thinner layer.
  return std::min(tf / nominal_tf, fs / nominal_fs);
}

double FabricTopology::least_capacity_per_pod_frac() const {
  for (const std::int32_t p : dirty_pods_) {
    pod_cap_[static_cast<std::size_t>(p)] = scan_pod_capacity_frac(p);
    pod_dirty_[static_cast<std::size_t>(p)] = 0;
  }
  dirty_pods_.clear();
  double least = 1.0;
  for (const double cap : pod_cap_) least = std::min(least, cap);
  return least;
}

double FabricTopology::total_penalty(double lg_target_loss) const {
  double penalty = 0.0;
  // Ascending link id == the naive full scan's summation order, so the
  // floating-point result is bit-identical.
  for (const std::int64_t id : corrupting_up_)
    penalty += link_penalty(links_[id], lg_target_loss);
  return penalty;
}

}  // namespace lgsim::fabric
