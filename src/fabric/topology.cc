#include "fabric/topology.h"
#include "lg/config.h"

#include <algorithm>
#include <cmath>

namespace lgsim::fabric {

FabricTopology::FabricTopology(const TopologyConfig& cfg) : cfg_(cfg) {
  tor_fabric_base_ = 0;
  const std::int64_t n_tf = static_cast<std::int64_t>(cfg.pods) *
                            cfg.tors_per_pod * cfg.fabrics_per_pod;
  fabric_spine_base_ = n_tf;
  const std::int64_t n_fs = static_cast<std::int64_t>(cfg.pods) *
                            cfg.fabrics_per_pod * cfg.spines_per_plane;
  links_.resize(n_tf + n_fs);
  for (std::int32_t p = 0; p < cfg.pods; ++p) {
    for (std::int32_t t = 0; t < cfg.tors_per_pod; ++t) {
      for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
        Link& l = links_[tor_fabric_link(p, t, f)];
        l.layer = LinkLayer::kTorFabric;
        l.pod = p;
        l.tor = t;
        l.fabric = f;
      }
    }
    for (std::int32_t f = 0; f < cfg.fabrics_per_pod; ++f) {
      for (std::int32_t s = 0; s < cfg.spines_per_plane; ++s) {
        Link& l = links_[fabric_spine_link(p, f, s)];
        l.layer = LinkLayer::kFabricSpine;
        l.pod = p;
        l.fabric = f;
        l.spine = s;
      }
    }
  }
}

std::int64_t FabricTopology::tor_fabric_link(std::int32_t pod, std::int32_t tor,
                                             std::int32_t fabric) const {
  return tor_fabric_base_ +
         (static_cast<std::int64_t>(pod) * cfg_.tors_per_pod + tor) *
             cfg_.fabrics_per_pod +
         fabric;
}

std::int64_t FabricTopology::fabric_spine_link(std::int32_t pod,
                                               std::int32_t fabric,
                                               std::int32_t spine) const {
  return fabric_spine_base_ +
         (static_cast<std::int64_t>(pod) * cfg_.fabrics_per_pod + fabric) *
             cfg_.spines_per_plane +
         spine;
}

std::int32_t FabricTopology::up_spine_links(std::int32_t pod,
                                            std::int32_t fabric) const {
  std::int32_t n = 0;
  for (std::int32_t s = 0; s < cfg_.spines_per_plane; ++s) {
    if (links_[fabric_spine_link(pod, fabric, s)].up) ++n;
  }
  return n;
}

std::int64_t FabricTopology::paths_per_tor(std::int32_t pod,
                                           std::int32_t tor) const {
  std::int64_t paths = 0;
  for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
    if (!links_[tor_fabric_link(pod, tor, f)].up) continue;
    paths += up_spine_links(pod, f);
  }
  return paths;
}

double FabricTopology::least_paths_per_tor_frac() const {
  const double max_paths = static_cast<double>(max_paths_per_tor());
  double least = 1.0;
  for (std::int32_t p = 0; p < cfg_.pods; ++p) {
    // up_spine_links is shared by all ToRs of the pod; compute it once.
    std::int32_t up_spines[64];
    for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f)
      up_spines[f] = up_spine_links(p, f);
    for (std::int32_t t = 0; t < cfg_.tors_per_pod; ++t) {
      std::int64_t paths = 0;
      for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
        if (links_[tor_fabric_link(p, t, f)].up) paths += up_spines[f];
      }
      least = std::min(least, static_cast<double>(paths) / max_paths);
    }
  }
  return least;
}

bool FabricTopology::can_disable(std::int64_t link_id, double constraint) const {
  const Link& l = links_[link_id];
  if (!l.up) return true;
  const double max_paths = static_cast<double>(max_paths_per_tor());
  std::int32_t up_spines[64];
  for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f)
    up_spines[f] = up_spine_links(l.pod, f);

  if (l.layer == LinkLayer::kTorFabric) {
    // Only this ToR is affected: it loses up_spines[l.fabric] paths.
    std::int64_t paths = 0;
    for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
      if (f == l.fabric) continue;
      if (links_[tor_fabric_link(l.pod, l.tor, f)].up) paths += up_spines[f];
    }
    return static_cast<double>(paths) / max_paths >= constraint;
  }
  // Fabric-spine: every ToR of the pod connected to this fabric switch loses
  // one path through it.
  up_spines[l.fabric] -= 1;
  for (std::int32_t t = 0; t < cfg_.tors_per_pod; ++t) {
    std::int64_t paths = 0;
    for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
      if (links_[tor_fabric_link(l.pod, t, f)].up) paths += up_spines[f];
    }
    if (static_cast<double>(paths) / max_paths < constraint) return false;
  }
  return true;
}

double FabricTopology::least_capacity_per_pod_frac() const {
  double least = 1.0;
  for (std::int32_t p = 0; p < cfg_.pods; ++p) {
    double tf = 0.0, fs = 0.0;
    for (std::int32_t t = 0; t < cfg_.tors_per_pod; ++t) {
      for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
        const Link& l = links_[tor_fabric_link(p, t, f)];
        if (l.up) tf += l.effective_speed;
      }
    }
    for (std::int32_t f = 0; f < cfg_.fabrics_per_pod; ++f) {
      for (std::int32_t s = 0; s < cfg_.spines_per_plane; ++s) {
        const Link& l = links_[fabric_spine_link(p, f, s)];
        if (l.up) fs += l.effective_speed;
      }
    }
    const double nominal_tf =
        static_cast<double>(cfg_.tors_per_pod) * cfg_.fabrics_per_pod;
    const double nominal_fs =
        static_cast<double>(cfg_.fabrics_per_pod) * cfg_.spines_per_plane;
    // ToR->spine capacity is bounded by the thinner layer.
    const double cap = std::min(tf / nominal_tf, fs / nominal_fs);
    least = std::min(least, cap);
  }
  return least;
}

double FabricTopology::total_penalty(double lg_target_loss) const {
  double penalty = 0.0;
  for (const Link& l : links_) {
    if (!l.up || !l.corrupting) continue;
    if (l.lg_enabled) {
      // Residual loss after N-copy retransmission (Eq. 1); never worse than
      // the raw loss.
      const int n = lg::retx_copies(l.loss_rate, lg_target_loss);
      penalty += std::min(l.loss_rate, std::pow(l.loss_rate, n + 1));
    } else {
      penalty += l.loss_rate;
    }
  }
  return penalty;
}

std::int32_t FabricTopology::max_lg_links_per_switch() const {
  // Count LG-enabled links per transmitting switch. For ToR-fabric links
  // corruption is unidirectional: the protecting sender is the ToR (or the
  // fabric switch for fabric-spine links).
  std::vector<std::int32_t> per_fabric(
      static_cast<std::size_t>(cfg_.pods) * cfg_.fabrics_per_pod, 0);
  std::vector<std::int32_t> per_tor(
      static_cast<std::size_t>(cfg_.pods) * cfg_.tors_per_pod, 0);
  std::int32_t worst = 0;
  for (const Link& l : links_) {
    if (!l.lg_enabled || !l.up) continue;
    if (l.layer == LinkLayer::kTorFabric) {
      auto& c = per_tor[static_cast<std::size_t>(l.pod) * cfg_.tors_per_pod + l.tor];
      worst = std::max(worst, ++c);
    } else {
      auto& c = per_fabric[static_cast<std::size_t>(l.pod) * cfg_.fabrics_per_pod +
                           l.fabric];
      worst = std::max(worst, ++c);
    }
  }
  return worst;
}

}  // namespace lgsim::fabric
