// Scan-based reference implementation of the FabricTopology capacity
// metrics — the pre-incremental-engine algorithms, kept verbatim so that
// (a) randomized differential tests can pin the incremental aggregates
// bit-identical to a full recomputation, and (b) `bench_deploy` can measure
// the speedup of the incremental engine against the original O(links)
// scans. Every function recomputes from the raw link records only; none
// touches the maintained aggregates.
#pragma once

#include <cstdint>

#include "fabric/topology.h"

namespace lgsim::fabric {

struct NaiveFabricMetrics {
  static std::int32_t up_spine_links(const FabricTopology& topo,
                                     std::int32_t pod, std::int32_t fabric);
  static std::int64_t paths_per_tor(const FabricTopology& topo,
                                    std::int32_t pod, std::int32_t tor);
  static double least_paths_per_tor_frac(const FabricTopology& topo);
  static bool can_disable(const FabricTopology& topo, std::int64_t link_id,
                          double constraint);
  static double least_capacity_per_pod_frac(const FabricTopology& topo);
  static double total_penalty(const FabricTopology& topo,
                              double lg_target_loss);
  static std::int32_t max_lg_links_per_switch(const FabricTopology& topo);
};

}  // namespace lgsim::fabric
