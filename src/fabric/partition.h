// Topology partitioner for the sharded simulation runtime (sim/shard.h).
//
// Shards the fabric along its natural seam: pods. Every link of both layers
// carries a pod index (a fabric-spine link belongs to the pod of its fabric
// switch), and hosts are numbered pod-major, so contiguous pod blocks give
// each shard a self-contained slice — its hosts, its ToRs, and every link
// whose pod it owns. Cross-shard traffic (a flow whose victim link lives in
// another pod block) is the only thing that crosses a boundary, and it does
// so over >= one inter-pod hop of propagation latency, which is exactly the
// conservative lookahead the windowed sync needs.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/topology.h"

namespace lgsim::fabric {

/// Contiguous-pod-block partition of a fabric into K shards. K is clamped to
/// [1, pods] — a shard with zero pods would never gate anyone and only add
/// channel edges.
class PodPartition {
 public:
  static PodPartition make(const TopologyConfig& cfg,
                           std::int32_t want_shards) {
    PodPartition p;
    p.pods_ = cfg.pods;
    std::int32_t k = want_shards;
    if (k < 1) k = 1;
    if (k > cfg.pods) k = cfg.pods;
    p.first_pod_.reserve(static_cast<std::size_t>(k) + 1);
    for (std::int32_t s = 0; s <= k; ++s)
      p.first_pod_.push_back(static_cast<std::int32_t>(
          static_cast<std::int64_t>(s) * cfg.pods / k));
    return p;
  }

  std::int32_t n_shards() const {
    return static_cast<std::int32_t>(first_pod_.size()) - 1;
  }

  /// First pod of shard s; first_pod(n_shards()) == pods (end sentinel).
  std::int32_t first_pod(std::int32_t s) const {
    return first_pod_[static_cast<std::size_t>(s)];
  }
  std::int32_t pods_in_shard(std::int32_t s) const {
    return first_pod(s + 1) - first_pod(s);
  }

  std::int32_t shard_of_pod(std::int32_t pod) const {
    // Blocks are near-equal, so the dividing guess is off by at most one.
    const std::int32_t k = n_shards();
    std::int32_t s = static_cast<std::int32_t>(
        static_cast<std::int64_t>(pod) * k / pods_);
    while (s + 1 < k && first_pod(s + 1) <= pod) ++s;
    while (s > 0 && first_pod(s) > pod) --s;
    return s;
  }

  std::int32_t shard_of_link(const Link& l) const {
    return shard_of_pod(l.pod);
  }

  /// Hosts are numbered pod-major: host = (pod*tors_per_pod + tor)*hpt + h,
  /// so each shard owns the contiguous host range of its pod block.
  std::int64_t first_host(std::int32_t s, const TopologyConfig& cfg,
                          std::int32_t hosts_per_tor) const {
    return static_cast<std::int64_t>(first_pod(s)) * cfg.tors_per_pod *
           hosts_per_tor;
  }
  std::int32_t shard_of_host(std::int64_t host, const TopologyConfig& cfg,
                             std::int32_t hosts_per_tor) const {
    const std::int64_t per_pod =
        static_cast<std::int64_t>(cfg.tors_per_pod) * hosts_per_tor;
    return shard_of_pod(static_cast<std::int32_t>(host / per_pod));
  }

 private:
  std::int32_t pods_ = 1;
  std::vector<std::int32_t> first_pod_;  // size n_shards()+1
};

}  // namespace lgsim::fabric
