// RoCEv2 RC (reliable connection) model with go-back-N recovery.
//
// Mirrors the NIC-based reliable delivery the paper evaluates
// (RDMA_WRITE over CX5/CX6 NICs, §4): the receiver only accepts the
// expected PSN; an out-of-order arrival elicits a single NAK carrying the
// expected PSN and everything until then is dropped, so the sender rewinds
// and retransmits from that PSN (go-back-N). There is no reordering
// tolerance — which is exactly why LinkGuardianNB gives RDMA little benefit
// beyond avoiding the ~1 ms RTO for tail losses (Fig. 11c).
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::transport {

struct RdmaConfig {
  /// Payload bytes per packet. 1440 reproduces the paper's "24,387 B =
  /// 17 packets" with a 1500 B path MTU.
  std::int32_t payload = 1440;
  /// Eth + IP + UDP + BTH(+RETH) + ICRC + FCS overhead per frame.
  std::int32_t header_bytes = 78;
  /// NIC retransmission timeout (the paper measured ~1 ms on CX5/CX6).
  SimTime rto = msec(1);
  /// Max outstanding packets (send window). BDP at 100G/30us is ~260 MTU
  /// packets; the NIC effectively keeps the wire full.
  std::int64_t window_pkts = 512;
};

struct RdmaSenderStats {
  std::int64_t packets_sent = 0;
  std::int64_t retransmissions = 0;
  std::int64_t go_back_n_events = 0;  // NAK-triggered rewinds
  std::int64_t rtos = 0;
};

class RdmaSender {
 public:
  using SendFn = std::function<void(net::Packet&&)>;
  using DoneFn = std::function<void(SimTime fct)>;

  RdmaSender(Simulator& sim, const RdmaConfig& cfg, std::uint32_t qp,
             SendFn send, DoneFn done);

  /// Post one RDMA_WRITE of `bytes`; completes when the last PSN is ACKed.
  void start(std::int64_t bytes);

  /// Reset for reuse in back-to-back FCT trials with a fresh QP id
  /// (invalidates stale timers; stragglers from the old QP are ignored).
  void reset(std::uint32_t new_qp);

  /// ACK/NAK arriving from the responder.
  void on_transport(const net::Packet& p);

  bool done() const { return done_; }
  const RdmaSenderStats& stats() const { return stats_; }

 private:
  std::int32_t pkt_payload(std::int64_t psn) const;
  void transmit(std::int64_t psn, bool retx);
  void send_window();
  void arm_rto();
  void schedule_rto_event(SimTime at);
  void on_rto();
  void check_done();

  Simulator& sim_;
  RdmaConfig cfg_;
  std::uint32_t qp_;
  SendFn send_;
  DoneFn done_cb_;

  std::int64_t msg_bytes_ = 0;
  std::int64_t n_pkts_ = 0;
  std::int64_t snd_una_ = 0;  // first unacked PSN
  std::int64_t snd_nxt_ = 0;  // next PSN to send
  std::int64_t high_water_ = 0;  // highest PSN ever sent + 1 (retx accounting)
  bool done_ = false;
  SimTime start_time_ = 0;
  SimTime rto_deadline_ = -1;
  bool rto_event_pending_ = false;
  std::uint32_t epoch_ = 0;
  RdmaSenderStats stats_;
};

class RdmaReceiver {
 public:
  using SendFn = std::function<void(net::Packet&&)>;

  RdmaReceiver(Simulator& sim, const RdmaConfig& cfg, std::uint32_t qp,
               SendFn send);

  void on_data(const net::Packet& p);

  /// Reset for reuse across FCT trials; packets for other QPs are ignored.
  void reset(std::uint32_t new_qp) {
    qp_ = new_qp;
    expected_psn_ = 0;
    nak_outstanding_ = false;
    delivered_ = 0;
    naks_sent_ = 0;
    ooo_dropped_ = 0;
  }

  std::int64_t packets_delivered() const { return delivered_; }
  std::int64_t naks_sent() const { return naks_sent_; }
  std::int64_t ooo_dropped() const { return ooo_dropped_; }

 private:
  void send_ack(bool nack, std::int64_t psn);

  Simulator& sim_;
  RdmaConfig cfg_;
  std::uint32_t qp_;
  SendFn send_;
  std::int64_t expected_psn_ = 0;
  bool nak_outstanding_ = false;  // RC sends one NAK per OOO episode
  std::int64_t delivered_ = 0;
  std::int64_t naks_sent_ = 0;
  std::int64_t ooo_dropped_ = 0;
};

}  // namespace lgsim::transport
