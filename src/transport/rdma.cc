#include "transport/rdma.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace lgsim::transport {

RdmaSender::RdmaSender(Simulator& sim, const RdmaConfig& cfg, std::uint32_t qp,
                       SendFn send, DoneFn done)
    : sim_(sim), cfg_(cfg), qp_(qp), send_(std::move(send)), done_cb_(std::move(done)) {}

std::int32_t RdmaSender::pkt_payload(std::int64_t psn) const {
  if (psn + 1 < n_pkts_) return cfg_.payload;
  return static_cast<std::int32_t>(msg_bytes_ - (n_pkts_ - 1) * cfg_.payload);
}

void RdmaSender::start(std::int64_t bytes) {
  assert(bytes > 0);
  msg_bytes_ = bytes;
  n_pkts_ = (bytes + cfg_.payload - 1) / cfg_.payload;
  start_time_ = sim_.now();
  obs::emit(sim_.now(), obs::Cat::kTransport, obs::Kind::kFlowStart,
            obs::intern_actor("rdma"), bytes, qp_);
  send_window();
  arm_rto();
}

void RdmaSender::transmit(std::int64_t psn, bool retx) {
  net::Packet p;
  p.kind = net::PktKind::kData;
  p.rdma.valid = true;
  p.rdma.qp = qp_;
  p.rdma.op = net::RdmaOp::kData;
  p.rdma.psn = psn;
  p.rdma.last = (psn + 1 == n_pkts_);
  p.frame_bytes = pkt_payload(psn) + cfg_.header_bytes;
  p.uid = static_cast<std::uint64_t>(psn);
  if (retx) {
    ++stats_.retransmissions;
  } else {
    ++stats_.packets_sent;
  }
  send_(std::move(p));
}

void RdmaSender::send_window() {
  while (snd_nxt_ < n_pkts_ && snd_nxt_ - snd_una_ < cfg_.window_pkts) {
    transmit(snd_nxt_, /*retx=*/snd_nxt_ < high_water_);
    ++snd_nxt_;
    if (snd_nxt_ > high_water_) high_water_ = snd_nxt_;
  }
}

void RdmaSender::on_transport(const net::Packet& p) {
  if (done_ || !p.rdma.valid || p.rdma.qp != qp_) return;
  if (p.rdma.op == net::RdmaOp::kAck) {
    // Cumulative: psn is the highest in-order PSN received.
    if (p.rdma.psn + 1 > snd_una_) {
      snd_una_ = p.rdma.psn + 1;
      arm_rto();
    }
  } else if (p.rdma.op == net::RdmaOp::kNack) {
    // Sequence error: rewind to the responder's expected PSN (go-back-N).
    const std::int64_t exp = p.rdma.psn;
    if (exp >= snd_una_ && exp < snd_nxt_) {
      ++stats_.go_back_n_events;
      snd_una_ = std::max(snd_una_, exp);
      snd_nxt_ = snd_una_;
      arm_rto();
    }
  }
  send_window();
  check_done();
}

void RdmaSender::arm_rto() {
  if (snd_una_ >= n_pkts_) {
    rto_deadline_ = -1;
    return;
  }
  rto_deadline_ = sim_.now() + cfg_.rto;
  schedule_rto_event(rto_deadline_);
}

void RdmaSender::schedule_rto_event(SimTime at) {
  if (rto_event_pending_) return;
  rto_event_pending_ = true;
  sim_.schedule_at(at, [this, ep = epoch_] {
    if (ep != epoch_) return;
    rto_event_pending_ = false;
    if (rto_deadline_ < 0 || done_) return;
    if (sim_.now() < rto_deadline_) {
      schedule_rto_event(rto_deadline_);
      return;
    }
    on_rto();
  });
}

void RdmaSender::on_rto() {
  rto_deadline_ = -1;
  if (done_) return;
  ++stats_.rtos;
  // Go-back-N from the last acknowledged packet.
  snd_nxt_ = snd_una_;
  send_window();
  arm_rto();
}

void RdmaSender::check_done() {
  if (done_ || snd_una_ < n_pkts_) return;
  done_ = true;
  rto_deadline_ = -1;
  obs::emit(sim_.now(), obs::Cat::kTransport, obs::Kind::kFlowEnd,
            obs::intern_actor("rdma"), sim_.now() - start_time_, qp_);
  if (done_cb_) done_cb_(sim_.now() - start_time_);
}

void RdmaSender::reset(std::uint32_t new_qp) {
  ++epoch_;
  qp_ = new_qp;
  msg_bytes_ = n_pkts_ = 0;
  snd_una_ = snd_nxt_ = high_water_ = 0;
  done_ = false;
  rto_deadline_ = -1;
  rto_event_pending_ = false;
  stats_ = RdmaSenderStats{};
}

RdmaReceiver::RdmaReceiver(Simulator& sim, const RdmaConfig& cfg,
                           std::uint32_t qp, SendFn send)
    : sim_(sim), cfg_(cfg), qp_(qp), send_(std::move(send)) {}

void RdmaReceiver::on_data(const net::Packet& p) {
  if (!p.rdma.valid || p.rdma.op != net::RdmaOp::kData || p.rdma.qp != qp_)
    return;
  if (p.rdma.psn == expected_psn_) {
    ++expected_psn_;
    ++delivered_;
    nak_outstanding_ = false;
    send_ack(/*nack=*/false, expected_psn_ - 1);
    return;
  }
  if (p.rdma.psn > expected_psn_) {
    ++ooo_dropped_;
    // One NAK per out-of-order episode (RC "sequence error" semantics).
    if (!nak_outstanding_) {
      nak_outstanding_ = true;
      ++naks_sent_;
      send_ack(/*nack=*/true, expected_psn_);
    }
    return;
  }
  // Duplicate of an already-delivered packet: re-ACK the current state.
  send_ack(/*nack=*/false, expected_psn_ - 1);
}

void RdmaReceiver::send_ack(bool nack, std::int64_t psn) {
  net::Packet a;
  a.kind = net::PktKind::kTransportAck;
  a.frame_bytes = 64;
  a.rdma.valid = true;
  a.rdma.qp = qp_;
  a.rdma.op = nack ? net::RdmaOp::kNack : net::RdmaOp::kAck;
  a.rdma.psn = psn;
  send_(std::move(a));
}

}  // namespace lgsim::transport
