#include "transport/tcp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"

namespace lgsim::transport {

namespace {
// Ring capacity for per-segment state. The in-flight window of any modelled
// flow (bounded by cwnd and switch buffers) is far below this, so state can
// be recycled as seg_una advances — this keeps arbitrarily long iperf-style
// flows at O(window) memory.
constexpr std::int64_t kRing = 1 << 16;
constexpr std::int64_t kRingMask = kRing - 1;
}  // namespace

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(Simulator& sim, const TcpConfig& cfg, std::uint32_t flow_id,
                     SendFn send, DoneFn done)
    : sim_(sim),
      cfg_(cfg),
      flow_id_(flow_id),
      send_(std::move(send)),
      done_cb_(std::move(done)),
      mss_(cfg.mss) {
  segs_.assign(kRing, SegState::kUnsent);
  sent_at_.assign(kRing, 0);
  retx_flag_.assign(kRing / 64, 0);
}

std::int32_t TcpSender::seg_payload(std::int64_t seg) const {
  if (seg + 1 < n_segs_) return mss_;
  return static_cast<std::int32_t>(flow_bytes_ - (n_segs_ - 1) * mss_);
}

std::int64_t TcpSender::pending_tx_bytes() const {
  if (seg_nxt_ >= n_segs_) return 0;
  return flow_bytes_ - seg_nxt_ * mss_;
}

std::int64_t TcpSender::inflight_bytes() const { return inflight_; }

void TcpSender::start(std::int64_t bytes) {
  assert(bytes > 0);
  flow_bytes_ = bytes;
  n_segs_ = (bytes + mss_ - 1) / mss_;
  start_time_ = sim_.now();
  obs::emit(sim_.now(), obs::Cat::kTransport, obs::Kind::kFlowStart,
            obs::intern_actor("tcp"), bytes, flow_id_);
  cwnd_ = cfg_.init_cwnd_segs * mss_;
  dctcp_window_end_ = 0;
  try_send();
  arm_timers();
}

void TcpSender::transmit_segment(std::int64_t seg, bool is_retx) {
  net::Packet p;
  p.kind = net::PktKind::kData;
  p.tcp.valid = true;
  p.tcp.flow = flow_id_;
  p.tcp.seq = seg * mss_;
  p.tcp.payload = seg_payload(seg);
  p.tcp.fin = (seg + 1 == n_segs_);
  p.frame_bytes = p.tcp.payload + cfg_.header_bytes;
  p.uid = static_cast<std::uint64_t>(seg);

  SegState& st = segs_[seg & kRingMask];
  if (st != SegState::kInflight) inflight_ += p.tcp.payload;
  if (st == SegState::kLost) --lost_count_;
  st = SegState::kInflight;
  sent_at_[seg & kRingMask] = sim_.now();
  if (is_retx) {
    retx_flag_[(seg & kRingMask) >> 6] |= 1ull << (seg & 63);
    ++stats_.retransmissions;
  } else {
    retx_flag_[(seg & kRingMask) >> 6] &= ~(1ull << (seg & 63));
    ++stats_.segments_sent;
  }
  send_(std::move(p));
}

SimTime TcpSender::pacing_interval(std::int64_t bytes) const {
  double rate;  // bytes per second
  if (bbr_filled_pipe_ && bbr_btlbw_ > 0) {
    rate = bbr_btlbw_ * cfg_.bbr_pacing_margin;
  } else {
    // Startup: pace at 2.885x the current estimate (or an aggressive initial
    // guess from the initial window over the RTT hint).
    const double base = bbr_btlbw_ > 0 ? bbr_btlbw_
                                       : cwnd_ / (30e-6);  // ~init_cwnd / 30us
    rate = 2.885 * base;
  }
  if (rate <= 0) return usec(1);
  return static_cast<SimTime>(static_cast<double>(bytes) * 1e9 / rate) + 1;
}

void TcpSender::try_send() {
  if (done_) return;
  if (cfg_.cc == TcpCc::kBbr) {
    if (pacing_armed_) return;
    // One segment per pacing tick.
    std::int64_t seg = -1;
    if (lost_count_ > 0) {
      for (std::int64_t s = seg_una_; s < seg_nxt_; ++s) {
        if (segs_[s & kRingMask] == SegState::kLost) {
          seg = s;
          break;
        }
      }
    }
    if (seg < 0 && seg_nxt_ < n_segs_ &&
        inflight_bytes() + mss_ <= static_cast<std::int64_t>(cwnd_)) {
      seg = seg_nxt_++;
    }
    if (seg < 0) return;
    const bool is_retx = segs_[seg & kRingMask] == SegState::kLost;
    transmit_segment(seg, is_retx);
    pacing_armed_ = true;
    sim_.schedule_in(pacing_interval(seg_payload(seg) + cfg_.header_bytes), [this] {
      pacing_armed_ = false;
      try_send();
    });
    return;
  }
  send_window();
}

void TcpSender::send_window() {
  // Retransmit marked-lost segments first, then new data, while cwnd allows.
  bool sent = true;
  while (sent) {
    sent = false;
    if (inflight_bytes() + mss_ > static_cast<std::int64_t>(std::max(cwnd_, 1.0 * mss_)))
      return;
    if (lost_count_ > 0) {
      for (std::int64_t s = seg_una_; s < seg_nxt_; ++s) {
        if (segs_[s & kRingMask] == SegState::kLost) {
          transmit_segment(s, /*is_retx=*/true);
          sent = true;
          break;
        }
      }
    }
    if (sent) continue;
    if (seg_nxt_ < n_segs_) {
      transmit_segment(seg_nxt_++, /*is_retx=*/false);
      sent = true;
    }
  }
}

void TcpSender::on_rtt_sample(SimTime rtt) {
  if (!have_rtt_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    have_rtt_ = true;
  } else {
    const SimTime err = std::abs(srtt_ - rtt);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  if (bbr_min_rtt_ == 0 || rtt < bbr_min_rtt_) bbr_min_rtt_ = rtt;
}

void TcpSender::on_ack(const net::Packet& ack) {
  if (done_ || !ack.tcp.valid || ack.tcp.flow != flow_id_) return;
  const bool any_ece = ack.tcp.ece;

  // 1. SACK scoreboard update.
  for (int i = 0; i < ack.tcp.n_sack; ++i) {
    const auto& blk = ack.tcp.sack[i];
    stats_.ever_sacked = true;
    for (std::int64_t b = blk.start; b < blk.end; b += mss_) {
      const std::int64_t s = seg_of_byte(b);
      if (s < seg_una_ || s >= seg_nxt_) continue;
      SegState& st = segs_[s & kRingMask];
      if (st == SegState::kInflight) {
        inflight_ -= seg_payload(s);
        st = SegState::kSacked;
        ++sacked_count_;
      } else if (st == SegState::kLost) {
        st = SegState::kSacked;
        --lost_count_;
        ++sacked_count_;
      }
    }
  }

  // 2. Cumulative ACK advance. A segment is acked when every one of its
  // bytes is covered; the final segment is shorter than the MSS, so it is
  // acked exactly when the whole flow is.
  std::int64_t ack_seg = std::min(ack.tcp.ack / mss_, n_segs_ - 1);
  if (ack.tcp.ack >= flow_bytes_) ack_seg = n_segs_;
  std::int64_t newly_acked = 0;
  SimTime rtt_sample = -1;
  while (seg_una_ < ack_seg && seg_una_ < n_segs_) {
    SegState& st = segs_[seg_una_ & kRingMask];
    if (st == SegState::kInflight) inflight_ -= seg_payload(seg_una_);
    if (st == SegState::kSacked) --sacked_count_;
    if (st == SegState::kLost) --lost_count_;
    if (st != SegState::kAcked) newly_acked += seg_payload(seg_una_);
    // Karn's algorithm: only never-retransmitted segments give RTT samples.
    const bool was_retx =
        (retx_flag_[(seg_una_ & kRingMask) >> 6] >> (seg_una_ & 63)) & 1;
    if (!was_retx && st != SegState::kAcked)
      rtt_sample = sim_.now() - sent_at_[seg_una_ & kRingMask];
    // RACK reordering detection: the cumulative ACK is filling this hole
    // with its *original* transmission while newer data was already SACKed
    // above it — the path (or a link-local retransmitter) reorders.
    if (!was_retx && st == SegState::kInflight && sacked_count_ > 0 &&
        !reordering_seen_) {
      reordering_seen_ = true;
      stats_.reordering_seen = true;
    }
    st = SegState::kAcked;
    // Recycle the ring slot far behind us.
    segs_[(seg_una_ + kRing - 1) & kRingMask] = SegState::kUnsent;
    ++seg_una_;
  }
  if (rtt_sample >= 0) on_rtt_sample(rtt_sample);
  if (newly_acked > 0) {
    rto_backoff_ = 0;
    tlp_outstanding_ = false;
    bbr_delivered_ += newly_acked;
  }

  // 3. Recovery bookkeeping.
  if (in_recovery_ && seg_una_ >= recovery_point_) in_recovery_ = false;

  // 4. Congestion control.
  cc_on_ack(newly_acked, any_ece);

  // 5. SACK-based loss detection (fast retransmit).
  detect_losses();

  arm_timers();
  try_send();
  check_done();
}

void TcpSender::detect_losses() {
  if (sacked_count_ == 0) return;  // nothing SACKed: no scan needed
  // RFC 6675-style: a segment is lost once >= 3 MSS of SACKed bytes sit
  // above it. Scan the window from seg_una_ to the highest SACKed segment.
  std::int64_t highest_sacked = -1;
  for (std::int64_t s = seg_nxt_ - 1; s >= seg_una_; --s) {
    if (segs_[s & kRingMask] == SegState::kSacked) {
      highest_sacked = s;
      break;
    }
  }
  if (highest_sacked < 0) return;

  // Bytes SACKed above each hole; walk backwards accumulating.
  std::int64_t sacked_above = 0;
  std::vector<std::int64_t> to_retx;
  for (std::int64_t s = highest_sacked; s >= seg_una_; --s) {
    const SegState st = segs_[s & kRingMask];
    if (st == SegState::kSacked) {
      sacked_above += seg_payload(s);
      continue;
    }
    if (st == SegState::kInflight && sacked_above >= 3 * mss_) {
      // RACK-style time gate: only declare a transmission lost once it is at
      // least a smoothed RTT old (plus the adaptive reordering window once
      // the connection has seen reordering). This prevents re-marking the
      // same hole on every SACK while its retransmission is in flight, and
      // keeps out-of-order link-local retransmissions from triggering
      // spurious cwnd cuts on connections that learned the path reorders.
      const SimTime reo_wnd = reordering_seen_ ? srtt_ / 4 : 0;
      const SimTime age = sim_.now() - sent_at_[s & kRingMask];
      if (age > std::max<SimTime>(srtt_ + reo_wnd, usec(5)))
        to_retx.push_back(s);
    }
  }
  stats_.max_sacked_bytes = std::max(stats_.max_sacked_bytes, sacked_above);
  if (sacked_above > 2 * mss_) {
    stats_.sacked_over_2mss = true;
    if (pending_tx_bytes() > 0) stats_.sacked_over_2mss_before_done = true;
  }
  if (to_retx.empty()) return;

  if (!in_recovery_) {
    enter_recovery(/*from_ecn=*/false);
    if (stats_.pending_bytes_at_first_cut < 0)
      stats_.pending_bytes_at_first_cut = pending_tx_bytes();
  }
  for (auto it = to_retx.rbegin(); it != to_retx.rend(); ++it) {
    if (segs_[*it & kRingMask] != SegState::kInflight) continue;
    inflight_ -= seg_payload(*it);
    segs_[*it & kRingMask] = SegState::kLost;
    ++lost_count_;
    ++stats_.fast_retransmits;
  }
}

void TcpSender::enter_recovery(bool from_ecn) {
  in_recovery_ = true;
  recovery_point_ = seg_nxt_;
  ++stats_.cwnd_reductions;
  if (from_ecn) ++stats_.ecn_cwnd_reductions;
  cc_on_loss();
}

void TcpSender::cc_on_loss() {
  switch (cfg_.cc) {
    case TcpCc::kDctcp:
      // Packet loss (not ECN): halve like Reno.
      ssthresh_ = std::max(cwnd_ / 2, 2.0 * mss_);
      cwnd_ = ssthresh_;
      break;
    case TcpCc::kCubic:
      cubic_wmax_ = cwnd_;
      ssthresh_ = std::max(cwnd_ * cfg_.cubic_beta, 2.0 * mss_);
      cwnd_ = ssthresh_;
      cubic_epoch_start_ = -1;
      break;
    case TcpCc::kBbr:
      break;  // loss-agnostic
  }
}

void TcpSender::cc_on_ack(std::int64_t newly_acked, bool any_ece) {
  if (newly_acked <= 0 && !any_ece) return;
  struct ClampGuard {
    TcpSender* s;
    ~ClampGuard() { s->cwnd_ = std::min(s->cwnd_, s->cfg_.max_cwnd_bytes); }
  } clamp{this};
  switch (cfg_.cc) {
    case TcpCc::kDctcp: {
      if (cfg_.ecn_capable) {
        dctcp_acked_ += newly_acked;
        if (any_ece) dctcp_marked_ += std::max<std::int64_t>(newly_acked, mss_);
        if (any_ece && !dctcp_cut_this_window_) {
          // React once per window of data (RFC 8257 §3.3).
          dctcp_cut_this_window_ = true;
          cwnd_ = std::max(cwnd_ * (1.0 - dctcp_alpha_ / 2.0), 2.0 * mss_);
          ++stats_.ecn_cwnd_reductions;
        }
        if (seg_una_ >= dctcp_window_end_) {
          if (dctcp_acked_ > 0) {
            const double f =
                std::min(1.0, static_cast<double>(dctcp_marked_) /
                                  static_cast<double>(dctcp_acked_));
            dctcp_alpha_ = (1.0 - cfg_.dctcp_g) * dctcp_alpha_ + cfg_.dctcp_g * f;
          }
          dctcp_acked_ = dctcp_marked_ = 0;
          dctcp_cut_this_window_ = false;
          dctcp_window_end_ = seg_nxt_;
        }
      }
      if (in_recovery_) break;
      if (cwnd_ < ssthresh_) {
        cwnd_ += newly_acked;  // slow start
      } else {
        cwnd_ += static_cast<double>(mss_) * newly_acked / cwnd_;
      }
      break;
    }
    case TcpCc::kCubic: {
      if (in_recovery_) break;
      if (cwnd_ < ssthresh_) {
        cwnd_ += newly_acked;
        break;
      }
      if (cubic_epoch_start_ < 0) cubic_epoch_start_ = sim_.now();
      const double t = to_sec(sim_.now() - cubic_epoch_start_);
      const double wmax_seg = cubic_wmax_ / mss_;
      const double k = std::cbrt(wmax_seg * (1.0 - cfg_.cubic_beta) / cfg_.cubic_c);
      const double target_seg = cfg_.cubic_c * std::pow(t - k, 3.0) + wmax_seg;
      const double target = std::max(target_seg * mss_, cwnd_ + 0.01 * mss_);
      // Approach the cubic target gradually (per-ACK).
      cwnd_ += std::max(0.0, (target - cwnd_)) *
               (static_cast<double>(newly_acked) / std::max(cwnd_, 1.0));
      break;
    }
    case TcpCc::kBbr: {
      // Delivery-rate estimation, one sample per ~RTT.
      if (bbr_delivered_time_ == 0) bbr_delivered_time_ = sim_.now();
      const SimTime span = sim_.now() - bbr_delivered_time_;
      const SimTime round = std::max<SimTime>(srtt_, usec(10));
      if (span >= round) {
        const double rate = static_cast<double>(bbr_delivered_) * 1e9 /
                            static_cast<double>(span);
        bbr_delivered_ = 0;
        bbr_delivered_time_ = sim_.now();
        if (rate > bbr_btlbw_) bbr_btlbw_ = rate;
        if (!bbr_filled_pipe_) {
          if (rate > bbr_full_bw_ * 1.25) {
            bbr_full_bw_ = rate;
            bbr_full_bw_rounds_ = 0;
          } else if (++bbr_full_bw_rounds_ >= 3) {
            bbr_filled_pipe_ = true;
          }
        }
      }
      const double bdp = bbr_btlbw_ * to_sec(std::max<SimTime>(bbr_min_rtt_, usec(1)));
      cwnd_ = std::max(2.0 * bdp, 4.0 * mss_);
      break;
    }
  }
}

SimTime TcpSender::current_rto() const {
  const SimTime base =
      std::max(cfg_.rto_min, have_rtt_ ? srtt_ + 4 * rttvar_ : cfg_.rto_min);
  return base << std::min(rto_backoff_, 10);
}

void TcpSender::arm_timers() {
  if (done_) {
    tlp_deadline_ = rto_deadline_ = -1;
    return;
  }
  if (seg_una_ >= n_segs_) {
    tlp_deadline_ = rto_deadline_ = -1;
    return;
  }
  rto_deadline_ = sim_.now() + current_rto();
  schedule_rto_event(rto_deadline_);
  if (cfg_.tlp_enabled && !tlp_outstanding_ && !in_recovery_ && have_rtt_ &&
      inflight_bytes() > 0) {
    tlp_deadline_ = sim_.now() + std::min(2 * srtt_ + cfg_.tlp_slack, current_rto());
    schedule_tlp_event(tlp_deadline_);
  } else {
    tlp_deadline_ = -1;
  }
}

void TcpSender::schedule_tlp_event(SimTime at) {
  if (tlp_event_pending_) return;  // the pending event will chase the deadline
  tlp_event_pending_ = true;
  sim_.schedule_at(at, [this, ep = epoch_] {
    if (ep != epoch_) return;
    tlp_event_pending_ = false;
    if (tlp_deadline_ < 0 || done_) return;
    if (sim_.now() < tlp_deadline_) {
      schedule_tlp_event(tlp_deadline_);
      return;
    }
    on_tlp_timer();
  });
}

void TcpSender::schedule_rto_event(SimTime at) {
  if (rto_event_pending_) return;
  rto_event_pending_ = true;
  sim_.schedule_at(at, [this, ep = epoch_] {
    if (ep != epoch_) return;
    rto_event_pending_ = false;
    if (rto_deadline_ < 0 || done_) return;
    if (sim_.now() < rto_deadline_) {
      schedule_rto_event(rto_deadline_);
      return;
    }
    on_rto_timer();
  });
}

void TcpSender::on_tlp_timer() {
  tlp_deadline_ = -1;
  if (done_) return;
  // Probe with the highest-sequence unacked segment (RFC 8985 §7.3).
  std::int64_t probe = -1;
  for (std::int64_t s = seg_nxt_ - 1; s >= seg_una_; --s) {
    const SegState st = segs_[s & kRingMask];
    if (st == SegState::kInflight || st == SegState::kLost) {
      probe = s;
      break;
    }
  }
  if (probe < 0) return;
  ++stats_.tlp_probes;
  tlp_outstanding_ = true;
  if (segs_[probe & kRingMask] == SegState::kInflight)
    inflight_ -= seg_payload(probe);
  if (segs_[probe & kRingMask] != SegState::kLost) ++lost_count_;
  segs_[probe & kRingMask] = SegState::kLost;
  transmit_segment(probe, /*is_retx=*/true);
  arm_timers();
}

void TcpSender::on_rto_timer() {
  rto_deadline_ = -1;
  if (done_) return;
  ++stats_.rtos;
  ++rto_backoff_;
  // Everything outstanding is presumed lost; go back to slow start.
  for (std::int64_t s = seg_una_; s < seg_nxt_; ++s) {
    SegState& st = segs_[s & kRingMask];
    if (st == SegState::kInflight) {
      inflight_ -= seg_payload(s);
      st = SegState::kLost;
      ++lost_count_;
    } else if (st == SegState::kSacked) {
      st = SegState::kLost;  // conservative: forget SACK info on RTO
      --sacked_count_;
      ++lost_count_;
    }
  }
  ssthresh_ = std::max(cwnd_ / 2, 2.0 * mss_);
  cwnd_ = 1.0 * mss_;
  in_recovery_ = false;
  if (seg_una_ < seg_nxt_) {
    transmit_segment(seg_una_, /*is_retx=*/true);
  }
  arm_timers();
}

void TcpSender::check_done() {
  if (done_ || seg_una_ < n_segs_) return;
  done_ = true;
  tlp_deadline_ = rto_deadline_ = -1;
  obs::emit(sim_.now(), obs::Cat::kTransport, obs::Kind::kFlowEnd,
            obs::intern_actor("tcp"), sim_.now() - start_time_, flow_id_);
  if (done_cb_) done_cb_(sim_.now() - start_time_);
}

void TcpSender::reset(std::uint32_t new_flow_id) {
  ++epoch_;
  flow_id_ = new_flow_id;
  // Clear only the ring slots a finished flow can have touched.
  const std::int64_t used = std::min<std::int64_t>(n_segs_, kRing);
  std::fill(segs_.begin(), segs_.begin() + used, SegState::kUnsent);
  std::fill(retx_flag_.begin(), retx_flag_.begin() + (used + 63) / 64, 0ull);
  flow_bytes_ = n_segs_ = 0;
  inflight_ = 0;
  lost_count_ = sacked_count_ = 0;
  seg_una_ = seg_nxt_ = 0;
  done_ = false;
  cwnd_ = 0;
  ssthresh_ = 1e18;
  in_recovery_ = false;
  recovery_point_ = 0;
  dctcp_alpha_ = 1.0;
  dctcp_acked_ = dctcp_marked_ = 0;
  dctcp_window_end_ = 0;
  dctcp_cut_this_window_ = false;
  cubic_wmax_ = 0;
  cubic_epoch_start_ = -1;
  bbr_btlbw_ = 0;
  bbr_min_rtt_ = 0;
  bbr_filled_pipe_ = false;
  bbr_full_bw_ = 0;
  bbr_full_bw_rounds_ = 0;
  bbr_delivered_ = 0;
  bbr_delivered_time_ = 0;
  pacing_armed_ = false;
  srtt_ = rttvar_ = 0;
  have_rtt_ = false;
  tlp_deadline_ = rto_deadline_ = -1;
  tlp_event_pending_ = rto_event_pending_ = false;
  rto_backoff_ = 0;
  tlp_outstanding_ = false;
  reordering_seen_ = false;
  stats_ = TcpSenderStats{};
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(Simulator& sim, const TcpConfig& cfg,
                         std::uint32_t flow_id, SendFn send_ack)
    : sim_(sim), cfg_(cfg), flow_id_(flow_id), send_ack_(std::move(send_ack)) {}

void TcpReceiver::on_data(const net::Packet& data) {
  if (!data.tcp.valid || data.tcp.payload <= 0) return;
  if (data.tcp.flow != flow_id_) return;  // straggler from a previous trial
  const std::int64_t lo = data.tcp.seq;
  const std::int64_t hi = lo + data.tcp.payload;
  bytes_received_ += data.tcp.payload;

  if (lo <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, hi);
    // Consume any out-of-order ranges that are now contiguous.
    while (!ooo_.empty() && ooo_.front().first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, ooo_.front().second);
      ooo_.erase(ooo_.begin());
    }
  } else {
    ++ooo_segments_;
    // Insert/merge [lo, hi) into the sorted out-of-order list.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->second < lo) ++it;
    if (it == ooo_.end() || hi < it->first) {
      ooo_.insert(it, {lo, hi});
    } else {
      it->first = std::min(it->first, lo);
      it->second = std::max(it->second, hi);
      auto next = std::next(it);
      while (next != ooo_.end() && next->first <= it->second) {
        it->second = std::max(it->second, next->second);
        next = ooo_.erase(next);
      }
    }
  }

  net::Packet ack;
  ack.kind = net::PktKind::kTransportAck;
  ack.frame_bytes = cfg_.header_bytes;
  ack.tcp.valid = true;
  ack.tcp.flow = flow_id_;
  ack.tcp.ack = rcv_nxt_;
  ack.tcp.payload = 0;
  // Immediate per-packet CE echo (DCTCP-style; the sender ignores it unless
  // ECN-capable).
  ack.tcp.ece = data.tcp.ce;
  ack.tcp.n_sack = static_cast<std::uint8_t>(std::min<std::size_t>(ooo_.size(), 3));
  for (int i = 0; i < ack.tcp.n_sack; ++i) {
    ack.tcp.sack[i].start = ooo_[i].first;
    ack.tcp.sack[i].end = ooo_[i].second;
  }
  ++acks_sent_;
  send_ack_(std::move(ack));
}

}  // namespace lgsim::transport
