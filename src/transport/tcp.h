// Packet-level TCP model: one sender/receiver pair per flow.
//
// This models the transport *reactions* that the paper's FCT experiments
// depend on, following the kernel behaviour the paper cites:
//  - segment-aligned SACK scoreboard with fast retransmit after >= 3 MSS of
//    SACKed bytes above a hole (equivalently 3 dupacks, RFC 6675); the
//    associated cwnd reduction happens at most once per recovery episode —
//    this is exactly the ">2 MSS SACKed => cwnd cut" criterion used by the
//    paper's Fig. 13 flow classification;
//  - a RACK-TLP-style tail-loss probe (PTO ~ 2*SRTT + worst-case delayed-ACK
//    slack) and a classic RTO with exponential backoff, floored at
//    RTOmin = 1 ms like the testbed;
//  - three congestion controllers: DCTCP (ECN fraction alpha), CUBIC
//    (loss-based, beta 0.7) and a simplified BBR (rate-based, loss-agnostic).
//
// Flows complete when every byte has been cumulatively ACKed at the sender,
// which is what the testbed's application-level timestamping measures.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::transport {

enum class TcpCc : std::uint8_t { kDctcp, kCubic, kBbr };

struct TcpConfig {
  TcpCc cc = TcpCc::kDctcp;
  std::int32_t mss = 1448;          // payload bytes per segment
  /// Ethernet + IP + TCP(+timestamps) + FCS bytes per frame: payload + 70
  /// gives the classic 1518 B frame for an MSS of 1448.
  std::int32_t header_bytes = 70;
  double init_cwnd_segs = 10.0;
  SimTime rto_min = msec(1);
  bool tlp_enabled = true;          // RACK-TLP tail-loss probe
  /// Worst-case delayed-ACK slack added to the probe timeout (RFC 8985 uses
  /// WCDelAckT; Linux adds 2 ms when pacing the probe).
  SimTime tlp_slack = msec(2);
  bool ecn_capable = false;         // DCTCP turns this on
  double dctcp_g = 0.0625;          // DCTCP alpha gain (kernel default 1/16)
  double cubic_c = 0.4;
  double cubic_beta = 0.7;
  /// BBR steady-state pacing gain applied to the measured bottleneck rate.
  double bbr_pacing_margin = 1.0;
  /// Receive-window / rmem cap on the congestion window (bytes). Keeps
  /// long-running flows bounded the way kernel autotuning does.
  double max_cwnd_bytes = 1'500'000;
};

struct TcpSenderStats {
  std::int64_t segments_sent = 0;      // first transmissions
  std::int64_t retransmissions = 0;    // end-to-end retransmissions
  std::int64_t fast_retransmits = 0;
  std::int64_t tlp_probes = 0;
  std::int64_t rtos = 0;
  std::int64_t cwnd_reductions = 0;    // recovery episodes entered
  std::int64_t ecn_cwnd_reductions = 0;
  std::int64_t max_sacked_bytes = 0;   // max SACKed bytes seen above a hole
  bool ever_sacked = false;            // any SACK block received
  bool sacked_over_2mss = false;       // Fig. 13: ">2 MSS SACKed" condition
  bool sacked_over_2mss_before_done = false;  // ...while data was still pending
  std::int64_t pending_bytes_at_first_cut = -1;  // Fig. 13 group C vs D
  bool reordering_seen = false;        // RACK observed out-of-order delivery
};

class TcpSender {
 public:
  using SendFn = std::function<void(net::Packet&&)>;
  using DoneFn = std::function<void(SimTime fct)>;

  TcpSender(Simulator& sim, const TcpConfig& cfg, std::uint32_t flow_id,
            SendFn send, DoneFn done);

  /// Start transmitting `bytes`. The flow is complete once every byte has
  /// been cumulatively ACKed.
  void start(std::int64_t bytes);

  /// Return the sender to its pristine state so the object can be reused for
  /// the next trial of an FCT experiment (with a fresh flow id, so straggler
  /// packets of a previous trial are ignored). Outstanding timer events are
  /// invalidated via an epoch bump (they check the epoch and bail).
  void reset(std::uint32_t new_flow_id);

  /// Deliver an ACK from the network.
  void on_ack(const net::Packet& ack);

  bool done() const { return done_; }
  double cwnd_bytes() const { return cwnd_; }
  const TcpSenderStats& stats() const { return stats_; }
  std::uint32_t flow_id() const { return flow_id_; }
  /// Bytes not yet handed to the network for the first time.
  std::int64_t pending_tx_bytes() const;

 private:
  enum class SegState : std::uint8_t { kUnsent, kInflight, kSacked, kAcked, kLost };

  std::int32_t seg_payload(std::int64_t seg) const;
  std::int64_t seg_of_byte(std::int64_t byte) const { return byte / mss_; }
  void transmit_segment(std::int64_t seg, bool is_retx);
  void try_send();
  void send_window();
  std::int64_t inflight_bytes() const;
  void process_sack(const net::Packet& ack);
  void detect_losses();
  void enter_recovery(bool from_ecn);
  void on_rtt_sample(SimTime rtt);
  SimTime current_rto() const;
  void arm_timers();
  void schedule_tlp_event(SimTime at);
  void schedule_rto_event(SimTime at);
  void on_tlp_timer();
  void on_rto_timer();
  void cc_on_ack(std::int64_t newly_acked, bool any_ece);
  void cc_on_loss();
  void check_done();
  SimTime pacing_interval(std::int64_t bytes) const;

  Simulator& sim_;
  TcpConfig cfg_;
  std::uint32_t flow_id_;
  SendFn send_;
  DoneFn done_cb_;

  std::int64_t flow_bytes_ = 0;
  std::int64_t n_segs_ = 0;
  std::int32_t mss_ = 1448;
  std::vector<SegState> segs_;      // ring-indexed per-segment state
  std::vector<SimTime> sent_at_;    // ring-indexed first/last send time
  std::vector<std::uint64_t> retx_flag_;  // ring-indexed bitmap (Karn)
  std::int64_t inflight_ = 0;       // bytes out, neither acked nor sacked/lost
  std::int64_t lost_count_ = 0;     // segments currently marked kLost
  std::int64_t sacked_count_ = 0;   // segments currently marked kSacked
  std::int64_t seg_una_ = 0;   // first unacked segment
  std::int64_t seg_nxt_ = 0;   // next never-sent segment
  bool done_ = false;
  SimTime start_time_ = 0;

  // Congestion state.
  double cwnd_ = 0.0;           // bytes
  double ssthresh_ = 1e18;
  bool in_recovery_ = false;
  std::int64_t recovery_point_ = 0;  // recovery ends when seg_una_ passes it
  // DCTCP.
  double dctcp_alpha_ = 1.0;
  std::int64_t dctcp_acked_ = 0;
  std::int64_t dctcp_marked_ = 0;
  std::int64_t dctcp_window_end_ = 0;  // segment index ending the observation window
  bool dctcp_cut_this_window_ = false;
  // CUBIC.
  double cubic_wmax_ = 0.0;
  SimTime cubic_epoch_start_ = -1;
  // BBR (simplified).
  double bbr_btlbw_ = 0.0;        // bytes/sec estimate
  SimTime bbr_min_rtt_ = 0;
  bool bbr_filled_pipe_ = false;
  double bbr_full_bw_ = 0.0;
  int bbr_full_bw_rounds_ = 0;
  std::int64_t bbr_delivered_ = 0;
  SimTime bbr_delivered_time_ = 0;
  bool pacing_armed_ = false;

  // RACK reordering adaptation (RFC 8985 §7.1): once the connection has
  // observed genuine reordering (a SACKed hole filled by the original
  // transmission), the reordering window opens to srtt/4 and dupack-count
  // loss detection is deferred by it. Long-running connections over a
  // LinkGuardianNB link learn this after the first event — the reason the
  // paper's iperf CUBIC sees no cwnd cuts (Table 3) while fresh short flows
  // still cut (Fig. 13).
  bool reordering_seen_ = false;

  // RTT estimation.
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  bool have_rtt_ = false;

  // Timers. Deadline-based with lazy re-arming: updating a deadline is O(1)
  // and a single pending heap event per timer sleeps until the (possibly
  // moved) deadline — no cancellation on the per-ACK fast path.
  SimTime tlp_deadline_ = -1;
  SimTime rto_deadline_ = -1;
  bool tlp_event_pending_ = false;
  bool rto_event_pending_ = false;
  int rto_backoff_ = 0;
  bool tlp_outstanding_ = false;
  std::uint32_t epoch_ = 0;  // invalidates timer events across reset()

  TcpSenderStats stats_;
};

/// TCP receiver: cumulative ACK + up to 3 SACK blocks + per-packet ECN echo
/// (DCTCP-style immediate CE reflection, no delayed ACKs).
class TcpReceiver {
 public:
  using SendFn = std::function<void(net::Packet&&)>;

  TcpReceiver(Simulator& sim, const TcpConfig& cfg, std::uint32_t flow_id,
              SendFn send_ack);

  void on_data(const net::Packet& data);

  /// Reset for reuse across FCT trials; data for other flow ids is ignored.
  void reset(std::uint32_t new_flow_id) {
    flow_id_ = new_flow_id;
    rcv_nxt_ = 0;
    ooo_.clear();
    bytes_received_ = 0;
    ooo_segments_ = 0;
  }

  std::int64_t bytes_received() const { return bytes_received_; }
  std::int64_t acks_sent() const { return acks_sent_; }
  std::int64_t out_of_order_segments() const { return ooo_segments_; }

 private:
  Simulator& sim_;
  TcpConfig cfg_;
  std::uint32_t flow_id_;
  SendFn send_ack_;
  std::int64_t rcv_nxt_ = 0;                 // next expected byte
  std::vector<std::pair<std::int64_t, std::int64_t>> ooo_;  // sorted ranges
  std::int64_t bytes_received_ = 0;
  std::int64_t acks_sent_ = 0;
  std::int64_t ooo_segments_ = 0;
};

}  // namespace lgsim::transport
