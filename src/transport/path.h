// Testbed path model: hostA -> swS -> (protected link) -> swR -> hostB.
//
// Reproduces the data path the paper's FCT experiments traverse (h4 -> sw2
// -> VOA link -> sw6 -> h8 in Fig. 7, collapsed to the segments that affect
// timing): endpoint NIC serialization, switch pipeline latencies, the
// corrupting link with optional LinkGuardian protection, and a fixed
// per-endpoint host-stack delay that calibrates the ~30 us TCP RTT (~2 us
// for NIC-terminated RDMA).
#pragma once

#include <functional>
#include <memory>

#include "lg/link.h"
#include "net/packet.h"
#include "net/pipeline.h"
#include "net/port.h"
#include "net/protection.h"
#include "sim/simulator.h"

namespace lgsim::transport {

struct PathConfig {
  BitRate rate = gbps(100);
  /// Per-endpoint processing delay applied on packet receive (host stack for
  /// kernel TCP; DMA/doorbell for RDMA NICs).
  SimTime host_delay = usec(12);
  SimTime pipeline_latency = nsec(400);
  SimTime nic_prop = nsec(100);
  /// Host NIC / qdisc queue budget (BQL-style bound).
  std::int64_t nic_queue_bytes = 4'000'000;
  lg::LinkSpec link;
  lg::LgConfig lg;
};

/// Applies a protection scheme's path-level knobs to a config: the scheme's
/// redundancy shrinks the protected link's usable rate by its capacity
/// fraction under the given raw process, and its framing/merge pipeline adds
/// to the link's one-way latency. The residual loss process is installed
/// separately (the caller owns it and may want the raw handle for fault
/// scripts): `path.link().set_loss_model(residual.model.get())`.
inline PathConfig with_protection(PathConfig pc,
                                  const net::ProtectionScheme& scheme,
                                  const net::LossSpec& raw) {
  pc.link.rate = static_cast<BitRate>(static_cast<double>(pc.link.rate) *
                                      scheme.capacity_fraction(raw));
  pc.link.prop_delay += scheme.added_latency();
  return pc;
}

class TestbedPath {
 public:
  using SinkFn = std::function<void(net::Packet&&)>;

  TestbedPath(Simulator& sim, const PathConfig& cfg)
      : sim_(sim),
        cfg_(cfg),
        link_(sim, cfg.link, cfg.lg),
        nic_a_(sim, "nicA", cfg.rate, cfg.nic_prop),
        nic_b_(sim, "nicB", cfg.rate, cfg.nic_prop),
        // Each hop's fixed latency is a pooled PipelineDelay stage: the
        // scheduled closures stay within the kernel's inline-callback budget
        // instead of capturing the Packet by value.
        pipe_a_to_link_(sim, cfg.pipeline_latency,
                        [this](net::Packet&& p) { link_.send_forward(std::move(p)); }),
        pipe_b_to_link_(sim, cfg.pipeline_latency,
                        [this](net::Packet&& p) { link_.send_reverse(std::move(p)); }),
        pipe_to_b_(sim, cfg.pipeline_latency + cfg.host_delay,
                   [this](net::Packet&& p) {
                     if (to_b_) to_b_(std::move(p));
                   }),
        pipe_to_a_(sim, cfg.pipeline_latency + cfg.host_delay,
                   [this](net::Packet&& p) {
                     if (to_a_) to_a_(std::move(p));
                   }) {
    nic_a_q_ = nic_a_.add_queue({.byte_limit = cfg.nic_queue_bytes});
    nic_b_q_ = nic_b_.add_queue({.byte_limit = cfg.nic_queue_bytes});

    // hostA NIC -> sender switch ingress pipeline -> protected link egress.
    nic_a_.set_deliver(
        [this](net::Packet&& p) { pipe_a_to_link_.accept(std::move(p)); });
    // hostB NIC -> receiver switch ingress pipeline -> reverse direction.
    nic_b_.set_deliver(
        [this](net::Packet&& p) { pipe_b_to_link_.accept(std::move(p)); });
    // Protected link output -> receiver switch egress -> hostB stack.
    link_.set_forward_sink(
        [this](net::Packet&& p) { pipe_to_b_.accept(std::move(p)); });
    // Reverse output -> sender switch egress -> hostA stack.
    link_.set_reverse_sink(
        [this](net::Packet&& p) { pipe_to_a_.accept(std::move(p)); });
  }

  /// Install the endpoint receive handlers.
  void set_sink_at_b(SinkFn fn) { to_b_ = std::move(fn); }
  void set_sink_at_a(SinkFn fn) { to_a_ = std::move(fn); }

  /// Transmit from host A (data direction, crosses the corrupting link).
  void send_from_a(net::Packet p) { nic_a_.enqueue(nic_a_q_, std::move(p)); }
  /// Transmit from host B (ACK direction).
  void send_from_b(net::Packet p) { nic_b_.enqueue(nic_b_q_, std::move(p)); }

  lg::ProtectedLink& link() { return link_; }
  net::EgressPort& nic_a() { return nic_a_; }
  net::EgressPort& nic_b() { return nic_b_; }

 private:
  Simulator& sim_;
  PathConfig cfg_;
  lg::ProtectedLink link_;
  net::EgressPort nic_a_;
  net::EgressPort nic_b_;
  net::PipelineDelay pipe_a_to_link_;
  net::PipelineDelay pipe_b_to_link_;
  net::PipelineDelay pipe_to_b_;
  net::PipelineDelay pipe_to_a_;
  int nic_a_q_ = 0;
  int nic_b_q_ = 0;
  SinkFn to_a_;
  SinkFn to_b_;
};

}  // namespace lgsim::transport
