// Per-host flow arrival processes for the fabric-scale traffic engine.
//
// Follows the methodology of "Traffic Generation for Benchmarking Data
// Centre Networks" (PAPERS.md): each host offers flows drawn from an
// empirical size distribution at a rate derived from a target *load
// fraction* of its edge (NIC) capacity —
//
//   flows/sec = load_fraction * edge_rate / (8 * mean_flow_bytes)
//
// — with interarrival gaps that are either exponential (Poisson process) or
// lognormal (burstier arrivals at the same mean rate; sigma controls the
// burstiness, sigma -> 0 degenerates to deterministic spacing).
//
// Determinism: generators are seeded per (run seed, cell, host) via
// stream_rng(), a SplitMix64-style mix, so every {seed x time-slice} cell of
// a sharded run draws an independent, scheduling-independent stream — the
// property the traffic engine's byte-identical-across-LGSIM_BENCH_JOBS
// contract rests on. Restarting a Poisson process at a slice boundary is
// still a Poisson process (memorylessness), so slicing a run's horizon does
// not change the offered load's law.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/random.h"
#include "util/units.h"

namespace lgsim::workload {

/// Independent stream seeding: a SplitMix64 finalizer over the mixed words,
/// so adjacent (seed, cell, host) triples land far apart in state space.
inline std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t cell,
                                std::uint64_t host) {
  std::uint64_t z = seed;
  z ^= cell + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
  z ^= host + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline Rng stream_rng(std::uint64_t seed, std::uint64_t cell,
                      std::uint64_t host) {
  return Rng(mix_stream(seed, cell, host));
}

struct ArrivalSpec {
  enum class Process : std::uint8_t { kPoisson, kLognormal };
  Process process = Process::kPoisson;
  /// Offered load as a fraction of the edge (host NIC) capacity.
  double load_fraction = 0.1;
  BitRate edge_rate = gbps(25);
  /// Lognormal shape parameter (gap CV = sqrt(exp(sigma^2) - 1)); the scale
  /// is always chosen so the *mean* gap matches the Poisson process's.
  double lognormal_sigma = 1.0;
};

/// Mean arrival rate implied by the spec for a workload with the given mean
/// flow size.
inline double flows_per_sec(const ArrivalSpec& s, double mean_flow_bytes) {
  if (mean_flow_bytes <= 0) return 0.0;
  return s.load_fraction * static_cast<double>(s.edge_rate) /
         (8.0 * mean_flow_bytes);
}

/// One host's arrival-gap generator. Draws a fixed number of RNG values per
/// gap (1 uniform for Poisson, 2 for lognormal) so streams stay aligned.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalSpec& spec, double mean_flow_bytes, Rng rng)
      : spec_(spec), rng_(rng) {
    const double rate = flows_per_sec(spec, mean_flow_bytes);
    mean_gap_sec_ = rate > 0 ? 1.0 / rate : 0.0;
    // Lognormal with E[gap] = mean_gap: mu = log(mean) - sigma^2/2.
    lognormal_mu_ = mean_gap_sec_ > 0
                        ? std::log(mean_gap_sec_) -
                              0.5 * spec.lognormal_sigma * spec.lognormal_sigma
                        : 0.0;
  }

  /// Seconds until the next arrival; +inf when the spec's rate is zero.
  double next_gap_sec() {
    if (mean_gap_sec_ <= 0) return std::numeric_limits<double>::infinity();
    if (spec_.process == ArrivalSpec::Process::kPoisson)
      return rng_.exponential(mean_gap_sec_);
    // Box-Muller; one (u1, u2) pair per gap.
    double u1 = rng_.uniform();
    const double u2 = rng_.uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.141592653589793 * u2);
    return std::exp(lognormal_mu_ + spec_.lognormal_sigma * z);
  }

  double mean_gap_sec() const { return mean_gap_sec_; }

 private:
  ArrivalSpec spec_;
  Rng rng_;
  double mean_gap_sec_ = 0.0;
  double lognormal_mu_ = 0.0;
};

}  // namespace lgsim::workload
