#include "workload/flow_sizes.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lgsim::workload {

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kMetaKeyValue: return "Meta key-value";
    case Workload::kGoogleSearchRpc: return "Google search RPC";
    case Workload::kGoogleAllRpc: return "Google all RPC";
    case Workload::kMetaHadoop: return "Meta Hadoop";
    case Workload::kAlibabaStorage: return "Alibaba storage";
    case Workload::kDctcpWebSearch: return "DCTCP web search";
  }
  return "?";
}

FlowSizeDistribution::FlowSizeDistribution(std::vector<Point> points)
    : points_(std::move(points)) {
  assert(points_.size() >= 2);
  assert(points_.front().cdf == 0.0);
  assert(points_.back().cdf == 1.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].bytes >= points_[i - 1].bytes);
    assert(points_[i].cdf >= points_[i - 1].cdf);
  }
}

FlowSizeDistribution FlowSizeDistribution::make(Workload w) {
  // Control points (bytes, CDF) digitized from the published distributions.
  switch (w) {
    case Workload::kMetaKeyValue:
      // Memcache traffic: dominated by sub-kilobyte responses.
      return FlowSizeDistribution({{30, 0.0},
                                   {64, 0.15},
                                   {128, 0.40},
                                   {256, 0.65},
                                   {512, 0.82},
                                   {1024, 0.92},
                                   {1448, 0.96},
                                   {4096, 0.99},
                                   {100'000, 1.0}});
    case Workload::kGoogleSearchRpc:
      return FlowSizeDistribution({{50, 0.0},
                                   {143, 0.25},
                                   {300, 0.50},
                                   {700, 0.72},
                                   {1448, 0.88},
                                   {4096, 0.95},
                                   {100'000, 0.99},
                                   {1'000'000, 1.0}});
    case Workload::kGoogleAllRpc:
      // 143 B is the most frequent flow size (§4.3): a 0.15-mass atom,
      // encoded as a duplicated control point with a CDF jump.
      return FlowSizeDistribution({{40, 0.0},
                                   {143, 0.30},
                                   {143, 0.45},
                                   {256, 0.62},
                                   {512, 0.75},
                                   {1448, 0.89},
                                   {10'000, 0.96},
                                   {1'000'000, 0.995},
                                   {10'000'000, 1.0}});
    case Workload::kMetaHadoop:
      return FlowSizeDistribution({{100, 0.0},
                                   {300, 0.25},
                                   {1024, 0.55},
                                   {1448, 0.62},
                                   {10'000, 0.80},
                                   {100'000, 0.92},
                                   {1'000'000, 0.97},
                                   {10'000'000, 1.0}});
    case Workload::kAlibabaStorage:
      // Block storage: bimodal, capped at 2 MB (§4.3 uses the 2 MB maximum).
      // Requests at the cap pile up into an exact 2 MB atom.
      return FlowSizeDistribution({{512, 0.0},
                                   {4096, 0.35},
                                   {16'384, 0.55},
                                   {65'536, 0.72},
                                   {262'144, 0.85},
                                   {1'048'576, 0.95},
                                   {2'097'152, 0.98},
                                   {2'097'152, 1.0}});
    case Workload::kDctcpWebSearch:
      // Web search back-end: 24,387 B is the most frequent size (§4.3),
      // a 0.13-mass atom.
      return FlowSizeDistribution({{1'000, 0.0},
                                   {6'000, 0.15},
                                   {13'000, 0.30},
                                   {24'387, 0.40},
                                   {24'387, 0.53},
                                   {100'000, 0.70},
                                   {1'000'000, 0.85},
                                   {10'000'000, 0.97},
                                   {30'000'000, 1.0}});
  }
  throw std::logic_error("unknown workload");
}

double FlowSizeDistribution::cdf(double bytes) const {
  if (bytes < points_.front().bytes) return 0.0;
  if (bytes >= points_.back().bytes) return 1.0;
  // Strict `<` finds the first point *above* bytes, so an atom's duplicated
  // points are skipped past and bytes == atom lands on the jump's upper CDF.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (bytes < points_[i].bytes) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      if (bytes <= a.bytes) return a.cdf;
      const double f = (std::log(bytes) - std::log(a.bytes)) /
                       (std::log(b.bytes) - std::log(a.bytes));
      return a.cdf + f * (b.cdf - a.cdf);
    }
  }
  return 1.0;
}

std::int64_t FlowSizeDistribution::quantile(double u) const {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].cdf) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      // Atom (CDF jump at one byte value): return it exactly rather than
      // going through exp(log(...)), whose rounding could land one byte off.
      if (b.bytes <= a.bytes) return static_cast<std::int64_t>(b.bytes);
      if (b.cdf <= a.cdf) return static_cast<std::int64_t>(b.bytes);
      const double f = (u - a.cdf) / (b.cdf - a.cdf);
      const double lg =
          std::log(a.bytes) + f * (std::log(b.bytes) - std::log(a.bytes));
      return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::exp(lg)));
    }
  }
  return static_cast<std::int64_t>(points_.back().bytes);
}

std::int64_t FlowSizeDistribution::sample(Rng& rng) const {
  return quantile(rng.uniform());
}

double FlowSizeDistribution::single_packet_fraction(double mtu_payload) const {
  return cdf(mtu_payload);
}

double FlowSizeDistribution::mean_bytes() const {
  // Numeric integration over the piecewise segments.
  double mean = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    const double pa = b.cdf - a.cdf;
    if (pa <= 0) continue;
    // Mean of a log-uniform segment.
    const double la = std::log(a.bytes), lb = std::log(b.bytes);
    const double seg_mean =
        lb > la ? (b.bytes - a.bytes) / (lb - la) : a.bytes;
    mean += pa * seg_mean;
  }
  return mean;
}

}  // namespace lgsim::workload
