// Flow-size distributions for the datacenter workloads of Fig. 2.
//
// Each workload is an empirical CDF over message/flow sizes, encoded as
// piecewise log-linear control points digitized from the published curves
// the paper plots (Meta key-value [7], Google search RPC / all RPC [52],
// Meta Hadoop [47], Alibaba storage [34], DCTCP web search [3]). Three sizes
// the paper singles out are exactly representable *atoms* (control points
// duplicated with a CDF jump, so inverse sampling returns the exact byte
// value with the atom's probability mass): 143 B is the most frequent
// Google-all-RPC flow, 24,387 B the most frequent DCTCP web-search flow, and
// 2 MB the Alibaba storage request cap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"

namespace lgsim::workload {

enum class Workload : std::uint8_t {
  kMetaKeyValue,
  kGoogleSearchRpc,
  kGoogleAllRpc,
  kMetaHadoop,
  kAlibabaStorage,
  kDctcpWebSearch,
};

const char* workload_name(Workload w);

/// Empirical CDF over flow sizes in bytes.
class FlowSizeDistribution {
 public:
  struct Point {
    double bytes;
    double cdf;  // P(size <= bytes)
  };

  explicit FlowSizeDistribution(std::vector<Point> points);
  static FlowSizeDistribution make(Workload w);

  /// P(size <= bytes), log-linear interpolation between control points.
  /// Atoms (duplicated control points) count at their byte value: cdf(143)
  /// includes the whole 143 B jump for Google all RPC.
  double cdf(double bytes) const;
  /// Inverse CDF: the flow size at cumulative probability u in [0, 1).
  /// Monotone non-decreasing in u; u inside an atom's CDF jump returns the
  /// atom's exact byte value (no log-interpolation rounding).
  std::int64_t quantile(double u) const;
  /// Inverse CDF sampling: quantile(rng.uniform()).
  std::int64_t sample(Rng& rng) const;
  /// Fraction of flows that fit in a single packet of `mtu_payload` bytes.
  double single_packet_fraction(double mtu_payload = 1448) const;
  double mean_bytes() const;
  double min_bytes() const { return points_.front().bytes; }
  double max_bytes() const { return points_.back().bytes; }

 private:
  std::vector<Point> points_;
};

}  // namespace lgsim::workload
