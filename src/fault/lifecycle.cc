#include "fault/lifecycle.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "fault/injector.h"
#include "harness/parallel.h"
#include "lg/link.h"
#include "monitor/corruptd.h"
#include "net/loss_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "telemetry/estimator.h"
#include "telemetry/probe.h"

namespace lgsim::fault {

LifecycleResult run_lifecycle(const LifecycleConfig& cfg) {
  const Scenario scenario = make_scenario(cfg.scenario);

  LifecycleResult res;
  res.scenario = scenario.name;
  res.seed = cfg.seed;
  res.onset_at = scenario.onset;

  Simulator sim;
  Rng rng(cfg.seed);

  lg::LinkSpec spec;
  spec.rate = cfg.rate;
  spec.name = "lifecycle";
  lg::LgConfig lgc = lg::tuned_for_rate(cfg.lg, cfg.rate);
  lg::ProtectedLink link(sim, spec, lgc);

  // The link starts healthy: a Gilbert-Elliott chain pinned out of the bad
  // state. The injector re-aims it (drive_rate / set_params / link flaps).
  net::GilbertElliottLoss::Params healthy;
  healthy.p_good_to_bad = 0.0;
  healthy.p_bad_to_good = 1.0 / std::max(1.0, cfg.mean_burst);
  healthy.loss_good = 0.0;
  healthy.loss_bad = 1.0;
  auto ge_owned =
      std::make_unique<net::GilbertElliottLoss>(healthy, rng.split());
  net::GilbertElliottLoss* ge = ge_owned.get();
  link.set_loss_model(std::move(ge_owned));

  // Estimator feed: a LinkProber on the sending switch, a sequence-window
  // estimator on the receiving one. Oracle cells construct NEITHER — the
  // prober would add events and loss-model RNG draws, and oracle runs must
  // stay byte-identical to the pre-telemetry code.
  const bool estimator_fed = cfg.feed == CounterFeed::kEstimator;
  std::unique_ptr<telemetry::SeqWindowEstimator> estimator;
  std::unique_ptr<telemetry::LinkProber> prober;
  if (estimator_fed) {
    telemetry::EstimatorConfig ec;
    ec.tau = cfg.probe_tau;
    ec.period = cfg.probe_period;
    ec.window = cfg.probe_window > 0
                    ? cfg.probe_window
                    : cfg.probe_tau / std::max<SimTime>(1, cfg.probe_period) + 2;
    estimator = std::make_unique<telemetry::SeqWindowEstimator>(ec);
    telemetry::ProberConfig pc;
    pc.period = cfg.probe_period;
    pc.name = kProbeTarget;
    prober = std::make_unique<telemetry::LinkProber>(
        sim, pc, [&link](net::Packet&& p) { link.send_forward(std::move(p)); });
    prober->start();
  }

  // Per-uid delivery ground truth (and the probe tap when estimator-fed:
  // LinkGuardian never protects kProbe, so probes surface here whatever the
  // protection mode).
  std::vector<std::uint8_t> delivered;
  std::int64_t delivered_count = 0;
  // Interning mutates the sink's name table, so only estimator cells do it:
  // oracle cells must keep their trace bytes (names included) unchanged.
  const std::uint32_t probe_rx_actor =
      estimator_fed ? obs::intern_actor("estimator") : 0;
  link.set_forward_sink([&](net::Packet&& p) {
    if (p.kind == net::PktKind::kProbe && p.probe.valid) {
      if (estimator) {
        estimator->on_probe(p.probe.seq, p.probe.sent_at, sim.now());
        obs::emit(sim.now(), obs::Cat::kTelemetry, obs::Kind::kProbeRx,
                  probe_rx_actor, p.probe.seq, sim.now() - p.probe.sent_at);
      }
      return;
    }
    if (p.kind != net::PktKind::kData) return;
    if (p.uid >= delivered.size()) delivered.resize(p.uid + 1, 0);
    if (delivered[p.uid]) {
      ++res.duplicates;  // mode-switch edge: era replay, harmless
      return;
    }
    delivered[p.uid] = 1;
    ++delivered_count;
  });

  // Control plane: corruptd polls the forward port's counters and publishes
  // on a bus with a modelled Redis hop.
  monitor::PubSubBus bus;
  bus.bind(sim);
  bus.set_delay(cfg.bus_delay);

  monitor::CorruptdConfig mc;
  mc.poll_period = cfg.poll_period;
  mc.window_frames = cfg.window_frames;
  mc.threshold = cfg.detect_threshold;
  mc.renotify_period = cfg.renotify_period;
  // Estimator counters are probe units (small), so the binding window must
  // be time, not a frame budget: stale probe evidence ages out at TAU and
  // recovery (AutoFallback stepping back up) stays observable.
  if (estimator_fed) mc.window_tau = cfg.probe_tau;
  monitor::Corruptd daemon(sim, mc, bus);
  if (estimator_fed) {
    // The oracle-free feed: framesRxAll = probes the recovered schedule says
    // were emitted, framesRxOk = distinct probes that actually arrived.
    telemetry::SeqWindowEstimator* est = estimator.get();
    Simulator* simp = &sim;
    daemon.add_port(
        {kLinkTarget,
         [est] { return est->cum_received(); },
         [est, simp] { return est->cum_expected(simp->now()); }});
  } else {
    daemon.add_port(
        {kLinkTarget,
         [&] { return link.forward_port().counters().delivered_frames; },
         [&] {
           const auto& c = link.forward_port().counters();
           return c.delivered_frames + c.corrupted_frames;
         }});
  }
  daemon.start();

  // AutoFallback owns the mode once protection first engages. Ordered <-> NB
  // flips live through set_preserve_order (sequence state preserved, buffer
  // handed off — never a disable/enable cycle, which would reset eras while
  // old-era frames are still in flight and mass-drop the new era as
  // duplicates). Only kOff disables; re-engaging from kOff is the clean
  // era switchover (all in-flight frames are unprotected by then).
  monitor::AutoFallback fallback(
      sim, cfg.fallback, [&] { return daemon.loss_rate(kLinkTarget); },
      [&](monitor::LgMode m) {
        if (m == monitor::LgMode::kOff) {
          if (link.lg_enabled()) link.disable_lg();
          return;
        }
        link.set_actual_loss_rate(
            std::max(1e-9, daemon.loss_rate(kLinkTarget)));
        const bool ordered = m == monitor::LgMode::kOrdered;
        if (link.lg_enabled()) {
          link.set_preserve_order(ordered);
        } else {
          link.set_preserve_order(ordered);
          link.enable_lg();
        }
      });
  bool fallback_started = false;

  // Activation: first delivered notification enables LinkGuardian with the
  // Eq. 2 copy count; renotifications (renotify_period) are idempotent.
  std::int64_t sent = 0;
  std::int64_t engage_watermark = -1;
  monitor::LgActivator activator(bus, cfg.lg_target_loss);
  activator.watch(kLinkTarget, [&](int copies) {
    if (link.lg_enabled() || fallback_started) return;
    link.set_actual_loss_rate(activator.records().back().measured_loss);
    res.retx_copies = copies;
    link.enable_lg();
    res.engaged_at = sim.now();
    engage_watermark = sent;
    if (cfg.auto_fallback) {
      fallback.start(monitor::LgMode::kOrdered);
      fallback_started = true;
    }
  });

  // Scripted faults.
  FaultInjector injector(sim, scenario.script);
  injector.add_link(kLinkTarget, ge);
  injector.add_bus(kBusTarget, &bus);
  injector.add_monitor(kMonitorTarget, &daemon);
  if (prober) injector.add_prober(kProbeTarget, prober.get());
  injector.arm();

  // Traffic: paced injection at offered_load x line rate, one
  // self-rescheduling event. Stops `drain` before the horizon so in-flight
  // frames settle inside the run.
  const double gap =
      static_cast<double>((cfg.frame_bytes + kEthernetPreamble + kEthernetIfg) *
                          8) *
      1e9 / (static_cast<double>(cfg.rate) * cfg.offered_load);
  const SimTime stop_inject = scenario.horizon - cfg.drain;
  delivered.reserve(
      static_cast<std::size_t>(static_cast<double>(stop_inject) / gap) + 8);
  std::function<void()> inject = [&] {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = cfg.frame_bytes;
    p.uid = static_cast<std::uint64_t>(sent);
    p.created_at = sim.now();
    link.send_forward(std::move(p));
    ++sent;
    const SimTime next =
        static_cast<SimTime>(gap * static_cast<double>(sent));
    if (next <= stop_inject) sim.schedule_at(next, [&] { inject(); });
  };
  sim.schedule_at(0, [&] { inject(); });

  sim.schedule_at(scenario.horizon, [&] {
    daemon.stop();
    fallback.stop();
    if (prober) prober->stop();
    if (estimator) {
      const telemetry::LossEstimate e = estimator->estimate(sim.now());
      res.estimate_known = e.known;
      res.estimate_rate = e.rate;
      obs::emit(sim.now(), obs::Cat::kTelemetry, obs::Kind::kEstimate,
                probe_rx_actor, static_cast<std::int64_t>(e.rate * 1e9),
                e.samples, e.known ? 1 : 0);
    }
  });
  sim.run(scenario.horizon + msec(10));

  // Loss split at the engagement watermark.
  res.offered = sent;
  res.delivered = delivered_count;
  res.lost_total = res.offered - res.delivered;
  if (delivered.size() < static_cast<std::size_t>(sent))
    delivered.resize(static_cast<std::size_t>(sent), 0);
  for (std::int64_t uid = 0; uid < sent; ++uid) {
    if (delivered[static_cast<std::size_t>(uid)]) continue;
    if (engage_watermark >= 0 && uid >= engage_watermark) {
      ++res.lost_after_protection;
    } else {
      ++res.lost_before_protection;
    }
  }

  res.wire_corrupted = link.forward_port().counters().corrupted_frames;
  if (!bus.history().empty()) {
    res.detected_at = bus.history().front().at;
    res.detection_latency = res.detected_at - scenario.onset;
  }
  res.notifications = bus.counters().published;
  res.notifications_dropped = bus.counters().dropped;
  res.polls = daemon.polls();
  res.stalled_polls = daemon.stalled_polls();
  res.faults_applied = injector.stats().applied;
  res.ramp_steps = injector.stats().ramp_steps;
  if (prober) {
    res.probes_sent = prober->sent();
    res.probes_suppressed = prober->suppressed();
  }
  if (estimator) res.probes_rx = estimator->received();
  res.mode_changes = fallback.changes();
  res.lg_enabled_at_end = link.lg_enabled();
  if (fallback_started) {
    res.final_mode = fallback.mode();
  } else if (link.lg_enabled()) {
    res.final_mode = link.preserve_order() ? monitor::LgMode::kOrdered
                                           : monitor::LgMode::kNonBlocking;
  } else {
    res.final_mode = monitor::LgMode::kOff;
  }

  // Snapshot into the run's trace sink (per-cell when run under a
  // TraceCollector grid): the components die with this function.
  if (obs::TraceSink* sink = obs::current_sink()) {
    obs::MetricsRegistry& m = sink->metrics();
    sim.export_metrics(m);
    link.forward_port().export_metrics(m);
    m.counter("lifecycle.offered") = res.offered;
    m.counter("lifecycle.delivered") = res.delivered;
    m.counter("lifecycle.lost_before") = res.lost_before_protection;
    m.counter("lifecycle.lost_after") = res.lost_after_protection;
    m.counter("lifecycle.faults_applied") = res.faults_applied;
    m.counter("lifecycle.mode_changes") =
        static_cast<std::int64_t>(res.mode_changes.size());
    if (estimator_fed) {
      m.counter("telemetry.probes_sent") = res.probes_sent;
      m.counter("telemetry.probes_rx") = res.probes_rx;
      m.counter("telemetry.probes_suppressed") = res.probes_suppressed;
      m.counter("telemetry.estimate_ppb") =
          static_cast<std::int64_t>(res.estimate_rate * 1e9);
    }
  }
  return res;
}

std::vector<LifecycleResult> run_lifecycle_grid(
    const std::vector<LifecycleConfig>& grid) {
  harness::ParallelRunner<LifecycleConfig, LifecycleResult> runner(
      [](const LifecycleConfig& c) { return run_lifecycle(c); });
  for (const LifecycleConfig& c : grid) runner.add(c.seed, c);
  return runner.run_in_grid_order();
}

}  // namespace lgsim::fault
