// Fault scenarios as data: a FaultScript is an ordered timeline of typed
// fault events, interpreted by a FaultInjector (injector.h) that schedules
// every application through the run's own Simulator. The paper's end-to-end
// story is dynamic — a link *starts* corrupting, corruptd detects it
// (Appendix C), LinkGuardian is enabled live (§3.6), automatic fallback
// steps protection down if the link degrades past the Table 1 regime (§5) —
// and this is the input format that makes those time-varying faults a
// first-class, deterministic experiment parameter.
//
// Determinism contract: a script is pure data (no RNG, no wall clock); the
// injector applies every event at an exact SimTime on the cell's simulator,
// so a {script, seed} pair reproduces byte-identically for any
// LGSIM_BENCH_JOBS value (see DESIGN.md §10).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/loss_model.h"
#include "util/units.h"

namespace lgsim::fault {

enum class FaultKind : std::uint8_t {
  kBerStep = 0,     // set the link's marginal loss rate to `a`
  kBerRamp,         // ramp loss rate a -> b over `duration`, every `step`
  kAttenStep,       // re-aim the VOA to `a` dB
  kAttenRamp,       // ramp attenuation a -> b dB over `duration`
  kGilbertEpisode,  // Gilbert-Elliott burst window: `ge` for `duration`
  kLinkDown,        // link flap: every frame lost until kLinkUp
  kLinkUp,
  kBusDelay,        // inject `a` ns of extra control-plane latency
  kBusOutageStart,  // notifications published in the window are dropped
  kBusOutageEnd,
  kPollStallStart,  // corruptd's counter polls return nothing (blind window)
  kPollStallEnd,
  kProbeStallStart, // the link prober's emission engine wedges (seq freezes)
  kProbeStallEnd,
};

const char* fault_kind_name(FaultKind k);

/// How a ramp interpolates between its endpoints. Loss rates span decades,
/// so the physical default for BER ramps is log-linear (a fiber degrading
/// "one decade per interval"); attenuation in dB is already logarithmic and
/// ramps linearly.
enum class RampShape : std::uint8_t { kLinear, kLog };

/// One timeline entry. `target` names a handle registered with the injector
/// (a link's loss model, a VOA, a PubSubBus, a Corruptd daemon); payload
/// fields are kind-specific and documented on the FaultScript builders.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kBerStep;
  std::string target;
  double a = 0.0;
  double b = 0.0;
  SimTime duration = 0;
  SimTime step = 0;
  RampShape shape = RampShape::kLinear;
  net::GilbertElliottLoss::Params ge{};
};

/// Builder for fault timelines. Events may be appended in any order; the
/// injector sorts them stably by time, so same-time events apply in append
/// order (the same (time, sequence) contract the event kernel gives).
class FaultScript {
 public:
  /// Step the marginal loss rate of link `target` to `rate` at `at`.
  FaultScript& ber_step(SimTime at, std::string target, double rate) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kBerStep;
    e.target = std::move(target);
    e.a = rate;
    events_.push_back(std::move(e));
    return *this;
  }

  /// Ramp the loss rate of `target` from `from` to `to` over `duration`,
  /// re-aiming every `step` (log-linear by default: corrosion and connector
  /// contamination degrade BER over decades, not linearly).
  FaultScript& ber_ramp(SimTime at, std::string target, double from, double to,
                        SimTime duration, SimTime step,
                        RampShape shape = RampShape::kLog) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kBerRamp;
    e.target = std::move(target);
    e.a = from;
    e.b = to;
    e.duration = duration;
    e.step = step;
    e.shape = shape;
    events_.push_back(std::move(e));
    return *this;
  }

  /// Re-aim the VOA on attenuator `target` to `db` at `at`.
  FaultScript& atten_step(SimTime at, std::string target, double db) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kAttenStep;
    e.target = std::move(target);
    e.a = db;
    events_.push_back(std::move(e));
    return *this;
  }

  /// Linear attenuation ramp `from` -> `to` dB over `duration`.
  FaultScript& atten_ramp(SimTime at, std::string target, double from,
                          double to, SimTime duration, SimTime step) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kAttenRamp;
    e.target = std::move(target);
    e.a = from;
    e.b = to;
    e.duration = duration;
    e.step = step;
    events_.push_back(std::move(e));
    return *this;
  }

  /// Gilbert-Elliott burst episode: the link's GE model is re-parameterised
  /// to `params` for `duration`, then restored to whatever it had before.
  FaultScript& gilbert_episode(SimTime at, std::string target,
                               net::GilbertElliottLoss::Params params,
                               SimTime duration) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kGilbertEpisode;
    e.target = std::move(target);
    e.duration = duration;
    e.ge = params;
    events_.push_back(std::move(e));
    return *this;
  }

  /// Link flap: hard-down at `at`, back up `down_for` later. Down frames are
  /// lost without consuming RNG draws, so the surrounding loss pattern is
  /// unshifted (see net::DrivableLoss).
  FaultScript& link_flap(SimTime at, std::string target, SimTime down_for) {
    FaultEvent d;
    d.at = at;
    d.kind = FaultKind::kLinkDown;
    d.target = target;
    events_.push_back(std::move(d));
    FaultEvent u;
    u.at = at + down_for;
    u.kind = FaultKind::kLinkUp;
    u.target = std::move(target);
    events_.push_back(std::move(u));
    return *this;
  }

  /// Inject `extra` ns of control-plane latency on bus `target` from `at`.
  FaultScript& bus_delay(SimTime at, std::string target, SimTime extra) {
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kBusDelay;
    e.target = std::move(target);
    e.a = static_cast<double>(extra);
    events_.push_back(std::move(e));
    return *this;
  }

  /// Notification outage window on bus `target`: everything published in
  /// [at, at + duration) is dropped.
  FaultScript& bus_outage(SimTime at, std::string target, SimTime duration) {
    FaultEvent s;
    s.at = at;
    s.kind = FaultKind::kBusOutageStart;
    s.target = target;
    events_.push_back(std::move(s));
    FaultEvent e;
    e.at = at + duration;
    e.kind = FaultKind::kBusOutageEnd;
    e.target = std::move(target);
    events_.push_back(std::move(e));
    return *this;
  }

  /// Monitor-blind window on daemon `target`: counter polls in
  /// [at, at + duration) return nothing.
  FaultScript& poll_stall(SimTime at, std::string target, SimTime duration) {
    FaultEvent s;
    s.at = at;
    s.kind = FaultKind::kPollStallStart;
    s.target = target;
    events_.push_back(std::move(s));
    FaultEvent e;
    e.at = at + duration;
    e.kind = FaultKind::kPollStallEnd;
    e.target = std::move(target);
    events_.push_back(std::move(e));
    return *this;
  }

  /// Probe-engine stall on prober `target`: in [at, at + duration) the
  /// prober's timer fires but nothing is emitted and its sequence number
  /// freezes — the estimator downstream must neither divide by zero nor
  /// report the silence as 100% loss forever (telemetry/estimator.h).
  FaultScript& probe_stall(SimTime at, std::string target, SimTime duration) {
    FaultEvent s;
    s.at = at;
    s.kind = FaultKind::kProbeStallStart;
    s.target = target;
    events_.push_back(std::move(s));
    FaultEvent e;
    e.at = at + duration;
    e.kind = FaultKind::kProbeStallEnd;
    e.target = std::move(target);
    events_.push_back(std::move(e));
    return *this;
  }

  const std::vector<FaultEvent>& events() const { return events_; }

  /// Stable sort by application time; same-time events keep append order.
  /// The injector calls this once in arm() so event indices are stable for
  /// the whole run.
  void stable_sort_by_time() {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& x, const FaultEvent& y) {
                       return x.at < y.at;
                     });
  }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Latest event application time (ramp tails included) — the minimum
  /// horizon a run needs to see the whole script.
  SimTime end_time() const {
    SimTime end = 0;
    for (const FaultEvent& e : events_) {
      const SimTime t = e.at + e.duration;
      if (t > end) end = t;
    }
    return end;
  }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace lgsim::fault
