// Closed-loop fault-lifecycle experiment: the paper's end-to-end story on
// one protected link, driven by a scripted fault scenario.
//
//   FaultInjector -> link corrupts -> corruptd's counter polls detect it ->
//   notification over the (delayed, droppable) pub-sub bus -> LinkGuardian
//   enabled live with Eq. 2 copies -> AutoFallback steps the mode down/up as
//   the scripted loss evolves.
//
// The harness keeps per-uid ground truth of every offered frame, so loss is
// split at the protection-engagement watermark: frames sent before
// LinkGuardian engaged vs after. The headline acceptance number for the
// "onset" scenario is lost_after_protection == 0 — a live switchover in
// ordered mode masks every corruption loss from the moment it engages.
//
// Determinism: one Simulator/Rng per run, scripted faults only (no ambient
// state), so a {scenario, seed} cell is byte-identical for any
// LGSIM_BENCH_JOBS via harness::ParallelRunner (bench_fault_lifecycle pins
// this with its golden-diff mode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/scenarios.h"
#include "lg/config.h"
#include "monitor/fallback.h"
#include "util/units.h"

namespace lgsim::fault {

/// Where corruptd's per-link counters come from.
///   kOracle    — the forward port's delivered/corrupted counters: ground
///                truth the switch driver would expose, and exactly the
///                pre-PR-6 behaviour (no prober is constructed at all, so
///                oracle cells are event-, RNG- and trace-identical to the
///                old code).
///   kEstimator — a LinkProber emits sequenced probes down the same wire and
///                a SeqWindowEstimator derives the counters from what
///                arrives: the oracle-free closed loop (src/telemetry).
enum class CounterFeed : std::uint8_t { kOracle, kEstimator };

struct LifecycleConfig {
  std::string scenario = "onset";
  std::uint64_t seed = 1;

  // Dataplane.
  BitRate rate = gbps(25);
  std::int32_t frame_bytes = 1518;
  /// Offered load as a fraction of line rate (headroom keeps the normal
  /// queue from congesting so every undelivered uid is a corruption loss).
  double offered_load = 0.9;
  /// Mean burst length of the link's Gilbert-Elliott loss chain (frames).
  /// Default 1 (independent losses): Eq. 2's copy count assumes loss
  /// independence, and the paper's Fig. 20 measures overwhelmingly
  /// single-frame losses. Raise it (or use the burst-episode scenario) to
  /// study how burstiness erodes the zero-loss guarantee.
  double mean_burst = 1.0;

  // Control plane.
  SimTime poll_period = msec(1);
  std::int64_t window_frames = 20'000;
  double detect_threshold = 1e-4;
  /// Modelled Redis-hop latency between corruptd and the activator.
  SimTime bus_delay = usec(50);
  /// Corruptd re-publishes while loss persists (recovers dropped
  /// notifications in the bus-outage scenario).
  SimTime renotify_period = msec(5);
  double lg_target_loss = 1e-8;

  bool auto_fallback = true;
  monitor::FallbackConfig fallback = {5e-3, 5e-2, 0.5, msec(2)};

  lg::LgConfig lg;

  /// Injection stops this long before the scenario horizon so in-flight
  /// frames drain inside the run.
  SimTime drain = msec(5);

  // Telemetry (estimator feed only; ignored for kOracle).
  CounterFeed feed = CounterFeed::kOracle;
  /// Probe emission period. 64 B + overhead every 10 us is ~0.27% of a 25G
  /// link; halving it halves detection latency at low loss rates.
  SimTime probe_period = usec(10);
  /// Sliding estimate window (click's TAU): both the estimator's window and
  /// corruptd's window_tau, so stale probe evidence ages out and recovery is
  /// observable. 20 ms at the default period is ~2000 probes, making one
  /// lost probe a 5e-4 loss estimate — above detect_threshold, so detection
  /// latency is the time to the first lost probe plus a poll quantum.
  SimTime probe_tau = msec(20);
  /// Estimator slot count; 0 = sized automatically to cover probe_tau.
  std::int64_t probe_window = 0;
};

struct LifecycleResult {
  std::string scenario;
  std::uint64_t seed = 0;

  // Timeline (ns; -1 = never happened).
  SimTime onset_at = 0;
  SimTime detected_at = -1;   // first corruptd notification (publish time)
  SimTime engaged_at = -1;    // LinkGuardian enabled on the link
  SimTime detection_latency = -1;  // detected_at - onset_at

  // Per-uid ground-truth loss accounting.
  std::int64_t offered = 0;
  std::int64_t delivered = 0;
  std::int64_t duplicates = 0;
  std::int64_t lost_total = 0;
  std::int64_t lost_before_protection = 0;  // uid sent before engagement
  std::int64_t lost_after_protection = 0;   // uid sent after engagement
  std::int64_t wire_corrupted = 0;          // raw FCS drops on the fiber

  // Control plane.
  std::int64_t notifications = 0;
  std::int64_t notifications_dropped = 0;
  std::int64_t polls = 0;
  std::int64_t stalled_polls = 0;
  std::int64_t faults_applied = 0;
  std::int64_t ramp_steps = 0;
  int retx_copies = 0;  // Eq. 2 copies from the engaging notification
  std::vector<monitor::ModeChange> mode_changes;
  monitor::LgMode final_mode = monitor::LgMode::kOff;
  bool lg_enabled_at_end = false;

  // Telemetry (zeros / unknown when oracle-fed).
  std::int64_t probes_sent = 0;
  std::int64_t probes_rx = 0;        // distinct probes the estimator saw
  std::int64_t probes_suppressed = 0; // fires swallowed by a probe stall
  bool estimate_known = false;       // estimator had evidence at run end
  double estimate_rate = 0.0;        // final windowed loss estimate
};

/// Runs one scenario cell end to end.
LifecycleResult run_lifecycle(const LifecycleConfig& cfg);

/// Runs a grid of cells through harness::ParallelRunner; results come back
/// in submission order, byte-identical for any LGSIM_BENCH_JOBS.
std::vector<LifecycleResult> run_lifecycle_grid(
    const std::vector<LifecycleConfig>& grid);

}  // namespace lgsim::fault
