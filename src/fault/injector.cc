#include "fault/injector.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace lgsim::fault {

namespace {

const char* kKindNames[] = {
    "ber_step",     "ber_ramp",         "atten_step",     "atten_ramp",
    "ge_episode",   "link_down",        "link_up",        "bus_delay",
    "bus_outage_on", "bus_outage_off",  "poll_stall_on",  "poll_stall_off",
    "probe_stall_on", "probe_stall_off",
};

// Trace payloads are integers; scale per value domain so small magnitudes
// survive: loss rates in parts-per-billion, attenuation in milli-dB,
// delays already in ns, booleans as-is.
std::int64_t trace_value(FaultKind kind, double value) {
  switch (kind) {
    case FaultKind::kBerStep:
    case FaultKind::kBerRamp:
    case FaultKind::kGilbertEpisode:
      return static_cast<std::int64_t>(value * 1e9);
    case FaultKind::kAttenStep:
    case FaultKind::kAttenRamp:
      return static_cast<std::int64_t>(value * 1e3);
    default:
      return static_cast<std::int64_t>(value);
  }
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  const auto i = static_cast<std::size_t>(k);
  if (i < sizeof(kKindNames) / sizeof(kKindNames[0])) return kKindNames[i];
  return "?";
}

FaultInjector::FaultInjector(Simulator& sim, FaultScript script)
    : sim_(sim),
      script_(std::move(script)),
      trace_actor_(obs::intern_actor("fault-injector")) {}

void FaultInjector::add_link(const std::string& name, net::DrivableLoss* loss) {
  links_[name] = loss;
}

void FaultInjector::add_attenuator(const std::string& name,
                                   AttenuatorBinding binding) {
  attens_[name] = std::move(binding);
}

void FaultInjector::add_bus(const std::string& name, monitor::PubSubBus* bus) {
  buses_[name] = bus;
}

void FaultInjector::add_monitor(const std::string& name,
                                monitor::Corruptd* daemon) {
  monitors_[name] = daemon;
}

void FaultInjector::add_prober(const std::string& name,
                               telemetry::LinkProber* prober) {
  probers_[name] = prober;
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  script_.stable_sort_by_time();
  const auto& events = script_.events();
  // One ramp slot per ramp event, sized up front so step chains can index
  // into a vector that never reallocates under them.
  std::size_t n_ramps = 0;
  for (const FaultEvent& e : events)
    if (e.kind == FaultKind::kBerRamp || e.kind == FaultKind::kAttenRamp)
      ++n_ramps;
  ramps_.reserve(n_ramps);
  for (std::size_t i = 0; i < events.size(); ++i)
    sim_.schedule_at(events[i].at, [this, i] { apply(i); });
}

net::DrivableLoss* FaultInjector::find_loss(const std::string& name) {
  auto it = links_.find(name);
  return it == links_.end() ? nullptr : it->second;
}

net::GilbertElliottLoss* FaultInjector::find_ge(const std::string& name) {
  return dynamic_cast<net::GilbertElliottLoss*>(find_loss(name));
}

void FaultInjector::record(const FaultEvent& e, double value) {
  ++stats_.applied;
  log_.push_back({sim_.now(), e.kind, e.target, value});
  obs::emit(sim_.now(), obs::Cat::kFault, obs::Kind::kInject, trace_actor_,
            trace_value(e.kind, value), 0,
            static_cast<std::uint16_t>(e.kind));
}

void FaultInjector::apply_rate(const FaultEvent& e, double rate, bool log_it) {
  net::DrivableLoss* loss = find_loss(e.target);
  if (loss == nullptr) {
    ++stats_.unbound;
    return;
  }
  loss->drive_rate(rate);
  if (log_it) {
    record(e, rate);
  } else {
    ++stats_.ramp_steps;
    obs::emit(sim_.now(), obs::Cat::kFault, obs::Kind::kInject, trace_actor_,
              trace_value(e.kind, rate), 1, static_cast<std::uint16_t>(e.kind));
  }
}

void FaultInjector::apply_db(const FaultEvent& e, double db, bool log_it) {
  auto it = attens_.find(e.target);
  if (it == attens_.end() || it->second.loss == nullptr) {
    ++stats_.unbound;
    return;
  }
  AttenuatorBinding& a = it->second;
  a.loss->drive_rate(a.xcvr.frame_loss_rate(db, a.frame_bytes));
  if (log_it) {
    record(e, db);
  } else {
    ++stats_.ramp_steps;
    obs::emit(sim_.now(), obs::Cat::kFault, obs::Kind::kInject, trace_actor_,
              trace_value(e.kind, db), 1, static_cast<std::uint16_t>(e.kind));
  }
}

void FaultInjector::ramp_tick(std::size_t ramp_index) {
  RampState& r = ramps_[ramp_index];
  const FaultEvent& e = script_.events()[r.event];
  const double f =
      static_cast<double>(r.k) / static_cast<double>(r.steps);
  double v;
  if (r.k >= r.steps) {
    v = e.b;  // land exactly on the endpoint, no float drift
  } else if (e.shape == RampShape::kLog && e.a > 0.0 && e.b > 0.0) {
    v = std::exp(std::log(e.a) + (std::log(e.b) - std::log(e.a)) * f);
  } else {
    v = e.a + (e.b - e.a) * f;
  }
  const bool endpoint = r.k == 0 || r.k >= r.steps;
  if (e.kind == FaultKind::kBerRamp) {
    apply_rate(e, v, endpoint);
  } else {
    apply_db(e, v, endpoint);
  }
  if (r.k >= r.steps) return;
  ++r.k;
  sim_.schedule_in(e.step, [this, ramp_index] { ramp_tick(ramp_index); });
}

void FaultInjector::apply(std::size_t index) {
  const FaultEvent& e = script_.events()[index];
  switch (e.kind) {
    case FaultKind::kBerStep:
      apply_rate(e, e.a, /*log_it=*/true);
      break;
    case FaultKind::kBerRamp:
    case FaultKind::kAttenRamp: {
      if (e.duration <= 0 || e.step <= 0) {
        // Degenerate ramp: a single step straight to the endpoint.
        if (e.kind == FaultKind::kBerRamp) {
          apply_rate(e, e.b, true);
        } else {
          apply_db(e, e.b, true);
        }
        break;
      }
      const std::int64_t steps = std::max<std::int64_t>(1, e.duration / e.step);
      ramps_.push_back({index, 0, steps});
      ramp_tick(ramps_.size() - 1);
      break;
    }
    case FaultKind::kAttenStep:
      apply_db(e, e.a, /*log_it=*/true);
      break;
    case FaultKind::kGilbertEpisode: {
      net::GilbertElliottLoss* ge = find_ge(e.target);
      if (ge == nullptr) {
        ++stats_.unbound;
        break;
      }
      saved_ge_[index] = ge->params();
      ge->set_params(e.ge);
      record(e, ge->driven_rate());
      sim_.schedule_in(e.duration, [this, index] { end_episode(index); });
      break;
    }
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp: {
      net::DrivableLoss* loss = find_loss(e.target);
      if (loss == nullptr) {
        ++stats_.unbound;
        break;
      }
      const bool down = e.kind == FaultKind::kLinkDown;
      loss->set_link_down(down);
      record(e, down ? 1.0 : 0.0);
      break;
    }
    case FaultKind::kBusDelay: {
      auto it = buses_.find(e.target);
      if (it == buses_.end()) {
        ++stats_.unbound;
        break;
      }
      it->second->set_extra_delay(static_cast<SimTime>(e.a));
      record(e, e.a);
      break;
    }
    case FaultKind::kBusOutageStart:
    case FaultKind::kBusOutageEnd: {
      auto it = buses_.find(e.target);
      if (it == buses_.end()) {
        ++stats_.unbound;
        break;
      }
      const bool on = e.kind == FaultKind::kBusOutageStart;
      it->second->set_drop(on);
      record(e, on ? 1.0 : 0.0);
      break;
    }
    case FaultKind::kPollStallStart:
    case FaultKind::kPollStallEnd: {
      auto it = monitors_.find(e.target);
      if (it == monitors_.end()) {
        ++stats_.unbound;
        break;
      }
      const bool on = e.kind == FaultKind::kPollStallStart;
      it->second->set_counter_stall(on);
      record(e, on ? 1.0 : 0.0);
      break;
    }
    case FaultKind::kProbeStallStart:
    case FaultKind::kProbeStallEnd: {
      auto it = probers_.find(e.target);
      if (it == probers_.end()) {
        ++stats_.unbound;
        break;
      }
      const bool on = e.kind == FaultKind::kProbeStallStart;
      it->second->set_stalled(on);
      record(e, on ? 1.0 : 0.0);
      break;
    }
  }
}

void FaultInjector::end_episode(std::size_t index) {
  const FaultEvent& e = script_.events()[index];
  net::GilbertElliottLoss* ge = find_ge(e.target);
  auto it = saved_ge_.find(index);
  if (ge == nullptr || it == saved_ge_.end()) return;
  ge->set_params(it->second);
  record(e, ge->driven_rate());
}

FaultScript& append_attenuation_profile(FaultScript& script,
                                        const std::string& target,
                                        const phy::AttenuationProfile& profile,
                                        SimTime step) {
  if (profile.empty()) return script;
  const SimTime start = profile.knots.front().at;
  const SimTime end = profile.end_time();
  if (step <= 0) {
    for (const auto& k : profile.knots) script.atten_step(k.at, target, k.db);
    return script;
  }
  SimTime t = start;
  for (; t < end; t += step) script.atten_step(t, target, profile.db_at(t));
  script.atten_step(end, target, profile.db_at(end));
  return script;
}

}  // namespace lgsim::fault
