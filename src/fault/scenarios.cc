#include "fault/scenarios.h"

#include <stdexcept>

namespace lgsim::fault {

namespace {

// The catalogue is tuned for the lifecycle harness defaults: a 25G link
// (~2 Mfps at MTU), 1 ms corruptd polls, millisecond-scale control plane.
// Onset rates sit well above the detection threshold so a single poll window
// after onset is enough to detect.

Scenario onset() {
  Scenario s;
  s.name = "onset";
  s.description =
      "healthy link suddenly corrupting at 1e-3: detection -> live "
      "LinkGuardian switchover, zero loss after protection engages";
  s.script.ber_step(msec(20), kLinkTarget, 1e-3);
  s.onset = msec(20);
  s.horizon = msec(100);
  s.peak_rate = 1e-3;
  return s;
}

Scenario ramp() {
  Scenario s;
  s.name = "ramp";
  s.description =
      "log-linear degradation 1e-5 -> 3e-2 then recovery: drives "
      "AutoFallback ordered -> NB -> off and back up with hysteresis";
  s.script.ber_ramp(msec(10), kLinkTarget, 1e-5, 3e-2, msec(40), msec(2));
  s.script.ber_ramp(msec(60), kLinkTarget, 3e-2, 1e-5, msec(40), msec(2));
  s.onset = msec(10);
  s.horizon = msec(130);
  s.peak_rate = 3e-2;
  return s;
}

Scenario flap_storm() {
  Scenario s;
  s.name = "flap-storm";
  s.description =
      "low-rate corruption plus three hard down/up flaps: stresses era "
      "switchover and mass loss recovery under an already-protected link";
  s.script.ber_step(msec(5), kLinkTarget, 2e-4);
  s.script.link_flap(msec(30), kLinkTarget, msec(2));
  s.script.link_flap(msec(45), kLinkTarget, msec(1));
  s.script.link_flap(msec(60), kLinkTarget, msec(3));
  s.onset = msec(5);
  s.horizon = msec(95);
  s.peak_rate = 1.0;
  return s;
}

Scenario burst_episode() {
  Scenario s;
  s.name = "burst-episode";
  s.description =
      "Gilbert-Elliott burst window (mean burst 4 frames, avg 5e-3) on an "
      "otherwise healthy link, then restoration";
  s.script.gilbert_episode(
      msec(20), kLinkTarget,
      net::GilbertElliottLoss::for_rate(5e-3, /*mean_burst=*/4.0), msec(30));
  s.onset = msec(20);
  s.horizon = msec(100);
  s.peak_rate = 5e-3;
  return s;
}

Scenario monitor_blind() {
  Scenario s;
  s.name = "monitor-blind";
  s.description =
      "corruption onset inside a counter-poll stall window: detection is "
      "delayed until the driver responds again (blind-interval latency)";
  s.script.poll_stall(msec(15), kMonitorTarget, msec(30));
  s.script.ber_step(msec(20), kLinkTarget, 1e-3);
  s.onset = msec(20);
  s.horizon = msec(120);
  s.peak_rate = 1e-3;
  return s;
}

Scenario bus_outage() {
  Scenario s;
  s.name = "bus-outage";
  s.description =
      "corruption onset during a pub-sub outage: the first notification is "
      "dropped; corruptd's renotify timer engages protection after recovery";
  s.script.bus_outage(msec(15), kBusTarget, msec(25));
  s.script.ber_step(msec(20), kLinkTarget, 1e-3);
  s.onset = msec(20);
  s.horizon = msec(120);
  s.peak_rate = 1e-3;
  return s;
}

Scenario probe_outage() {
  Scenario s;
  s.name = "probe-outage";
  s.description =
      "corruption onset while the telemetry prober is wedged: the estimator "
      "goes evidence-blind (unknown, not 0%) and detection waits for the "
      "probe stream to resume. Oracle-fed runs have no prober, so the stall "
      "is unbound there and this degenerates to a plain onset";
  s.script.probe_stall(msec(15), kProbeTarget, msec(30));
  s.script.ber_step(msec(20), kLinkTarget, 1e-3);
  s.onset = msec(20);
  s.horizon = msec(120);
  s.peak_rate = 1e-3;
  return s;
}

}  // namespace

Scenario make_scenario(const std::string& name) {
  if (name == "onset") return onset();
  if (name == "ramp") return ramp();
  if (name == "flap-storm") return flap_storm();
  if (name == "burst-episode") return burst_episode();
  if (name == "monitor-blind") return monitor_blind();
  if (name == "bus-outage") return bus_outage();
  if (name == "probe-outage") return probe_outage();
  throw std::invalid_argument("unknown fault scenario: " + name);
}

std::vector<std::string> scenario_names() {
  return {"onset",         "ramp",          "flap-storm",   "burst-episode",
          "monitor-blind", "bus-outage",    "probe-outage"};
}

}  // namespace lgsim::fault
