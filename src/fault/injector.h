// FaultInjector: interprets a FaultScript against a live topology.
//
// Targets are registered by name before arm(); arm() schedules one simulator
// event per script entry (plus a self-rescheduling step chain per ramp), so
// fault application rides the same deterministic event order as everything
// else in the run. Unbound targets are counted, not fatal — a scenario
// written for a full control-plane topology can run against a dataplane-only
// cell and simply skip the bus/monitor events.
//
// Every application emits an obs trace record (Cat::kFault / Kind::kInject)
// and appends to an in-memory log, so experiment post-processing can line up
// "what the script did" against "what the protocol measured".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/script.h"
#include "monitor/corruptd.h"
#include "net/loss_model.h"
#include "phy/optical.h"
#include "sim/simulator.h"
#include "telemetry/probe.h"

namespace lgsim::fault {

/// Binds a named attenuator to the physics chain of phy/optical.h: applying
/// `db` re-aims the link's drivable loss process to the transceiver's
/// frame loss rate at that attenuation (Fig. 1's curve, evaluated live).
struct AttenuatorBinding {
  phy::Transceiver xcvr;
  net::DrivableLoss* loss = nullptr;
  std::int64_t frame_bytes = 1518;
};

class FaultInjector {
 public:
  struct Applied {
    SimTime at = 0;
    FaultKind kind = FaultKind::kBerStep;
    std::string target;
    double value = 0.0;  // kind-specific: rate, dB, or ns
  };

  struct Stats {
    std::int64_t applied = 0;     // script events that found their target
    std::int64_t ramp_steps = 0;  // intermediate ramp re-aims (not logged)
    std::int64_t unbound = 0;     // events whose target was not registered
  };

  FaultInjector(Simulator& sim, FaultScript script);

  /// Target registration. Names are the `target` strings used in the script.
  void add_link(const std::string& name, net::DrivableLoss* loss);
  void add_attenuator(const std::string& name, AttenuatorBinding binding);
  void add_bus(const std::string& name, monitor::PubSubBus* bus);
  void add_monitor(const std::string& name, monitor::Corruptd* daemon);
  void add_prober(const std::string& name, telemetry::LinkProber* prober);

  /// Schedules the whole script. Call once, after registering targets.
  void arm();

  const std::vector<Applied>& log() const { return log_; }
  const Stats& stats() const { return stats_; }
  const FaultScript& script() const { return script_; }

 private:
  struct RampState {
    std::size_t event = 0;  // index into script_.events()
    std::int64_t k = 0;     // steps taken
    std::int64_t steps = 0; // total steps
  };

  void apply(std::size_t index);
  void end_episode(std::size_t index);
  void ramp_tick(std::size_t ramp_index);
  void apply_rate(const FaultEvent& e, double rate, bool log_it);
  void apply_db(const FaultEvent& e, double db, bool log_it);
  void record(const FaultEvent& e, double value);

  net::DrivableLoss* find_loss(const std::string& name);
  net::GilbertElliottLoss* find_ge(const std::string& name);

  Simulator& sim_;
  FaultScript script_;
  bool armed_ = false;

  std::map<std::string, net::DrivableLoss*> links_;
  std::map<std::string, AttenuatorBinding> attens_;
  std::map<std::string, monitor::PubSubBus*> buses_;
  std::map<std::string, monitor::Corruptd*> monitors_;
  std::map<std::string, telemetry::LinkProber*> probers_;

  // Saved GE parameters for episode restore, keyed by event index.
  std::map<std::size_t, net::GilbertElliottLoss::Params> saved_ge_;
  // Ramp chains need stable addresses while their events are in flight.
  std::vector<RampState> ramps_;

  std::vector<Applied> log_;
  Stats stats_;
  std::uint32_t trace_actor_ = 0;
};

/// Samples an AttenuationProfile into atten_step events on `target`, one per
/// `step` interval across the profile's span (knots themselves included) —
/// the bridge from phy/optical's profile type to the script timeline.
FaultScript& append_attenuation_profile(FaultScript& script,
                                        const std::string& target,
                                        const phy::AttenuationProfile& profile,
                                        SimTime step);

}  // namespace lgsim::fault
