// Named fault-scenario catalogue (see EXPERIMENTS.md §"Fault scenarios").
//
// Each scenario is a FaultScript plus the metadata an experiment needs to
// interpret it: the corruption onset time (the reference point for detection
// latency), the peak scripted loss rate, and a suggested run horizon. All
// scripts address the canonical single-link lifecycle topology by the handle
// names "link0" (the corrupting link's loss process), "bus0" (the corruptd
// pub-sub bus) and "mon0" (the corruptd daemon); scenarios that don't use a
// handle simply leave it untouched.
#pragma once

#include <string>
#include <vector>

#include "fault/script.h"

namespace lgsim::fault {

struct Scenario {
  std::string name;
  std::string description;
  FaultScript script;
  /// When corruption starts (detection latency = detected_at - onset).
  SimTime onset = 0;
  /// Suggested traffic/run horizon covering the whole script plus recovery.
  SimTime horizon = 0;
  /// Peak marginal loss rate the script drives (1.0 for a hard link flap).
  double peak_rate = 0.0;
};

/// Canonical target handle names used by every catalogue scenario.
inline constexpr const char* kLinkTarget = "link0";
inline constexpr const char* kBusTarget = "bus0";
inline constexpr const char* kMonitorTarget = "mon0";
inline constexpr const char* kProbeTarget = "probe0";

/// Builds a catalogue scenario by name; throws std::invalid_argument for an
/// unknown name. Names: "onset", "ramp", "flap-storm", "burst-episode",
/// "monitor-blind", "bus-outage", "probe-outage".
Scenario make_scenario(const std::string& name);

/// All catalogue names, in presentation order.
std::vector<std::string> scenario_names();

}  // namespace lgsim::fault
