#include "phy/optical.h"

#include <cmath>
#include <stdexcept>

namespace lgsim::phy {

namespace {

// log(n choose k) via lgamma.
double log_choose(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

}  // namespace

FecParams fec_params(FecCode code) {
  switch (code) {
    case FecCode::kNone:
      return {};
    case FecCode::kRs528_514:
      return {.n = 528, .k = 514, .t = 7, .symbol_bits = 10};
    case FecCode::kRs544_514:
      return {.n = 544, .k = 514, .t = 15, .symbol_bits = 10};
  }
  throw std::logic_error("unknown FEC code");
}

double raw_ber(Modulation mod, double q) {
  if (q <= 0.0) return 0.5;
  switch (mod) {
    case Modulation::kNrz:
      return 0.5 * std::erfc(q / std::sqrt(2.0));
    case Modulation::kPam4:
      // Gray-coded 4-level eye: three eyes each one third of the NRZ swing.
      return 0.75 * std::erfc(q / (3.0 * std::sqrt(2.0)));
  }
  throw std::logic_error("unknown modulation");
}

double codeword_error_prob(FecCode code, double ber) {
  const FecParams fp = fec_params(code);
  if (fp.n == 0) return 0.0;
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  // Symbol error rate: a 10-bit symbol errs if any constituent bit flips.
  const double ser = 1.0 - std::pow(1.0 - ber, fp.symbol_bits);
  if (ser >= 1.0) return 1.0;
  // P(more than t of n symbols err). Sum the complement when ser is large;
  // otherwise accumulate the tail in log space for numerical stability.
  const double log_ser = std::log(ser);
  const double log_ok = std::log1p(-ser);
  if (ser * fp.n > fp.t * 2.0) {
    // Deep in failure territory; the tail is ~1 but compute the head.
    double head = 0.0;
    for (int i = 0; i <= fp.t; ++i) {
      head += std::exp(log_choose(fp.n, i) + i * log_ser + (fp.n - i) * log_ok);
    }
    return 1.0 - std::min(1.0, head);
  }
  double tail = 0.0;
  for (int i = fp.t + 1; i <= fp.n; ++i) {
    const double term = log_choose(fp.n, i) + i * log_ser + (fp.n - i) * log_ok;
    if (term < -745.0) break;  // below double underflow; terms only shrink
    tail += std::exp(term);
  }
  return std::min(1.0, tail);
}

double Transceiver::q_at(double attenuation_db) const {
  return q0 * std::pow(10.0, -attenuation_db / 10.0);
}

double Transceiver::ber_at(double attenuation_db) const {
  return raw_ber(modulation, q_at(attenuation_db));
}

double Transceiver::frame_loss_rate(double attenuation_db,
                                    std::int64_t frame_bytes) const {
  const double ber = ber_at(attenuation_db);
  const std::int64_t bits = frame_bytes * 8;
  if (fec == FecCode::kNone) {
    // Lost if any bit of the frame flips.
    return 1.0 - std::pow(1.0 - ber, static_cast<double>(bits));
  }
  const FecParams fp = fec_params(fec);
  const double cw_err = codeword_error_prob(fec, ber);
  // The frame spans this many RS codewords (data portion only); it is lost if
  // any of them is uncorrectable.
  const double codewords =
      static_cast<double>(bits) / static_cast<double>(fp.k * fp.symbol_bits);
  return 1.0 - std::pow(1.0 - cw_err, codewords);
}

double calibrate_q0(Modulation mod, FecCode fec, double target_atten_db,
                    double target_loss, std::int64_t frame_bytes) {
  // Bisection on q0: frame loss at target attenuation is monotonically
  // decreasing in q0.
  Transceiver t{.name = "probe", .modulation = mod, .fec = fec, .q0 = 0.0};
  double lo = 1.0, hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    t.q0 = mid;
    const double loss = t.frame_loss_rate(target_atten_db, frame_bytes);
    if (loss > target_loss) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

namespace {

Transceiver make(const char* name, Modulation mod, FecCode fec,
                 double threshold_atten_db) {
  Transceiver t;
  t.name = name;
  t.modulation = mod;
  t.fec = fec;
  t.q0 = calibrate_q0(mod, fec, threshold_atten_db, 1e-8);
  return t;
}

}  // namespace

Transceiver make_10g_sr() {
  return make("10GBASE-SR", Modulation::kNrz, FecCode::kNone, 16.5);
}
Transceiver make_25g_sr_nofec() {
  return make("25GBASE-SR", Modulation::kNrz, FecCode::kNone, 12.5);
}
Transceiver make_25g_sr_fec() {
  return make("25GBASE-SR (FEC)", Modulation::kNrz, FecCode::kRs528_514, 14.0);
}
Transceiver make_50g_sr() {
  return make("50GBASE-SR (FEC)", Modulation::kPam4, FecCode::kRs544_514, 10.5);
}

double AttenuationProfile::db_at(SimTime t) const {
  if (knots.empty()) return 0.0;
  if (t <= knots.front().at) return knots.front().db;
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const Knot& lo = knots[i - 1];
    const Knot& hi = knots[i];
    if (t <= hi.at) {
      const double frac = hi.at == lo.at
                              ? 1.0
                              : static_cast<double>(t - lo.at) /
                                    static_cast<double>(hi.at - lo.at);
      return lo.db + (hi.db - lo.db) * frac;
    }
  }
  return knots.back().db;
}

AttenuationProfile& AttenuationProfile::hold(SimTime at, double db) {
  if (!knots.empty() && at <= knots.back().at)
    throw std::invalid_argument("AttenuationProfile: knots must be increasing");
  knots.push_back({at, db});
  return *this;
}

}  // namespace lgsim::phy
