// Bridge between the optical PHY model and the packet-level loss process:
// the probability that a frame is dropped depends on its *size* (more bits,
// more chances for an uncorrectable error), computed from the transceiver's
// BER at the configured attenuation. This is exactly what the testbed's VOA
// does — and why the paper measures loss with fixed MTU-sized frames.
#pragma once

#include <cmath>
#include <unordered_map>

#include "net/loss_model.h"
#include "obs/trace.h"
#include "phy/optical.h"

namespace lgsim::phy {

class AttenuationLoss final : public net::LossModel {
 public:
  AttenuationLoss(Transceiver xcvr, double attenuation_db, Rng rng)
      : xcvr_(std::move(xcvr)),
        attenuation_db_(attenuation_db),
        rng_(rng),
        trace_actor_(obs::intern_actor("phy/attenuation")) {}

  bool lose(SimTime now, const net::Packet& p) override {
    const bool lost = rng_.bernoulli(loss_for_size(p.frame_bytes));
    if (lost) {
      // Attenuation in milli-dB: trace records carry integers only.
      obs::emit(now, obs::Cat::kPhy, obs::Kind::kCorrupt, trace_actor_,
                p.frame_bytes,
                static_cast<std::int64_t>(attenuation_db_ * 1000.0));
    }
    return lost;
  }

  /// Frame-loss probability for a given frame size (memoized: the simulation
  /// sees only a handful of distinct sizes).
  double loss_for_size(std::int32_t frame_bytes) {
    auto it = cache_.find(frame_bytes);
    if (it != cache_.end()) return it->second;
    const double p = xcvr_.frame_loss_rate(attenuation_db_, frame_bytes);
    cache_.emplace(frame_bytes, p);
    return p;
  }

  /// Re-aim the VOA (e.g. the fiber degrades further mid-run).
  void set_attenuation(double db) {
    attenuation_db_ = db;
    cache_.clear();
  }
  double attenuation() const { return attenuation_db_; }
  const Transceiver& transceiver() const { return xcvr_; }

 private:
  Transceiver xcvr_;
  double attenuation_db_;
  Rng rng_;
  std::uint32_t trace_actor_ = 0;  // obs actor id, interned at construction
  std::unordered_map<std::int32_t, double> cache_;
};

}  // namespace lgsim::phy
