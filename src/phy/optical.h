// Optical-link corruption model (reproduces Fig. 1).
//
// The paper measured packet loss vs optical attenuation for four transceiver
// configurations (10GBASE-SR, 25GBASE-SR with/without FEC, 50GBASE-SR with
// FEC) using a Variable Optical Attenuator on OM4 fiber. We model the same
// physics chain:
//
//   attenuation (dB) -> received optical power -> Q factor -> raw BER
//     -> [optional Reed-Solomon FEC correction] -> frame loss probability
//
// For direct-detection optics the photocurrent amplitude is proportional to
// received optical power, so the Q factor scales linearly with power:
// q(a) = q0 * 10^(-a/10). NRZ links see BER = 0.5*erfc(q/sqrt(2)); PAM4 packs
// 4 levels into the same amplitude, so the per-symbol eye is one third and
// BER ~= 0.75*erfc(q/(3*sqrt(2))) — the reason 50G links degrade at much
// lower attenuation in Fig. 1, even with stronger FEC.
//
// q0 for each preset is calibrated so the post-FEC frame loss rate of a
// 1518 B frame crosses 1e-8 at the attenuation observed in Fig. 1. BER=1e-12
// (the "healthy link" criterion in footnote 2 of the paper) then falls out of
// the model rather than being assumed.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/units.h"

namespace lgsim::phy {

enum class Modulation : std::uint8_t { kNrz, kPam4 };

/// Reed-Solomon FEC over 10-bit symbols, as specified by IEEE 802.3.
/// KR4 = RS(528,514), corrects 7 symbols; KP4 = RS(544,514), corrects 15.
enum class FecCode : std::uint8_t { kNone, kRs528_514, kRs544_514 };

struct FecParams {
  int n = 0;         // codeword symbols
  int k = 0;         // data symbols
  int t = 0;         // correctable symbols
  int symbol_bits = 10;
};

FecParams fec_params(FecCode code);

/// Raw (pre-FEC) bit error rate at Q factor `q` for the given modulation.
double raw_ber(Modulation mod, double q);

/// Probability that one RS codeword is uncorrectable at pre-FEC BER `ber`.
double codeword_error_prob(FecCode code, double ber);

/// A transceiver pair on an attenuated fiber.
struct Transceiver {
  std::string name;
  Modulation modulation = Modulation::kNrz;
  FecCode fec = FecCode::kNone;
  double q0 = 0.0;  // Q factor at 0 dB attenuation (calibrated)

  double q_at(double attenuation_db) const;
  double ber_at(double attenuation_db) const;

  /// Probability that a frame of `frame_bytes` is lost at the given
  /// attenuation (post-FEC when FEC is present).
  double frame_loss_rate(double attenuation_db, std::int64_t frame_bytes) const;
};

/// Numerically solves for q0 such that frame_loss_rate(target_atten, 1518)
/// equals `target_loss`. Used to build the presets below.
double calibrate_q0(Modulation mod, FecCode fec, double target_atten_db,
                    double target_loss, std::int64_t frame_bytes = 1518);

// Presets matching the four curves of Fig. 1. Threshold attenuations (where
// packet loss crosses 1e-8 for 1518 B frames) read off the figure:
//   10GBASE-SR ........ ~16.5 dB
//   25GBASE-SR ........ ~12.5 dB  (higher baudrate -> less margin)
//   25GBASE-SR + FEC .. ~14.0 dB
//   50GBASE-SR + FEC .. ~10.5 dB  (PAM4 -> much less margin despite KP4)
Transceiver make_10g_sr();
Transceiver make_25g_sr_nofec();
Transceiver make_25g_sr_fec();
Transceiver make_50g_sr();

/// Time-varying attenuation: what the testbed's Variable Optical Attenuator
/// does when a fault scenario degrades the fiber mid-run. Piecewise-linear
/// interpolation between (time, dB) knots; before the first knot the profile
/// holds the first value, after the last it holds the last (a degraded fiber
/// stays degraded until the script says otherwise).
struct AttenuationProfile {
  struct Knot {
    SimTime at = 0;
    double db = 0.0;
  };

  std::vector<Knot> knots;  // strictly increasing `at`

  AttenuationProfile() = default;
  AttenuationProfile(std::initializer_list<Knot> k) : knots(k) {}

  /// Attenuation at simulation time `t` (dB).
  double db_at(SimTime t) const;

  /// Convenience builders, chainable: profile.hold(0, 8.0).ramp_to(t, 14.0).
  AttenuationProfile& hold(SimTime at, double db);
  AttenuationProfile& ramp_to(SimTime at, double db) { return hold(at, db); }

  bool empty() const { return knots.empty(); }
  SimTime end_time() const { return knots.empty() ? 0 : knots.back().at; }
};

}  // namespace lgsim::phy
