// Fixed-latency elements modelling switch pipeline traversal.
#pragma once

#include <functional>
#include <utility>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::net {

/// A fixed processing delay in front of a handler: models the ingress+egress
/// pipeline latency of a store-and-forward switch ASIC. Packets entered here
/// pop out `latency` ns later, in order. In-flight frames park in a
/// free-listed pool so the scheduled closure is two pointers — inside the
/// kernel's inline-callback budget, with zero steady-state allocation.
class PipelineDelay {
 public:
  using Handler = std::function<void(Packet&&)>;

  PipelineDelay(Simulator& sim, SimTime latency, Handler next)
      : sim_(sim), latency_(latency), next_(std::move(next)) {}

  void accept(Packet&& p) {
    Packet* slot = pool_.acquire(std::move(p));
    auto emerge = [this, slot] {
      next_(std::move(*slot));
      pool_.release(slot);
    };
    static_assert(sizeof(emerge) <= sim::InlineCallback::kInlineBytes);
    sim_.schedule_in(latency_, std::move(emerge));
  }

  SimTime latency() const { return latency_; }

 private:
  Simulator& sim_;
  SimTime latency_;
  Handler next_;
  PacketPool pool_;
};

/// Ingress frame counters (what corruptd polls: framesRxOk / framesRxAll).
/// `framesRxAll` counts every frame the MAC saw including corrupted ones; the
/// port model drops corrupted frames before delivery, so the owner of this
/// struct feeds it from the link's counters.
struct MacRxCounters {
  std::int64_t frames_rx_ok = 0;
  std::int64_t frames_rx_all = 0;
};

}  // namespace lgsim::net
