// Fixed-latency elements modelling switch pipeline traversal.
#pragma once

#include <functional>
#include <utility>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::net {

/// A fixed processing delay in front of a handler: models the ingress+egress
/// pipeline latency of a store-and-forward switch ASIC. Packets entered here
/// pop out `latency` ns later, in order.
class PipelineDelay {
 public:
  using Handler = std::function<void(Packet&&)>;

  PipelineDelay(Simulator& sim, SimTime latency, Handler next)
      : sim_(sim), latency_(latency), next_(std::move(next)) {}

  void accept(Packet&& p) {
    sim_.schedule_in(latency_, [this, p = std::move(p)]() mutable {
      next_(std::move(p));
    });
  }

  SimTime latency() const { return latency_; }

 private:
  Simulator& sim_;
  SimTime latency_;
  Handler next_;
};

/// Ingress frame counters (what corruptd polls: framesRxOk / framesRxAll).
/// `framesRxAll` counts every frame the MAC saw including corrupted ones; the
/// port model drops corrupted frames before delivery, so the owner of this
/// struct feeds it from the link's counters.
struct MacRxCounters {
  std::int64_t frames_rx_ok = 0;
  std::int64_t frames_rx_all = 0;
};

}  // namespace lgsim::net
