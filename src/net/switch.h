// Multi-port store-and-forward switch model.
//
// A `Switch` owns a set of egress ports and a destination-based forwarding
// table. Packets entering through `ingress()` traverse the pipeline latency
// and are enqueued on the egress port their destination maps to. This is
// the building block for multi-hop topologies like the paper's Fig. 7
// testbed (see tests/fig7_topology_test.cc); the single-link experiments use
// the leaner TestbedPath instead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "net/pipeline.h"
#include "net/port.h"
#include "sim/simulator.h"

namespace lgsim::net {

class Switch {
 public:
  struct PortCfg {
    BitRate rate = gbps(100);
    SimTime prop_delay = nsec(100);
    std::int64_t queue_bytes = 2'000'000;
    std::int64_t ecn_threshold = -1;
  };

  Switch(Simulator& sim, std::string name, SimTime pipeline_latency = nsec(400))
      : sim_(sim),
        name_(std::move(name)),
        pipeline_latency_(pipeline_latency),
        pipe_(sim, pipeline_latency,
              [this](Packet&& p) { forward(std::move(p)); }) {}

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Create an egress port; returns its index. The port gets one normal
  /// queue (index 0) configured from `cfg`.
  int add_port(const PortCfg& cfg) {
    auto port = std::make_unique<EgressPort>(
        sim_, name_ + ".p" + std::to_string(ports_.size()), cfg.rate,
        cfg.prop_delay);
    port->add_queue({.byte_limit = cfg.queue_bytes,
                     .ecn_threshold = cfg.ecn_threshold});
    ports_.push_back(std::move(port));
    return static_cast<int>(ports_.size()) - 1;
  }

  EgressPort& port(int i) { return *ports_.at(i); }

  /// Wire an egress port to another node's ingress.
  void connect(int port_idx, std::function<void(Packet&&)> peer_ingress) {
    ports_.at(port_idx)->set_deliver(std::move(peer_ingress));
  }

  /// Route packets destined to node `dst` out of `port_idx`.
  void add_route(std::uint32_t dst, int port_idx) { routes_[dst] = port_idx; }

  /// Default route for destinations with no specific entry (-1 = drop).
  void set_default_route(int port_idx) { default_route_ = port_idx; }

  /// Override the forwarding decision for one egress port (used to splice a
  /// LinkGuardian-protected link into the path: packets routed to that port
  /// go through the protection shim instead of the raw queue).
  void set_egress_override(int port_idx, std::function<void(Packet&&)> fn) {
    overrides_[port_idx] = std::move(fn);
  }

  /// Packet arriving at this switch.
  void ingress(Packet&& p) {
    ++rx_frames_;
    pipe_.accept(std::move(p));
  }

  std::function<void(Packet&&)> ingress_fn() {
    return [this](Packet&& p) { ingress(std::move(p)); };
  }

  std::int64_t rx_frames() const { return rx_frames_; }
  std::int64_t dropped_no_route() const { return dropped_no_route_; }
  const std::string& name() const { return name_; }

 private:
  void forward(Packet&& p) {
    const auto it = routes_.find(p.dst);
    const int out = it != routes_.end() ? it->second : default_route_;
    if (out < 0) {
      ++dropped_no_route_;
      return;
    }
    if (const auto ov = overrides_.find(out); ov != overrides_.end()) {
      ov->second(std::move(p));
      return;
    }
    ports_.at(out)->enqueue(0, std::move(p));
  }

  Simulator& sim_;
  std::string name_;
  SimTime pipeline_latency_;
  PipelineDelay pipe_;  // shared ingress pipeline stage (in-order, pooled)
  std::vector<std::unique_ptr<EgressPort>> ports_;
  std::unordered_map<std::uint32_t, int> routes_;
  std::unordered_map<int, std::function<void(Packet&&)>> overrides_;
  int default_route_ = -1;
  std::int64_t rx_frames_ = 0;
  std::int64_t dropped_no_route_ = 0;
};

}  // namespace lgsim::net
