// Switch egress port: strict-priority queues feeding a serializing link.
//
// This is the component LinkGuardian builds on. A port owns N FIFO queues in
// strictly decreasing priority (index 0 highest). Each queue can be
// byte-limited, PFC-paused independently, ECN-marking, and optionally
// *self-replenishing*: after transmitting a packet from it, a generator
// callback re-arms the queue with a fresh packet. The self-replenishing
// queues implement the paper's dummy-packet and explicit-ACK queues (§3.1,
// §3.2): strictly lowest priority, so they transmit exactly when every other
// queue is empty, and they re-fill themselves via egress mirroring.
//
// Frames leave the port after their serialization time at the port rate, then
// experience the propagation delay, then an optional corruption loss roll
// (modelling the receiving MAC dropping bad-FCS frames), and finally reach
// the delivery callback (the peer's ingress).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/ring.h"
#include "util/units.h"

namespace lgsim::net {

class EgressPort {
 public:
  using DeliverFn = std::function<void(Packet&&)>;
  /// Invoked when a frame starts serializing; may mutate the frame (this is
  /// how LinkGuardian piggybacks the freshest ACK info on reverse traffic).
  using TransmitHook = std::function<void(Packet&, int queue)>;

  struct QueueOpts {
    std::int64_t byte_limit = INT64_MAX;
    /// If >= 0: set CE on kData packets enqueued while queue depth exceeds
    /// this many bytes (DCTCP-style instantaneous marking).
    std::int64_t ecn_threshold = -1;
  };

  /// Per-priority-queue accounting. Conservation invariant (asserted in
  /// net_test.cc): enq_frames == deq_frames + frames in the fifo, and
  /// enq_bytes == deq_bytes + queued bytes — enqueues (including replenish
  /// re-arms) either dequeue toward the wire or are still in flight; tail
  /// drops are counted separately and never consume queue state.
  struct QueueCounters {
    std::int64_t enq_frames = 0;    // accepted into the fifo (incl. replenish)
    std::int64_t enq_bytes = 0;     // frame bytes accepted
    std::int64_t drop_frames = 0;   // tail drops from byte limit
    std::int64_t drop_bytes = 0;
    std::int64_t deq_frames = 0;    // left the fifo toward the serializer
    std::int64_t deq_bytes = 0;     // frame bytes at dequeue (pre-hook size)
    std::int64_t tx_frames = 0;
    std::int64_t tx_bytes = 0;      // wire bytes
    std::int64_t ecn_marked = 0;
  };

  struct PortCounters {
    std::int64_t tx_frames = 0;
    std::int64_t tx_wire_bytes = 0;
    std::int64_t corrupted_frames = 0;  // dropped by the peer MAC
    std::int64_t delivered_frames = 0;
  };

 private:
  struct Queue {
    QueueOpts opts;
    util::RingQueue<Packet> fifo;
    std::int64_t bytes = 0;
    bool paused = false;
    std::function<std::optional<Packet>()> replenish;
    QueueCounters counters;
  };

 public:
  EgressPort(Simulator& sim, std::string name, BitRate rate, SimTime prop_delay)
      : sim_(sim),
        name_(std::move(name)),
        rate_(rate),
        prop_delay_(prop_delay),
        trace_actor_(obs::intern_actor(name_)) {}

  EgressPort(const EgressPort&) = delete;
  EgressPort& operator=(const EgressPort&) = delete;

  /// Adds a queue at the next (lower) priority level; returns its index.
  int add_queue(QueueOpts opts) {
    queues_.emplace_back();
    queues_.back().opts = opts;
    return static_cast<int>(queues_.size()) - 1;
  }
  int add_queue() { return add_queue(QueueOpts{}); }

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_loss_model(LossModel* model) { loss_ = model; }
  void set_transmit_hook(TransmitHook hook) { on_transmit_ = std::move(hook); }

  /// Self-replenishing queue: after each transmit from `q`, `gen` may produce
  /// the replacement packet placed back into the same queue (return nullopt
  /// to stop replenishing until the owner re-arms the queue).
  void set_replenish(int q, std::function<std::optional<Packet>()> gen) {
    queues_.at(q).replenish = std::move(gen);
  }

  /// Enqueue into queue `q`. Returns false (and counts a drop) on overflow.
  bool enqueue(int q, Packet p) {
    Queue& que = queues_.at(q);
    if (que.bytes + p.frame_bytes > que.opts.byte_limit) {
      ++que.counters.drop_frames;
      que.counters.drop_bytes += p.frame_bytes;
      obs::emit(sim_.now(), obs::Cat::kPort, obs::Kind::kDrop, trace_actor_,
                p.frame_bytes, static_cast<std::int64_t>(p.uid),
                static_cast<std::uint16_t>(q));
      return false;
    }
    if (que.opts.ecn_threshold >= 0 && p.kind == PktKind::kData &&
        que.bytes > que.opts.ecn_threshold) {
      p.tcp.ce = true;
      ++que.counters.ecn_marked;
    }
    que.bytes += p.frame_bytes;
    ++que.counters.enq_frames;
    que.counters.enq_bytes += p.frame_bytes;
    obs::emit(sim_.now(), obs::Cat::kPort, obs::Kind::kEnqueue, trace_actor_,
              p.frame_bytes, static_cast<std::int64_t>(p.uid),
              static_cast<std::uint16_t>(q));
    que.fifo.push_back(std::move(p));
    maybe_start_tx();
    return true;
  }

  /// PFC-style pause/resume of a single queue. A frame already being
  /// serialized completes; the queue simply stops being scheduled.
  void pause_queue(int q) { queues_.at(q).paused = true; }
  void resume_queue(int q) {
    queues_.at(q).paused = false;
    maybe_start_tx();
  }
  bool queue_paused(int q) const { return queues_.at(q).paused; }

  std::int64_t queue_bytes(int q) const { return queues_.at(q).bytes; }
  std::size_t queue_frames(int q) const { return queues_.at(q).fifo.size(); }

  std::int64_t total_queued_bytes() const {
    std::int64_t s = 0;
    for (const auto& q : queues_) s += q.bytes;
    return s;
  }

  BitRate rate() const { return rate_; }
  SimTime prop_delay() const { return prop_delay_; }
  const std::string& name() const { return name_; }
  bool transmitting() const { return busy_; }

  const QueueCounters& queue_counters(int q) const { return queues_.at(q).counters; }
  const PortCounters& counters() const { return counters_; }
  int num_queues() const { return static_cast<int>(queues_.size()); }

  /// Pushes the port- and per-queue counters into a metrics registry under
  /// `port.<name>` / `port.<name>.q<i>`.
  void export_metrics(obs::MetricsRegistry& m) const {
    const std::string base = "port." + name_;
    m.counter(base + ".tx_frames") = counters_.tx_frames;
    m.counter(base + ".tx_wire_bytes") = counters_.tx_wire_bytes;
    m.counter(base + ".corrupted_frames") = counters_.corrupted_frames;
    m.counter(base + ".delivered_frames") = counters_.delivered_frames;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      const QueueCounters& c = queues_[i].counters;
      const std::string q = base + ".q" + std::to_string(i);
      m.counter(q + ".enq_frames") = c.enq_frames;
      m.counter(q + ".enq_bytes") = c.enq_bytes;
      m.counter(q + ".drop_frames") = c.drop_frames;
      m.counter(q + ".drop_bytes") = c.drop_bytes;
      m.counter(q + ".deq_frames") = c.deq_frames;
      m.counter(q + ".deq_bytes") = c.deq_bytes;
      m.counter(q + ".tx_frames") = c.tx_frames;
      m.counter(q + ".tx_bytes") = c.tx_bytes;
      m.counter(q + ".ecn_marked") = c.ecn_marked;
      m.counter(q + ".queued_frames") =
          static_cast<std::int64_t>(queues_[i].fifo.size());
      m.counter(q + ".queued_bytes") = queues_[i].bytes;
    }
  }

 private:
  void maybe_start_tx() {
    if (busy_) return;
    const int q = pick_queue();
    if (q < 0) return;
    start_tx(q);
  }

  int pick_queue() const {
    for (std::size_t i = 0; i < queues_.size(); ++i)
      if (!queues_[i].paused && !queues_[i].fifo.empty()) return static_cast<int>(i);
    return -1;
  }

  void start_tx(int qi) {
    Queue& q = queues_[qi];
    Packet p = std::move(q.fifo.front());
    q.fifo.pop_front();
    q.bytes -= p.frame_bytes;
    ++q.counters.deq_frames;
    q.counters.deq_bytes += p.frame_bytes;
    obs::emit(sim_.now(), obs::Cat::kPort, obs::Kind::kDequeue, trace_actor_,
              p.frame_bytes, static_cast<std::int64_t>(p.uid),
              static_cast<std::uint16_t>(qi));
    busy_ = true;

    // The hook runs first: it may mutate the frame (LinkGuardian stamps its
    // header at egress), which changes the bytes that serialize.
    if (on_transmit_) on_transmit_(p, qi);

    // Serialization with sub-nanosecond carry: rounding each frame up would
    // systematically under-run the line rate (~0.8% at 100G for MTU frames).
    const __int128 bits_scaled =
        static_cast<__int128>(p.wire_bytes()) * 8 * kNsecPerSec + frac_carry_;
    const SimTime tx = static_cast<SimTime>(bits_scaled / rate_);
    frac_carry_ = static_cast<std::int64_t>(bits_scaled % rate_);
    ++q.counters.tx_frames;
    q.counters.tx_bytes += p.wire_bytes();
    ++counters_.tx_frames;
    counters_.tx_wire_bytes += p.wire_bytes();

    // Re-arm a self-replenishing queue immediately (egress mirroring): the
    // fresh packet becomes eligible the next time the link goes idle. The
    // fresh packet is a real enqueue for conservation purposes.
    if (q.replenish) {
      if (std::optional<Packet> fresh = q.replenish()) {
        q.bytes += fresh->frame_bytes;
        ++q.counters.enq_frames;
        q.counters.enq_bytes += fresh->frame_bytes;
        q.fifo.push_back(std::move(*fresh));
      }
    }

    // The frame parks in the pool for the serialization + propagation chain;
    // the kernel closures capture only {this, slot} and stay inside
    // InlineCallback's inline buffer (no per-event heap allocation).
    Packet* slot = pool_.acquire(std::move(p));
    auto done = [this, slot] {
      busy_ = false;
      finish_tx(slot);
      maybe_start_tx();
    };
    static_assert(sizeof(done) <= sim::InlineCallback::kInlineBytes);
    sim_.schedule_in(tx, std::move(done));
  }

  void finish_tx(Packet* slot) {
    const Packet& p = *slot;
    const bool lost = loss_ != nullptr && loss_->lose(sim_.now(), p);
    if (lost) {
      ++counters_.corrupted_frames;
      obs::emit(sim_.now(), obs::Cat::kPort, obs::Kind::kCorrupt, trace_actor_,
                p.frame_bytes, static_cast<std::int64_t>(p.uid));
      pool_.release(slot);
      return;  // the peer MAC drops corrupted frames silently
    }
    ++counters_.delivered_frames;
    obs::emit(sim_.now(), obs::Cat::kPort, obs::Kind::kDeliver, trace_actor_,
              p.frame_bytes, static_cast<std::int64_t>(p.uid));
    if (!deliver_) {
      pool_.release(slot);
      return;
    }
    auto arrive = [this, slot] {
      deliver_(std::move(*slot));
      pool_.release(slot);
    };
    static_assert(sizeof(arrive) <= sim::InlineCallback::kInlineBytes);
    sim_.schedule_in(prop_delay_, std::move(arrive));
  }

  Simulator& sim_;
  std::string name_;
  BitRate rate_;
  SimTime prop_delay_;
  std::vector<Queue> queues_;
  DeliverFn deliver_;
  LossModel* loss_ = nullptr;
  TransmitHook on_transmit_;
  PacketPool pool_;  // in-flight frames (serialization + propagation legs)
  bool busy_ = false;
  std::int64_t frac_carry_ = 0;  // sub-ns serialization remainder (x rate)
  PortCounters counters_;
  std::uint32_t trace_actor_ = 0;  // interned at construction (run's sink)
};

}  // namespace lgsim::net
