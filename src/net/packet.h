// Packet representation shared by all layers of the simulator.
//
// A `Packet` is a plain value type: copies are cheap (no heap payload) which
// lets LinkGuardian buffer literal copies of protected packets the way the
// Tofino implementation buffers them via egress mirroring. Instead of byte
// buffers we carry small typed header structs for each protocol; the frame
// size accounts for the bytes each header would occupy on the wire.
#pragma once

#include <array>
#include <cstdint>

#include "util/units.h"

namespace lgsim::net {

/// What the frame fundamentally is (the outermost interpretation).
enum class PktKind : std::uint8_t {
  kData,             // transport payload (TCP segment, RDMA packet, raw load)
  kTransportAck,     // TCP ACK / RDMA ACK/NACK
  kLgAck,            // explicit minimum-size LinkGuardian ACK (§3.1)
  kLgLossNotif,      // high-priority loss notification (§A.1)
  kLgDummy,          // self-replenishing dummy packet (§3.2)
  kPfcPause,         // priority flow control pause frame (§3.5)
  kPfcResume,        // priority flow control resume frame
  kTimer,            // switch packet-generator timer packet (§3.5)
  kProbe,            // telemetry loss probe (src/telemetry, LinkStat-style)
};

/// 3-byte LinkGuardian data header: 16-bit seqNo, an era bit and the packet
/// type (original vs retransmitted). Attached by the sender switch to every
/// packet protected on the corrupting link (§3.5).
struct LgDataHeader {
  bool valid = false;
  std::uint16_t seq = 0;
  std::uint8_t era = 0;       // toggles on each seqNo wrap-around
  bool retransmitted = false; // original or reTx copy
};

/// 3-byte LinkGuardian ACK header, piggybacked on reverse-direction packets
/// or carried by an explicit kLgAck packet: cumulative latestRxSeqNo + era.
struct LgAckHeader {
  bool valid = false;
  std::uint16_t latest_rx_seq = 0;
  std::uint8_t era = 0;
};

/// One SACK block: [start, end) in byte-sequence space.
struct SackBlock {
  std::int64_t start = 0;
  std::int64_t end = 0;
};

/// Simplified TCP header (byte-sequence based, like the kernel).
struct TcpHeader {
  bool valid = false;
  std::uint32_t flow = 0;     // flow identifier (connection)
  std::int64_t seq = 0;       // first payload byte
  std::int32_t payload = 0;   // payload length in bytes
  std::int64_t ack = 0;       // cumulative ACK (valid on ACK packets)
  bool fin = false;           // last segment of the flow
  bool ce = false;            // ECN CE mark (set by switches)
  bool ece = false;           // ECN echo (receiver -> sender)
  std::uint8_t n_sack = 0;
  std::array<SackBlock, 3> sack{};
};

/// Simplified RoCEv2 RC header (packet-sequence-number based).
enum class RdmaOp : std::uint8_t { kData, kAck, kNack };
struct RdmaHeader {
  bool valid = false;
  std::uint32_t qp = 0;       // queue pair id
  RdmaOp op = RdmaOp::kData;
  std::int64_t psn = 0;       // packet sequence number (data) / expected (nack)
  bool last = false;          // last packet of the message
};

/// PFC pause/resume payload: which priority class to pause.
struct PfcHeader {
  bool valid = false;
  std::uint8_t prio_class = 0;
  bool pause = false;         // true = pause, false = resume
};

/// Telemetry probe payload: 16-bit sequence number plus the emission
/// timestamp (what a real probe would carry in its payload bytes). The
/// receiving estimator recovers the sender's emission schedule from these
/// two fields alone — no oracle access to the sender (src/telemetry).
struct ProbeHeader {
  bool valid = false;
  std::uint16_t seq = 0;
  SimTime sent_at = 0;
};

/// RIFL link-layer reliability header (src/rifl): 16-bit frame sequence
/// number plus the original/retransmission flag. The sequence space is far
/// wider than the retransmission window, so 16 bits resolve unambiguously.
struct RiflHeader {
  bool valid = false;
  std::uint16_t seq = 0;
  bool retransmitted = false;
};

/// P4-Protect-style 1+1 duplication header (src/protect): 16-bit tunnel
/// sequence number stamped at the replication point, consumed by the merge
/// point's dedup filter.
struct DupHeader {
  bool valid = false;
  std::uint16_t seq = 0;
};

/// LinkGuardian loss notification (§A.1): the missing range plus the
/// receiver's latestRxSeqNo so the sender can update its copy.
struct LgLossNotifHeader {
  bool valid = false;
  std::uint16_t first_missing = 0;
  std::uint8_t first_missing_era = 0;
  std::uint16_t count = 0;  // consecutive missing seqNos
};

struct Packet {
  PktKind kind = PktKind::kData;
  /// L2 frame size in bytes (Ethernet header + payload + FCS). The port adds
  /// preamble + IFG (20 B) when computing wire occupancy.
  std::int32_t frame_bytes = 64;
  std::uint32_t src = 0;      // source node id (for routing in harnesses)
  std::uint32_t dst = 0;      // destination node id
  std::uint64_t uid = 0;      // unique id assigned by the creator (tracing)
  SimTime created_at = 0;

  LgDataHeader lg;
  LgAckHeader lg_ack;
  LgLossNotifHeader lg_notif;
  TcpHeader tcp;
  RdmaHeader rdma;
  PfcHeader pfc;
  ProbeHeader probe;
  RiflHeader rifl;
  DupHeader dup;

  /// Shadow 64-bit sequence number used only by tests/assertions to validate
  /// the 16-bit + era wire arithmetic; protocol logic never reads it.
  std::uint64_t debug_true_seq = 0;

  std::int64_t wire_bytes() const { return frame_bytes + kEthernetPreamble + kEthernetIfg; }
};

/// Minimum-size control frame helper.
inline Packet make_control(PktKind kind) {
  Packet p;
  p.kind = kind;
  p.frame_bytes = kMinFrameSize;
  return p;
}

}  // namespace lgsim::net
