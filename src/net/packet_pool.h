// Free-listed Packet pool for the port/pipeline copy chain.
//
// The event kernel stores callbacks inline with a hard 64-byte size cap
// (sim/event.h), so datapath closures cannot capture a ~200-byte `Packet` by
// value the way the original `std::function` path did. Instead, a component
// parks the in-flight frame in its pool and captures the stable `Packet*`:
//
//   net::Packet* slot = pool_.acquire(std::move(p));
//   sim.schedule_in(delay, [this, slot] {
//     next_(std::move(*slot));   // consumer moves the payload out...
//     pool_.release(slot);       // ...then the slot is recycled
//   });
//
// The arena is a deque (stable addresses across growth) and never shrinks:
// after warmup the pool's working set matches the component's peak in-flight
// frame count and `acquire` / `release` are freelist push/pop — zero
// steady-state allocation, which bench_micro's allocation guard pins.
//
// Pools are owned per component per simulation, so they are thread-confined
// exactly like the Simulator itself (the parallel runner gives each
// replication cell its own simulation).
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace lgsim::net {

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Move `p` into a recycled slot and return its stable address. The slot
  /// stays valid until release()d; addresses never move (deque arena).
  Packet* acquire(Packet&& p) {
    Packet* slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      arena_.emplace_back();
      slot = &arena_.back();
    }
    *slot = std::move(p);
    return slot;
  }

  /// Return a slot to the freelist. The caller must have moved the payload
  /// out (or be done with it); the Packet object itself is reused as-is.
  void release(Packet* slot) { free_.push_back(slot); }

  /// Slots ever created (the peak in-flight count after warmup).
  std::size_t capacity() const { return arena_.size(); }
  /// Slots currently checked out.
  std::size_t in_flight() const { return arena_.size() - free_.size(); }

 private:
  std::deque<Packet> arena_;
  std::vector<Packet*> free_;
};

}  // namespace lgsim::net
