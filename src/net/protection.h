// Protection-scheme abstraction: the per-scheme knobs a link-reliability
// design plugs into a path.
//
// The paper compares LinkGuardian against Wharf (link-local FEC); the repo
// additionally reproduces RIFL (link-layer retransmission, arXiv 2309.08696)
// and P4-Protect-style 1+1 path duplication (arXiv 2001.11370). All of them
// reduce to the same four knobs at path level:
//
//   * capacity fraction — what share of the protected link's line rate is
//     left for traffic once the scheme's redundancy is paid (Wharf's parity
//     frames, RIFL's framing + retransmissions; 1 for schemes whose cost is
//     provisioned elsewhere),
//   * residual loss process — the loss process traffic experiences after the
//     scheme's recovery, wrapped around the link's raw corruption process,
//   * added latency — the fixed one-way latency of the scheme's framing /
//     merge logic,
//   * ordering — whether delivery order matches send order.
//
// plus one accounting knob, provisioned_capacity_x: how much total link
// capacity the scheme consumes per unit of traffic capacity (2 for 1+1
// duplication across disjoint paths — its tax is a second link, not a slower
// one). Benches print it next to goodput so "wins at high loss" can be read
// together with "at twice the provisioning".
//
// Concrete schemes live with their models: wharf::WharfScheme (src/wharf),
// rifl::RiflScheme (src/rifl), protect::OnePlusOneScheme (src/protect).
#pragma once

#include <memory>

#include "net/loss_model.h"
#include "sim/random.h"
#include "util/units.h"

namespace lgsim::net {

/// Specification of a link's raw corruption process: enough to construct the
/// drivable loss model a scheme wraps, and to size rate-dependent scheme
/// parameters (Wharf picks its block geometry per loss rate).
struct LossSpec {
  enum class Kind { kBernoulli, kGilbertElliott };
  Kind kind = Kind::kBernoulli;
  /// Marginal per-frame loss rate (0 = healthy link).
  double rate = 0.0;
  /// Mean bad-burst length in frames (Gilbert-Elliott only).
  double mean_burst = 1.0;
  std::uint64_t seed = 5;

  std::unique_ptr<DrivableLoss> build() const {
    if (kind == Kind::kGilbertElliott)
      return std::make_unique<GilbertElliottLoss>(
          rate > 0.0 ? GilbertElliottLoss::for_rate(rate, mean_burst)
                     : GilbertElliottLoss::Params{0.0, 1.0, 0.0, 1.0},
          Rng(seed));
    return std::make_unique<BernoulliLoss>(rate, Rng(seed));
  }

  const char* kind_name() const {
    return kind == Kind::kGilbertElliott ? "ge" : "bernoulli";
  }
};

/// A scheme's residual loss process plus the handle to the raw drivable
/// process buried inside it. Fault scripts and corruptd drive `raw` (the
/// fiber's corruption level); the link rolls `model` (what survives the
/// scheme's recovery). For an unprotected link the two coincide.
struct ResidualLoss {
  std::unique_ptr<LossModel> model;
  /// Owned by (or equal to) `model`; never null.
  DrivableLoss* raw = nullptr;
};

class ProtectionScheme {
 public:
  virtual ~ProtectionScheme() = default;

  virtual const char* name() const = 0;

  /// Fraction of the protected link's line rate available to traffic under
  /// the given raw process (redundancy + recovery bandwidth tax).
  virtual double capacity_fraction(const LossSpec& raw) const = 0;

  /// Total link capacity provisioned per unit of traffic capacity.
  virtual double provisioned_capacity_x(const LossSpec& raw) const {
    const double f = capacity_fraction(raw);
    return f > 0.0 ? 1.0 / f : 0.0;
  }

  /// Fixed one-way latency the scheme adds to every delivered frame.
  virtual SimTime added_latency() const { return 0; }

  /// Whether delivery order matches send order.
  virtual bool preserves_order() const { return true; }

  /// Builds the residual loss process around a raw process constructed from
  /// `raw` (each scheme owns its seed discipline for any auxiliary
  /// randomness, e.g. the disjoint path of 1+1).
  virtual ResidualLoss residual(const LossSpec& raw) const = 0;
};

/// No protection: raw capacity, raw loss process, no latency.
class Unprotected final : public ProtectionScheme {
 public:
  const char* name() const override { return "none"; }
  double capacity_fraction(const LossSpec&) const override { return 1.0; }
  ResidualLoss residual(const LossSpec& raw) const override {
    auto model = raw.build();
    DrivableLoss* handle = model.get();
    return ResidualLoss{std::move(model), handle};
  }
};

}  // namespace lgsim::net
