// Per-frame loss processes for corrupting links.
//
// The paper's testbed induces corruption with a Variable Optical Attenuator;
// the receiving MAC drops any frame whose FCS fails. We reproduce the *drop
// process* directly: an i.i.d. Bernoulli model for the common case, and a
// Gilbert-Elliott two-state model to reproduce the measured burstiness of
// consecutive losses (Fig. 20: overwhelmingly single losses, occasionally up
// to ~5 in a row even at unreasonably high loss rates).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "sim/random.h"
#include "util/units.h"

namespace lgsim::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Returns true if this frame is corrupted (and therefore dropped by the
  /// receiving MAC).
  virtual bool lose(SimTime now, const Packet& p) = 0;
};

/// No corruption: a healthy link.
class NoLoss final : public LossModel {
 public:
  bool lose(SimTime, const Packet&) override { return false; }
};

/// A loss process whose intensity can be re-aimed while the simulation runs —
/// the time-varying drive API the fault-injection subsystem (src/fault) uses
/// to script link degradation. Two orthogonal controls:
///
///   * drive_rate(r): retarget the marginal loss rate. Takes effect on the
///     next frame rolled; the RNG stream is untouched, so a drive back to the
///     original rate replays the exact same drop decisions a never-driven
///     model would have made from that frame on.
///   * set_link_down(true): administratively/physically dead link — every
///     frame is lost *without consuming an RNG draw*, so flap windows do not
///     shift the loss pattern of the up-time around them.
class DrivableLoss : public LossModel {
 public:
  bool lose(SimTime now, const Packet& p) final {
    if (down_) return true;
    return roll(now, p);
  }

  /// Retarget the marginal per-frame loss rate; next frame sees it.
  virtual void drive_rate(double rate) = 0;
  /// The rate the process is currently aimed at (marginal, link-up).
  virtual double driven_rate() const = 0;

  void set_link_down(bool down) { down_ = down; }
  bool link_down() const { return down_; }

 private:
  virtual bool roll(SimTime now, const Packet& p) = 0;

  bool down_ = false;
};

/// Independent and identically distributed corruption at a fixed rate.
class BernoulliLoss final : public DrivableLoss {
 public:
  BernoulliLoss(double rate, Rng rng) : rate_(rate), rng_(rng) {}

  void set_rate(double rate) { rate_ = rate; }
  double rate() const { return rate_; }

  void drive_rate(double rate) override { rate_ = rate; }
  double driven_rate() const override { return rate_; }

 private:
  bool roll(SimTime, const Packet&) override { return rng_.bernoulli(rate_); }

  double rate_;
  Rng rng_;
};

/// Two-state Gilbert-Elliott model. In the good state frames are lost with
/// probability `loss_good` (usually 0); in the bad state with `loss_bad`.
/// State transitions are evaluated per frame.
class GilbertElliottLoss final : public DrivableLoss {
 public:
  struct Params {
    double p_good_to_bad = 0.0;  // per frame
    double p_bad_to_good = 0.5;
    double loss_good = 0.0;
    double loss_bad = 1.0;
  };

  GilbertElliottLoss(Params params, Rng rng) : params_(params), rng_(rng) {}

  /// Builds parameters yielding average loss `rate` with mean burst length
  /// `mean_burst` (in frames). The stationary fraction of bad-state frames is
  /// rate (with loss_bad = 1), so p_b2g = 1/mean_burst and
  /// p_g2b = rate/( (1-rate) * mean_burst ).
  static Params for_rate(double rate, double mean_burst) {
    Params p;
    p.loss_bad = 1.0;
    p.loss_good = 0.0;
    p.p_bad_to_good = 1.0 / mean_burst;
    p.p_good_to_bad = rate / ((1.0 - rate) * mean_burst);
    return p;
  }

  /// Mid-run re-parameterisation (burst-episode injection): the chain keeps
  /// its current good/bad state and RNG position; the new transition and loss
  /// probabilities apply from the next frame.
  void set_params(Params params) { params_ = params; }
  const Params& params() const { return params_; }

  /// Mean burst length implied by the current parameters (frames).
  double mean_burst() const {
    return params_.p_bad_to_good > 0.0 ? 1.0 / params_.p_bad_to_good : 1.0;
  }

  /// Retarget the marginal loss rate, preserving the burst length. A rate of
  /// 0 pins the chain parameters so it can never enter (and always leaves)
  /// the bad state — the "healthy link before onset" configuration.
  void drive_rate(double rate) override {
    if (rate <= 0.0) {
      params_.p_good_to_bad = 0.0;
      params_.loss_good = 0.0;
      return;
    }
    if (rate >= 1.0) rate = 1.0 - 1e-12;
    params_ = for_rate(rate, mean_burst());
  }

  double driven_rate() const override {
    // Stationary bad fraction x loss_bad + good fraction x loss_good.
    const double g2b = params_.p_good_to_bad;
    const double b2g = params_.p_bad_to_good;
    if (g2b + b2g <= 0.0) return params_.loss_good;
    const double bad_frac = g2b / (g2b + b2g);
    return bad_frac * params_.loss_bad + (1.0 - bad_frac) * params_.loss_good;
  }

  bool in_bad_state() const { return bad_; }

 private:
  bool roll(SimTime, const Packet&) override {
    if (bad_) {
      if (rng_.bernoulli(params_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng_.bernoulli(params_.p_good_to_bad)) bad_ = true;
    }
    return rng_.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
  }

  Params params_;
  Rng rng_;
  bool bad_ = false;
};

/// Drops the frames whose (0-based) index on the link appears in `indices`.
/// Deterministic; used by protocol unit tests to script exact loss patterns.
/// Indices are sorted once at construction; since the frame counter is
/// monotone, a cursor over the sorted list answers each frame in O(1)
/// amortized (the seed implementation rescanned the whole list per frame).
class ScriptedLoss final : public LossModel {
 public:
  explicit ScriptedLoss(std::vector<std::uint64_t> indices)
      : indices_(std::move(indices)) {
    std::sort(indices_.begin(), indices_.end());
  }

  bool lose(SimTime, const Packet&) override {
    const std::uint64_t i = next_++;
    while (cursor_ < indices_.size() && indices_[cursor_] < i) ++cursor_;
    if (cursor_ < indices_.size() && indices_[cursor_] == i) {
      ++cursor_;
      return true;
    }
    return false;
  }

  std::uint64_t frames_seen() const { return next_; }

 private:
  std::vector<std::uint64_t> indices_;
  std::size_t cursor_ = 0;
  std::uint64_t next_ = 0;
};

/// Piecewise-constant loss rate over time: models a link whose corruption
/// level changes as the fiber degrades or is partially repaired. Segments
/// are (start_time, rate) pairs in increasing time order; the rate before
/// the first segment is 0.
class TimeVaryingLoss final : public LossModel {
 public:
  struct Segment {
    SimTime start;
    double rate;
  };

  TimeVaryingLoss(std::vector<Segment> segments, Rng rng)
      : segments_(std::move(segments)), rng_(rng) {}

  bool lose(SimTime now, const Packet&) override {
    // Frames arrive in nondecreasing simulation time, so a monotone cursor
    // replaces the seed's per-frame rescan of every segment. Time moving
    // backwards (a fresh replay against the same model) resets the cursor,
    // preserving the original any-order semantics; the RNG consumes exactly
    // one draw per frame either way (none when the active rate is 0 —
    // bernoulli(0) short-circuits before drawing, exactly as before).
    if (now < last_now_) cursor_ = 0;
    last_now_ = now;
    while (cursor_ < segments_.size() && now >= segments_[cursor_].start)
      ++cursor_;
    const double rate = cursor_ > 0 ? segments_[cursor_ - 1].rate : 0.0;
    return rng_.bernoulli(rate);
  }

  double rate_at(SimTime t) const {
    double rate = 0.0;
    for (const auto& s : segments_) {
      if (t >= s.start) rate = s.rate;
      else break;
    }
    return rate;
  }

 private:
  std::vector<Segment> segments_;
  Rng rng_;
  std::size_t cursor_ = 0;     // first segment with start > last_now_
  SimTime last_now_ = 0;
};

/// Applies an inner model only to a subset of packet kinds; everything else
/// passes through. Used to e.g. exempt reverse-direction control traffic when
/// modelling unidirectional corruption.
class FilteredLoss final : public LossModel {
 public:
  using Predicate = bool (*)(const Packet&);
  FilteredLoss(std::unique_ptr<LossModel> inner, Predicate pred)
      : inner_(std::move(inner)), pred_(pred) {}

  bool lose(SimTime now, const Packet& p) override {
    if (!pred_(p)) return false;
    return inner_->lose(now, p);
  }

 private:
  std::unique_ptr<LossModel> inner_;
  Predicate pred_;
};

}  // namespace lgsim::net
