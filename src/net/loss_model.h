// Per-frame loss processes for corrupting links.
//
// The paper's testbed induces corruption with a Variable Optical Attenuator;
// the receiving MAC drops any frame whose FCS fails. We reproduce the *drop
// process* directly: an i.i.d. Bernoulli model for the common case, and a
// Gilbert-Elliott two-state model to reproduce the measured burstiness of
// consecutive losses (Fig. 20: overwhelmingly single losses, occasionally up
// to ~5 in a row even at unreasonably high loss rates).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "sim/random.h"
#include "util/units.h"

namespace lgsim::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Returns true if this frame is corrupted (and therefore dropped by the
  /// receiving MAC).
  virtual bool lose(SimTime now, const Packet& p) = 0;
};

/// No corruption: a healthy link.
class NoLoss final : public LossModel {
 public:
  bool lose(SimTime, const Packet&) override { return false; }
};

/// Independent and identically distributed corruption at a fixed rate.
class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double rate, Rng rng) : rate_(rate), rng_(rng) {}

  bool lose(SimTime, const Packet&) override { return rng_.bernoulli(rate_); }

  void set_rate(double rate) { rate_ = rate; }
  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
};

/// Two-state Gilbert-Elliott model. In the good state frames are lost with
/// probability `loss_good` (usually 0); in the bad state with `loss_bad`.
/// State transitions are evaluated per frame.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.0;  // per frame
    double p_bad_to_good = 0.5;
    double loss_good = 0.0;
    double loss_bad = 1.0;
  };

  GilbertElliottLoss(Params params, Rng rng) : params_(params), rng_(rng) {}

  bool lose(SimTime, const Packet&) override {
    if (bad_) {
      if (rng_.bernoulli(params_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng_.bernoulli(params_.p_good_to_bad)) bad_ = true;
    }
    return rng_.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
  }

  /// Builds parameters yielding average loss `rate` with mean burst length
  /// `mean_burst` (in frames). The stationary fraction of bad-state frames is
  /// rate (with loss_bad = 1), so p_b2g = 1/mean_burst and
  /// p_g2b = rate/( (1-rate) * mean_burst ).
  static Params for_rate(double rate, double mean_burst) {
    Params p;
    p.loss_bad = 1.0;
    p.loss_good = 0.0;
    p.p_bad_to_good = 1.0 / mean_burst;
    p.p_good_to_bad = rate / ((1.0 - rate) * mean_burst);
    return p;
  }

  bool in_bad_state() const { return bad_; }

 private:
  Params params_;
  Rng rng_;
  bool bad_ = false;
};

/// Drops the frames whose (0-based) index on the link appears in `indices`.
/// Deterministic; used by protocol unit tests to script exact loss patterns.
class ScriptedLoss final : public LossModel {
 public:
  explicit ScriptedLoss(std::vector<std::uint64_t> indices)
      : indices_(std::move(indices)) {}

  bool lose(SimTime, const Packet&) override {
    const std::uint64_t i = next_++;
    for (auto idx : indices_)
      if (idx == i) return true;
    return false;
  }

  std::uint64_t frames_seen() const { return next_; }

 private:
  std::vector<std::uint64_t> indices_;
  std::uint64_t next_ = 0;
};

/// Piecewise-constant loss rate over time: models a link whose corruption
/// level changes as the fiber degrades or is partially repaired. Segments
/// are (start_time, rate) pairs in increasing time order; the rate before
/// the first segment is 0.
class TimeVaryingLoss final : public LossModel {
 public:
  struct Segment {
    SimTime start;
    double rate;
  };

  TimeVaryingLoss(std::vector<Segment> segments, Rng rng)
      : segments_(std::move(segments)), rng_(rng) {}

  bool lose(SimTime now, const Packet&) override {
    double rate = 0.0;
    for (const auto& s : segments_) {
      if (now >= s.start) rate = s.rate;
      else break;
    }
    return rng_.bernoulli(rate);
  }

  double rate_at(SimTime t) const {
    double rate = 0.0;
    for (const auto& s : segments_) {
      if (t >= s.start) rate = s.rate;
      else break;
    }
    return rate;
  }

 private:
  std::vector<Segment> segments_;
  Rng rng_;
};

/// Applies an inner model only to a subset of packet kinds; everything else
/// passes through. Used to e.g. exempt reverse-direction control traffic when
/// modelling unidirectional corruption.
class FilteredLoss final : public LossModel {
 public:
  using Predicate = bool (*)(const Packet&);
  FilteredLoss(std::unique_ptr<LossModel> inner, Predicate pred)
      : inner_(std::move(inner)), pred_(pred) {}

  bool lose(SimTime now, const Packet& p) override {
    if (!pred_(p)) return false;
    return inner_->lose(now, p);
  }

 private:
  std::unique_ptr<LossModel> inner_;
  Predicate pred_;
};

}  // namespace lgsim::net
