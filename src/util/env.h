// Environment-variable parsing shared by the bench binaries and harnesses.
//
// The knobs (LGSIM_BENCH_SCALE, LGSIM_BENCH_JOBS) feed directly into loop
// bounds and thread counts, so the parsers are strict: anything that is not a
// finite value in range — including "nan", "inf", overflow, or trailing
// garbage — falls back to the default instead of leaking into the run.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace lgsim {

/// Parses a strictly positive, finite double. Returns `fallback` for null,
/// empty, non-numeric, trailing garbage, NaN, infinity, or values <= 0.
inline double parse_positive_double(const char* s, double fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return fallback;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return fallback;
    ++end;
  }
  if (!std::isfinite(v) || v <= 0.0) return fallback;
  return v;
}

/// Parses a positive integer count (e.g. a worker count). Returns `fallback`
/// for null, empty, non-numeric, trailing garbage, or values < 1; caps at
/// `max` to keep a fat-fingered value from spawning thousands of threads.
inline unsigned parse_positive_count(const char* s, unsigned fallback,
                                     unsigned max = 1024) {
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s) return fallback;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return fallback;
    ++end;
  }
  if (v < 1) return fallback;
  if (v > static_cast<long>(max)) return max;
  return static_cast<unsigned>(v);
}

}  // namespace lgsim
