// Growable ring-buffer FIFO.
//
// Replaces `std::deque` on the packet datapath: libstdc++'s deque allocates
// and frees ~512-byte node blocks as the head/tail cross block boundaries,
// which for ~200-byte Packets means an allocation roughly every other frame
// even at steady queue depth. The ring grows by doubling (amortized, warmup
// only) and never shrinks, so a steady-state push/pop cycle allocates
// nothing — the invariant bench_micro's allocation guard enforces for the
// port datapath.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace lgsim::util {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  T& back() {
    assert(size_ > 0);
    return buf_[(head_ + size_ - 1) & (buf_.size() - 1)];
  }
  const T& back() const {
    assert(size_ > 0);
    return buf_[(head_ + size_ - 1) & (buf_.size() - 1)];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;  // power of two

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace lgsim::util
