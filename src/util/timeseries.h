// Time-series recorder for timeline experiments (Figs. 9 and 21).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/units.h"

namespace lgsim {

/// Records (time, value) samples; used by throughput/queue-depth timelines.
class TimeSeries {
 public:
  struct Sample {
    SimTime time = 0;
    double value = 0.0;
  };

  void record(SimTime t, double v) { samples_.push_back({t, v}); }

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  /// Mean of values recorded in [from, to).
  double mean_in(SimTime from, SimTime to) const {
    double s = 0.0;
    std::int64_t n = 0;
    for (const auto& x : samples_) {
      if (x.time >= from && x.time < to) {
        s += x.value;
        ++n;
      }
    }
    return n > 0 ? s / static_cast<double>(n) : 0.0;
  }

  double max_in(SimTime from, SimTime to) const {
    double m = 0.0;
    for (const auto& x : samples_)
      if (x.time >= from && x.time < to && x.value > m) m = x.value;
    return m;
  }

  /// Folds another series in, keeping samples sorted by time (ties keep this
  /// series' samples first — a stable, scheduling-independent order). Lets
  /// per-worker timelines from a replication sweep be reduced at join.
  void merge(const TimeSeries& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    std::stable_sort(
        samples_.begin(), samples_.end(),
        [](const Sample& a, const Sample& b) { return a.time < b.time; });
  }

  void reset() { samples_.clear(); }

 private:
  std::vector<Sample> samples_;
};

/// Turns a monotone byte counter into a rate time-series by windowed sampling.
class RateMeter {
 public:
  explicit RateMeter(SimTime window) : window_(window) {}

  /// Accumulate `bytes` delivered at time `now`; emits one sample per window.
  void on_bytes(SimTime now, std::int64_t bytes) {
    if (window_start_ < 0) window_start_ = now;
    while (now >= window_start_ + window_) {
      flush_window();
    }
    bytes_in_window_ += bytes;
  }

  /// Close out any partial window (call at end of experiment).
  void finish(SimTime now) {
    if (window_start_ >= 0 && now > window_start_) flush_window();
  }

  const TimeSeries& series() const { return series_; }

 private:
  void flush_window() {
    const double gbit_per_s =
        static_cast<double>(bytes_in_window_) * 8.0 / static_cast<double>(window_);
    series_.record(window_start_ + window_, gbit_per_s);  // Gbps since ns cancels
    window_start_ += window_;
    bytes_in_window_ = 0;
  }

  SimTime window_;
  SimTime window_start_ = -1;
  std::int64_t bytes_in_window_ = 0;
  TimeSeries series_;
};

}  // namespace lgsim
