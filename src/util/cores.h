// Shared core budget for nested parallelism.
//
// Two pools can now ask for workers at once: harness::ParallelRunner fans
// replication cells out across LGSIM_BENCH_JOBS threads, and a sharded cell
// (sim/shard.h) wants several workers *inside* one cell. Without
// coordination, jobs x shards oversubscribes the machine and every run slows
// down. The ledger below is the coordination point: an outer pool leases its
// worker count for the duration of its run, and inner pools size themselves
// from what is left.
//
// Worker counts derived here affect wall clock ONLY, never results — every
// consumer (ParallelRunner, ShardedSimulator, the shard task pool) is
// byte-identical for any worker count, so a mis-sized budget is a perf bug,
// not a correctness bug.
#pragma once

#include <atomic>
#include <cstdlib>
#include <thread>

#include "util/env.h"

namespace lgsim {

/// Cores the process may use: LGSIM_CORES if set (strictly positive integer;
/// garbage falls back), else hardware_concurrency.
inline unsigned machine_cores() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return parse_positive_count(std::getenv("LGSIM_CORES"), hw);
}

namespace cores_detail {
/// Sum of worker counts currently leased by running pools.
inline std::atomic<unsigned>& leased() {
  static std::atomic<unsigned> n{0};
  return n;
}
}  // namespace cores_detail

/// RAII lease of `workers` cores while a pool runs. Taken by
/// harness::ParallelRunner around its worker fan-out so nested pools (the
/// sharded cell runtime) can size themselves from the remainder.
class CoreLease {
 public:
  explicit CoreLease(unsigned workers) : workers_(workers) {
    cores_detail::leased().fetch_add(workers_, std::memory_order_relaxed);
  }
  ~CoreLease() {
    cores_detail::leased().fetch_sub(workers_, std::memory_order_relaxed);
  }
  CoreLease(const CoreLease&) = delete;
  CoreLease& operator=(const CoreLease&) = delete;

 private:
  unsigned workers_;
};

/// Workers an *inner* pool should spawn so that outer-jobs x inner-workers
/// never exceeds the machine: the whole machine when no outer pool is
/// running, else an even split across the outer pool's workers (floor, min
/// 1). Capped at `want`.
inline unsigned cores_available(unsigned want) {
  if (want < 1) want = 1;
  const unsigned total = machine_cores();
  const unsigned outer = cores_detail::leased().load(std::memory_order_relaxed);
  unsigned avail = outer > 1 ? total / outer : total;
  if (avail < 1) avail = 1;
  return avail < want ? avail : want;
}

}  // namespace lgsim
