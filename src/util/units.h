// Fundamental unit helpers shared across the simulator.
//
// All simulation time is an integer count of nanoseconds (`SimTime`); all link
// rates are bits per second (`BitRate`). Keeping these as plain integers keeps
// the event loop allocation-free and fast while the constexpr helpers below
// keep call sites readable (`usec(30)`, `gbps(100)`).
#pragma once

#include <cstdint>

namespace lgsim {

/// Simulation timestamp / duration in nanoseconds.
using SimTime = std::int64_t;

/// Link rate in bits per second.
using BitRate = std::int64_t;

constexpr SimTime kNsecPerUsec = 1'000;
constexpr SimTime kNsecPerMsec = 1'000'000;
constexpr SimTime kNsecPerSec = 1'000'000'000;

constexpr SimTime nsec(std::int64_t n) { return n; }
constexpr SimTime usec(std::int64_t n) { return n * kNsecPerUsec; }
constexpr SimTime msec(std::int64_t n) { return n * kNsecPerMsec; }
constexpr SimTime sec(std::int64_t n) { return n * kNsecPerSec; }

constexpr double to_usec(SimTime t) { return static_cast<double>(t) / kNsecPerUsec; }
constexpr double to_msec(SimTime t) { return static_cast<double>(t) / kNsecPerMsec; }
constexpr double to_sec(SimTime t) { return static_cast<double>(t) / kNsecPerSec; }

constexpr BitRate kbps(std::int64_t n) { return n * 1'000; }
constexpr BitRate mbps(std::int64_t n) { return n * 1'000'000; }
constexpr BitRate gbps(std::int64_t n) { return n * 1'000'000'000; }

/// Time to serialize `bytes` onto a link of rate `rate` (rounded up to whole ns).
constexpr SimTime serialization_time(std::int64_t bytes, BitRate rate) {
  // bytes * 8 bits / (rate bits/s) in ns = bytes * 8e9 / rate.
  return (bytes * 8 * kNsecPerSec + rate - 1) / rate;
}

/// Bytes that drain from a queue at `rate` during `dur` nanoseconds.
constexpr std::int64_t bytes_in_time(SimTime dur, BitRate rate) {
  return dur * rate / (8 * kNsecPerSec);
}

// Ethernet framing constants. An MTU-sized frame occupies 1538 octets on the
// wire: 1500 payload + 14 Ethernet header + 4 FCS + 8 preamble + 12 IFG.
constexpr std::int64_t kEthernetMtu = 1500;
constexpr std::int64_t kEthernetHeader = 14;
constexpr std::int64_t kEthernetFcs = 4;
constexpr std::int64_t kEthernetPreamble = 8;
constexpr std::int64_t kEthernetIfg = 12;
constexpr std::int64_t kEthernetOverheadOnWire =
    kEthernetHeader + kEthernetFcs + kEthernetPreamble + kEthernetIfg;
constexpr std::int64_t kMtuFrameOnWire = kEthernetMtu + kEthernetOverheadOnWire;  // 1538
constexpr std::int64_t kMinFrameSize = 64;  // minimum Ethernet frame (w/o preamble+IFG)

}  // namespace lgsim
