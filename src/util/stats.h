// Statistics accumulators used by tests and benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace lgsim {

/// Streaming accumulator for count / mean / min / max / stddev (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  /// Folds another accumulator in, as if its samples had been added here
  /// (Chan et al. parallel Welford update). Used to reduce per-worker
  /// accumulators after a parallel replication sweep.
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::int64_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
  }

  void reset() { *this = RunningStats{}; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; answers arbitrary percentile queries.
///
/// Percentiles use the nearest-rank definition on the sorted samples, which is
/// what the paper's gnuplot CDFs effectively report.
class PercentileTracker {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::int64_t count() const { return static_cast<std::int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }

  /// p in [0, 100]. p=50 is the median; p=100 the maximum.
  double percentile(double p) const {
    ensure_sorted();
    if (samples_.empty()) return 0.0;
    if (p <= 0.0) return samples_.front();
    if (p >= 100.0) return samples_.back();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }

  double min() const { ensure_sorted(); return samples_.empty() ? 0.0 : samples_.front(); }
  double max() const { ensure_sorted(); return samples_.empty() ? 0.0 : samples_.back(); }

  /// Summed in sorted order so the mean — like every percentile — is a pure
  /// function of the sample *multiset*: trackers filled in different orders
  /// (per-shard trackers merged at join) report bit-identical means.
  double mean() const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// Fraction of samples <= x (empirical CDF).
  double cdf_at(double x) const {
    ensure_sorted();
    if (samples_.empty()) return 0.0;
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
  }

  const std::vector<double>& sorted_samples() const {
    ensure_sorted();
    return samples_;
  }

  /// Folds another tracker's samples in. Percentiles over the merged set are
  /// identical regardless of merge order (queries sort the union), which is
  /// what lets per-worker trackers be reduced at join deterministically.
  void merge(const PercentileTracker& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    sorted_ = samples_.empty();
  }

  void reset() { samples_.clear(); sorted_ = true; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Integer-valued histogram (e.g. "consecutive packets lost" in Fig. 20).
class CountHistogram {
 public:
  void add(std::int64_t value, std::int64_t weight = 1) {
    if (value < 0) value = 0;
    if (static_cast<std::size_t>(value) >= bins_.size()) bins_.resize(value + 1, 0);
    bins_[value] += weight;
    total_ += weight;
  }

  std::int64_t total() const { return total_; }
  std::int64_t max_value() const { return static_cast<std::int64_t>(bins_.size()) - 1; }

  std::int64_t count_at(std::int64_t value) const {
    if (value < 0 || static_cast<std::size_t>(value) >= bins_.size()) return 0;
    return bins_[value];
  }

  /// Cumulative fraction of mass at values <= v.
  double cdf_at(std::int64_t v) const {
    if (total_ == 0) return 0.0;
    std::int64_t c = 0;
    for (std::int64_t i = 0; i <= v && static_cast<std::size_t>(i) < bins_.size(); ++i)
      c += bins_[i];
    return static_cast<double>(c) / static_cast<double>(total_);
  }

  /// Folds another histogram in (bin-wise sum). Addition is commutative, so
  /// any merge order yields the same histogram.
  void merge(const CountHistogram& o) {
    if (o.bins_.size() > bins_.size()) bins_.resize(o.bins_.size(), 0);
    for (std::size_t i = 0; i < o.bins_.size(); ++i) bins_[i] += o.bins_[i];
    total_ += o.total_;
  }

  void reset() { bins_.clear(); total_ = 0; }

 private:
  std::vector<std::int64_t> bins_;
  std::int64_t total_ = 0;
};

}  // namespace lgsim
