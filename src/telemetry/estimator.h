// Probe-based per-link loss estimation (the LinkStat idea, ROADMAP item 4).
//
// A LinkProber (probe.h) on the upstream switch emits minimum-size probe
// frames with a 16-bit sequence number every `period` through the same
// egress queue / fiber / loss chain the data takes. This estimator runs on
// the downstream switch: it remembers the last `window` distinct probe
// seqNos in a slot array (slot = seq & (window-1), the click linkstat
// layout) and computes the loss rate over a sliding TAU as
//
//     loss = 1 - (distinct probes received in (now - tau, now])
//                / (probes the schedule says were emitted in that interval)
//
// The emission schedule is recovered from the probes themselves: every probe
// carries its seqNo and emission timestamp, and the prober is driven by a
// PeriodicTask, so `sent_at - seq * period` is an exact, constant origin.
// No clock exchange and no oracle access to the sender is needed; a probe
// stall on the sender shifts the recovered origin forward, which the
// cumulative counters below absorb monotonically.
//
// Determinism contract: the estimator draws no random numbers and performs
// no steady-state allocation (the slot array is sized once in the
// constructor), so attaching one to a cell changes nothing about the cell's
// RNG stream — ParallelRunner byte-identity across LGSIM_BENCH_JOBS is
// preserved (tests/telemetry_off_test.cc pins both properties).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/units.h"

namespace lgsim::telemetry {

/// A windowed loss-rate estimate with its evidence attached. `known` is
/// false until the estimator has seen at least one probe (no schedule -> no
/// denominator); consumers must treat unknown as "no information", never as
/// "0% loss".
struct LossEstimate {
  double rate = 0.0;        // estimated loss fraction in the window, [0, 1]
  bool known = false;       // false: no probe ever seen, nothing to report
  std::int64_t samples = 0; // distinct probes received inside the window
  std::int64_t expected = 0;// probes the schedule emitted inside the window
  SimTime age = -1;         // now - last probe receipt (-1: never received)
};

struct EstimatorConfig {
  /// Sliding window the loss rate is computed over (click's TAU).
  SimTime tau = msec(2);
  /// The prober's emission period; must match the sending LinkProber.
  SimTime period = usec(10);
  /// Distinct sequence numbers remembered (click's WINDOW). Rounded up to a
  /// power of two; must cover at least tau / period or in-window probes
  /// would evict each other.
  std::int64_t window = 512;
};

class SeqWindowEstimator {
 public:
  explicit SeqWindowEstimator(const EstimatorConfig& cfg) : cfg_(cfg) {
    std::int64_t w = 1;
    while (w < cfg_.window) w <<= 1;
    slots_.assign(static_cast<std::size_t>(w), Slot{});
    mask_ = static_cast<std::uint64_t>(w - 1);
  }

  /// Record one received probe. `seq` is the 16-bit wire sequence number,
  /// `sent_at` the emission timestamp the probe carries, `now` the receive
  /// time. Duplicates (same seq, same emission) are counted and ignored;
  /// reordered arrivals land in their slot like any other.
  void on_probe(std::uint16_t seq, SimTime sent_at, SimTime now) {
    // Unwrap the 16-bit seq against the newest virtual seq seen so far
    // (nearest-representative: probes can only be ~window apart in flight,
    // far below the 32k ambiguity radius).
    std::int64_t v;
    if (last_v_ < 0) {
      v = seq;
    } else {
      const auto d = static_cast<std::int16_t>(
          seq - static_cast<std::uint16_t>(last_v_));
      v = last_v_ + d;
    }
    if (v > last_v_) last_v_ = v;

    Slot& s = slots_[static_cast<std::uint64_t>(v) & mask_];
    if (s.valid && s.virt == v) {
      ++duplicates_;
      return;
    }
    s.valid = true;
    s.virt = v;
    s.sent_at = sent_at;
    ++received_;
    last_rx_at_ = now;
    // Exact schedule recovery: emissions happen at origin + v * period.
    // A sender-side stall freezes seq while time advances, so the origin
    // can only move forward; keep the newest.
    const SimTime origin = sent_at - v * cfg_.period;
    if (!origin_known_ || origin > origin_) {
      origin_ = origin;
      origin_known_ = true;
    }
  }

  /// The sliding-window estimate at `now`.
  LossEstimate estimate(SimTime now) const {
    LossEstimate e;
    if (!origin_known_) return e;  // never saw a probe: unknown, not 0%
    e.age = last_rx_at_ >= 0 ? now - last_rx_at_ : -1;
    e.expected = expected_in(now - cfg_.tau, now);
    for (const Slot& s : slots_) {
      if (s.valid && s.sent_at > now - cfg_.tau && s.sent_at <= now)
        ++e.samples;
    }
    if (e.expected <= 0) return e;  // schedule says nothing was sent yet
    e.known = true;
    const double r = 1.0 - static_cast<double>(std::min(e.samples, e.expected)) /
                               static_cast<double>(e.expected);
    e.rate = std::clamp(r, 0.0, 1.0);
    return e;
  }

  /// Cumulative counters in the framesRxOk / framesRxAll shape corruptd
  /// polls (probe units). Both are monotone by construction: a sender stall
  /// shifts the recovered origin forward, which would shrink the naive
  /// expected count, so the cumulative view is clamped to never move
  /// backwards (the stall window simply stops contributing probes).
  std::int64_t cum_expected(SimTime now) const {
    // Sequence-gap accounting: a tick counts as expected only once a probe
    // with that or a later sequence number has *arrived* (<= last_v_ + 1).
    // Pure schedule extrapolation would keep accruing expectations through
    // silence — but the receiver cannot tell a wedged prober from a dead
    // wire, and treating "no evidence" as 100% loss false-activates on a
    // probe stall. The cap defers instead: losses inside a gap are charged
    // when the next probe lands (at most one inter-arrival later under
    // partial loss; a total blackout is charged in full on recovery).
    //
    // Just as important: this makes ok and all advance *atomically at probe
    // arrival*. Any scheme where all comes from the wall clock while ok
    // comes from arrivals carries a small in-flight skew between the two,
    // and that skew turns into phantom loss the moment window composition
    // changes (a sample evicted while a stall has frozen one counter). The
    // schedule bound stays only as a sanity cap: a probe arrives after its
    // own emission tick, so by_time >= by_seq on an in-order wire and the
    // min is inert unless a corrupted timestamp says otherwise.
    const std::int64_t by_seq = last_v_ + 1;  // 0 until the first probe
    const std::int64_t by_time =
        origin_known_ ? expected_in(origin_ - 1, now) : 0;
    const std::int64_t naive = std::min(by_seq, by_time);
    if (naive > cum_expected_hwm_) cum_expected_hwm_ = naive;
    return cum_expected_hwm_;
  }
  std::int64_t cum_received() const {
    // Deliberately NOT clamped against cum_expected: a poller reads ok and
    // all at slightly different effective times (ok now, all behind the
    // in-flight guard), so ok may transiently exceed all by the few probes
    // on the wire. That offset is identical at both ends of a sliding
    // window and cancels out of any windowed rate; a clamp instead would
    // couple this counter to when cum_expected() was last *evaluated*,
    // making ok-deltas go negative right after all-deltas jump — which
    // reads as phantom loss.
    return received_;
  }

  std::int64_t received() const { return received_; }
  std::int64_t duplicates() const { return duplicates_; }
  bool schedule_known() const { return origin_known_; }
  SimTime origin() const { return origin_; }
  const EstimatorConfig& config() const { return cfg_; }
  std::int64_t window_slots() const {
    return static_cast<std::int64_t>(slots_.size());
  }

 private:
  struct Slot {
    std::int64_t virt = 0;   // unwrapped sequence number
    SimTime sent_at = 0;
    bool valid = false;
  };

  /// Emission ticks with origin + k * period in (after, upto], k >= 0.
  std::int64_t expected_in(SimTime after, SimTime upto) const {
    if (upto < origin_) return 0;
    const std::int64_t hi = (upto - origin_) / cfg_.period;  // last tick index
    std::int64_t lo = 0;  // first tick index strictly after `after`
    if (after >= origin_) lo = (after - origin_) / cfg_.period + 1;
    return hi >= lo ? hi - lo + 1 : 0;
  }

  EstimatorConfig cfg_;
  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::int64_t last_v_ = -1;          // newest unwrapped seq seen
  std::int64_t received_ = 0;         // distinct probes received (cumulative)
  std::int64_t duplicates_ = 0;
  SimTime last_rx_at_ = -1;
  SimTime origin_ = 0;                // recovered emission schedule origin
  bool origin_known_ = false;
  mutable std::int64_t cum_expected_hwm_ = 0;  // monotone clamp (see above)
};

}  // namespace lgsim::telemetry
