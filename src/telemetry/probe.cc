#include "telemetry/probe.h"

#include <utility>

#include "obs/trace.h"

namespace lgsim::telemetry {

LinkProber::LinkProber(Simulator& sim, const ProberConfig& cfg, SendFn send)
    : sim_(sim),
      cfg_(cfg),
      send_(std::move(send)),
      task_(sim, cfg_.period, [this](SimTime now) { fire(now); }),
      trace_actor_(obs::intern_actor(cfg_.name)) {}

void LinkProber::start() { task_.start(cfg_.period); }

void LinkProber::stop() { task_.stop(); }

void LinkProber::fire(SimTime now) {
  if (stalled_) {
    ++suppressed_;
    return;
  }
  net::Packet p = net::make_control(net::PktKind::kProbe);
  p.frame_bytes = cfg_.frame_bytes;
  p.created_at = now;
  p.probe.valid = true;
  p.probe.seq = next_seq_;
  p.probe.sent_at = now;
  obs::emit(now, obs::Cat::kTelemetry, obs::Kind::kProbeTx, trace_actor_,
            next_seq_);
  ++next_seq_;
  ++sent_;
  send_(std::move(p));
}

}  // namespace lgsim::telemetry
