// LinkProber: periodic emission of sequenced loss probes down one link.
//
// The prober is the sending half of the telemetry pair (estimator.h is the
// receiving half). Every `period` it hands a minimum-size kProbe frame to a
// caller-supplied send function — in the lifecycle harness that is
// `ProtectedLink::send_forward`, so probes ride the same egress queue and
// loss chain as data, are charged wire time, and are corrupted by the same
// BER the data sees. LinkGuardian never protects them (the sender arms
// protection only for kData), so the estimate reflects raw wire loss even
// while LG is masking it for data — exactly the signal corruptd needs to
// keep a link protected.
//
// The prober draws no random numbers and allocates nothing per fire
// (PeriodicTask re-arms through the simulator's pooled events; the Packet is
// a stack value moved into the send function). `set_stalled(true)` models a
// wedged probe engine: the timer keeps firing but nothing is emitted and the
// sequence number freezes, which is the sender-side failure the estimator's
// monotone counters must absorb (FaultKind::kProbeStall*).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::telemetry {

struct ProberConfig {
  /// Emission period. The default costs 64 B + 20 B overhead every 10 us:
  /// ~0.27% of a 25 Gbps link — cheap enough to always leave on, frequent
  /// enough that a 1e-3 BER step is detected within a few hundred us.
  SimTime period = usec(10);
  std::int32_t frame_bytes = kMinFrameSize;
  std::string name = "probe0";
};

class LinkProber {
 public:
  using SendFn = std::function<void(net::Packet&&)>;

  LinkProber(Simulator& sim, const ProberConfig& cfg, SendFn send);

  /// Begin emitting. The first probe goes out after one full period (not at
  /// start time), so an estimator attached at t=0 sees seq 0 at t=period.
  void start();
  void stop();

  /// Fault hook: while stalled the timer still fires but no probe is
  /// emitted and seq does not advance.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }

  std::int64_t sent() const { return sent_; }
  std::int64_t suppressed() const { return suppressed_; }
  const ProberConfig& config() const { return cfg_; }

 private:
  void fire(SimTime now);

  Simulator& sim_;
  ProberConfig cfg_;
  SendFn send_;
  PeriodicTask task_;
  std::uint16_t next_seq_ = 0;
  std::int64_t sent_ = 0;
  std::int64_t suppressed_ = 0;  // fires swallowed while stalled
  bool stalled_ = false;
  std::uint32_t trace_actor_ = 0;
};

}  // namespace lgsim::telemetry
