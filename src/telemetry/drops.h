// Switch drop-counter aggregation: the second telemetry signal besides
// probes. The PR 2 queue-conservation counters already attribute every
// frame a port accepts (enq == deq + in-fifo, tail drops counted
// separately), so summing them across a port separates the two loss causes
// corruptd must not conflate:
//
//   * congestion_drops  — tail drops at egress (enqueue refused). These are
//     congestion, not corruption; activating LinkGuardian on them would be a
//     false positive.
//   * wire_corrupted    — frames the serializer sent but the peer MAC
//     discarded (the loss model fired). This is the corruption signal.
//
// Pure reads over counters the datapath maintains anyway: aggregation draws
// no RNG, allocates nothing, and can run on any polling cadence.
#pragma once

#include <cstdint>

#include "net/port.h"

namespace lgsim::telemetry {

struct DropReport {
  std::int64_t congestion_drops = 0;  // egress tail drops, all queues
  std::int64_t wire_corrupted = 0;    // sent but lost on the wire
  std::int64_t delivered = 0;         // sent and accepted by the peer
  std::int64_t enq_frames = 0;        // accepted into any egress fifo
  std::int64_t deq_frames = 0;        // handed to the serializer

  /// Frames accepted by a fifo but not yet dequeued (still queued).
  std::int64_t in_flight() const { return enq_frames - deq_frames; }
  /// Wire loss fraction among frames actually transmitted; 0 if none sent.
  double wire_loss_rate() const {
    const std::int64_t all = wire_corrupted + delivered;
    return all > 0 ? static_cast<double>(wire_corrupted) / all : 0.0;
  }
};

inline DropReport aggregate_drops(const net::EgressPort& port) {
  DropReport r;
  for (int q = 0; q < port.num_queues(); ++q) {
    const auto& c = port.queue_counters(q);
    r.congestion_drops += c.drop_frames;
    r.enq_frames += c.enq_frames;
    r.deq_frames += c.deq_frames;
  }
  r.wire_corrupted = port.counters().corrupted_frames;
  r.delivered = port.counters().delivered_frames;
  return r;
}

}  // namespace lgsim::telemetry
