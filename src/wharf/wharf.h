// Wharf baseline: link-local frame-level FEC (§4.7, Table 3).
//
// Wharf [Giesen et al., NetCompute'18] protects a link by grouping Ethernet
// frames into blocks of k data frames plus r parity frames. A block whose
// losses do not exceed r is fully recovered; otherwise its corrupted frames
// are lost. The parity frames consume link capacity all the time —
// redundancy is added to every packet regardless of the actual loss rate —
// which Wharf signals by meter-based dropping of traffic beyond k/(k+r) of
// line rate. In the Table 3 reproduction the capacity cost is modelled by
// running the link at capacity_fraction() x line rate, and this module
// supplies the residual (post-FEC) loss process.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"
#include "sim/random.h"
#include "util/units.h"

namespace lgsim::wharf {

struct WharfParams {
  int k = 25;  // data frames per block
  int r = 1;   // parity frames per block

  double capacity_fraction() const {
    return static_cast<double>(k) / static_cast<double>(k + r);
  }
};

/// Best-goodput parameters per corruption loss rate (following Wharf's
/// published sweep: light redundancy suffices up to ~1e-3; 1e-2 needs much
/// more parity).
WharfParams wharf_params_for(double loss_rate);

/// Residual frame-loss probability after FEC: the probability that a given
/// data frame is corrupted and sits in a block with more than r corruptions
/// in total (in which case FEC cannot reconstruct it).
double wharf_residual_loss(const WharfParams& p, double raw_loss);

/// Loss process of a Wharf-protected link. Exact block semantics for i.i.d.
/// raw processes: each block of k+r frame outcomes is rolled up front; if
/// the block has more than r corruptions, every corrupted data frame in it
/// is lost, otherwise all are recovered.
class WharfLossModel final : public net::LossModel {
 public:
  WharfLossModel(WharfParams params, double raw_loss_rate, Rng rng)
      : params_(params), raw_loss_(raw_loss_rate), rng_(rng) {}

  bool lose(SimTime now, const net::Packet& p) override;

  std::int64_t blocks() const { return blocks_; }
  std::int64_t recovered_frames() const { return recovered_; }
  std::int64_t unrecovered_frames() const { return unrecovered_; }

 private:
  void roll_block();

  WharfParams params_;
  double raw_loss_;
  Rng rng_;
  std::vector<bool> outcomes_;  // corruption outcome per frame of the block
  int pos_ = 0;                 // next data-frame slot in the block
  bool block_recoverable_ = true;
  std::int64_t blocks_ = 0;
  std::int64_t recovered_ = 0;
  std::int64_t unrecovered_ = 0;
};

}  // namespace lgsim::wharf
