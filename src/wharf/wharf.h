// Wharf baseline: link-local frame-level FEC (§4.7, Table 3).
//
// Wharf [Giesen et al., NetCompute'18] protects a link by grouping Ethernet
// frames into blocks of k data frames plus r parity frames. A block whose
// losses do not exceed r is fully recovered; otherwise its corrupted frames
// are lost. The parity frames consume link capacity all the time —
// redundancy is added to every packet regardless of the actual loss rate —
// which Wharf signals by meter-based dropping of traffic beyond k/(k+r) of
// line rate. In the Table 3 reproduction the capacity cost is modelled by
// running the link at capacity_fraction() x line rate, and this module
// supplies the residual (post-FEC) loss process.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"
#include "net/protection.h"
#include "sim/random.h"
#include "util/units.h"

namespace lgsim::wharf {

struct WharfParams {
  int k = 25;  // data frames per block
  int r = 1;   // parity frames per block

  double capacity_fraction() const {
    return static_cast<double>(k) / static_cast<double>(k + r);
  }
};

/// Best-goodput parameters per corruption loss rate (following Wharf's
/// published sweep: light redundancy suffices up to ~1e-3; 1e-2 needs much
/// more parity).
WharfParams wharf_params_for(double loss_rate);

/// Residual frame-loss probability after FEC: the probability that a given
/// data frame is corrupted and sits in a block with more than r corruptions
/// in total (in which case FEC cannot reconstruct it).
double wharf_residual_loss(const WharfParams& p, double raw_loss);

/// Loss process of a Wharf-protected link, wrapped around an arbitrary raw
/// corruption process. Exact block semantics: each block of k+r frame
/// outcomes is rolled up front through the raw process; if the block has
/// more than r corruptions, every corrupted data frame in it is lost,
/// otherwise all are recovered. For an i.i.d. Bernoulli raw process the
/// rolled RNG stream is identical to the seed implementation's inline
/// Bernoulli draws (pinned by wharf_test's differential); for a bursty
/// (Gilbert-Elliott) process the block pre-roll places a whole burst inside
/// one block — the worst case for FEC, which is exactly what block codes
/// are bad at.
class WharfLossModel final : public net::LossModel {
 public:
  WharfLossModel(WharfParams params, std::unique_ptr<net::DrivableLoss> raw)
      : params_(params), raw_(std::move(raw)) {}
  /// i.i.d. convenience constructor (the seed interface).
  WharfLossModel(WharfParams params, double raw_loss_rate, Rng rng)
      : WharfLossModel(params,
                       std::make_unique<net::BernoulliLoss>(raw_loss_rate, rng)) {}

  bool lose(SimTime now, const net::Packet& p) override;

  net::DrivableLoss* raw() { return raw_.get(); }

  std::int64_t blocks() const { return blocks_; }
  std::int64_t recovered_frames() const { return recovered_; }
  std::int64_t unrecovered_frames() const { return unrecovered_; }

 private:
  void roll_block(SimTime now, const net::Packet& p);

  WharfParams params_;
  std::unique_ptr<net::DrivableLoss> raw_;
  std::vector<bool> outcomes_;  // corruption outcome per frame of the block
  int pos_ = 0;                 // next data-frame slot in the block
  bool block_recoverable_ = true;
  std::int64_t blocks_ = 0;
  std::int64_t recovered_ = 0;
  std::int64_t unrecovered_ = 0;
};

/// Wharf as a pluggable protection scheme: the parity tax is a reduced-rate
/// link (capacity_fraction of line rate, paid at every loss rate — Wharf
/// meters traffic beyond k/(k+r) of line rate whether or not the fiber is
/// corrupting), the residual process is the block model above, delivery is
/// in order (FEC reconstructs in place) with no added per-frame latency
/// modelled (decode happens within the receiving switch's pipeline).
class WharfScheme final : public net::ProtectionScheme {
 public:
  const char* name() const override { return "wharf"; }

  double capacity_fraction(const net::LossSpec& raw) const override {
    return wharf_params_for(raw.rate).capacity_fraction();
  }

  net::ResidualLoss residual(const net::LossSpec& raw) const override {
    auto model = std::make_unique<WharfLossModel>(wharf_params_for(raw.rate),
                                                  raw.build());
    net::DrivableLoss* handle = model->raw();
    return net::ResidualLoss{std::move(model), handle};
  }
};

}  // namespace lgsim::wharf
