#include "wharf/wharf.h"

#include <cmath>

namespace lgsim::wharf {

WharfParams wharf_params_for(double loss_rate) {
  // The Wharf paper sweeps block geometries per loss rate and reports the
  // best goodput. The published best configurations keep ~96% capacity up to
  // 1e-3 and fall to ~83% at 1e-2 (cf. Table 3's 9.13 and 7.91 Gb/s on 10G).
  if (loss_rate <= 1e-4) return {25, 1};
  if (loss_rate <= 1e-3) return {25, 1};
  return {5, 1};
}

double wharf_residual_loss(const WharfParams& p, double raw_loss) {
  // P(frame lost) = P(frame corrupted) * P(> r corruptions in block | this
  // frame corrupted) = q * P(Binomial(k+r-1, q) >= r).
  const int n = p.k + p.r - 1;
  const double q = raw_loss;
  // P(X >= r) for X ~ Binomial(n, q); r is small, sum the complement.
  double head = 0.0;
  double term = std::pow(1.0 - q, n);  // P(X = 0)
  for (int i = 0; i < p.r; ++i) {
    head += term;
    term *= static_cast<double>(n - i) / static_cast<double>(i + 1) * q /
            (1.0 - q);
  }
  return q * (1.0 - head);
}

void WharfLossModel::roll_block(SimTime now, const net::Packet& p) {
  const int n = params_.k + params_.r;
  outcomes_.assign(n, false);
  int corrupted = 0;
  for (int i = 0; i < n; ++i) {
    outcomes_[i] = raw_->lose(now, p);
    if (outcomes_[i]) ++corrupted;
  }
  block_recoverable_ = corrupted <= params_.r;
  pos_ = 0;
  ++blocks_;
}

bool WharfLossModel::lose(SimTime now, const net::Packet& p) {
  if (pos_ == 0 || pos_ >= params_.k) roll_block(now, p);
  const bool corrupted = outcomes_[pos_];
  ++pos_;
  if (!corrupted) return false;
  if (block_recoverable_) {
    ++recovered_;
    return false;  // FEC reconstructs it at the receiving switch
  }
  ++unrecovered_;
  return true;
}

}  // namespace lgsim::wharf
