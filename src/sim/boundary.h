// Cross-shard boundary channels for the sharded simulation runtime
// (sim/shard.h, DESIGN.md §15).
//
// A BoundaryChannel carries "frames in flight" between two shard Simulators:
// each message is an InlineCallback to execute on the destination shard,
// stamped with its absolute arrival time and a producer-side sequence
// number. The producer is always the source shard's worker thread and the
// consumer the destination shard's worker thread, so the hot path is a
// single-producer/single-consumer ring of monotonically increasing uint32
// indices (wrapping arithmetic, firedancer-style); a full ring falls back to
// a mutex-protected overflow vector rather than blocking the producer
// mid-window.
//
// Sequence numbers are 32-bit on the wire and unwrapped to 64 bits at the
// consumer (bounded in-flight window, same discipline as the LG sequence
// handling), because the canonical cross-shard delivery order — the
// determinism contract of shard.h — sorts on (arrival time, source shard,
// channel seq) and a wrapped 32-bit compare would misorder messages
// straddling the wrap. tests/shard_test.cc pins both wraparounds.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/event.h"
#include "util/units.h"

namespace lgsim::sim {

/// One message crossing a shard boundary.
struct BoundaryMessage {
  SimTime arrival = 0;     // absolute destination-shard execution time
  std::uint32_t seq = 0;   // producer-stamped, wraps; unwrapped at drain
  InlineCallback cb;
};

/// Fixed-capacity single-producer/single-consumer ring. Head and tail are
/// free-running uint32 counters (wrap-safe distance arithmetic); `start`
/// lets tests begin near the wrap. Producer owns tail, consumer owns head.
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity = 1024, std::uint32_t start = 0)
      : head_(start), tail_(start) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;  // power of two for mask indexing
    buf_.resize(cap);
    mask_ = static_cast<std::uint32_t>(cap - 1);
  }

  bool try_push(BoundaryMessage&& m) {
    const std::uint32_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) > mask_) return false;
    buf_[t & mask_] = std::move(m);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(BoundaryMessage& out) {
    const std::uint32_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) return false;
    out = std::move(buf_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<BoundaryMessage> buf_;
  std::uint32_t mask_ = 0;
  alignas(64) std::atomic<std::uint32_t> head_;
  alignas(64) std::atomic<std::uint32_t> tail_;
};

/// Directed shard-to-shard channel: SPSC ring + overflow fallback +
/// producer-side sequence stamping + consumer-side 64-bit unwrap.
class BoundaryChannel {
 public:
  /// `min_latency` is the conservative lookahead of this edge: every post
  /// must arrive at least that far after the producer's current time.
  /// `seq_start` begins the (wrapping) sequence space there — tests start
  /// near UINT32_MAX to cover the wrap.
  explicit BoundaryChannel(SimTime min_latency, std::size_t capacity = 1024,
                           std::uint32_t seq_start = 0)
      : min_latency_(min_latency),
        ring_(capacity, seq_start),
        next_seq_(seq_start),
        next_seq64_(seq_start) {}

  SimTime min_latency() const { return min_latency_; }

  /// Producer side (source shard's worker only). `send_time` is the
  /// producer's clock at post time; posting with arrival < send + lookahead
  /// would break the windowed sync safety argument, so it aborts loudly
  /// instead of corrupting determinism.
  template <typename F>
  void post(SimTime send_time, SimTime arrival, F&& fn) {
    if (arrival < send_time + min_latency_) {
      std::fprintf(stderr,
                   "BoundaryChannel: arrival %lld violates lookahead "
                   "(send %lld + latency %lld)\n",
                   static_cast<long long>(arrival),
                   static_cast<long long>(send_time),
                   static_cast<long long>(min_latency_));
      std::abort();
    }
    BoundaryMessage m;
    m.arrival = arrival;
    m.seq = next_seq_++;
    m.cb.emplace(std::forward<F>(fn));
    ++pushed_;
    if (!ring_.try_push(std::move(m))) {
      ++overflowed_;
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_.push_back(std::move(m));
    }
  }

  /// Consumer side (destination shard's worker only). Drains every message
  /// currently published — ring first, then the overflow spill — and hands
  /// each to `fn(BoundaryMessage&&, seq64)`. seq64 is the unwrapped 64-bit
  /// sequence: messages may surface ring/overflow-interleaved, but the
  /// in-flight window is far below 2^31, so the signed distance from the
  /// highest sequence seen reconstructs the true posting index exactly.
  template <typename Fn>
  void drain(Fn&& fn) {
    BoundaryMessage m;
    while (ring_.try_pop(m)) fn(std::move(m), unwrap(m.seq));
    if (overflowed_.load(std::memory_order_relaxed) > drained_overflow_) {
      std::vector<BoundaryMessage> spill;
      {
        std::lock_guard<std::mutex> lock(overflow_mu_);
        spill.swap(overflow_);
      }
      drained_overflow_ += static_cast<std::uint64_t>(spill.size());
      for (BoundaryMessage& s : spill) fn(std::move(s), unwrap(s.seq));
    }
  }

  /// Producer-side stats; stable once the producer has quiesced.
  std::uint64_t pushed() const { return pushed_; }
  std::uint64_t overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t unwrap(std::uint32_t seq) {
    const auto delta = static_cast<std::int64_t>(
        static_cast<std::int32_t>(seq - static_cast<std::uint32_t>(next_seq64_)));
    const std::uint64_t seq64 =
        next_seq64_ + static_cast<std::uint64_t>(delta);
    if (delta >= 0) next_seq64_ = seq64 + 1;
    return seq64;
  }

  SimTime min_latency_;
  SpscRing ring_;
  // Producer-owned.
  std::uint32_t next_seq_;
  std::uint64_t pushed_ = 0;
  // Shared overflow spill (rare path).
  std::mutex overflow_mu_;
  std::vector<BoundaryMessage> overflow_;
  std::atomic<std::uint64_t> overflowed_{0};
  // Consumer-owned.
  std::uint64_t next_seq64_;
  std::uint64_t drained_overflow_ = 0;
};

}  // namespace lgsim::sim
