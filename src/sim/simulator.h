// Discrete-event simulation kernel.
//
// A single-threaded event loop ordered by (time, sequence). The sequence
// number makes scheduling stable: events scheduled earlier at the same
// timestamp run first, which the protocol logic relies on (e.g. a loss
// notification enqueued before an ACK at the same instant is delivered
// first).
//
// Hot-path design (see DESIGN.md "Event kernel"):
//
//   * Callbacks live in slot-indexed event records (`InlineCallback`, 64-byte
//     inline storage, no heap fallback), recycled through a freelist. The
//     scheduling fast path is one placement-construction into a recycled
//     slot; the steady state allocates nothing.
//   * The ready queue is two sorted lanes of 24-byte POD entries
//     {time, seq, id}. Events scheduled in ascending (time, seq) order — the
//     dominant pattern: FIFO batches, timer chains, port serialization —
//     append to a monotone ring lane and pop from its front in O(1), never
//     touching the heap. Only out-of-order arrivals go to the owned 4-ary
//     heap. Pop takes the smaller of the two lane heads, so the global
//     (time, seq) order is exactly that of a single priority queue. Sifts
//     move PODs (memcpy), never callables, and pop moves the top out
//     directly — no `const_cast` dance against `std::priority_queue`'s
//     const `top()`.
//   * Cancellation is O(1): an `EventId` encodes {slot, generation}; cancel
//     destroys the callback immediately and bumps the slot generation, so
//     the stale heap entry is recognized (generation mismatch) and skipped
//     when it surfaces. Ids are never logically reused: a recycled slot gets
//     a fresh generation, so a stale id can never match a later event.
//
// Counter semantics are kept bit-compatible with the original lazy-deletion
// kernel (these counters are exported into trace goldens): `cancel_backlog`
// grows by one per cancel request and shrinks when the cancelled entry pops
// out of the heap, so a stale cancel (the event already fired) inflates the
// backlog forever, exactly as the old remembered-id list did; and
// `cancelled_skipped` counts entries discarded at pop time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/event.h"
#include "util/ring.h"
#include "util/units.h"

namespace lgsim {

class Simulator {
 public:
  using Callback = sim::InlineCallback;

  /// Opaque handle for cancellation. Zero is "no event". Encodes
  /// {generation:40, slot:24}; generations start at 1 so a valid id is never
  /// zero, and a slot's generation skips the all-zero pattern on wraparound.
  using EventId = std::uint64_t;

  /// Event-loop internals surfaced for observability (obs::MetricsRegistry).
  /// `cancelled_skipped` counts events actually discarded at pop time, which
  /// can lag `cancel_requests`; the difference that never drains is the
  /// backlog of cancels whose events already fired.
  struct Counters {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancel_requests = 0;
    std::uint64_t cancelled_skipped = 0;
    std::uint64_t peak_heap_depth = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (must be >= now()). The
  /// callable is constructed directly into a recycled event slot; it must
  /// fit InlineCallback's inline buffer (compile-time enforced).
  template <typename F>
  EventId schedule_at(SimTime t, F&& cb) {
    std::uint32_t s;
    if (!free_slots_.empty()) {
      s = free_slots_.back();
      free_slots_.pop_back();
    } else {
      s = slot_count_++;
      if (s > kSlotMask) slot_overflow();
      if ((s & kChunkMask) == 0)
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    Slot& slot = slot_ref(s);
    slot.cb.emplace(std::forward<F>(cb));
    const EventId id = make_id(s, slot.gen);
    const Entry e{t, seq_++, id};
    // Monotone fast lane: an event not before the lane's tail extends the
    // sorted run in O(1); only out-of-order arrivals pay the heap sift.
    if (run_.empty() || !before(e, run_.back()))
      run_.push_back(e);
    else
      heap_push(e);
    ++pending_;
    ++counters_.scheduled;
    // Peak depth counts both lanes: the same entry set a single priority
    // queue would hold (this counter is exported into trace goldens).
    const std::uint64_t depth = heap_.size() + run_.size();
    if (depth > counters_.peak_heap_depth) counters_.peak_heap_depth = depth;
    return id;
  }

  /// Schedule an already-built callback (the cross-shard delivery path:
  /// sim/shard.h drains `InlineCallback`s out of boundary channels and moves
  /// them straight into an event slot; re-wrapping them in a closure would
  /// overflow the inline buffer). Same counters and ordering as the template.
  EventId schedule_at(SimTime t, Callback&& cb) {
    std::uint32_t s;
    if (!free_slots_.empty()) {
      s = free_slots_.back();
      free_slots_.pop_back();
    } else {
      s = slot_count_++;
      if (s > kSlotMask) slot_overflow();
      if ((s & kChunkMask) == 0)
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    Slot& slot = slot_ref(s);
    slot.cb = std::move(cb);
    const EventId id = make_id(s, slot.gen);
    const Entry e{t, seq_++, id};
    if (run_.empty() || !before(e, run_.back()))
      run_.push_back(e);
    else
      heap_push(e);
    ++pending_;
    ++counters_.scheduled;
    const std::uint64_t depth = heap_.size() + run_.size();
    if (depth > counters_.peak_heap_depth) counters_.peak_heap_depth = depth;
    return id;
  }

  /// Schedule `cb` to run `delay` ns from now.
  template <typename F>
  EventId schedule_in(SimTime delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a previously scheduled event. Safe to call with an id that has
  /// already fired or been cancelled (no-op: a recycled slot carries a fresh
  /// generation, so a stale id can never match a later event). O(1): the
  /// callback is destroyed immediately and the slot recycled; the heap entry
  /// is skipped when it reaches the top.
  ///
  /// Interaction with the (time, sequence) ordering contract: events at the
  /// same timestamp run in schedule order, so a callback can only cancel
  /// same-timestamp events that were scheduled *after* the currently running
  /// one; events scheduled earlier at that timestamp have already fired and
  /// cancelling them is a no-op. See sim_test.cc (Cancel* tests).
  void cancel(EventId id) {
    if (id == 0) return;
    ++counters_.cancel_requests;
    ++cancel_backlog_;
    const std::uint32_t s = slot_of(id);
    if (s < slot_count_) {
      Slot& slot = slot_ref(s);
      if (gen_matches(slot.gen, id)) {
        slot.cb.reset();
        bump_gen(slot);
        free_slots_.push_back(s);
      }
    }
  }

  /// Run until the event queue is empty or `until` is reached (inclusive of
  /// events at exactly `until`). Returns number of events executed.
  std::uint64_t run(SimTime until = INT64_MAX) {
    std::uint64_t executed = 0;
    while (!queue_empty()) {
      if (queue_top().time > until) break;
      const Entry ev = queue_pop();
      --pending_;
      const std::uint32_t s = slot_of(ev.id);
      Slot& slot = slot_ref(s);
      if (!gen_matches(slot.gen, ev.id)) {
        ++counters_.cancelled_skipped;
        --cancel_backlog_;
        continue;
      }
      now_ = ev.time;
      // The chunked arena gives slots stable addresses, so the callback is
      // consumed in place even though it may schedule new events (arena
      // growth adds chunks, never moves them). The generation is bumped
      // *before* invoking so a cancel of the running event's own id from
      // inside the callback is recognized as stale.
      bump_gen(slot);
      slot.cb.consume();
      free_slots_.push_back(s);
      ++executed;
      ++total_executed_;
    }
    // When asked to run "until T", the clock reflects that T was reached even
    // if events remain scheduled beyond it.
    if (now_ < until && until != INT64_MAX) now_ = until;
    return executed;
  }

  /// Execute exactly one event if available. Returns false when idle.
  bool step() {
    while (!queue_empty()) {
      const Entry ev = queue_pop();
      --pending_;
      const std::uint32_t s = slot_of(ev.id);
      Slot& slot = slot_ref(s);
      if (!gen_matches(slot.gen, ev.id)) {
        ++counters_.cancelled_skipped;
        --cancel_backlog_;
        continue;
      }
      now_ = ev.time;
      bump_gen(slot);
      slot.cb.consume();
      free_slots_.push_back(s);
      ++total_executed_;
      return true;
    }
    return false;
  }

  bool idle() const { return pending_ == 0; }
  std::uint64_t total_executed() const { return total_executed_; }

  /// Events currently in the heap (including not-yet-skipped cancellations).
  std::uint64_t pending() const { return pending_; }
  /// Cancel requests whose heap entry has not yet drained. Stale cancels
  /// (the event already fired) never drain, mirroring the original lazy
  /// remembered-id list this counter came from.
  std::size_t cancel_backlog() const { return cancel_backlog_; }

  Counters counters() const {
    Counters c = counters_;
    c.executed = total_executed_;
    return c;
  }

  /// Pushes the event-loop counters into a metrics registry under `prefix`.
  void export_metrics(obs::MetricsRegistry& m,
                      const std::string& prefix = "sim") const {
    const Counters c = counters();
    m.counter(prefix + ".events_scheduled") = static_cast<std::int64_t>(c.scheduled);
    m.counter(prefix + ".events_executed") = static_cast<std::int64_t>(c.executed);
    m.counter(prefix + ".cancel_requests") = static_cast<std::int64_t>(c.cancel_requests);
    m.counter(prefix + ".cancelled_skipped") = static_cast<std::int64_t>(c.cancelled_skipped);
    m.counter(prefix + ".peak_heap_depth") = static_cast<std::int64_t>(c.peak_heap_depth);
    m.counter(prefix + ".cancel_backlog") = static_cast<std::int64_t>(cancel_backlog_);
    m.counter(prefix + ".pending") = static_cast<std::int64_t>(pending_);
  }

 private:
  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (std::uint64_t{1} << 40) - 1;

  static EventId make_id(std::uint32_t slot, std::uint64_t gen) {
    return ((gen & kGenMask) << kSlotBits) | slot;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id) & kSlotMask;
  }
  static bool gen_matches(std::uint64_t slot_gen, EventId id) {
    return (slot_gen & kGenMask) == (id >> kSlotBits);
  }

  /// Slot-indexed event record. `gen` advances each time the slot is retired
  /// (fired or cancelled), invalidating outstanding ids that point at it.
  /// Slots live in fixed-size chunks so their addresses are stable: arena
  /// growth allocates a new chunk and never relocates engaged callbacks.
  struct Slot {
    std::uint64_t gen = 1;
    Callback cb;
  };

  static constexpr int kChunkShift = 9;  // 512 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  Slot& slot_ref(std::uint32_t s) {
    return chunks_[s >> kChunkShift][s & kChunkMask];
  }

  static void bump_gen(Slot& slot) {
    ++slot.gen;
    // Skip the masked all-zero generation: make_id(0, gen) must never
    // produce the reserved "no event" id 0.
    if ((slot.gen & kGenMask) == 0) slot.gen = 1;
  }

  /// 24-byte POD heap entry; the callable stays in its slot.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  bool queue_empty() const { return heap_.empty() && run_.empty(); }

  /// The globally next entry: the smaller of the two sorted lane heads.
  const Entry& queue_top() const {
    if (run_.empty()) return heap_[0];
    if (heap_.empty() || before(run_.front(), heap_[0])) return run_.front();
    return heap_[0];
  }

  Entry queue_pop() {
    if (run_.empty()) return heap_pop();
    if (heap_.empty() || before(run_.front(), heap_[0])) {
      const Entry e = run_.front();
      run_.pop_front();
      return e;
    }
    return heap_pop();
  }

  void heap_push(Entry e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  Entry heap_pop() {
    const Entry top = heap_[0];
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t c0 = 4 * i + 1;
        if (c0 >= n) break;
        std::size_t m = c0;
        const std::size_t end = c0 + 4 < n ? c0 + 4 : n;
        for (std::size_t c = c0 + 1; c < end; ++c)
          if (before(heap_[c], heap_[m])) m = c;
        if (!before(heap_[m], last)) break;
        heap_[i] = heap_[m];
        i = m;
      }
      heap_[i] = last;
    }
    return top;
  }

  [[noreturn]] static void slot_overflow() {
    std::fprintf(stderr,
                 "Simulator: more than %u concurrent events — slot index "
                 "space exhausted\n",
                 kSlotMask + 1);
    std::abort();
  }

  SimTime now_ = 0;
  std::uint64_t seq_ = 1;
  std::uint64_t pending_ = 0;
  std::uint64_t total_executed_ = 0;
  std::size_t cancel_backlog_ = 0;
  util::RingQueue<Entry> run_;  // monotone fast lane (sorted, append-only)
  std::vector<Entry> heap_;     // out-of-order arrivals
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  Counters counters_;
};

/// Re-arming periodic task (used for timer packets, counter polling, meters).
/// The user callback is stored once; each period re-arms by scheduling a
/// two-pointer closure, so a running task allocates nothing per fire.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimTime period, std::function<void(SimTime)> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  /// A task destroyed while armed cancels its fire event: the scheduled
  /// closure captures `this`, so letting it outlive the task is a
  /// use-after-free (the bug AutoFallback used to hit by rebuilding its task
  /// per start()).
  ~PeriodicTask() { sim_.cancel(pending_); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Idempotent: starting an already-running task re-arms it (the previous
  /// pending fire is cancelled) instead of stacking a second fire chain.
  void start(SimTime first_delay = 0) {
    sim_.cancel(pending_);
    pending_ = 0;
    stopped_ = false;
    arm(first_delay);
  }

  void stop() {
    stopped_ = true;
    sim_.cancel(pending_);
    pending_ = 0;
  }

  bool running() const { return !stopped_; }

 private:
  void arm(SimTime delay) {
    pending_ = sim_.schedule_in(delay, [this] { fire(); });
  }

  void fire() {
    // Clear the armed id before running the callback: the event is firing,
    // so a stop() from inside fn_ must not cancel this (already consumed)
    // id — that would leave a stale entry in the cancel backlog forever.
    pending_ = 0;
    if (stopped_) return;
    fn_(sim_.now());
    if (!stopped_) arm(period_);
  }

  Simulator& sim_;
  SimTime period_;
  std::function<void(SimTime)> fn_;
  Simulator::EventId pending_ = 0;
  bool stopped_ = true;
};

}  // namespace lgsim
