// Discrete-event simulation kernel.
//
// A single-threaded event loop over a binary heap keyed by (time, sequence).
// The sequence number makes scheduling stable: events scheduled earlier at the
// same timestamp run first, which the protocol logic relies on (e.g. a loss
// notification enqueued before an ACK at the same instant is delivered first).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/units.h"

namespace lgsim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancellation. Zero is "no event".
  using EventId = std::uint64_t;

  /// Event-loop internals surfaced for observability (obs::MetricsRegistry).
  /// `cancelled_skipped` counts events actually discarded at pop time, which
  /// can lag `cancel_requests` (lazy deletion); the difference that never
  /// drains is the backlog of cancels whose events already fired.
  struct Counters {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancel_requests = 0;
    std::uint64_t cancelled_skipped = 0;
    std::uint64_t peak_heap_depth = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb) {
    const EventId id = next_id_++;
    heap_.push(Event{t, id, std::move(cb)});
    ++pending_;
    ++counters_.scheduled;
    if (heap_.size() > counters_.peak_heap_depth)
      counters_.peak_heap_depth = heap_.size();
    return id;
  }

  /// Schedule `cb` to run `delay` ns from now.
  EventId schedule_in(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a previously scheduled event. Safe to call with an id that has
  /// already fired or been cancelled (no-op: ids are never reused, so a stale
  /// id can never match a later event). O(1): lazy deletion — the id is
  /// remembered and the event skipped when it reaches the top of the heap.
  ///
  /// Interaction with the (time, sequence) ordering contract: events at the
  /// same timestamp run in schedule order, so a callback can only cancel
  /// same-timestamp events that were scheduled *after* the currently running
  /// one; events scheduled earlier at that timestamp have already fired and
  /// cancelling them is a no-op. See sim_test.cc (Cancel* tests).
  void cancel(EventId id) {
    if (id != 0) {
      cancelled_.push_back(id);
      ++counters_.cancel_requests;
    }
  }

  /// Run until the event queue is empty or `until` is reached (inclusive of
  /// events at exactly `until`). Returns number of events executed.
  std::uint64_t run(SimTime until = INT64_MAX) {
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
      if (heap_.top().time > until) break;
      Event ev = pop_top();
      if (is_cancelled(ev.id)) continue;
      now_ = ev.time;
      ev.cb();
      ++executed;
      ++total_executed_;
    }
    // When asked to run "until T", the clock reflects that T was reached even
    // if events remain scheduled beyond it.
    if (now_ < until && until != INT64_MAX) now_ = until;
    return executed;
  }

  /// Execute exactly one event if available. Returns false when idle.
  bool step() {
    while (!heap_.empty()) {
      Event ev = pop_top();
      if (is_cancelled(ev.id)) continue;
      now_ = ev.time;
      ev.cb();
      ++total_executed_;
      return true;
    }
    return false;
  }

  bool idle() const { return pending_ == 0; }
  std::uint64_t total_executed() const { return total_executed_; }

  /// Events currently in the heap (including not-yet-skipped cancellations).
  std::uint64_t pending() const { return pending_; }
  /// Cancelled ids waiting for their event to reach the top of the heap.
  std::size_t cancel_backlog() const { return cancelled_.size(); }

  Counters counters() const {
    Counters c = counters_;
    c.executed = total_executed_;
    return c;
  }

  /// Pushes the event-loop counters into a metrics registry under `prefix`.
  void export_metrics(obs::MetricsRegistry& m,
                      const std::string& prefix = "sim") const {
    const Counters c = counters();
    m.counter(prefix + ".events_scheduled") = static_cast<std::int64_t>(c.scheduled);
    m.counter(prefix + ".events_executed") = static_cast<std::int64_t>(c.executed);
    m.counter(prefix + ".cancel_requests") = static_cast<std::int64_t>(c.cancel_requests);
    m.counter(prefix + ".cancelled_skipped") = static_cast<std::int64_t>(c.cancelled_skipped);
    m.counter(prefix + ".peak_heap_depth") = static_cast<std::int64_t>(c.peak_heap_depth);
    m.counter(prefix + ".cancel_backlog") = static_cast<std::int64_t>(cancelled_.size());
    m.counter(prefix + ".pending") = static_cast<std::int64_t>(pending_);
  }

 private:
  struct Event {
    SimTime time;
    EventId id;
    Callback cb;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  Event pop_top() {
    // priority_queue::top() is const; move out via const_cast on the known
    // mutable container (standard pattern; the element is removed right after).
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    --pending_;
    return ev;
  }

  bool is_cancelled(EventId id) {
    for (std::size_t i = 0; i < cancelled_.size(); ++i) {
      if (cancelled_[i] == id) {
        cancelled_[i] = cancelled_.back();
        cancelled_.pop_back();
        ++counters_.cancelled_skipped;
        return true;
      }
    }
    return false;
  }

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t pending_ = 0;
  std::uint64_t total_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<EventId> cancelled_;
  Counters counters_;
};

/// Re-arming periodic task (used for timer packets, counter polling, meters).
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimTime period, std::function<void(SimTime)> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}

  void start(SimTime first_delay = 0) {
    stopped_ = false;
    arm(first_delay);
  }

  void stop() {
    stopped_ = true;
    sim_.cancel(pending_);
    pending_ = 0;
  }

  bool running() const { return !stopped_; }

 private:
  void arm(SimTime delay) {
    pending_ = sim_.schedule_in(delay, [this] {
      if (stopped_) return;
      fn_(sim_.now());
      if (!stopped_) arm(period_);
    });
  }

  Simulator& sim_;
  SimTime period_;
  std::function<void(SimTime)> fn_;
  Simulator::EventId pending_ = 0;
  bool stopped_ = true;
};

}  // namespace lgsim
