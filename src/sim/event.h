// Allocation-free callable storage for the event kernel's hot path.
//
// `InlineCallback` is a move-only type-erased callable with a fixed inline
// buffer and **no heap fallback**: a closure that does not fit is a compile
// error, not a silent allocation. This is the contract that keeps the packet
// datapath at zero steady-state allocations — the port/pipeline/LG closures
// capture a pooled `Packet*` (see net/packet_pool.h) plus an owner pointer,
// never the ~200-byte `Packet` by value, so everything the kernel stores per
// event is a handful of pointers.
//
// Type erasure is a static three-entry vtable per callable type:
//   relocate  — destructive move (move-construct into dst, destroy src);
//               used when an event record leaves its slot for invocation and
//               when the slot arena grows.
//   consume   — invoke then destroy in place; the kernel calls a callback
//               exactly once, so invoke and destroy fuse into one indirect
//               call instead of two.
//   destroy   — plain destructor; used for cancellation and teardown.
//
// Compare with `std::function<void()>`: no allocation for large captures (we
// forbid them instead), no copyability machinery, and — because the 4-ary
// heap stores 24-byte POD entries rather than the callable — zero indirect
// calls during heap sifts (std::function paid one manager call per level).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lgsim::sim {

class InlineCallback {
 public:
  /// Inline storage budget. Sized for the repo's biggest kernel closures
  /// (an owner `this` + pooled `Packet*` + a few words of bookkeeping) with
  /// room to spare for harness lambdas that capture a `std::function` copy.
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Construct the callable in place (the scheduling fast path: one placement
  /// construction directly into the event slot, no intermediate moves).
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "closure too large for InlineCallback's inline buffer: "
                  "capture a pooled Packet* (net::PacketPool) instead of a "
                  "Packet by value");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "closure over-aligned for InlineCallback storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callbacks must be nothrow-movable (slot arena and "
                  "heap relocation)");
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &kOpsFor<Fn>;
  }

  /// Invoke exactly once, destroying the callable. Disengages *this.
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->consume(buf_);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*relocate)(void* dst, void* src);
    void (*consume)(void* obj);
    void (*destroy)(void* obj);
  };

  template <typename Fn>
  static constexpr Ops kOpsFor = {
      // relocate: destructive move. For trivially copyable captures (the
      // packet path: plain pointers) the compiler lowers this to a memcpy.
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* obj) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(obj));
        (*f)();
        f->~Fn();
      },
      [](void* obj) { std::launder(reinterpret_cast<Fn*>(obj))->~Fn(); },
  };

  void steal(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    other.ops_ = nullptr;
    if (ops_ != nullptr) ops_->relocate(buf_, other.buf_);
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace lgsim::sim
