// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256++ directly rather than relying on std::mt19937 so
// that (a) results are reproducible across standard libraries, and (b) the
// generator is cheap enough to sit on the per-packet fast path of the loss
// models.
#pragma once

#include <cmath>
#include <cstdint>

namespace lgsim {

/// xoshiro256++ with SplitMix64 seeding. Not cryptographic; plenty for
/// simulation (passes BigCrush per its authors).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    const __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential with the given mean (= 1/lambda).
  double exponential(double mean) {
    double u = uniform();
    // uniform() can return exactly 0; log(0) is -inf, so nudge it.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Weibull(shape, scale) via inverse transform. shape==1 degenerates to
  /// exponential(scale) — the model used for link failures in Appendix D.
  double weibull(double shape, double scale) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

  /// Derive an independent child generator (for per-link / per-flow streams).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace lgsim
