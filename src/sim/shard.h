// Sharded simulation runtime: one simulation, many cores (DESIGN.md §15).
//
// Partitions a simulation into K independent `Simulator` instances (shards)
// that exchange work only through sim/boundary.h channels, and advances them
// under conservative time-window synchronization — the classic
// null-message/LBTS discipline specialized to a fixed lookahead:
//
//   * Every channel guarantees a minimum latency >= the global window W
//     (for a fabric, the minimum inter-shard link propagation latency), so a
//     message posted during window m (send time >= T_m = m*W, arrival >=
//     send + W) can only land in window m+1 or later.
//   * Shard k may therefore execute window m as soon as every in-neighbor
//     has *finished* window m-1 — at that point all messages that can land
//     in [T_m, T_{m+1}) are already published. Progression is barrier-free:
//     each shard publishes a per-shard window counter (release) and gates on
//     its in-neighbors' counters (acquire); unrelated shards never wait for
//     each other, and a shard with no in-edges free-runs to the horizon.
//
// Determinism is the contract that makes sharding usable as a drop-in
// replacement for a single Simulator: before a shard executes a window, all
// drained messages schedulable in it are inserted in the canonical
// (arrival time, source shard, channel seq) order, so each shard's event
// execution is a pure function of the configuration — independent of worker
// count, shard-to-worker placement, and OS scheduling. A K-shard run is
// byte-identical to the K=1 reference, which tests/shard_test.cc and the
// traffic engine's shard-identity tests pin.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "sim/boundary.h"
#include "sim/simulator.h"
#include "util/cores.h"
#include "util/units.h"

namespace lgsim::sim {

/// Aggregate runtime counters, summed over shards in shard order.
struct ShardStats {
  std::uint64_t windows_executed = 0;
  std::uint64_t messages_posted = 0;
  std::uint64_t messages_delivered = 0;  // scheduled into a destination shard
  std::uint64_t channel_overflows = 0;
};

class ShardedSimulator {
 public:
  /// `window` is the synchronization quantum W; every connect() latency must
  /// be >= W. K == 1 degenerates to a plain Simulator (no channels, no
  /// windows), which is the golden reference path.
  ShardedSimulator(std::int32_t n_shards, SimTime window)
      : window_(window > 0 ? window : 1) {
    if (n_shards < 1) n_shards = 1;
    shards_.reserve(static_cast<std::size_t>(n_shards));
    for (std::int32_t k = 0; k < n_shards; ++k)
      shards_.push_back(std::make_unique<Shard>());
    channels_.resize(static_cast<std::size_t>(n_shards) *
                     static_cast<std::size_t>(n_shards));
  }

  std::int32_t n_shards() const {
    return static_cast<std::int32_t>(shards_.size());
  }
  SimTime window() const { return window_; }
  Simulator& shard(std::int32_t k) { return shards_[idx(k)]->sim; }

  /// Declares the directed edge src -> dst. Must be called before run();
  /// self-edges are meaningless (a shard posts to itself by scheduling) and
  /// rejected. `seq_start` starts the channel's wrapping sequence space
  /// (tests begin near UINT32_MAX to pin the wrap).
  BoundaryChannel& connect(std::int32_t src, std::int32_t dst,
                           SimTime min_latency, std::size_t capacity = 1024,
                           std::uint32_t seq_start = 0) {
    if (src == dst || min_latency < window_) {
      std::fprintf(stderr,
                   "ShardedSimulator::connect: bad edge %d->%d "
                   "(latency %lld, window %lld)\n",
                   src, dst, static_cast<long long>(min_latency),
                   static_cast<long long>(window_));
      std::abort();
    }
    auto& slot = channels_[idx(src) * shards_.size() + idx(dst)];
    if (!slot) {
      slot = std::make_unique<BoundaryChannel>(min_latency, capacity,
                                               seq_start);
      Shard& d = *shards_[idx(dst)];
      d.in.push_back({src, slot.get()});
      std::sort(d.in.begin(), d.in.end(),
                [](const InEdge& a, const InEdge& b) { return a.src < b.src; });
    }
    return *slot;
  }

  /// Convenience: all ordered pairs with one latency.
  void connect_all(SimTime min_latency, std::size_t capacity = 1024) {
    for (std::int32_t s = 0; s < n_shards(); ++s)
      for (std::int32_t d = 0; d < n_shards(); ++d)
        if (s != d) connect(s, d, min_latency, capacity);
  }

  /// Posts `fn` to run on shard `dst` at absolute time `arrival`. Must be
  /// called from src's execution context (its events, or before run()).
  template <typename F>
  void post(std::int32_t src, std::int32_t dst, SimTime arrival, F&& fn) {
    BoundaryChannel* ch =
        channels_[idx(src) * shards_.size() + idx(dst)].get();
    if (ch == nullptr) {
      std::fprintf(stderr, "ShardedSimulator::post: no channel %d->%d\n", src,
                   dst);
      std::abort();
    }
    ch->post(shards_[idx(src)]->sim.now(), arrival, std::forward<F>(fn));
    ++shards_[idx(src)]->posted;
  }

  /// Optional per-shard trace sink: installed (SinkScope) around every
  /// window the shard executes, so probes fired by shard events land in
  /// their shard's sink. The caller owns the sinks and merges them in shard
  /// order (obs::TraceSink::absorb) — the deterministic merge order.
  void set_shard_sink(std::int32_t k, obs::TraceSink* sink) {
    shards_[idx(k)]->sink = sink;
  }

  /// Advances every shard through time `until` (inclusive, like
  /// Simulator::run). `workers` == 0 sizes the pool from the shared core
  /// budget (util/cores.h); any worker count produces identical results.
  void run(SimTime until, unsigned workers = 0) {
    if (until < 0) until = 0;
    if (workers == 0)
      workers = cores_available(static_cast<unsigned>(shards_.size()));
    workers = std::min<unsigned>(
        workers, static_cast<unsigned>(shards_.size()));
    const std::int64_t last_window = until / window_;

    auto worker_fn = [&](std::size_t first, std::size_t last) {
      unsigned idle_passes = 0;
      for (;;) {
        bool progressed = false;
        bool all_done = true;
        for (std::size_t k = first; k < last; ++k) {
          Shard& sh = *shards_[k];
          while (sh.done.load(std::memory_order_relaxed) < last_window &&
                 gate_open(sh)) {
            execute_window(sh, until);
            progressed = true;
          }
          if (sh.done.load(std::memory_order_relaxed) < last_window)
            all_done = false;
        }
        if (all_done) return;
        if (!progressed) {
          // An in-neighbor owned by another worker is behind; yield rather
          // than burn the core it may need.
          if (++idle_passes > 16) std::this_thread::yield();
        } else {
          idle_passes = 0;
        }
      }
    };

    if (workers <= 1) {
      worker_fn(0, shards_.size());
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers - 1);
      const std::size_t n = shards_.size();
      for (unsigned w = 1; w < workers; ++w)
        pool.emplace_back(worker_fn, n * w / workers, n * (w + 1) / workers);
      worker_fn(0, n / workers);
      for (auto& t : pool) t.join();
    }
  }

  ShardStats stats() const {
    ShardStats s;
    for (const auto& sh : shards_) {
      s.windows_executed += sh->windows;
      s.messages_posted += sh->posted;
      s.messages_delivered += sh->delivered;
    }
    for (const auto& ch : channels_)
      if (ch) s.channel_overflows += ch->overflowed();
    return s;
  }

 private:
  struct InEdge {
    std::int32_t src;
    BoundaryChannel* ch;
  };

  /// A message staged at the destination: drained from its channel but not
  /// yet schedulable (arrival beyond the current window). Min-heap on the
  /// canonical (arrival, src, seq64) delivery key.
  struct Staged {
    SimTime arrival;
    std::int32_t src;
    std::uint64_t seq64;
    InlineCallback cb;
  };
  static bool staged_after(const Staged& a, const Staged& b) {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    if (a.src != b.src) return a.src > b.src;
    return a.seq64 > b.seq64;
  }

  struct Shard {
    Simulator sim;
    obs::TraceSink* sink = nullptr;
    std::vector<InEdge> in;
    std::vector<Staged> staging;  // heap via staged_after
    std::atomic<std::int64_t> done{-1};
    std::uint64_t windows = 0;
    std::uint64_t posted = 0;
    std::uint64_t delivered = 0;
  };

  std::size_t idx(std::int32_t k) const {
    if (k < 0 || static_cast<std::size_t>(k) >= shards_.size()) {
      std::fprintf(stderr, "ShardedSimulator: shard %d out of range\n", k);
      std::abort();
    }
    return static_cast<std::size_t>(k);
  }

  /// Window m is safe once every in-neighbor finished window m-1: all
  /// messages that can land in [T_m, T_{m+1}) were posted during neighbor
  /// windows <= m-1 and are published by the neighbor's release store.
  bool gate_open(const Shard& sh) const {
    const std::int64_t next = sh.done.load(std::memory_order_relaxed) + 1;
    for (const InEdge& e : sh.in) {
      if (shards_[idx(e.src)]->done.load(std::memory_order_acquire) <
          next - 1)
        return false;
    }
    return true;
  }

  void execute_window(Shard& sh, SimTime until) {
    const std::int64_t m = sh.done.load(std::memory_order_relaxed) + 1;
    const SimTime w_end = std::min<SimTime>((m + 1) * window_ - 1, until);
    // Drain everything published; messages beyond this window stay staged.
    for (const InEdge& e : sh.in) {
      e.ch->drain([&](BoundaryMessage&& bm, std::uint64_t seq64) {
        sh.staging.push_back(
            Staged{bm.arrival, e.src, seq64, std::move(bm.cb)});
        std::push_heap(sh.staging.begin(), sh.staging.end(), staged_after);
      });
    }
    // Canonical delivery: pop in (arrival, src, seq) order, schedule before
    // the window's own events run — deterministic interleaving by the
    // kernel's (time, schedule seq) rule.
    while (!sh.staging.empty() && sh.staging.front().arrival <= w_end) {
      std::pop_heap(sh.staging.begin(), sh.staging.end(), staged_after);
      Staged st = std::move(sh.staging.back());
      sh.staging.pop_back();
      if (st.arrival < sh.sim.now()) {
        std::fprintf(stderr,
                     "ShardedSimulator: late cross-shard delivery at %lld "
                     "(shard clock %lld) — lookahead contract broken\n",
                     static_cast<long long>(st.arrival),
                     static_cast<long long>(sh.sim.now()));
        std::abort();
      }
      sh.sim.schedule_at(st.arrival, std::move(st.cb));
      ++sh.delivered;
    }
    if (sh.sink != nullptr) {
      obs::SinkScope scope(sh.sink);
      sh.sim.run(w_end);
    } else {
      sh.sim.run(w_end);
    }
    ++sh.windows;
    sh.done.store(m, std::memory_order_release);
  }

  SimTime window_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<BoundaryChannel>> channels_;  // src*K + dst
};

/// Deterministic fan-out of `n` independent tasks over the shard worker
/// pool: runs fn(i) for every i in [0, n) on up to `workers` threads via an
/// atomic cursor. Results must go into caller-owned per-index slots, so the
/// worker count affects wall clock only — the shard runtime uses this for
/// packet-level replay groups, and bench_fig08_stress --shards for whole
/// grid cells (single-link workloads have no cross-shard edges to cut).
template <typename Fn>
inline void run_indexed(std::size_t n, unsigned workers, Fn&& fn) {
  if (workers == 0) workers = cores_available(static_cast<unsigned>(n));
  workers = std::min<unsigned>(workers, static_cast<unsigned>(n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) pool.emplace_back(drain);
  drain();
  for (auto& t : pool) t.join();
}

}  // namespace lgsim::sim
