// Throughput-timeline harness (§4.2, Appendix B.3 — Figs. 9 and 21).
//
// One long-running flow crosses the protected link. Corruption starts at
// t_corruption; LinkGuardian is activated at t_lg (what corruptd would do).
// Samples goodput at the receiver, the sender-switch normal-queue depth, the
// LinkGuardian RX reordering buffer, and end-to-end retransmissions — the
// four panels of Fig. 9.
#pragma once

#include <cstdint>

#include "harness/fct.h"  // Transport enum
#include "util/timeseries.h"
#include "util/units.h"

namespace lgsim::harness {

struct TimelineConfig {
  Transport transport = Transport::kDctcp;
  BitRate rate = gbps(25);
  double loss_rate = 1e-3;
  /// Mean burst length of the corruption process. The paper observed that
  /// 25G losses at 1e-3 are *not* i.i.d. (§4.1); bursts wider than the five
  /// reTxReqs registers are what LinkGuardian cannot recover and what makes
  /// the reordering backlog grow when backpressure is off (Fig. 9b).
  double mean_burst = 2.0;
  bool enable_lg = true;
  bool backpressure = true;       // Fig. 9b disables this
  bool preserve_order = true;
  /// Recirculation (reordering) buffer budget. Our recovery model bounds the
  /// unpaused backlog at ~ackNoTimeout x line rate (~23 KB at 25G), tighter
  /// than the testbed, so the overflow demonstration of Fig. 9b uses a
  /// proportionally reduced budget; 0 keeps the paper's 200 KB.
  std::int64_t recirc_budget_bytes = 0;
  /// Backpressure resume threshold override (pause = resume + 2 MTU);
  /// 0 = the Appendix B.1 defaults for the link speed.
  std::int64_t resume_threshold_bytes = 0;
  /// Timeline (compressed relative to the paper's 15 s wall clock; the
  /// dynamics settle within tens of milliseconds).
  SimTime t_corruption = msec(300);
  SimTime t_lg = msec(700);
  SimTime t_end = msec(1200);
  SimTime sample_period = msec(10);
  std::uint64_t seed = 3;
};

struct TimelineResult {
  TimelineConfig cfg;
  TimeSeries goodput_gbps;     // receiver-app delivery rate
  TimeSeries qdepth_bytes;     // sender-switch normal queue
  TimeSeries rx_buffer_bytes;  // LinkGuardian reordering buffer
  TimeSeries e2e_retx;         // cumulative end-to-end retransmissions
  double effective_speed_gbps = 0.0;  // measured separately with raw load
  std::int64_t reorder_drops = 0;     // reordering-buffer overflow drops
  std::int64_t lg_effectively_lost = 0;
  std::int64_t e2e_retx_total = 0;

  double goodput_before() const {
    return goodput_gbps.mean_in(cfg.t_corruption / 2, cfg.t_corruption);
  }
  double goodput_during_loss() const {
    return goodput_gbps.mean_in(cfg.t_corruption + (cfg.t_lg - cfg.t_corruption) / 2,
                                cfg.t_lg);
  }
  double goodput_with_lg() const {
    return goodput_gbps.mean_in(cfg.t_lg + (cfg.t_end - cfg.t_lg) / 2, cfg.t_end);
  }
};

TimelineResult run_timeline(const TimelineConfig& cfg);

}  // namespace lgsim::harness
