#include "harness/stress.h"

#include <cmath>

#include "harness/parallel.h"

namespace lgsim::harness {

StressResult run_stress(const StressConfig& cfg) {
  StressConfig tuned = cfg;
  tuned.lg = lg::tuned_for_rate(cfg.lg, cfg.rate);
  tuned.lg.preserve_order = cfg.lg.preserve_order;
  return run_stress_with_config(tuned);
}

StressResult run_stress_with_config(const StressConfig& cfg) {
  Simulator sim;

  lg::LinkSpec spec;
  spec.rate = cfg.rate;
  spec.name = "stress";
  spec.normal_queue_bytes = 2'000'000;

  lg::LgConfig lgc = cfg.lg;
  lgc.actual_loss_rate = cfg.loss_rate;

  lg::ProtectedLink link(sim, spec, lgc);
  Rng rng(cfg.seed);
  if (cfg.mean_burst <= 1.0) {
    link.set_loss_model(
        std::make_unique<net::BernoulliLoss>(cfg.loss_rate, rng.split()));
  } else {
    link.set_loss_model(std::make_unique<net::GilbertElliottLoss>(
        net::GilbertElliottLoss::for_rate(cfg.loss_rate, cfg.mean_burst),
        rng.split()));
  }

  StressResult res;
  SimTime last_delivery = 0;
  link.set_forward_sink([&](net::Packet&&) {
    ++res.forwarded;
    last_delivery = sim.now();
  });

  if (cfg.enable_lg) link.enable_lg();

  // Inject at exactly line rate (fractional nanosecond pacing), one
  // self-rescheduling event so the heap stays O(1) regardless of run length.
  const double spacing =
      static_cast<double>((cfg.frame_bytes + kEthernetPreamble + kEthernetIfg) * 8) *
      1e9 / static_cast<double>(cfg.rate);
  std::int64_t sent = 0;
  std::function<void()> inject = [&] {
    if (sent >= cfg.packets) return;
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = cfg.frame_bytes;
    p.uid = static_cast<std::uint64_t>(sent);
    link.send_forward(std::move(p));
    ++sent;
    if (sent < cfg.packets) {
      sim.schedule_at(static_cast<SimTime>(spacing * static_cast<double>(sent)),
                      [&] { inject(); });
    }
  };
  sim.schedule_at(0, [&] { inject(); });
  res.offered_pkts = cfg.packets;

  // Periodic buffer sampling (what the control-plane API polls for Fig. 14).
  PeriodicTask sampler(sim, cfg.sample_period, [&](SimTime) {
    res.tx_buffer_bytes.add(static_cast<double>(link.sender().tx_buffer_bytes()));
    res.rx_buffer_bytes.add(static_cast<double>(link.receiver().reorder_buffer_bytes()));
  });
  sampler.start(cfg.sample_period);
  const SimTime horizon =
      static_cast<SimTime>(spacing * static_cast<double>(cfg.packets)) + msec(5);
  sim.schedule_at(horizon, [&] { sampler.stop(); });

  sim.run(horizon + msec(5));

  const auto& ss = link.sender().stats();
  const auto& rs = link.receiver().stats();
  const auto& pc = link.forward_port().counters();

  res.protected_sent = cfg.enable_lg ? ss.protected_sent : cfg.packets;
  res.corrupted_frames = pc.corrupted_frames;
  res.effectively_lost = cfg.enable_lg
                             ? rs.effectively_lost
                             : cfg.packets - res.forwarded;
  res.timeouts = rs.timeouts;
  res.retx_copies_sent = ss.retx_copies_sent;
  res.pauses = rs.pauses_sent;
  res.elapsed = last_delivery;

  // Measured wire loss on original data frames: gaps detected plus tail
  // losses equal reported_lost when LG runs; otherwise use the port counter.
  res.data_frames_lost = cfg.enable_lg ? rs.reported_lost
                                       : pc.corrupted_frames;
  res.actual_loss_rate =
      res.protected_sent > 0
          ? static_cast<double>(res.data_frames_lost) /
                static_cast<double>(res.protected_sent)
          : 0.0;
  res.effective_loss_rate =
      res.protected_sent > 0
          ? static_cast<double>(res.effectively_lost) /
                static_cast<double>(res.protected_sent)
          : 0.0;
  const int n = lgc.n_retx_copies();
  res.analytic_loss_rate = std::pow(cfg.loss_rate, n + 1);

  // Effective link speed: delivered normal frames x their nominal wire size
  // over the elapsed wall time, as a fraction of line rate.
  if (res.elapsed > 0) {
    const double delivered_bits =
        static_cast<double>(res.forwarded) *
        static_cast<double>((cfg.frame_bytes + kEthernetPreamble + kEthernetIfg) * 8);
    res.effective_speed_frac =
        delivered_bits / (to_sec(res.elapsed) * static_cast<double>(cfg.rate));
  }

  // Recirculation overhead: loop traversals per second vs pipe capacity.
  if (res.elapsed > 0) {
    res.recirc_overhead_tx_frac =
        static_cast<double>(ss.recirc_loops) / to_sec(res.elapsed) /
        lgc.pipe_capacity_pps;
    res.recirc_overhead_rx_frac =
        static_cast<double>(rs.recirc_loops) / to_sec(res.elapsed) /
        lgc.pipe_capacity_pps;
  }

  // Move the distribution trackers out.
  res.retx_delay_us = link.receiver().mutable_stats().retx_delay_us;
  return res;
}

namespace {

std::vector<StressResult> run_grid_with(
    const std::vector<StressConfig>& cfgs,
    StressResult (*runner)(const StressConfig&)) {
  ParallelRunner<StressConfig, StressResult> pool(
      [runner](const StressConfig& c) { return runner(c); });
  for (const StressConfig& c : cfgs) pool.add(c.seed, c);
  return pool.run_in_grid_order();
}

}  // namespace

std::vector<StressResult> run_stress_grid(const std::vector<StressConfig>& cfgs) {
  return run_grid_with(cfgs, &run_stress);
}

std::vector<StressResult> run_stress_with_config_grid(
    const std::vector<StressConfig>& cfgs) {
  return run_grid_with(cfgs, &run_stress_with_config);
}

}  // namespace lgsim::harness
