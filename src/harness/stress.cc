#include "harness/stress.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "harness/parallel.h"
#include "obs/trace.h"
#include "sim/shard.h"
#include "util/cores.h"

namespace lgsim::harness {

StressResult run_stress(const StressConfig& cfg) {
  StressConfig tuned = cfg;
  tuned.lg = lg::tuned_for_rate(cfg.lg, cfg.rate);
  tuned.lg.preserve_order = cfg.lg.preserve_order;
  return run_stress_with_config(tuned);
}

StressResult run_stress_with_config(const StressConfig& cfg) {
  Simulator sim;

  lg::LinkSpec spec;
  spec.rate = cfg.rate;
  spec.name = "stress";
  spec.normal_queue_bytes = 2'000'000;

  lg::LgConfig lgc = cfg.lg;
  lgc.actual_loss_rate = cfg.loss_rate;

  lg::ProtectedLink link(sim, spec, lgc);
  Rng rng(cfg.seed);
  if (cfg.mean_burst <= 1.0) {
    link.set_loss_model(
        std::make_unique<net::BernoulliLoss>(cfg.loss_rate, rng.split()));
  } else {
    link.set_loss_model(std::make_unique<net::GilbertElliottLoss>(
        net::GilbertElliottLoss::for_rate(cfg.loss_rate, cfg.mean_burst),
        rng.split()));
  }

  StressResult res;
  SimTime last_delivery = 0;
  link.set_forward_sink([&](net::Packet&&) {
    ++res.forwarded;
    last_delivery = sim.now();
  });

  if (cfg.enable_lg) link.enable_lg();

  // Trace counter series, interned once up front (all ids are 0 when no sink
  // is installed and the emits below are no-ops). The sampler publishes one
  // sample per series per period, spanning every subsystem category so a
  // single stress trace paints the whole picture in Perfetto: event-loop
  // health (sim), LG buffer occupancy (lg), backpressure state (pfc),
  // offered/delivered load (transport), and the control-plane loss estimate
  // a corruptd poll of this port would compute (monitor).
  const bool tracing = obs::current_sink() != nullptr;
  const std::uint32_t tr_heap = obs::intern_actor("sim.pending_events");
  const std::uint32_t tr_exec = obs::intern_actor("sim.events_executed");
  const std::uint32_t tr_txbuf = obs::intern_actor("lg.tx_buffer_bytes");
  const std::uint32_t tr_rxbuf = obs::intern_actor("lg.rx_buffer_bytes");
  const std::uint32_t tr_paused = obs::intern_actor("pfc.backpressured");
  const std::uint32_t tr_offered = obs::intern_actor("transport.offered_frames");
  const std::uint32_t tr_fwd = obs::intern_actor("transport.forwarded_frames");
  const std::uint32_t tr_loss = obs::intern_actor("monitor.wire_loss_ppm");
  const std::uint32_t tr_flow = obs::intern_actor("stress.injector");

  // Inject at exactly line rate (fractional nanosecond pacing), one
  // self-rescheduling event so the heap stays O(1) regardless of run length.
  const double spacing =
      static_cast<double>((cfg.frame_bytes + kEthernetPreamble + kEthernetIfg) * 8) *
      1e9 / static_cast<double>(cfg.rate);
  std::int64_t sent = 0;
  std::function<void()> inject = [&] {
    if (sent >= cfg.packets) return;
    if (sent == 0)
      obs::emit(sim.now(), obs::Cat::kTransport, obs::Kind::kFlowStart,
                tr_flow, cfg.packets * cfg.frame_bytes, cfg.packets);
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = cfg.frame_bytes;
    p.uid = static_cast<std::uint64_t>(sent);
    link.send_forward(std::move(p));
    ++sent;
    if (sent < cfg.packets) {
      sim.schedule_at(static_cast<SimTime>(spacing * static_cast<double>(sent)),
                      [&] { inject(); });
    } else {
      obs::emit(sim.now(), obs::Cat::kTransport, obs::Kind::kFlowEnd, tr_flow,
                sent * cfg.frame_bytes, sent);
    }
  };
  sim.schedule_at(0, [&] { inject(); });
  res.offered_pkts = cfg.packets;

  // Periodic buffer sampling (what the control-plane API polls for Fig. 14).
  PeriodicTask sampler(sim, cfg.sample_period, [&](SimTime now) {
    res.tx_buffer_bytes.add(static_cast<double>(link.sender().tx_buffer_bytes()));
    res.rx_buffer_bytes.add(static_cast<double>(link.receiver().reorder_buffer_bytes()));
    if (tracing) {
      obs::emit_counter(now, obs::Cat::kSim, tr_heap,
                        static_cast<std::int64_t>(sim.pending()));
      obs::emit_counter(now, obs::Cat::kSim, tr_exec,
                        static_cast<std::int64_t>(sim.total_executed()));
      obs::emit_counter(now, obs::Cat::kLg, tr_txbuf,
                        link.sender().tx_buffer_bytes());
      obs::emit_counter(now, obs::Cat::kLg, tr_rxbuf,
                        link.receiver().reorder_buffer_bytes());
      obs::emit_counter(now, obs::Cat::kPfc, tr_paused,
                        link.receiver().backpressured() ? 1 : 0);
      obs::emit_counter(now, obs::Cat::kTransport, tr_offered, sent);
      obs::emit_counter(now, obs::Cat::kTransport, tr_fwd, res.forwarded);
      // What corruptd would estimate from this port's counters (ppm).
      const auto& pc = link.forward_port().counters();
      const std::int64_t all = pc.corrupted_frames + pc.delivered_frames;
      obs::emit_counter(now, obs::Cat::kMonitor, tr_loss,
                        all > 0 ? pc.corrupted_frames * 1'000'000 / all : 0);
    }
  });
  sampler.start(cfg.sample_period);
  const SimTime horizon =
      static_cast<SimTime>(spacing * static_cast<double>(cfg.packets)) + msec(5);
  sim.schedule_at(horizon, [&] { sampler.stop(); });

  sim.run(horizon + msec(5));

  const auto& ss = link.sender().stats();
  const auto& rs = link.receiver().stats();
  const auto& pc = link.forward_port().counters();

  res.protected_sent = cfg.enable_lg ? ss.protected_sent : cfg.packets;
  res.corrupted_frames = pc.corrupted_frames;
  res.effectively_lost = cfg.enable_lg
                             ? rs.effectively_lost
                             : cfg.packets - res.forwarded;
  res.timeouts = rs.timeouts;
  res.retx_copies_sent = ss.retx_copies_sent;
  res.pauses = rs.pauses_sent;
  res.elapsed = last_delivery;

  // Measured wire loss on original data frames: gaps detected plus tail
  // losses equal reported_lost when LG runs; otherwise use the port counter.
  res.data_frames_lost = cfg.enable_lg ? rs.reported_lost
                                       : pc.corrupted_frames;
  res.actual_loss_rate =
      res.protected_sent > 0
          ? static_cast<double>(res.data_frames_lost) /
                static_cast<double>(res.protected_sent)
          : 0.0;
  res.effective_loss_rate =
      res.protected_sent > 0
          ? static_cast<double>(res.effectively_lost) /
                static_cast<double>(res.protected_sent)
          : 0.0;
  const int n = lgc.n_retx_copies();
  res.analytic_loss_rate = std::pow(cfg.loss_rate, n + 1);

  // Effective link speed: delivered normal frames x their nominal wire size
  // over the elapsed wall time, as a fraction of line rate.
  if (res.elapsed > 0) {
    const double delivered_bits =
        static_cast<double>(res.forwarded) *
        static_cast<double>((cfg.frame_bytes + kEthernetPreamble + kEthernetIfg) * 8);
    res.effective_speed_frac =
        delivered_bits / (to_sec(res.elapsed) * static_cast<double>(cfg.rate));
  }

  // Recirculation overhead: loop traversals per second vs pipe capacity.
  if (res.elapsed > 0) {
    res.recirc_overhead_tx_frac =
        static_cast<double>(ss.recirc_loops) / to_sec(res.elapsed) /
        lgc.pipe_capacity_pps;
    res.recirc_overhead_rx_frac =
        static_cast<double>(rs.recirc_loops) / to_sec(res.elapsed) /
        lgc.pipe_capacity_pps;
  }

  // Final metrics snapshot into the run's sink: the components die with this
  // function, so their counters are pushed (not polled) into the registry
  // the per-cell sink keeps alive until export.
  if (obs::TraceSink* sink = obs::current_sink()) {
    obs::MetricsRegistry& m = sink->metrics();
    sim.export_metrics(m);
    link.forward_port().export_metrics(m);
    link.reverse_port().export_metrics(m);
    m.counter("stress.offered_pkts") = res.offered_pkts;
    m.counter("stress.forwarded") = res.forwarded;
    m.counter("stress.corrupted_frames") = res.corrupted_frames;
    m.counter("lg.retx_copies_sent") = ss.retx_copies_sent;
    m.counter("lg.recovered") = rs.recovered;
    m.counter("lg.effectively_lost") = rs.effectively_lost;
    m.counter("lg.timeouts") = rs.timeouts;
    m.counter("lg.pauses_sent") = rs.pauses_sent;
    m.counter("lg.resumes_sent") = rs.resumes_sent;
  }

  // Move the distribution trackers out.
  res.retx_delay_us = link.receiver().mutable_stats().retx_delay_us;
  return res;
}

namespace {

std::vector<StressResult> run_grid_with(
    const std::vector<StressConfig>& cfgs,
    StressResult (*runner)(const StressConfig&)) {
  ParallelRunner<StressConfig, StressResult> pool(
      [runner](const StressConfig& c) { return runner(c); });
  for (const StressConfig& c : cfgs) pool.add(c.seed, c);
  return pool.run_in_grid_order();
}

}  // namespace

std::vector<StressResult> run_stress_grid(const std::vector<StressConfig>& cfgs) {
  return run_grid_with(cfgs, &run_stress);
}

std::vector<StressResult> run_stress_with_config_grid(
    const std::vector<StressConfig>& cfgs) {
  return run_grid_with(cfgs, &run_stress_with_config);
}

std::vector<StressResult> run_stress_grid_sharded(
    const std::vector<StressConfig>& cfgs, std::int32_t n_shards) {
  if (n_shards < 1) n_shards = 1;
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      static_cast<std::size_t>(n_shards), cfgs.size()));
  std::vector<StressResult> out(cfgs.size());

  // Per-cell sinks, pre-created in grid order on this thread before any
  // worker spawns — the TraceCollector contract ParallelRunner follows, so
  // a traced sharded grid exports the same bytes as the unsharded one.
  std::vector<obs::TraceSink*> sinks;
  if (obs::TraceCollector* col = obs::TraceCollector::active()) {
    sinks.reserve(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      sinks.push_back(col->make_sink("cell " + std::to_string(i) + " seed=" +
                                     std::to_string(cfgs[i].seed)));
    }
  }

  CoreLease lease(workers);
  sim::run_indexed(cfgs.size(), workers, [&](std::size_t i) {
    if (!sinks.empty()) {
      obs::SinkScope scope(sinks[i]);
      out[i] = run_stress(cfgs[i]);
    } else {
      out[i] = run_stress(cfgs[i]);
    }
  });
  return out;
}

}  // namespace lgsim::harness
