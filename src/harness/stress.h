// Line-rate stress-test harness (§4.1, §4.6, Appendix B.4).
//
// Drives MTU-sized packets at line rate across one protected link — the
// paper's "stress test" done with the Tofino packet generator — and collects
// every metric the evaluation reports from it:
//   - actual vs effective loss rate and the analytic expectation (Fig. 8)
//   - effective link speed (Fig. 8)
//   - ackNoTimeout occurrences (§4.1 "Timeouts in practice")
//   - TX / RX buffer occupancy percentiles (Fig. 14)
//   - retransmission delay distribution (Fig. 19)
//   - recirculation overhead (Table 4)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lg/link.h"
#include "net/loss_model.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/units.h"

namespace lgsim::harness {

struct StressConfig {
  BitRate rate = gbps(100);
  double loss_rate = 1e-3;
  /// Mean burst length of the Gilbert-Elliott corruption process. 1.0 gives
  /// i.i.d. losses; ~1.1 matches the measured burstiness (Fig. 20).
  double mean_burst = 1.0;
  std::int64_t packets = 2'000'000;
  std::int32_t frame_bytes = 1518;  // MTU frame
  lg::LgConfig lg;
  bool enable_lg = true;
  std::uint64_t seed = 1;
  /// Buffer-occupancy sampling period (Fig. 14).
  SimTime sample_period = usec(10);
};

struct StressResult {
  std::int64_t offered_pkts = 0;
  std::int64_t protected_sent = 0;
  std::int64_t corrupted_frames = 0;      // all frames lost on the wire
  std::int64_t data_frames_lost = 0;      // original data frames lost
  std::int64_t effectively_lost = 0;
  std::int64_t forwarded = 0;
  std::int64_t timeouts = 0;
  std::int64_t retx_copies_sent = 0;
  std::int64_t pauses = 0;
  SimTime elapsed = 0;

  double actual_loss_rate = 0.0;      // measured on the wire
  double effective_loss_rate = 0.0;   // seen by the endpoints
  double analytic_loss_rate = 0.0;    // actual^(N+1), Eq. 1
  double effective_speed_frac = 0.0;  // fraction of line rate (Fig. 8)

  lgsim::PercentileTracker tx_buffer_bytes;
  lgsim::PercentileTracker rx_buffer_bytes;
  lgsim::PercentileTracker retx_delay_us;
  double recirc_overhead_tx_frac = 0.0;  // of pipe capacity (Table 4)
  double recirc_overhead_rx_frac = 0.0;
};

/// Runs one stress-test configuration to completion and reports the metrics.
/// The LinkGuardian parameters are auto-tuned for the link speed per
/// Appendix B.1 (recirculation loop, ackNoTimeout, thresholds).
StressResult run_stress(const StressConfig& cfg);

/// Same, but uses cfg.lg verbatim (no per-rate tuning) — for ablations that
/// sweep the dataplane parameters themselves.
StressResult run_stress_with_config(const StressConfig& cfg);

/// Runs a whole grid of stress configurations, fanned out over
/// LGSIM_BENCH_JOBS workers (see harness/parallel.h). Each replication gets
/// its own Simulator/Rng; results come back in submission order and are
/// byte-identical to calling run_stress serially, for any worker count.
std::vector<StressResult> run_stress_grid(const std::vector<StressConfig>& cfgs);

/// Grid variant of run_stress_with_config (no per-rate tuning).
std::vector<StressResult> run_stress_with_config_grid(
    const std::vector<StressConfig>& cfgs);

/// Runs the grid on the sharded runtime's worker pool (sim::run_indexed)
/// with up to `n_shards` workers instead of LGSIM_BENCH_JOBS. Stress cells
/// are single-link simulations — there are no cross-shard edges to cut — so
/// each cell is one indivisible task; the worker count is leased from the
/// shared core budget (util/cores.h) and, as everywhere, changes wall clock
/// only: results and any exported trace are byte-identical to
/// run_stress_grid.
std::vector<StressResult> run_stress_grid_sharded(
    const std::vector<StressConfig>& cfgs, std::int32_t n_shards);

}  // namespace lgsim::harness
