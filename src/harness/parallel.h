// Thread-pool replication runner for sweep-style experiments.
//
// Every figure/table of the paper is reproduced by running many independent
// simulations — seeds x loss rates x configs. The Simulator itself is
// single-threaded by design (see DESIGN.md); the parallelism lives one layer
// up, at the replication grid: each {seed, config} cell constructs its own
// Simulator/Rng inside the run function, so workers share no mutable state.
//
// Determinism contract: the merged results are byte-identical for any worker
// count (LGSIM_BENCH_JOBS=1 vs =8), because
//   1. each replication's result depends only on its config (no ambient
//      state, no shared RNG draws, no time-of-day),
//   2. workers collect results into per-worker accumulators (no locks, no
//      contention-ordering effects), and
//   3. the accumulators are reduced at join by sorting on
//      (seed, config index) — a total order independent of scheduling.
// tests/parallel_runner_test.cc enforces this differentially, and a
// ThreadSanitizer build of the same test runs in the tier-1 ctest pass.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "harness/run_result.h"
#include "obs/trace.h"
#include "util/cores.h"
#include "util/env.h"

namespace lgsim::harness {

/// Worker count for replication sweeps: LGSIM_BENCH_JOBS if set (strictly
/// positive integer; garbage falls back), else hardware_concurrency.
inline unsigned bench_jobs() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return parse_positive_count(std::getenv("LGSIM_BENCH_JOBS"), hw);
}

/// Runs `fn(items[i], i)` for every item on up to `jobs` worker threads and
/// returns the results in input order. Items are claimed from a shared atomic
/// cursor (dynamic load balancing: replication run times vary by orders of
/// magnitude across loss rates); each worker writes only to its own slice of
/// per-index slots, so no locking is needed and the output order is fixed by
/// construction. The first exception thrown by any item is rethrown after
/// all workers join.
template <typename Item, typename Fn>
auto parallel_map(const std::vector<Item>& items, Fn&& fn,
                  unsigned jobs = bench_jobs())
    -> std::vector<decltype(fn(items[0], std::size_t{0}))> {
  using Result = decltype(fn(items[0], std::size_t{0}));

  std::vector<std::optional<Result>> slots(items.size());
  if (jobs < 1) jobs = 1;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(jobs, items.size()));

  if (workers <= 1) {
    // Serial reference path: identical work, identical order.
    for (std::size_t i = 0; i < items.size(); ++i) slots[i] = fn(items[i], i);
  } else {
    // Lease the worker count so nested pools (sharded cells) size themselves
    // from the remainder of the machine. Serial runs don't lease: a
    // single-worker outer loop leaves the whole budget to its callee.
    CoreLease lease(workers);
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= items.size()) return;
            slots[i] = fn(items[i], i);
          }
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& t : pool) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  std::vector<Result> out;
  out.reserve(items.size());
  for (auto& s : slots) {
    if (s.has_value()) out.push_back(std::move(*s));
  }
  return out;
}

/// Fans a grid of {seed, config} replications out over a pool of workers and
/// merges the per-run results deterministically.
///
/// Usage:
///   ParallelRunner<StressConfig, StressResult> runner(
///       [](const StressConfig& c) { return run_stress(c); });
///   for (...) runner.add(cfg.seed, cfg);
///   auto rows = runner.run();              // sorted on (seed, config index)
///   auto ordered = runner.run_in_grid_order();  // submission order
template <typename Config, typename Value>
class ParallelRunner {
 public:
  using RunFn = std::function<Value(const Config&)>;

  explicit ParallelRunner(RunFn fn, unsigned jobs = bench_jobs())
      : fn_(std::move(fn)), jobs_(jobs < 1 ? 1 : jobs) {}

  /// Adds one replication. Returns its config index (grid position), the
  /// tie-breaker of the merge order.
  std::size_t add(std::uint64_t seed, Config cfg) {
    grid_.push_back(Cell{RunKey{seed, grid_.size()}, std::move(cfg)});
    return grid_.size() - 1;
  }

  std::size_t size() const { return grid_.size(); }
  unsigned jobs() const { return jobs_; }

  /// Runs every cell and returns the merged results sorted on
  /// (seed, config index). Deterministic for any worker count.
  std::vector<RunResult<Value>> run() {
    auto merged = run_cells();
    std::sort(merged.begin(), merged.end(),
              [](const RunResult<Value>& a, const RunResult<Value>& b) {
                return a.key < b.key;
              });
    return merged;
  }

  /// Runs every cell and returns results in submission order — what a serial
  /// `for` loop over the same grid would have produced, for printing rows in
  /// the paper's table order. Equally deterministic: both orders are total
  /// and scheduling-independent.
  std::vector<Value> run_in_grid_order() {
    auto merged = run_cells();
    std::sort(merged.begin(), merged.end(),
              [](const RunResult<Value>& a, const RunResult<Value>& b) {
                return a.key.config_index < b.key.config_index;
              });
    std::vector<Value> out;
    out.reserve(merged.size());
    for (auto& r : merged) out.push_back(std::move(r.value));
    return out;
  }

 private:
  struct Cell {
    RunKey key;
    Config cfg;
  };

  // Per-worker accumulator: collects this worker's finished runs without any
  // synchronization; reduced (concatenated) after join.
  std::vector<RunResult<Value>> run_cells() {
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, grid_.size()));
    std::vector<std::vector<RunResult<Value>>> acc(
        workers > 1 ? workers : 1);

    // Per-cell trace sinks, when a bench installed a TraceCollector. All
    // sinks are allocated here on the main thread, before any worker spawns
    // and in grid-submission order, so the exported trace is byte-identical
    // for any worker count: a cell's ring depends only on its deterministic
    // simulation, and sink order depends only on submission order. Each cell
    // runs under a SinkScope for its own sink (one thread at a time — no
    // synchronization needed); worker threads start with a null thread-local
    // sink, so untraced runs are unaffected.
    std::vector<obs::TraceSink*> sinks;
    if (obs::TraceCollector* col = obs::TraceCollector::active()) {
      sinks.reserve(grid_.size());
      for (const Cell& c : grid_) {
        sinks.push_back(
            col->make_sink("cell " + std::to_string(c.key.config_index) +
                           " seed=" + std::to_string(c.key.seed)));
      }
    }
    auto run_one = [&](std::size_t i) {
      if (!sinks.empty()) {
        obs::SinkScope scope(sinks[i]);
        return fn_(grid_[i].cfg);
      }
      return fn_(grid_[i].cfg);
    };

    if (workers <= 1) {
      acc[0].reserve(grid_.size());
      for (std::size_t i = 0; i < grid_.size(); ++i) {
        acc[0].push_back(RunResult<Value>{grid_[i].key, run_one(i)});
      }
    } else {
      // See parallel_map: leased only on the threaded path so nested sharded
      // cells split the remaining cores instead of oversubscribing.
      CoreLease lease(workers);
      std::atomic<std::size_t> next{0};
      std::vector<std::exception_ptr> errors(workers);
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
          try {
            for (;;) {
              const std::size_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= grid_.size()) return;
              acc[w].push_back(RunResult<Value>{grid_[i].key, run_one(i)});
            }
          } catch (...) {
            errors[w] = std::current_exception();
          }
        });
      }
      for (auto& t : pool) t.join();
      for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }

    std::vector<RunResult<Value>> merged;
    merged.reserve(grid_.size());
    for (auto& a : acc) {
      for (auto& r : a) merged.push_back(std::move(r));
    }
    return merged;
  }

  RunFn fn_;
  unsigned jobs_;
  std::vector<Cell> grid_;
};

}  // namespace lgsim::harness
