#include "harness/fct.h"

#include <memory>

#include "harness/parallel.h"
#include "net/loss_model.h"
#include "transport/rdma.h"
#include "transport/tcp.h"

namespace lgsim::harness {

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kDctcp: return "DCTCP";
    case Transport::kCubic: return "CUBIC";
    case Transport::kBbr: return "BBR";
    case Transport::kRdmaWrite: return "RDMA_WR";
  }
  return "?";
}

const char* protection_name(Protection p) {
  switch (p) {
    case Protection::kNoLoss: return "No loss";
    case Protection::kLossOnly: return "Loss";
    case Protection::kLg: return "LG";
    case Protection::kLgNb: return "LG_NB";
  }
  return "?";
}

namespace {

/// Loss model wrapper that records, per trial, which original data frames
/// (by uid = segment/PSN index) were corrupted. Drives the Fig. 13 tail-loss
/// classification and the "affected flow" bookkeeping.
class RecordingLoss final : public net::LossModel {
 public:
  explicit RecordingLoss(std::unique_ptr<net::LossModel> inner)
      : inner_(std::move(inner)) {}

  bool lose(SimTime now, const net::Packet& p) override {
    const bool lost = inner_->lose(now, p);
    if (lost && p.kind == net::PktKind::kData && !p.lg.retransmitted) {
      lost_original_uids_.push_back(p.uid);
    }
    return lost;
  }

  void begin_trial() { lost_original_uids_.clear(); }
  const std::vector<std::uint64_t>& lost_uids() const { return lost_original_uids_; }

 private:
  std::unique_ptr<net::LossModel> inner_;
  std::vector<std::uint64_t> lost_original_uids_;
};

}  // namespace

FctResult run_fct(const FctConfig& cfg) {
  Simulator sim;
  FctResult res;
  res.cfg = cfg;

  transport::PathConfig pc = cfg.path;
  pc.rate = cfg.rate;
  pc.link.rate = cfg.rate;
  // Host-side processing: kernel TCP stack ~12 us per receive; NIC-based
  // RDMA ~6 us (the paper's RDMA no-loss FCTs sit in the 10-20 us decade).
  pc.host_delay = cfg.transport == Transport::kRdmaWrite ? usec(6) : usec(12);
  pc.lg = lg::tuned_for_rate(pc.lg, cfg.rate);
  pc.lg.actual_loss_rate = cfg.loss_rate;
  // kLgNb forces out-of-order mode; kLg honours cfg.path.lg so the Table 2
  // ablations can toggle ordering / tail handling individually.
  if (cfg.protection == Protection::kLgNb) pc.lg.preserve_order = false;
  if (cfg.transport == Transport::kDctcp) pc.link.ecn_threshold_bytes = 100'000;

  transport::TestbedPath path(sim, pc);

  Rng rng(cfg.seed);
  RecordingLoss* loss = nullptr;
  if (cfg.protection != Protection::kNoLoss) {
    auto rec = std::make_unique<RecordingLoss>(
        std::make_unique<net::BernoulliLoss>(cfg.loss_rate, rng.split()));
    loss = rec.get();
    path.link().set_loss_model(std::move(rec));
  }
  if (cfg.protection == Protection::kLg || cfg.protection == Protection::kLgNb) {
    path.link().enable_lg();
  }

  const bool is_rdma = cfg.transport == Transport::kRdmaWrite;
  transport::TcpConfig tcfg;
  switch (cfg.transport) {
    case Transport::kDctcp:
      tcfg.cc = transport::TcpCc::kDctcp;
      tcfg.ecn_capable = true;
      break;
    case Transport::kCubic:
      tcfg.cc = transport::TcpCc::kCubic;
      break;
    case Transport::kBbr:
      tcfg.cc = transport::TcpCc::kBbr;
      break;
    default:
      break;
  }
  transport::RdmaConfig rcfg;

  // One long-lived sender/receiver pair, reset per trial with a fresh flow
  // id (exactly like back-to-back client invocations on the testbed hosts).
  SimTime trial_fct = -1;
  auto on_done = [&](SimTime fct) { trial_fct = fct; };

  std::unique_ptr<transport::TcpSender> tcp_snd;
  std::unique_ptr<transport::TcpReceiver> tcp_rcv;
  std::unique_ptr<transport::RdmaSender> rdma_snd;
  std::unique_ptr<transport::RdmaReceiver> rdma_rcv;
  if (is_rdma) {
    rdma_snd = std::make_unique<transport::RdmaSender>(
        sim, rcfg, 1, [&](net::Packet&& p) { path.send_from_a(std::move(p)); },
        on_done);
    rdma_rcv = std::make_unique<transport::RdmaReceiver>(
        sim, rcfg, 1, [&](net::Packet&& p) { path.send_from_b(std::move(p)); });
    path.set_sink_at_b([&](net::Packet&& p) { rdma_rcv->on_data(p); });
    path.set_sink_at_a([&](net::Packet&& p) { rdma_snd->on_transport(p); });
  } else {
    tcp_snd = std::make_unique<transport::TcpSender>(
        sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_a(std::move(p)); },
        on_done);
    tcp_rcv = std::make_unique<transport::TcpReceiver>(
        sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_b(std::move(p)); });
    path.set_sink_at_b([&](net::Packet&& p) { tcp_rcv->on_data(p); });
    path.set_sink_at_a([&](net::Packet&& p) { tcp_snd->on_ack(p); });
  }

  const std::int64_t n_trials =
      cfg.trial_bytes.empty() ? cfg.trials
                              : static_cast<std::int64_t>(cfg.trial_bytes.size());

  for (std::int64_t trial = 0; trial < n_trials; ++trial) {
    const std::int64_t flow_bytes =
        cfg.trial_bytes.empty() ? cfg.flow_bytes : cfg.trial_bytes[trial];
    const std::int64_t n_segs =
        is_rdma ? (flow_bytes + rcfg.payload - 1) / rcfg.payload
                : (flow_bytes + tcfg.mss - 1) / tcfg.mss;
    const std::uint32_t fid = static_cast<std::uint32_t>(trial + 1);
    trial_fct = -1;
    if (loss != nullptr) loss->begin_trial();
    if (is_rdma) {
      rdma_snd->reset(fid);
      rdma_rcv->reset(fid);
      rdma_snd->start(flow_bytes);
    } else {
      tcp_snd->reset(fid);
      tcp_rcv->reset(fid);
      tcp_snd->start(flow_bytes);
    }
    const SimTime deadline = sim.now() + cfg.trial_cap;
    // Run until the flow completes or the cap is hit. The simulator is
    // single-threaded, so stepping in slices is cheap.
    while (trial_fct < 0 && sim.now() < deadline) {
      if (!sim.step()) break;
      if (sim.now() > deadline) break;
    }
    SimTime fct = trial_fct;
    if (fct < 0) {
      fct = cfg.trial_cap;
      ++res.trials_capped;
    }
    res.fct_us.add(to_usec(fct));

    const bool wire_loss = loss != nullptr && !loss->lost_uids().empty();
    if (wire_loss) ++res.trials_with_wire_loss;

    if (is_rdma) {
      const auto& ss = rdma_snd->stats();
      if (ss.retransmissions > 0) ++res.trials_with_e2e_retx;
      if (ss.rtos > 0) ++res.trials_with_rto;
    } else {
      const auto& ss = tcp_snd->stats();
      if (ss.retransmissions > 0) ++res.trials_with_e2e_retx;
      if (ss.rtos > 0) ++res.trials_with_rto;
      // Fig. 13 classification (meaningful for TCP under LG_NB).
      if (wire_loss && ss.ever_sacked) {
        ++res.classes.affected;
        bool tail = false;
        for (auto uid : loss->lost_uids()) {
          if (static_cast<std::int64_t>(uid) >= n_segs - 3) tail = true;
        }
        if (!ss.sacked_over_2mss) {
          if (tail) {
            ++res.classes.group_b;
          } else {
            ++res.classes.group_a;
          }
        } else if (ss.sacked_over_2mss_before_done) {
          ++res.classes.group_d;
        } else {
          ++res.classes.group_c;
        }
      }
    }

    // Idle gap before the next trial; lets LinkGuardian finish any recovery.
    const SimTime next_start = sim.now() + cfg.inter_trial_gap;
    sim.run(next_start);
  }

  return res;
}

std::vector<FctResult> run_fct_grid(const std::vector<FctConfig>& cfgs) {
  ParallelRunner<FctConfig, FctResult> pool(
      [](const FctConfig& c) { return run_fct(c); });
  for (const FctConfig& c : cfgs) pool.add(c.seed, c);
  return pool.run_in_grid_order();
}

}  // namespace lgsim::harness
