#include "harness/timeline.h"

#include <memory>

#include "net/loss_model.h"
#include "transport/path.h"
#include "transport/rdma.h"
#include "transport/tcp.h"

namespace lgsim::harness {

namespace {

/// Loss model that can be switched on mid-run (the VOA being engaged).
/// Gilbert-Elliott burstiness per the paper's 25G observation (§4.1).
class SwitchableLoss final : public net::LossModel {
 public:
  SwitchableLoss(double rate, double mean_burst, Rng rng)
      : inner_(net::GilbertElliottLoss::for_rate(rate, std::max(1.0, mean_burst)),
               rng) {}
  bool lose(SimTime now, const net::Packet& p) override {
    return active_ && inner_.lose(now, p);
  }
  void activate() { active_ = true; }

 private:
  net::GilbertElliottLoss inner_;
  bool active_ = false;
};

}  // namespace

TimelineResult run_timeline(const TimelineConfig& cfg) {
  Simulator sim;
  TimelineResult res;
  res.cfg = cfg;

  transport::PathConfig pc;
  pc.rate = cfg.rate;
  pc.host_delay = usec(12);
  pc.link.rate = cfg.rate;
  pc.link.normal_queue_bytes = 800'000;
  pc.lg = lg::tuned_for_rate(pc.lg, cfg.rate);
  pc.lg.actual_loss_rate = cfg.loss_rate;
  pc.lg.preserve_order = cfg.preserve_order;
  pc.lg.backpressure = cfg.backpressure;
  if (cfg.transport == Transport::kDctcp) pc.link.ecn_threshold_bytes = 100'000;
  pc.lg.recirc_buffer_bytes =
      cfg.recirc_budget_bytes > 0 ? cfg.recirc_budget_bytes : 200'000;
  if (cfg.resume_threshold_bytes > 0) {
    pc.lg.resume_threshold = cfg.resume_threshold_bytes;
    pc.lg.pause_threshold = cfg.resume_threshold_bytes + 2 * kEthernetMtu;
  }

  transport::TestbedPath path(sim, pc);
  auto loss_owned = std::make_unique<SwitchableLoss>(cfg.loss_rate, cfg.mean_burst,
                                                     Rng(cfg.seed));
  SwitchableLoss* loss = loss_owned.get();
  path.link().set_loss_model(std::move(loss_owned));

  transport::TcpConfig tcfg;
  switch (cfg.transport) {
    case Transport::kDctcp:
      tcfg.cc = transport::TcpCc::kDctcp;
      tcfg.ecn_capable = true;
      break;
    case Transport::kCubic:
      tcfg.cc = transport::TcpCc::kCubic;
      break;
    case Transport::kBbr:
      tcfg.cc = transport::TcpCc::kBbr;
      break;
    default:
      break;
  }

  transport::TcpSender snd(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_a(std::move(p)); },
      [](SimTime) {});
  transport::TcpReceiver rcv(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_b(std::move(p)); });
  std::int64_t delivered_window = 0;
  path.set_sink_at_b([&](net::Packet&& p) {
    delivered_window += p.tcp.payload;
    rcv.on_data(p);
  });
  path.set_sink_at_a([&](net::Packet&& p) { snd.on_ack(p); });

  // Effectively infinite iperf flow.
  snd.start(1'000'000'000'000LL);

  sim.schedule_at(cfg.t_corruption, [&] { loss->activate(); });
  if (cfg.enable_lg) {
    sim.schedule_at(cfg.t_lg, [&] { path.link().enable_lg(); });
  }

  PeriodicTask sampler(sim, cfg.sample_period, [&](SimTime now) {
    res.goodput_gbps.record(
        now, static_cast<double>(delivered_window) * 8.0 /
                 static_cast<double>(cfg.sample_period));
    delivered_window = 0;
    res.qdepth_bytes.record(
        now, static_cast<double>(
                 path.link().forward_port().queue_bytes(path.link().normal_queue())));
    res.rx_buffer_bytes.record(
        now, static_cast<double>(path.link().receiver().reorder_buffer_bytes()));
    res.e2e_retx.record(now, static_cast<double>(snd.stats().retransmissions));
  });
  sampler.start(cfg.sample_period);
  sim.schedule_at(cfg.t_end, [&] { sampler.stop(); });

  sim.run(cfg.t_end);
  res.reorder_drops = path.link().receiver().stats().reorder_drops;
  res.lg_effectively_lost = path.link().receiver().stats().effectively_lost;
  res.e2e_retx_total = snd.stats().retransmissions;
  return res;
}

}  // namespace lgsim::harness
