// Flow-completion-time experiment harness (§4.3, §4.4, §4.5).
//
// Repeats fixed-size flows back-to-back over the testbed path — the paper's
// 300K-trial FCT measurements — under four conditions: no loss, loss, loss +
// LinkGuardian, loss + LinkGuardianNB. Collects the FCT distribution plus
// the per-trial transport telemetry used by the Fig. 13 classification
// (affected / SACK > 2 MSS / tail loss / pending bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "transport/path.h"
#include "util/stats.h"
#include "util/units.h"

namespace lgsim::harness {

enum class Transport : std::uint8_t { kDctcp, kCubic, kBbr, kRdmaWrite };
enum class Protection : std::uint8_t { kNoLoss, kLossOnly, kLg, kLgNb };

const char* transport_name(Transport t);
const char* protection_name(Protection p);

struct FctConfig {
  Transport transport = Transport::kDctcp;
  Protection protection = Protection::kNoLoss;
  std::int64_t flow_bytes = 143;
  std::int64_t trials = 10'000;
  /// When non-empty, overrides {flow_bytes, trials}: trial i sends
  /// trial_bytes[i]. Lets callers (the fabric traffic engine) replay a
  /// concrete list of flow sizes through the packet-level path.
  std::vector<std::int64_t> trial_bytes;
  double loss_rate = 1e-3;
  BitRate rate = gbps(100);
  /// Idle gap between consecutive trials.
  SimTime inter_trial_gap = usec(20);
  /// Per-trial guard timeout: a trial that exceeds this is recorded at the
  /// cap (only pathological configurations hit it).
  SimTime trial_cap = msec(200);
  std::uint64_t seed = 42;
  transport::PathConfig path;  // link/lg knobs; rate + lg mode are overwritten
};

/// Fig. 13 classification groups for affected DCTCP flows under LG_NB.
struct FlowClassCounts {
  std::int64_t affected = 0;   // received >= 1 SACK while LG recovered a loss
  std::int64_t group_a = 0;    // <= 2 MSS SACKed, not a tail loss
  std::int64_t group_b = 0;    // <= 2 MSS SACKed, tail loss
  std::int64_t group_c = 0;    // > 2 MSS SACKed, nothing left to send
  std::int64_t group_d = 0;    // > 2 MSS SACKed with pending bytes
};

struct FctResult {
  FctConfig cfg;
  lgsim::PercentileTracker fct_us;
  std::int64_t trials_with_wire_loss = 0;  // >=1 data frame corrupted
  std::int64_t trials_with_e2e_retx = 0;   // transport had to retransmit
  std::int64_t trials_with_rto = 0;
  std::int64_t trials_capped = 0;
  FlowClassCounts classes;                  // TCP transports only

  double p(double percentile) const { return fct_us.percentile(percentile); }
};

FctResult run_fct(const FctConfig& cfg);

/// Runs a whole grid of FCT configurations, fanned out over LGSIM_BENCH_JOBS
/// workers (see harness/parallel.h). Each replication gets its own
/// Simulator/Rng; results come back in submission order and are
/// byte-identical to calling run_fct serially, for any worker count.
std::vector<FctResult> run_fct_grid(const std::vector<FctConfig>& cfgs);

}  // namespace lgsim::harness
