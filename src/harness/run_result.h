// Keyed per-replication results for sweep-style experiments.
//
// A sweep grid is a list of {seed, config} replications. Each replication is
// fully independent (its own Simulator and Rng), so it can run on any worker
// in any order; the key restores a canonical order afterwards. Sorting merged
// results on (seed, config_index) — with config_index the position in the
// submitted grid — is a total order independent of worker count and
// scheduling, which is what makes parallel output byte-identical to serial.
#pragma once

#include <cstdint>
#include <tuple>

namespace lgsim::harness {

/// Identifies one replication of a sweep grid.
struct RunKey {
  std::uint64_t seed = 0;
  /// Position of the replication's config in the submitted grid.
  std::size_t config_index = 0;

  friend bool operator==(const RunKey& a, const RunKey& b) {
    return a.seed == b.seed && a.config_index == b.config_index;
  }
  friend bool operator<(const RunKey& a, const RunKey& b) {
    return std::tie(a.seed, a.config_index) <
           std::tie(b.seed, b.config_index);
  }
};

/// One replication's merged output: the key it ran under plus whatever the
/// run function returned (StressResult, FctResult, histogram chunk, ...).
template <typename Value>
struct RunResult {
  RunKey key;
  Value value;

  friend bool operator<(const RunResult& a, const RunResult& b) {
    return a.key < b.key;
  }
};

}  // namespace lgsim::harness
