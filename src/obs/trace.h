// Structured event tracer: a fixed-capacity ring buffer of typed binary
// records with near-zero cost when tracing is off.
//
// Layers, from hot path outward:
//
//   emit()            — inline probe called from component code. Compiled to
//                       nothing when LGSIM_TRACE_ENABLED=0; when compiled in
//                       but no sink is installed, it is a single thread_local
//                       load + null check (the runtime-off fast path that
//                       keeps tier-1 bench numbers unaffected; bench_micro
//                       prints and asserts the <1% overhead bound).
//   TraceSink         — per-run record ring + actor-name interner + a
//                       MetricsRegistry for final counter snapshots. Owned by
//                       exactly one thread at a time (installed via
//                       SinkScope), so it needs no locks.
//   TraceCollector    — process-global set of sinks for one bench run. Sinks
//                       are created on the *main thread only* (before worker
//                       threads spawn) in grid-submission order, which is what
//                       makes the exported trace byte-identical for any
//                       LGSIM_BENCH_JOBS value: ring contents depend only on
//                       the cell's deterministic simulation, and sink order
//                       depends only on submission order.
//
// The Chrome trace-event JSON exporter lives in obs/chrome_trace.h.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/units.h"

// Compile-time gate. Build a target with -DLGSIM_TRACE_ENABLED=0 to remove
// every probe entirely (tests/obs_compiled_out_test.cc pins this). One
// setting per binary: mixing values across translation units of one link
// target would be an ODR violation on these inline functions.
#ifndef LGSIM_TRACE_ENABLED
#define LGSIM_TRACE_ENABLED 1
#endif

namespace lgsim::obs {

inline constexpr bool kTraceCompiledIn = (LGSIM_TRACE_ENABLED != 0);

/// Event category — one per instrumented subsystem; becomes the "cat" field
/// in the Chrome trace export.
enum class Cat : std::uint8_t {
  kSim = 0,
  kPort,
  kLg,
  kPfc,
  kTransport,
  kMonitor,
  kPhy,
  kFault,
  // Appended so pre-existing records keep their encoded cat byte (the fig08
  // trace goldens pin those bytes).
  kTelemetry,
};
inline constexpr const char* kCatNames[] = {
    "sim", "port", "lg", "pfc", "transport", "monitor", "phy", "fault",
    "telemetry"};
inline constexpr std::size_t kNumCats = sizeof(kCatNames) / sizeof(kCatNames[0]);

/// Event kind — the record's verb; becomes the "name" field in the export
/// (except kCounter, whose name is the interned series the record samples).
enum class Kind : std::uint8_t {
  kEnqueue = 0,
  kDequeue,
  kDrop,
  kCorrupt,
  kDeliver,
  kRetx,
  kRecover,
  kAck,
  kLossNotif,
  kGapDetect,
  kBufferRelease,
  kTimeout,
  kPause,
  kResume,
  kPoll,
  kDetect,
  kActivate,
  kFlowStart,
  kFlowEnd,
  kCounter,
  // Appended after kCounter so every pre-existing record keeps its encoded
  // kind byte (the fig08 trace goldens pin those bytes).
  kInject,      // a scripted fault event was applied (src/fault)
  kModeChange,  // protection mode transition (AutoFallback)
  kProbeTx,     // telemetry probe emitted (a = seq)
  kProbeRx,     // telemetry probe received (a = seq, b = one-way ns)
  kEstimate,    // loss estimate published (a = rate*1e9, b = window samples)
};
inline constexpr const char* kKindNames[] = {
    "enqueue",        "dequeue", "drop",  "corrupt",   "deliver",
    "retx",           "recover", "ack",   "loss_notif", "gap_detect",
    "buffer_release", "timeout", "pause", "resume",    "poll",
    "detect",         "activate", "flow_start", "flow_end", "counter",
    "inject",         "mode_change", "probe_tx", "probe_rx", "estimate"};
inline constexpr std::size_t kNumKinds =
    sizeof(kKindNames) / sizeof(kKindNames[0]);

/// One 32-byte POD record. `actor` is a sink-interned name id (the emitting
/// component, or the series name for kCounter records); `a`/`b`/`aux` carry
/// kind-specific payload (documented at each probe site and in DESIGN.md).
struct TraceRecord {
  SimTime ts = 0;
  std::uint32_t actor = 0;
  Cat cat = Cat::kSim;
  Kind kind = Kind::kCounter;
  std::uint16_t aux = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Fixed-capacity overwrite-oldest ring. Keeping the *newest* records is the
/// right policy for a post-mortem trace: the interesting window is the one
/// that ends at the anomaly. total_pushed() exposes how many records were
/// evicted so exports can say what was dropped.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  void push(const TraceRecord& r) {
    buf_[head_] = r;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
    ++pushed_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t total_pushed() const { return pushed_; }
  std::uint64_t evicted() const { return pushed_ - size_; }

  /// Oldest-first access: at(0) is the oldest retained record.
  const TraceRecord& at(std::size_t i) const {
    return buf_[(head_ + buf_.size() - size_ + i) % buf_.size()];
  }

 private:
  std::vector<TraceRecord> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
};

inline constexpr std::size_t kDefaultRingCapacity = 1 << 16;

/// Per-run trace destination: record ring + actor-name interner + metrics.
/// Single-owner by construction (see file comment); no synchronization.
class TraceSink {
 public:
  explicit TraceSink(std::string label,
                     std::size_t capacity = kDefaultRingCapacity)
      : label_(std::move(label)), ring_(capacity) {
    names_.push_back("");  // id 0 reserved for "unknown actor"
  }

  /// Returns a dense id (>= 1) stable for the sink's lifetime.
  std::uint32_t intern(std::string_view name) {
    std::string key(name);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.push_back(key);
    ids_.emplace(std::move(key), id);
    return id;
  }

  void push(const TraceRecord& r) { ring_.push(r); }

  /// Folds another sink's contents into this one: records are re-pushed in
  /// the other ring's retained (oldest-first) order with actor ids re-interned
  /// into this sink's name space, and the metrics registries merge. This is
  /// how per-shard sinks — filled concurrently on shard workers — reduce into
  /// a cell's collector-registered sink: absorbing in fixed shard order keeps
  /// the exported trace independent of worker scheduling.
  void absorb(const TraceSink& o) {
    std::vector<std::uint32_t> remap(o.names_.size(), 0);
    for (std::size_t i = 1; i < o.names_.size(); ++i)
      remap[i] = intern(o.names_[i]);
    for (std::size_t i = 0; i < o.ring_.size(); ++i) {
      TraceRecord r = o.ring_.at(i);
      r.actor = r.actor < remap.size() ? remap[r.actor] : 0;
      ring_.push(r);
    }
    metrics_.merge(o.metrics_);
  }

  const std::string& label() const { return label_; }
  const TraceRing& ring() const { return ring_; }
  const std::vector<std::string>& actor_names() const { return names_; }
  const std::string& actor_name(std::uint32_t id) const {
    return id < names_.size() ? names_[id] : names_[0];
  }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  std::string label_;
  TraceRing ring_;
  std::vector<std::string> names_;  // index == id
  std::unordered_map<std::string, std::uint32_t> ids_;
  MetricsRegistry metrics_;
};

namespace detail {
inline TraceSink*& tls_slot() {
  thread_local TraceSink* sink = nullptr;
  return sink;
}
}  // namespace detail

/// The sink the current thread emits into, or nullptr when tracing is off.
inline TraceSink* current_sink() {
  if constexpr (kTraceCompiledIn) return detail::tls_slot();
  return nullptr;
}

/// RAII installer for the thread-local sink. Nesting restores the previous
/// sink, so a per-cell scope inside a bench-wide scope behaves correctly.
class SinkScope {
 public:
  explicit SinkScope(TraceSink* s) : prev_(detail::tls_slot()) {
    detail::tls_slot() = s;
  }
  ~SinkScope() { detail::tls_slot() = prev_; }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  TraceSink* prev_;
};

/// Interns `name` in the current sink; 0 when tracing is off. Components
/// cache the result at construction time (they are constructed inside the
/// run's sink scope), keeping the per-record hot path free of hashing.
inline std::uint32_t intern_actor(std::string_view name) {
  if constexpr (kTraceCompiledIn) {
    if (TraceSink* s = detail::tls_slot()) return s->intern(name);
  }
  (void)name;
  return 0;
}

/// The probe. Inline, compiled out entirely under LGSIM_TRACE_ENABLED=0;
/// otherwise one TLS load + branch when no sink is installed.
inline void emit(SimTime ts, Cat cat, Kind kind, std::uint32_t actor,
                 std::int64_t a = 0, std::int64_t b = 0,
                 std::uint16_t aux = 0) {
  if constexpr (kTraceCompiledIn) {
    if (TraceSink* s = detail::tls_slot())
      s->push(TraceRecord{ts, actor, cat, kind, aux, a, b});
  } else {
    (void)ts; (void)cat; (void)kind; (void)actor; (void)a; (void)b; (void)aux;
  }
}

/// Counter sample: `series` is an interned series name, `value` its level.
inline void emit_counter(SimTime ts, Cat cat, std::uint32_t series,
                         std::int64_t value) {
  emit(ts, cat, Kind::kCounter, series, value);
}

/// Process-global sink registry for one traced bench run.
///
/// make_sink() must only be called from the main thread, and only while no
/// worker threads are running — harness::ParallelRunner pre-allocates every
/// per-cell sink before spawning its pool, which is why no lock is needed
/// and why sink order (== export order) is scheduling-independent.
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t ring_capacity = kDefaultRingCapacity)
      : cap_(ring_capacity == 0 ? 1 : ring_capacity) {}

  ~TraceCollector() {
    if (slot() == this) slot() = nullptr;
  }
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The active collector, or nullptr when no trace was requested.
  static TraceCollector* active() { return slot(); }

  void install() { slot() = this; }
  void uninstall() {
    if (slot() == this) slot() = nullptr;
  }

  /// MAIN THREAD ONLY (see class comment). The sink's address is stable
  /// (std::deque never relocates elements).
  TraceSink* make_sink(std::string label) {
    sinks_.emplace_back(std::move(label), cap_);
    return &sinks_.back();
  }

  std::size_t sink_count() const { return sinks_.size(); }
  const TraceSink& sink(std::size_t i) const { return sinks_[i]; }
  std::size_t ring_capacity() const { return cap_; }

 private:
  static TraceCollector*& slot() {
    static TraceCollector* active = nullptr;
    return active;
  }

  std::size_t cap_;
  std::deque<TraceSink> sinks_;
};

}  // namespace lgsim::obs
