// Chrome trace-event JSON exporter: serializes a TraceCollector (or a list
// of sinks) into the JSON Object Format that Perfetto and chrome://tracing
// load directly.
//
// Mapping:
//   pid  = sink index (one "process" per replication cell / main thread)
//   tid  = interned actor id within the sink
//   "M"  = metadata events naming each process (the sink label) and thread
//          (the actor name)
//   "i"  = thread-scoped instant event for every non-counter record, with
//          the record payload under args
//   "C"  = counter event for Kind::kCounter records (series name = actor)
//
// Determinism: field order is fixed by construction (hand-built strings, no
// map-ordered serializer), sinks export in creation order, records in ring
// order, and timestamps derive from integer SimTime only — so the bytes are
// identical for any LGSIM_BENCH_JOBS value.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace lgsim::obs {

namespace detail {

inline void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Trace-event timestamps are microseconds; SimTime is integer nanoseconds.
/// Emit exactly three decimals via integer math (no double rounding).
inline void append_ts_us(std::string& out, SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out += buf;
}

inline void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace detail

/// Serializes `sinks` (pid = index in the vector). Null entries are skipped
/// but still consume a pid, keeping cell numbering stable.
inline void write_chrome_trace(std::ostream& os,
                               const std::vector<const TraceSink*>& sinks) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };

  for (std::size_t pid = 0; pid < sinks.size(); ++pid) {
    const TraceSink* s = sinks[pid];
    if (s == nullptr) continue;

    sep();
    out += "{\"ph\":\"M\",\"pid\":";
    detail::append_i64(out, static_cast<std::int64_t>(pid));
    out += ",\"name\":\"process_name\",\"args\":{\"name\":\"";
    detail::append_json_escaped(out, s->label());
    out += "\"}}";

    const auto& names = s->actor_names();
    for (std::size_t tid = 1; tid < names.size(); ++tid) {
      sep();
      out += "{\"ph\":\"M\",\"pid\":";
      detail::append_i64(out, static_cast<std::int64_t>(pid));
      out += ",\"tid\":";
      detail::append_i64(out, static_cast<std::int64_t>(tid));
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      detail::append_json_escaped(out, names[tid]);
      out += "\"}}";
    }

    const TraceRing& ring = s->ring();
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const TraceRecord& r = ring.at(i);
      const char* cat = static_cast<std::size_t>(r.cat) < kNumCats
                            ? kCatNames[static_cast<std::size_t>(r.cat)]
                            : "?";
      sep();
      if (r.kind == Kind::kCounter) {
        out += "{\"ph\":\"C\",\"pid\":";
        detail::append_i64(out, static_cast<std::int64_t>(pid));
        out += ",\"tid\":0,\"ts\":";
        detail::append_ts_us(out, r.ts);
        out += ",\"cat\":\"";
        out += cat;
        out += "\",\"name\":\"";
        detail::append_json_escaped(out, s->actor_name(r.actor));
        out += "\",\"args\":{\"value\":";
        detail::append_i64(out, r.a);
        out += "}}";
      } else {
        const char* kind = static_cast<std::size_t>(r.kind) < kNumKinds
                               ? kKindNames[static_cast<std::size_t>(r.kind)]
                               : "?";
        out += "{\"ph\":\"i\",\"pid\":";
        detail::append_i64(out, static_cast<std::int64_t>(pid));
        out += ",\"tid\":";
        detail::append_i64(out, r.actor);
        out += ",\"ts\":";
        detail::append_ts_us(out, r.ts);
        out += ",\"s\":\"t\",\"cat\":\"";
        out += cat;
        out += "\",\"name\":\"";
        out += kind;
        out += "\",\"args\":{\"a\":";
        detail::append_i64(out, r.a);
        out += ",\"b\":";
        detail::append_i64(out, r.b);
        out += ",\"aux\":";
        detail::append_i64(out, r.aux);
        out += "}}";
      }
    }
  }

  out += "\n],\"metrics\":[";
  bool mfirst = true;
  for (std::size_t pid = 0; pid < sinks.size(); ++pid) {
    const TraceSink* s = sinks[pid];
    if (s == nullptr) continue;
    if (!mfirst) out += ',';
    mfirst = false;
    out += "\n{\"pid\":";
    detail::append_i64(out, static_cast<std::int64_t>(pid));
    out += ",\"label\":\"";
    detail::append_json_escaped(out, s->label());
    out += "\",\"evicted_records\":";
    detail::append_i64(out, static_cast<std::int64_t>(s->ring().evicted()));
    out += ",\"values\":";
    os.write(out.data(), static_cast<std::streamsize>(out.size()));
    out.clear();
    s->metrics().write_json(os);
    out += '}';
  }
  out += "\n]}\n";
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

/// Convenience: every sink of a collector, in creation order.
inline void write_chrome_trace(std::ostream& os, const TraceCollector& col) {
  std::vector<const TraceSink*> sinks;
  sinks.reserve(col.sink_count());
  for (std::size_t i = 0; i < col.sink_count(); ++i)
    sinks.push_back(&col.sink(i));
  write_chrome_trace(os, sinks);
}

}  // namespace lgsim::obs
