// Metrics registry: named counters / gauges / distributions that components
// (ports, LG sender/receiver, transports, corruptd, the Simulator itself)
// publish into, snapshotted on demand and exported as JSON or CSV.
//
// The registry is a plain value container — components *push* their final (or
// sampled) values into it rather than registering callbacks, so the registry
// can outlive the components that fed it (a replication cell's Simulator and
// ports are destroyed inside the run function, while the per-cell sink that
// owns this registry survives until the bench exports the trace).
//
// Determinism: all three maps are std::map, so iteration — and therefore the
// JSON/CSV byte stream — is ordered by name, independent of insertion order.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace lgsim::obs {

class MetricsRegistry {
 public:
  /// Get-or-create. References stay valid for the registry's lifetime
  /// (std::map nodes are stable).
  std::int64_t& counter(const std::string& name) { return counters_[name]; }
  double& gauge(const std::string& name) { return gauges_[name]; }
  RunningStats& distribution(const std::string& name) { return dists_[name]; }

  /// Folds another registry in: counters add, gauges take the other's value
  /// (last writer wins, matching sequential re-publication), distributions
  /// merge Welford-style. Used to reduce per-shard registries into the cell's
  /// sink in deterministic shard order.
  void merge(const MetricsRegistry& o) {
    for (const auto& [n, v] : o.counters_) counters_[n] += v;
    for (const auto& [n, v] : o.gauges_) gauges_[n] = v;
    for (const auto& [n, d] : o.dists_) dists_[n].merge(d);
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && dists_.empty();
  }
  void clear() {
    counters_.clear();
    gauges_.clear();
    dists_.clear();
  }

  /// Flat (name, value) view sorted by name. Distributions expand into
  /// `.count` / `.mean` / `.min` / `.max` entries.
  std::vector<std::pair<std::string, double>> snapshot() const {
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters_.size() + gauges_.size() + 4 * dists_.size());
    for (const auto& [n, v] : counters_)
      out.emplace_back(n, static_cast<double>(v));
    for (const auto& [n, v] : gauges_) out.emplace_back(n, v);
    for (const auto& [n, d] : dists_) {
      out.emplace_back(n + ".count", static_cast<double>(d.count()));
      out.emplace_back(n + ".mean", d.mean());
      out.emplace_back(n + ".min", d.min());
      out.emplace_back(n + ".max", d.max());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// One flat JSON object, keys sorted by name. Counters print as integers;
  /// everything else through format_value (see below).
  void write_json(std::ostream& os) const {
    os << '{';
    bool first = true;
    for (const auto& [n, v] : snapshot()) {
      if (!first) os << ',';
      first = false;
      os << '"' << n << "\":" << format_value(v);
    }
    os << '}';
  }

  /// `metric,value` rows with a header line, sorted by name.
  void write_csv(std::ostream& os) const {
    os << "metric,value\n";
    for (const auto& [n, v] : snapshot()) os << n << ',' << format_value(v) << '\n';
  }

  /// Deterministic number formatting: integral values (the common case —
  /// counters, byte totals) print without a decimal point; everything else
  /// prints with round-trip precision. Same doubles, same bytes, always.
  static std::string format_value(double v) {
    char buf[40];
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
      std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
  }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, RunningStats> dists_;
};

}  // namespace lgsim::obs
