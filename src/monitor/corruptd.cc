#include "monitor/corruptd.h"
#include "monitor/fallback.h"

#include "obs/trace.h"

namespace lgsim::monitor {

Corruptd::Corruptd(Simulator& sim, const CorruptdConfig& cfg, PubSubBus& bus)
    : sim_(sim), cfg_(cfg), bus_(bus) {}

void Corruptd::add_port(PortCounterFn port) {
  ports_.push_back(std::move(port));
  windows_.emplace_back();
  // Seed the baseline so the first poll delta is meaningful.
  windows_.back().last_ok = ports_.back().frames_rx_ok();
  windows_.back().last_all = ports_.back().frames_rx_all();
}

void Corruptd::start() {
  // Reuse the task across start/stop cycles; PeriodicTask::start is
  // restart-safe, so repeated start() never stacks poll chains.
  if (!task_) {
    task_ = std::make_unique<PeriodicTask>(
        sim_, cfg_.poll_period, [this](SimTime now) { poll(now); });
  }
  task_->start(cfg_.poll_period);
}

void Corruptd::stop() {
  if (task_) task_->stop();
}

void Corruptd::poll(SimTime now) {
  ++polls_;
  if (stalled_) {
    // Injected driver stall: the timer fired but no counters came back.
    ++stalled_polls_;
    obs::emit(now, obs::Cat::kMonitor, obs::Kind::kPoll,
              obs::intern_actor("corruptd"), polls_, stalled_polls_,
              /*aux=stalled*/ 1);
    return;
  }
  obs::emit(now, obs::Cat::kMonitor, obs::Kind::kPoll,
            obs::intern_actor("corruptd"), polls_,
            static_cast<std::int64_t>(ports_.size()));
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    Window& w = windows_[i];
    const std::int64_t ok = ports_[i].frames_rx_ok();
    const std::int64_t all = ports_[i].frames_rx_all();
    const Window::Sample d{ok - w.last_ok, all - w.last_all, now};
    w.last_ok = ok;
    w.last_all = all;
    if (d.all > 0) {  // idle polls carry no information; don't accumulate them
      w.deltas.push_back(d);
      w.win_ok += d.ok;
      w.win_all += d.all;
    }
    // Time-based eviction first (window_tau): a sample leaves the moment it
    // is window_tau old — `>=`, so eviction happens exactly at TAU — and may
    // drain the window completely (loss becomes unknown, see estimate()).
    while (cfg_.window_tau > 0 && !w.deltas.empty() &&
           now - w.deltas.front().at >= cfg_.window_tau) {
      w.win_ok -= w.deltas.front().ok;
      w.win_all -= w.deltas.front().all;
      w.deltas.pop_front();
    }
    // Then trim the moving window to the configured frame budget.
    while (w.win_all > cfg_.window_frames && w.deltas.size() > 1) {
      w.win_ok -= w.deltas.front().ok;
      w.win_all -= w.deltas.front().all;
      w.deltas.pop_front();
    }
    if (w.win_all <= 0) continue;
    const double loss = 1.0 - static_cast<double>(w.win_ok) /
                                  static_cast<double>(w.win_all);
    const bool renotify_due =
        w.notified && cfg_.renotify_period > 0 &&
        now - w.last_notify >= cfg_.renotify_period;
    if (loss >= cfg_.threshold && (!w.notified || renotify_due)) {
      w.notified = true;
      w.last_notify = now;
      // Loss rate in parts-per-billion: trace records carry integers only.
      obs::emit(now, obs::Cat::kMonitor, obs::Kind::kDetect,
                obs::intern_actor(ports_[i].link_topic),
                static_cast<std::int64_t>(loss * 1e9), w.win_all);
      bus_.publish({ports_[i].link_topic, loss, now});
    }
  }
}

double Corruptd::loss_rate(const std::string& topic) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].link_topic == topic) {
      const Window& w = windows_[i];
      if (w.win_all <= 0) return 0.0;
      return 1.0 - static_cast<double>(w.win_ok) / static_cast<double>(w.win_all);
    }
  }
  return 0.0;
}

Corruptd::WindowEstimate Corruptd::estimate(const std::string& topic) const {
  WindowEstimate e;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].link_topic != topic) continue;
    const Window& w = windows_[i];
    if (w.deltas.empty() || w.win_all <= 0) return e;  // unknown, not 0%
    e.known = true;
    e.frames = w.win_all;
    e.age = sim_.now() - w.deltas.back().at;
    e.rate = 1.0 - static_cast<double>(w.win_ok) /
                       static_cast<double>(w.win_all);
    return e;
  }
  return e;
}

}  // namespace lgsim::monitor

namespace lgsim::monitor {

const char* lg_mode_name(LgMode m) {
  switch (m) {
    case LgMode::kOrdered: return "LinkGuardian";
    case LgMode::kNonBlocking: return "LinkGuardianNB";
    case LgMode::kOff: return "off";
  }
  return "?";
}

}  // namespace lgsim::monitor
