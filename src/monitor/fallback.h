// Automatic fallback (§5 "Automatic fallback"): LinkGuardian is designed for
// the low loss rates of Table 1; if a link suddenly degrades to a high loss
// rate, ordered LinkGuardian's pauses can hurt more than they help. This
// control-plane extension watches the measured loss rate and steps the
// protection mode down — ordered -> non-blocking -> off — at configurable
// thresholds (and back up when the link improves, with hysteresis).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::monitor {

enum class LgMode : std::uint8_t { kOrdered, kNonBlocking, kOff };

const char* lg_mode_name(LgMode m);

struct FallbackConfig {
  /// Above this measured loss rate, drop from ordered to LinkGuardianNB.
  double nb_threshold = 5e-3;
  /// Above this, disable LinkGuardian entirely (the link is beyond help;
  /// the operator escalates to CorrOpt / repair).
  double off_threshold = 5e-2;
  /// Hysteresis factor when stepping back up (avoid mode flapping).
  double recover_factor = 0.5;
  /// Re-evaluation period.
  SimTime period = sec(1);
};

struct ModeChange {
  SimTime at;
  LgMode from;
  LgMode to;
  double measured_loss;
};

class AutoFallback {
 public:
  using LossFn = std::function<double()>;        // current measured loss
  using ApplyFn = std::function<void(LgMode)>;   // reconfigure the dataplane

  AutoFallback(Simulator& sim, const FallbackConfig& cfg, LossFn loss,
               ApplyFn apply)
      : sim_(sim),
        cfg_(cfg),
        loss_(std::move(loss)),
        apply_(std::move(apply)),
        trace_actor_(obs::intern_actor("fallback")) {}

  /// Idempotent: re-starting a running controller replaces its evaluation
  /// chain instead of stacking a second one, and the single PeriodicTask is
  /// reused across start/stop cycles — the original code built a fresh task
  /// per start() and destroyed the old one while its fire event was still
  /// armed (the stale-pending-id bug class fixed for PeriodicTask itself).
  void start(LgMode initial = LgMode::kOrdered) {
    mode_ = initial;
    if (!task_) {
      task_ = std::make_unique<PeriodicTask>(
          sim_, cfg_.period, [this](SimTime t) { evaluate(t); });
    }
    task_->start(cfg_.period);
  }

  void stop() {
    if (task_) task_->stop();
  }

  bool running() const { return task_ && task_->running(); }

  /// One evaluation step (also driven periodically by start()).
  void evaluate(SimTime now) {
    const double l = loss_();
    const LgMode next = pick_mode(l);
    if (next != mode_) {
      changes_.push_back({now, mode_, next, l});
      obs::emit(now, obs::Cat::kFault, obs::Kind::kModeChange, trace_actor_,
                static_cast<std::int64_t>(next),
                static_cast<std::int64_t>(l * 1e9),
                static_cast<std::uint16_t>(mode_));
      mode_ = next;
      apply_(next);
    }
  }

  LgMode mode() const { return mode_; }
  const std::vector<ModeChange>& changes() const { return changes_; }

 private:
  LgMode pick_mode(double loss) const {
    // Step down on threshold crossings; step back up only once the loss is
    // comfortably (recover_factor) below the threshold that demoted us.
    switch (mode_) {
      case LgMode::kOrdered:
        if (loss >= cfg_.off_threshold) return LgMode::kOff;
        if (loss >= cfg_.nb_threshold) return LgMode::kNonBlocking;
        return LgMode::kOrdered;
      case LgMode::kNonBlocking:
        if (loss >= cfg_.off_threshold) return LgMode::kOff;
        if (loss < cfg_.nb_threshold * cfg_.recover_factor)
          return LgMode::kOrdered;
        return LgMode::kNonBlocking;
      case LgMode::kOff:
        if (loss < cfg_.off_threshold * cfg_.recover_factor)
          return LgMode::kNonBlocking;
        return LgMode::kOff;
    }
    return mode_;
  }

  Simulator& sim_;
  FallbackConfig cfg_;
  LossFn loss_;
  ApplyFn apply_;
  LgMode mode_ = LgMode::kOrdered;
  std::vector<ModeChange> changes_;
  std::unique_ptr<PeriodicTask> task_;
  std::uint32_t trace_actor_ = 0;  // obs actor id, interned at construction
};

}  // namespace lgsim::monitor
