// corruptd: the control-plane corruption-monitoring daemon (Appendix C).
//
// One daemon instance runs per switch. It periodically polls the driver for
// per-port RX frame counters (framesRxOk / framesRxAll), computes the loss
// rate over a moving window of frames, and — when a link's loss rate crosses
// the detection threshold — publishes a notification on a Redis-style
// pub-sub bus. The daemon on the *upstream* switch subscribes to topics for
// its own egress links and activates LinkGuardian with the retransmission
// copy count from Eq. 2.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lg/config.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::monitor {

/// In-process stand-in for the Redis pub-sub channel the daemons share.
///
/// Delivery latency: a real deployment hops through a Redis instance, so a
/// notification is not seen by subscribers in the same instant it is
/// published. bind() a Simulator and set_delay() to model that hop; with the
/// default delay of 0 (or no simulator bound) delivery stays synchronous —
/// exactly the pre-existing behaviour, keeping trace goldens byte-identical.
///
/// Fault hooks (driven by src/fault's FaultInjector): set_drop(true) opens an
/// outage window during which published notifications vanish (counted, still
/// recorded in history()); set_extra_delay() adds injected control-plane
/// latency on top of the configured hop delay.
class PubSubBus {
 public:
  struct Notification {
    std::string topic;
    double loss_rate = 0.0;
    SimTime at = 0;  // publish time (the publisher's clock)
  };

  struct Counters {
    std::int64_t published = 0;
    std::int64_t delivered = 0;  // notifications handed to >= 0 subscribers
    std::int64_t dropped = 0;    // lost to an injected outage window
    std::int64_t deferred = 0;   // went through the simulator (delay > 0)
  };

  using Handler = std::function<void(const Notification&)>;

  /// Enables scheduled delivery. Without a bound simulator every publish
  /// delivers synchronously regardless of the configured delay.
  void bind(Simulator& sim) { sim_ = &sim; }

  /// Control-plane hop latency applied to every delivery (default 0).
  void set_delay(SimTime d) { delay_ = d; }
  SimTime delay() const { return delay_; }

  /// Fault injection: additional latency on top of the hop delay.
  void set_extra_delay(SimTime d) { extra_delay_ = d; }
  SimTime extra_delay() const { return extra_delay_; }

  /// Fault injection: while true, published notifications are dropped.
  void set_drop(bool drop) { drop_ = drop; }
  bool dropping() const { return drop_; }

  void subscribe(const std::string& topic, Handler h) {
    subs_[topic].push_back(std::move(h));
  }

  void publish(const Notification& n) {
    history_.push_back(n);
    ++counters_.published;
    if (drop_) {
      ++counters_.dropped;
      return;
    }
    const SimTime hop = delay_ + extra_delay_;
    if (hop <= 0 || sim_ == nullptr) {
      deliver(n);
      return;
    }
    ++counters_.deferred;
    // Init-capture: a plain `[this, n]` capture of the const reference would
    // make the member const and demote the closure's move to a throwing
    // string copy, which the event kernel's nothrow-move contract rejects.
    sim_->schedule_in(hop, [this, m = n] { deliver(m); });
  }

  const std::vector<Notification>& history() const { return history_; }
  const Counters& counters() const { return counters_; }

 private:
  void deliver(const Notification& n) {
    ++counters_.delivered;
    auto it = subs_.find(n.topic);
    if (it == subs_.end()) return;
    for (auto& h : it->second) h(n);
  }

  Simulator* sim_ = nullptr;
  SimTime delay_ = 0;
  SimTime extra_delay_ = 0;
  bool drop_ = false;
  std::map<std::string, std::vector<Handler>> subs_;
  std::vector<Notification> history_;
  Counters counters_;
};

struct CorruptdConfig {
  /// Counter polling period (1 s in the paper).
  SimTime poll_period = sec(1);
  /// Moving window length in frames (100M frames in the paper). Loss rate is
  /// computed over the most recent window of polls covering this many polls'
  /// worth of frames.
  std::int64_t window_frames = 100'000'000;
  /// Detection threshold: activate once L >= 1e-8 (a healthy link's BER).
  double threshold = 1e-8;
  /// While the loss rate stays above threshold, repeat the notification at
  /// most this often — the robustness countermeasure for a lossy/flaky
  /// control plane (a dropped notification is retried instead of lost
  /// forever). 0 = notify exactly once per link (the original behaviour).
  SimTime renotify_period = 0;
  /// Time-based window eviction (TAU). 0 keeps the original frame-budget-only
  /// trimming. When > 0, a poll sample is evicted once it is *at least* this
  /// old (eviction triggers exactly at age == window_tau), and unlike the
  /// frame-budget trim this may empty the window entirely — at which point
  /// the link's loss rate is unknown, not zero (see estimate()). Estimator-
  /// backed counters (src/telemetry) want this: probe counts are small, so a
  /// frame budget alone would average over the whole run.
  SimTime window_tau = 0;
};

/// Counter source the daemon polls (the switch driver in production; the
/// port model's counters here).
struct PortCounterFn {
  std::string link_topic;  // pub-sub topic identifying the upstream link
  std::function<std::int64_t()> frames_rx_ok;
  std::function<std::int64_t()> frames_rx_all;
};

class Corruptd {
 public:
  Corruptd(Simulator& sim, const CorruptdConfig& cfg, PubSubBus& bus);

  /// Register a monitored ingress port.
  void add_port(PortCounterFn port);

  void start();
  void stop();

  /// Poll counters once (also driven periodically by start()).
  void poll(SimTime now);

  /// Current estimated loss rate for a monitored link (by topic).
  /// Returns 0.0 when the window is empty — prefer estimate() for consumers
  /// that must distinguish "no loss" from "no information".
  double loss_rate(const std::string& topic) const;

  /// The windowed estimate with its evidence. `known` is false while the
  /// window holds no frames (before the first productive poll, or after
  /// window_tau evicted everything): an empty window means the daemon knows
  /// nothing, and reporting 0% loss would mask a dead counter source.
  struct WindowEstimate {
    double rate = 0.0;
    bool known = false;
    std::int64_t frames = 0;  // frames in the window (the denominator)
    SimTime age = -1;         // now - newest sample in the window; -1 unknown
  };
  WindowEstimate estimate(const std::string& topic) const;
  std::int64_t polls() const { return polls_; }
  std::int64_t stalled_polls() const { return stalled_polls_; }

  /// Fault injection: while stalled, the poll timer still fires but the
  /// driver does not respond — no counters are read, no loss estimate is
  /// updated, nothing is published (a monitor-blind interval). When the
  /// stall clears, the next successful poll reads the cumulative counters,
  /// so the whole blind window arrives as one large delta.
  void set_counter_stall(bool stalled) { stalled_ = stalled; }
  bool counter_stalled() const { return stalled_; }

 private:
  struct Window {
    struct Sample {
      std::int64_t ok;
      std::int64_t all;
      SimTime at;  // poll time the delta was read (drives window_tau)
    };
    std::deque<Sample> deltas;  // per-poll deltas
    std::int64_t last_ok = 0;
    std::int64_t last_all = 0;
    std::int64_t win_ok = 0;
    std::int64_t win_all = 0;
    bool notified = false;
    SimTime last_notify = 0;
  };

  Simulator& sim_;
  CorruptdConfig cfg_;
  PubSubBus& bus_;
  std::vector<PortCounterFn> ports_;
  std::vector<Window> windows_;
  std::unique_ptr<PeriodicTask> task_;
  std::int64_t polls_ = 0;
  std::int64_t stalled_polls_ = 0;
  bool stalled_ = false;
};

/// Wires a Corruptd notification to LinkGuardian activation: on first
/// notification for the topic, enables LG on the provided link with the
/// retransmission copy count from Eq. 2 (returned for inspection).
struct ActivationRecord {
  std::string topic;
  double measured_loss = 0.0;
  int retx_copies = 0;
  SimTime at = 0;
};

class LgActivator {
 public:
  LgActivator(PubSubBus& bus, double target_loss_rate)
      : bus_(bus), target_(target_loss_rate) {}

  /// Subscribe to `topic`; on notification run `activate(copies)`.
  void watch(const std::string& topic, std::function<void(int)> activate) {
    bus_.subscribe(topic, [this, activate = std::move(activate),
                           topic](const PubSubBus::Notification& n) {
      const int copies = lg::retx_copies(n.loss_rate, target_);
      records_.push_back({topic, n.loss_rate, copies, n.at});
      obs::emit(n.at, obs::Cat::kMonitor, obs::Kind::kActivate,
                obs::intern_actor(topic),
                static_cast<std::int64_t>(n.loss_rate * 1e9), copies);
      activate(copies);
    });
  }

  const std::vector<ActivationRecord>& records() const { return records_; }

 private:
  PubSubBus& bus_;
  double target_;
  std::vector<ActivationRecord> records_;
};

}  // namespace lgsim::monitor
