// Fabric-scale hybrid-fidelity traffic engine (ROADMAP item 2).
//
// Generates flows from the workload::Workload size distributions and the
// workload::ArrivalSpec per-host arrival processes, places them on a
// fabric::FabricTopology under a corruption *scenario* (CorrOpt-only vs
// CorrOpt+LinkGuardian handling of a batch of corrupting links), and
// simulates them at one of three fidelities:
//
//   kHybrid (default): flows whose ECMP path crosses a corrupting link that
//     CorrOpt could not disable ("victim flows") run packet-by-packet through
//     the real transport + LinkGuardian stack (harness::run_fct with the
//     scenario's loss rate and protection); everything else ("background")
//     goes through the analytic traffic::FluidModel. This is the packet/flow
//     split hybrid fabric simulators use to reach datacenter scale.
//   kAllPacket: background flows run packet-level too (grouped by hop
//     count, loss-free paths). Small-scale reference mode; victim-flow
//     results are bit-identical to kHybrid by construction — the
//     golden/differential anchor (tests/traffic_test.cc, bench_traffic
//     --smoke).
//   kFluidOnly: victims also go through the fluid model, eating recovery
//     penalties sampled from the scenario's residual-loss rates. Scaling
//     sanity mode.
//
// Determinism contract (the ParallelRunner one): the run is sharded into
// {seed x time-slice} cells; each cell draws every flow attribute from
// per-(seed, slice, host) RNG streams (workload::stream_rng) and victim
// packet simulations from per-(seed, slice, link) seeds, so the merged
// TrafficResult is byte-identical for any LGSIM_BENCH_JOBS. Flow *generation*
// draws an identical RNG sequence at every fidelity, which is what makes the
// victim sets — and hence the differential test — line up across modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/topology.h"
#include "harness/fct.h"
#include "obs/metrics.h"
#include "traffic/fluid.h"
#include "util/stats.h"
#include "util/units.h"
#include "workload/arrivals.h"
#include "workload/flow_sizes.h"

namespace lgsim::traffic {

/// How corrupting links that CorrOpt cannot disable are handled — the two
/// arms of the paper's §4.8 deployment comparison.
enum class Scheme : std::uint8_t { kCorrOptOnly, kCorrOptLg };
enum class Fidelity : std::uint8_t { kHybrid, kAllPacket, kFluidOnly };

const char* scheme_name(Scheme s);
const char* fidelity_name(Fidelity f);

struct EngineConfig {
  fabric::TopologyConfig topo;
  std::int32_t hosts_per_tor = 4;
  workload::Workload workload = workload::Workload::kGoogleAllRpc;
  workload::ArrivalSpec arrivals;
  harness::Transport transport = harness::Transport::kDctcp;
  /// Fabric link speed; also the victim testbed-path rate.
  BitRate link_rate = gbps(100);
  /// Simulated horizon per seed, partitioned into `slices` cells.
  double duration_sec = 0.001;
  std::int32_t slices = 4;
  std::vector<std::uint64_t> seeds = {1};

  Scheme scheme = Scheme::kCorrOptLg;
  Fidelity fidelity = Fidelity::kHybrid;

  // --- corruption scenario --------------------------------------------
  /// Number of simultaneously corrupting links (a snapshot of the §4.8
  /// deployment sim's steady state, not a year-long trace).
  std::int32_t corrupting_links = 8;
  /// CorrOpt fast-checker capacity constraint (least paths per ToR floor).
  double capacity_constraint = 0.75;
  double lg_target_loss = 1e-8;
  std::uint64_t scenario_seed = 99;
  /// > 0 forces every corrupting link to this loss rate instead of sampling
  /// the Table 1 buckets (smoke tests want victims that visibly hurt).
  double forced_loss_rate = 0.0;

  // --- fidelity knobs --------------------------------------------------
  /// Per-cell budget of packet-level victim flows; overflow falls back to
  /// the fluid model with the link's residual loss (counted separately).
  /// The same budget independently caps kAllPacket background flows.
  std::int64_t max_packet_flows_per_cell = 4096;
  FluidConfig fluid;

  // --- intra-run sharding (DESIGN.md §15) ------------------------------
  /// > 1 partitions each cell's fabric into contiguous pod blocks and runs
  /// them as sim::ShardedSimulator shards coupled by boundary channels
  /// (clamped to the pod count). Results are byte-identical to shards == 1
  /// — the shard-identity tests pin it — so this is a wall-clock knob only.
  std::int32_t shards = 1;
  /// Worker threads inside a sharded cell: 0 sizes from the shared core
  /// budget (util/cores.h); any value produces identical bytes.
  std::int32_t shard_workers = 0;
};

/// A corrupting link CorrOpt had to keep active (the victim-making links).
struct HotLink {
  std::int64_t id = 0;
  double loss_rate = 0.0;
  /// Loss the transport actually sees: raw under CorrOpt-only, the Eq. 1
  /// residual min(p, p^(n+1)) under CorrOpt+LG.
  double residual = 0.0;
  bool lg = false;
};

struct TrafficResult {
  // Flow accounting. generated == completed + stranded;
  // completed == packet_flows + fluid_flows.
  std::int64_t generated = 0;
  std::int64_t completed = 0;
  std::int64_t stranded = 0;
  std::int64_t victims = 0;
  std::int64_t packet_flows = 0;
  std::int64_t fluid_flows = 0;
  /// Victims simulated fluid-side because the per-cell packet budget filled.
  std::int64_t victim_fluid_fallback = 0;

  // Scenario summary.
  std::vector<HotLink> hot_links;
  std::int64_t disabled_links = 0;

  lgsim::PercentileTracker fct_victim_us;
  lgsim::PercentileTracker fct_bg_us;

  double sim_hours = 0.0;
  double flows_per_sim_hour() const {
    return sim_hours > 0 ? static_cast<double>(generated) / sim_hours : 0.0;
  }
  double p_victim(double p) const { return fct_victim_us.percentile(p); }
  double p_bg(double p) const { return fct_bg_us.percentile(p); }
  /// Percentile over victim + background together.
  double p_all(double p) const;

  /// Writes the traffic.* counters/distributions (see DESIGN.md §8 table).
  void export_metrics(obs::MetricsRegistry& m) const;
};

/// Runs the full {seeds x slices} cell grid. jobs == 0 uses
/// harness::bench_jobs() (LGSIM_BENCH_JOBS); any value merges to the same
/// bytes.
TrafficResult run_traffic(const EngineConfig& cfg, unsigned jobs = 0);

}  // namespace lgsim::traffic
