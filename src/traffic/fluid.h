// Analytic (fluid) flow-completion-time model for background traffic.
//
// The hybrid-fidelity engine simulates victim flows (those crossing a
// corrupting link) packet by packet through the real transport + LinkGuardian
// stack, and everything else with this closed-form model — the packet/flow
// split that hybrid fabric simulators (P4sim et al.) use to reach fabric
// scale. The model mirrors the packet path's timing structure:
//
//   rtt   = 2 * (host_delay + hops * per_hop_latency) + frame serialization,
//           inflated by an M/M/1-style load term per traversed queue;
//   FCT   = slow-start rounds (cwnd doubling from init_cwnd, capped at the
//           bandwidth-delay product, each round costing max(rtt, send time))
//           + the residual serialization once the window saturates;
//   loss  = with probability 1-(1-p)^frames the flow eats one recovery:
//           an RTO (rto_min) when the loss cannot be repaired by fast
//           retransmit (short flow, or tail loss ~ 3/n_segs), else one
//           extra round trip — the corruption-induced penalty sampled from
//           the scenario's residual-loss rates.
//
// The constants default to the packet path's (TcpConfig / PathConfig), so
// no-loss fluid FCTs land in the same decade as the packet reference;
// tests/traffic_test.cc pins a coarse agreement band. Victim-flow accuracy
// never depends on this model — that is the whole point of the hybrid split.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/random.h"
#include "util/units.h"

namespace lgsim::traffic {

struct FluidConfig {
  /// Per-endpoint host-stack delay (both ends contribute per direction).
  SimTime host_delay = usec(12);
  /// Fixed one-way latency per traversed switch-to-switch link (switch
  /// pipeline + NIC/fiber propagation).
  SimTime per_hop_latency = nsec(700);
  std::int32_t mss = 1448;
  std::int32_t header_bytes = 70;
  double init_cwnd_segs = 10.0;
  SimTime rto_min = msec(1);
  /// Average utilization of fabric queues; drives the queueing-delay term.
  double load = 0.1;
};

class FluidModel {
 public:
  FluidModel(const FluidConfig& cfg, BitRate rate) : cfg_(cfg), rate_(rate) {
    frame_ns_ = static_cast<double>(
        serialization_time(cfg.mss + cfg.header_bytes, rate));
    const double rho = std::clamp(cfg.load, 0.0, 0.95);
    queue_ns_per_hop_ = rho / (1.0 - rho) * frame_ns_;
  }

  /// FCT in nanoseconds for one flow of `bytes` over `n_links` fabric links
  /// with residual loss rate `loss` on the path. Draws at most two uniforms
  /// from `rng` (loss Bernoulli + recovery-kind Bernoulli).
  double fct_ns(std::int64_t bytes, std::int32_t n_links, double loss,
                Rng& rng) const {
    const auto n_segs = std::max<std::int64_t>(
        1, (bytes + cfg_.mss - 1) / cfg_.mss);
    const double rtt =
        2.0 * (static_cast<double>(cfg_.host_delay) +
               n_links * (static_cast<double>(cfg_.per_hop_latency) +
                          queue_ns_per_hop_)) +
        frame_ns_;

    // Slow start: rounds of doubling until the window covers the BDP (after
    // which the transfer is serialization-limited) or the flow ends.
    const double bdp_segs = std::max(1.0, rtt / frame_ns_);
    double t = 0.0;
    double cwnd = cfg_.init_cwnd_segs;
    std::int64_t sent = 0;
    while (sent < n_segs) {
      const double in_round =
          std::min<double>(cwnd, static_cast<double>(n_segs - sent));
      t += std::max(rtt, in_round * frame_ns_);
      sent += static_cast<std::int64_t>(in_round);
      if (cwnd >= bdp_segs) {
        // Window saturated: everything left streams at line rate.
        t += static_cast<double>(n_segs - sent) * frame_ns_;
        break;
      }
      cwnd = std::min(cwnd * 2.0, bdp_segs);
    }

    if (loss > 0.0) {
      const double p_any =
          -std::expm1(static_cast<double>(n_segs) * std::log1p(-loss));
      if (rng.bernoulli(p_any)) {
        // Fast retransmit needs >= 3 dupacks after the hole: impossible for
        // very short flows, and a tail loss (~3 trailing segments) also
        // falls back to the timer.
        const bool rto = n_segs < 4 || rng.bernoulli(3.0 / static_cast<double>(n_segs));
        t += rto ? static_cast<double>(cfg_.rto_min) : rtt;
      }
    }
    return t;
  }

 private:
  FluidConfig cfg_;
  BitRate rate_;
  double frame_ns_ = 0.0;
  double queue_ns_per_hop_ = 0.0;
};

}  // namespace lgsim::traffic
