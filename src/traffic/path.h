// ECMP-style path resolution on the Facebook-fabric topology for the
// fabric-scale traffic engine.
//
// Hosts are numbered pod-major: host = (pod * tors_per_pod + tor) *
// hosts_per_tor + h. A flow's path is the sequence of optical
// switch-to-switch links it crosses (the links FabricTopology models; host
// NIC and intra-switch hops are timing terms, not Link records):
//   same ToR:   0 links;
//   intra-pod:  srcToR->fabric f, fabric f->dstToR                (2 links);
//   inter-pod:  srcToR->fabric f, fabric f->spine s,
//               spine s->dstPod fabric f, fabric f->dstToR        (4 links).
// Valley-free routing pins the fabric index (= spine plane) and spine index
// across both pods, exactly the path structure paths_per_tor() counts.
//
// ECMP: the flow's hash picks the starting (fabric, spine) candidate; the
// resolver probes candidates in a fixed wrap-around order and returns the
// first one whose links are all administratively up — a deterministic stand-in
// for hash-based spraying that, like real ECMP, spreads flows uniformly and
// never routes over a disabled link. CorrOpt-disabled links are thereby
// routed around (their capacity cost shows up as fewer ECMP choices); links
// it could NOT disable stay in the candidate set corrupting — crossing one
// makes the flow a *victim*. A (src, dst) pair with no up path is *stranded*.
#pragma once

#include <array>
#include <cstdint>

#include "fabric/topology.h"

namespace lgsim::traffic {

struct PathInfo {
  std::array<std::int64_t, 4> links{};  // link ids, [0, n_links) valid
  std::int32_t n_links = 0;
  bool ok = false;
};

class PathResolver {
 public:
  PathResolver(const fabric::FabricTopology& topo, std::int32_t hosts_per_tor)
      : topo_(topo), hosts_per_tor_(hosts_per_tor) {}

  std::int64_t n_hosts() const {
    const auto& c = topo_.config();
    return static_cast<std::int64_t>(c.pods) * c.tors_per_pod * hosts_per_tor_;
  }
  std::int32_t pod_of(std::int64_t host) const {
    const auto& c = topo_.config();
    return static_cast<std::int32_t>(host / (static_cast<std::int64_t>(c.tors_per_pod) * hosts_per_tor_));
  }
  std::int32_t tor_of(std::int64_t host) const {
    const auto& c = topo_.config();
    return static_cast<std::int32_t>(host / hosts_per_tor_ % c.tors_per_pod);
  }

  /// Resolves src->dst under ECMP hash `hash`. Pure const query (thread-safe
  /// on a shared topology: touches no mutable caches).
  PathInfo resolve(std::int64_t src, std::int64_t dst,
                   std::uint64_t hash) const {
    const auto& c = topo_.config();
    PathInfo p;
    const std::int32_t sp = pod_of(src), st = tor_of(src);
    const std::int32_t dp = pod_of(dst), dt = tor_of(dst);

    if (sp == dp && st == dt) {  // same ToR: never touches a fabric link
      p.ok = true;
      return p;
    }

    const std::int32_t F = c.fabrics_per_pod;
    const std::int32_t S = c.spines_per_plane;
    const auto f0 = static_cast<std::int32_t>(hash % static_cast<std::uint64_t>(F));

    if (sp == dp) {  // intra-pod: any fabric switch with both ToR links up
      for (std::int32_t i = 0; i < F; ++i) {
        const std::int32_t f = (f0 + i) % F;
        const std::int64_t up1 = topo_.tor_fabric_link(sp, st, f);
        const std::int64_t dn1 = topo_.tor_fabric_link(sp, dt, f);
        if (topo_.link(up1).up && topo_.link(dn1).up) {
          p.links = {up1, dn1, 0, 0};
          p.n_links = 2;
          p.ok = true;
          return p;
        }
      }
      return p;  // stranded
    }

    // Inter-pod: fabric plane f and spine s must be up end to end.
    const auto s0 =
        static_cast<std::int32_t>((hash >> 16) % static_cast<std::uint64_t>(S));
    for (std::int32_t i = 0; i < F; ++i) {
      const std::int32_t f = (f0 + i) % F;
      const std::int64_t up1 = topo_.tor_fabric_link(sp, st, f);
      const std::int64_t dn1 = topo_.tor_fabric_link(dp, dt, f);
      if (!topo_.link(up1).up || !topo_.link(dn1).up) continue;
      for (std::int32_t j = 0; j < S; ++j) {
        const std::int32_t s = (s0 + j) % S;
        const std::int64_t up2 = topo_.fabric_spine_link(sp, f, s);
        const std::int64_t dn2 = topo_.fabric_spine_link(dp, f, s);
        if (topo_.link(up2).up && topo_.link(dn2).up) {
          p.links = {up1, up2, dn2, dn1};
          p.n_links = 4;
          p.ok = true;
          return p;
        }
      }
    }
    return p;  // stranded
  }

 private:
  const fabric::FabricTopology& topo_;
  std::int32_t hosts_per_tor_;
};

}  // namespace lgsim::traffic
