#include "traffic/engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "corropt/corropt.h"
#include "fabric/partition.h"
#include "harness/parallel.h"
#include "obs/trace.h"
#include "sim/shard.h"
#include "traffic/path.h"

namespace lgsim::traffic {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kCorrOptOnly: return "CorrOpt";
    case Scheme::kCorrOptLg: return "CorrOpt+LG";
  }
  return "?";
}

const char* fidelity_name(Fidelity f) {
  switch (f) {
    case Fidelity::kHybrid: return "hybrid";
    case Fidelity::kAllPacket: return "all-packet";
    case Fidelity::kFluidOnly: return "fluid-only";
  }
  return "?";
}

namespace {

/// The corruption scenario: one topology snapshot shared (read-only) by all
/// cells. Built single-threaded; cells only issue const path queries.
struct Scenario {
  fabric::FabricTopology topo;
  std::vector<HotLink> hot;            // ascending link id
  std::vector<std::int32_t> hot_index; // link id -> index into hot, or -1
  std::int64_t disabled = 0;

  explicit Scenario(const fabric::TopologyConfig& tc) : topo(tc) {}
};

Scenario build_scenario(const EngineConfig& cfg) {
  Scenario sc(cfg.topo);
  Rng rng(cfg.scenario_seed);

  // Draw distinct corrupting links. Rejection sampling on the uniform link id
  // is deterministic (fixed RNG stream, fixed iteration order).
  const std::int64_t n_links = sc.topo.n_links();
  const std::int64_t want =
      std::min<std::int64_t>(cfg.corrupting_links, n_links);
  std::vector<std::uint8_t> picked(static_cast<std::size_t>(n_links), 0);
  std::vector<std::int64_t> ids;
  ids.reserve(static_cast<std::size_t>(want));
  while (static_cast<std::int64_t>(ids.size()) < want) {
    const auto id = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(n_links)));
    if (picked[static_cast<std::size_t>(id)]) continue;
    picked[static_cast<std::size_t>(id)] = 1;
    ids.push_back(id);
  }

  // CorrOpt decision per link, in draw order (mirrors corruption onsets
  // arriving one by one; earlier disables constrain later fast checks).
  for (const std::int64_t id : ids) {
    const double loss = cfg.forced_loss_rate > 0.0 ? cfg.forced_loss_rate
                                                   : corropt::sample_loss_rate(rng);
    sc.topo.apply({fabric::LinkTransition::Kind::kCorrupt, id, loss, 1.0});
    if (sc.topo.can_disable(id, cfg.capacity_constraint)) {
      sc.topo.apply({fabric::LinkTransition::Kind::kDisable, id, 0.0, 1.0});
      ++sc.disabled;
      continue;
    }
    HotLink h;
    h.id = id;
    h.loss_rate = loss;
    h.residual = loss;
    if (cfg.scheme == Scheme::kCorrOptLg) {
      sc.topo.apply({fabric::LinkTransition::Kind::kEnableLg, id, 0.0,
                     corropt::lg_effective_speed(loss)});
      const int n = lg::retx_copies(loss, cfg.lg_target_loss);
      h.residual = std::min(loss, std::pow(loss, n + 1));
      h.lg = true;
    }
    sc.hot.push_back(h);
  }
  std::sort(sc.hot.begin(), sc.hot.end(),
            [](const HotLink& a, const HotLink& b) { return a.id < b.id; });
  sc.hot_index.assign(static_cast<std::size_t>(n_links), -1);
  for (std::size_t i = 0; i < sc.hot.size(); ++i) {
    sc.hot_index[static_cast<std::size_t>(sc.hot[i].id)] =
        static_cast<std::int32_t>(i);
  }
  return sc;
}

struct CellJob {
  const EngineConfig* cfg = nullptr;
  const Scenario* sc = nullptr;
  const fabric::PodPartition* part = nullptr;  // shards > 1 only
  std::uint64_t seed = 0;
  std::int32_t slice = 0;
};

/// A flow committed to a packet-level replay group.
struct PendingFlow {
  std::int64_t bytes;
  std::uint64_t aux;
};

struct CellOut {
  std::int64_t generated = 0;
  std::int64_t stranded = 0;
  std::int64_t victims = 0;
  std::int64_t packet_flows = 0;
  std::int64_t fluid_flows = 0;
  std::int64_t victim_fluid_fallback = 0;
  lgsim::PercentileTracker victim_us;
  lgsim::PercentileTracker bg_us;
};

/// Extra one-way latency folded into the victim testbed path per fabric link
/// beyond the first (switch pipeline + fiber, matching FluidConfig's
/// per-hop term).
constexpr SimTime kExtraHopLatency = nsec(700);

CellOut run_cell(const CellJob& job) {
  const EngineConfig& cfg = *job.cfg;
  const Scenario& sc = *job.sc;
  CellOut out;

  const PathResolver resolver(sc.topo, cfg.hosts_per_tor);
  const std::int64_t n_hosts = resolver.n_hosts();
  const auto dist = workload::FlowSizeDistribution::make(cfg.workload);
  const double mean_bytes = dist.mean_bytes();

  FluidConfig fl = cfg.fluid;
  fl.load = cfg.arrivals.load_fraction;
  if (cfg.transport == harness::Transport::kRdmaWrite) fl.host_delay = usec(6);
  const FluidModel fluid(fl, cfg.link_rate);

  const double slice_dur = cfg.duration_sec / cfg.slices;
  const double t1 = (job.slice + 1) * slice_dur;
  const double t0 = job.slice * slice_dur;

  // Deterministically ordered packet-flow groups: victims keyed by
  // (hot link, hop count), all-packet background by hop count.
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<PendingFlow>>
      victim_groups;
  std::map<std::int32_t, std::vector<PendingFlow>> bg_groups;
  std::int64_t victim_packet_budget = cfg.max_packet_flows_per_cell;
  std::int64_t bg_packet_budget = cfg.max_packet_flows_per_cell;

  for (std::int64_t host = 0; host < n_hosts; ++host) {
    Rng hr = workload::stream_rng(job.seed, static_cast<std::uint64_t>(job.slice),
                                  static_cast<std::uint64_t>(host));
    workload::ArrivalProcess arrivals(cfg.arrivals, mean_bytes, hr.split());
    double t = t0 + arrivals.next_gap_sec();
    while (t < t1) {
      ++out.generated;
      const std::int64_t bytes = dist.sample(hr);
      std::int64_t dst = static_cast<std::int64_t>(
          hr.uniform_int(static_cast<std::uint64_t>(n_hosts - 1)));
      if (dst >= host) ++dst;
      const std::uint64_t hash = hr.next_u64();
      const std::uint64_t aux = hr.next_u64();

      const PathInfo path = resolver.resolve(host, dst, hash);
      if (!path.ok) {
        ++out.stranded;
        t += arrivals.next_gap_sec();
        continue;
      }

      std::int32_t hot_idx = -1;
      for (std::int32_t i = 0; i < path.n_links; ++i) {
        const std::int32_t h =
            sc.hot_index[static_cast<std::size_t>(path.links[i])];
        if (h >= 0) {
          hot_idx = h;
          break;
        }
      }
      if (hot_idx >= 0) ++out.victims;

      bool packetize = false;
      if (hot_idx >= 0) {
        // Victim: packet-level unless fluid-only, within the cell budget.
        if (cfg.fidelity != Fidelity::kFluidOnly && victim_packet_budget > 0) {
          packetize = true;
          --victim_packet_budget;
        } else if (cfg.fidelity != Fidelity::kFluidOnly) {
          ++out.victim_fluid_fallback;
        }
      } else if (cfg.fidelity == Fidelity::kAllPacket && bg_packet_budget > 0) {
        packetize = true;
        --bg_packet_budget;
      }

      if (packetize) {
        if (hot_idx >= 0) {
          victim_groups[{hot_idx, path.n_links}].push_back({bytes, aux});
        } else {
          bg_groups[path.n_links].push_back({bytes, aux});
        }
      } else {
        Rng fr(aux);
        const double loss = hot_idx >= 0 ? sc.hot[hot_idx].residual : 0.0;
        const double fct_ns = fluid.fct_ns(bytes, path.n_links, loss, fr);
        (hot_idx >= 0 ? out.victim_us : out.bg_us).add(fct_ns / 1000.0);
        ++out.fluid_flows;
      }
      t += arrivals.next_gap_sec();
    }
  }

  // Packet-level runs. One harness::run_fct per group replays the group's
  // flow sizes back-to-back over the testbed path standing in for the
  // scenario link; hops beyond the first contribute fixed latency.
  auto run_group = [&](const std::vector<PendingFlow>& flows,
                       std::int32_t hot_idx, std::int32_t n_links,
                       lgsim::PercentileTracker& into) {
    harness::FctConfig fc;
    fc.transport = cfg.transport;
    fc.rate = cfg.link_rate;
    fc.path.lg.target_loss_rate = cfg.lg_target_loss;
    fc.path.link.prop_delay +=
        kExtraHopLatency * std::max<std::int32_t>(0, n_links - 1);
    if (hot_idx >= 0) {
      const HotLink& h = sc.hot[hot_idx];
      fc.protection =
          h.lg ? harness::Protection::kLg : harness::Protection::kLossOnly;
      fc.loss_rate = h.loss_rate;
    } else {
      fc.protection = harness::Protection::kNoLoss;
      fc.loss_rate = 0.0;
    }
    fc.trial_bytes.reserve(flows.size());
    for (const PendingFlow& f : flows) fc.trial_bytes.push_back(f.bytes);
    // Domain-separated from the generation streams via the tag in `cell`.
    fc.seed = workload::mix_stream(
        job.seed,
        0x5eedf10c00000000ULL | static_cast<std::uint64_t>(job.slice),
        (static_cast<std::uint64_t>(hot_idx + 1) << 8) |
            static_cast<std::uint64_t>(n_links));
    const harness::FctResult r = harness::run_fct(fc);
    into.merge(r.fct_us);
    out.packet_flows += static_cast<std::int64_t>(flows.size());
  };

  for (const auto& [key, flows] : victim_groups) {
    run_group(flows, key.first, key.second, out.victim_us);
  }
  for (const auto& [n_links, flows] : bg_groups) {
    run_group(flows, -1, n_links, out.bg_us);
  }

  if (obs::TraceSink* sink = obs::current_sink()) {
    obs::MetricsRegistry& m = sink->metrics();
    m.counter("traffic.flows_generated") += out.generated;
    m.counter("traffic.flows_completed") +=
        out.generated - out.stranded;
    m.counter("traffic.flows_stranded") += out.stranded;
    m.counter("traffic.flows_victim") += out.victims;
    m.counter("traffic.flows_packet") += out.packet_flows;
    m.counter("traffic.flows_fluid") += out.fluid_flows;
    m.counter("traffic.victim_fluid_fallback") += out.victim_fluid_fallback;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sharded cell (EngineConfig::shards > 1, DESIGN.md §15).
//
// The cell's fabric is partitioned into contiguous pod blocks
// (fabric::PodPartition); each block gets its own shard Simulator driving its
// hosts' arrival processes as events, and the shards advance concurrently
// under sim::ShardedSimulator's conservative windowed sync. A flow whose
// path crosses a hot link owned by *another* shard is handed to that shard
// as a boundary frame — the cross-shard traffic the runtime exists for.
//
// Determinism (byte-identical to the unsharded cell, any shard/worker
// count) rests on three invariants:
//   1. Flow attributes come from the same per-(seed, slice, host) RNG
//      streams consumed in the same per-host order, so the flow population
//      is identical by construction.
//   2. The cell-global packet budgets are NOT consumed at generation time
//      (shards race for them); instead every budget-eligible flow becomes a
//      Candidate, and after the shards quiesce the candidates are resolved
//      in canonical (host, per-host index) order — exactly the host-major
//      order the unsharded cell consumes the budgets in. Packetize
//      decisions never feed back into the generators' RNG streams, which is
//      what makes deferred resolution legal.
//   3. Everything downstream consumes samples order-insensitively
//      (PercentileTracker sorts on query), and replay groups — whose
//      harness::run_fct results DO depend on trial order — are rebuilt from
//      the canonically sorted candidates, reproducing the unsharded group
//      contents element for element.

/// Conservative lookahead window: one inter-pod hop of propagation latency,
/// the minimum time a flow handed to another pod block's shard is in flight.
constexpr SimTime kShardWindow = kExtraHopLatency;

/// One flow whose packet/fluid decision depends on a cell-global budget;
/// resolved after the shards quiesce in canonical (host, idx) order.
struct Candidate {
  std::int64_t host = 0;
  std::int64_t idx = 0;  // per-host generation index
  std::int64_t bytes = 0;
  std::uint64_t aux = 0;
  std::int32_t hot_idx = -1;  // -1: background (kAllPacket only)
  std::int32_t n_links = 0;
};

/// One host's arrival-process generator state, advanced by its own events.
struct HostGen {
  Rng hr;
  workload::ArrivalProcess arrivals;
  double t = 0.0;  // absolute seconds; event time = (t - t0) * 1e9
  std::int64_t idx = 0;
  std::int64_t host = 0;
};

struct ShardCtx {
  std::int32_t s = 0;
  std::vector<HostGen> hosts;  // stable addresses once seeded
  std::int64_t generated = 0;
  std::int64_t stranded = 0;
  std::int64_t victims = 0;
  std::int64_t fluid_flows = 0;
  lgsim::PercentileTracker victim_us;
  lgsim::PercentileTracker bg_us;
  std::vector<Candidate> victim_cands;  // owned by this shard's hot links
  std::vector<Candidate> bg_cands;      // kAllPacket background
};

/// Read-only cell state shared by every shard's events.
struct CellShared {
  const EngineConfig* cfg = nullptr;
  const Scenario* sc = nullptr;
  const PathResolver* resolver = nullptr;
  const workload::FlowSizeDistribution* dist = nullptr;
  const FluidModel* fluid = nullptr;
  sim::ShardedSimulator* ss = nullptr;
  std::vector<ShardCtx>* shards = nullptr;
  std::vector<std::int32_t> hot_owner;  // hot index -> owning shard
  double t0 = 0.0;
  double t1 = 0.0;
};

/// Generates one flow for host `g` (same draw order as the unsharded cell:
/// bytes, dst, hash, aux) and schedules the host's next arrival.
void step_host(CellShared& cs, ShardCtx& ctx, HostGen& g) {
  const EngineConfig& cfg = *cs.cfg;
  const Scenario& sc = *cs.sc;
  ++ctx.generated;
  const std::int64_t n_hosts = cs.resolver->n_hosts();
  const std::int64_t bytes = cs.dist->sample(g.hr);
  std::int64_t dst = static_cast<std::int64_t>(
      g.hr.uniform_int(static_cast<std::uint64_t>(n_hosts - 1)));
  if (dst >= g.host) ++dst;
  const std::uint64_t hash = g.hr.next_u64();
  const std::uint64_t aux = g.hr.next_u64();
  const std::int64_t idx = g.idx++;

  const PathInfo path = cs.resolver->resolve(g.host, dst, hash);
  if (!path.ok) {
    ++ctx.stranded;
  } else {
    std::int32_t hot_idx = -1;
    for (std::int32_t i = 0; i < path.n_links; ++i) {
      const std::int32_t h =
          sc.hot_index[static_cast<std::size_t>(path.links[i])];
      if (h >= 0) {
        hot_idx = h;
        break;
      }
    }
    if (hot_idx >= 0) {
      ++ctx.victims;
      if (cfg.fidelity == Fidelity::kFluidOnly) {
        Rng fr(aux);
        ctx.victim_us.add(cs.fluid->fct_ns(bytes, path.n_links,
                                           sc.hot[hot_idx].residual, fr) /
                          1000.0);
        ++ctx.fluid_flows;
      } else {
        const Candidate cand{g.host, idx, bytes, aux, hot_idx, path.n_links};
        const std::int32_t owner =
            cs.hot_owner[static_cast<std::size_t>(hot_idx)];
        if (owner == ctx.s) {
          ctx.victim_cands.push_back(cand);
        } else {
          // The flow's packets cross the hot link in the owner's pod block:
          // hand it over as a boundary frame, one lookahead window out.
          ShardCtx* octx = &(*cs.shards)[static_cast<std::size_t>(owner)];
          cs.ss->post(ctx.s, owner,
                      cs.ss->shard(ctx.s).now() + cs.ss->window(),
                      [cand, octx] { octx->victim_cands.push_back(cand); });
        }
      }
    } else if (cfg.fidelity == Fidelity::kAllPacket) {
      ctx.bg_cands.push_back({g.host, idx, bytes, aux, -1, path.n_links});
    } else {
      Rng fr(aux);
      ctx.bg_us.add(cs.fluid->fct_ns(bytes, path.n_links, 0.0, fr) / 1000.0);
      ++ctx.fluid_flows;
    }
  }

  g.t += g.arrivals.next_gap_sec();
  if (g.t < cs.t1) {
    cs.ss->shard(ctx.s).schedule_at(
        static_cast<SimTime>((g.t - cs.t0) * 1e9),
        [csp = &cs, cp = &ctx, gp = &g] { step_host(*csp, *cp, *gp); });
  }
}

CellOut run_cell_sharded(const CellJob& job) {
  const EngineConfig& cfg = *job.cfg;
  const Scenario& sc = *job.sc;
  const fabric::PodPartition& part = *job.part;
  CellOut out;

  const PathResolver resolver(sc.topo, cfg.hosts_per_tor);
  const auto dist = workload::FlowSizeDistribution::make(cfg.workload);
  const double mean_bytes = dist.mean_bytes();

  FluidConfig fl = cfg.fluid;
  fl.load = cfg.arrivals.load_fraction;
  if (cfg.transport == harness::Transport::kRdmaWrite) fl.host_delay = usec(6);
  const FluidModel fluid(fl, cfg.link_rate);

  const double slice_dur = cfg.duration_sec / cfg.slices;
  const double t0 = job.slice * slice_dur;
  const double t1 = (job.slice + 1) * slice_dur;

  const std::int32_t K = part.n_shards();
  const unsigned workers =
      cfg.shard_workers > 0 ? static_cast<unsigned>(cfg.shard_workers) : 0;
  sim::ShardedSimulator ss(K, kShardWindow);
  if (K > 1) ss.connect_all(kShardWindow);

  std::vector<ShardCtx> shards(static_cast<std::size_t>(K));
  CellShared cs;
  cs.cfg = &cfg;
  cs.sc = &sc;
  cs.resolver = &resolver;
  cs.dist = &dist;
  cs.fluid = &fluid;
  cs.ss = &ss;
  cs.shards = &shards;
  cs.t0 = t0;
  cs.t1 = t1;
  cs.hot_owner.reserve(sc.hot.size());
  for (const HotLink& h : sc.hot)
    cs.hot_owner.push_back(part.shard_of_link(sc.topo.link(h.id)));

  // Per-shard sinks when this cell is traced: window execution happens on
  // shard workers, so emissions must not race on the cell's sink. Absorbed
  // into it in shard order below — a scheduling-independent merge.
  obs::TraceSink* cell_sink = obs::current_sink();
  std::vector<std::unique_ptr<obs::TraceSink>> shard_sinks;
  if (cell_sink != nullptr) {
    for (std::int32_t s = 0; s < K; ++s) {
      shard_sinks.push_back(
          std::make_unique<obs::TraceSink>("shard " + std::to_string(s)));
      ss.set_shard_sink(s, shard_sinks.back().get());
    }
  }

  // Seed every host's generator with its first arrival. Draw order per host
  // is identical to the unsharded cell: stream rng, arrivals split, first
  // gap. Events are scheduled after the shard's host vector is final so the
  // HostGen addresses captured by the callbacks are stable.
  for (std::int32_t s = 0; s < K; ++s) {
    ShardCtx& ctx = shards[static_cast<std::size_t>(s)];
    ctx.s = s;
    const std::int64_t lo = part.first_host(s, cfg.topo, cfg.hosts_per_tor);
    const std::int64_t hi =
        part.first_host(s + 1, cfg.topo, cfg.hosts_per_tor);
    ctx.hosts.reserve(static_cast<std::size_t>(hi - lo));
    for (std::int64_t host = lo; host < hi; ++host) {
      Rng hr = workload::stream_rng(job.seed,
                                    static_cast<std::uint64_t>(job.slice),
                                    static_cast<std::uint64_t>(host));
      workload::ArrivalProcess arrivals(cfg.arrivals, mean_bytes, hr.split());
      const double t = t0 + arrivals.next_gap_sec();
      if (!(t < t1)) continue;  // host generates nothing this slice
      ctx.hosts.push_back(
          HostGen{std::move(hr), std::move(arrivals), t, 0, host});
    }
    for (HostGen& g : ctx.hosts) {
      ss.shard(s).schedule_at(
          static_cast<SimTime>((g.t - t0) * 1e9),
          [csp = &cs, cp = &ctx, gp = &g] { step_host(*csp, *cp, *gp); });
    }
  }

  // Horizon: every generation event fires before slice_dur, every boundary
  // frame lands one window later; +2 windows covers both with margin.
  const SimTime until =
      static_cast<SimTime>(slice_dur * 1e9) + 2 * kShardWindow;
  ss.run(until, workers);

  if (cell_sink != nullptr) {
    for (const auto& sp : shard_sinks) cell_sink->absorb(*sp);
  }

  // Fold per-shard generation outputs and gather candidates, in shard order.
  std::vector<Candidate> victim_cands;
  std::vector<Candidate> bg_cands;
  for (ShardCtx& ctx : shards) {
    out.generated += ctx.generated;
    out.stranded += ctx.stranded;
    out.victims += ctx.victims;
    out.fluid_flows += ctx.fluid_flows;
    out.victim_us.merge(ctx.victim_us);
    out.bg_us.merge(ctx.bg_us);
    victim_cands.insert(victim_cands.end(), ctx.victim_cands.begin(),
                        ctx.victim_cands.end());
    bg_cands.insert(bg_cands.end(), ctx.bg_cands.begin(),
                    ctx.bg_cands.end());
  }

  // Canonical budget resolution: (host, idx) order == the host-major order
  // the unsharded cell consumes its budgets in.
  const auto by_gen_order = [](const Candidate& a, const Candidate& b) {
    return a.host != b.host ? a.host < b.host : a.idx < b.idx;
  };
  std::sort(victim_cands.begin(), victim_cands.end(), by_gen_order);
  std::sort(bg_cands.begin(), bg_cands.end(), by_gen_order);

  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<PendingFlow>>
      victim_groups;
  std::map<std::int32_t, std::vector<PendingFlow>> bg_groups;
  std::int64_t victim_budget = cfg.max_packet_flows_per_cell;
  for (const Candidate& c : victim_cands) {
    if (victim_budget > 0) {
      --victim_budget;
      victim_groups[{c.hot_idx, c.n_links}].push_back({c.bytes, c.aux});
    } else {
      ++out.victim_fluid_fallback;
      Rng fr(c.aux);
      out.victim_us.add(
          fluid.fct_ns(c.bytes, c.n_links,
                       sc.hot[static_cast<std::size_t>(c.hot_idx)].residual,
                       fr) /
          1000.0);
      ++out.fluid_flows;
    }
  }
  std::int64_t bg_budget = cfg.max_packet_flows_per_cell;
  for (const Candidate& c : bg_cands) {
    if (bg_budget > 0) {
      --bg_budget;
      bg_groups[c.n_links].push_back({c.bytes, c.aux});
    } else {
      Rng fr(c.aux);
      out.bg_us.add(fluid.fct_ns(c.bytes, c.n_links, 0.0, fr) / 1000.0);
      ++out.fluid_flows;
    }
  }

  // Packet-level replay, fanned out over the shard worker pool. Group
  // configs and seeds match the unsharded run_group exactly; results merge
  // in canonical group order regardless of which worker ran what. When the
  // cell is traced, each group gets a local sink (run_fct's probes would
  // otherwise race on the cell sink across workers), absorbed in order.
  struct GroupJob {
    const std::vector<PendingFlow>* flows;
    std::int32_t hot_idx;
    std::int32_t n_links;
    bool victim;
  };
  std::vector<GroupJob> gjobs;
  gjobs.reserve(victim_groups.size() + bg_groups.size());
  for (const auto& [key, flows] : victim_groups)
    gjobs.push_back({&flows, key.first, key.second, true});
  for (const auto& [n_links, flows] : bg_groups)
    gjobs.push_back({&flows, -1, n_links, false});

  std::vector<harness::FctResult> gres(gjobs.size());
  std::vector<std::unique_ptr<obs::TraceSink>> group_sinks;
  if (cell_sink != nullptr) {
    group_sinks.reserve(gjobs.size());
    for (std::size_t i = 0; i < gjobs.size(); ++i)
      group_sinks.push_back(std::make_unique<obs::TraceSink>(
          "replay group " + std::to_string(i)));
  }
  sim::run_indexed(gjobs.size(), workers, [&](std::size_t i) {
    const GroupJob& gj = gjobs[i];
    harness::FctConfig fc;
    fc.transport = cfg.transport;
    fc.rate = cfg.link_rate;
    fc.path.lg.target_loss_rate = cfg.lg_target_loss;
    fc.path.link.prop_delay +=
        kExtraHopLatency * std::max<std::int32_t>(0, gj.n_links - 1);
    if (gj.hot_idx >= 0) {
      const HotLink& h = sc.hot[static_cast<std::size_t>(gj.hot_idx)];
      fc.protection =
          h.lg ? harness::Protection::kLg : harness::Protection::kLossOnly;
      fc.loss_rate = h.loss_rate;
    } else {
      fc.protection = harness::Protection::kNoLoss;
      fc.loss_rate = 0.0;
    }
    fc.trial_bytes.reserve(gj.flows->size());
    for (const PendingFlow& f : *gj.flows) fc.trial_bytes.push_back(f.bytes);
    fc.seed = workload::mix_stream(
        job.seed,
        0x5eedf10c00000000ULL | static_cast<std::uint64_t>(job.slice),
        (static_cast<std::uint64_t>(gj.hot_idx + 1) << 8) |
            static_cast<std::uint64_t>(gj.n_links));
    if (!group_sinks.empty()) {
      obs::SinkScope scope(group_sinks[i].get());
      gres[i] = harness::run_fct(fc);
    } else {
      gres[i] = harness::run_fct(fc);
    }
  });
  for (std::size_t i = 0; i < gjobs.size(); ++i) {
    (gjobs[i].victim ? out.victim_us : out.bg_us).merge(gres[i].fct_us);
    out.packet_flows += static_cast<std::int64_t>(gjobs[i].flows->size());
    if (cell_sink != nullptr) cell_sink->absorb(*group_sinks[i]);
  }

  if (obs::TraceSink* sink = obs::current_sink()) {
    obs::MetricsRegistry& m = sink->metrics();
    m.counter("traffic.flows_generated") += out.generated;
    m.counter("traffic.flows_completed") += out.generated - out.stranded;
    m.counter("traffic.flows_stranded") += out.stranded;
    m.counter("traffic.flows_victim") += out.victims;
    m.counter("traffic.flows_packet") += out.packet_flows;
    m.counter("traffic.flows_fluid") += out.fluid_flows;
    m.counter("traffic.victim_fluid_fallback") += out.victim_fluid_fallback;
  }
  return out;
}

}  // namespace

double TrafficResult::p_all(double p) const {
  lgsim::PercentileTracker all;
  all.merge(fct_victim_us);
  all.merge(fct_bg_us);
  return all.percentile(p);
}

void TrafficResult::export_metrics(obs::MetricsRegistry& m) const {
  m.counter("traffic.flows_generated") += generated;
  m.counter("traffic.flows_completed") += completed;
  m.counter("traffic.flows_stranded") += stranded;
  m.counter("traffic.flows_victim") += victims;
  m.counter("traffic.flows_packet") += packet_flows;
  m.counter("traffic.flows_fluid") += fluid_flows;
  m.counter("traffic.victim_fluid_fallback") += victim_fluid_fallback;
  m.counter("traffic.hot_links") += static_cast<std::int64_t>(hot_links.size());
  m.counter("traffic.disabled_links") += disabled_links;
  for (double v : fct_victim_us.sorted_samples())
    m.distribution("traffic.fct_victim_us").add(v);
  for (double v : fct_bg_us.sorted_samples())
    m.distribution("traffic.fct_bg_us").add(v);
}

TrafficResult run_traffic(const EngineConfig& cfg, unsigned jobs) {
  const Scenario sc = build_scenario(cfg);
  // shards <= 1 takes the original single-Simulator cell path untouched —
  // the golden reference the sharded path is pinned byte-identical to.
  const bool sharded = cfg.shards > 1;
  const fabric::PodPartition part =
      fabric::PodPartition::make(cfg.topo, cfg.shards);

  harness::ParallelRunner<CellJob, CellOut> pool(
      [sharded](const CellJob& j) {
        return sharded ? run_cell_sharded(j) : run_cell(j);
      },
      jobs == 0 ? harness::bench_jobs() : jobs);
  for (const std::uint64_t seed : cfg.seeds) {
    for (std::int32_t sl = 0; sl < cfg.slices; ++sl) {
      pool.add(seed, CellJob{&cfg, &sc, &part, seed, sl});
    }
  }
  const std::vector<CellOut> cells = pool.run_in_grid_order();

  TrafficResult res;
  res.hot_links = sc.hot;
  res.disabled_links = sc.disabled;
  for (const CellOut& c : cells) {
    res.generated += c.generated;
    res.stranded += c.stranded;
    res.victims += c.victims;
    res.packet_flows += c.packet_flows;
    res.fluid_flows += c.fluid_flows;
    res.victim_fluid_fallback += c.victim_fluid_fallback;
    res.fct_victim_us.merge(c.victim_us);
    res.fct_bg_us.merge(c.bg_us);
  }
  res.completed = res.generated - res.stranded;
  res.sim_hours =
      cfg.duration_sec / 3600.0 * static_cast<double>(cfg.seeds.size());
  return res;
}

}  // namespace lgsim::traffic
