#include "traffic/engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "corropt/corropt.h"
#include "harness/parallel.h"
#include "obs/trace.h"
#include "traffic/path.h"

namespace lgsim::traffic {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kCorrOptOnly: return "CorrOpt";
    case Scheme::kCorrOptLg: return "CorrOpt+LG";
  }
  return "?";
}

const char* fidelity_name(Fidelity f) {
  switch (f) {
    case Fidelity::kHybrid: return "hybrid";
    case Fidelity::kAllPacket: return "all-packet";
    case Fidelity::kFluidOnly: return "fluid-only";
  }
  return "?";
}

namespace {

/// The corruption scenario: one topology snapshot shared (read-only) by all
/// cells. Built single-threaded; cells only issue const path queries.
struct Scenario {
  fabric::FabricTopology topo;
  std::vector<HotLink> hot;            // ascending link id
  std::vector<std::int32_t> hot_index; // link id -> index into hot, or -1
  std::int64_t disabled = 0;

  explicit Scenario(const fabric::TopologyConfig& tc) : topo(tc) {}
};

Scenario build_scenario(const EngineConfig& cfg) {
  Scenario sc(cfg.topo);
  Rng rng(cfg.scenario_seed);

  // Draw distinct corrupting links. Rejection sampling on the uniform link id
  // is deterministic (fixed RNG stream, fixed iteration order).
  const std::int64_t n_links = sc.topo.n_links();
  const std::int64_t want =
      std::min<std::int64_t>(cfg.corrupting_links, n_links);
  std::vector<std::uint8_t> picked(static_cast<std::size_t>(n_links), 0);
  std::vector<std::int64_t> ids;
  ids.reserve(static_cast<std::size_t>(want));
  while (static_cast<std::int64_t>(ids.size()) < want) {
    const auto id = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(n_links)));
    if (picked[static_cast<std::size_t>(id)]) continue;
    picked[static_cast<std::size_t>(id)] = 1;
    ids.push_back(id);
  }

  // CorrOpt decision per link, in draw order (mirrors corruption onsets
  // arriving one by one; earlier disables constrain later fast checks).
  for (const std::int64_t id : ids) {
    const double loss = cfg.forced_loss_rate > 0.0 ? cfg.forced_loss_rate
                                                   : corropt::sample_loss_rate(rng);
    sc.topo.apply({fabric::LinkTransition::Kind::kCorrupt, id, loss, 1.0});
    if (sc.topo.can_disable(id, cfg.capacity_constraint)) {
      sc.topo.apply({fabric::LinkTransition::Kind::kDisable, id, 0.0, 1.0});
      ++sc.disabled;
      continue;
    }
    HotLink h;
    h.id = id;
    h.loss_rate = loss;
    h.residual = loss;
    if (cfg.scheme == Scheme::kCorrOptLg) {
      sc.topo.apply({fabric::LinkTransition::Kind::kEnableLg, id, 0.0,
                     corropt::lg_effective_speed(loss)});
      const int n = lg::retx_copies(loss, cfg.lg_target_loss);
      h.residual = std::min(loss, std::pow(loss, n + 1));
      h.lg = true;
    }
    sc.hot.push_back(h);
  }
  std::sort(sc.hot.begin(), sc.hot.end(),
            [](const HotLink& a, const HotLink& b) { return a.id < b.id; });
  sc.hot_index.assign(static_cast<std::size_t>(n_links), -1);
  for (std::size_t i = 0; i < sc.hot.size(); ++i) {
    sc.hot_index[static_cast<std::size_t>(sc.hot[i].id)] =
        static_cast<std::int32_t>(i);
  }
  return sc;
}

struct CellJob {
  const EngineConfig* cfg = nullptr;
  const Scenario* sc = nullptr;
  std::uint64_t seed = 0;
  std::int32_t slice = 0;
};

struct CellOut {
  std::int64_t generated = 0;
  std::int64_t stranded = 0;
  std::int64_t victims = 0;
  std::int64_t packet_flows = 0;
  std::int64_t fluid_flows = 0;
  std::int64_t victim_fluid_fallback = 0;
  lgsim::PercentileTracker victim_us;
  lgsim::PercentileTracker bg_us;
};

/// Extra one-way latency folded into the victim testbed path per fabric link
/// beyond the first (switch pipeline + fiber, matching FluidConfig's
/// per-hop term).
constexpr SimTime kExtraHopLatency = nsec(700);

CellOut run_cell(const CellJob& job) {
  const EngineConfig& cfg = *job.cfg;
  const Scenario& sc = *job.sc;
  CellOut out;

  const PathResolver resolver(sc.topo, cfg.hosts_per_tor);
  const std::int64_t n_hosts = resolver.n_hosts();
  const auto dist = workload::FlowSizeDistribution::make(cfg.workload);
  const double mean_bytes = dist.mean_bytes();

  FluidConfig fl = cfg.fluid;
  fl.load = cfg.arrivals.load_fraction;
  if (cfg.transport == harness::Transport::kRdmaWrite) fl.host_delay = usec(6);
  const FluidModel fluid(fl, cfg.link_rate);

  const double slice_dur = cfg.duration_sec / cfg.slices;
  const double t1 = (job.slice + 1) * slice_dur;
  const double t0 = job.slice * slice_dur;

  struct PendingFlow {
    std::int64_t bytes;
    std::uint64_t aux;
  };
  // Deterministically ordered packet-flow groups: victims keyed by
  // (hot link, hop count), all-packet background by hop count.
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<PendingFlow>>
      victim_groups;
  std::map<std::int32_t, std::vector<PendingFlow>> bg_groups;
  std::int64_t victim_packet_budget = cfg.max_packet_flows_per_cell;
  std::int64_t bg_packet_budget = cfg.max_packet_flows_per_cell;

  for (std::int64_t host = 0; host < n_hosts; ++host) {
    Rng hr = workload::stream_rng(job.seed, static_cast<std::uint64_t>(job.slice),
                                  static_cast<std::uint64_t>(host));
    workload::ArrivalProcess arrivals(cfg.arrivals, mean_bytes, hr.split());
    double t = t0 + arrivals.next_gap_sec();
    while (t < t1) {
      ++out.generated;
      const std::int64_t bytes = dist.sample(hr);
      std::int64_t dst = static_cast<std::int64_t>(
          hr.uniform_int(static_cast<std::uint64_t>(n_hosts - 1)));
      if (dst >= host) ++dst;
      const std::uint64_t hash = hr.next_u64();
      const std::uint64_t aux = hr.next_u64();

      const PathInfo path = resolver.resolve(host, dst, hash);
      if (!path.ok) {
        ++out.stranded;
        t += arrivals.next_gap_sec();
        continue;
      }

      std::int32_t hot_idx = -1;
      for (std::int32_t i = 0; i < path.n_links; ++i) {
        const std::int32_t h =
            sc.hot_index[static_cast<std::size_t>(path.links[i])];
        if (h >= 0) {
          hot_idx = h;
          break;
        }
      }
      if (hot_idx >= 0) ++out.victims;

      bool packetize = false;
      if (hot_idx >= 0) {
        // Victim: packet-level unless fluid-only, within the cell budget.
        if (cfg.fidelity != Fidelity::kFluidOnly && victim_packet_budget > 0) {
          packetize = true;
          --victim_packet_budget;
        } else if (cfg.fidelity != Fidelity::kFluidOnly) {
          ++out.victim_fluid_fallback;
        }
      } else if (cfg.fidelity == Fidelity::kAllPacket && bg_packet_budget > 0) {
        packetize = true;
        --bg_packet_budget;
      }

      if (packetize) {
        if (hot_idx >= 0) {
          victim_groups[{hot_idx, path.n_links}].push_back({bytes, aux});
        } else {
          bg_groups[path.n_links].push_back({bytes, aux});
        }
      } else {
        Rng fr(aux);
        const double loss = hot_idx >= 0 ? sc.hot[hot_idx].residual : 0.0;
        const double fct_ns = fluid.fct_ns(bytes, path.n_links, loss, fr);
        (hot_idx >= 0 ? out.victim_us : out.bg_us).add(fct_ns / 1000.0);
        ++out.fluid_flows;
      }
      t += arrivals.next_gap_sec();
    }
  }

  // Packet-level runs. One harness::run_fct per group replays the group's
  // flow sizes back-to-back over the testbed path standing in for the
  // scenario link; hops beyond the first contribute fixed latency.
  auto run_group = [&](const std::vector<PendingFlow>& flows,
                       std::int32_t hot_idx, std::int32_t n_links,
                       lgsim::PercentileTracker& into) {
    harness::FctConfig fc;
    fc.transport = cfg.transport;
    fc.rate = cfg.link_rate;
    fc.path.lg.target_loss_rate = cfg.lg_target_loss;
    fc.path.link.prop_delay +=
        kExtraHopLatency * std::max<std::int32_t>(0, n_links - 1);
    if (hot_idx >= 0) {
      const HotLink& h = sc.hot[hot_idx];
      fc.protection =
          h.lg ? harness::Protection::kLg : harness::Protection::kLossOnly;
      fc.loss_rate = h.loss_rate;
    } else {
      fc.protection = harness::Protection::kNoLoss;
      fc.loss_rate = 0.0;
    }
    fc.trial_bytes.reserve(flows.size());
    for (const PendingFlow& f : flows) fc.trial_bytes.push_back(f.bytes);
    // Domain-separated from the generation streams via the tag in `cell`.
    fc.seed = workload::mix_stream(
        job.seed,
        0x5eedf10c00000000ULL | static_cast<std::uint64_t>(job.slice),
        (static_cast<std::uint64_t>(hot_idx + 1) << 8) |
            static_cast<std::uint64_t>(n_links));
    const harness::FctResult r = harness::run_fct(fc);
    into.merge(r.fct_us);
    out.packet_flows += static_cast<std::int64_t>(flows.size());
  };

  for (const auto& [key, flows] : victim_groups) {
    run_group(flows, key.first, key.second, out.victim_us);
  }
  for (const auto& [n_links, flows] : bg_groups) {
    run_group(flows, -1, n_links, out.bg_us);
  }

  if (obs::TraceSink* sink = obs::current_sink()) {
    obs::MetricsRegistry& m = sink->metrics();
    m.counter("traffic.flows_generated") += out.generated;
    m.counter("traffic.flows_completed") +=
        out.generated - out.stranded;
    m.counter("traffic.flows_stranded") += out.stranded;
    m.counter("traffic.flows_victim") += out.victims;
    m.counter("traffic.flows_packet") += out.packet_flows;
    m.counter("traffic.flows_fluid") += out.fluid_flows;
    m.counter("traffic.victim_fluid_fallback") += out.victim_fluid_fallback;
  }
  return out;
}

}  // namespace

double TrafficResult::p_all(double p) const {
  lgsim::PercentileTracker all;
  all.merge(fct_victim_us);
  all.merge(fct_bg_us);
  return all.percentile(p);
}

void TrafficResult::export_metrics(obs::MetricsRegistry& m) const {
  m.counter("traffic.flows_generated") += generated;
  m.counter("traffic.flows_completed") += completed;
  m.counter("traffic.flows_stranded") += stranded;
  m.counter("traffic.flows_victim") += victims;
  m.counter("traffic.flows_packet") += packet_flows;
  m.counter("traffic.flows_fluid") += fluid_flows;
  m.counter("traffic.victim_fluid_fallback") += victim_fluid_fallback;
  m.counter("traffic.hot_links") += static_cast<std::int64_t>(hot_links.size());
  m.counter("traffic.disabled_links") += disabled_links;
  for (double v : fct_victim_us.sorted_samples())
    m.distribution("traffic.fct_victim_us").add(v);
  for (double v : fct_bg_us.sorted_samples())
    m.distribution("traffic.fct_bg_us").add(v);
}

TrafficResult run_traffic(const EngineConfig& cfg, unsigned jobs) {
  const Scenario sc = build_scenario(cfg);

  harness::ParallelRunner<CellJob, CellOut> pool(
      [](const CellJob& j) { return run_cell(j); },
      jobs == 0 ? harness::bench_jobs() : jobs);
  for (const std::uint64_t seed : cfg.seeds) {
    for (std::int32_t sl = 0; sl < cfg.slices; ++sl) {
      pool.add(seed, CellJob{&cfg, &sc, seed, sl});
    }
  }
  const std::vector<CellOut> cells = pool.run_in_grid_order();

  TrafficResult res;
  res.hot_links = sc.hot;
  res.disabled_links = sc.disabled;
  for (const CellOut& c : cells) {
    res.generated += c.generated;
    res.stranded += c.stranded;
    res.victims += c.victims;
    res.packet_flows += c.packet_flows;
    res.fluid_flows += c.fluid_flows;
    res.victim_fluid_fallback += c.victim_fluid_fallback;
    res.fct_victim_us.merge(c.victim_us);
    res.fct_bg_us.merge(c.bg_us);
  }
  res.completed = res.generated - res.stranded;
  res.sim_hours =
      cfg.duration_sec / 3600.0 * static_cast<double>(cfg.seeds.size());
  return res;
}

}  // namespace lgsim::traffic
