// LinkGuardian sender-switch logic (§3, §3.4, §3.5, Appendix A.2).
//
// The sender owns the protected link's egress port with three strict-priority
// queues: retransmissions (highest), normal traffic (PFC-pausable), and dummy
// packets (lowest). Every protected packet is stamped with a 16-bit seqNo +
// era bit and a copy is buffered. Buffering is modelled after the Tofino
// implementation's recirculation loop: a buffered copy becomes *actionable*
// only at its next recirculation-loop boundary, which reproduces both the
// measured 2-6 us retransmission delay (Fig. 19) and the recirculation
// overhead accounting (Table 4) without simulating each loop traversal as an
// event.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "lg/config.h"
#include "lg/seqno.h"
#include "net/packet.h"
#include "net/port.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace lgsim::lg {

class LgSender {
 public:
  struct Stats {
    std::int64_t protected_sent = 0;       // original protected data packets
    std::int64_t retx_requests = 0;        // distinct seqNos requested
    std::int64_t retx_copies_sent = 0;     // total copies enqueued
    std::int64_t unknown_retx_requests = 0;// request raced with buffer free
    std::int64_t dropped_requests = 0;     // gap wider than reTxReqs registers
    std::int64_t acks_received = 0;
    std::int64_t pauses_received = 0;
    std::int64_t resumes_received = 0;
    std::int64_t dummies_armed = 0;        // dummy bursts triggered
    std::int64_t recirc_loops = 0;         // total loop traversals (Table 4)
    std::int64_t recirc_loop_bytes = 0;
    lgsim::PercentileTracker tx_buffer_bytes;  // sampled occupancy
  };

  /// `port` must already have the three queues created, identified by the
  /// given indices with retx_q < normal_q < dummy_q in priority order.
  LgSender(Simulator& sim, const LgConfig& cfg, net::EgressPort& port,
           int retx_q, int normal_q, int dummy_q);

  LgSender(const LgSender&) = delete;
  LgSender& operator=(const LgSender&) = delete;

  /// Activate protection (control plane, §3.6). Resets sequence state.
  void enable();
  /// Deactivate; flushes the Tx buffer.
  void disable();
  bool enabled() const { return enabled_; }

  /// Datapath entry: a packet to transmit on this link. When protection is
  /// enabled, stamps the LinkGuardian header and buffers a copy; otherwise
  /// passes straight to the normal queue.
  void send(net::Packet p);

  /// Reverse-direction control input: cumulative ACKs (explicit or
  /// piggybacked), loss notifications and PFC pause/resume frames.
  void handle_reverse(const net::Packet& p);

  /// Current Tx buffer occupancy in frame bytes.
  std::int64_t tx_buffer_bytes() const { return buffer_bytes_; }
  std::int64_t tx_buffer_pkts() const { return static_cast<std::int64_t>(buffer_.size()); }

  /// Sample the buffer occupancy into the stats percentile tracker.
  void sample_buffers() { stats_.tx_buffer_bytes.add(static_cast<double>(buffer_bytes_)); }

  const Stats& stats() const { return stats_; }
  Stats& mutable_stats() { return stats_; }

  /// The virtual (64-bit) sequence number that will be assigned next.
  std::int64_t next_virtual_seq() const { return next_v_; }

 private:
  struct Buffered {
    net::Packet copy;
    SimTime enqueued_at = 0;
    SimTime loop_phase = 0;  // position within the recirculation loop
    bool retx_requested = false;
    bool check_scheduled = false;
  };

  SeqEra to_wire(std::int64_t v) const;
  std::int64_t resolve_virtual(SeqEra wire, std::int64_t reference) const;

  void on_transmit(net::Packet& p, int queue);
  void protect_at_egress(net::Packet& p);
  void arm_dummies();
  net::Packet make_dummy() const;
  void advance_latest_rx(std::int64_t v);
  void schedule_loop_check(std::int64_t v, Buffered& b);
  void run_loop_check(std::int64_t v);
  void account_free(std::int64_t v, const Buffered& b);

  Simulator& sim_;
  const LgConfig& cfg_;
  net::EgressPort& port_;
  const int retx_q_;
  const int normal_q_;
  const int dummy_q_;

  bool enabled_ = false;
  std::int64_t next_v_ = 0;       // next virtual seq to assign
  std::int64_t latest_rx_v_ = -1; // sender's copy of receiver's latestRxSeqNo
  std::map<std::int64_t, Buffered> buffer_;
  std::int64_t buffer_bytes_ = 0;
  Rng jitter_;
  Stats stats_;
  std::uint32_t trace_actor_ = 0;  // obs actor id, interned at construction
};

}  // namespace lgsim::lg
