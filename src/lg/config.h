// LinkGuardian configuration (§3.5, §4 "Parameters", Appendix B.1).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/units.h"

namespace lgsim::lg {

/// Eq. 2: number of retransmitted copies N such that
/// actual_loss^(N+1) <= target_loss. ceil() on the RHS, minimum 1.
inline int retx_copies(double actual_loss_rate, double target_loss_rate) {
  if (actual_loss_rate <= 0.0) return 1;
  if (actual_loss_rate >= 1.0) return 1;
  if (target_loss_rate <= 0.0) return 1;
  if (target_loss_rate >= actual_loss_rate) return 1;
  const double n = std::log10(target_loss_rate) / std::log10(actual_loss_rate) - 1.0;
  return std::max(1, static_cast<int>(std::ceil(n - 1e-9)));
}

struct LgConfig {
  // ---- operating mode -------------------------------------------------
  /// Default mode preserves packet ordering via the receiver-side reordering
  /// buffer; false = LinkGuardianNB (out-of-order retransmission, §3).
  bool preserve_order = true;

  // ---- ablation switches (Table 2) ------------------------------------
  /// Dummy-packet queue for timeout-less tail-loss detection (§3.2).
  bool tail_loss_detection = true;
  /// Backpressure pause/resume of the sender's normal queue (§3.3).
  bool backpressure = true;

  // ---- loss-rate targets (§3.4) ---------------------------------------
  /// Operator-specified target effective loss rate.
  double target_loss_rate = 1e-8;
  /// Measured actual loss rate of the link (corruptd provides this); together
  /// with the target it determines the number of retransmitted copies.
  double actual_loss_rate = 1e-4;

  int n_retx_copies() const {
    return retx_copies(actual_loss_rate, target_loss_rate);
  }

  // ---- timers and thresholds (Appendix B.1) ---------------------------
  /// Receiver-side timeout after which an unrecovered packet is skipped
  /// (ordered mode only). Paper: 7.5 us @25G, 7 us @100G.
  SimTime ack_no_timeout = usec(7);
  /// Granularity of the switch packet-generator timer packets used for
  /// timekeeping (10 Mpps in the paper = 100 ns).
  SimTime timer_period = nsec(100);

  /// Backpressure thresholds on the reordering buffer (bytes). Paper:
  /// resume = 40 KB @25G / 37 KB @100G; pause = resume + 2 MTU hysteresis.
  std::int64_t resume_threshold = 37'000;
  std::int64_t pause_threshold = 37'000 + 2 * kEthernetMtu;

  // ---- dataplane modelling --------------------------------------------
  /// One traversal of the recirculation loop used for packet buffering. This
  /// is the dominant component of the ~2-6 us retransmission delay measured
  /// on the Tofino (Fig. 19); a Tofino2-style zero-recirculation design can
  /// be modelled by setting it near zero.
  SimTime recirc_loop = nsec(1200);
  /// Rate at which the recirculation-based reordering buffer drains
  /// (recirculation ports run at 100G regardless of front-panel speed).
  BitRate recirc_drain_rate = gbps(100);
  /// Rate of the downstream egress port the released packets leave through.
  /// Under sustained full utilization this is what actually bounds draining:
  /// releases compete with the arriving line-rate stream, so a backlog that
  /// forms during a recovery stall persists until the sender is paused (the
  /// reason backpressure is "not considered optional", §4.2). 0 = set to the
  /// protected link's rate by ProtectedLink.
  BitRate downstream_drain_rate = 0;
  /// Byte capacity of the recirculation buffer (the paper restricts the
  /// testbed switches to 200 KB).
  std::int64_t recirc_buffer_bytes = 200'000;
  /// Switch pipeline traversal latency (ingress parse -> egress deparse).
  SimTime pipeline_latency = nsec(400);
  /// Number of consecutive losses one loss notification can request; the
  /// implementation provisions 5 one-bit reTxReqs registers (§3.5).
  int max_consecutive_retx = 5;
  /// Copies of each loss notification sent (reverse-direction robustness,
  /// relevant under bidirectional corruption, §5).
  int loss_notif_copies = 1;
  /// The pause/resume signal rides the periodic timer-packet stream on the
  /// testbed (§3.5), so it is continuously refreshed; a lost PFC frame is
  /// repaired by the next one. This is the refresh interval of that model
  /// (the resume state is repeated a few times after un-pausing).
  SimTime pfc_refresh_period = usec(1);

  /// Copies of the other reverse-direction control messages (explicit ACKs
  /// and PFC pause/resume frames). §5 "Handling bidirectional corruption":
  /// control redundancy is the first half of the extension; all control
  /// messages are idempotent, so duplicates are harmless.
  int control_copies = 1;
  /// LinkGuardian data/ACK header bytes added to protected packets (§3.5).
  std::int32_t header_bytes = 3;

  /// Seed for the per-packet recirculation-phase jitter (where in the loop
  /// a buffered copy happens to sit when it becomes actionable). Gives the
  /// retransmission-delay distribution its measured spread (Fig. 19).
  std::uint64_t jitter_seed = 0x1234abcd;

  /// Assumed per-pipe forwarding capacity in packets/s, used only to express
  /// recirculation overhead as a percentage (Table 4). The paper states its
  /// 10 Mpps timer stream is ~1% of pipeline capacity => ~1 Gpps.
  double pipe_capacity_pps = 1.0e9;
};

/// Applies the paper's per-link-speed tuning (Appendix B.1): the measured
/// maximum retransmission delays (~6 us at 25G, ~5.5 us at 100G) set the
/// recirculation loop and the ackNoTimeout (7.5 / 7 us); resumeThreshold is
/// sized to tflight_resume at the recirculation drain rate (40 / 37 KB) and
/// pauseThreshold adds 2 MTU of hysteresis.
inline LgConfig tuned_for_rate(LgConfig cfg, BitRate rate) {
  if (rate <= gbps(10)) {
    // The 10G prototype (the APNet workshop predecessor) recovered within
    // TCP's 3-packet reordering window (~3.7 us at 10G) most of the time —
    // the basis of Table 3's LinkGuardianNB row.
    cfg.recirc_loop = nsec(1500);
    cfg.ack_no_timeout = nsec(7'500);
    cfg.resume_threshold = 40'000;
    cfg.pause_threshold = cfg.resume_threshold + 2 * kEthernetMtu;
    return cfg;
  }
  if (rate <= gbps(25)) {
    cfg.recirc_loop = nsec(4500);
    cfg.ack_no_timeout = nsec(7'500);
    cfg.resume_threshold = 40'000;
  } else {
    cfg.recirc_loop = nsec(4300);
    cfg.ack_no_timeout = nsec(7'000);
    cfg.resume_threshold = 37'000;
  }
  cfg.pause_threshold = cfg.resume_threshold + 2 * kEthernetMtu;
  return cfg;
}

}  // namespace lgsim::lg
