// LinkGuardian receiver-switch logic (§3.1-§3.3, §3.5, Appendix A.1).
//
// The receiver watches the protected link's ingress for gaps in the sequence
// numbers, notifies the sender of losses through a high-priority reverse
// queue, keeps the sender's latestRxSeqNo fresh through piggybacked and
// explicit self-replenishing ACKs, and — in the default ordered mode —
// holds out-of-order packets in a recirculation-based reordering buffer
// released strictly in sequence (Algorithm 1), throttling the sender through
// PFC backpressure when the buffer grows (Algorithm 2). A per-gap
// ackNoTimeout (quantized to the switch timer-packet period) prevents
// indefinite stalls when every retransmitted copy is lost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "lg/config.h"
#include "lg/seqno.h"
#include "net/packet.h"
#include "net/port.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace lgsim::lg {

class LgReceiver {
 public:
  struct Stats {
    std::int64_t protected_rx = 0;     // protected data frames received
    std::int64_t retx_rx = 0;          // of which retransmitted copies
    std::int64_t dummy_rx = 0;
    std::int64_t unprotected_rx = 0;
    std::int64_t gaps_detected = 0;    // loss events (contiguous runs)
    std::int64_t reported_lost = 0;    // individual seqNos notified
    std::int64_t notifs_sent = 0;
    std::int64_t dup_dropped = 0;
    std::int64_t late_retx = 0;        // retx arrived after timeout skip
    std::int64_t recovered = 0;        // losses healed by retransmission
    std::int64_t timeouts = 0;         // ackNoTimeout fired (ordered mode)
    std::int64_t expired = 0;          // unrecovered losses (NB bookkeeping)
    std::int64_t effectively_lost = 0; // losses visible to the endpoints
    std::int64_t forwarded = 0;
    std::int64_t forwarded_bytes = 0;  // frame bytes after header strip
    std::int64_t reorder_buffered = 0;
    std::int64_t reorder_drops = 0;    // reordering-buffer overflow
    std::int64_t pauses_sent = 0;
    std::int64_t resumes_sent = 0;
    std::int64_t acks_armed = 0;
    std::int64_t recirc_loops = 0;     // reorder-buffer loop traversals
    std::int64_t recirc_loop_bytes = 0;
    lgsim::PercentileTracker retx_delay_us;       // Fig. 19
    lgsim::PercentileTracker rx_buffer_bytes;     // Fig. 14 (sampled)
  };

  using ForwardFn = std::function<void(net::Packet&&)>;

  /// `rev_port` is the reverse-direction egress port (receiver -> sender)
  /// with three queues: ctrl_q (loss notifications + PFC, highest priority),
  /// rev_normal_q (regular reverse traffic, gets piggybacked ACKs), and
  /// ack_q (self-replenishing explicit ACKs, lowest priority).
  LgReceiver(Simulator& sim, const LgConfig& cfg, net::EgressPort& rev_port,
             int ctrl_q, int rev_normal_q, int ack_q);

  LgReceiver(const LgReceiver&) = delete;
  LgReceiver& operator=(const LgReceiver&) = delete;

  void set_forward_sink(ForwardFn fn) { forward_ = std::move(fn); }

  void enable();
  void disable();
  bool enabled() const { return enabled_; }

  /// Live ordered <-> NB switch (AutoFallback): cfg_.preserve_order is read
  /// per frame, but the reordering state needs an explicit handoff when the
  /// mode flips on a running link — ordered -> NB releases the reordering
  /// buffer in sequence order (and lifts backpressure) so nothing is
  /// stranded; NB -> ordered restarts ordering at the next new frame.
  /// Sequence state is preserved, so in-flight frames keep resolving
  /// correctly (no era reset, unlike a disable()/enable() cycle).
  void on_mode_change();

  /// Frames arriving from the protected (corrupting) link.
  void receive(net::Packet&& p);

  /// Reverse-direction traffic from upstream of the receiver switch; ACK
  /// info is piggybacked onto it at serialization time.
  void send_reverse(net::Packet p);

  /// PFC backpressure currently asserted toward the sender (Algorithm 2).
  bool backpressured() const { return bp_paused_; }

  std::int64_t reorder_buffer_bytes() const { return buffer_bytes_; }
  std::int64_t reorder_buffer_pkts() const { return static_cast<std::int64_t>(buffer_.size()); }
  void sample_buffers() { stats_.rx_buffer_bytes.add(static_cast<double>(buffer_bytes_)); }

  const Stats& stats() const { return stats_; }
  Stats& mutable_stats() { return stats_; }

  // Introspection for tests and debugging.
  std::int64_t debug_ack_no() const { return ack_no_v_; }
  std::int64_t debug_latest_rx() const { return latest_rx_v_; }
  std::int64_t debug_buffer_head() const {
    return buffer_.empty() ? -1 : buffer_.begin()->first;
  }
  std::size_t debug_outstanding() const { return outstanding_.size(); }
  std::size_t debug_skipped() const { return skipped_.size(); }
  bool debug_release_pending() const { return release_pending_; }

 private:
  struct Buffered {
    net::Packet pkt;
    SimTime entered_at = 0;
    SimTime loop_phase = 0;  // where in the recirculation loop it sits
  };

  SeqEra to_wire(std::int64_t v) const;
  std::int64_t resolve_virtual(SeqEra wire) const;

  void handle_protected(net::Packet&& p);
  void handle_dummy(const net::Packet& p);
  void detect_gap(std::int64_t from, std::int64_t to);
  void send_notification(std::int64_t from, std::int64_t count);
  void arm_timeout(std::int64_t v);
  void on_timeout(std::int64_t v);
  void forward_now(net::Packet&& p);
  void advance_ack_no();
  void schedule_release();
  void backpressure_check();
  void send_pfc(bool pause);
  void arm_pfc_refresh();
  void ensure_explicit_ack();
  void stamp_ack(net::Packet& p);
  SimTime quantize_up(SimTime t) const;

  Simulator& sim_;
  const LgConfig& cfg_;
  net::EgressPort& rev_port_;
  const int ctrl_q_;
  const int rev_normal_q_;
  const int ack_q_;

  ForwardFn forward_;
  bool enabled_ = false;
  std::int64_t latest_rx_v_ = -1;
  std::int64_t ack_no_v_ = 0;
  std::map<std::int64_t, SimTime> outstanding_;  // missing seq -> detect time
  std::set<std::int64_t> skipped_;               // timed-out holes ahead of ackNo
  std::map<std::int64_t, Buffered> buffer_;      // reordering buffer
  std::int64_t buffer_bytes_ = 0;
  bool bp_paused_ = false;
  bool pfc_refresh_armed_ = false;
  int resume_repeats_ = 0;
  bool release_pending_ = false;
  SimTime last_release_ = -1;
  Rng jitter_;
  Stats stats_;
  std::uint32_t trace_actor_ = 0;  // obs actor id, interned at construction
};

}  // namespace lgsim::lg
