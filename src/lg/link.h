// ProtectedLink: the public entry point of the library.
//
// Wires together one corrupting switch-to-switch link: the sender switch's
// egress port (retx / normal / dummy strict-priority queues), the forward
// fiber with its corruption loss model, the receiver switch's LinkGuardian
// ingress logic, and the reverse fiber carrying ACKs, loss notifications and
// PFC backpressure. Upstream code (traffic generators, transport hosts,
// switch forwarding logic) talks only to send_forward/send_reverse and the
// two sinks.
//
//           +--------- sender switch ---------+      forward fiber
//  send_forward --> [LgSender: seq, Tx buffer] --> (loss model) -->+
//                                                                  |
//           +-------- receiver switch --------+                    v
//  forward_sink <-- [LgReceiver: order, dedup] <-------------------+
//        |                   |
//        |                   +--> reverse fiber: notif/ACK/PFC --> LgSender
//  send_reverse -------------^        (piggybacked on reverse traffic)
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "lg/config.h"
#include "lg/receiver.h"
#include "lg/sender.h"
#include "net/loss_model.h"
#include "net/packet.h"
#include "net/port.h"
#include "sim/simulator.h"

namespace lgsim::lg {

struct LinkSpec {
  BitRate rate = gbps(100);
  /// One-way propagation delay of the fiber (~100 ns for a 20 m run).
  SimTime prop_delay = nsec(100);
  /// Byte budget of the sender switch's normal egress queue.
  std::int64_t normal_queue_bytes = 2'000'000;
  /// DCTCP-style ECN marking threshold on the normal queue (-1 = off;
  /// the paper uses 100 KB).
  std::int64_t ecn_threshold_bytes = -1;
  std::string name = "link";
};

class ProtectedLink {
 public:
  using SinkFn = std::function<void(net::Packet&&)>;

  ProtectedLink(Simulator& sim, const LinkSpec& spec, const LgConfig& cfg)
      : sim_(sim),
        cfg_(patch_drain(cfg, spec)),
        fwd_port_(sim, spec.name + ".fwd", spec.rate, spec.prop_delay),
        rev_port_(sim, spec.name + ".rev", spec.rate, spec.prop_delay) {
    retx_q_ = fwd_port_.add_queue({});  // highest priority: retransmissions
    normal_q_ = fwd_port_.add_queue(
        {.byte_limit = spec.normal_queue_bytes,
         .ecn_threshold = spec.ecn_threshold_bytes});
    dummy_q_ = fwd_port_.add_queue({});  // strictly lowest: dummy packets

    ctrl_q_ = rev_port_.add_queue({});  // loss notifications + PFC
    rev_normal_q_ = rev_port_.add_queue({.byte_limit = spec.normal_queue_bytes});
    ack_q_ = rev_port_.add_queue({});  // strictly lowest: explicit ACKs

    sender_ = std::make_unique<LgSender>(sim, cfg_, fwd_port_, retx_q_,
                                         normal_q_, dummy_q_);
    receiver_ = std::make_unique<LgReceiver>(sim, cfg_, rev_port_, ctrl_q_,
                                             rev_normal_q_, ack_q_);

    fwd_port_.set_deliver([this](net::Packet&& p) { receiver_->receive(std::move(p)); });
    rev_port_.set_deliver([this](net::Packet&& p) { on_reverse_arrival(std::move(p)); });
  }

  /// Install the forward-direction corruption process (owned by the link).
  void set_loss_model(std::unique_ptr<net::LossModel> m) {
    loss_ = std::move(m);
    fwd_port_.set_loss_model(loss_.get());
  }
  net::LossModel* loss_model() { return loss_.get(); }

  /// Install a reverse-direction corruption process (§5 "Handling
  /// bidirectional corruption"): ACKs, loss notifications and PFC frames can
  /// now be lost too; pair this with LgConfig::control_copies > 1 and
  /// loss_notif_copies > 1 for the paper's redundancy countermeasure.
  void set_reverse_loss_model(std::unique_ptr<net::LossModel> m) {
    rev_loss_ = std::move(m);
    rev_port_.set_loss_model(rev_loss_.get());
  }

  /// Traffic to carry over the protected link.
  void send_forward(net::Packet p) { sender_->send(std::move(p)); }
  /// Regular reverse-direction traffic (ACK info rides on it for free).
  void send_reverse(net::Packet p) { receiver_->send_reverse(std::move(p)); }

  /// Where in-order (or NB out-of-order) packets pop out on the receiver
  /// switch, headed to the rest of the network.
  void set_forward_sink(SinkFn fn) { receiver_->set_forward_sink(std::move(fn)); }
  /// Where reverse traffic pops out on the sender switch.
  void set_reverse_sink(SinkFn fn) { reverse_sink_ = std::move(fn); }

  /// Activate LinkGuardian on both switches (what corruptd does once the
  /// link is found to be corrupting, §3.6).
  void enable_lg() {
    sender_->enable();
    receiver_->enable();
  }
  void disable_lg() {
    sender_->disable();
    receiver_->disable();
  }
  bool lg_enabled() const { return sender_->enabled(); }

  /// Live control-plane reconfiguration (AutoFallback, corruptd): the sender
  /// and receiver read the link's LgConfig through a const reference, so
  /// these take effect on the next frame processed.
  ///
  /// Switch between ordered LinkGuardian and LinkGuardianNB on a running
  /// link. Sequence state is preserved (no era reset), and the receiver
  /// performs an explicit state handoff: ordered -> NB releases the
  /// reordering buffer in sequence order and lifts backpressure; NB ->
  /// ordered restarts ordering at the next new frame.
  void set_preserve_order(bool ordered) {
    if (cfg_.preserve_order == ordered) return;
    cfg_.preserve_order = ordered;
    receiver_->on_mode_change();
  }
  bool preserve_order() const { return cfg_.preserve_order; }

  /// Feed the measured loss rate (corruptd's estimate) into Eq. 2: the retx
  /// copy count the sender uses from the next loss notification on.
  void set_actual_loss_rate(double rate) { cfg_.actual_loss_rate = rate; }

  const LgConfig& config() const { return cfg_; }

  LgSender& sender() { return *sender_; }
  LgReceiver& receiver() { return *receiver_; }
  const LgSender& sender() const { return *sender_; }
  const LgReceiver& receiver() const { return *receiver_; }
  net::EgressPort& forward_port() { return fwd_port_; }
  net::EgressPort& reverse_port() { return rev_port_; }
  int normal_queue() const { return normal_q_; }

  /// Convenience: sample both buffer occupancies (Fig. 14).
  void sample_buffers() {
    sender_->sample_buffers();
    receiver_->sample_buffers();
  }

 private:
  static LgConfig patch_drain(LgConfig cfg, const LinkSpec& spec) {
    // The reordering buffer drains through the recirculation port (100G)
    // into the downstream egress queue — the released bytes contend with
    // arrivals *there*, not in the recirculation queue the paper's "Rx
    // buffer" metric measures. downstream_drain_rate stays 0 (= recirc rate)
    // unless an experiment explicitly wants to couple the two.
    (void)spec;
    return cfg;
  }

  void on_reverse_arrival(net::Packet&& p) {
    // All LinkGuardian control state rides the reverse direction: explicit
    // ACKs, piggybacked ACK headers, loss notifications and PFC frames are
    // consumed by the sender switch; everything else continues upstream.
    sender_->handle_reverse(p);
    switch (p.kind) {
      case net::PktKind::kLgAck:
      case net::PktKind::kLgLossNotif:
      case net::PktKind::kPfcPause:
      case net::PktKind::kPfcResume:
        return;  // consumed by the RX MAC / LinkGuardian logic
      default:
        break;
    }
    if (reverse_sink_) reverse_sink_(std::move(p));
  }

  Simulator& sim_;
  LgConfig cfg_;
  net::EgressPort fwd_port_;
  net::EgressPort rev_port_;
  int retx_q_ = 0, normal_q_ = 0, dummy_q_ = 0;
  int ctrl_q_ = 0, rev_normal_q_ = 0, ack_q_ = 0;
  std::unique_ptr<net::LossModel> loss_;
  std::unique_ptr<net::LossModel> rev_loss_;
  std::unique_ptr<LgSender> sender_;
  std::unique_ptr<LgReceiver> receiver_;
  SinkFn reverse_sink_;
};

}  // namespace lgsim::lg
