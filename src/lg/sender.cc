#include "lg/sender.h"

#include <cassert>

#include "obs/trace.h"

namespace lgsim::lg {

LgSender::LgSender(Simulator& sim, const LgConfig& cfg, net::EgressPort& port,
                   int retx_q, int normal_q, int dummy_q)
    : sim_(sim),
      cfg_(cfg),
      port_(port),
      retx_q_(retx_q),
      normal_q_(normal_q),
      dummy_q_(dummy_q),
      jitter_(cfg.jitter_seed),
      trace_actor_(obs::intern_actor("lg/" + port.name() + "/snd")) {
  port_.set_transmit_hook([this](net::Packet& p, int q) { on_transmit(p, q); });
}

void LgSender::enable() {
  enabled_ = true;
  next_v_ = 0;
  latest_rx_v_ = -1;
  buffer_.clear();
  buffer_bytes_ = 0;
  // If the link is idle at activation time, arm a dummy burst so that a
  // single-packet flow arriving later is not the only frame that could
  // reveal its own loss.
  arm_dummies();
}

void LgSender::disable() {
  enabled_ = false;
  buffer_.clear();
  buffer_bytes_ = 0;
  if (port_.queue_paused(normal_q_)) port_.resume_queue(normal_q_);
}

SeqEra LgSender::to_wire(std::int64_t v) const {
  return SeqEra{static_cast<std::uint16_t>(v & 0xFFFF),
                static_cast<std::uint8_t>((v >> 16) & 1)};
}

std::int64_t LgSender::resolve_virtual(SeqEra wire, std::int64_t reference) const {
  if (reference < 0) {
    // Nothing referenced yet: the wire value must be near the start.
    const std::int32_t d = seq_distance(wire, seq_before_first());
    return d - 1;  // seq 0 era 0 -> d == 1 -> virtual 0
  }
  return reference + seq_distance(wire, to_wire(reference));
}

void LgSender::send(net::Packet p) {
  // Protection is applied at egress (on_transmit): if the normal queue drops
  // this packet to congestion, no sequence number is consumed — LinkGuardian
  // masks corruption loss on the wire, not congestion loss in the queue,
  // exactly like the Tofino implementation where the header is added and the
  // copy mirrored in the egress pipeline.
  port_.enqueue(normal_q_, std::move(p));
}

void LgSender::protect_at_egress(net::Packet& p) {
  const std::int64_t v = next_v_++;
  const SeqEra wire = to_wire(v);
  p.lg.valid = true;
  p.lg.seq = wire.seq;
  p.lg.era = wire.era;
  p.lg.retransmitted = false;
  p.debug_true_seq = static_cast<std::uint64_t>(v);
  p.frame_bytes += cfg_.header_bytes;  // 3-byte LinkGuardian data header

  Buffered b;
  b.copy = p;  // egress mirroring: buffer the stamped copy
  b.enqueued_at = sim_.now();
  b.loop_phase = static_cast<SimTime>(
      jitter_.uniform_int(static_cast<std::uint64_t>(cfg_.recirc_loop)));
  buffer_bytes_ += p.frame_bytes;
  buffer_.emplace(v, std::move(b));

  ++stats_.protected_sent;
}

void LgSender::handle_reverse(const net::Packet& p) {
  if (p.pfc.valid) {
    if (p.pfc.pause) {
      ++stats_.pauses_received;
      obs::emit(sim_.now(), obs::Cat::kPfc, obs::Kind::kPause, trace_actor_,
                stats_.pauses_received, 0, /*aux=received*/ 1);
      port_.pause_queue(normal_q_);
    } else {
      ++stats_.resumes_received;
      obs::emit(sim_.now(), obs::Cat::kPfc, obs::Kind::kResume, trace_actor_,
                stats_.resumes_received, 0, /*aux=received*/ 1);
      port_.resume_queue(normal_q_);
    }
  }
  if (!enabled_) return;

  // A loss notification both updates latestRxSeqNo and marks reTxReqs. The
  // marks must land before the loop checks triggered by the latestRx advance,
  // so process them first.
  if (p.lg_notif.valid) {
    const std::int64_t first =
        resolve_virtual(SeqEra{p.lg_notif.first_missing, p.lg_notif.first_missing_era},
                        latest_rx_v_ >= 0 ? latest_rx_v_ : next_v_ - 1);
    // The hardware provisions cfg_.max_consecutive_retx one-bit reTxReqs
    // registers; a wider gap can only mark that many (§3.5).
    const int markable =
        std::min<std::int64_t>(p.lg_notif.count, cfg_.max_consecutive_retx);
    obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kLossNotif, trace_actor_,
              first, markable, /*aux=received*/ 1);
    if (p.lg_notif.count > markable)
      stats_.dropped_requests += p.lg_notif.count - markable;
    for (int i = 0; i < markable; ++i) {
      const std::int64_t v = first + i;
      auto it = buffer_.find(v);
      if (it == buffer_.end()) {
        ++stats_.unknown_retx_requests;
        continue;
      }
      if (!it->second.retx_requested) {
        it->second.retx_requested = true;
        ++stats_.retx_requests;
      }
    }
  }

  if (p.lg_ack.valid) {
    ++stats_.acks_received;
    const std::int64_t v = resolve_virtual(
        SeqEra{p.lg_ack.latest_rx_seq, p.lg_ack.era},
        latest_rx_v_ >= 0 ? latest_rx_v_ : next_v_ - 1);
    obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kAck, trace_actor_, v,
              latest_rx_v_, /*aux=received*/ 1);
    advance_latest_rx(v);
  }
}

void LgSender::advance_latest_rx(std::int64_t v) {
  if (v <= latest_rx_v_) return;
  latest_rx_v_ = v;
  // Every buffered copy with seqNo <= latestRxSeqNo becomes actionable at its
  // next recirculation-loop boundary: retransmit if requested, drop otherwise
  // (Fig. 18).
  for (auto it = buffer_.begin(); it != buffer_.end() && it->first <= v; ++it) {
    if (!it->second.check_scheduled) schedule_loop_check(it->first, it->second);
  }
}

void LgSender::schedule_loop_check(std::int64_t v, Buffered& b) {
  b.check_scheduled = true;
  // Next pass of this copy through the recirculation loop, strictly after
  // now; the per-packet phase models where in the loop the copy sits.
  const SimTime anchor = b.enqueued_at + b.loop_phase;
  const SimTime k =
      anchor > sim_.now() ? 0 : (sim_.now() - anchor) / cfg_.recirc_loop + 1;
  const SimTime when = anchor + k * cfg_.recirc_loop;
  sim_.schedule_at(when, [this, v] { run_loop_check(v); });
}

void LgSender::run_loop_check(std::int64_t v) {
  auto it = buffer_.find(v);
  if (it == buffer_.end()) return;
  Buffered& b = it->second;
  if (b.retx_requested) {
    // Retransmit N copies through the highest-priority queue. The Tofino
    // uses the multicast primitive to emit all copies in one pass.
    const int n = cfg_.n_retx_copies();
    obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kRetx, trace_actor_, v, n);
    for (int i = 0; i < n; ++i) {
      net::Packet copy = b.copy;
      copy.lg.retransmitted = true;
      port_.enqueue(retx_q_, std::move(copy));
    }
    stats_.retx_copies_sent += n;
  }
  account_free(v, b);
  buffer_bytes_ -= b.copy.frame_bytes;
  obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kBufferRelease, trace_actor_,
            v, buffer_bytes_, /*aux=tx buffer*/ 0);
  buffer_.erase(it);
}

void LgSender::account_free(std::int64_t /*v*/, const Buffered& b) {
  const SimTime lifetime = sim_.now() - b.enqueued_at;
  const std::int64_t loops = lifetime / cfg_.recirc_loop + 1;
  stats_.recirc_loops += loops;
  stats_.recirc_loop_bytes += loops * b.copy.frame_bytes;
}

void LgSender::on_transmit(net::Packet& p, int queue) {
  if (!enabled_) return;
  if (queue == normal_q_ && p.kind == net::PktKind::kData && !p.lg.valid) {
    protect_at_egress(p);
  }
  if (!cfg_.tail_loss_detection) return;
  // A dummy reads the seqNo register as it leaves the pipeline, so even a
  // dummy armed before newer data went out reveals the newest tail.
  if (queue == dummy_q_ && p.kind == net::PktKind::kLgDummy && next_v_ > 0) {
    const SeqEra wire = to_wire(next_v_ - 1);
    p.lg.seq = wire.seq;
    p.lg.era = wire.era;
    p.debug_true_seq = static_cast<std::uint64_t>(next_v_ - 1);
    return;
  }
  // Tail-loss handling (§3.2): when the normal queue drains, arm a burst of
  // dummy packets carrying the last assigned seqNo so the receiver can detect
  // the loss of the final data packet without any timeout.
  if (queue == normal_q_ && p.kind == net::PktKind::kData &&
      port_.queue_frames(normal_q_) == 0) {
    arm_dummies();
  }
}

void LgSender::arm_dummies() {
  if (!enabled_ || !cfg_.tail_loss_detection) return;
  if (next_v_ == 0) return;  // nothing sent yet; nothing to reveal
  if (port_.queue_frames(dummy_q_) > 0) return;
  ++stats_.dummies_armed;
  // Multiple copies guard against the dummy itself being corrupted (§5
  // "Handling bursty losses"): copies = retx copies + 1.
  const int copies = cfg_.n_retx_copies() + 1;
  for (int i = 0; i < copies; ++i) port_.enqueue(dummy_q_, make_dummy());
}

net::Packet LgSender::make_dummy() const {
  net::Packet d = net::make_control(net::PktKind::kLgDummy);
  const std::int64_t last = next_v_ - 1;
  const SeqEra wire = to_wire(last);
  d.lg.valid = true;
  d.lg.seq = wire.seq;
  d.lg.era = wire.era;
  d.debug_true_seq = static_cast<std::uint64_t>(last);
  return d;
}

}  // namespace lgsim::lg
