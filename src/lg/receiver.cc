#include "lg/receiver.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace lgsim::lg {

LgReceiver::LgReceiver(Simulator& sim, const LgConfig& cfg,
                       net::EgressPort& rev_port, int ctrl_q, int rev_normal_q,
                       int ack_q)
    : sim_(sim),
      cfg_(cfg),
      rev_port_(rev_port),
      ctrl_q_(ctrl_q),
      rev_normal_q_(rev_normal_q),
      ack_q_(ack_q),
      jitter_(cfg.jitter_seed ^ 0x9e3779b97f4a7c15ULL),
      trace_actor_(obs::intern_actor("lg/" + rev_port.name() + "/rcv")) {
  // Piggyback the freshest cumulative ACK on every reverse frame as it starts
  // serializing (§3.1). Explicit ACK packets get the same stamp.
  rev_port_.set_transmit_hook([this](net::Packet& p, int q) {
    if (q == rev_normal_q_ || q == ack_q_) stamp_ack(p);
  });
}

void LgReceiver::enable() {
  enabled_ = true;
  latest_rx_v_ = -1;
  ack_no_v_ = 0;
  outstanding_.clear();
  skipped_.clear();
  buffer_.clear();
  buffer_bytes_ = 0;
  bp_paused_ = false;
  release_pending_ = false;
  last_release_ = -1;
}

void LgReceiver::disable() {
  enabled_ = false;
  // Flush the reordering buffer in sequence order so nothing is stranded.
  for (auto& [v, b] : buffer_) {
    net::Packet p = std::move(b.pkt);
    p.frame_bytes -= cfg_.header_bytes;
    p.lg.valid = false;
    ++stats_.forwarded;
    stats_.forwarded_bytes += p.frame_bytes;
    if (forward_) forward_(std::move(p));
  }
  buffer_.clear();
  buffer_bytes_ = 0;
  outstanding_.clear();
  skipped_.clear();
  if (bp_paused_) {
    net::Packet r = net::make_control(net::PktKind::kPfcResume);
    r.pfc.valid = true;
    r.pfc.pause = false;
    rev_port_.enqueue(ctrl_q_, std::move(r));
    bp_paused_ = false;
  }
}

void LgReceiver::on_mode_change() {
  if (!enabled_) return;
  if (!cfg_.preserve_order) {
    // Ordered -> NB: release the reordering buffer in sequence order — NB
    // forwards out of order from here on, so anything left buffered would be
    // stranded forever. Holes stop gating delivery but stay outstanding_, so
    // a retransmitted copy still counts as recovered, not duplicate.
    for (auto& [v, b] : buffer_) {
      obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kBufferRelease,
                trace_actor_, v, 0, /*aux=mode flush*/ 2);
      forward_now(std::move(b.pkt));
    }
    buffer_.clear();
    buffer_bytes_ = 0;
    skipped_.clear();
    ack_no_v_ = latest_rx_v_ + 1;
    if (bp_paused_) {
      net::Packet r = net::make_control(net::PktKind::kPfcResume);
      r.pfc.valid = true;
      r.pfc.pause = false;
      rev_port_.enqueue(ctrl_q_, std::move(r));
      ++stats_.resumes_sent;
      bp_paused_ = false;
    }
  } else {
    // NB -> ordered: everything at or below latestRxSeqNo was already
    // forwarded (or expired) out of order; ordering restarts from the next
    // new sequence number. Unrecovered NB-era holes expire through their
    // already-armed timeouts.
    ack_no_v_ = latest_rx_v_ + 1;
    skipped_.clear();
  }
}

SeqEra LgReceiver::to_wire(std::int64_t v) const {
  return SeqEra{static_cast<std::uint16_t>(v & 0xFFFF),
                static_cast<std::uint8_t>((v >> 16) & 1)};
}

std::int64_t LgReceiver::resolve_virtual(SeqEra wire) const {
  if (latest_rx_v_ < 0) {
    return seq_distance(wire, seq_before_first()) - 1;
  }
  return latest_rx_v_ + seq_distance(wire, to_wire(latest_rx_v_));
}

SimTime LgReceiver::quantize_up(SimTime t) const {
  // Timekeeping on the switch runs off the packet-generator timer stream
  // (10 Mpps in the paper); deadlines land on the next timer tick.
  const SimTime p = cfg_.timer_period;
  if (p <= 1) return t;
  return (t + p - 1) / p * p;
}

void LgReceiver::receive(net::Packet&& p) {
  if (!enabled_ || !p.lg.valid) {
    ++stats_.unprotected_rx;
    if (p.kind == net::PktKind::kLgDummy) return;  // stale dummy after disable
    if (forward_) forward_(std::move(p));
    return;
  }
  if (p.kind == net::PktKind::kLgDummy) {
    handle_dummy(p);
    return;
  }
  handle_protected(std::move(p));
}

void LgReceiver::handle_dummy(const net::Packet& p) {
  ++stats_.dummy_rx;
  const std::int64_t v_last = resolve_virtual(SeqEra{p.lg.seq, p.lg.era});
  if (v_last > latest_rx_v_) {
    // Everything between the previous latestRxSeqNo and the dummy's seqNo was
    // transmitted and lost: this is a (possibly multi-packet) tail loss.
    const std::int64_t from = latest_rx_v_ + 1;
    latest_rx_v_ = v_last;
    detect_gap(from, v_last);
    ensure_explicit_ack();
  }
}

void LgReceiver::handle_protected(net::Packet&& p) {
  ++stats_.protected_rx;
  if (p.lg.retransmitted) ++stats_.retx_rx;

  const std::int64_t v = resolve_virtual(SeqEra{p.lg.seq, p.lg.era});
  const std::int64_t old_latest = latest_rx_v_;

  if (v > old_latest) {
    latest_rx_v_ = v;
    if (v > old_latest + 1) {
      // Gap in the sequence numbers: packets (old_latest+1 .. v-1) were lost.
      detect_gap(old_latest + 1, v - 1);
    }
    ensure_explicit_ack();
  }

  bool was_outstanding = false;
  SimTime hole_detected_at = 0;
  if (auto it = outstanding_.find(v); it != outstanding_.end()) {
    was_outstanding = true;
    hole_detected_at = it->second;
    outstanding_.erase(it);
  }
  // Recovery is credited only where the packet is actually accepted: a retx
  // that fills a hole ackNo already moved past (live NB -> ordered switch)
  // is an endpoint-visible loss, not a recovery.
  const auto credit_recovery = [&] {
    ++stats_.recovered;
    stats_.retx_delay_us.add(to_usec(sim_.now() - hole_detected_at));
    obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kRecover, trace_actor_, v,
              sim_.now() - hole_detected_at);
  };

  if (!cfg_.preserve_order) {
    // LinkGuardianNB: forward out of order; de-duplicate retransmitted
    // copies (a copy is a duplicate iff its seqNo is not a hole).
    if (v <= old_latest && !was_outstanding) {
      ++stats_.dup_dropped;
      return;
    }
    if (was_outstanding) credit_recovery();
    forward_now(std::move(p));
    return;
  }

  // Algorithm 1: de-duplication & in-order recovery. De-duplication comes
  // first: a retransmitted copy whose original is already sitting in the
  // reordering buffer must be dropped even if ackNo has just reached it
  // (the buffered original is what the pending release will forward).
  if (v >= ack_no_v_ &&
      (buffer_.count(v) != 0 || skipped_.count(v) != 0)) {
    ++stats_.dup_dropped;
    return;
  }
  if (v == ack_no_v_) {
    if (was_outstanding) credit_recovery();
    forward_now(std::move(p));
    ++ack_no_v_;
    advance_ack_no();
    return;
  }
  if (v > ack_no_v_) {
    if (buffer_bytes_ + p.frame_bytes > cfg_.recirc_buffer_bytes) {
      // The recirculation buffer overflowed (this is what Fig. 9b shows when
      // backpressure is disabled) — the packet is lost to the endpoints.
      ++stats_.reorder_drops;
      ++stats_.effectively_lost;
      obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kDrop, trace_actor_, v,
                buffer_bytes_);
      // The hole it leaves will be skipped by the ackNo timeout machinery:
      // mark it skipped immediately so the stream is not stalled forever.
      skipped_.insert(v);
      advance_ack_no();
      return;
    }
    if (was_outstanding) credit_recovery();
    buffer_bytes_ += p.frame_bytes;
    ++stats_.reorder_buffered;
    const SimTime phase = static_cast<SimTime>(
        jitter_.uniform_int(static_cast<std::uint64_t>(cfg_.recirc_loop)));
    buffer_.emplace(v, Buffered{std::move(p), sim_.now(), phase});
    backpressure_check();
    advance_ack_no();
    return;
  }
  // v < ack_no_v_: duplicate, or a retransmission arriving after ackNo
  // already moved past its hole. The latter is only reachable through a live
  // NB -> ordered switch (ordered-mode ackNo passes a hole exclusively by
  // erasing it from outstanding_ first); the original was never forwarded
  // and in-order delivery can no longer include it, so it is counted as an
  // endpoint-visible loss rather than a recovery.
  if (was_outstanding) {
    ++stats_.late_retx;
    ++stats_.effectively_lost;
    obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kDrop, trace_actor_, v,
              0, /*aux=stranded retx*/ 2);
  }
  ++stats_.dup_dropped;
}

void LgReceiver::detect_gap(std::int64_t from, std::int64_t to) {
  ++stats_.gaps_detected;
  const std::int64_t count = to - from + 1;
  stats_.reported_lost += count;
  obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kGapDetect, trace_actor_,
            from, to);
  for (std::int64_t v = from; v <= to; ++v) {
    outstanding_.emplace(v, sim_.now());
    arm_timeout(v);
  }
  send_notification(from, count);
}

void LgReceiver::send_notification(std::int64_t from, std::int64_t count) {
  obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kLossNotif, trace_actor_,
            from, count, /*aux=sent*/ 0);
  for (int c = 0; c < cfg_.loss_notif_copies; ++c) {
    net::Packet n = net::make_control(net::PktKind::kLgLossNotif);
    const SeqEra wire = to_wire(from);
    n.lg_notif.valid = true;
    n.lg_notif.first_missing = wire.seq;
    n.lg_notif.first_missing_era = wire.era;
    n.lg_notif.count = static_cast<std::uint16_t>(std::min<std::int64_t>(count, 0xFFFF));
    stamp_ack(n);  // carries latestRxSeqNo as well (§A.1)
    rev_port_.enqueue(ctrl_q_, std::move(n));
    ++stats_.notifs_sent;
  }
}

void LgReceiver::arm_timeout(std::int64_t v) {
  const SimTime deadline = quantize_up(sim_.now() + cfg_.ack_no_timeout);
  sim_.schedule_at(deadline, [this, v] { on_timeout(v); });
}

void LgReceiver::on_timeout(std::int64_t v) {
  auto it = outstanding_.find(v);
  if (it == outstanding_.end()) return;  // recovered in time
  outstanding_.erase(it);
  ++stats_.effectively_lost;
  if (!cfg_.preserve_order) {
    // NB mode has no ackNo to stall; this is bookkeeping of an unrecovered
    // loss that the endpoint transport must now deal with.
    ++stats_.expired;
    return;
  }
  ++stats_.timeouts;
  obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kTimeout, trace_actor_, v);
  // Ignore the lost packet and move on (§3.5 "Preventing transmission
  // stalls"): the hole is skipped and any buffered successors drain. A hole
  // already behind ackNo (an NB-era timeout firing after a live switch back
  // to ordered mode) needs no skip marker — ackNo never revisits it.
  if (v >= ack_no_v_) skipped_.insert(v);
  advance_ack_no();
}

void LgReceiver::forward_now(net::Packet&& p) {
  p.frame_bytes -= cfg_.header_bytes;
  p.lg.valid = false;
  ++stats_.forwarded;
  stats_.forwarded_bytes += p.frame_bytes;
  if (forward_) forward_(std::move(p));
}

void LgReceiver::advance_ack_no() {
  if (release_pending_) return;  // the in-flight release continues the chain
  while (true) {
    if (auto it = skipped_.find(ack_no_v_); it != skipped_.end()) {
      skipped_.erase(it);
      ++ack_no_v_;
      continue;
    }
    if (buffer_.count(ack_no_v_) != 0) {
      schedule_release();
      return;
    }
    return;
  }
}

void LgReceiver::schedule_release() {
  auto it = buffer_.find(ack_no_v_);
  assert(it != buffer_.end());
  const Buffered& b = it->second;
  const BitRate drain =
      cfg_.downstream_drain_rate > 0
          ? std::min(cfg_.recirc_drain_rate, cfg_.downstream_drain_rate)
          : cfg_.recirc_drain_rate;
  const SimTime spacing = serialization_time(b.pkt.wire_bytes(), drain);
  // The head of a fresh drain waits for its next pass through the
  // recirculation loop (its position in the loop is the random per-packet
  // phase); once the chain is flowing, buffered packets are spread through
  // the loop and releases stream at the drain rate (§3.3: "the
  // recirculation-based buffer drains at 100G").
  const bool chain_idle =
      last_release_ < 0 || sim_.now() - last_release_ > cfg_.recirc_loop;
  SimTime when;
  if (chain_idle) {
    const SimTime anchor = b.entered_at + b.loop_phase;
    const SimTime k =
        anchor > sim_.now() ? 0 : (sim_.now() - anchor) / cfg_.recirc_loop + 1;
    when = anchor + k * cfg_.recirc_loop;
  } else {
    when = std::max(sim_.now(), last_release_ + spacing);
  }
  release_pending_ = true;
  sim_.schedule_at(when, [this] {
    release_pending_ = false;
    auto it2 = buffer_.find(ack_no_v_);
    if (it2 == buffer_.end()) {
      // The head moved while this release was in flight (e.g. an
      // ackNoTimeout skipped it); restart the advance logic so buffered
      // successors are not stranded.
      if (enabled_) advance_ack_no();
      return;
    }
    Buffered b2 = std::move(it2->second);
    buffer_.erase(it2);
    buffer_bytes_ -= b2.pkt.frame_bytes;
    const SimTime lifetime = sim_.now() - b2.entered_at;
    const std::int64_t loops = lifetime / cfg_.recirc_loop + 1;
    stats_.recirc_loops += loops;
    stats_.recirc_loop_bytes += loops * b2.pkt.frame_bytes;
    last_release_ = sim_.now();
    obs::emit(sim_.now(), obs::Cat::kLg, obs::Kind::kBufferRelease,
              trace_actor_, ack_no_v_, buffer_bytes_, /*aux=rx buffer*/ 1);
    forward_now(std::move(b2.pkt));
    ++ack_no_v_;
    backpressure_check();
    advance_ack_no();
  });
}

void LgReceiver::backpressure_check() {
  if (!cfg_.backpressure || !cfg_.preserve_order) return;
  // Algorithm 2. curr_state is bp_paused_.
  if (buffer_bytes_ >= cfg_.pause_threshold && !bp_paused_) {
    bp_paused_ = true;
    ++stats_.pauses_sent;
    obs::emit(sim_.now(), obs::Cat::kPfc, obs::Kind::kPause, trace_actor_,
              buffer_bytes_, 0, /*aux=sent*/ 0);
    send_pfc(true);
    arm_pfc_refresh();
  } else if (buffer_bytes_ <= cfg_.resume_threshold && bp_paused_) {
    bp_paused_ = false;
    ++stats_.resumes_sent;
    obs::emit(sim_.now(), obs::Cat::kPfc, obs::Kind::kResume, trace_actor_,
              buffer_bytes_, 0, /*aux=sent*/ 0);
    send_pfc(false);
    // Repeat the resume a few refresh periods (the timer-packet stream keeps
    // carrying the state on hardware) so a corrupted resume frame cannot
    // deadlock the sender under bidirectional corruption.
    resume_repeats_ = 4;
    arm_pfc_refresh();
  }
}

void LgReceiver::send_pfc(bool pause) {
  for (int c = 0; c < cfg_.control_copies; ++c) {
    net::Packet f = net::make_control(pause ? net::PktKind::kPfcPause
                                            : net::PktKind::kPfcResume);
    f.pfc.valid = true;
    f.pfc.pause = pause;
    rev_port_.enqueue(ctrl_q_, std::move(f));
  }
}

void LgReceiver::arm_pfc_refresh() {
  if (pfc_refresh_armed_) return;
  pfc_refresh_armed_ = true;
  sim_.schedule_in(cfg_.pfc_refresh_period, [this] {
    pfc_refresh_armed_ = false;
    if (!enabled_ || !cfg_.backpressure) return;
    if (bp_paused_) {
      send_pfc(true);
      arm_pfc_refresh();
    } else if (resume_repeats_ > 0) {
      --resume_repeats_;
      send_pfc(false);
      arm_pfc_refresh();
    }
  });
}

void LgReceiver::ensure_explicit_ack() {
  // One explicit minimum-size ACK is kept in the strictly-lowest-priority
  // queue whenever there is fresh ACK state to convey; it transmits the
  // moment the reverse link has nothing better to send and is re-armed on
  // the next advance (§3.1). The header contents are stamped at serialization
  // time, so a queued ACK always carries the freshest latestRxSeqNo.
  if (rev_port_.queue_frames(ack_q_) > 0) return;
  ++stats_.acks_armed;
  for (int c = 0; c < cfg_.control_copies; ++c) {
    net::Packet a = net::make_control(net::PktKind::kLgAck);
    rev_port_.enqueue(ack_q_, std::move(a));
  }
}

void LgReceiver::stamp_ack(net::Packet& p) {
  if (!enabled_ || latest_rx_v_ < 0) return;
  const SeqEra wire = to_wire(latest_rx_v_);
  p.lg_ack.valid = true;
  p.lg_ack.latest_rx_seq = wire.seq;
  p.lg_ack.era = wire.era;
}

void LgReceiver::send_reverse(net::Packet p) {
  rev_port_.enqueue(rev_normal_q_, std::move(p));
}

}  // namespace lgsim::lg
