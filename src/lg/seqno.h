// Era-corrected 16-bit sequence-number arithmetic (§3.5 "Handling seqNo
// wrap-around").
//
// LinkGuardian's data header carries a 16-bit seqNo plus a 1-bit "era" that
// toggles every time the sequence number wraps. Two sequence numbers from
// different eras are compared after subtracting N/2 (N = 65536) from both,
// which is correct as long as they are no more than N/2 apart — a property
// the protocol maintains because the Tx window is tiny compared to N.
#pragma once

#include <cstdint>

namespace lgsim::lg {

constexpr std::uint32_t kSeqSpace = 65536;  // N
constexpr std::uint16_t kSeqHalf = 32768;   // N/2

struct SeqEra {
  std::uint16_t seq = 0;
  std::uint8_t era = 0;

  friend bool operator==(SeqEra a, SeqEra b) {
    return a.seq == b.seq && a.era == b.era;
  }
};

/// Next sequence number; toggles the era on wrap-around.
constexpr SeqEra seq_next(SeqEra s) {
  if (s.seq == 0xFFFF) return {0, static_cast<std::uint8_t>(s.era ^ 1)};
  return {static_cast<std::uint16_t>(s.seq + 1), s.era};
}

/// Signed distance a - b in era-corrected space. Valid when the true distance
/// is within (-N/2, N/2). Implements the paper's era-correction rule: same
/// era -> plain subtraction; different eras -> subtract N/2 from both
/// (mod N) before subtracting.
constexpr std::int32_t seq_distance(SeqEra a, SeqEra b) {
  if (a.era == b.era) {
    return static_cast<std::int32_t>(a.seq) - static_cast<std::int32_t>(b.seq);
  }
  const std::uint16_t a2 = static_cast<std::uint16_t>(a.seq - kSeqHalf);
  const std::uint16_t b2 = static_cast<std::uint16_t>(b.seq - kSeqHalf);
  return static_cast<std::int32_t>(a2) - static_cast<std::int32_t>(b2);
}

constexpr bool seq_less(SeqEra a, SeqEra b) { return seq_distance(a, b) < 0; }
constexpr bool seq_leq(SeqEra a, SeqEra b) { return seq_distance(a, b) <= 0; }
constexpr bool seq_greater(SeqEra a, SeqEra b) { return seq_distance(a, b) > 0; }

/// Advance s by n (n < N/2).
constexpr SeqEra seq_add(SeqEra s, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) s = seq_next(s);
  return s;
}

/// The state both endpoints start from: "nothing received yet", whose
/// successor is seq 0 of era 0.
constexpr SeqEra seq_before_first() { return {0xFFFF, 1}; }

}  // namespace lgsim::lg
