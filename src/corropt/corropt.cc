#include "corropt/corropt.h"

#include <algorithm>
#include <cmath>

namespace lgsim::corropt {

const std::vector<LossBucket>& table1_buckets() {
  static const std::vector<LossBucket> kBuckets = {
      {1e-8, 1e-5, 0.4723},
      {1e-5, 1e-4, 0.1843},
      {1e-4, 1e-3, 0.2166},
      {1e-3, 1e-1, 0.1267},  // "[1e-3+)": cap at 10% loss
  };
  return kBuckets;
}

double sample_loss_rate(Rng& rng) {
  const auto& buckets = table1_buckets();
  double u = rng.uniform();
  for (const auto& b : buckets) {
    if (u < b.fraction) {
      // Log-uniform within the bucket.
      const double f = rng.uniform();
      return std::exp(std::log(b.lo) + f * (std::log(b.hi) - std::log(b.lo)));
    }
    u -= b.fraction;
  }
  return buckets.back().hi;
}

std::vector<CorruptionEvent> generate_trace(std::int64_t n_links,
                                            double duration_hours,
                                            double mttf_hours, Rng& rng) {
  std::vector<CorruptionEvent> trace;
  for (std::int64_t l = 0; l < n_links; ++l) {
    // Weibull with shape 1 (Appendix D, Eq. 3): memoryless inter-failure
    // times with mean MTTF. A link can fail repeatedly within the horizon;
    // subsequent failures only matter once it has been repaired, which the
    // deployment simulation enforces.
    double t = rng.weibull(1.0, mttf_hours);
    while (t < duration_hours) {
      trace.push_back({t, l, sample_loss_rate(rng)});
      t += rng.weibull(1.0, mttf_hours);
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const CorruptionEvent& a, const CorruptionEvent& b) {
              return a.time_hours < b.time_hours;
            });
  return trace;
}

double lg_effective_speed(double loss_rate) {
  // Fig. 8, ordered LinkGuardian on a 100G link: ~99.9% at 1e-5, ~99.5% at
  // 1e-4, ~92% at 1e-3; extrapolate mildly beyond.
  if (loss_rate <= 1e-5) return 0.999;
  if (loss_rate <= 1e-4) return 0.995;
  if (loss_rate <= 1e-3) return 0.92;
  return 0.85;
}

namespace {

struct RepairEvent {
  double time_hours;
  std::int64_t link;
  bool operator>(const RepairEvent& o) const { return time_hours > o.time_hours; }
};

}  // namespace

DeploymentResult run_deployment(const DeploymentConfig& cfg) {
  DeploymentResult res;
  res.cfg = cfg;

  fabric::FabricTopology topo(cfg.topo);
  Rng rng(cfg.seed);
  Rng repair_rng = rng.split();
  const auto trace =
      generate_trace(topo.n_links(), cfg.duration_hours, cfg.mttf_hours, rng);
  res.corruption_events = static_cast<std::int64_t>(trace.size());

  std::priority_queue<RepairEvent, std::vector<RepairEvent>, std::greater<>>
      repairs;
  // Links waiting for an optimizer pass (corrupting but not disablable yet).
  std::vector<std::int64_t> active_corrupting;

  auto repair_duration = [&]() {
    return repair_rng.bernoulli(cfg.repair_fast_fraction) ? cfg.repair_fast_hours
                                                          : cfg.repair_slow_hours;
  };

  auto disable_link = [&](std::int64_t id, double now) {
    auto& l = topo.link(id);
    l.up = false;
    l.lg_enabled = false;
    l.effective_speed = 1.0;
    repairs.push({now + repair_duration(), id});
  };

  auto start_corruption = [&](const CorruptionEvent& ev) {
    auto& l = topo.link(ev.link);
    if (!l.up || l.corrupting) return;  // already down or already corrupting
    l.corrupting = true;
    l.loss_rate = ev.loss_rate;
    if (cfg.use_linkguardian) {
      // §3.6: activate LinkGuardian immediately, then try to disable.
      l.lg_enabled = true;
      l.effective_speed = lg_effective_speed(ev.loss_rate);
    }
    if (topo.can_disable(ev.link, cfg.capacity_constraint)) {
      ++res.disabled_immediately;
      disable_link(ev.link, ev.time_hours);
    } else {
      ++res.kept_active;
      active_corrupting.push_back(ev.link);
    }
  };

  auto run_optimizer = [&](double now) {
    // Greedy CorrOpt optimizer: consider remaining corrupting links in
    // decreasing loss-rate order and disable whatever now fits.
    std::sort(active_corrupting.begin(), active_corrupting.end(),
              [&](std::int64_t a, std::int64_t b) {
                return topo.link(a).loss_rate > topo.link(b).loss_rate;
              });
    std::vector<std::int64_t> still_active;
    for (std::int64_t id : active_corrupting) {
      auto& l = topo.link(id);
      if (!l.up || !l.corrupting) continue;
      if (topo.can_disable(id, cfg.capacity_constraint)) {
        ++res.disabled_by_optimizer;
        disable_link(id, now);
      } else {
        still_active.push_back(id);
      }
    }
    active_corrupting = std::move(still_active);
  };

  // Main loop: merge the corruption trace, repair completions, and periodic
  // metric sampling in time order.
  std::size_t ti = 0;
  double next_sample = cfg.sample_period_hours;
  double now = 0.0;
  while (now < cfg.duration_hours) {
    double t_trace = ti < trace.size() ? trace[ti].time_hours : 1e18;
    double t_repair = !repairs.empty() ? repairs.top().time_hours : 1e18;
    double t_next = std::min({t_trace, t_repair, next_sample});
    if (t_next >= cfg.duration_hours) break;
    now = t_next;
    if (t_next == t_trace) {
      start_corruption(trace[ti++]);
    } else if (t_next == t_repair) {
      const auto ev = repairs.top();
      repairs.pop();
      auto& l = topo.link(ev.link);
      l.up = true;
      l.corrupting = false;
      l.loss_rate = 0.0;
      l.lg_enabled = false;
      l.effective_speed = 1.0;
      // A repaired link returning is CorrOpt's trigger to re-optimize.
      run_optimizer(now);
    } else {
      DeploymentSample s;
      s.time_hours = now;
      s.total_penalty = topo.total_penalty(cfg.lg_target_loss);
      s.least_paths_frac = topo.least_paths_per_tor_frac();
      s.least_capacity_frac = topo.least_capacity_per_pod_frac();
      s.corrupting_links = 0;
      s.disabled_links = 0;
      s.lg_links = 0;
      for (std::int64_t i = 0; i < topo.n_links(); ++i) {
        const auto& l = topo.link(i);
        if (!l.up) ++s.disabled_links;
        if (l.up && l.corrupting) ++s.corrupting_links;
        if (l.up && l.lg_enabled) ++s.lg_links;
      }
      res.samples.push_back(s);
      res.max_lg_per_switch =
          std::max(res.max_lg_per_switch, topo.max_lg_links_per_switch());
      next_sample += cfg.sample_period_hours;
    }
  }
  return res;
}

}  // namespace lgsim::corropt
