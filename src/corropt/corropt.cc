#include "corropt/corropt.h"

#include <algorithm>
#include <cmath>

#include "fabric/naive_metrics.h"

namespace lgsim::corropt {

const std::vector<LossBucket>& table1_buckets() {
  static const std::vector<LossBucket> kBuckets = {
      {1e-8, 1e-5, 0.4723},
      {1e-5, 1e-4, 0.1843},
      {1e-4, 1e-3, 0.2166},
      {1e-3, 1e-1, 0.1267},  // "[1e-3+)": cap at 10% loss
  };
  return kBuckets;
}

double sample_loss_rate(Rng& rng) {
  const auto& buckets = table1_buckets();
  // The Table 1 fractions sum to 0.9999 (the paper rounds to four digits);
  // without normalization ~1e-4 of all draws would skip every bucket and
  // land on the hard cap below instead of a log-uniform draw.
  static const double total = [] {
    double t = 0.0;
    for (const auto& b : table1_buckets()) t += b.fraction;
    return t;
  }();
  double u = rng.uniform() * total;
  for (const auto& b : buckets) {
    if (u < b.fraction) {
      // Log-uniform within the bucket.
      const double f = rng.uniform();
      return std::exp(std::log(b.lo) + f * (std::log(b.hi) - std::log(b.lo)));
    }
    u -= b.fraction;
  }
  // Unreachable barring floating-point rounding on the final subtraction.
  return buckets.back().hi;
}

namespace {

/// Decorrelates per-link RNG streams from one base seed (SplitMix64
/// finalizer over base + link). Each link's failure/loss draws are a fixed
/// function of (base, link) — independent of how many events other links
/// produced, which is what lets the stream draw them lazily in pop order.
std::uint64_t per_link_seed(std::uint64_t base, std::int64_t link) {
  std::uint64_t z =
      base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(link) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CorruptionStream::CorruptionStream(std::int64_t n_links, double duration_hours,
                                   double mttf_hours, Rng& rng)
    : duration_hours_(duration_hours), mttf_hours_(mttf_hours) {
  const std::uint64_t base = rng.next_u64();
  for (std::int64_t l = 0; l < n_links; ++l) {
    // Weibull with shape 1 (Appendix D, Eq. 3): memoryless inter-failure
    // times with mean MTTF. A link can fail repeatedly within the horizon;
    // subsequent failures only matter once it has been repaired, which the
    // deployment simulation enforces.
    Entry e{0.0, l, Rng(per_link_seed(base, l))};
    e.time_hours = e.rng.weibull(1.0, mttf_hours_);
    if (e.time_hours < duration_hours_) heap_.push(std::move(e));
  }
}

CorruptionEvent CorruptionStream::pop() {
  Entry e = heap_.top();
  heap_.pop();
  const CorruptionEvent ev{e.time_hours, e.link, sample_loss_rate(e.rng)};
  e.time_hours += e.rng.weibull(1.0, mttf_hours_);
  if (e.time_hours < duration_hours_) heap_.push(std::move(e));
  return ev;
}

std::vector<CorruptionEvent> generate_trace(std::int64_t n_links,
                                            double duration_hours,
                                            double mttf_hours, Rng& rng) {
  CorruptionStream stream(n_links, duration_hours, mttf_hours, rng);
  std::vector<CorruptionEvent> trace;
  while (!stream.done()) trace.push_back(stream.pop());
  return trace;
}

double lg_effective_speed(double loss_rate) {
  // Fig. 8, ordered LinkGuardian on a 100G link: ~99.9% at 1e-5, ~99.5% at
  // 1e-4, ~92% at 1e-3; extrapolate mildly beyond.
  if (loss_rate <= 1e-5) return 0.999;
  if (loss_rate <= 1e-4) return 0.995;
  if (loss_rate <= 1e-3) return 0.92;
  return 0.85;
}

namespace {

struct RepairEvent {
  double time_hours;
  std::int64_t link;
  bool operator>(const RepairEvent& o) const { return time_hours > o.time_hours; }
};

/// Links waiting for an optimizer pass (corrupting but not disablable yet),
/// kept ordered by (loss_rate desc, link asc) — the greedy optimizer's
/// consideration order. Replaces the seed implementation's full re-sort on
/// every repair event with one binary-search insertion per admitted link and
/// an in-place stable compaction per pass. (A heap would be strictly worse
/// here: every pass must visit *all* entries in order, which a heap only
/// yields by popping and re-pushing the survivors.)
class ActiveCorrupting {
 public:
  struct Entry {
    double loss_rate;
    std::int64_t link;
  };

  void insert(double loss_rate, std::int64_t link) {
    const Entry e{loss_rate, link};
    entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), e,
                                     [](const Entry& a, const Entry& b) {
                                       if (a.loss_rate != b.loss_rate)
                                         return a.loss_rate > b.loss_rate;
                                       return a.link < b.link;
                                     }),
                    e);
  }

  /// Calls `disable(link)` for each entry it should drop (in order); keeps
  /// the rest, preserving order.
  template <typename Pred, typename Disable>
  void drop_if(Pred pred, Disable disable) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (pred(entries_[i].link)) {
        disable(entries_[i].link);
      } else {
        entries_[kept++] = entries_[i];
      }
    }
    entries_.resize(kept);
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace

DeploymentResult run_deployment(const DeploymentConfig& cfg) {
  DeploymentResult res;
  res.cfg = cfg;

  using fabric::LinkTransition;
  using fabric::NaiveFabricMetrics;
  fabric::FabricTopology topo(cfg.topo);
  Rng rng(cfg.seed);
  Rng repair_rng = rng.split();
  CorruptionStream stream(topo.n_links(), cfg.duration_hours, cfg.mttf_hours,
                          rng);

  std::priority_queue<RepairEvent, std::vector<RepairEvent>, std::greater<>>
      repairs;
  ActiveCorrupting active_corrupting;

  auto repair_duration = [&]() {
    return repair_rng.bernoulli(cfg.repair_fast_fraction) ? cfg.repair_fast_hours
                                                          : cfg.repair_slow_hours;
  };

  auto disable_link = [&](std::int64_t id, double now) {
    topo.apply({LinkTransition::Kind::kDisable, id});
    repairs.push({now + repair_duration(), id});
  };

  auto start_corruption = [&](const CorruptionEvent& ev) {
    const auto& l = topo.link(ev.link);
    if (!l.up || l.corrupting) return;  // already down or already corrupting
    topo.apply({LinkTransition::Kind::kCorrupt, ev.link, ev.loss_rate});
    if (cfg.use_linkguardian) {
      // §3.6: activate LinkGuardian immediately, then try to disable.
      topo.apply({LinkTransition::Kind::kEnableLg, ev.link, 0.0,
                  lg_effective_speed(ev.loss_rate)});
    }
    if (topo.can_disable(ev.link, cfg.capacity_constraint)) {
      ++res.disabled_immediately;
      disable_link(ev.link, ev.time_hours);
    } else {
      ++res.kept_active;
      active_corrupting.insert(ev.loss_rate, ev.link);
    }
  };

  auto run_optimizer = [&](double now) {
    // Greedy CorrOpt optimizer: consider remaining corrupting links in
    // decreasing loss-rate order and disable whatever now fits.
    active_corrupting.drop_if(
        [&](std::int64_t id) {
          return topo.can_disable(id, cfg.capacity_constraint);
        },
        [&](std::int64_t id) {
          ++res.disabled_by_optimizer;
          disable_link(id, now);
        });
  };

  // Main loop: merge the corruption stream, repair completions, and periodic
  // metric sampling in time order.
  double next_sample = cfg.sample_period_hours;
  double now = 0.0;
  while (now < cfg.duration_hours) {
    const double t_trace = !stream.done() ? stream.next_time_hours() : 1e18;
    const double t_repair = !repairs.empty() ? repairs.top().time_hours : 1e18;
    const double t_next = std::min({t_trace, t_repair, next_sample});
    if (t_next >= cfg.duration_hours) break;
    now = t_next;
    if (t_next == t_trace) {
      ++res.corruption_events;
      start_corruption(stream.pop());
    } else if (t_next == t_repair) {
      const auto ev = repairs.top();
      repairs.pop();
      topo.apply({LinkTransition::Kind::kRepair, ev.link});
      // A repaired link returning is CorrOpt's trigger to re-optimize.
      run_optimizer(now);
    } else {
      DeploymentSample s;
      s.time_hours = now;
      if (cfg.naive_metrics) {
        // Pre-refactor reference path: full O(links) scans per sample.
        s.total_penalty = NaiveFabricMetrics::total_penalty(topo, cfg.lg_target_loss);
        s.least_paths_frac = NaiveFabricMetrics::least_paths_per_tor_frac(topo);
        s.least_capacity_frac =
            NaiveFabricMetrics::least_capacity_per_pod_frac(topo);
        s.corrupting_links = 0;
        s.disabled_links = 0;
        s.lg_links = 0;
        for (std::int64_t i = 0; i < topo.n_links(); ++i) {
          const auto& l = topo.link(i);
          if (!l.up) ++s.disabled_links;
          if (l.up && l.corrupting) ++s.corrupting_links;
          if (l.up && l.lg_enabled) ++s.lg_links;
        }
        res.max_lg_per_switch = std::max(
            res.max_lg_per_switch, NaiveFabricMetrics::max_lg_links_per_switch(topo));
      } else {
        s.total_penalty = topo.total_penalty(cfg.lg_target_loss);
        s.least_paths_frac = topo.least_paths_per_tor_frac();
        s.least_capacity_frac = topo.least_capacity_per_pod_frac();
        s.corrupting_links = static_cast<std::int32_t>(topo.corrupting_up_links());
        s.disabled_links = static_cast<std::int32_t>(topo.disabled_links());
        s.lg_links = static_cast<std::int32_t>(topo.lg_up_links());
        res.max_lg_per_switch =
            std::max(res.max_lg_per_switch, topo.max_lg_links_per_switch());
      }
      res.samples.push_back(s);
      next_sample += cfg.sample_period_hours;
    }
  }
  return res;
}

}  // namespace lgsim::corropt
