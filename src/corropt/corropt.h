// CorrOpt re-implementation and large-scale deployment simulation (§4.8,
// Appendices C/D of the paper; methodology of Zhuo et al., SIGCOMM'17).
//
// The trace generator draws per-link corruption onset times from a Weibull
// distribution with shape 1 (pure random external causes) and MTTF 10,000
// hours, and corruption loss rates from the Table 1 production buckets.
// CorrOpt's *fast checker* decides whether a newly corrupting link can be
// disabled without violating the capacity constraint; its *optimizer* runs
// whenever a repaired link comes back and greedily disables the worst
// remaining corrupting links that now fit. The LinkGuardian+CorrOpt strategy
// (§3.6) additionally activates LinkGuardian the moment corruption is
// detected, so links that cannot be disabled keep a residual loss of at most
// the operator target.
//
// Scale (DESIGN.md §11): the year-long paper-scale run (~100K links) streams
// corruption events from a per-link next-failure heap (`CorruptionStream`)
// instead of materializing and sorting the whole horizon's trace — O(links)
// state instead of O(events) — and reads every per-sample metric from the
// FabricTopology incremental capacity engine. The pre-refactor full-scan
// metrics remain available behind `DeploymentConfig::naive_metrics`
// (fabric/naive_metrics.h); both paths produce bit-identical
// `DeploymentResult`s, which the differential tests and `bench_deploy`
// enforce.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "fabric/topology.h"
#include "sim/random.h"
#include "util/units.h"

namespace lgsim::corropt {

/// Table 1: corruption loss rates observed in Microsoft datacenters.
struct LossBucket {
  double lo;
  double hi;
  double fraction;
};
const std::vector<LossBucket>& table1_buckets();

/// Draw a corruption loss rate from the Table 1 distribution (log-uniform
/// within the bucket). The bucket choice is normalized by the total of the
/// Table 1 fractions (0.9999 — the paper's percentages are rounded), so no
/// probability mass silently falls through to the 10% hard cap.
double sample_loss_rate(Rng& rng);

struct CorruptionEvent {
  double time_hours;
  std::int64_t link;
  double loss_rate;
};

/// Streams the corruption trace of Appendix D in time order without ever
/// materializing it: a min-heap over per-link next-failure entries, each
/// carrying its own RNG stream (seeded from `rng` and the link id). Popping
/// an event draws that link's loss rate and next failure lazily, so memory
/// stays O(links) regardless of the horizon. Ties on time break by link id,
/// making the stream fully deterministic.
class CorruptionStream {
 public:
  CorruptionStream(std::int64_t n_links, double duration_hours,
                   double mttf_hours, Rng& rng);

  bool done() const { return heap_.empty(); }
  /// Time of the next event; only valid when !done().
  double next_time_hours() const { return heap_.top().time_hours; }
  CorruptionEvent pop();

 private:
  struct Entry {
    double time_hours;
    std::int64_t link;
    Rng rng;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_hours != b.time_hours) return a.time_hours > b.time_hours;
      return a.link > b.link;
    }
  };

  double duration_hours_;
  double mttf_hours_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

/// Generates the corruption trace of Appendix D for a topology of n links by
/// draining a CorruptionStream: identical events, (time, link)-sorted.
std::vector<CorruptionEvent> generate_trace(std::int64_t n_links,
                                            double duration_hours,
                                            double mttf_hours, Rng& rng);

struct DeploymentConfig {
  fabric::TopologyConfig topo;
  double capacity_constraint = 0.75;  // least-paths-per-ToR floor
  double duration_hours = 24 * 365;
  double mttf_hours = 10'000;
  bool use_linkguardian = false;
  double lg_target_loss = 1e-8;
  /// Repair times: 80% of links repaired in ~2 days, 20% in ~4 days.
  double repair_fast_hours = 48;
  double repair_slow_hours = 96;
  double repair_fast_fraction = 0.8;
  /// Metric sampling period.
  double sample_period_hours = 1.0;
  std::uint64_t seed = 7;
  /// Compute per-sample metrics with the scan-based NaiveFabricMetrics
  /// reference instead of the incremental engine. Same events, same RNG
  /// streams — the DeploymentResult must be bit-identical either way (the
  /// differential tests and bench_deploy --smoke assert this).
  bool naive_metrics = false;
};

struct DeploymentSample {
  double time_hours;
  double total_penalty;
  double least_paths_frac;
  double least_capacity_frac;
  std::int32_t corrupting_links;
  std::int32_t disabled_links;
  std::int32_t lg_links;
};

struct DeploymentResult {
  DeploymentConfig cfg;
  std::vector<DeploymentSample> samples;
  std::int64_t corruption_events = 0;
  std::int64_t disabled_immediately = 0;  // fast checker said yes
  std::int64_t kept_active = 0;           // capacity constraint blocked it
  std::int64_t disabled_by_optimizer = 0;
  std::int32_t max_lg_per_switch = 0;
};

DeploymentResult run_deployment(const DeploymentConfig& cfg);

/// Effective link speed of a LinkGuardian-protected link as a function of
/// the loss rate (the Fig. 8 measurement, ordered mode at 100G).
double lg_effective_speed(double loss_rate);

}  // namespace lgsim::corropt
