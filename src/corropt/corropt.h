// CorrOpt re-implementation and large-scale deployment simulation (§4.8,
// Appendices C/D of the paper; methodology of Zhuo et al., SIGCOMM'17).
//
// The trace generator draws per-link corruption onset times from a Weibull
// distribution with shape 1 (pure random external causes) and MTTF 10,000
// hours, and corruption loss rates from the Table 1 production buckets.
// CorrOpt's *fast checker* decides whether a newly corrupting link can be
// disabled without violating the capacity constraint; its *optimizer* runs
// whenever a repaired link comes back and greedily disables the worst
// remaining corrupting links that now fit. The LinkGuardian+CorrOpt strategy
// (§3.6) additionally activates LinkGuardian the moment corruption is
// detected, so links that cannot be disabled keep a residual loss of at most
// the operator target.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "fabric/topology.h"
#include "sim/random.h"
#include "util/units.h"

namespace lgsim::corropt {

/// Table 1: corruption loss rates observed in Microsoft datacenters.
struct LossBucket {
  double lo;
  double hi;
  double fraction;
};
const std::vector<LossBucket>& table1_buckets();

/// Draw a corruption loss rate from the Table 1 distribution (log-uniform
/// within the bucket).
double sample_loss_rate(Rng& rng);

struct CorruptionEvent {
  double time_hours;
  std::int64_t link;
  double loss_rate;
};

/// Generates the corruption trace of Appendix D for a topology of n links.
std::vector<CorruptionEvent> generate_trace(std::int64_t n_links,
                                            double duration_hours,
                                            double mttf_hours, Rng& rng);

struct DeploymentConfig {
  fabric::TopologyConfig topo;
  double capacity_constraint = 0.75;  // least-paths-per-ToR floor
  double duration_hours = 24 * 365;
  double mttf_hours = 10'000;
  bool use_linkguardian = false;
  double lg_target_loss = 1e-8;
  /// Repair times: 80% of links repaired in ~2 days, 20% in ~4 days.
  double repair_fast_hours = 48;
  double repair_slow_hours = 96;
  double repair_fast_fraction = 0.8;
  /// Metric sampling period.
  double sample_period_hours = 1.0;
  std::uint64_t seed = 7;
};

struct DeploymentSample {
  double time_hours;
  double total_penalty;
  double least_paths_frac;
  double least_capacity_frac;
  std::int32_t corrupting_links;
  std::int32_t disabled_links;
  std::int32_t lg_links;
};

struct DeploymentResult {
  DeploymentConfig cfg;
  std::vector<DeploymentSample> samples;
  std::int64_t corruption_events = 0;
  std::int64_t disabled_immediately = 0;  // fast checker said yes
  std::int64_t kept_active = 0;           // capacity constraint blocked it
  std::int64_t disabled_by_optimizer = 0;
  std::int32_t max_lg_per_switch = 0;
};

DeploymentResult run_deployment(const DeploymentConfig& cfg);

/// Effective link speed of a LinkGuardian-protected link as a function of
/// the loss rate (the Fig. 8 measurement, ordered mode at 100G).
double lg_effective_speed(double loss_rate);

}  // namespace lgsim::corropt
