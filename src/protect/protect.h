// 1+1 path protection baseline (P4-Protect, arXiv 2001.11370).
//
// P4-Protect [Lindner et al.] secures traffic between two nodes by sending
// every packet twice, over two disjoint paths, inside a tunneling header
// that carries a sequence number. The merge point forwards the first copy
// of each sequence number and drops the second. Protection is proactive:
// there is no failure detection and no recovery latency — a corrupted copy
// on one path is masked instantly by its twin on the other — at the price
// of permanently consuming twice the fabric capacity (and a dedup lookup at
// the merge point).
//
// Two fidelity levels, differentially tested against each other:
//   * OnePlusOnePath — packet-level: a replication point stamping tunnel
//     sequence numbers, two disjoint simulated links with independent loss
//     processes (optionally skewed in latency), and a SeqDedup filter at
//     the merge point.
//   * TwoPathLoss — the residual collapsed to a loss process (a frame is
//     lost only if both copies are corrupted), for driving a TestbedPath at
//     goodput-sweep scale.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/packet.h"
#include "net/pipeline.h"
#include "net/port.h"
#include "net/protection.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::protect {

/// Tunnel-header bytes the replication point adds (sequence number + type,
/// per P4-Protect's 1+1 header).
inline constexpr std::int32_t kDupHeaderBytes = 4;

struct ProtectParams {
  /// Extra one-way latency of the protection path relative to the working
  /// path (0 = equal-cost disjoint paths, the datacenter deployment; the
  /// merge then preserves order).
  SimTime path_skew = 0;
  /// Dedup lookup / tunnel decap latency at the merge point.
  SimTime merge_latency = nsec(50);
  /// Raw corruption rate of the protection path (the working path's process
  /// is scripted/driven; the disjoint path has its own independent one).
  double secondary_rate = 0.0;
  /// Seed offset for the protection path's loss process, so the two paths
  /// draw from independent streams of the same grid seed.
  std::uint64_t secondary_seed_offset = 0x9e3779b9;
  /// Merge-point dedup window in sequence numbers (rounded up to a power of
  /// two; must exceed the worst-case reorder span between the two paths).
  int dedup_window = 8192;
};

/// Wraparound-safe duplicate filter over a 16-bit sequence space: remembers
/// the last `window` sequence numbers relative to the highest seen. accept()
/// returns true exactly once per sequence number within the window;
/// sequence numbers older than the window are reported as duplicates (the
/// conservative direction for a dedup point: never deliver twice).
class SeqDedup {
 public:
  explicit SeqDedup(int window);

  bool accept(std::uint16_t seq);

  std::int64_t accepted() const { return accepted_; }
  std::int64_t duplicates() const { return duplicates_; }
  int window() const { return static_cast<int>(seen_.size()); }

 private:
  std::size_t pos(std::uint16_t seq) const {
    return seq & (seen_.size() - 1);
  }

  std::vector<bool> seen_;  // power-of-two ring indexed by seq & (size-1)
  std::uint16_t head_ = 0;  // highest sequence number observed
  bool any_ = false;
  std::int64_t accepted_ = 0;
  std::int64_t duplicates_ = 0;
};

struct OnePlusOneCounters {
  std::int64_t sent = 0;        // frames entered at the replication point
  std::int64_t delivered = 0;   // first copies forwarded by the merge
  std::int64_t dup_dropped = 0; // second copies dropped by the merge

  /// Frames whose copies were both corrupted. Valid once the element has
  /// drained (no copies in flight on either path).
  std::int64_t lost_both() const { return sent - delivered; }
};

/// Packet-level 1+1 element: replicate -> two disjoint lossy links -> merge.
class OnePlusOnePath {
 public:
  using SinkFn = std::function<void(net::Packet&&)>;

  OnePlusOnePath(Simulator& sim, ProtectParams params, BitRate rate,
                 SimTime prop_delay);

  /// Install the working / protection paths' corruption processes (owned).
  void set_loss_model_a(std::unique_ptr<net::LossModel> m);
  void set_loss_model_b(std::unique_ptr<net::LossModel> m);

  void send(net::Packet p);
  void set_sink(SinkFn fn) { sink_ = std::move(fn); }

  const OnePlusOneCounters& counters() const { return counters_; }
  const SeqDedup& dedup() const { return dedup_; }
  net::EgressPort& path_a() { return path_a_; }
  net::EgressPort& path_b() { return path_b_; }

 private:
  void on_merge_arrival(net::Packet&& p);

  Simulator& sim_;
  ProtectParams params_;
  net::EgressPort path_a_;  // working path
  net::EgressPort path_b_;  // disjoint protection path (prop + skew)
  int qa_ = 0, qb_ = 0;
  std::unique_ptr<net::LossModel> loss_a_;
  std::unique_ptr<net::LossModel> loss_b_;
  SeqDedup dedup_;
  net::PipelineDelay merge_;  // dedup/decap latency before the sink
  std::uint16_t next_seq_ = 0;
  SinkFn sink_;
  OnePlusOneCounters counters_;
};

/// The 1+1 residual as a loss process: a frame is lost only if both copies
/// are corrupted. Both paths are rolled for every frame (no short-circuit),
/// so each path's RNG stream stays frame-indexed and independent of the
/// other path's outcomes — the same property the packet-level element has.
class TwoPathLoss final : public net::LossModel {
 public:
  TwoPathLoss(std::unique_ptr<net::DrivableLoss> a,
              std::unique_ptr<net::DrivableLoss> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  bool lose(SimTime now, const net::Packet& p) override {
    const bool lost_a = a_->lose(now, p);
    const bool lost_b = b_->lose(now, p);
    return lost_a && lost_b;
  }

  net::DrivableLoss* path_a() { return a_.get(); }
  net::DrivableLoss* path_b() { return b_.get(); }

 private:
  std::unique_ptr<net::DrivableLoss> a_;
  std::unique_ptr<net::DrivableLoss> b_;
};

/// 1+1 duplication as a pluggable protection scheme. Traffic runs at full
/// line rate on each of the two disjoint paths (capacity_fraction 1), the
/// tax shows up as provisioned_capacity_x == 2; fault scripts drive the
/// working path's process (ResidualLoss::raw), the protection path keeps
/// its own independent background process.
class OnePlusOneScheme final : public net::ProtectionScheme {
 public:
  explicit OnePlusOneScheme(ProtectParams params = {}) : params_(params) {}

  const char* name() const override { return "1+1"; }

  double capacity_fraction(const net::LossSpec&) const override { return 1.0; }
  double provisioned_capacity_x(const net::LossSpec&) const override {
    return 2.0;
  }
  SimTime added_latency() const override { return params_.merge_latency; }
  bool preserves_order() const override { return params_.path_skew == 0; }

  net::ResidualLoss residual(const net::LossSpec& raw) const override {
    net::LossSpec secondary = raw;
    secondary.rate = params_.secondary_rate;
    secondary.seed = raw.seed ^ params_.secondary_seed_offset;
    auto model = std::make_unique<TwoPathLoss>(raw.build(), secondary.build());
    net::DrivableLoss* handle = model->path_a();
    return net::ResidualLoss{std::move(model), handle};
  }

  const ProtectParams& params() const { return params_; }

 private:
  ProtectParams params_;
};

}  // namespace lgsim::protect
