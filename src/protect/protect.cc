#include "protect/protect.h"

#include <utility>

namespace lgsim::protect {

namespace {

// Smallest power of two >= n, capped below half the 16-bit sequence space so
// serial-number comparisons stay unambiguous.
std::size_t pow2_window(int n) {
  std::size_t w = 1;
  while (w < static_cast<std::size_t>(n) && w < 32768) w <<= 1;
  return w;
}

}  // namespace

SeqDedup::SeqDedup(int window) : seen_(pow2_window(window), false) {}

bool SeqDedup::accept(std::uint16_t seq) {
  if (!any_) {
    any_ = true;
    head_ = seq;
    seen_[pos(seq)] = true;
    ++accepted_;
    return true;
  }
  const std::int16_t d = static_cast<std::int16_t>(seq - head_);
  if (d > 0) {
    // New highest sequence number: slide the window forward, clearing the
    // positions that just entered it. A jump of a full window clears all.
    const std::size_t advance =
        std::min<std::size_t>(static_cast<std::size_t>(d), seen_.size());
    for (std::size_t i = 1; i <= advance; ++i)
      seen_[pos(static_cast<std::uint16_t>(head_ + i))] = false;
    head_ = seq;
    seen_[pos(seq)] = true;
    ++accepted_;
    return true;
  }
  if (static_cast<std::size_t>(-d) >= seen_.size()) {
    // Older than the window: cannot prove it is new — never deliver twice.
    ++duplicates_;
    return false;
  }
  if (seen_[pos(seq)]) {
    ++duplicates_;
    return false;
  }
  seen_[pos(seq)] = true;
  ++accepted_;
  return true;
}

OnePlusOnePath::OnePlusOnePath(Simulator& sim, ProtectParams params,
                               BitRate rate, SimTime prop_delay)
    : sim_(sim),
      params_(params),
      path_a_(sim, "dup.pathA", rate, prop_delay),
      path_b_(sim, "dup.pathB", rate, prop_delay + params.path_skew),
      dedup_(params.dedup_window),
      merge_(sim, params.merge_latency, [this](net::Packet&& p) {
        if (sink_) sink_(std::move(p));
      }) {
  qa_ = path_a_.add_queue({});
  qb_ = path_b_.add_queue({});
  path_a_.set_deliver(
      [this](net::Packet&& p) { on_merge_arrival(std::move(p)); });
  path_b_.set_deliver(
      [this](net::Packet&& p) { on_merge_arrival(std::move(p)); });
}

void OnePlusOnePath::set_loss_model_a(std::unique_ptr<net::LossModel> m) {
  loss_a_ = std::move(m);
  path_a_.set_loss_model(loss_a_.get());
}

void OnePlusOnePath::set_loss_model_b(std::unique_ptr<net::LossModel> m) {
  loss_b_ = std::move(m);
  path_b_.set_loss_model(loss_b_.get());
}

void OnePlusOnePath::send(net::Packet p) {
  ++counters_.sent;
  p.dup.valid = true;
  p.dup.seq = next_seq_++;
  p.frame_bytes += kDupHeaderBytes;
  net::Packet twin = p;
  path_a_.enqueue(qa_, std::move(p));
  path_b_.enqueue(qb_, std::move(twin));
}

void OnePlusOnePath::on_merge_arrival(net::Packet&& p) {
  if (!dedup_.accept(p.dup.seq)) {
    ++counters_.dup_dropped;
    return;
  }
  ++counters_.delivered;
  p.dup.valid = false;
  p.frame_bytes -= kDupHeaderBytes;
  merge_.accept(std::move(p));
}

}  // namespace lgsim::protect
