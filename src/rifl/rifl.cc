#include "rifl/rifl.h"

#include <utility>

namespace lgsim::rifl {

RiflLink::RiflLink(Simulator& sim, RiflParams params, BitRate line_rate,
                   SimTime prop_delay)
    : sim_(sim),
      params_(params),
      // Metadata is paid on every wire frame: the payload-visible rate of
      // the hop is efficiency() x line rate. Retransmissions then consume
      // real slots of that budget by re-entering the serializer.
      wire_(sim, "rifl.wire",
            static_cast<BitRate>(static_cast<double>(line_rate) *
                                 params.efficiency()),
            prop_delay) {
  retx_q_ = wire_.add_queue({});  // retransmissions go first (RIFL prioritizes
  data_q_ = wire_.add_queue({});  // recovery to bound head-of-line blocking)
  wire_.set_deliver([this](net::Packet&& p) { on_wire_arrival(std::move(p)); });
  // The retransmission timer runs from serialization start, not enqueue:
  // queueing delay inside the hop must not masquerade as loss.
  wire_.set_transmit_hook([this](net::Packet& p, int) {
    const std::int16_t d = static_cast<std::int16_t>(
        p.rifl.seq - static_cast<std::uint16_t>(buf_base_));
    if (d < 0) return;  // released while queued (stale duplicate)
    arm_timeout(buf_base_ + static_cast<std::uint64_t>(d));
  });
}

void RiflLink::set_loss_model(std::unique_ptr<net::LossModel> m) {
  loss_ = std::move(m);
  wire_.set_loss_model(loss_.get());
}

void RiflLink::send(net::Packet p) {
  ++counters_.offered;
  if (static_cast<std::int64_t>(buf_.size()) >= params_.tx_window) {
    backlog_.push_back(std::move(p));
    return;
  }
  p.rifl.valid = true;
  p.rifl.seq = static_cast<std::uint16_t>(next_seq_);
  p.rifl.retransmitted = false;
  if (buf_.empty()) buf_base_ = next_seq_;
  buf_.push_back(TxEntry{p, next_seq_, 0, false});
  ++next_seq_;
  transmit(buf_.back(), /*retx=*/false);
}

void RiflLink::transmit(TxEntry& e, bool retx) {
  ++e.tx_count;
  if (retx) {
    ++counters_.retx_tx;
  } else {
    ++counters_.data_tx;
  }
  net::Packet copy = e.copy;
  copy.rifl.retransmitted = retx;
  wire_.enqueue(retx ? retx_q_ : data_q_, std::move(copy));
}

void RiflLink::arm_timeout(std::uint64_t true_seq) {
  TxEntry* e = find(true_seq);
  if (e == nullptr) return;
  const int expected = e->tx_count;
  sim_.schedule_in(params_.ack_timeout, [this, true_seq, expected] {
    TxEntry* entry = find(true_seq);
    if (entry == nullptr || entry->failed) return;
    if (entry->tx_count != expected) return;  // a newer transmission exists
    if (entry->tx_count >= params_.max_tx) {
      give_up(*entry);
      return;
    }
    transmit(*entry, /*retx=*/true);
  });
}

RiflLink::TxEntry* RiflLink::find(std::uint64_t true_seq) {
  if (buf_.empty() || true_seq < buf_base_) return nullptr;
  const std::uint64_t idx = true_seq - buf_base_;
  if (idx >= buf_.size()) return nullptr;
  return &buf_[idx];
}

void RiflLink::give_up(TxEntry& e) {
  e.failed = true;
  ++counters_.failed;
  ++counters_.skips;
  const std::uint64_t ts = e.true_seq;
  sim_.schedule_in(params_.ctrl_delay, [this, ts] { on_skip(ts); });
}

void RiflLink::on_ack(std::uint64_t cum_true_seq) {
  while (!buf_.empty() && buf_base_ < cum_true_seq) {
    buf_.pop_front();
    ++buf_base_;
  }
  drain_backlog();
}

void RiflLink::on_nack(std::uint64_t from, std::uint64_t to) {
  ++counters_.nacks;
  for (std::uint64_t ts = from; ts < to; ++ts) {
    TxEntry* e = find(ts);
    if (e == nullptr || e->failed) continue;
    if (e->tx_count >= params_.max_tx) {
      give_up(*e);
    } else {
      transmit(*e, /*retx=*/true);
    }
  }
}

void RiflLink::drain_backlog() {
  while (!backlog_.empty() &&
         static_cast<std::int64_t>(buf_.size()) < params_.tx_window) {
    net::Packet p = std::move(backlog_.front());
    backlog_.pop_front();
    p.rifl.valid = true;
    p.rifl.seq = static_cast<std::uint16_t>(next_seq_);
    p.rifl.retransmitted = false;
    if (buf_.empty()) buf_base_ = next_seq_;
    buf_.push_back(TxEntry{p, next_seq_, 0, false});
    ++next_seq_;
    transmit(buf_.back(), /*retx=*/false);
  }
}

void RiflLink::on_wire_arrival(net::Packet&& p) {
  // Reconstruct the 64-bit position from the 16-bit wire sequence number:
  // valid because the retransmission window is far below half the sequence
  // space (serial-number arithmetic).
  const std::int16_t d = static_cast<std::int16_t>(
      p.rifl.seq - static_cast<std::uint16_t>(rx_next_));
  if (d < 0) {
    ++counters_.dup_rx;  // already released (or skipped): a late duplicate
    send_ctrl_ack();
    return;
  }
  const std::size_t idx = static_cast<std::size_t>(d);
  if (rx_buf_.size() <= idx) rx_buf_.resize(idx + 1);
  RxSlot& slot = rx_buf_[idx];
  if (slot.present || slot.skipped) {
    ++counters_.dup_rx;
    return;
  }
  slot.present = true;
  slot.frame = std::move(p);

  if (d > 0) {
    // Sequence break: request retransmission of every missing frame below
    // this arrival we have not already asked for, one NACK per gap run.
    std::uint64_t run_start = 0;
    bool in_run = false;
    for (std::size_t i = 0; i < idx; ++i) {
      const std::uint64_t ts = rx_next_ + i;
      const bool missing = !rx_buf_[i].present && !rx_buf_[i].skipped &&
                           ts >= highest_nacked_;
      if (missing && !in_run) {
        run_start = ts;
        in_run = true;
      } else if (!missing && in_run) {
        const std::uint64_t run_end = ts;
        sim_.schedule_in(params_.ctrl_delay, [this, run_start, run_end] {
          on_nack(run_start, run_end);
        });
        in_run = false;
      }
    }
    if (in_run) {
      const std::uint64_t run_end = rx_next_ + idx;
      sim_.schedule_in(params_.ctrl_delay, [this, run_start, run_end] {
        on_nack(run_start, run_end);
      });
    }
    if (rx_next_ + idx > highest_nacked_) highest_nacked_ = rx_next_ + idx;
  }
  release_in_order();
}

void RiflLink::on_skip(std::uint64_t true_seq) {
  if (true_seq < rx_next_) return;  // already advanced past it
  const std::size_t idx = static_cast<std::size_t>(true_seq - rx_next_);
  if (rx_buf_.size() <= idx) rx_buf_.resize(idx + 1);
  if (!rx_buf_[idx].present) rx_buf_[idx].skipped = true;
  release_in_order();
}

void RiflLink::release_in_order() {
  bool advanced = false;
  while (!rx_buf_.empty() &&
         (rx_buf_.front().present || rx_buf_.front().skipped)) {
    RxSlot slot = std::move(rx_buf_.front());
    rx_buf_.pop_front();
    ++rx_next_;
    advanced = true;
    if (slot.present) {
      ++counters_.delivered;
      slot.frame.rifl.valid = false;
      net::Packet* parked = out_pool_.acquire(std::move(slot.frame));
      auto emerge = [this, parked] {
        if (sink_) sink_(std::move(*parked));
        out_pool_.release(parked);
      };
      static_assert(sizeof(emerge) <= sim::InlineCallback::kInlineBytes);
      sim_.schedule_in(params_.framing_latency, std::move(emerge));
    }
  }
  if (advanced) send_ctrl_ack();
}

void RiflLink::send_ctrl_ack() {
  if (ack_pending_) return;
  ack_pending_ = true;
  const std::uint64_t cum = rx_next_;
  sim_.schedule_in(params_.ctrl_delay, [this, cum] {
    ack_pending_ = false;
    on_ack(cum);
  });
}

}  // namespace lgsim::rifl
