// RIFL baseline: reliable link-layer retransmission (arXiv 2309.08696).
//
// RIFL [Shen, Zheng, Chow] makes a single link lossless in the link layer:
// traffic is carried in small fixed-size frames (256-bit cells, a few bits
// of which are sequence number, frame type and verification code), the
// transmitter keeps every frame in a retransmission buffer until it is
// acknowledged, and the receiver detects corrupted/missing frames and has
// them retransmitted hop-locally. Delivery is in order: a lost frame stalls
// the frames behind it until its retransmission lands (head-of-line
// blocking inside the hop), which is how RIFL guarantees exactly-once
// in-order delivery to the layer above.
//
// Cost model (the knobs RiflScheme plugs into a path):
//   * capacity — the per-frame metadata is paid on every frame
//     (efficiency()), and every corrupted frame consumes its wire slot
//     again when retransmitted: expected transmissions per delivered frame
//     at raw loss p is 1/(1-p), so usable capacity is efficiency * (1-p).
//   * latency — a fixed TX+RX framing pipeline per hop; recovered frames
//     additionally wait for their retransmission round trip.
//   * residual loss — a frame is lost only if all max_tx transmission
//     attempts are corrupted (p^max_tx under i.i.d. loss: zero for any
//     practical BER; a Gilbert-Elliott burst outliving the retry budget is
//     the realistic way to beat it).
//
// Two fidelity levels, differentially tested against each other:
//   * RiflLink — packet-level: real sequence numbers, a bounded
//     retransmission buffer, NACK-on-gap plus ACK-timeout retry discipline,
//     in-order release with head-of-line blocking, give-up-and-skip after
//     max_tx attempts.
//   * RiflLossModel — the same retry discipline collapsed to a loss
//     process, for driving a TestbedPath at goodput-sweep scale.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/loss_model.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/port.h"
#include "net/protection.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace lgsim::rifl {

struct RiflParams {
  /// Wire frame geometry: RIFL carries traffic in fixed 256-bit cells; the
  /// metadata bits (sequence number, frame type, verification code) are the
  /// protocol's fixed bandwidth tax.
  int frame_bits = 256;
  int meta_bits = 16;
  /// Transmission attempts per frame (1 original + max_tx-1 retransmissions)
  /// before the transmitter gives up and tells the receiver to skip it.
  int max_tx = 16;
  /// One-way TX+RX framing pipeline latency added to every frame.
  SimTime framing_latency = nsec(110);
  /// Latency of the reverse control lane (ACK/NACK hop back to the sender).
  SimTime ctrl_delay = nsec(200);
  /// Tail-loss retransmission timer: re-send an unacknowledged frame this
  /// long after its last transmission.
  SimTime ack_timeout = usec(2);
  /// Retransmission-buffer budget in frames (BDP-sized in the paper).
  std::int64_t tx_window = 4096;

  /// Payload fraction of the wire rate.
  double efficiency() const {
    return static_cast<double>(frame_bits - meta_bits) /
           static_cast<double>(frame_bits);
  }
};

struct RiflCounters {
  std::int64_t offered = 0;    // frames entered at the sender
  std::int64_t delivered = 0;  // frames released in order at the receiver
  std::int64_t failed = 0;     // frames given up after max_tx attempts
  std::int64_t data_tx = 0;    // first transmissions onto the wire
  std::int64_t retx_tx = 0;    // retransmissions onto the wire
  std::int64_t dup_rx = 0;     // duplicate arrivals dropped by the receiver
  std::int64_t nacks = 0;      // gap notifications sent by the receiver
  std::int64_t skips = 0;      // give-up notices sent to the receiver
};

/// One direction of a RIFL hop: sender retransmission buffer, the corrupting
/// wire (an EgressPort running at efficiency() x line rate, so metadata and
/// retransmissions consume real capacity), and the receiver's in-order
/// release logic. The reverse ACK/NACK lane is modelled as a fixed-latency
/// control channel (reverse-direction corruption is handled symmetrically by
/// RIFL itself and is out of scope here, matching the paper's unidirectional
/// evaluation).
class RiflLink {
 public:
  using SinkFn = std::function<void(net::Packet&&)>;

  RiflLink(Simulator& sim, RiflParams params, BitRate line_rate,
           SimTime prop_delay);

  /// Install the wire's raw corruption process (owned by the link).
  void set_loss_model(std::unique_ptr<net::LossModel> m);
  net::LossModel* loss_model() { return loss_.get(); }

  /// Offer a frame for reliable transfer. Frames are delivered to the sink
  /// exactly once and in offer order (unless given up after max_tx).
  void send(net::Packet p);
  void set_sink(SinkFn fn) { sink_ = std::move(fn); }

  const RiflCounters& counters() const { return counters_; }
  const RiflParams& params() const { return params_; }
  /// Frames currently held in the retransmission buffer.
  std::int64_t tx_buffered() const { return static_cast<std::int64_t>(buf_.size()); }

 private:
  struct TxEntry {
    net::Packet copy;
    std::uint64_t true_seq = 0;
    int tx_count = 0;
    bool failed = false;  // gave up; waiting for cumulative release
  };

  // --- sender side ---
  void transmit(TxEntry& e, bool retx);
  void arm_timeout(std::uint64_t true_seq);
  void drain_backlog();
  TxEntry* find(std::uint64_t true_seq);
  void on_ack(std::uint64_t cum_true_seq);          // receiver -> sender
  void on_nack(std::uint64_t from, std::uint64_t to);  // missing [from, to)
  void give_up(TxEntry& e);

  // --- receiver side ---
  void on_wire_arrival(net::Packet&& p);
  void on_skip(std::uint64_t true_seq);             // sender -> receiver
  void release_in_order();
  void send_ctrl_ack();

  Simulator& sim_;
  RiflParams params_;
  net::EgressPort wire_;
  int retx_q_ = 0;
  int data_q_ = 0;
  std::unique_ptr<net::LossModel> loss_;
  SinkFn sink_;

  // Sender: retransmission buffer ordered by true sequence number, plus a
  // backlog for frames offered while the buffer is at its window budget.
  std::deque<TxEntry> buf_;
  std::uint64_t buf_base_ = 0;  // true seq of buf_.front()
  std::uint64_t next_seq_ = 0;
  std::deque<net::Packet> backlog_;

  // Receiver: next expected true seq and the out-of-order hold buffer
  // (frame + arrival flag per slot ahead of rx_next_).
  struct RxSlot {
    bool present = false;
    bool skipped = false;
    net::Packet frame;
  };
  std::deque<RxSlot> rx_buf_;
  std::uint64_t rx_next_ = 0;
  std::uint64_t highest_nacked_ = 0;  // dedup gap notifications
  bool ack_pending_ = false;          // coalesce cumulative ACKs
  net::PacketPool out_pool_;          // frames in the release pipeline

  RiflCounters counters_;
};

/// RIFL's retry discipline as a residual loss process: a frame survives if
/// any of its max_tx wire traversals survives the raw process. Attempts are
/// rolled back to back, so a bursty raw process (Gilbert-Elliott) correlates
/// consecutive attempts — the conservative direction: a burst has to outlive
/// the whole retry budget to get a frame lost, and with this model it does
/// so more easily than with attempts spread over the real retransmission
/// round trips.
class RiflLossModel final : public net::LossModel {
 public:
  RiflLossModel(RiflParams params, std::unique_ptr<net::DrivableLoss> raw)
      : params_(params), raw_(std::move(raw)) {}

  bool lose(SimTime now, const net::Packet& p) override {
    for (int attempt = 0; attempt < params_.max_tx; ++attempt) {
      if (!raw_->lose(now, p)) return false;
      ++wire_corruptions_;
    }
    ++frames_failed_;
    return true;
  }

  net::DrivableLoss* raw() { return raw_.get(); }
  std::int64_t wire_corruptions() const { return wire_corruptions_; }
  std::int64_t frames_failed() const { return frames_failed_; }

 private:
  RiflParams params_;
  std::unique_ptr<net::DrivableLoss> raw_;
  std::int64_t wire_corruptions_ = 0;
  std::int64_t frames_failed_ = 0;
};

/// RIFL as a pluggable protection scheme.
class RiflScheme final : public net::ProtectionScheme {
 public:
  explicit RiflScheme(RiflParams params = {}) : params_(params) {}

  const char* name() const override { return "rifl"; }

  double capacity_fraction(const net::LossSpec& raw) const override {
    // Metadata on every frame, plus one extra wire slot per corruption:
    // expected transmissions per delivered frame at raw loss p is 1/(1-p).
    return params_.efficiency() * (1.0 - raw.rate);
  }

  SimTime added_latency() const override { return params_.framing_latency; }

  net::ResidualLoss residual(const net::LossSpec& raw) const override {
    auto model = std::make_unique<RiflLossModel>(params_, raw.build());
    net::DrivableLoss* handle = model->raw();
    return net::ResidualLoss{std::move(model), handle};
  }

  const RiflParams& params() const { return params_; }

 private:
  RiflParams params_;
};

}  // namespace lgsim::rifl
