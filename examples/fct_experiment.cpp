// FCT experiment over a realistic workload.
//
// Samples flow sizes from one of the Fig. 2 datacenter workloads, runs them
// over a corrupting 100G link under four conditions (no loss / loss /
// LinkGuardian / LinkGuardianNB) and prints the tail FCT comparison — a
// workload-level version of the paper's §4.3 experiments.
//
//   ./examples/fct_experiment [workload 0-5] [trials] [loss_rate]
#include <cstdio>
#include <cstdlib>

#include "harness/fct.h"
#include "util/table.h"
#include "workload/flow_sizes.h"

int main(int argc, char** argv) {
  using namespace lgsim;
  using namespace lgsim::harness;

  const int wl_idx = argc > 1 ? std::atoi(argv[1]) : 2;  // Google all RPC
  const std::int64_t trials = argc > 2 ? std::atoll(argv[2]) : 5'000;
  const double loss_rate = argc > 3 ? std::atof(argv[3]) : 1e-3;

  const auto wl = static_cast<workload::Workload>(wl_idx);
  const auto dist = workload::FlowSizeDistribution::make(wl);
  std::printf("Workload: %s (single-packet fraction %.0f%%, mean %.0f B)\n",
              workload::workload_name(wl), 100 * dist.single_packet_fraction(),
              dist.mean_bytes());

  // Representative size: the workload median (the paper picks the most
  // frequent size; the median is the closest distribution-free analogue).
  Rng rng(1);
  lgsim::PercentileTracker sizes;
  for (int i = 0; i < 50'000; ++i) sizes.add(static_cast<double>(dist.sample(rng)));
  const auto flow_bytes = static_cast<std::int64_t>(sizes.percentile(50));
  std::printf("Median flow size: %lld B -> used for all trials\n\n",
              static_cast<long long>(flow_bytes));

  TablePrinter t({"Condition", "p50 (us)", "p99 (us)", "p99.9 (us)", "max (us)",
                  "RTO trials"});
  for (Protection pr : {Protection::kNoLoss, Protection::kLossOnly,
                        Protection::kLg, Protection::kLgNb}) {
    FctConfig c;
    c.transport = Transport::kDctcp;
    c.protection = pr;
    c.flow_bytes = std::max<std::int64_t>(1, flow_bytes);
    c.trials = trials;
    c.loss_rate = loss_rate;
    c.rate = gbps(100);
    const FctResult r = run_fct(c);
    t.add_row({protection_name(pr), TablePrinter::fmt(r.p(50), 1),
               TablePrinter::fmt(r.p(99), 1), TablePrinter::fmt(r.p(99.9), 1),
               TablePrinter::fmt(r.fct_us.max(), 1),
               std::to_string(r.trials_with_rto)});
  }
  t.print();
  return 0;
}
