// Datacenter-scale deployment study (the §4.8 methodology, interactive).
//
// Simulates a Facebook-fabric network where links randomly start corrupting
// (Weibull onsets, Table 1 loss rates), compares vanilla CorrOpt against
// LinkGuardian + CorrOpt on the same trace, and prints the penalty/capacity
// trade-off.
//
//   ./examples/fabric_deployment [pods] [days] [constraint]
#include <cstdio>
#include <cstdlib>

#include "corropt/corropt.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lgsim;
  using namespace lgsim::corropt;

  DeploymentConfig base;
  base.topo.pods = argc > 1 ? std::atoi(argv[1]) : 64;
  const double days = argc > 2 ? std::atof(argv[2]) : 90.0;
  base.capacity_constraint = argc > 3 ? std::atof(argv[3]) : 0.75;
  base.duration_hours = 24.0 * days;
  base.mttf_hours = 10'000;
  base.sample_period_hours = 2.0;
  base.seed = 2024;

  fabric::FabricTopology probe(base.topo);
  std::printf(
      "Topology: %d pods, %lld optical links; %0.f days, constraint %.0f%%\n\n",
      base.topo.pods, static_cast<long long>(probe.n_links()), days,
      100 * base.capacity_constraint);

  TablePrinter t({"Strategy", "corruption events", "disabled", "kept active",
                  "mean penalty", "worst least-paths (%)",
                  "worst least-cap (%)", "max LG/switch"});
  for (bool lg : {false, true}) {
    DeploymentConfig c = base;
    c.use_linkguardian = lg;
    const DeploymentResult r = run_deployment(c);
    double mean_penalty = 0, min_paths = 1, min_cap = 1;
    for (const auto& s : r.samples) {
      mean_penalty += s.total_penalty;
      min_paths = std::min(min_paths, s.least_paths_frac);
      min_cap = std::min(min_cap, s.least_capacity_frac);
    }
    if (!r.samples.empty()) mean_penalty /= static_cast<double>(r.samples.size());
    t.add_row({lg ? "LinkGuardian + CorrOpt" : "CorrOpt",
               std::to_string(r.corruption_events),
               std::to_string(r.disabled_immediately + r.disabled_by_optimizer),
               std::to_string(r.kept_active), TablePrinter::sci(mean_penalty),
               TablePrinter::fmt(100 * min_paths, 1),
               TablePrinter::fmt(100 * min_cap, 2),
               std::to_string(r.max_lg_per_switch)});
  }
  t.print();
  std::printf(
      "\nThe corrupting links CorrOpt cannot disable (capacity constraint) "
      "keep hurting in the vanilla row; with LinkGuardian their penalty "
      "collapses by orders of magnitude for a sub-percent capacity cost.\n");
  return 0;
}
