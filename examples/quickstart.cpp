// Quickstart: protect one corrupting 100G link with LinkGuardian.
//
// Builds a single protected link, injects a line-rate stream of MTU packets
// while the link corrupts ~1 in 10,000 frames, and shows that the receiver
// sees every packet exactly once, in order, with recovery happening at
// microsecond (sub-RTT) timescales.
//
//   ./examples/quickstart [loss_rate] [packets]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "lg/link.h"
#include "net/loss_model.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace lgsim;

  const double loss_rate = argc > 1 ? std::atof(argv[1]) : 1e-4;
  const std::int64_t packets = argc > 2 ? std::atoll(argv[2]) : 200'000;

  Simulator sim;

  // 1. Describe the link and the protection policy.
  lg::LinkSpec spec;
  spec.rate = gbps(100);
  spec.name = "sw2->sw6";

  lg::LgConfig cfg;
  cfg.target_loss_rate = 1e-8;     // operator target (Eq. 1)
  cfg.actual_loss_rate = loss_rate;  // what corruptd measured
  std::printf("Protecting a 100G link: loss %.0e, target %.0e -> %d retx copies\n",
              loss_rate, cfg.target_loss_rate, cfg.n_retx_copies());

  // 2. Build the protected link and give it a corruption process.
  lg::ProtectedLink link(sim, spec, cfg);
  link.set_loss_model(std::make_unique<net::BernoulliLoss>(loss_rate, Rng(1)));

  // 3. Count what comes out the far side, checking order.
  std::int64_t delivered = 0;
  std::uint64_t last_uid = 0;
  bool in_order = true;
  link.set_forward_sink([&](net::Packet&& p) {
    if (delivered > 0 && p.uid != last_uid + 1) in_order = false;
    last_uid = p.uid;
    ++delivered;
  });

  // 4. Activate LinkGuardian (what corruptd does) and offer line-rate load.
  link.enable_lg();
  std::int64_t sent = 0;
  std::function<void()> inject = [&] {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = 1518;
    p.uid = static_cast<std::uint64_t>(++sent);
    link.send_forward(std::move(p));
    if (sent < packets) sim.schedule_in(nsec(124), inject);
  };
  sim.schedule_at(0, [&] { inject(); });
  sim.run();

  // 5. Report.
  const auto& ss = link.sender().stats();
  const auto& rs = link.receiver().stats();
  std::printf("\nsent %lld packets; wire corrupted %lld frames\n",
              static_cast<long long>(sent),
              static_cast<long long>(link.forward_port().counters().corrupted_frames));
  std::printf("delivered %lld (%s order), duplicates dropped: %lld\n",
              static_cast<long long>(delivered),
              in_order ? "in" : "OUT OF", static_cast<long long>(rs.dup_dropped));
  std::printf("losses detected %lld, recovered %lld, effectively lost %lld\n",
              static_cast<long long>(rs.reported_lost),
              static_cast<long long>(rs.recovered),
              static_cast<long long>(rs.effectively_lost));
  if (rs.retx_delay_us.count() > 0) {
    std::printf("recovery delay: median %.2f us, max %.2f us (sub-RTT)\n",
                rs.retx_delay_us.percentile(50), rs.retx_delay_us.max());
  }
  std::printf("retransmission copies sent: %lld (%d per loss, Eq. 2)\n",
              static_cast<long long>(ss.retx_copies_sent), cfg.n_retx_copies());
  return delivered == sent && in_order && rs.effectively_lost == 0 ? 0 : 1;
}
