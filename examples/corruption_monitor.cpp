// End-to-end corruptd demo (Appendix C): a link silently starts corrupting
// mid-run; the monitoring daemon notices from the port counters, publishes a
// notification, and the activator turns LinkGuardian on with the Eq. 2 copy
// count — all while traffic keeps flowing.
//
//   ./examples/corruption_monitor [loss_rate]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "lg/link.h"
#include "monitor/corruptd.h"
#include "net/loss_model.h"

namespace {

// Loss model that turns on at a set time (the fiber gets bent).
class OnsetLoss final : public lgsim::net::LossModel {
 public:
  OnsetLoss(double rate, lgsim::SimTime onset, lgsim::Rng rng)
      : rate_(rate), onset_(onset), rng_(rng) {}
  bool lose(lgsim::SimTime now, const lgsim::net::Packet&) override {
    return now >= onset_ && rng_.bernoulli(rate_);
  }

 private:
  double rate_;
  lgsim::SimTime onset_;
  lgsim::Rng rng_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lgsim;
  const double loss_rate = argc > 1 ? std::atof(argv[1]) : 1e-3;

  Simulator sim;
  lg::LinkSpec spec;
  spec.rate = gbps(100);
  spec.name = "sw2->sw6";
  lg::LgConfig cfg;
  lg::ProtectedLink link(sim, spec, cfg);
  const SimTime onset = msec(30);
  link.set_loss_model(std::make_unique<OnsetLoss>(loss_rate, onset, Rng(9)));

  std::int64_t delivered = 0;
  link.set_forward_sink([&](net::Packet&&) { ++delivered; });

  // corruptd polls framesRxOk / framesRxAll once per (scaled) poll period.
  monitor::PubSubBus bus;
  monitor::CorruptdConfig mcfg;
  mcfg.poll_period = msec(5);      // 1 s in production; scaled to the demo
  mcfg.window_frames = 1'000'000;  // 100M in production
  mcfg.threshold = 1e-8;
  monitor::Corruptd daemon(sim, mcfg, bus);
  const auto& pc = link.forward_port().counters();
  daemon.add_port({"sw2/eth6",
                   [&pc] { return pc.delivered_frames; },
                   [&pc] { return pc.delivered_frames + pc.corrupted_frames; }});
  daemon.start();

  monitor::LgActivator activator(bus, cfg.target_loss_rate);
  activator.watch("sw2/eth6", [&](int copies) {
    std::printf("[%8.3f ms] corruptd: link sw2/eth6 corrupting -> activating "
                "LinkGuardian with %d retx copies\n",
                to_msec(sim.now()), copies);
    link.enable_lg();
  });

  // Continuous line-rate traffic.
  std::int64_t sent = 0;
  const std::int64_t total = 1'000'000;
  std::function<void()> inject = [&] {
    net::Packet p;
    p.kind = net::PktKind::kData;
    p.frame_bytes = 1518;
    link.send_forward(std::move(p));
    if (++sent < total) sim.schedule_in(nsec(124), inject);
  };
  sim.schedule_at(0, [&] { inject(); });

  std::printf("[%8.3f ms] traffic starts (healthy link)\n", 0.0);
  sim.schedule_at(onset, [&] {
    std::printf("[%8.3f ms] fiber degrades: corruption %.0e begins "
                "(undetected)\n", to_msec(sim.now()), loss_rate);
  });
  // The daemon polls forever; run to a horizon, then let the tail drain.
  sim.run(msec(200));
  daemon.stop();
  sim.run(msec(210));

  const auto& rs = link.receiver().stats();
  std::printf("\nsent %lld, delivered %lld\n", static_cast<long long>(sent),
              static_cast<long long>(delivered));
  std::printf("lost before activation (endpoints saw them): %lld\n",
              static_cast<long long>(sent - delivered - rs.effectively_lost -
                                     link.receiver().reorder_buffer_pkts()));
  std::printf("lost after activation (masked by LinkGuardian): recovered=%lld, "
              "effectively lost=%lld\n",
              static_cast<long long>(rs.recovered),
              static_cast<long long>(rs.effectively_lost));

  if (!activator.records().empty()) {
    std::printf("measured loss at activation: %.2e (actual %.2e)\n",
                activator.records()[0].measured_loss, loss_rate);
  }
  return 0;
}
