// Figure 16 (§4.8): CDFs over a year-long simulation of (a) the gain in
// total penalty and (b) the decrease in least capacity per pod, comparing
// LinkGuardian+CorrOpt against vanilla CorrOpt on the same corruption trace.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "corropt/corropt.h"
#include "harness/parallel.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::corropt;
  bench::banner("Figure 16", "1-year deployment CDFs: penalty gain & capacity cost");

  const std::int32_t pods = static_cast<std::int32_t>(bench::scaled(260, 16));
  const double months = bench::scale() >= 1.0 ? 12.0 : 3.0;

  // All four year-long runs (2 constraints x {vanilla, LG}) fanned out over
  // LGSIM_BENCH_JOBS workers; the CDF pairing below consumes them in grid
  // order, so output is byte-identical to the old serial calls.
  harness::ParallelRunner<DeploymentConfig, DeploymentResult> runner(
      [](const DeploymentConfig& c) { return run_deployment(c); });
  for (double constraint : {0.50, 0.75}) {
    for (bool lg : {false, true}) {
      DeploymentConfig c;
      c.topo = {.pods = pods, .tors_per_pod = 48, .fabrics_per_pod = 4,
                .spines_per_plane = 48};
      c.duration_hours = 24.0 * 30.4 * months;
      c.mttf_hours = 10'000;
      c.capacity_constraint = constraint;
      c.sample_period_hours = 2.0;
      c.seed = 11;
      c.use_linkguardian = lg;
      runner.add(c.seed, c);
    }
  }
  const std::vector<DeploymentResult> results = runner.run_in_grid_order();

  std::size_t ri = 0;
  for (double constraint : {0.50, 0.75}) {
    const DeploymentResult& vanilla = results[ri++];
    const DeploymentResult& with_lg = results[ri++];

    const std::size_t n = std::min(vanilla.samples.size(), with_lg.samples.size());
    PercentileTracker gain;         // penalty_vanilla / penalty_lg
    PercentileTracker cap_decrease; // (cap_vanilla - cap_lg), normalized %
    for (std::size_t i = 0; i < n; ++i) {
      const double pv = vanilla.samples[i].total_penalty;
      const double pl = with_lg.samples[i].total_penalty;
      if (pl > 0) {
        gain.add(pv / pl);
      } else if (pv > 0) {
        gain.add(1e9);  // LG wiped the penalty entirely
      } else {
        gain.add(1.0);  // no corrupting links at all
      }
      cap_decrease.add(100.0 * (vanilla.samples[i].least_capacity_frac -
                                with_lg.samples[i].least_capacity_frac));
    }

    std::printf("\n--- Capacity constraint: %.0f%% (%zu samples) ---\n",
                100 * constraint, n);
    TablePrinter t({"CDF point", "Gain in total penalty (x)",
                    "Decrease in least cap/pod (%)"});
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
      t.add_row({TablePrinter::fmt(p, 0) + "%",
                 TablePrinter::sci(gain.percentile(p)),
                 TablePrinter::fmt(cap_decrease.percentile(p), 3)});
    }
    t.print();
    std::printf("Fraction of time with no gain (gain <= 1): %.1f%%\n",
                100.0 * gain.cdf_at(1.0));
  }
  std::printf(
      "\nPaper: at 50%% constraint ~35%% of the time all corrupting links "
      "can be disabled (gain = 1); the rest of the time, and nearly always "
      "at 75%%, the gain is orders of magnitude, while the capacity decrease "
      "stays below ~0.25%%.\n");
  return 0;
}
