// Figure 9: DCTCP throughput timeline on a 25G link with 1e-3 loss:
// corruption starts, then LinkGuardian is activated; panel (b) repeats the
// run with the backpressure mechanism disabled.
#include <cstdio>

#include "bench_common.h"
#include "harness/timeline.h"
#include "util/table.h"

namespace {

void print_run(const lgsim::harness::TimelineResult& r, const char* title) {
  using lgsim::TablePrinter;
  using lgsim::to_msec;
  std::printf("\n--- %s ---\n", title);
  TablePrinter t({"t (ms)", "goodput (Gbps)", "qdepth (KB)", "LG Rx buffer (KB)",
                  "e2e retx (cum)"});
  const auto& g = r.goodput_gbps.samples();
  for (std::size_t i = 0; i < g.size(); i += 4) {
    t.add_row({TablePrinter::fmt(to_msec(g[i].time), 0),
               TablePrinter::fmt(g[i].value, 2),
               TablePrinter::fmt(r.qdepth_bytes.samples()[i].value / 1000.0, 1),
               TablePrinter::fmt(r.rx_buffer_bytes.samples()[i].value / 1000.0, 1),
               TablePrinter::fmt(r.e2e_retx.samples()[i].value, 0)});
  }
  t.print();
  std::printf(
      "phases: before corruption %.2f Gbps | corruption (no LG) %.2f Gbps | "
      "LG active %.2f Gbps; reorder-buffer overflow drops: %lld; e2e retx "
      "total: %lld\n",
      r.goodput_before(), r.goodput_during_loss(), r.goodput_with_lg(),
      static_cast<long long>(r.reorder_drops),
      static_cast<long long>(r.e2e_retx_total));
}

}  // namespace

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 9", "DCTCP on a 25G link with 1e-3 loss: LinkGuardian timeline");

  TimelineConfig c;
  c.transport = Transport::kDctcp;
  c.rate = gbps(25);
  c.loss_rate = 1e-3;
  c.mean_burst = 1.0;  // panel (a): independent random corruption
  c.t_corruption = msec(bench::scaled(200, 40));
  c.t_lg = 2 * c.t_corruption;
  c.t_end = 4 * c.t_corruption;
  c.sample_period = c.t_end / 120;
  print_run(run_timeline(c), "Fig 9a: LinkGuardian (backpressure on)");

  // Panel (b): backpressure disabled, bursty corruption (the paper's 25G
  // losses at 1e-3 are not i.i.d., sec 4.1) — the reordering buffer
  // accumulates and overflows.
  TimelineConfig b = c;
  b.backpressure = false;
  b.loss_rate = 5e-3;
  b.mean_burst = 2.5;
  // Our recovery model bounds the unpaused backlog at ~ackNoTimeout x line
  // rate (see EXPERIMENTS.md), so the overflow is demonstrated at a
  // proportionally scaled recirculation budget.
  b.recirc_budget_bytes = 20'000;
  b.resume_threshold_bytes = 12'000;
  b.t_end = 6 * c.t_corruption;
  print_run(run_timeline(b), "Fig 9b: backpressure disabled (bursty loss)");

  TimelineConfig b2 = b;
  b2.backpressure = true;
  print_run(run_timeline(b2), "Fig 9b control: same bursty loss, backpressure on");
  return 0;
}
