// Figure 10: top-1% FCT for 143 B (single-packet) flows on a 100G link with
// ~1e-3 corruption loss, DCTCP and RDMA WRITE, under four conditions.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/fct.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 10", "Top 1% FCTs for 143B flows on a 100G link");

  // Whole grid (2 transports x 4 conditions) fanned out over
  // LGSIM_BENCH_JOBS workers; row order and values match the serial loop.
  bench::TrafficConfig tc;
  tc.transports = {Transport::kDctcp, Transport::kRdmaWrite};
  tc.flow_bytes = 143;
  tc.trials = bench::scaled(100'000, 2'000);
  tc.seed_base = 1000;
  const std::vector<FctResult> results = run_fct_grid(bench::fct_grid(tc));

  std::size_t i = 0;
  for (Transport tr : {Transport::kDctcp, Transport::kRdmaWrite}) {
    TablePrinter t({"Condition", "p50 (us)", "p99 (us)", "p99.9 (us)",
                    "p99.99 (us)", "max (us)", "RTO trials"});
    double p999_loss = 0, p999_noloss = 0;
    for (Protection pr : {Protection::kNoLoss, Protection::kLg,
                          Protection::kLgNb, Protection::kLossOnly}) {
      const FctResult& r = results[i++];
      if (pr == Protection::kNoLoss) p999_noloss = r.p(99.9);
      if (pr == Protection::kLossOnly) p999_loss = r.p(99.9);
      t.add_row({std::string(transport_name(tr)) + " (" + protection_name(pr) + ")",
                 TablePrinter::fmt(r.p(50), 1), TablePrinter::fmt(r.p(99), 1),
                 TablePrinter::fmt(r.p(99.9), 1),
                 TablePrinter::fmt(r.p(99.99), 1),
                 TablePrinter::fmt(r.fct_us.max(), 1),
                 std::to_string(r.trials_with_rto)});
    }
    t.print();
    std::printf(
        "%s: loss inflates the 99.9th percentile FCT by %.0fx over no-loss "
        "(paper: %s); LG and LG_NB restore it.\n\n",
        transport_name(tr),
        p999_noloss > 0 ? p999_loss / p999_noloss : 0.0,
        tr == Transport::kDctcp ? "51x" : "66x");
  }
  return 0;
}
