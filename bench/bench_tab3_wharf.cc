// Table 3 (§4.7): TCP CUBIC goodput (Gb/s) on a 10G link vs loss rate, for
// no protection, Wharf (link-local FEC, best published parameters per loss
// rate), LinkGuardian and LinkGuardianNB.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "lg/config.h"
#include "net/loss_model.h"
#include "transport/path.h"
#include "transport/tcp.h"
#include "util/table.h"
#include "wharf/wharf.h"

namespace {

using namespace lgsim;

enum class Scheme { kNone, kWharf, kLg, kLgNb };

double run_goodput(Scheme scheme, double loss_rate, SimTime duration) {
  Simulator sim;
  transport::PathConfig pc;
  pc.rate = gbps(10);
  pc.host_delay = usec(12);
  pc.link.rate = gbps(10);
  pc.link.normal_queue_bytes = 600'000;
  pc.lg = lg::tuned_for_rate(pc.lg, pc.rate);
  pc.lg.actual_loss_rate = loss_rate > 0 ? loss_rate : 1e-4;
  pc.lg.preserve_order = (scheme != Scheme::kLgNb);
  if (scheme == Scheme::kWharf) {
    // Wharf's redundancy consumes link capacity all the time; model it as a
    // reduced-rate link plus the residual post-FEC loss process.
    const wharf::WharfParams params = wharf::wharf_params_for(loss_rate);
    pc.link.rate =
        static_cast<BitRate>(static_cast<double>(gbps(10)) * params.capacity_fraction());
  }

  transport::TestbedPath path(sim, pc);
  if (loss_rate > 0) {
    if (scheme == Scheme::kWharf) {
      path.link().set_loss_model(std::make_unique<wharf::WharfLossModel>(
          wharf::wharf_params_for(loss_rate), loss_rate, Rng(5)));
    } else {
      path.link().set_loss_model(
          std::make_unique<net::BernoulliLoss>(loss_rate, Rng(5)));
    }
  }
  if (scheme == Scheme::kLg || scheme == Scheme::kLgNb) path.link().enable_lg();

  transport::TcpConfig tcfg;
  tcfg.cc = transport::TcpCc::kCubic;
  transport::TcpSender snd(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_a(std::move(p)); },
      [](SimTime) {});
  transport::TcpReceiver rcv(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_b(std::move(p)); });
  std::int64_t delivered = 0;
  path.set_sink_at_b([&](net::Packet&& p) {
    delivered += p.tcp.payload;
    rcv.on_data(p);
  });
  path.set_sink_at_a([&](net::Packet&& p) { snd.on_ack(p); });
  snd.start(1'000'000'000'000LL);

  // Warm up past slow start, then measure.
  const SimTime warmup = duration / 4;
  sim.run(warmup);
  const std::int64_t base = delivered;
  sim.run(warmup + duration);
  return static_cast<double>(delivered - base) * 8.0 /
         static_cast<double>(duration);  // Gbps
}

}  // namespace

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  bench::banner("Table 3", "TCP CUBIC goodput (Gb/s) on a 10G link");

  const SimTime duration = msec(bench::scaled(400, 60));
  const double losses[] = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};

  TablePrinter t({"Loss rate ->", "0", "1e-5", "1e-4", "1e-3", "1e-2"});
  struct Row {
    const char* name;
    Scheme scheme;
  };
  for (const Row& row : {Row{"None", Scheme::kNone}, Row{"Wharf", Scheme::kWharf},
                         Row{"LinkGuardian", Scheme::kLg},
                         Row{"LinkGuardianNB", Scheme::kLgNb}}) {
    std::vector<std::string> cells{row.name};
    for (double l : losses) {
      if (row.scheme == Scheme::kWharf && l == 0.0) {
        cells.push_back("n/a");
        continue;
      }
      cells.push_back(TablePrinter::fmt(run_goodput(row.scheme, l, duration), 2));
    }
    t.add_row(cells);
  }
  t.print();
  std::printf(
      "\nPaper (Table 3): None 9.49/9.48/8.01/3.48/1.46; Wharf n/a/9.13/9.13/"
      "9.13/7.91; LG 9.47.../9.2; LG_NB the same. Shape: Wharf pays its "
      "redundancy at every loss rate, LinkGuardian only pays when losses "
      "happen.\n");
  return 0;
}
