// Table 3 (§4.7): TCP CUBIC goodput (Gb/s) on a 10G link vs loss rate, for
// no protection, Wharf (link-local FEC, best published parameters per loss
// rate), LinkGuardian and LinkGuardianNB.
//
// The per-cell measurement is bench::run_goodput (bench_common.h), shared
// with bench_baselines; schemes enter through the net::ProtectionScheme
// abstraction. Cells fan out over the replication runner and print in grid
// order, so the table is byte-identical for any LGSIM_BENCH_JOBS.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  bench::banner("Table 3", "TCP CUBIC goodput (Gb/s) on a 10G link");

  const SimTime duration = msec(bench::scaled(400, 60));
  const double losses[] = {0.0, 1e-5, 1e-4, 1e-3, 1e-2};

  struct Row {
    const char* name;
    bench::Scheme scheme;
  };
  const std::vector<Row> rows = {{"None", bench::Scheme::kNone},
                                 {"Wharf", bench::Scheme::kWharf},
                                 {"LinkGuardian", bench::Scheme::kLg},
                                 {"LinkGuardianNB", bench::Scheme::kLgNb}};

  harness::ParallelRunner<bench::GoodputCell, double> runner(
      [](const bench::GoodputCell& cell) { return bench::run_goodput(cell); },
      bench::jobs());
  for (const Row& row : rows) {
    for (double l : losses) {
      if (row.scheme == bench::Scheme::kWharf && l == 0.0) continue;  // n/a
      bench::GoodputCell cell;
      cell.scheme = row.scheme;
      cell.loss.rate = l;
      cell.duration = duration;
      runner.add(/*seed=*/5, cell);
    }
  }
  const std::vector<double> goodputs = runner.run_in_grid_order();

  TablePrinter t({"Loss rate ->", "0", "1e-5", "1e-4", "1e-3", "1e-2"});
  std::size_t next = 0;
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (double l : losses) {
      if (row.scheme == bench::Scheme::kWharf && l == 0.0) {
        cells.push_back("n/a");
        continue;
      }
      cells.push_back(TablePrinter::fmt(goodputs[next++], 2));
    }
    t.add_row(cells);
  }
  t.print();
  std::printf(
      "\nPaper (Table 3): None 9.49/9.48/8.01/3.48/1.46; Wharf n/a/9.13/9.13/"
      "9.13/7.91; LG 9.47.../9.2; LG_NB the same. Shape: Wharf pays its "
      "redundancy at every loss rate, LinkGuardian only pays when losses "
      "happen.\n");
  return 0;
}
