// Figure 11: top-5% FCT for 24,387 B (17-packet) flows on a 100G link,
// DCTCP / BBR / RDMA WRITE, under four conditions.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "harness/fct.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 11", "Top 5% FCTs for 24,387B flows (17 packets) on 100G");

  // 3 transports x 4 conditions, fanned out over LGSIM_BENCH_JOBS workers;
  // rows match the serial loop byte-for-byte.
  bench::TrafficConfig tc;
  tc.transports = {Transport::kDctcp, Transport::kBbr, Transport::kRdmaWrite};
  tc.flow_bytes = 24'387;
  tc.trials = bench::scaled(50'000, 2'000);
  tc.seed_base = 2000;
  tc.seed_protection_stride = 7;
  tc.seed_transport_stride = 31;
  const std::vector<FctResult> results = run_fct_grid(bench::fct_grid(tc));

  std::size_t i = 0;
  for (Transport tr : {Transport::kDctcp, Transport::kBbr, Transport::kRdmaWrite}) {
    TablePrinter t({"Condition", "p50 (us)", "p95 (us)", "p99 (us)",
                    "p99.9 (us)", "max (us)", "e2e-retx trials", "RTO trials"});
    for (Protection pr : {Protection::kNoLoss, Protection::kLg,
                          Protection::kLgNb, Protection::kLossOnly}) {
      const FctResult& r = results[i++];
      t.add_row({std::string(transport_name(tr)) + " (" + protection_name(pr) + ")",
                 TablePrinter::fmt(r.p(50), 1), TablePrinter::fmt(r.p(95), 1),
                 TablePrinter::fmt(r.p(99), 1), TablePrinter::fmt(r.p(99.9), 1),
                 TablePrinter::fmt(r.fct_us.max(), 1),
                 std::to_string(r.trials_with_e2e_retx),
                 std::to_string(r.trials_with_rto)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape: LG tracks no-loss for all transports. LG_NB tracks LG "
      "for DCTCP/BBR (reordering tolerated) but for RDMA only removes the "
      "RTO tail (go-back-N fires on reordering).\n");
  return 0;
}
