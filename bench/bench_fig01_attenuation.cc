// Figure 1: packet loss rate vs optical attenuation for four transceiver
// configurations (1518 B frames).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "phy/optical.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  bench::banner("Figure 1", "Effect of optical attenuation on Ethernet link speeds");

  const std::vector<phy::Transceiver> xcvrs = {
      phy::make_50g_sr(), phy::make_25g_sr_nofec(), phy::make_25g_sr_fec(),
      phy::make_10g_sr()};

  TablePrinter t({"Attenuation (dB)", xcvrs[0].name, xcvrs[1].name,
                  xcvrs[2].name, xcvrs[3].name});
  for (double a = 9.0; a <= 18.01; a += 0.5) {
    std::vector<std::string> row{TablePrinter::fmt(a, 1)};
    for (const auto& x : xcvrs) {
      const double loss = x.frame_loss_rate(a, 1518);
      row.push_back(loss < 1e-30 ? "<1e-30" : TablePrinter::sci(loss));
    }
    t.add_row(row);
  }
  t.print();

  std::printf(
      "\nShape checks vs the paper: loss onset order 50G(FEC) < 25G < "
      "25G(FEC) < 10G as attenuation grows; FEC curves are steeper.\n");
  TablePrinter s({"Transceiver", "attenuation @ loss 1e-8 (dB)",
                  "attenuation @ loss 1e-2 (dB)"});
  for (const auto& x : xcvrs) {
    double a8 = 0, a2 = 0;
    for (double a = 5.0; a <= 25.0; a += 0.01) {
      const double l = x.frame_loss_rate(a, 1518);
      if (a8 == 0 && l >= 1e-8) a8 = a;
      if (a2 == 0 && l >= 1e-2) {
        a2 = a;
        break;
      }
    }
    s.add_row({x.name, TablePrinter::fmt(a8, 2), TablePrinter::fmt(a2, 2)});
  }
  s.print();
  return 0;
}
