// Figure 13: classification of "affected" 24,387 B DCTCP flows under
// LinkGuardianNB — why out-of-order recovery works for short TCP flows.
#include <cstdio>

#include "bench_common.h"
#include "harness/fct.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 13", "Classification of affected 24,387B DCTCP flows (LG_NB)");

  FctConfig c;
  c.transport = Transport::kDctcp;
  c.protection = Protection::kLgNb;
  c.flow_bytes = 24'387;
  c.trials = bench::scaled(100'000, 5'000);
  c.loss_rate = 1e-3;
  c.rate = gbps(100);
  c.seed = 5000;
  const FctResult r = run_fct(c);

  const auto& cl = r.classes;
  TablePrinter t({"Group", "Meaning", "Flows", "% of affected"});
  auto pct = [&](std::int64_t n) {
    return cl.affected > 0
               ? TablePrinter::fmt(100.0 * static_cast<double>(n) /
                                       static_cast<double>(cl.affected), 1)
               : std::string("0");
  };
  t.add_row({"affected", "received >=1 SACK while LG_NB recovered a loss",
             std::to_string(cl.affected), "100.0"});
  t.add_row({"A", "<=2 MSS SACKed (within reordering window), no cwnd cut",
             std::to_string(cl.group_a), pct(cl.group_a)});
  t.add_row({"B", "<=2 MSS SACKed, tail loss", std::to_string(cl.group_b),
             pct(cl.group_b)});
  t.add_row({"C", ">2 MSS SACKed but nothing left to send (cut is free)",
             std::to_string(cl.group_c), pct(cl.group_c)});
  t.add_row({"D", ">2 MSS SACKed with pending bytes (FCT pays for the cut)",
             std::to_string(cl.group_d), pct(cl.group_d)});
  t.print();

  std::printf(
      "\nTrials: %lld; trials with wire loss: %lld. Paper (Fig. 13): 2950 "
      "affected -> A=1179, B=352, C=1079, D=340; only group D (small "
      "fraction) pays a real FCT penalty, which is why out-of-order "
      "recovery suffices for short TCP flows.\n",
      static_cast<long long>(r.cfg.trials),
      static_cast<long long>(r.trials_with_wire_loss));
  return 0;
}
