// Fault-lifecycle experiment: the paper's closed loop, end to end, per
// scripted fault scenario (see EXPERIMENTS.md "Fault scenarios").
//
// For every catalogue scenario x seed, one cell runs:
//   scripted fault -> corruptd detection -> pub-sub notification ->
//   live LinkGuardian switchover (Eq. 2 copies) -> AutoFallback mode control.
//
// Reported per cell: detection latency from corruption onset, packets lost
// before vs after protection engaged (per-uid ground truth), and the
// AutoFallback mode trajectory. The "onset" scenario's headline is
// lost(after) == 0: a live ordered-mode switchover masks every corruption
// loss from the moment it engages; the SUMMARY line asserts it.
//
// Output is byte-identical for any LGSIM_BENCH_JOBS (ParallelRunner merge
// order + per-cell determinism); diff two runs to verify.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/lifecycle.h"
#include "fault/scenarios.h"
#include "util/table.h"

using namespace lgsim;

namespace {

std::string mode_path(const fault::LifecycleResult& r) {
  if (r.mode_changes.empty())
    return r.engaged_at >= 0 ? "ordered" : "-";
  std::string s = monitor::lg_mode_name(r.mode_changes.front().from);
  for (const auto& c : r.mode_changes) {
    s += ">";
    s += monitor::lg_mode_name(c.to);
  }
  return s;
}

std::string ms_or_dash(SimTime t) {
  return t < 0 ? "-" : TablePrinter::fmt(to_msec(t), 2);
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceSession trace(argc, argv);
  bench::banner("fault-lifecycle",
                "scripted degradation: detection -> switchover -> fallback");

  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  std::vector<fault::LifecycleConfig> grid;
  for (const std::string& name : fault::scenario_names()) {
    for (std::uint64_t seed : seeds) {
      fault::LifecycleConfig cfg;
      cfg.scenario = name;
      cfg.seed = seed;
      grid.push_back(cfg);
    }
  }

  const std::vector<fault::LifecycleResult> rows =
      fault::run_lifecycle_grid(grid);

  TablePrinter table({"scenario", "seed", "onset_ms", "detect_ms", "engage_ms",
                      "det_lat_us", "offered", "lost_pre", "lost_post",
                      "dup", "wire_drop", "notif", "drop", "stall", "copies",
                      "modes"});
  for (const auto& r : rows) {
    table.add_row({
        r.scenario,
        std::to_string(r.seed),
        ms_or_dash(r.onset_at),
        ms_or_dash(r.detected_at),
        ms_or_dash(r.engaged_at),
        r.detection_latency < 0
            ? "-"
            : TablePrinter::fmt(to_usec(r.detection_latency), 1),
        std::to_string(r.offered),
        std::to_string(r.lost_before_protection),
        std::to_string(r.lost_after_protection),
        std::to_string(r.duplicates),
        std::to_string(r.wire_corrupted),
        std::to_string(r.notifications),
        std::to_string(r.notifications_dropped),
        std::to_string(r.stalled_polls),
        std::to_string(r.retx_copies),
        mode_path(r),
    });
  }
  table.print();

  // Acceptance assertions, printed so the golden check pins them too.
  std::int64_t onset_lost_after = 0;
  std::int64_t onset_cells = 0;
  bool all_detected = true;
  for (const auto& r : rows) {
    if (r.scenario == "onset") {
      ++onset_cells;
      onset_lost_after += r.lost_after_protection;
      if (r.engaged_at < 0) all_detected = false;
    }
  }
  std::printf(
      "\nSUMMARY onset: cells=%lld engaged=%s lost_after_protection=%lld "
      "(%s)\n",
      static_cast<long long>(onset_cells), all_detected ? "all" : "MISSING",
      static_cast<long long>(onset_lost_after),
      onset_lost_after == 0 && all_detected ? "PASS: zero-loss switchover"
                                            : "FAIL");
  return onset_lost_after == 0 && all_detected ? 0 : 1;
}
