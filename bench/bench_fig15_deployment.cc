// Figure 15 (§4.8): snapshot of the large-scale deployment simulation on the
// Facebook-fabric topology (~100K optical links): total penalty, least paths
// per ToR and least capacity per pod for CorrOpt vs LinkGuardian+CorrOpt at
// 50% and 75% capacity constraints.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "corropt/corropt.h"
#include "harness/parallel.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::corropt;
  bench::banner("Figure 15", "Deployment snapshot, FB fabric (~100K links)");

  // Paper scale: 260 pods ~ 100K links over the full 52-week horizon — the
  // incremental capacity engine (DESIGN.md §11) makes the year-long run
  // cheap enough to be the default.
  const double weeks = bench::scale() >= 1.0 ? 52.0 : 2.0;
  const std::int32_t pods =
      static_cast<std::int32_t>(bench::scaled(260, 16));

  // The four year-scale deployment runs (2 constraints x 2 strategies) are
  // the wall-clock hot spot; fan them out over LGSIM_BENCH_JOBS workers.
  harness::ParallelRunner<DeploymentConfig, DeploymentResult> runner(
      [](const DeploymentConfig& c) { return run_deployment(c); });
  for (double constraint : {0.50, 0.75}) {
    for (bool lg : {false, true}) {
      DeploymentConfig c;
      c.topo = {.pods = pods, .tors_per_pod = 48, .fabrics_per_pod = 4,
                .spines_per_plane = 48};
      c.duration_hours = 24.0 * 7.0 * weeks;
      c.mttf_hours = 10'000;
      c.capacity_constraint = constraint;
      c.use_linkguardian = lg;
      c.sample_period_hours = 1.0;
      c.seed = 7;  // same trace for both strategies
      runner.add(c.seed, c);
    }
  }
  const std::vector<DeploymentResult> results = runner.run_in_grid_order();

  std::size_t i = 0;
  for (double constraint : {0.50, 0.75}) {
    std::printf("\n--- Capacity constraint: %.0f%% ---\n", 100 * constraint);
    TablePrinter t({"Strategy", "mean total penalty", "max total penalty",
                    "min least-paths/ToR (%)", "min least-cap/pod (%)",
                    "kept active", "disabled (fast+opt)", "max LG/switch"});
    for (bool lg : {false, true}) {
      const DeploymentResult& r = results[i++];

      double mean_penalty = 0, max_penalty = 0, min_paths = 1, min_cap = 1;
      for (const auto& s : r.samples) {
        mean_penalty += s.total_penalty;
        max_penalty = std::max(max_penalty, s.total_penalty);
        min_paths = std::min(min_paths, s.least_paths_frac);
        min_cap = std::min(min_cap, s.least_capacity_frac);
      }
      mean_penalty /= static_cast<double>(r.samples.size());
      t.add_row({lg ? "LinkGuardian + CorrOpt" : "CorrOpt",
                 TablePrinter::sci(mean_penalty),
                 TablePrinter::sci(max_penalty),
                 TablePrinter::fmt(100 * min_paths, 2),
                 TablePrinter::fmt(100 * min_cap, 2),
                 std::to_string(r.kept_active),
                 std::to_string(r.disabled_immediately + r.disabled_by_optimizer),
                 std::to_string(r.max_lg_per_switch)});
    }
    t.print();
  }
  std::printf(
      "\nPaper: when the capacity constraint binds, vanilla CorrOpt leaves "
      "corrupting links active (total penalty ~1e-2..1e0); LG+CorrOpt drops "
      "the penalty by ~4-6 orders of magnitude at a <0.25%% capacity cost, "
      "with at most 2-4 LG-enabled links per switch.\n");
  return 0;
}
