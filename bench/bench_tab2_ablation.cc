// Table 2: contribution of LinkGuardian's mechanisms. Top-1% FCT (us) for
// 24,387 B DCTCP flows with bare link-local retransmission (ReTx) and the
// tail-loss (Tail) / packet-ordering (Order) mechanisms toggled.
#include <cstdio>

#include "bench_common.h"
#include "harness/fct.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Table 2", "Top 1% FCT (us) for 24,387B DCTCP flows, mechanism ablation");

  const std::int64_t trials = bench::scaled(50'000, 2'000);

  struct Variant {
    const char* name;
    Protection protection;
    bool tail;
    bool order;
  };
  const Variant variants[] = {
      {"No Loss", Protection::kNoLoss, true, true},
      {"Loss (1e-3)", Protection::kLossOnly, true, true},
      {"ReTx", Protection::kLg, false, false},
      {"ReTx+Order", Protection::kLg, false, true},
      {"ReTx+Tail", Protection::kLg, true, false},  // == LinkGuardianNB
      {"ReTx+Tail+Order", Protection::kLg, true, true},  // == LinkGuardian
  };

  TablePrinter t({"Percentile", "No Loss", "Loss(1e-3)", "ReTx", "ReTx+Order",
                  "ReTx+Tail", "ReTx+Tail+Order"});
  std::vector<FctResult> results;
  for (const auto& v : variants) {
    FctConfig c;
    c.transport = Transport::kDctcp;
    c.protection = v.protection;
    c.flow_bytes = 24'387;
    c.trials = trials;
    c.loss_rate = 1e-3;
    c.rate = gbps(100);
    c.path.lg.tail_loss_detection = v.tail;
    c.path.lg.preserve_order = v.order;
    c.seed = 4000;
    results.push_back(run_fct(c));
  }
  for (double p : {99.0, 99.9, 99.99, 99.999}) {
    std::vector<std::string> row{TablePrinter::fmt(p, 3) + "%"};
    for (const auto& r : results) row.push_back(TablePrinter::fmt(r.p(p), 1));
    t.add_row(row);
  }
  {
    std::vector<std::string> row{"std dev"};
    for (auto& r : results) {
      double mean = r.fct_us.mean();
      double var = 0;
      for (double x : r.fct_us.sorted_samples()) var += (x - mean) * (x - mean);
      var /= static_cast<double>(r.fct_us.count());
      row.push_back(TablePrinter::fmt(std::sqrt(var), 1));
    }
    t.add_row(row);
  }
  t.print();
  std::printf(
      "\nExpected shape (paper Table 2): ReTx alone fixes the 99.9th "
      "percentile; Tail handling fixes 99.99%%+; adding Order recovers the "
      "last gap to the no-loss tail.\n");
  return 0;
}
