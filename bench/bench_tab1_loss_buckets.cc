// Table 1: corruption loss rates observed in Microsoft datacenters — the
// input distribution used by the trace generator, validated by sampling.
//
// The sample stream is split into a fixed number of chunks, each with its own
// deterministically derived Rng, fanned out over LGSIM_BENCH_JOBS workers and
// merged in chunk order — so the printed rows are byte-identical for any job
// count (the chunk count never depends on the worker count).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "corropt/corropt.h"
#include "harness/parallel.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

struct ChunkConfig {
  std::uint64_t seed = 0;
  std::int64_t samples = 0;
};

struct ChunkResult {
  lgsim::CountHistogram buckets;  // bin = Table-1 bucket index
  double sum = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::corropt;
  bench::banner("Table 1", "Corruption loss-rate buckets (Microsoft DCs) & sampler");

  const std::int64_t n = bench::scaled(1'000'000, 100'000);
  constexpr std::int64_t kChunks = 64;

  // Derive per-chunk seeds serially from one base generator, then fan the
  // chunks out; each worker samples only from its own Rng.
  Rng base(42);
  harness::ParallelRunner<ChunkConfig, ChunkResult> runner(
      [](const ChunkConfig& c) {
        Rng rng(c.seed);
        ChunkResult out;
        for (std::int64_t i = 0; i < c.samples; ++i) {
          const double r = sample_loss_rate(rng);
          out.sum += r;
          if (r < 1e-5) out.buckets.add(0);
          else if (r < 1e-4) out.buckets.add(1);
          else if (r < 1e-3) out.buckets.add(2);
          else out.buckets.add(3);
        }
        return out;
      });
  for (std::int64_t k = 0; k < kChunks; ++k) {
    ChunkConfig c;
    c.seed = base.next_u64();
    c.samples = n / kChunks + (k < n % kChunks ? 1 : 0);
    runner.add(c.seed, c);
  }

  CountHistogram counts;
  double mean = 0.0;
  for (const ChunkResult& r : runner.run_in_grid_order()) {
    counts.merge(r.buckets);
    mean += r.sum;
  }
  mean /= static_cast<double>(n);

  TablePrinter t({"Loss bucket", "Paper (% links)", "Sampled (%)"});
  const char* names[] = {"[1e-8, 1e-5)", "[1e-5, 1e-4)", "[1e-4, 1e-3)", "[1e-3+)"};
  const auto& buckets = table1_buckets();
  for (int i = 0; i < 4; ++i) {
    t.add_row({names[i], TablePrinter::fmt(100.0 * buckets[i].fraction, 2),
               TablePrinter::fmt(100.0 * static_cast<double>(counts.count_at(i)) /
                                     static_cast<double>(n), 2)});
  }
  t.print();
  std::printf("\nMean sampled loss rate: %.2e (heavy-tail dominated by the 1e-3+ bucket).\n", mean);
  return 0;
}
