// Table 1: corruption loss rates observed in Microsoft datacenters — the
// input distribution used by the trace generator, validated by sampling.
#include <cstdio>

#include "bench_common.h"
#include "corropt/corropt.h"
#include "util/table.h"

int main() {
  using namespace lgsim;
  using namespace lgsim::corropt;
  bench::banner("Table 1", "Corruption loss-rate buckets (Microsoft DCs) & sampler");

  Rng rng(42);
  const std::int64_t n = bench::scaled(1'000'000, 100'000);
  std::int64_t counts[4] = {};
  double mean = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double r = sample_loss_rate(rng);
    mean += r;
    if (r < 1e-5) ++counts[0];
    else if (r < 1e-4) ++counts[1];
    else if (r < 1e-3) ++counts[2];
    else ++counts[3];
  }
  mean /= static_cast<double>(n);

  TablePrinter t({"Loss bucket", "Paper (% links)", "Sampled (%)"});
  const char* names[] = {"[1e-8, 1e-5)", "[1e-5, 1e-4)", "[1e-4, 1e-3)", "[1e-3+)"};
  const auto& buckets = table1_buckets();
  for (int i = 0; i < 4; ++i) {
    t.add_row({names[i], TablePrinter::fmt(100.0 * buckets[i].fraction, 2),
               TablePrinter::fmt(100.0 * static_cast<double>(counts[i]) /
                                     static_cast<double>(n), 2)});
  }
  t.print();
  std::printf("\nMean sampled loss rate: %.2e (heavy-tail dominated by the 1e-3+ bucket).\n", mean);
  return 0;
}
