// Four-scheme baseline comparison (ROADMAP item 3): TCP CUBIC goodput on a
// 10G link under no protection, Wharf (link-local FEC), RIFL (link-layer
// retransmission, arXiv 2309.08696), P4-Protect-style 1+1 duplication
// (arXiv 2001.11370), LinkGuardian and LinkGuardianNB, swept across
//   * a Bernoulli (i.i.d.) loss grid including the Wharf FEC-cliff points,
//   * a Gilbert-Elliott burst-loss grid (mean burst 4 frames), and
//   * the PR 4 fault-catalogue scenarios (scripted onset/ramp/flap/burst
//     faults driving the raw process of every scheme's residual model).
//
// All cells fan out over the replication runner and print in grid order:
// output is byte-identical for any LGSIM_BENCH_JOBS.
//
//   --smoke              reduced grid; exit code asserts the expected
//                        ordering relations between the schemes
//   --bench_json=<path>  additionally write every cell as a JSON row
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/injector.h"
#include "fault/scenarios.h"
#include "util/table.h"

namespace {

using namespace lgsim;

constexpr bench::Scheme kSchemes[] = {
    bench::Scheme::kNone, bench::Scheme::kWharf,      bench::Scheme::kRifl,
    bench::Scheme::kOnePlusOne, bench::Scheme::kLg,   bench::Scheme::kLgNb};

/// One fault-catalogue measurement: every scheme is provisioned at design
/// time for the canonical onset rate (1e-3, what the catalogue's steady
/// faults drive), starts on a healthy link, and the scenario script drives
/// the raw Gilbert-Elliott process buried inside the scheme's residual
/// model. Goodput is measured over the scenario's whole horizon (healthy
/// lead-in, fault, recovery).
struct FaultCell {
  bench::Scheme scheme = bench::Scheme::kNone;
  std::string scenario;
};

constexpr double kFaultProvisionRate = 1e-3;

double run_fault_goodput(const FaultCell& cell) {
  const fault::Scenario sc = fault::make_scenario(cell.scenario);

  Simulator sim;
  transport::PathConfig pc;
  pc.rate = gbps(10);
  pc.host_delay = usec(12);
  pc.link.rate = gbps(10);
  pc.link.normal_queue_bytes = 600'000;
  pc.lg = lg::tuned_for_rate(pc.lg, pc.rate);
  pc.lg.actual_loss_rate = kFaultProvisionRate;
  pc.lg.preserve_order = (cell.scheme != bench::Scheme::kLgNb);

  net::LossSpec provision;
  provision.kind = net::LossSpec::Kind::kGilbertElliott;
  provision.rate = kFaultProvisionRate;
  provision.mean_burst = 4.0;

  const std::unique_ptr<net::ProtectionScheme> scheme =
      bench::make_scheme(cell.scheme);
  pc = transport::with_protection(pc, *scheme, provision);

  transport::TestbedPath path(sim, pc);
  // The link starts healthy: the residual is built around a rate-0 GE
  // process whose drivable handle the scenario script then re-aims.
  net::LossSpec raw = provision;
  raw.rate = 0.0;
  net::ResidualLoss residual = scheme->residual(raw);
  net::DrivableLoss* handle = residual.raw;
  path.link().set_loss_model(std::move(residual.model));
  if (cell.scheme == bench::Scheme::kLg || cell.scheme == bench::Scheme::kLgNb)
    path.link().enable_lg();

  fault::FaultInjector injector(sim, sc.script);
  injector.add_link(fault::kLinkTarget, handle);
  injector.arm();  // bus/monitor/probe targets stay unbound: dataplane cell

  transport::TcpConfig tcfg;
  tcfg.cc = transport::TcpCc::kCubic;
  transport::TcpSender snd(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_a(std::move(p)); },
      [](SimTime) {});
  transport::TcpReceiver rcv(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_b(std::move(p)); });
  std::int64_t delivered = 0;
  path.set_sink_at_b([&](net::Packet&& p) {
    delivered += p.tcp.payload;
    rcv.on_data(p);
  });
  path.set_sink_at_a([&](net::Packet&& p) { snd.on_ack(p); });
  snd.start(1'000'000'000'000LL);

  sim.run(sc.horizon);
  return static_cast<double>(delivered) * 8.0 /
         static_cast<double>(sc.horizon);  // Gbps over the scenario
}

/// Tagged cell so the whole bench shares one worker pool (and one
/// deterministic grid order) across its three sections.
struct Cell {
  enum class Kind { kGrid, kFault };
  Kind kind = Kind::kGrid;
  bench::GoodputCell grid;
  FaultCell fault;
};

struct JsonRow {
  std::string section;
  std::string scheme;
  std::string detail;  // loss kind + rate, or scenario name
  double rate = 0.0;
  double goodput = 0.0;
  double capacity_x = 0.0;
};

std::string rate_label(double r) {
  if (r == 0.0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", r);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;

  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--bench_json=", 13) == 0)
      json_path = argv[i] + 13;
  }

  bench::banner("Baselines",
                "four-scheme goodput comparison (Gb/s) on a 10G link");

  const SimTime duration = smoke ? msec(40) : msec(bench::scaled(400, 60));
  const std::vector<double> bern_losses =
      smoke ? std::vector<double>{0.0, 1e-3, 1e-2}
            : std::vector<double>{0.0, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2};
  const std::vector<double> ge_losses =
      smoke ? std::vector<double>{1e-2}
            : std::vector<double>{1e-4, 1e-3, 1e-2};
  const std::vector<std::string> scenarios =
      smoke ? std::vector<std::string>{"onset", "flap-storm"}
            : fault::scenario_names();

  harness::ParallelRunner<Cell, double> runner(
      [](const Cell& c) {
        return c.kind == Cell::Kind::kGrid ? bench::run_goodput(c.grid)
                                           : run_fault_goodput(c.fault);
      },
      bench::jobs());

  auto add_grid = [&](bench::Scheme s, net::LossSpec::Kind kind, double rate) {
    Cell c;
    c.kind = Cell::Kind::kGrid;
    c.grid.scheme = s;
    c.grid.loss.kind = kind;
    c.grid.loss.rate = rate;
    c.grid.loss.mean_burst = 4.0;
    c.grid.duration = duration;
    return runner.add(/*seed=*/5, c);
  };

  for (bench::Scheme s : kSchemes)
    for (double l : bern_losses) add_grid(s, net::LossSpec::Kind::kBernoulli, l);
  for (bench::Scheme s : kSchemes)
    for (double l : ge_losses)
      add_grid(s, net::LossSpec::Kind::kGilbertElliott, l);
  for (const std::string& sc : scenarios) {
    for (bench::Scheme s : kSchemes) {
      Cell c;
      c.kind = Cell::Kind::kFault;
      c.fault.scheme = s;
      c.fault.scenario = sc;
      runner.add(/*seed=*/5, c);
    }
  }

  const std::vector<double> results = runner.run_in_grid_order();
  std::vector<JsonRow> rows;
  std::size_t next = 0;

  // Capacity accounting: what each scheme costs before any loss happens.
  {
    net::LossSpec at;
    at.rate = 1e-3;
    std::printf("\nCapacity accounting at raw loss 1e-3 (provisioned link "
                "capacity per unit of traffic capacity):\n");
    TablePrinter t({"Scheme", "capacity fraction", "provisioned x"});
    for (bench::Scheme s : kSchemes) {
      // LG's reTx bandwidth is loss-proportional, not a fixed fraction; the
      // Unprotected knobs (1.0 / 1x) are its idle cost, which is the point.
      const auto model = bench::make_scheme(s);
      t.add_row({std::string(bench::scheme_name(s)),
                 TablePrinter::fmt(model->capacity_fraction(at), 4),
                 TablePrinter::fmt(model->provisioned_capacity_x(at), 2)});
    }
    t.print();
  }

  auto print_grid = [&](const char* title, net::LossSpec::Kind kind,
                        const std::vector<double>& losses) {
    std::printf("\n%s\n", title);
    std::vector<std::string> header{"Loss rate ->"};
    for (double l : losses) header.push_back(rate_label(l));
    TablePrinter t(header);
    for (bench::Scheme s : kSchemes) {
      std::vector<std::string> cells{bench::scheme_name(s)};
      for (double l : losses) {
        const double g = results[next++];
        cells.push_back(TablePrinter::fmt(g, 2));
        net::LossSpec at;
        at.kind = kind;
        at.rate = l;
        at.mean_burst = 4.0;
        rows.push_back(JsonRow{
            kind == net::LossSpec::Kind::kBernoulli ? "bernoulli" : "gilbert",
            bench::scheme_name(s), at.kind_name(), l, g,
            bench::make_scheme(s)->provisioned_capacity_x(at)});
      }
      t.add_row(cells);
    }
    t.print();
  };

  print_grid("Bernoulli (i.i.d.) corruption:",
             net::LossSpec::Kind::kBernoulli, bern_losses);
  print_grid("Gilbert-Elliott corruption (mean burst 4 frames):",
             net::LossSpec::Kind::kGilbertElliott, ge_losses);

  // Fault-catalogue scenarios: goodput over each scenario's whole horizon.
  {
    std::printf("\nFault-catalogue scenarios (schemes provisioned for 1e-3; "
                "scripts drive the raw process):\n");
    std::vector<std::string> header{"Scenario"};
    for (bench::Scheme s : kSchemes) header.push_back(bench::scheme_name(s));
    TablePrinter t(header);
    for (const std::string& sc : scenarios) {
      std::vector<std::string> cells{sc};
      for (bench::Scheme s : kSchemes) {
        const double g = results[next++];
        cells.push_back(TablePrinter::fmt(g, 2));
        net::LossSpec at;
        at.rate = kFaultProvisionRate;
        rows.push_back(JsonRow{"fault", bench::scheme_name(s), sc,
                               kFaultProvisionRate, g,
                               bench::make_scheme(s)->provisioned_capacity_x(at)});
      }
      t.add_row(cells);
    }
    t.print();
  }

  std::printf(
      "\nShape: Wharf pays its redundancy always and falls off the FEC cliff "
      "at 1e-2; RIFL pays framing+reTx bandwidth but holds goodput to high "
      "BER; 1+1 masks everything its second path doesn't lose, at 2x "
      "provisioning; LinkGuardian pays only when losses happen.\n");

  if (json_path != nullptr) {
    std::ofstream os(json_path, std::ios::binary);
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const JsonRow& r = rows[i];
      os << "  {\"section\": \"" << r.section << "\", \"scheme\": \""
         << r.scheme << "\", \"detail\": \"" << r.detail
         << "\", \"rate\": " << r.rate << ", \"goodput_gbps\": " << r.goodput
         << ", \"provisioned_capacity_x\": " << r.capacity_x << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "]\n";
    std::fprintf(stderr, "bench_json: wrote %s (%zu rows)\n", json_path,
                 rows.size());
  }

  if (!smoke) return 0;

  // Smoke assertions: the ordering relations the schemes exist to show.
  // Cells are deterministic, so fixed margins are safe under sanitizers too.
  auto grid_at = [&](bench::Scheme s, net::LossSpec::Kind kind, double rate) {
    std::size_t idx = 0;
    for (bench::Scheme sc : kSchemes) {
      for (double l : bern_losses) {
        if (sc == s && kind == net::LossSpec::Kind::kBernoulli && l == rate)
          return results[idx];
        ++idx;
      }
    }
    for (bench::Scheme sc : kSchemes) {
      for (double l : ge_losses) {
        if (sc == s && kind == net::LossSpec::Kind::kGilbertElliott &&
            l == rate)
          return results[idx];
        ++idx;
      }
    }
    return -1.0;
  };
  using K = net::LossSpec::Kind;
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      ++failures;
      std::printf("SMOKE FAIL: %s\n", what);
    }
  };
  for (std::size_t i = 0; i < results.size(); ++i)
    expect(results[i] > 0.05, "every cell moves traffic");
  expect(grid_at(bench::Scheme::kLg, K::kBernoulli, 0.0) >
             grid_at(bench::Scheme::kNone, K::kBernoulli, 0.0) - 0.2,
         "LG tracks the unprotected healthy link");
  expect(grid_at(bench::Scheme::kWharf, K::kBernoulli, 1e-2) <
             grid_at(bench::Scheme::kWharf, K::kBernoulli, 1e-3),
         "Wharf falls off its FEC cliff at 1e-2");
  expect(grid_at(bench::Scheme::kWharf, K::kBernoulli, 1e-2) <
             grid_at(bench::Scheme::kRifl, K::kBernoulli, 1e-2),
         "RIFL beats Wharf past the FEC cliff");
  expect(grid_at(bench::Scheme::kRifl, K::kBernoulli, 1e-2) >
             grid_at(bench::Scheme::kNone, K::kBernoulli, 1e-2),
         "RIFL beats no protection at high BER");
  expect(grid_at(bench::Scheme::kOnePlusOne, K::kBernoulli, 1e-2) >
             grid_at(bench::Scheme::kNone, K::kBernoulli, 0.0) - 0.5,
         "1+1 masks a lossy working path at near-healthy goodput");
  std::printf("\nSUMMARY: %s (%d assertion failures)\n",
              failures == 0 ? "PASS" : "FAIL", failures);
  return failures == 0 ? 0 : 1;
}
