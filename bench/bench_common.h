// Shared helpers for the experiment benchmark binaries.
//
// Every binary prints the rows of one table/figure from the paper. Scale the
// run length with LGSIM_BENCH_SCALE (e.g. 0.1 for a quick pass, 10 for a
// longer, lower-variance run); 1.0 reproduces the defaults quoted in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "harness/parallel.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "util/env.h"

namespace lgsim::bench {

inline double scale() {
  // parse_positive_double rejects NaN/inf/garbage, which std::atof would
  // happily let through into loop bounds (NaN fails every comparison, so a
  // `for (i < scaled(n))` loop would run zero or forever depending on form).
  static const double s =
      parse_positive_double(std::getenv("LGSIM_BENCH_SCALE"), 1.0);
  return s;
}

inline std::int64_t scaled(std::int64_t n, std::int64_t lo = 1) {
  const auto v = static_cast<std::int64_t>(static_cast<double>(n) * scale());
  return v < lo ? lo : v;
}

inline void banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("(LGSIM_BENCH_SCALE=%.3g)\n", scale());
  std::printf("================================================================\n");
}

/// Worker count for replication sweeps (LGSIM_BENCH_JOBS). Deliberately not
/// printed in banner(): output must stay byte-identical across job counts.
inline unsigned jobs() { return harness::bench_jobs(); }

/// Per-binary trace capture: construct first thing in main(). Activated by
/// `--trace=<path>` or LGSIM_TRACE=<path> (flag wins); otherwise inert.
///
/// When active it installs a process-global obs::TraceCollector plus a "main"
/// sink for code running on the main thread; harness::ParallelRunner then
/// adds one sink per replication cell in grid order. The destructor writes
/// everything as Chrome trace-event JSON (open the file in Perfetto /
/// chrome://tracing). The completion note goes to stderr: stdout rows must
/// stay byte-identical whether or not a trace is being captured.
///
/// Ring capacity per sink is LGSIM_TRACE_CAP records (default 65536; the
/// ring keeps the newest records and the export reports how many were
/// evicted).
class TraceSession {
 public:
  TraceSession(int argc, char** argv) {
    if (const char* env = std::getenv("LGSIM_TRACE"); env != nullptr && *env)
      path_ = env;
    for (int i = 1; i < argc; ++i) {
      const std::string_view a = argv[i] != nullptr ? argv[i] : "";
      if (a.rfind("--trace=", 0) == 0) path_ = std::string(a.substr(8));
    }
    if (path_.empty()) return;
    const auto cap = static_cast<std::size_t>(parse_positive_double(
        std::getenv("LGSIM_TRACE_CAP"),
        static_cast<double>(obs::kDefaultRingCapacity)));
    collector_.emplace(cap);
    collector_->install();
    scope_.emplace(collector_->make_sink("main"));
  }

  ~TraceSession() {
    if (!collector_.has_value()) return;
    scope_.reset();
    collector_->uninstall();
    std::ofstream os(path_, std::ios::binary);
    obs::write_chrome_trace(os, *collector_);
    std::fprintf(stderr, "trace: wrote %s (%zu sinks)\n", path_.c_str(),
                 collector_->sink_count());
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return collector_.has_value(); }

 private:
  std::string path_;
  std::optional<obs::TraceCollector> collector_;
  std::optional<obs::SinkScope> scope_;
};

}  // namespace lgsim::bench
