// Shared helpers for the experiment benchmark binaries.
//
// Every binary prints the rows of one table/figure from the paper. Scale the
// run length with LGSIM_BENCH_SCALE (e.g. 0.1 for a quick pass, 10 for a
// longer, lower-variance run); 1.0 reproduces the defaults quoted in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "harness/fct.h"
#include "harness/parallel.h"
#include "lg/config.h"
#include "net/protection.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "protect/protect.h"
#include "rifl/rifl.h"
#include "transport/path.h"
#include "transport/tcp.h"
#include "util/env.h"
#include "wharf/wharf.h"

namespace lgsim::bench {

inline double scale() {
  // parse_positive_double rejects NaN/inf/garbage, which std::atof would
  // happily let through into loop bounds (NaN fails every comparison, so a
  // `for (i < scaled(n))` loop would run zero or forever depending on form).
  static const double s =
      parse_positive_double(std::getenv("LGSIM_BENCH_SCALE"), 1.0);
  return s;
}

inline std::int64_t scaled(std::int64_t n, std::int64_t lo = 1) {
  const auto v = static_cast<std::int64_t>(static_cast<double>(n) * scale());
  return v < lo ? lo : v;
}

inline void banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("(LGSIM_BENCH_SCALE=%.3g)\n", scale());
  std::printf("================================================================\n");
}

/// Worker count for replication sweeps (LGSIM_BENCH_JOBS). Deliberately not
/// printed in banner(): output must stay byte-identical across job counts.
inline unsigned jobs() { return harness::bench_jobs(); }

/// Per-binary trace capture: construct first thing in main(). Activated by
/// `--trace=<path>` or LGSIM_TRACE=<path> (flag wins); otherwise inert.
///
/// When active it installs a process-global obs::TraceCollector plus a "main"
/// sink for code running on the main thread; harness::ParallelRunner then
/// adds one sink per replication cell in grid order. The destructor writes
/// everything as Chrome trace-event JSON (open the file in Perfetto /
/// chrome://tracing). The completion note goes to stderr: stdout rows must
/// stay byte-identical whether or not a trace is being captured.
///
/// Ring capacity per sink is LGSIM_TRACE_CAP records (default 65536; the
/// ring keeps the newest records and the export reports how many were
/// evicted).
class TraceSession {
 public:
  TraceSession(int argc, char** argv) {
    if (const char* env = std::getenv("LGSIM_TRACE"); env != nullptr && *env)
      path_ = env;
    for (int i = 1; i < argc; ++i) {
      const std::string_view a = argv[i] != nullptr ? argv[i] : "";
      if (a.rfind("--trace=", 0) == 0) path_ = std::string(a.substr(8));
    }
    if (path_.empty()) return;
    const auto cap = static_cast<std::size_t>(parse_positive_double(
        std::getenv("LGSIM_TRACE_CAP"),
        static_cast<double>(obs::kDefaultRingCapacity)));
    collector_.emplace(cap);
    collector_->install();
    scope_.emplace(collector_->make_sink("main"));
  }

  ~TraceSession() {
    if (!collector_.has_value()) return;
    scope_.reset();
    collector_->uninstall();
    std::ofstream os(path_, std::ios::binary);
    obs::write_chrome_trace(os, *collector_);
    std::fprintf(stderr, "trace: wrote %s (%zu sinks)\n", path_.c_str(),
                 collector_->sink_count());
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return collector_.has_value(); }

 private:
  std::string path_;
  std::optional<obs::TraceCollector> collector_;
  std::optional<obs::SinkScope> scope_;
};

// ---------------------------------------------------------------------------
// Flow-launch / FCT-collection scaffolding, shared by the testbed FCT benches
// (bench_fig10/11/12) and the fabric traffic engine's bench_traffic. One
// TrafficConfig describes a transportxprotection sweep over one flow size;
// fct_grid() expands it into the harness::FctConfig grid in transport-major
// order. The seed strides reproduce each figure's historical per-cell seeds
// exactly (fig10: base 1000, protection stride 1; fig11: base 2000, strides
// 7/31; fig12: base 3000), so extracting the scaffolding changed no output
// byte.
// ---------------------------------------------------------------------------

struct TrafficConfig {
  std::vector<harness::Transport> transports{harness::Transport::kDctcp};
  std::vector<harness::Protection> protections{
      harness::Protection::kNoLoss, harness::Protection::kLg,
      harness::Protection::kLgNb, harness::Protection::kLossOnly};
  std::int64_t flow_bytes = 143;
  std::int64_t trials = 10'000;
  double loss_rate = 1e-3;
  BitRate rate = gbps(100);
  SimTime inter_trial_gap = usec(20);
  /// Per-cell seed = base + protection * protection_stride +
  /// transport * transport_stride.
  std::uint64_t seed_base = 0;
  std::uint64_t seed_protection_stride = 1;
  std::uint64_t seed_transport_stride = 0;
};

inline std::vector<harness::FctConfig> fct_grid(const TrafficConfig& tc) {
  std::vector<harness::FctConfig> grid;
  grid.reserve(tc.transports.size() * tc.protections.size());
  for (harness::Transport tr : tc.transports) {
    for (harness::Protection pr : tc.protections) {
      harness::FctConfig c;
      c.transport = tr;
      c.protection = pr;
      c.flow_bytes = tc.flow_bytes;
      c.trials = tc.trials;
      c.loss_rate = tc.loss_rate;
      c.rate = tc.rate;
      c.inter_trial_gap = tc.inter_trial_gap;
      c.seed = tc.seed_base +
               static_cast<std::uint64_t>(pr) * tc.seed_protection_stride +
               static_cast<std::uint64_t>(tr) * tc.seed_transport_stride;
      grid.push_back(c);
    }
  }
  return grid;
}

// ---------------------------------------------------------------------------
// Protection-scheme goodput scaffolding, shared by bench_tab3_wharf (the
// paper's Table 3) and bench_baselines (the four-scheme comparison sweep).
// ---------------------------------------------------------------------------

/// The schemes the comparison sweeps cover. kNone/kLg/kLgNb use an
/// Unprotected link model (LinkGuardian's machinery lives in the link itself
/// and is switched on with enable_lg, not modelled as a residual process).
enum class Scheme { kNone, kWharf, kRifl, kOnePlusOne, kLg, kLgNb };

inline const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone: return "None";
    case Scheme::kWharf: return "Wharf";
    case Scheme::kRifl: return "RIFL";
    case Scheme::kOnePlusOne: return "1+1";
    case Scheme::kLg: return "LinkGuardian";
    case Scheme::kLgNb: return "LinkGuardianNB";
  }
  return "?";
}

inline std::unique_ptr<net::ProtectionScheme> make_scheme(Scheme s) {
  switch (s) {
    case Scheme::kWharf:
      return std::make_unique<wharf::WharfScheme>();
    case Scheme::kRifl:
      return std::make_unique<rifl::RiflScheme>();
    case Scheme::kOnePlusOne:
      return std::make_unique<protect::OnePlusOneScheme>();
    case Scheme::kNone:
    case Scheme::kLg:
    case Scheme::kLgNb:
      break;
  }
  return std::make_unique<net::Unprotected>();
}

/// One goodput measurement: a TCP CUBIC flow across a 10G testbed path whose
/// corrupting link runs the scheme under the given raw loss process.
struct GoodputCell {
  Scheme scheme = Scheme::kNone;
  net::LossSpec loss;
  SimTime duration = 0;
  BitRate line_rate = gbps(10);
};

inline double run_goodput(const GoodputCell& cell) {
  Simulator sim;
  transport::PathConfig pc;
  pc.rate = cell.line_rate;
  pc.host_delay = usec(12);
  pc.link.rate = cell.line_rate;
  pc.link.normal_queue_bytes = 600'000;
  pc.lg = lg::tuned_for_rate(pc.lg, pc.rate);
  // The link's true raw loss rate, including an explicit 0 for the healthy
  // column: LinkGuardian's Eq. 2 sizing treats "no losses observed" the same
  // as "below target" (one reTx copy), so nothing needs a fake floor here.
  pc.lg.actual_loss_rate = cell.loss.rate;
  pc.lg.preserve_order = (cell.scheme != Scheme::kLgNb);

  const std::unique_ptr<net::ProtectionScheme> scheme =
      make_scheme(cell.scheme);
  pc = transport::with_protection(pc, *scheme, cell.loss);

  transport::TestbedPath path(sim, pc);
  if (cell.loss.rate > 0) {
    net::ResidualLoss residual = scheme->residual(cell.loss);
    path.link().set_loss_model(std::move(residual.model));
  }
  if (cell.scheme == Scheme::kLg || cell.scheme == Scheme::kLgNb)
    path.link().enable_lg();

  transport::TcpConfig tcfg;
  tcfg.cc = transport::TcpCc::kCubic;
  transport::TcpSender snd(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_a(std::move(p)); },
      [](SimTime) {});
  transport::TcpReceiver rcv(
      sim, tcfg, 1, [&](net::Packet&& p) { path.send_from_b(std::move(p)); });
  std::int64_t delivered = 0;
  path.set_sink_at_b([&](net::Packet&& p) {
    delivered += p.tcp.payload;
    rcv.on_data(p);
  });
  path.set_sink_at_a([&](net::Packet&& p) { snd.on_ack(p); });
  snd.start(1'000'000'000'000LL);

  // Warm up past slow start, then measure.
  const SimTime warmup = cell.duration / 4;
  sim.run(warmup);
  const std::int64_t base = delivered;
  sim.run(warmup + cell.duration);
  return static_cast<double>(delivered - base) * 8.0 /
         static_cast<double>(cell.duration);  // Gbps
}

}  // namespace lgsim::bench
