// Shared helpers for the experiment benchmark binaries.
//
// Every binary prints the rows of one table/figure from the paper. Scale the
// run length with LGSIM_BENCH_SCALE (e.g. 0.1 for a quick pass, 10 for a
// longer, lower-variance run); 1.0 reproduces the defaults quoted in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/parallel.h"
#include "util/env.h"

namespace lgsim::bench {

inline double scale() {
  // parse_positive_double rejects NaN/inf/garbage, which std::atof would
  // happily let through into loop bounds (NaN fails every comparison, so a
  // `for (i < scaled(n))` loop would run zero or forever depending on form).
  static const double s =
      parse_positive_double(std::getenv("LGSIM_BENCH_SCALE"), 1.0);
  return s;
}

inline std::int64_t scaled(std::int64_t n, std::int64_t lo = 1) {
  const auto v = static_cast<std::int64_t>(static_cast<double>(n) * scale());
  return v < lo ? lo : v;
}

inline void banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("(LGSIM_BENCH_SCALE=%.3g)\n", scale());
  std::printf("================================================================\n");
}

/// Worker count for replication sweeps (LGSIM_BENCH_JOBS). Deliberately not
/// printed in banner(): output must stay byte-identical across job counts.
inline unsigned jobs() { return harness::bench_jobs(); }

}  // namespace lgsim::bench
