// Shared helpers for the experiment benchmark binaries.
//
// Every binary prints the rows of one table/figure from the paper. Scale the
// run length with LGSIM_BENCH_SCALE (e.g. 0.1 for a quick pass, 10 for a
// longer, lower-variance run); 1.0 reproduces the defaults quoted in
// EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace lgsim::bench {

inline double scale() {
  static const double s = [] {
    const char* env = std::getenv("LGSIM_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return s;
}

inline std::int64_t scaled(std::int64_t n, std::int64_t lo = 1) {
  const auto v = static_cast<std::int64_t>(static_cast<double>(n) * scale());
  return v < lo ? lo : v;
}

inline void banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("(LGSIM_BENCH_SCALE=%.3g)\n", scale());
  std::printf("================================================================\n");
}

}  // namespace lgsim::bench
