// Table 4 (Appendix B.4): recirculation overhead as a percentage of the
// switch pipeline's forwarding capacity, for TX and RX sides at line rate.
#include <cstdio>

#include "bench_common.h"
#include "harness/stress.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Table 4", "Recirculation overhead (% of pipe forwarding capacity)");

  TablePrinter t({"Link", "Loss rate", "TX (%)", "RX (%)", "RX (%, NB)"});
  for (BitRate rate : {gbps(25), gbps(100)}) {
    for (double loss : {1e-5, 1e-4, 1e-3}) {
      StressConfig c;
      c.rate = rate;
      c.loss_rate = loss;
      c.packets = bench::scaled(
          std::max<std::int64_t>(200'000, static_cast<std::int64_t>(50.0 / loss)),
          50'000);
      if (c.packets > 4'000'000) c.packets = 4'000'000;
      c.seed = 21;
      StressResult r = run_stress(c);
      StressConfig cn = c;
      cn.lg.preserve_order = false;
      StressResult rn = run_stress(cn);
      t.add_row({rate == gbps(25) ? "25G" : "100G", TablePrinter::sci(loss, 0),
                 TablePrinter::fmt(100.0 * r.recirc_overhead_tx_frac, 3),
                 TablePrinter::fmt(100.0 * r.recirc_overhead_rx_frac, 3),
                 TablePrinter::fmt(100.0 * rn.recirc_overhead_rx_frac, 3)});
    }
  }
  t.print();
  std::printf(
      "\nPaper: 0.44-0.66%% for MTU line rate; LG_NB needs zero receiver-side "
      "recirculation. Scaling to the 250B median datacenter packet size "
      "multiplies the overhead ~6x and stays under 4%%.\n");
  return 0;
}
