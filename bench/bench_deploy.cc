// Deployment-simulation engine benchmark (§4.8 at scale): wall-clock of
// run_deployment with the incremental fabric-capacity engine vs the
// pre-refactor scan-based reference (DeploymentConfig::naive_metrics), plus
// the full paper-scale run (260 pods / ~100K links / 52 weeks) that the
// scan-based engine could not reach.
//
// Special modes (following the bench_micro pattern):
//   --bench_json=<path>  measure the reference-scale naive/incremental pair
//                        (asserting bit-identical results) and the
//                        paper-scale incremental run, and write them as one
//                        JSON object — the shape of a trajectory point in
//                        the committed BENCH_deploy.json.
//   --smoke=<baseline>   reduced mode for ctest: a small naive/incremental
//                        pair must stay bit-identical and the incremental
//                        engine must keep a >= 3x wall-clock margin (the
//                        committed trajectory records ~2 orders; the floor
//                        is deliberately loose for noisy shared CI runners).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "bench_common.h"
#include "corropt/corropt.h"
#include "util/table.h"

namespace {

using namespace lgsim;
using namespace lgsim::corropt;

DeploymentConfig deploy_cfg(std::int32_t pods, double weeks, bool naive) {
  DeploymentConfig c;
  c.topo = {.pods = pods, .tors_per_pod = 48, .fabrics_per_pod = 4,
            .spines_per_plane = 48};
  c.duration_hours = 24.0 * 7.0 * weeks;
  c.mttf_hours = 10'000;
  c.capacity_constraint = 0.75;
  c.use_linkguardian = true;
  c.sample_period_hours = 1.0;
  c.seed = 7;
  c.naive_metrics = naive;
  return c;
}

struct TimedRun {
  DeploymentResult res;
  double sec = 0;
};

TimedRun timed_run(const DeploymentConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun r{run_deployment(cfg), 0};
  const auto t1 = std::chrono::steady_clock::now();
  r.sec = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() *
          1e-9;
  return r;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Bitwise comparison of two DeploymentResults (every sample field and every
/// counter) — the same pin the differential tests enforce.
bool identical(const DeploymentResult& a, const DeploymentResult& b) {
  if (a.corruption_events != b.corruption_events ||
      a.disabled_immediately != b.disabled_immediately ||
      a.kept_active != b.kept_active ||
      a.disabled_by_optimizer != b.disabled_by_optimizer ||
      a.max_lg_per_switch != b.max_lg_per_switch ||
      a.samples.size() != b.samples.size())
    return false;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const auto& x = a.samples[i];
    const auto& y = b.samples[i];
    if (!bits_equal(x.time_hours, y.time_hours) ||
        !bits_equal(x.total_penalty, y.total_penalty) ||
        !bits_equal(x.least_paths_frac, y.least_paths_frac) ||
        !bits_equal(x.least_capacity_frac, y.least_capacity_frac) ||
        x.corrupting_links != y.corrupting_links ||
        x.disabled_links != y.disabled_links || x.lg_links != y.lg_links)
      return false;
  }
  return true;
}

struct Comparison {
  TimedRun naive;
  TimedRun incremental;
  bool bit_identical = false;
  double speedup() const {
    return incremental.sec > 0 ? naive.sec / incremental.sec : 0;
  }
};

Comparison compare_engines(std::int32_t pods, double weeks) {
  Comparison c;
  c.naive = timed_run(deploy_cfg(pods, weeks, /*naive=*/true));
  c.incremental = timed_run(deploy_cfg(pods, weeks, /*naive=*/false));
  c.bit_identical = identical(c.naive.res, c.incremental.res);
  return c;
}

int write_bench_json(const char* path) {
  // Reference scale: the 16-pod / 52-week configuration BENCH_deploy.json's
  // speedup claim is measured at (hourly samples, LG+CorrOpt at 75%).
  const Comparison ref = compare_engines(16, 52.0);
  std::printf("reference (16 pods, 52 weeks): naive %.3f s, incremental %.3f s, "
              "speedup %.1fx, bit_identical=%s\n",
              ref.naive.sec, ref.incremental.sec, ref.speedup(),
              ref.bit_identical ? "true" : "false");
  // Paper scale, incremental engine only — the naive engine is what made
  // this configuration infeasible in the first place.
  const DeploymentConfig paper = deploy_cfg(260, 52.0, /*naive=*/false);
  const std::int64_t links =
      fabric::FabricTopology(paper.topo).n_links();
  const TimedRun pr = timed_run(paper);
  std::printf("paper scale (260 pods, %lld links, 52 weeks): %.3f s, "
              "%lld corruption events, %zu samples\n",
              static_cast<long long>(links), pr.sec,
              static_cast<long long>(pr.res.corruption_events),
              pr.res.samples.size());
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_deploy: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"reference_scale\": {\"pods\": 16, \"weeks\": 52, "
               "\"naive_sec\": %.3f, \"incremental_sec\": %.3f, "
               "\"speedup\": %.1f, \"bit_identical\": %s},\n",
               ref.naive.sec, ref.incremental.sec, ref.speedup(),
               ref.bit_identical ? "true" : "false");
  std::fprintf(f,
               "  \"paper_scale\": {\"pods\": 260, \"links\": %lld, "
               "\"weeks\": 52, \"incremental_sec\": %.3f, "
               "\"corruption_events\": %lld, \"samples\": %zu}\n",
               static_cast<long long>(links), pr.sec,
               static_cast<long long>(pr.res.corruption_events),
               pr.res.samples.size());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return ref.bit_identical ? 0 : 1;
}

/// ctest smoke: small enough for CI (8 pods, 6 weeks), self-contained ratio
/// — both engines are timed in the same process, so machine speed cancels.
int run_smoke(const char* baseline_path) {
  FILE* f = std::fopen(baseline_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_deploy --smoke: cannot read %s\n",
                 baseline_path);
    return 1;
  }
  std::fclose(f);
  const Comparison c = compare_engines(8, 6.0);
  constexpr double kFloor = 3.0;
  const bool speed_pass = c.speedup() >= kFloor;
  std::printf("--- bench_deploy smoke (8 pods, 6 weeks; baseline %s) ---\n",
              baseline_path);
  std::printf("%-32s %10.3f s\n", "naive (scan-based) engine", c.naive.sec);
  std::printf("%-32s %10.3f s\n", "incremental engine", c.incremental.sec);
  std::printf("%-32s %9.1fx  (floor %.1fx)  [%s]\n", "speedup", c.speedup(),
              kFloor, speed_pass ? "PASS" : "FAIL");
  std::printf("%-32s %10s  [%s]\n", "results bit-identical",
              c.bit_identical ? "yes" : "NO", c.bit_identical ? "PASS" : "FAIL");
  return (speed_pass && c.bit_identical) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  const char* json_path = nullptr;
  const char* smoke_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i] != nullptr ? argv[i] : "";
    if (a.rfind("--bench_json=", 0) == 0)
      json_path = argv[i] + std::strlen("--bench_json=");
    if (a.rfind("--smoke=", 0) == 0)
      smoke_path = argv[i] + std::strlen("--smoke=");
  }
  if (smoke_path != nullptr) return run_smoke(smoke_path);
  if (json_path != nullptr) return write_bench_json(json_path);

  bench::banner("bench_deploy",
                "deployment-simulation engine: incremental vs scan-based");
  const auto pods = static_cast<std::int32_t>(bench::scaled(16, 4));
  const double weeks = bench::scale() >= 1.0 ? 52.0 : 6.0;
  const Comparison c = compare_engines(pods, weeks);
  TablePrinter t({"Engine", "wall (s)", "speedup", "bit-identical"});
  t.add_row({"naive (full scans per sample)", TablePrinter::fmt(c.naive.sec, 3),
             "1.00x", "-"});
  t.add_row({"incremental capacity engine",
             TablePrinter::fmt(c.incremental.sec, 3),
             TablePrinter::fmt(c.speedup(), 1) + "x",
             c.bit_identical ? "yes" : "NO"});
  t.print();
  if (bench::scale() >= 1.0) {
    std::printf("\nPaper scale (260 pods / ~100K links / 52 weeks, "
                "incremental only):\n");
    const TimedRun pr = timed_run(deploy_cfg(260, 52.0, /*naive=*/false));
    std::printf("  %.3f s wall, %lld corruption events, %zu samples\n", pr.sec,
                static_cast<long long>(pr.res.corruption_events),
                pr.res.samples.size());
  }
  return c.bit_identical ? 0 : 1;
}
