// Figure 19 (Appendix B.1): distribution of the delay from loss detection at
// the receiver switch to successful receipt of the retransmission.
#include <cstdio>

#include "bench_common.h"
#include "harness/stress.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Figure 19", "Retransmission delay distribution (us)");

  TablePrinter t({"Link", "Loss rate", "samples", "min", "p25", "p50", "p75",
                  "p99", "max"});
  for (BitRate rate : {gbps(25), gbps(100)}) {
    for (double loss : {1e-4, 1e-3}) {
      StressConfig c;
      c.rate = rate;
      c.loss_rate = loss;
      c.packets = bench::scaled(
          std::max<std::int64_t>(200'000, static_cast<std::int64_t>(200.0 / loss)),
          50'000);
      if (c.packets > 4'000'000) c.packets = 4'000'000;
      c.seed = 31;
      StressResult r = run_stress(c);
      auto& d = r.retx_delay_us;
      t.add_row({rate == gbps(25) ? "25G" : "100G", TablePrinter::sci(loss, 0),
                 std::to_string(d.count()), TablePrinter::fmt(d.min(), 2),
                 TablePrinter::fmt(d.percentile(25), 2),
                 TablePrinter::fmt(d.percentile(50), 2),
                 TablePrinter::fmt(d.percentile(75), 2),
                 TablePrinter::fmt(d.percentile(99), 2),
                 TablePrinter::fmt(d.max(), 2)});
    }
  }
  t.print();
  std::printf(
      "\nPaper: 2-6 us at both speeds (recirculation-dominated); the "
      "ackNoTimeout is provisioned above the observed maximum (7.5/7 us).\n");
  return 0;
}
