// Telemetry detection sweep: the oracle-free closed loop, quantified.
//
// Every cell runs the fault lifecycle with feed=kEstimator — corruptd polls
// a SeqWindowEstimator fed by sequenced probe frames instead of the port's
// ground-truth counters — across probe period x the full scenario catalogue
// x seeds. Reported per cell: detection latency from corruption onset,
// probe volume, and the final windowed estimate. The per-period aggregate
// lines report the three numbers that decide whether probe telemetry can
// retire the oracle:
//
//   missed  — cells where protection never engaged (estimator blind spot)
//   false   — cells where corruptd notified *before* the scripted onset
//             (phantom loss; the estimator's sequence-gap accounting
//             exists to keep this at zero)
//   det_lat — detection latency distribution (mean/max over detected cells)
//
// The SUMMARY line asserts missed == 0 and false == 0 at the default probe
// period (10 us) and the exit code enforces it. `--smoke` runs the reduced
// grid (default period, seed 1) for ctest.
//
// Output is byte-identical for any LGSIM_BENCH_JOBS (ParallelRunner merge
// order + per-cell determinism); diff two runs to verify.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "fault/lifecycle.h"
#include "fault/scenarios.h"
#include "util/table.h"

using namespace lgsim;

namespace {

constexpr SimTime kDefaultPeriod = usec(10);

std::string ms_or_dash(SimTime t) {
  return t < 0 ? "-" : TablePrinter::fmt(to_msec(t), 2);
}

}  // namespace

int main(int argc, char** argv) {
  bench::TraceSession trace(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i] != nullptr ? argv[i] : "";
    if (a == "--smoke") smoke = true;
  }
  bench::banner("telemetry",
                "probe-based loss estimator: oracle-free detection sweep");

  const std::vector<SimTime> periods =
      smoke ? std::vector<SimTime>{kDefaultPeriod}
            : std::vector<SimTime>{usec(5), usec(10), usec(20)};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1}
            : std::vector<std::uint64_t>{1, 2, 3};

  std::vector<fault::LifecycleConfig> grid;
  for (SimTime period : periods) {
    for (const std::string& name : fault::scenario_names()) {
      for (std::uint64_t seed : seeds) {
        fault::LifecycleConfig cfg;
        cfg.scenario = name;
        cfg.seed = seed;
        cfg.feed = fault::CounterFeed::kEstimator;
        cfg.probe_period = period;
        grid.push_back(cfg);
      }
    }
  }

  const std::vector<fault::LifecycleResult> rows =
      fault::run_lifecycle_grid(grid);

  TablePrinter table({"period_us", "scenario", "seed", "onset_ms", "detect_ms",
                      "engage_ms", "det_lat_us", "probes", "probes_rx",
                      "supp", "est_ppm", "lost_pre", "lost_post", "copies"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    table.add_row({
        TablePrinter::fmt(to_usec(grid[i].probe_period), 0),
        r.scenario,
        std::to_string(r.seed),
        ms_or_dash(r.onset_at),
        ms_or_dash(r.detected_at),
        ms_or_dash(r.engaged_at),
        r.detection_latency < 0
            ? "-"
            : TablePrinter::fmt(to_usec(r.detection_latency), 1),
        std::to_string(r.probes_sent),
        std::to_string(r.probes_rx),
        std::to_string(r.probes_suppressed),
        r.estimate_known ? TablePrinter::fmt(r.estimate_rate * 1e6, 1) : "-",
        std::to_string(r.lost_before_protection),
        std::to_string(r.lost_after_protection),
        std::to_string(r.retx_copies),
    });
  }
  table.print();

  // Per-period aggregates, and the acceptance gate at the default period.
  std::printf("\n");
  bool default_pass = false;
  for (SimTime period : periods) {
    std::int64_t cells = 0, missed = 0, false_act = 0, detected = 0;
    SimTime lat_sum = 0, lat_max = -1;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (grid[i].probe_period != period) continue;
      const auto& r = rows[i];
      ++cells;
      if (r.engaged_at < 0) ++missed;
      if (r.detected_at >= 0 && r.detected_at < r.onset_at) ++false_act;
      if (r.detection_latency >= 0) {
        ++detected;
        lat_sum += r.detection_latency;
        if (r.detection_latency > lat_max) lat_max = r.detection_latency;
      }
    }
    const double mean_us =
        detected > 0 ? to_usec(lat_sum) / static_cast<double>(detected) : -1.0;
    const bool pass = missed == 0 && false_act == 0;
    if (period == kDefaultPeriod) default_pass = pass;
    std::printf(
        "SUMMARY telemetry period=%sus: cells=%lld missed=%lld false=%lld "
        "det_lat_us mean=%s max=%s%s\n",
        TablePrinter::fmt(to_usec(period), 0).c_str(),
        static_cast<long long>(cells), static_cast<long long>(missed),
        static_cast<long long>(false_act),
        mean_us < 0 ? "-" : TablePrinter::fmt(mean_us, 1).c_str(),
        lat_max < 0 ? "-" : TablePrinter::fmt(to_usec(lat_max), 1).c_str(),
        period == kDefaultPeriod
            ? (pass ? " (PASS: oracle-free detection)" : " (FAIL)")
            : "");
  }
  return default_pass ? 0 : 1;
}
