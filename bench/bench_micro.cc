// Microbenchmarks (google-benchmark) for the hot paths of the simulator:
// event queue, RNG, port datapath and the LinkGuardian protocol machinery.
#include <benchmark/benchmark.h>

#include <memory>

#include "lg/link.h"
#include "lg/seqno.h"
#include "net/loss_model.h"
#include "net/port.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace lgsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::int64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [&sum, i] { sum += i; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_SeqDistance(benchmark::State& state) {
  lg::SeqEra a{65530, 0}, b{5, 1};
  std::int64_t acc = 0;
  for (auto _ : state) {
    acc += lg::seq_distance(b, a);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqDistance);

void BM_PortForwardPath(benchmark::State& state) {
  // Cost of pushing one MTU frame through a port (enqueue + serialize +
  // deliver events).
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    net::EgressPort port(sim, "p", gbps(100), 0);
    const int q = port.add_queue();
    std::int64_t delivered = 0;
    port.set_deliver([&](net::Packet&&) { ++delivered; });
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PortForwardPath);

void BM_LinkGuardianDatapath(benchmark::State& state) {
  // End-to-end protocol cost per protected packet at 1e-3 loss (includes
  // seq stamping, buffering, ACK machinery, retransmissions).
  const double loss = static_cast<double>(state.range(0)) * 1e-4;
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    lg::LinkSpec spec;
    spec.rate = gbps(100);
    lg::LgConfig cfg;
    cfg.actual_loss_rate = loss > 0 ? loss : 1e-4;
    lg::ProtectedLink link(sim, spec, cfg);
    if (loss > 0)
      link.set_loss_model(std::make_unique<net::BernoulliLoss>(loss, Rng(3)));
    std::int64_t fwd = 0;
    link.set_forward_sink([&](net::Packet&&) { ++fwd; });
    link.enable_lg();
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.kind = net::PktKind::kData;
      p.frame_bytes = 1518;
      link.send_forward(std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(fwd);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkGuardianDatapath)->Arg(0)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
