// Microbenchmarks (google-benchmark) for the hot paths of the simulator:
// event queue, RNG, port datapath and the LinkGuardian protocol machinery —
// plus the runtime guards every run ends with:
//
//   * trace-overhead guard: the runtime-off probe path must cost < 1% of the
//     port datapath (the bound DESIGN.md's overhead model promises for builds
//     that keep LGSIM_TRACE_ENABLED=1 but never install a sink);
//   * allocation guard: the steady-state event loop and port datapath must
//     perform exactly 0 heap allocations per event/frame, counted by the
//     interposed global operator new below.
//
// Special modes (both bypass google-benchmark):
//   --bench_json=<path>  measure the steady-state kernel metrics and write
//                        them as one JSON object (the shape of a trajectory
//                        point in the committed BENCH_micro.json), then run
//                        the guards.
//   --smoke=<baseline>   reduced mode for ctest: re-measure the steady-state
//                        event loop and fail if it regressed > 20% in
//                        events/sec against the most recent trajectory point
//                        in the committed BENCH_micro.json (plus the 0-alloc
//                        guards).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "lg/link.h"
#include "lg/seqno.h"
#include "net/loss_model.h"
#include "net/port.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Interposed allocation counter. Replacing the global operator new is the
// one observer that cannot be fooled: any heap traffic on a measured path
// shows up here, whether it comes from std::function, a container growing,
// or an allocator hidden behind a move. Counted relaxed — the bench is
// single-threaded; the atomic only keeps the interposer well-defined if a
// library thread ever allocates.
static std::atomic<std::uint64_t> g_heap_allocs{0};

// The interposer pairs malloc-backed operator new with free-backed delete —
// internally consistent, but GCC's heuristic flags free() on a pointer it
// watched come out of operator new.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace lgsim;

std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

double elapsed_ns(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

// ------------------------------------------------------------- benchmarks

void BM_EventQueueScheduleRun(benchmark::State& state) {
  // Cold path: a fresh Simulator per iteration, so arena/heap growth is
  // inside the measurement. Kept for continuity with earlier runs; the
  // steady-state benchmark below is the headline kernel metric.
  for (auto _ : state) {
    Simulator sim;
    std::int64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [&sum, i] { sum += i; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueSteadyState(benchmark::State& state) {
  // Warm path: one Simulator reused across iterations, so slot freelist and
  // heap capacity are warm — the regime every experiment binary runs in
  // after its first millisecond. This is where the allocation-free schedule
  // fast path shows.
  Simulator sim;
  std::int64_t sum = 0;
  for (auto _ : state) {
    const SimTime base = sim.now();
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(base + i, [&sum, i] { sum += i; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueSteadyState);

struct Chain {
  Simulator& sim;
  int remaining = 0;
  std::int64_t fired = 0;
  void fire() {
    ++fired;
    if (remaining-- > 0)
      sim.schedule_in(1, [this] { fire(); });
  }
};

void BM_EventChainDepth1(benchmark::State& state) {
  // Latency-critical shape: each event schedules exactly one successor, so
  // the heap never exceeds depth 1 and the cost is pure schedule+dispatch.
  // This is the timer-chain pattern (tx-done -> next tx) on the port path.
  Simulator sim;
  for (auto _ : state) {
    Chain c{sim, 1000};
    c.fire();
    sim.run();
    benchmark::DoNotOptimize(c.fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventChainDepth1);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_SeqDistance(benchmark::State& state) {
  lg::SeqEra a{65530, 0}, b{5, 1};
  std::int64_t acc = 0;
  for (auto _ : state) {
    acc += lg::seq_distance(b, a);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqDistance);

void BM_PortForwardPath(benchmark::State& state) {
  // Cost of pushing one MTU frame through a port (enqueue + serialize +
  // deliver events).
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    net::EgressPort port(sim, "p", gbps(100), 0);
    const int q = port.add_queue();
    std::int64_t delivered = 0;
    port.set_deliver([&](net::Packet&&) { ++delivered; });
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PortForwardPath);

void BM_LinkGuardianDatapath(benchmark::State& state) {
  // End-to-end protocol cost per protected packet at 1e-3 loss (includes
  // seq stamping, buffering, ACK machinery, retransmissions).
  const double loss = static_cast<double>(state.range(0)) * 1e-4;
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    lg::LinkSpec spec;
    spec.rate = gbps(100);
    lg::LgConfig cfg;
    cfg.actual_loss_rate = loss > 0 ? loss : 1e-4;
    lg::ProtectedLink link(sim, spec, cfg);
    if (loss > 0)
      link.set_loss_model(std::make_unique<net::BernoulliLoss>(loss, Rng(3)));
    std::int64_t fwd = 0;
    link.set_forward_sink([&](net::Packet&&) { ++fwd; });
    link.enable_lg();
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.kind = net::PktKind::kData;
      p.frame_bytes = 1518;
      link.send_forward(std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(fwd);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkGuardianDatapath)->Arg(0)->Arg(10)->Arg(100);

void BM_TraceEmitRuntimeOff(benchmark::State& state) {
  // The probe cost with tracing compiled in but no sink installed: one
  // thread_local load + null check. This is what every packet pays in a
  // default build when no --trace was requested.
  std::int64_t i = 0;
  for (auto _ : state) {
    obs::emit(i, obs::Cat::kPort, obs::Kind::kEnqueue, 1, i, i);
    benchmark::DoNotOptimize(i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitRuntimeOff);

// ---------------------------------------------------------------------------
// Steady-state measurements for the perf trajectory (BENCH_micro.json), the
// smoke check, and the allocation guard. All take the best of several
// trials: scheduler noise and cache warmup only ever add time, so the
// minimum is the honest estimate of intrinsic cost (and keeps the guards
// stable on loaded single-core CI). Allocations, by contrast, are exact in
// steady state — the min across trials of a per-trial exact count.

struct SteadyStat {
  double ns_per_event = 0;
  double allocs_per_event = 0;
  double events_per_sec() const { return 1e9 / ns_per_event; }
};

/// Batch-scheduling regime: `kBatch` events pending at once, one Simulator
/// reused so the slot freelist and heap capacity are warm.
SteadyStat measure_event_loop_steady(int batches, int trials) {
  constexpr int kBatch = 1000;
  Simulator sim;
  std::int64_t sum = 0;
  const auto run_batch = [&] {
    const SimTime base = sim.now();
    for (int i = 0; i < kBatch; ++i)
      sim.schedule_at(base + i, [&sum, i] { sum += i; });
    sim.run();
  };
  for (int w = 0; w < 3; ++w) run_batch();  // warm arena/heap/freelist
  SteadyStat best{1e18, 1e18};
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t a0 = heap_allocs();
    const auto t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < batches; ++b) run_batch();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t a1 = heap_allocs();
    const double events = static_cast<double>(batches) * kBatch;
    best.ns_per_event = std::min(best.ns_per_event, elapsed_ns(t0, t1) / events);
    best.allocs_per_event =
        std::min(best.allocs_per_event, static_cast<double>(a1 - a0) / events);
  }
  benchmark::DoNotOptimize(sum);
  return best;
}

/// Chain regime: each event schedules its one successor (heap depth 1).
SteadyStat measure_event_chain_steady(int events_per_trial, int trials) {
  Simulator sim;
  const auto run_chain = [&](int n) {
    Chain c{sim, n};
    c.fire();
    sim.run();
    benchmark::DoNotOptimize(c.fired);
  };
  run_chain(10'000);  // warm
  SteadyStat best{1e18, 1e18};
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t a0 = heap_allocs();
    const auto t0 = std::chrono::steady_clock::now();
    run_chain(events_per_trial);
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t a1 = heap_allocs();
    const double events = static_cast<double>(events_per_trial);
    best.ns_per_event = std::min(best.ns_per_event, elapsed_ns(t0, t1) / events);
    best.allocs_per_event =
        std::min(best.allocs_per_event, static_cast<double>(a1 - a0) / events);
  }
  return best;
}

/// Port datapath in steady state: one port reused across batches, so the
/// packet pool, ring queue and event slots are all warm. Per-frame heap
/// allocations in this regime must be exactly zero.
SteadyStat measure_port_steady(int batches, int trials) {
  constexpr int kFrames = 1000;
  Simulator sim;
  net::EgressPort port(sim, "p", gbps(100), 0);
  const int q = port.add_queue();
  std::int64_t delivered = 0;
  port.set_deliver([&](net::Packet&&) { ++delivered; });
  const auto run_batch = [&] {
    for (int i = 0; i < kFrames; ++i) {
      net::Packet p;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    }
    sim.run();
  };
  for (int w = 0; w < 3; ++w) run_batch();  // warm pool/ring/slots
  SteadyStat best{1e18, 1e18};
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t a0 = heap_allocs();
    const auto t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < batches; ++b) run_batch();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t a1 = heap_allocs();
    const double frames = static_cast<double>(batches) * kFrames;
    best.ns_per_event = std::min(best.ns_per_event, elapsed_ns(t0, t1) / frames);
    best.allocs_per_event =
        std::min(best.allocs_per_event, static_cast<double>(a1 - a0) / frames);
  }
  benchmark::DoNotOptimize(delivered);
  return best;
}

// --------------------------------------------------------- overhead guard

template <bool kWithEmit>
double measure_probe_loop_ns() {
  constexpr std::int64_t kIters = 2'000'000;
  constexpr int kProbesPerIter = 4;
  constexpr int kTrials = 5;
  double best = 1e9;
  for (int t = 0; t < kTrials; ++t) {
    std::int64_t x = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < kIters; ++i) {
      if constexpr (kWithEmit) {
        // Several probes per compiler barrier, mirroring real call sites: a
        // frame's enqueue/dequeue/deliver probes run back to back with the
        // TLS slot hot in L1 and the null branch predicted. One clobber per
        // probe would instead serialize every TLS load — an overcharge no
        // call site pays.
        obs::emit(i, obs::Cat::kPort, obs::Kind::kEnqueue, 1, i, i);
        obs::emit(i, obs::Cat::kPort, obs::Kind::kDequeue, 1, i, i);
        obs::emit(i, obs::Cat::kPort, obs::Kind::kDeliver, 1, i, i);
        obs::emit(i, obs::Cat::kPfc, obs::Kind::kPause, 1, i, i);
      }
      benchmark::DoNotOptimize(x);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        elapsed_ns(t0, t1) / static_cast<double>(kIters * kProbesPerIter);
    if (ns < best) best = ns;
  }
  return best;
}

/// Marginal cost of one runtime-off probe: the emit loop minus the identical
/// loop without the probes. Both loops carry the same clobber and counter
/// overhead, so the difference isolates what the probes actually add.
double measure_emit_off_ns() {
  const double with_emit = measure_probe_loop_ns<true>();
  const double baseline = measure_probe_loop_ns<false>();
  return with_emit > baseline ? with_emit - baseline : 0.0;
}

double measure_port_frame_ns() {
  constexpr std::int64_t kFrames = 100'000;
  constexpr int kTrials = 3;
  double best = 1e9;
  for (int t = 0; t < kTrials; ++t) {
    Simulator sim;
    net::EgressPort port(sim, "p", gbps(100), 0);
    const int q = port.add_queue();
    std::int64_t delivered = 0;
    port.set_deliver([&](net::Packet&&) { ++delivered; });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < kFrames; ++i) {
      net::Packet p;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    }
    sim.run();
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(delivered);
    const double ns = elapsed_ns(t0, t1) / static_cast<double>(kFrames);
    if (ns < best) best = ns;
  }
  return best;
}

/// Prints the guard table and returns 0 iff (a) the runtime-off probe cost
/// is under 1% of the port datapath — a forwarded frame crosses 3 probes
/// (enqueue, dequeue, deliver), so 3x the per-probe cost is the entire delta
/// between this build and an LGSIM_TRACE_ENABLED=0 build — and (b) the
/// steady-state event loop and port datapath allocate exactly nothing.
int run_guards() {
  const double emit_ns = measure_emit_off_ns();
  const double frame_ns = measure_port_frame_ns();
  constexpr int kProbesPerFrame = 3;
  const double frac = kProbesPerFrame * emit_ns / frame_ns;
  constexpr double kLimit = 0.01;
  const bool trace_pass = frac < kLimit;
  std::printf("\n--- trace overhead guard (LGSIM_TRACE_ENABLED=%d, no sink) ---\n",
              LGSIM_TRACE_ENABLED);
  std::printf("%-32s %10.3f ns/probe\n", "emit(runtime-off)", emit_ns);
  std::printf("%-32s %10.1f ns/frame\n", "port datapath", frame_ns);
  std::printf("%-32s %10d\n", "probes per forwarded frame", kProbesPerFrame);
  std::printf("%-32s %9.3f%%  (limit %.1f%%)  [%s]\n", "runtime-off overhead",
              frac * 100.0, kLimit * 100.0, trace_pass ? "PASS" : "FAIL");

  const SteadyStat loop = measure_event_loop_steady(/*batches=*/200, /*trials=*/3);
  const SteadyStat port = measure_port_steady(/*batches=*/50, /*trials=*/3);
  const bool alloc_pass =
      loop.allocs_per_event == 0.0 && port.allocs_per_event == 0.0;
  std::printf("--- allocation guard (steady state, interposed operator new) ---\n");
  std::printf("%-32s %10.3f allocs/event  (limit 0)  [%s]\n",
              "event loop", loop.allocs_per_event,
              loop.allocs_per_event == 0.0 ? "PASS" : "FAIL");
  std::printf("%-32s %10.3f allocs/frame  (limit 0)  [%s]\n",
              "port datapath", port.allocs_per_event,
              port.allocs_per_event == 0.0 ? "PASS" : "FAIL");
  return (trace_pass && alloc_pass) ? 0 : 1;
}

// ------------------------------------------------- trajectory JSON + smoke

void print_point(const char* name, const SteadyStat& s) {
  std::printf("%-16s %12.0f events/sec %8.2f ns/event %8.3f allocs/event\n",
              name, s.events_per_sec(), s.ns_per_event, s.allocs_per_event);
}

/// Full-fidelity steady-state measurement, written as one JSON object — the
/// shape of a trajectory point in the committed BENCH_micro.json.
int write_bench_json(const char* path) {
  const SteadyStat loop = measure_event_loop_steady(/*batches=*/2000, /*trials=*/5);
  const SteadyStat chain = measure_event_chain_steady(/*events=*/500'000, /*trials=*/5);
  const SteadyStat port = measure_port_steady(/*batches=*/100, /*trials=*/3);
  print_point("event_loop", loop);
  print_point("event_chain", chain);
  print_point("port_datapath", port);
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  const auto obj = [f](const char* name, const SteadyStat& s, const char* unit,
                       bool last) {
    std::fprintf(f,
                 "  \"%s\": {\"events_per_sec\": %.0f, \"ns_per_%s\": %.2f, "
                 "\"allocs_per_%s\": %.3f}%s\n",
                 name, s.events_per_sec(), unit, s.ns_per_event, unit,
                 s.allocs_per_event, last ? "" : ",");
  };
  obj("event_loop", loop, "event", false);
  obj("event_chain", chain, "event", false);
  obj("port_datapath", port, "frame", true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}

/// Pulls `events_per_sec` out of the LAST "event_loop" object in the file —
/// in the committed BENCH_micro.json the trajectory array is chronological,
/// so the last point is the current baseline.
double parse_baseline_events_per_sec(const std::string& text) {
  const std::size_t at = text.rfind("\"event_loop\"");
  if (at == std::string::npos) return -1.0;
  const std::size_t key = text.find("\"events_per_sec\"", at);
  if (key == std::string::npos) return -1.0;
  const std::size_t colon = text.find(':', key);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

/// Reduced mode for the bench-smoke ctest: quick event-loop re-measurement
/// against the committed baseline, plus the 0-alloc guards. >20% events/sec
/// regression fails. Comparing best-of-trials against a baseline measured on
/// the same machine keeps this deterministic enough for CI.
int run_smoke(const char* baseline_path) {
  FILE* f = std::fopen(baseline_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro --smoke: cannot read %s\n", baseline_path);
    return 1;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  const double baseline = parse_baseline_events_per_sec(text);
  if (baseline <= 0) {
    std::fprintf(stderr,
                 "bench_micro --smoke: no event_loop.events_per_sec in %s\n",
                 baseline_path);
    return 1;
  }
  const SteadyStat loop = measure_event_loop_steady(/*batches=*/300, /*trials=*/5);
  const SteadyStat port = measure_port_steady(/*batches=*/30, /*trials=*/3);
  const double ratio = loop.events_per_sec() / baseline;
  constexpr double kFloor = 0.80;  // fail on >20% events/sec regression
  const bool speed_pass = ratio >= kFloor;
  const bool alloc_pass =
      loop.allocs_per_event == 0.0 && port.allocs_per_event == 0.0;
  std::printf("--- bench smoke (baseline %s) ---\n", baseline_path);
  std::printf("%-32s %12.0f events/sec\n", "baseline event loop", baseline);
  std::printf("%-32s %12.0f events/sec (%.2fx, floor %.2fx)  [%s]\n",
              "measured event loop", loop.events_per_sec(), ratio, kFloor,
              speed_pass ? "PASS" : "FAIL");
  std::printf("%-32s %12.3f  (limit 0)  [%s]\n", "event loop allocs/event",
              loop.allocs_per_event, loop.allocs_per_event == 0.0 ? "PASS" : "FAIL");
  std::printf("%-32s %12.3f  (limit 0)  [%s]\n", "port datapath allocs/frame",
              port.allocs_per_event, port.allocs_per_event == 0.0 ? "PASS" : "FAIL");
  return (speed_pass && alloc_pass) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Accept --trace like every other bench binary, and strip it (plus our own
  // mode flags) before google-benchmark sees the argument list.
  lgsim::bench::TraceSession trace_session(argc, argv);
  const char* json_path = nullptr;
  const char* smoke_path = nullptr;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i] != nullptr ? argv[i] : "";
    if (i > 0 && a.rfind("--trace=", 0) == 0) continue;
    if (i > 0 && a.rfind("--bench_json=", 0) == 0) {
      json_path = argv[i] + std::strlen("--bench_json=");
      continue;
    }
    if (i > 0 && a.rfind("--smoke=", 0) == 0) {
      smoke_path = argv[i] + std::strlen("--smoke=");
      continue;
    }
    args.push_back(argv[i]);
  }
  if (smoke_path != nullptr) return run_smoke(smoke_path);
  if (json_path != nullptr) {
    const int rc = write_bench_json(json_path);
    const int guard = run_guards();
    return rc != 0 ? rc : guard;
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_guards();
}
