// Microbenchmarks (google-benchmark) for the hot paths of the simulator:
// event queue, RNG, port datapath and the LinkGuardian protocol machinery —
// plus the trace-overhead guard: the runtime-off probe path must cost < 1%
// of the port datapath (the bound DESIGN.md's overhead model promises for
// builds that keep LGSIM_TRACE_ENABLED=1 but never install a sink).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "lg/link.h"
#include "lg/seqno.h"
#include "net/loss_model.h"
#include "net/port.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace {

using namespace lgsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::int64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [&sum, i] { sum += i; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  double acc = 0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngUniform);

void BM_SeqDistance(benchmark::State& state) {
  lg::SeqEra a{65530, 0}, b{5, 1};
  std::int64_t acc = 0;
  for (auto _ : state) {
    acc += lg::seq_distance(b, a);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqDistance);

void BM_PortForwardPath(benchmark::State& state) {
  // Cost of pushing one MTU frame through a port (enqueue + serialize +
  // deliver events).
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    net::EgressPort port(sim, "p", gbps(100), 0);
    const int q = port.add_queue();
    std::int64_t delivered = 0;
    port.set_deliver([&](net::Packet&&) { ++delivered; });
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PortForwardPath);

void BM_LinkGuardianDatapath(benchmark::State& state) {
  // End-to-end protocol cost per protected packet at 1e-3 loss (includes
  // seq stamping, buffering, ACK machinery, retransmissions).
  const double loss = static_cast<double>(state.range(0)) * 1e-4;
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    lg::LinkSpec spec;
    spec.rate = gbps(100);
    lg::LgConfig cfg;
    cfg.actual_loss_rate = loss > 0 ? loss : 1e-4;
    lg::ProtectedLink link(sim, spec, cfg);
    if (loss > 0)
      link.set_loss_model(std::make_unique<net::BernoulliLoss>(loss, Rng(3)));
    std::int64_t fwd = 0;
    link.set_forward_sink([&](net::Packet&&) { ++fwd; });
    link.enable_lg();
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.kind = net::PktKind::kData;
      p.frame_bytes = 1518;
      link.send_forward(std::move(p));
    }
    sim.run();
    benchmark::DoNotOptimize(fwd);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkGuardianDatapath)->Arg(0)->Arg(10)->Arg(100);

void BM_TraceEmitRuntimeOff(benchmark::State& state) {
  // The probe cost with tracing compiled in but no sink installed: one
  // thread_local load + null check. This is what every packet pays in a
  // default build when no --trace was requested.
  std::int64_t i = 0;
  for (auto _ : state) {
    obs::emit(i, obs::Cat::kPort, obs::Kind::kEnqueue, 1, i, i);
    benchmark::DoNotOptimize(i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitRuntimeOff);

// All measurements take the best of several trials: scheduler noise and
// cache warmup only ever add time, so the minimum is the honest estimate of
// intrinsic cost (and keeps the guard stable on loaded single-core CI).
template <bool kWithEmit>
double measure_probe_loop_ns() {
  constexpr std::int64_t kIters = 2'000'000;
  constexpr int kProbesPerIter = 4;
  constexpr int kTrials = 5;
  double best = 1e9;
  for (int t = 0; t < kTrials; ++t) {
    std::int64_t x = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < kIters; ++i) {
      if constexpr (kWithEmit) {
        // Several probes per compiler barrier, mirroring real call sites: a
        // frame's enqueue/dequeue/deliver probes run back to back with the
        // TLS slot hot in L1 and the null branch predicted. One clobber per
        // probe would instead serialize every TLS load — an overcharge no
        // call site pays.
        obs::emit(i, obs::Cat::kPort, obs::Kind::kEnqueue, 1, i, i);
        obs::emit(i, obs::Cat::kPort, obs::Kind::kDequeue, 1, i, i);
        obs::emit(i, obs::Cat::kPort, obs::Kind::kDeliver, 1, i, i);
        obs::emit(i, obs::Cat::kPfc, obs::Kind::kPause, 1, i, i);
      }
      benchmark::DoNotOptimize(x);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(kIters * kProbesPerIter);
    if (ns < best) best = ns;
  }
  return best;
}

/// Marginal cost of one runtime-off probe: the emit loop minus the identical
/// loop without the probes. Both loops carry the same clobber and counter
/// overhead, so the difference isolates what the probes actually add.
double measure_emit_off_ns() {
  const double with_emit = measure_probe_loop_ns<true>();
  const double baseline = measure_probe_loop_ns<false>();
  return with_emit > baseline ? with_emit - baseline : 0.0;
}

double measure_port_frame_ns() {
  constexpr std::int64_t kFrames = 100'000;
  constexpr int kTrials = 3;
  double best = 1e9;
  for (int t = 0; t < kTrials; ++t) {
    Simulator sim;
    net::EgressPort port(sim, "p", gbps(100), 0);
    const int q = port.add_queue();
    std::int64_t delivered = 0;
    port.set_deliver([&](net::Packet&&) { ++delivered; });
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < kFrames; ++i) {
      net::Packet p;
      p.frame_bytes = 1518;
      port.enqueue(q, std::move(p));
    }
    sim.run();
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(delivered);
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(kFrames);
    if (ns < best) best = ns;
  }
  return best;
}

/// Prints the overhead table and returns 0 iff the runtime-off probe cost is
/// under 1% of the port datapath. A forwarded frame crosses 3 probes
/// (enqueue, dequeue, deliver), so 3x the per-probe cost is the entire delta
/// between this build and an LGSIM_TRACE_ENABLED=0 build, where emit()
/// compiles to nothing.
int run_trace_overhead_guard() {
  const double emit_ns = measure_emit_off_ns();
  const double frame_ns = measure_port_frame_ns();
  constexpr int kProbesPerFrame = 3;
  const double frac = kProbesPerFrame * emit_ns / frame_ns;
  constexpr double kLimit = 0.01;
  const bool pass = frac < kLimit;
  std::printf("\n--- trace overhead guard (LGSIM_TRACE_ENABLED=%d, no sink) ---\n",
              LGSIM_TRACE_ENABLED);
  std::printf("%-32s %10.3f ns/probe\n", "emit(runtime-off)", emit_ns);
  std::printf("%-32s %10.1f ns/frame\n", "port datapath", frame_ns);
  std::printf("%-32s %10d\n", "probes per forwarded frame", kProbesPerFrame);
  std::printf("%-32s %9.3f%%  (limit %.1f%%)  [%s]\n", "runtime-off overhead",
              frac * 100.0, kLimit * 100.0, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Accept --trace like every other bench binary, and strip it before
  // google-benchmark sees the argument list.
  lgsim::bench::TraceSession trace_session(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i] != nullptr ? argv[i] : "";
    if (i > 0 && a.rfind("--trace=", 0) == 0) continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_trace_overhead_guard();
}
