// Ablation: the recirculation loop (DESIGN.md §4.1, paper §5 "Implementing
// LinkGuardian with Tofino2").
//
// The paper attributes its surprisingly long ~5 us recovery delay to
// recirculation-based buffering on Tofino and argues Tofino2's dataplane
// queue-pause primitives could eliminate it. This sweep varies the
// recirculation loop latency from the measured Tofino value down to a
// Tofino2-style near-zero buffer and reports what recovery delay, buffer
// occupancy and effective link speed that buys at 100G / 1e-3 loss.
#include <cstdio>

#include "bench_common.h"
#include "harness/stress.h"
#include "lg/config.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using namespace lgsim::harness;
  bench::banner("Ablation", "Recirculation loop latency (Tofino -> Tofino2), 100G @ 1e-3");

  TablePrinter t({"recirc loop (us)", "retx delay p50/max (us)",
                  "RX buffer p50/max (KB)", "TX buffer max (KB)",
                  "effective speed (%)", "pauses"});
  for (SimTime loop : {nsec(4300), nsec(2400), nsec(1200), nsec(400), nsec(50)}) {
    StressConfig c;
    c.rate = gbps(100);
    c.loss_rate = 1e-3;
    c.packets = bench::scaled(400'000, 50'000);
    c.seed = 41;
    StressConfig cc = c;
    cc.lg = lg::tuned_for_rate(cc.lg, cc.rate);
    cc.lg.recirc_loop = loop;
    const StressResult r = run_stress_with_config(cc);
    t.add_row({TablePrinter::fmt(to_usec(loop), 2),
               TablePrinter::fmt(r.retx_delay_us.percentile(50), 2) + " / " +
                   TablePrinter::fmt(r.retx_delay_us.max(), 2),
               TablePrinter::fmt(r.rx_buffer_bytes.percentile(50) / 1000.0, 1) +
                   " / " + TablePrinter::fmt(r.rx_buffer_bytes.max() / 1000.0, 1),
               TablePrinter::fmt(r.tx_buffer_bytes.max() / 1000.0, 1),
               TablePrinter::fmt(100.0 * r.effective_speed_frac, 2),
               std::to_string(r.pauses)});
  }
  t.print();
  std::printf(
      "\nShrinking the loop shortens recovery and shrinks every buffer; at "
      "near-zero loop (Tofino2-style queue pausing) the reordering buffer "
      "barely builds and backpressure never engages — the paper's thesis "
      "that Tofino2 removes LinkGuardian's main overhead.\n");
  return 0;
}
