// Figure 8: effective loss rate and effective link speed for LinkGuardian
// (LG) and LinkGuardianNB (LG_NB) on 25G/100G links at three production loss
// rates, plus the §4.1 "timeouts in practice" counter.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/stress.h"
#include "lg/config.h"
#include "util/env.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  using harness::StressConfig;
  using harness::StressResult;

  // --shards=N (or LGSIM_SHARDS; flag wins) runs the grid on the sharded
  // runtime's worker pool instead of LGSIM_BENCH_JOBS. Output is
  // byte-identical either way — deliberately not printed in the banner.
  std::int32_t shards = static_cast<std::int32_t>(
      parse_positive_count(std::getenv("LGSIM_SHARDS"), 1));
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i] != nullptr ? argv[i] : "";
    if (a.rfind("--shards=", 0) == 0) {
      shards = static_cast<std::int32_t>(
          parse_positive_count(a.c_str() + 9, 1));
    }
  }

  bench::banner("Figure 8", "Effective loss rate & effective link speed (stress test)");

  TablePrinter t({"Link", "Loss rate", "Mode", "N copies", "Measured wire loss",
                  "Effective loss (measured)", "Effective loss (analytic)",
                  "Effective speed (%)", "Timeouts"});

  std::int64_t total_loss_events = 0;
  std::int64_t total_timeouts = 0;

  // Build the full replication grid first, then fan it out over
  // LGSIM_BENCH_JOBS workers; results come back in grid order, so the rows
  // are byte-identical to the old serial loop for any job count.
  std::vector<StressConfig> grid;
  for (BitRate rate : {gbps(25), gbps(100)}) {
    for (double loss : {1e-5, 1e-4, 1e-3}) {
      for (bool nb : {false, true}) {
        StressConfig c;
        c.rate = rate;
        c.loss_rate = loss;
        c.lg.preserve_order = !nb;
        // At least ~100 expected loss events per configuration.
        c.packets = bench::scaled(
            std::max<std::int64_t>(300'000, static_cast<std::int64_t>(100.0 / loss)),
            50'000);
        if (c.packets > 10'000'000) c.packets = 10'000'000;
        c.seed = 17 + static_cast<std::uint64_t>(loss * 1e6) + (nb ? 1 : 0) +
                 (rate == gbps(100) ? 100 : 25);
        grid.push_back(c);
      }
    }
  }
  const std::vector<StressResult> results =
      shards > 1 ? harness::run_stress_grid_sharded(grid, shards)
                 : harness::run_stress_grid(grid);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const StressConfig& c = grid[i];
    const StressResult& r = results[i];
    const bool nb = !c.lg.preserve_order;
    total_loss_events += r.data_frames_lost;
    total_timeouts += r.timeouts;
    t.add_row({c.rate == gbps(25) ? "25G" : "100G",
               TablePrinter::sci(c.loss_rate, 0), nb ? "LG_NB" : "LG",
               std::to_string(lg::retx_copies(c.loss_rate, c.lg.target_loss_rate)),
               TablePrinter::sci(r.actual_loss_rate),
               r.effectively_lost == 0
                   ? "0 observed"
                   : TablePrinter::sci(r.effective_loss_rate),
               TablePrinter::sci(r.analytic_loss_rate),
               TablePrinter::fmt(100.0 * r.effective_speed_frac, 2),
               std::to_string(r.timeouts)});
  }
  t.print();

  std::printf(
      "\nTimeouts in practice (sec 4.1): %lld ackNoTimeouts across %lld loss "
      "events (%.4f%%; paper: 476 of ~31M = 0.0016%%).\n",
      static_cast<long long>(total_timeouts),
      static_cast<long long>(total_loss_events),
      total_loss_events > 0
          ? 100.0 * static_cast<double>(total_timeouts) /
                static_cast<double>(total_loss_events)
          : 0.0);
  std::printf(
      "Effective loss rates below ~1/packets cannot be observed directly in "
      "one run; the analytic column is actual^(N+1) per Eq. 1.\n");
  return 0;
}
