// Fabric-wide FCT under corruption: the hybrid-fidelity traffic engine
// (src/traffic) driven at paper scale — 260 pods / ~100K links — comparing
// what flows experience under CorrOpt-only vs CorrOpt+LinkGuardian handling
// of the corrupting links the fast checker cannot disable.
//
// Victim flows (paths crossing a kept-active corrupting link) run
// packet-level through the transport + LinkGuardian stack; background flows
// go through the fluid model. Stdout is byte-identical for any
// LGSIM_BENCH_JOBS (wall-clock numbers go to stderr / the JSON only).
//
// Special modes (the bench_deploy pattern):
//   --bench_json=<path>  run the small-scale hybrid-vs-all-packet
//                        differential and the in-process jobs=1 vs jobs=4
//                        identity check, then both paper-scale scheme arms,
//                        the intra-run sharding identity + scaling curve
//                        (shards 1/2/4/8 on the CorrOpt+LG arm), and write
//                        one BENCH_traffic.json trajectory object.
//   --smoke=<baseline>   reduced ctest mode: baseline must be readable,
//                        hybrid victim FCTs must be bit-identical to the
//                        all-packet reference, the jobs=1/4 merge must be
//                        bit-identical, the sharded run (shards=4, forced
//                        2 workers) must be bit-identical to unsharded, and
//                        CorrOpt+LG must beat CorrOpt-only on victim tail
//                        FCT under a forced 1e-3 loss.
//
// --shards=N (or LGSIM_SHARDS; flag wins) runs every cell on the sharded
// runtime (sim/shard.h) with N pod-block shards. Stdout and JSON metrics are
// byte-identical for any shard count — only wall-clock lines change.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "bench_common.h"
#include "traffic/engine.h"
#include "util/cores.h"
#include "util/env.h"
#include "util/table.h"

namespace {

using namespace lgsim;
using namespace lgsim::traffic;

/// --shards=N / LGSIM_SHARDS, applied to every engine run of the selected
/// mode. 1 (the default) is the unsharded reference path.
std::int32_t g_shards = 1;

/// Victim-path replay knobs shared with the testbed FCT benches: the same
/// bench::TrafficConfig that parameterizes bench_fig10/11/12 supplies the
/// transport and link rate victim flows are driven with here.
EngineConfig with_victim_path(EngineConfig c, const bench::TrafficConfig& tc) {
  c.transport = tc.transports.front();
  c.link_rate = tc.rate;
  c.shards = g_shards;
  return c;
}

/// Small fabric whose corrupting links all stay active (constraint 1.0
/// blocks every disable) under a forced, clearly-hurting loss rate — the
/// differential / smoke configuration.
EngineConfig small_cfg(Scheme scheme, Fidelity fidelity) {
  EngineConfig c;
  c.topo = {.pods = 2, .tors_per_pod = 4, .fabrics_per_pod = 2,
            .spines_per_plane = 4};
  c.hosts_per_tor = 2;
  c.duration_sec = 0.004;
  c.slices = 4;
  c.seeds = {1, 2};
  c.scheme = scheme;
  c.fidelity = fidelity;
  c.corrupting_links = 8;
  c.capacity_constraint = 1.0;
  c.forced_loss_rate = 1e-3;
  c.scenario_seed = 5;
  c.arrivals.load_fraction = 0.2;
  return with_victim_path(c, bench::TrafficConfig{});
}

/// Paper scale: 260 pods, ~100K optical links, ~50K hosts. A 0.9 capacity
/// constraint means no ToR may lose a fabric link, so corrupting ToR-fabric
/// links all stay active — the regime where the scheme choice matters.
EngineConfig paper_cfg(Scheme scheme) {
  EngineConfig c;
  c.topo = {.pods = 260, .tors_per_pod = 48, .fabrics_per_pod = 4,
            .spines_per_plane = 48};
  c.hosts_per_tor = 4;
  c.duration_sec = 0.005;
  c.slices = 8;
  c.seeds = {1};
  c.scheme = scheme;
  c.fidelity = Fidelity::kHybrid;
  c.corrupting_links = 64;
  c.capacity_constraint = 0.9;
  c.scenario_seed = 17;
  c.arrivals.load_fraction = 0.1;
  return with_victim_path(c, bench::TrafficConfig{});
}

struct TimedRun {
  TrafficResult res;
  double sec = 0;
};

/// Runs `trials` times and keeps the result of the last run with the
/// *best-of-N* wall clock: a single trial measures the machine's mood (page
/// cache, turbo state, a background process) as much as the code, and the
/// minimum is the standard robust estimator for "how fast can this go".
/// Results are identical across trials, so which one is kept is moot.
TimedRun timed_run(const EngineConfig& cfg, unsigned jobs = 0,
                   int trials = 1) {
  TimedRun best;
  for (int i = 0; i < trials || i == 0; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    TrafficResult res = run_traffic(cfg, jobs);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count() * 1e-9;
    if (i == 0 || sec < best.sec) best = TimedRun{std::move(res), sec};
  }
  return best;
}

/// Bitwise equality of two FCT sample multisets (the differential pin).
bool identical_samples(const lgsim::PercentileTracker& a,
                       const lgsim::PercentileTracker& b) {
  const auto& x = a.sorted_samples();
  const auto& y = b.sorted_samples();
  if (x.size() != y.size()) return false;
  return x.empty() ||
         std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0;
}

bool identical_results(const TrafficResult& a, const TrafficResult& b) {
  return a.generated == b.generated && a.completed == b.completed &&
         a.stranded == b.stranded && a.victims == b.victims &&
         a.packet_flows == b.packet_flows && a.fluid_flows == b.fluid_flows &&
         a.victim_fluid_fallback == b.victim_fluid_fallback &&
         identical_samples(a.fct_victim_us, b.fct_victim_us) &&
         identical_samples(a.fct_bg_us, b.fct_bg_us);
}

void add_rows(TablePrinter& t, const char* label, const TrafficResult& r) {
  t.add_row({std::string(label) + " victim",
             std::to_string(r.victims),
             TablePrinter::fmt(r.p_victim(50), 1),
             TablePrinter::fmt(r.p_victim(99), 1),
             TablePrinter::fmt(r.p_victim(99.9), 1)});
  t.add_row({std::string(label) + " background",
             std::to_string(r.completed - r.victims),
             TablePrinter::fmt(r.p_bg(50), 1),
             TablePrinter::fmt(r.p_bg(99), 1),
             TablePrinter::fmt(r.p_bg(99.9), 1)});
}

/// The two correctness pins every mode checks: hybrid victim FCTs must be
/// bit-identical to the all-packet reference, and the merged result must be
/// bit-identical for jobs=1 vs jobs=4 (in-process, so LGSIM_BENCH_JOBS does
/// not matter).
struct Checks {
  bool differential = false;
  bool jobs_identical = false;
  bool ok() const { return differential && jobs_identical; }
};

Checks run_checks() {
  Checks ck;
  const EngineConfig hybrid = small_cfg(Scheme::kCorrOptLg, Fidelity::kHybrid);
  const EngineConfig allpkt =
      small_cfg(Scheme::kCorrOptLg, Fidelity::kAllPacket);
  const TrafficResult h1 = run_traffic(hybrid, 1);
  const TrafficResult h4 = run_traffic(hybrid, 4);
  const TrafficResult ap = run_traffic(allpkt, 1);
  ck.jobs_identical = identical_results(h1, h4);
  ck.differential = h1.victims > 0 &&
                    identical_samples(h1.fct_victim_us, ap.fct_victim_us);
  std::printf("hybrid vs all-packet victim FCTs (%lld victims): %s\n",
              static_cast<long long>(h1.victims),
              ck.differential ? "bit-identical" : "MISMATCH");
  std::printf("jobs=1 vs jobs=4 merged result: %s\n",
              ck.jobs_identical ? "bit-identical" : "MISMATCH");
  return ck;
}

int write_bench_json(const char* path) {
  const Checks ck = run_checks();

  const TimedRun lg = timed_run(paper_cfg(Scheme::kCorrOptLg), 0, 3);
  const TimedRun co = timed_run(paper_cfg(Scheme::kCorrOptOnly), 0, 3);
  const std::int64_t links =
      fabric::FabricTopology(paper_cfg(Scheme::kCorrOptLg).topo).n_links();

  std::printf("paper scale (260 pods, %lld links): %lld flows, "
              "%.3g flows per simulated hour\n",
              static_cast<long long>(links),
              static_cast<long long>(lg.res.generated),
              lg.res.flows_per_sim_hour());
  std::fprintf(stderr, "wall: CorrOpt+LG %.3f s, CorrOpt %.3f s\n", lg.sec,
               co.sec);

  // Intra-run sharding on the CorrOpt+LG paper arm: identity across shard
  // counts (the contract) plus the jobs=1 scaling curve (the point of the
  // runtime). Wall clocks are honest for THIS machine — `cores` records how
  // many it had; on a single-core box the curve is flat by construction.
  const std::int32_t curve_shards[] = {1, 2, 4, 8};
  TimedRun shard_runs[4];
  for (int i = 0; i < 4; ++i) {
    EngineConfig c = paper_cfg(Scheme::kCorrOptLg);
    c.shards = curve_shards[i];
    shard_runs[i] = timed_run(c, 1, 3);
    std::fprintf(stderr, "sharding: shards=%d wall %.3f s\n", curve_shards[i],
                 shard_runs[i].sec);
  }
  const bool shards_identical =
      identical_results(shard_runs[0].res, shard_runs[3].res) &&
      identical_results(shard_runs[0].res, lg.res);
  std::printf("shards=1 vs shards=8 paper arm: %s\n",
              shards_identical ? "bit-identical" : "MISMATCH");

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_traffic: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"checks\": {\"hybrid_vs_packet_bit_identical\": %s, "
               "\"jobs_bit_identical\": %s},\n",
               ck.differential ? "true" : "false",
               ck.jobs_identical ? "true" : "false");
  std::fprintf(f,
               "  \"sharding\": {\"jobs\": 1, \"cores\": %u, "
               "\"window_ns\": 700, \"identical_shards_1_8\": %s,\n"
               "    \"curve\": [",
               machine_cores(), shards_identical ? "true" : "false");
  for (int i = 0; i < 4; ++i) {
    std::fprintf(f, "%s{\"shards\": %d, \"wall_sec\": %.3f}", i ? ", " : "",
                 curve_shards[i], shard_runs[i].sec);
  }
  std::fprintf(f, "],\n    \"speedup_at_8\": %.2f},\n",
               shard_runs[3].sec > 0 ? shard_runs[0].sec / shard_runs[3].sec
                                     : 0.0);
  auto arm = [&](const char* name, const TimedRun& r, const char* sep) {
    std::fprintf(
        f,
        "  \"%s\": {\"pods\": 260, \"links\": %lld, \"flows\": %lld, "
        "\"victims\": %lld, \"hot_links\": %zu, \"sim_hours\": %.6g, "
        "\"flows_per_sim_hour\": %.6g, \"wall_sec\": %.3f,\n"
        "    \"victim_fct_us\": {\"p50\": %.3f, \"p99\": %.3f, "
        "\"p999\": %.3f},\n"
        "    \"bg_fct_us\": {\"p50\": %.3f, \"p99\": %.3f, "
        "\"p999\": %.3f}}%s\n",
        name, static_cast<long long>(links),
        static_cast<long long>(r.res.generated),
        static_cast<long long>(r.res.victims), r.res.hot_links.size(),
        r.res.sim_hours, r.res.flows_per_sim_hour(), r.sec,
        r.res.p_victim(50), r.res.p_victim(99), r.res.p_victim(99.9),
        r.res.p_bg(50), r.res.p_bg(99), r.res.p_bg(99.9), sep);
  };
  arm("corropt_lg", lg, ",");
  arm("corropt_only", co, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return (ck.ok() && shards_identical) ? 0 : 1;
}

int run_smoke(const char* baseline_path) {
  FILE* f = std::fopen(baseline_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_traffic --smoke: cannot read %s\n",
                 baseline_path);
    return 1;
  }
  // The committed baseline must carry the sharding section (identity flag +
  // scaling curve): losing it in a future re-baseline would silently drop
  // the perf record this PR's tentpole is gated on.
  std::string baseline;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;)
    baseline.append(buf, n);
  std::fclose(f);
  const bool has_sharding = baseline.find("\"sharding\"") != std::string::npos;

  std::printf("--- bench_traffic smoke (baseline %s) ---\n", baseline_path);
  const Checks ck = run_checks();

  // Scheme comparison on the same small fabric: every corrupting link stays
  // active at 1e-3 loss; LG must shrink the victim tail. shards=1 forced —
  // this run doubles as the unsharded reference for the shard gate below.
  EngineConfig lg_cfg = small_cfg(Scheme::kCorrOptLg, Fidelity::kHybrid);
  lg_cfg.shards = 1;
  const TrafficResult lg = run_traffic(lg_cfg, 2);
  const TrafficResult co =
      run_traffic(small_cfg(Scheme::kCorrOptOnly, Fidelity::kHybrid), 2);
  const bool lg_wins = co.victims > 0 && lg.victims > 0 &&
                       lg.p_victim(99) < co.p_victim(99) &&
                       lg.fct_victim_us.mean() < co.fct_victim_us.mean();

  // Shard gate: the same cell grid on the sharded runtime (shards clamp to
  // the 2 pods; 2 workers forced so the concurrent windowed-sync path runs
  // even on a single-core machine) must merge to the same bytes.
  EngineConfig sh_cfg = lg_cfg;
  sh_cfg.shards = 4;
  sh_cfg.shard_workers = 2;
  const bool shard_identical = identical_results(lg, run_traffic(sh_cfg, 2));

  std::printf("victim p99: CorrOpt-only %.1f us vs CorrOpt+LG %.1f us  [%s]\n",
              co.p_victim(99), lg.p_victim(99), lg_wins ? "PASS" : "FAIL");
  std::printf("differential [%s]  jobs-identical [%s]\n",
              ck.differential ? "PASS" : "FAIL",
              ck.jobs_identical ? "PASS" : "FAIL");
  std::printf("sharded vs unsharded [%s]  baseline sharding section [%s]\n",
              shard_identical ? "PASS" : "FAIL",
              has_sharding ? "PASS" : "FAIL");
  return (ck.ok() && lg_wins && shard_identical && has_sharding) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  const char* json_path = nullptr;
  const char* smoke_path = nullptr;
  g_shards = static_cast<std::int32_t>(
      lgsim::parse_positive_count(std::getenv("LGSIM_SHARDS"), 1));
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i] != nullptr ? argv[i] : "";
    if (a.rfind("--bench_json=", 0) == 0)
      json_path = argv[i] + std::strlen("--bench_json=");
    if (a.rfind("--smoke=", 0) == 0)
      smoke_path = argv[i] + std::strlen("--smoke=");
    if (a.rfind("--shards=", 0) == 0)
      g_shards = static_cast<std::int32_t>(
          lgsim::parse_positive_count(argv[i] + std::strlen("--shards="), 1));
  }
  if (smoke_path != nullptr) return run_smoke(smoke_path);
  if (json_path != nullptr) return write_bench_json(json_path);

  bench::banner("bench_traffic",
                "fabric-wide FCT under corruption (hybrid fidelity)");

  // Mid-size fabric sweep: sampled Table 1 loss rates, 0.9 constraint (no
  // ToR may shed a fabric link, so corrupting ToR-fabric links stay hot).
  EngineConfig base = paper_cfg(Scheme::kCorrOptLg);
  base.topo.pods = static_cast<std::int32_t>(bench::scaled(16, 4));
  base.duration_sec = 0.002;
  base.slices = 4;

  TablePrinter t({"Scheme / class", "flows", "p50 (us)", "p99 (us)",
                  "p99.9 (us)"});
  for (Scheme s : {Scheme::kCorrOptOnly, Scheme::kCorrOptLg}) {
    EngineConfig c = base;
    c.scheme = s;
    const TimedRun r = timed_run(c);
    add_rows(t, scheme_name(s), r.res);
    std::fprintf(stderr, "%s: %.3f s wall, %lld flows (%lld packet-level)\n",
                 scheme_name(s), r.sec,
                 static_cast<long long>(r.res.generated),
                 static_cast<long long>(r.res.packet_flows));
  }
  t.print();
  std::printf(
      "\nVictim flows cross a corrupting link CorrOpt could not disable; "
      "background flows see a healthy fabric. CorrOpt+LG masks the victim "
      "tail that corruption losses otherwise inflate.\n");
  return 0;
}
