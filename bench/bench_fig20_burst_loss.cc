// Figure 20 (Appendix B.2): distribution of consecutive packets lost at
// unreasonably high loss rates (1% and 5%), which sizes the reTxReqs
// register provisioning (5 registers cover 99.9999% of loss events).
#include <cstdio>

#include "bench_common.h"
#include "net/loss_model.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  lgsim::bench::TraceSession trace_session(argc, argv);
  using namespace lgsim;
  bench::banner("Figure 20", "Consecutive packets lost (CDF %), 1518B frames");

  const std::int64_t frames = bench::scaled(20'000'000, 1'000'000);

  TablePrinter t({"Model", "Loss", "burst=1", "<=2", "<=3", "<=4", "<=5",
                  "<=6", "<=7", "max"});
  for (double rate : {0.01, 0.05}) {
    for (double mean_burst : {1.0, 1.3}) {
      net::GilbertElliottLoss loss(
          net::GilbertElliottLoss::for_rate(rate, mean_burst), Rng(7));
      net::Packet p;
      p.frame_bytes = 1518;
      CountHistogram hist;
      int run = 0;
      for (std::int64_t i = 0; i < frames; ++i) {
        if (loss.lose(0, p)) {
          ++run;
        } else {
          if (run > 0) hist.add(run);
          run = 0;
        }
      }
      if (run > 0) hist.add(run);
      std::vector<std::string> row{
          mean_burst == 1.0 ? "i.i.d." : "Gilbert-Elliott(1.3)",
          TablePrinter::fmt(100 * rate, 0) + "%"};
      for (int k = 1; k <= 7; ++k)
        row.push_back(TablePrinter::fmt(100.0 * hist.cdf_at(k), 5));
      row.push_back(std::to_string(hist.max_value()));
      t.add_row(row);
    }
  }
  t.print();
  std::printf(
      "\nPaper: even at 5%% loss, >=99.9999%% of loss events are <=5 "
      "consecutive frames, hence 5 one-bit reTxReqs registers (sec 3.5).\n");
  return 0;
}
